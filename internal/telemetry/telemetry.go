// Package telemetry is the observability layer of the reproduction: a span
// tracer recording one span per function invocation and one parent span per
// workflow DAG execution (plus point events for pool-sizing decisions, BO
// iterations and container lifecycle), and a metric registry of counters,
// gauges and fixed-bucket streaming histograms.
//
// The paper's whole evaluation (§8) is built on observations the platform
// emits — per-stage cold/warm starts, tail latency distributions, pool-size
// decisions over time, BO convergence — and this package is where those
// observations are collected and exported (JSONL span streams, JSON metric
// snapshots; see DESIGN.md §6).
//
// Instrumented subsystems hold a Tracer and call it on their hot paths; the
// Nop tracer makes those calls free when telemetry is disabled, and all
// registry handles are nil-safe so a disabled registry costs a single branch
// per update. Everything is deterministic: span IDs are assigned in call
// order, and exports emit spans and metric names in sorted, stable order, so
// two runs with the same seed produce byte-identical output.
package telemetry

// SpanID identifies a recorded span. The zero ID means "no span": the Nop
// tracer returns it, and instrumented code can skip building end-of-span
// fields when it sees it.
type SpanID uint64

// Fields carries numeric span attributes. Encoding/json emits map keys in
// sorted order, so field maps do not threaten determinism.
type Fields map[string]float64

// Span kinds emitted by the instrumented subsystems.
const (
	// KindWorkflow is the parent span of one workflow DAG execution.
	KindWorkflow = "workflow"
	// KindStage is one stage of a workflow DAG (child of a workflow span).
	KindStage = "stage"
	// KindInvocation is one function invocation: queue wait + cold-start
	// setup + execution (child of a stage span when issued by a workflow).
	KindInvocation = "invocation"
	// KindContainerCreate marks a container being provisioned.
	KindContainerCreate = "container.create"
	// KindContainerKill marks a container being evicted or expiring.
	KindContainerKill = "container.kill"
	// KindPoolDecision is one per-interval pool-sizing decision.
	KindPoolDecision = "pool.decision"
	// KindBOIteration is one Bayesian-optimization observe/refit round.
	KindBOIteration = "bo.iteration"
	// KindChaosFault is one injected fault episode (invoker crash window,
	// container-kill / init-failure window, straggler episode); the span
	// covers the fault's active window.
	KindChaosFault = "chaos.fault"
	// KindRetry marks the resilience layer scheduling a retry of a failed
	// or timed-out invocation (point; child of the stage span).
	KindRetry = "invocation.retry"
	// KindBreaker marks a per-invoker circuit-breaker state transition
	// (point; fields carry the invoker, new state and observed error rate).
	KindBreaker = "faas.breaker"
	// KindPoolMode marks the pool manager switching between model-driven
	// and degraded (recent-peak) pre-warm sizing (point).
	KindPoolMode = "pool.mode"
	// KindBODecision is one Bayesian-optimization suggestion batch: an
	// explain record carrying the posterior view (cost/latency mean and
	// uncertainty band, feasibility probability) behind the configurations
	// the engine chose to try next (point).
	KindBODecision = "bo.decision"
	// KindRunMeta is per-application run metadata (QoS target, training
	// cutoff, invoker count) emitted once at the start of the live phase so
	// post-hoc analysis (cmd/aquatrace) can attribute QoS violations
	// without re-reading the experiment configuration (point).
	KindRunMeta = "run.meta"
	// KindSchedDecision is one configuration decision by a non-BO
	// scheduler (jolteon's probabilistic-bound probe, caerus's BFS
	// best-fit step, naive's peak provisioning): the sched-subsystem
	// equivalent of bo.decision, carrying the candidate's modeled
	// latency/cost and the accept/freeze verdict (point).
	KindSchedDecision = "sched.decision"
)

// Span is one recorded interval (or point event, when Start == End).
type Span struct {
	ID     SpanID  `json:"id"`
	Parent SpanID  `json:"parent,omitempty"`
	Kind   string  `json:"kind"`
	Name   string  `json:"name,omitempty"`
	Start  float64 `json:"start"`
	End    float64 `json:"end"`
	Fields Fields  `json:"fields,omitempty"`
}

// Duration returns the span's length in simulated seconds.
func (s Span) Duration() float64 { return s.End - s.Start }

// Tracer receives telemetry callbacks from instrumented subsystems. All
// times are simulation seconds except where a subsystem has no clock (the
// BO engine uses its iteration index).
type Tracer interface {
	// Enabled reports whether spans are being recorded. Hot paths use it
	// to skip building Fields maps when tracing is off.
	Enabled() bool
	// StartSpan opens a span; parent 0 makes it a root.
	StartSpan(kind, name string, parent SpanID, at float64) SpanID
	// EndSpan closes a span, attaching fields (may be nil). Ending an
	// unknown or zero ID is a no-op.
	EndSpan(id SpanID, at float64, fields Fields)
	// Point records an instantaneous event.
	Point(kind, name string, parent SpanID, at float64, fields Fields)
}

// Nop is the default tracer: every call is a no-op and StartSpan returns
// the zero SpanID, so instrumented hot paths cost one interface call when
// tracing is disabled (benchmarked in bench_test.go).
type Nop struct{}

// Enabled implements Tracer.
func (Nop) Enabled() bool { return false }

// StartSpan implements Tracer.
func (Nop) StartSpan(string, string, SpanID, float64) SpanID { return 0 }

// EndSpan implements Tracer.
func (Nop) EndSpan(SpanID, float64, Fields) {}

// Point implements Tracer.
func (Nop) Point(string, string, SpanID, float64, Fields) {}

// OrNop returns t, or the Nop tracer when t is nil, so subsystems can store
// the result and call it unconditionally.
func OrNop(t Tracer) Tracer {
	if t == nil {
		return Nop{}
	}
	return t
}
