package pool

import (
	"aquatope/internal/faas"
	"aquatope/internal/sim"
	"aquatope/internal/stats"
	"aquatope/internal/trace"
)

// RunConfig parameterizes a trace-replay experiment.
type RunConfig struct {
	// Trace drives the workload; it is split at TrainMin.
	Trace *trace.Trace
	// TrainMin is the training prefix length in minutes.
	TrainMin int
	// Model is the function's performance profile (default: synthetic).
	Model faas.PerfModel
	// Resources is the container configuration.
	Resources faas.ResourceConfig
	// Policy manages the pool during the test window.
	Policy Policy
	// ClusterCfg overrides the platform configuration.
	ClusterCfg faas.Config
	// MemorySeries, when true, records the per-minute pre-warmed pool
	// memory footprint during the test window (Fig. 11).
	MemorySeries bool
	Seed         int64
}

// RunResult reports a trace-replay experiment measured on the test window.
type RunResult struct {
	ColdStarts  int
	WarmStarts  int
	Invocations int
	// ColdRate is ColdStarts / Invocations.
	ColdRate float64
	// ProvisionedMemGBs is GB-seconds of container memory held during the
	// test window.
	ProvisionedMemGBs float64
	// MemorySeriesGB is the per-minute live container memory (GB), when
	// requested.
	MemorySeriesGB []float64
	// DemandSeries is the observed per-minute demand during the test.
	DemandSeries []float64
	// MeanLatency is the average invocation latency in the test window.
	MeanLatency float64
}

// Run replays the trace through one simulated function under the policy:
// the training prefix warms the platform and supplies the policy's training
// data, and all metrics are measured over the test suffix only.
func Run(cfg RunConfig) RunResult {
	if cfg.Model == nil {
		cfg.Model = faas.DefaultSyntheticModel()
	}
	if cfg.Resources.CPU == 0 {
		cfg.Resources = faas.ResourceConfig{CPU: 1, MemoryMB: 512}
	}
	eng := sim.NewEngine()
	ccfg := cfg.ClusterCfg
	if ccfg.Seed == 0 {
		ccfg.Seed = cfg.Seed
	}
	cl := faas.NewCluster(eng, ccfg)
	const fnName = "fn"
	if err := cl.RegisterFunction(faas.FunctionSpec{Name: fnName, Model: cfg.Model, TriggerType: cfg.Trace.TriggerType}, cfg.Resources); err != nil {
		panic(err)
	}

	// Schedule every arrival of the full trace.
	for _, a := range cfg.Trace.Arrivals {
		at := a
		eng.Schedule(at, func() { _ = cl.Invoke(fnName, 1, nil) })
	}

	trainCut := float64(cfg.TrainMin) * 60
	mgr := NewManager(cl)

	// At the train/test boundary: fit the policy on the observed demand
	// series, capture the metric baselines, and enable management.
	var baseColds, baseWarms int
	var baseProv float64
	eng.Schedule(trainCut, func() {
		rng := stats.NewRNG(cfg.Seed + 1)
		meanExec := estimateServiceTime(cfg.Model, cfg.Resources, rng)
		train, _ := cfg.Trace.Split(cfg.TrainMin)
		demand := DemandSeries(train.Arrivals, meanExec, cfg.TrainMin)
		cfg.Policy.Fit(FitData{
			Demand:   demand,
			Arrivals: train.Arrivals,
			FeatFn:   func(i int) []float64 { return cfg.Trace.Features(i) },
		})
		// Baselines: test-window deltas are measured from here.
		baseColds = cl.Metrics().ColdStarts()
		baseWarms = cl.Metrics().WarmStarts()
		baseProv = cl.Metrics().ProvisionedMemTime()
		mgr.Manage(fnName, cfg.Policy, cfg.TrainMin)
		mgr.Start()
	})

	// Optional per-minute memory footprint sampling.
	var memSeries []float64
	if cfg.MemorySeries {
		var sampleMem func()
		sampleMem = func() {
			if eng.Now() >= trainCut {
				memSeries = append(memSeries, cl.AliveMemoryMB()/1024)
			}
			eng.After(60, sampleMem)
		}
		eng.Schedule(trainCut, sampleMem)
	}

	horizon := float64(cfg.Trace.DurationMin) * 60
	eng.RunUntil(horizon)
	cl.Flush()

	m := cl.Metrics()
	res := RunResult{
		ColdStarts:        m.ColdStarts() - baseColds,
		WarmStarts:        m.WarmStarts() - baseWarms,
		ProvisionedMemGBs: m.ProvisionedMemTime() - baseProv,
		MemorySeriesGB:    memSeries,
		DemandSeries:      mgr.History(fnName),
	}
	res.Invocations = res.ColdStarts + res.WarmStarts
	if res.Invocations > 0 {
		res.ColdRate = float64(res.ColdStarts) / float64(res.Invocations)
	}
	// Mean latency over test-window results.
	var latSum float64
	var latN int
	for _, r := range m.Results {
		if r.SubmitTime >= trainCut {
			latSum += r.Latency()
			latN++
		}
	}
	if latN > 0 {
		res.MeanLatency = latSum / float64(latN)
	}
	return res
}

// estimateServiceTime probes the model's warm execution time under cfg.
func estimateServiceTime(m faas.PerfModel, cfg faas.ResourceConfig, rng *stats.RNG) float64 {
	var s float64
	const n = 32
	for i := 0; i < n; i++ {
		s += m.ExecTime(cfg, false, 1, rng)
	}
	return s / n
}
