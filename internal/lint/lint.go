// Package lint is aqualint's analysis engine: a self-contained static
// checker, built only on the standard library's go/ast + go/types, that
// machine-checks the repository's determinism and simulation-safety
// invariants. The simulator's evaluation rests on same-seed runs being
// byte-identical; the four analyzers here turn the conventions that keep
// that true — virtual time only, seeded RNGs only, no order-dependent map
// iteration, no silently dropped errors — into compiler-grade checks (see
// DESIGN.md §8).
//
// Findings can be suppressed per line with an explanation:
//
//	//aqualint:allow <check> <reason>
//
// The directive covers its own line and the line below it, so it works
// both as a trailing comment and as a standalone comment above the
// flagged statement. A directive without a reason, or naming an unknown
// check, is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one analyzer hit.
type Finding struct {
	Pos     token.Position
	Check   string
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Check, f.Message)
}

// File is one parsed source file with its package context.
type File struct {
	Name string // file path as parsed
	AST  *ast.File
	Test bool // *_test.go file (syntactic analyzers only)
}

// Package is one loaded, parsed and (for non-test files) type-checked
// package, the unit the analyzers operate on.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*File
	// Info holds type information for the non-test files; nil when the
	// package has no compiled files (e.g. a test-only directory).
	Info *types.Info
}

// Reporter receives findings from an analyzer run.
type Reporter func(pos token.Pos, format string, args ...any)

// Analyzer is one named check. Run receives the whole Program (call
// graph + package set) so interprocedural analyzers can look across
// files, the package and file under analysis, the scoping Rule, and a
// position-based Reporter; per-file syntactic analyzers simply ignore
// the Program.
type Analyzer struct {
	Name string
	Doc  string
	// NeedsTypes restricts the analyzer to type-checked (non-test) files.
	NeedsTypes bool
	Run        func(prog *Program, pkg *Package, file *File, rule Rule, report Reporter)
}

// Analyzers returns the registry of all checks in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		wallclockAnalyzer,
		globalrandAnalyzer,
		maporderAnalyzer,
		droppederrAnalyzer,
		metricnameAnalyzer,
		seedflowAnalyzer,
		spanpairAnalyzer,
		sharedmutAnalyzer,
		hotallocAnalyzer,
	}
}

// AnalyzerNames returns the known check names in stable order.
func AnalyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

func analyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run applies every check enabled in cfg to the packages and returns the
// surviving findings sorted by position then check name. The whole-
// program call graph is built once up front and shared by every
// interprocedural analyzer.
func Run(pkgs []*Package, cfg Config) []Finding {
	prog := NewProgram(pkgs)
	var findings []Finding
	for _, pkg := range pkgs {
		findings = append(findings, runPackage(prog, pkg, cfg)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return dedup(findings)
}

func runPackage(prog *Program, pkg *Package, cfg Config) []Finding {
	var findings []Finding
	for _, file := range pkg.Files {
		allows, bad := parseAllows(pkg.Fset, file.AST)
		findings = append(findings, bad...)
		for _, name := range sortedCheckNames(cfg) {
			rule := cfg.Checks[name]
			az := analyzerByName(name)
			if az == nil || !rule.appliesTo(pkg.PkgPath) {
				continue
			}
			if file.Test && (az.NeedsTypes || !rule.Tests) {
				continue
			}
			if az.NeedsTypes && pkg.Info == nil {
				continue
			}
			report := func(pos token.Pos, format string, args ...any) {
				p := pkg.Fset.Position(pos)
				if allows.allowed(p.Line, az.Name) {
					return
				}
				findings = append(findings, Finding{
					Pos:     p,
					Check:   az.Name,
					Message: fmt.Sprintf(format, args...),
				})
			}
			az.Run(prog, pkg, file, rule, report)
		}
	}
	return findings
}

func sortedCheckNames(cfg Config) []string {
	names := make([]string, 0, len(cfg.Checks))
	for name := range cfg.Checks {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func dedup(fs []Finding) []Finding {
	out := fs[:0]
	for i, f := range fs {
		if i > 0 && f.Pos == fs[i-1].Pos && f.Check == fs[i-1].Check {
			continue
		}
		out = append(out, f)
	}
	return out
}

// ---------------------------------------------------------------------------
// //aqualint:allow directives

const directivePrefix = "//aqualint:"

// allowSet maps source line -> set of check names allowed on that line.
type allowSet map[int]map[string]bool

func (a allowSet) allowed(line int, check string) bool { return a[line][check] }

func (a allowSet) add(line int, check string) {
	if a[line] == nil {
		a[line] = make(map[string]bool)
	}
	a[line][check] = true
}

// parseAllows extracts //aqualint:allow directives from the file. Each
// directive covers its own line and the next, so it can sit trailing the
// flagged statement or on the line above it. Malformed directives are
// returned as findings under the "directive" pseudo-check.
func parseAllows(fset *token.FileSet, file *ast.File) (allowSet, []Finding) {
	allows := make(allowSet)
	var bad []Finding
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			body := strings.TrimPrefix(c.Text, directivePrefix)
			fields := strings.Fields(body)
			switch {
			case len(fields) == 0 || fields[0] != "allow":
				bad = append(bad, Finding{Pos: pos, Check: "directive",
					Message: fmt.Sprintf("unknown aqualint directive %q (only \"allow\" is supported)", body)})
			case len(fields) < 2 || analyzerByName(fields[1]) == nil:
				bad = append(bad, Finding{Pos: pos, Check: "directive",
					Message: fmt.Sprintf("aqualint:allow needs a known check name (one of %s)", strings.Join(AnalyzerNames(), ", "))})
			case len(fields) < 3:
				bad = append(bad, Finding{Pos: pos, Check: "directive",
					Message: fmt.Sprintf("aqualint:allow %s needs a reason explaining why the check does not apply", fields[1])})
			default:
				allows.add(pos.Line, fields[1])
				allows.add(pos.Line+1, fields[1])
			}
		}
	}
	return allows, bad
}

// ---------------------------------------------------------------------------
// shared AST helpers

// importNames returns the local names under which path is imported in the
// file (usually one), and whether it is dot-imported.
func importNames(file *ast.File, path string) (names map[string]bool, dot bool, spec *ast.ImportSpec) {
	names = make(map[string]bool)
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) != path {
			continue
		}
		switch {
		case imp.Name == nil:
			names[defaultImportName(path)] = true
			spec = imp
		case imp.Name.Name == ".":
			dot = true
			spec = imp
		case imp.Name.Name == "_":
			// blank import: no usable name
		default:
			names[imp.Name.Name] = true
			spec = imp
		}
	}
	return names, dot, spec
}

func defaultImportName(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// rootIdent walks selector/index expressions down to their base identifier
// (s.total -> s, xs[i] -> xs); nil when the base is not an identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// usesObject reports whether the expression tree references obj.
func usesObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
