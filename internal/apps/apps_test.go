package apps

import (
	"testing"

	"aquatope/internal/faas"
	"aquatope/internal/sim"
	"aquatope/internal/socialgraph"
	"aquatope/internal/stats"
	"aquatope/internal/workflow"
)

func deploy(t *testing.T, a *App) (*sim.Engine, *faas.Cluster, *workflow.Executor) {
	t.Helper()
	eng := sim.NewEngine()
	cl := faas.NewCluster(eng, faas.Config{Invokers: 4, CPUPerInvoker: 40, MemoryPerInvokerMB: 1 << 20, Seed: 1})
	if err := a.Register(cl); err != nil {
		t.Fatal(err)
	}
	return eng, cl, workflow.NewExecutor(cl)
}

func runOnce(t *testing.T, a *App, seed int64) workflow.Result {
	t.Helper()
	eng, _, ex := deploy(t, a)
	rng := stats.NewRNG(seed)
	var res *workflow.Result
	if err := ex.Execute(a.DAG, a.Input(rng), a.Widths(rng), func(r workflow.Result) { res = &r }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if res == nil {
		t.Fatalf("%s never completed", a.Name)
	}
	return *res
}

func TestAllAppsExecuteEndToEnd(t *testing.T) {
	for _, a := range All(1) {
		res := runOnce(t, a, 2)
		if res.Invocations == 0 {
			t.Fatalf("%s made no invocations", a.Name)
		}
		if res.Latency() <= 0 {
			t.Fatalf("%s latency = %v", a.Name, res.Latency())
		}
		if res.CPUTime() <= 0 || res.MemTime() <= 0 {
			t.Fatalf("%s cost empty", a.Name)
		}
	}
}

func TestChainStageCount(t *testing.T) {
	for _, n := range []int{1, 3, 5} {
		a := NewChain(n)
		if len(a.DAG.Stages()) != n {
			t.Fatalf("chain %d has %d stages", n, len(a.DAG.Stages()))
		}
		if len(a.Specs) != n {
			t.Fatalf("chain %d has %d specs", n, len(a.Specs))
		}
	}
	if len(NewChain(0).Specs) != 1 {
		t.Fatal("chain clamps to 1 stage")
	}
}

func TestMLPipelineParallelRecognition(t *testing.T) {
	a := NewMLPipeline()
	res := runOnce(t, a, 3)
	// vehicle and human run in parallel after objdetect: e2e latency must
	// be below the serial sum of all four stages.
	var serial float64
	for _, rs := range res.PerStage {
		for _, r := range rs {
			serial += r.Latency()
		}
	}
	if res.Latency() >= serial {
		t.Fatalf("ML pipeline not parallel: e2e %v vs serial %v", res.Latency(), serial)
	}
	if len(res.PerStage) != 4 {
		t.Fatalf("stages executed = %d", len(res.PerStage))
	}
}

func TestVideoWidthsVary(t *testing.T) {
	a := NewVideoProcessing()
	rng := stats.NewRNG(4)
	seen := make(map[int]bool)
	for i := 0; i < 30; i++ {
		w := a.Widths(rng)["face"]
		if w < 2 || w > 8 {
			t.Fatalf("chunk width %d out of range", w)
		}
		seen[w] = true
	}
	if len(seen) < 3 {
		t.Fatal("widths should vary across requests")
	}
}

func TestSocialNetworkFanoutFollowsGraph(t *testing.T) {
	g := socialgraph.Reed98Like(5)
	a := NewSocialNetwork(g)
	rng := stats.NewRNG(6)
	maxW := 0
	for i := 0; i < 200; i++ {
		w := a.Widths(rng)["hometimeline"]
		if w < 1 {
			t.Fatalf("width %d < 1", w)
		}
		if w > maxW {
			maxW = w
		}
	}
	// Hubs have hundreds of followers → widths well above 1.
	if maxW < 3 {
		t.Fatalf("max width %d; heavy-tail fanout not visible", maxW)
	}
	// Nil graph falls back to a default.
	if NewSocialNetwork(nil) == nil {
		t.Fatal("nil graph should be tolerated")
	}
}

func TestRegisterMissingDefaultFails(t *testing.T) {
	a := NewChain(2)
	delete(a.Defaults, a.Specs[0].Name)
	eng := sim.NewEngine()
	cl := faas.NewCluster(eng, faas.Config{Seed: 1})
	if err := a.Register(cl); err == nil {
		t.Fatal("expected missing-default error")
	}
}

func TestInputDefaultsToOne(t *testing.T) {
	a := NewChain(1)
	if a.Input(stats.NewRNG(1)) != 1 {
		t.Fatal("nil InputFn should return 1")
	}
	if a.Widths(stats.NewRNG(1)) != nil {
		t.Fatal("nil WidthFn should return nil")
	}
}

func TestFunctionNames(t *testing.T) {
	a := NewFanOutFanIn()
	names := a.FunctionNames()
	if len(names) != 5 || names[0] != "fan-src" || names[4] != "fan-sink" {
		t.Fatalf("names = %v", names)
	}
}

func TestQoSAchievableWhenWellProvisioned(t *testing.T) {
	// With generous resources and warm containers, every app should meet
	// its QoS (the constraint is "latency before saturation").
	for _, a := range All(7) {
		eng, cl, ex := deploy(t, a)
		// Upgrade all functions and pre-warm generously.
		for _, fn := range a.FunctionNames() {
			cl.SetResourceConfig(fn, faas.ResourceConfig{CPU: 4, MemoryMB: 4096})
			cl.SetPrewarmTarget(fn, 16)
		}
		eng.RunUntil(60) // let pre-warming finish
		rng := stats.NewRNG(8)
		var res *workflow.Result
		ex.Execute(a.DAG, a.Input(rng), a.Widths(rng), func(r workflow.Result) { res = &r })
		eng.Run()
		if res == nil {
			t.Fatalf("%s did not complete", a.Name)
		}
		if res.Latency() > a.QoS {
			t.Fatalf("%s warm latency %v exceeds QoS %v", a.Name, res.Latency(), a.QoS)
		}
	}
}
