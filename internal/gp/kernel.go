// Package gp implements exact Gaussian-process regression with fixed
// observation noise, the surrogate model of the paper's container resource
// manager (§5.3): Matérn-5/2 kernels with automatic relevance determination,
// log-marginal-likelihood hyperparameter fitting, and joint posteriors over
// candidate batches for quasi-Monte-Carlo acquisition integration.
package gp

import (
	"math"
)

// Kernel is a positive-definite covariance function over R^d.
type Kernel interface {
	// Eval returns k(a, b).
	Eval(a, b []float64) float64
	// Hyperparameters returns the current log-scale parameters
	// (lengthscales first, output variance last).
	Hyperparameters() []float64
	// SetHyperparameters installs log-scale parameters (same layout).
	SetHyperparameters(h []float64)
}

// scaledDist returns the ARD-scaled Euclidean distance between a and b.
func scaledDist(a, b, lengthscales []float64) float64 {
	var s float64
	for i := range a {
		d := (a[i] - b[i]) / lengthscales[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Matern52 is the Matérn covariance with smoothness 5/2 — the kernel the
// paper uses for both the cost and the latency surrogate models.
type Matern52 struct {
	Lengthscales []float64 // one per input dimension (ARD)
	Variance     float64   // output scale σ²
}

// NewMatern52 returns a Matérn-5/2 kernel with unit lengthscales and
// variance for the given input dimension.
func NewMatern52(dim int) *Matern52 {
	ls := make([]float64, dim)
	for i := range ls {
		ls[i] = 1
	}
	return &Matern52{Lengthscales: ls, Variance: 1}
}

// Eval implements Kernel.
func (k *Matern52) Eval(a, b []float64) float64 {
	r := scaledDist(a, b, k.Lengthscales)
	s5r := math.Sqrt(5) * r
	return k.Variance * (1 + s5r + 5*r*r/3) * math.Exp(-s5r)
}

// Hyperparameters implements Kernel: log lengthscales then log variance.
func (k *Matern52) Hyperparameters() []float64 {
	h := make([]float64, len(k.Lengthscales)+1)
	for i, l := range k.Lengthscales {
		h[i] = math.Log(l)
	}
	h[len(h)-1] = math.Log(k.Variance)
	return h
}

// SetHyperparameters implements Kernel.
func (k *Matern52) SetHyperparameters(h []float64) {
	for i := range k.Lengthscales {
		k.Lengthscales[i] = math.Exp(h[i])
	}
	k.Variance = math.Exp(h[len(h)-1])
}

// RBF is the squared-exponential kernel, available for ablations.
type RBF struct {
	Lengthscales []float64
	Variance     float64
}

// NewRBF returns an RBF kernel with unit lengthscales and variance.
func NewRBF(dim int) *RBF {
	ls := make([]float64, dim)
	for i := range ls {
		ls[i] = 1
	}
	return &RBF{Lengthscales: ls, Variance: 1}
}

// Eval implements Kernel.
func (k *RBF) Eval(a, b []float64) float64 {
	r := scaledDist(a, b, k.Lengthscales)
	return k.Variance * math.Exp(-r*r/2)
}

// Hyperparameters implements Kernel.
func (k *RBF) Hyperparameters() []float64 {
	h := make([]float64, len(k.Lengthscales)+1)
	for i, l := range k.Lengthscales {
		h[i] = math.Log(l)
	}
	h[len(h)-1] = math.Log(k.Variance)
	return h
}

// SetHyperparameters implements Kernel.
func (k *RBF) SetHyperparameters(h []float64) {
	for i := range k.Lengthscales {
		k.Lengthscales[i] = math.Exp(h[i])
	}
	k.Variance = math.Exp(h[len(h)-1])
}
