package bo

import (
	"math"
	"testing"

	"aquatope/internal/stats"
)

// TestNEIAvoidsWinnersCurse: under heavy observation noise, plain EI
// anchors on the (noise-deflated) best observation and under-explores; NEI
// samples the incumbent jointly. We verify NEI's chosen incumbent value is
// statistically higher (more realistic) than the raw noisy minimum.
func TestNEISampleIncumbents(t *testing.T) {
	e := New(Options{Dim: 1, QoS: 10, Seed: 1})
	rng := stats.NewRNG(2)
	// True cost constant at 1.0 with noise: observed min will be ~0.7.
	var obs []Observation
	for i := 0; i < 12; i++ {
		obs = append(obs, Observation{
			X:       []float64{rng.Float64()},
			Cost:    1 + rng.Normal(0, 0.15),
			Latency: 1,
		})
	}
	e.Observe(obs)
	rawMin := math.Inf(1)
	for _, o := range e.cleanObservations() {
		if o.Cost < rawMin {
			rawMin = o.Cost
		}
	}
	inc := e.sampleIncumbents(256)
	if got := stats.Mean(inc); got <= rawMin {
		t.Fatalf("NEI incumbent mean %.3f should exceed noisy raw min %.3f", got, rawMin)
	}
}

// TestEIIncumbentIsObservedBest: under the EI acquisition the incumbent is
// exactly the best observed feasible cost.
func TestEIIncumbentIsObservedBest(t *testing.T) {
	e := New(Options{Dim: 1, QoS: 1.5, Seed: 3, Acquisition: EI, DisableAnomalyDetection: true})
	e.Observe([]Observation{
		{X: []float64{0.2}, Cost: 5, Latency: 1},   // feasible
		{X: []float64{0.8}, Cost: 2, Latency: 2},   // infeasible
		{X: []float64{0.5}, Cost: 3, Latency: 1.2}, // feasible
	})
	inc := e.sampleIncumbents(8)
	for _, v := range inc {
		if v != 3 {
			t.Fatalf("EI incumbent = %v, want 3 (best feasible)", v)
		}
	}
}

// TestEIFallsBackWhenNothingFeasible: with no feasible point the incumbent
// falls back to the overall minimum.
func TestEIFallsBackWhenNothingFeasible(t *testing.T) {
	e := New(Options{Dim: 1, QoS: 0.1, Seed: 4, Acquisition: EI, DisableAnomalyDetection: true})
	e.Observe([]Observation{
		{X: []float64{0.2}, Cost: 5, Latency: 1},
		{X: []float64{0.8}, Cost: 2, Latency: 2},
	})
	inc := e.sampleIncumbents(4)
	if inc[0] != 2 {
		t.Fatalf("fallback incumbent = %v, want 2", inc[0])
	}
}

// TestBatchDiversity: the greedy fantasy update should spread a batch
// rather than picking near-duplicates.
func TestBatchDiversity(t *testing.T) {
	e := New(Options{Dim: 2, QoS: 10, Seed: 5})
	rng := stats.NewRNG(6)
	var obs []Observation
	for i := 0; i < 10; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		obs = append(obs, Observation{X: x, Cost: x[0] + x[1], Latency: 1})
	}
	e.Observe(obs)
	batch := e.Suggest()
	if len(batch) != 3 {
		t.Fatalf("batch size = %d", len(batch))
	}
	// No two batch points should be identical.
	for i := 0; i < len(batch); i++ {
		for j := i + 1; j < len(batch); j++ {
			same := true
			for d := range batch[i] {
				if batch[i][d] != batch[j][d] {
					same = false
				}
			}
			if same {
				t.Fatal("batch contains duplicate candidates")
			}
		}
	}
}

// TestCandidatePoolPrunesInfeasible: after observing a clear feasibility
// boundary, the candidate pool should be dominated by likely-feasible
// points.
func TestCandidatePoolPrunesInfeasible(t *testing.T) {
	e := New(Options{Dim: 1, QoS: 1, Seed: 7})
	// latency = 2 - 1.8x: feasible only for x > ~0.55.
	var obs []Observation
	for _, x := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.2, 0.8, 0.6} {
		obs = append(obs, Observation{X: []float64{x}, Cost: x, Latency: 2 - 1.8*x})
	}
	e.Observe(obs)
	cands := e.candidatePool()
	feasibleish := 0
	for _, c := range cands {
		if c.x[0] > 0.5 {
			feasibleish++
		}
	}
	if float64(feasibleish) < 0.6*float64(len(cands)) {
		t.Fatalf("only %d/%d candidates in the feasible half", feasibleish, len(cands))
	}
}

// TestMadScale sanity.
func TestMadScale(t *testing.T) {
	s := madScale([]float64{-1, -0.5, 0, 0.5, 1})
	if math.Abs(s-0.7413) > 1e-3 {
		t.Fatalf("madScale = %v", s)
	}
	if madScale([]float64{0, 0, 0}) <= 0 {
		t.Fatal("madScale must stay positive")
	}
}
