package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Collector is a Tracer that buffers every span in memory for export. Span
// IDs are assigned sequentially in StartSpan/Point call order, which makes
// the exported stream deterministic for a deterministic simulation. It is
// safe for concurrent use, although the simulator itself is
// single-goroutine.
type Collector struct {
	mu    sync.Mutex
	spans []Span
	byID  map[SpanID]int // open spans → index in spans
	next  SpanID
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{byID: make(map[SpanID]int), next: 1}
}

// Enabled implements Tracer.
func (c *Collector) Enabled() bool { return true }

// StartSpan implements Tracer.
func (c *Collector) StartSpan(kind, name string, parent SpanID, at float64) SpanID {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.next
	c.next++
	c.byID[id] = len(c.spans)
	c.spans = append(c.spans, Span{ID: id, Parent: parent, Kind: kind, Name: name, Start: at, End: at})
	return id
}

// EndSpan implements Tracer.
func (c *Collector) EndSpan(id SpanID, at float64, fields Fields) {
	if id == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	i, ok := c.byID[id]
	if !ok {
		return
	}
	delete(c.byID, id)
	sp := &c.spans[i]
	sp.End = at
	if len(fields) > 0 {
		if sp.Fields == nil {
			sp.Fields = make(Fields, len(fields))
		}
		for k, v := range fields {
			sp.Fields[k] = v
		}
	}
}

// Point implements Tracer.
func (c *Collector) Point(kind, name string, parent SpanID, at float64, fields Fields) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.next
	c.next++
	c.spans = append(c.spans, Span{ID: id, Parent: parent, Kind: kind, Name: name, Start: at, End: at, Fields: fields})
}

// Len returns the number of recorded spans (open or closed).
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.spans)
}

// Spans returns a copy of the recorded spans in creation order.
func (c *Collector) Spans() []Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Span(nil), c.spans...)
}

// WriteJSONL writes one JSON object per span, in creation order. Open spans
// are emitted with End == Start.
func (c *Collector) WriteJSONL(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline
	for i := range c.spans {
		if err := enc.Encode(&c.spans[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteJSONLFile writes the span stream to path, creating or truncating it.
func (c *Collector) WriteJSONLFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.WriteJSONL(f); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return fmt.Errorf("telemetry: writing %s: %w", path, err)
	}
	return f.Close()
}

// ReadJSONL parses a span stream written by WriteJSONL — the replay side of
// the trace format (see DESIGN.md for a summary-table recipe).
func ReadJSONL(r io.Reader) ([]Span, error) {
	var out []Span
	dec := json.NewDecoder(r)
	for {
		var sp Span
		if err := dec.Decode(&sp); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, err
		}
		out = append(out, sp)
	}
}
