package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

var sharedmutAnalyzer = &Analyzer{
	Name: "sharedmut",
	Doc: "flag writes to variables captured by go-statement closures or " +
		"replication-job closures without a guarding mutex: a static " +
		"complement to -race that does not depend on a test exercising " +
		"the interleaving",
	NeedsTypes: true,
	Run:        runSharedmut,
}

// sharedmutConcurrentPkgs are the packages whose function-literal
// arguments (and function-typed struct fields, e.g. runner.Job.Run) run
// on other goroutines; overridden by Rule.Sinks in fixtures.
var sharedmutConcurrentPkgs = []string{"aquatope/internal/experiments/runner"}

func runSharedmut(prog *Program, pkg *Package, file *File, rule Rule, report Reporter) {
	concurrent := rule.Sinks
	if len(concurrent) == 0 {
		concurrent = sharedmutConcurrentPkgs
	}
	info := pkg.Info
	ast.Inspect(file.AST, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				checkConcurrentClosure(info, lit, "go statement", concurrent, report)
			}
		case *ast.CallExpr:
			// Function literals passed directly to the replication engine
			// (runner.Run / runner.MustRun and friends) execute on worker
			// goroutines.
			if path := calleePath(info, x); path != "" && pathInCatalog(path, concurrent) {
				for _, arg := range x.Args {
					if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						checkConcurrentClosure(info, lit, "replication job", concurrent, report)
					}
				}
			}
		case *ast.CompositeLit:
			// Job literals: a function-literal field of a struct declared in
			// a concurrent package (runner.Job{Run: func(...){...}}).
			if !typeInCatalog(info.TypeOf(x), concurrent) {
				return true
			}
			for _, elt := range x.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if lit, ok := ast.Unparen(kv.Value).(*ast.FuncLit); ok {
					checkConcurrentClosure(info, lit, "replication job", concurrent, report)
				}
			}
		}
		return true
	})
}

// calleePath resolves the declaring package of a call's callee: selector
// calls through calleePackage (methods and qualified functions),
// plain-identifier calls through the resolved *types.Func.
func calleePath(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		path, _ := calleePackage(info, fun)
		return path
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok && fn.Pkg() != nil {
			return fn.Pkg().Path()
		}
	}
	return ""
}

// typeInCatalog reports whether t (or its element/slice type) is a named
// type declared in one of the catalog packages.
func typeInCatalog(t types.Type, catalog []string) bool {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Slice:
			t = u.Elem()
			continue
		case *types.Array:
			t = u.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return pathInCatalog(named.Obj().Pkg().Path(), catalog)
}

// checkConcurrentClosure flags writes inside lit to variables declared
// outside it, unless the write is provably private or guarded:
//
//   - writes through a slice/array index that uses a closure-local
//     variable are the engine's sharding idiom (results[i] = …, with i a
//     param or received from a work channel): each goroutine owns its
//     cell, so they are allowed — but map writes are never safe
//     concurrently, indexed or not;
//   - writes lexically preceded by a sync mutex Lock() call inside the
//     same closure are treated as guarded.
func checkConcurrentClosure(info *types.Info, lit *ast.FuncLit, what string, concurrent []string, report Reporter) {
	locks := lockPositions(info, lit, concurrent)
	guarded := func(n ast.Node) bool {
		for _, lp := range locks {
			if lp < n.Pos() {
				return true
			}
		}
		return false
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				checkConcurrentWrite(info, lit, lhs, st, what, guarded, report)
			}
		case *ast.IncDecStmt:
			checkConcurrentWrite(info, lit, st.X, st, what, guarded, report)
		}
		return true
	})
}

func checkConcurrentWrite(info *types.Info, lit *ast.FuncLit, lhs ast.Expr, at ast.Node, what string, guarded func(ast.Node) bool, report Reporter) {
	id := rootIdent(lhs)
	if id == nil || id.Name == "_" {
		return
	}
	obj := info.ObjectOf(id)
	if obj == nil || !capturedBy(obj, lit) {
		return
	}
	if guarded(at) {
		return
	}
	if idx, container := indexedWrite(lhs); idx != nil {
		if isMapIndex(info, container) {
			report(at.Pos(), "%s closure writes to map %s captured from the enclosing scope; concurrent map writes fault at runtime — shard per goroutine and merge, or guard with a mutex", what, obj.Name())
			return
		}
		if exprLocalTo(info, idx, lit) {
			return // per-goroutine cell: results[i] with closure-local i
		}
	}
	report(at.Pos(), "%s closure writes to %s captured from the enclosing scope without a guarding mutex; give each goroutine its own cell (indexed by a closure-local variable) or guard the write", what, obj.Name())
}

// capturedBy reports whether obj is a variable declared outside the
// function literal (and therefore captured by reference).
func capturedBy(obj types.Object, lit *ast.FuncLit) bool {
	if _, ok := obj.(*types.Var); !ok {
		return false
	}
	return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
}

// indexedWrite unwraps an index-expression write target, returning the
// outermost index expression and the container being indexed; (nil, nil)
// for plain identifier / selector targets.
func indexedWrite(lhs ast.Expr) (idx ast.Expr, container ast.Expr) {
	e := ast.Unparen(lhs)
	if ix, ok := e.(*ast.IndexExpr); ok {
		return ix.Index, ix.X
	}
	return nil, nil
}

func isMapIndex(info *types.Info, container ast.Expr) bool {
	t := info.TypeOf(container)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// exprLocalTo reports whether every variable the expression references is
// declared inside the function literal (params included): such an index
// is private to the goroutine.
func exprLocalTo(info *types.Info, e ast.Expr, lit *ast.FuncLit) bool {
	local := true
	sawVar := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return local
		}
		obj := info.ObjectOf(id)
		if v, ok := obj.(*types.Var); ok {
			sawVar = true
			if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
				local = false
			}
		}
		return local
	})
	return local && sawVar
}

// lockPositions collects the positions of mutex Lock() calls made
// directly in the closure body (not in nested literals). A lock is a
// Lock() method on a sync type — or, for fixtures, on a type declared in
// a configured concurrent package.
func lockPositions(info *types.Info, lit *ast.FuncLit, concurrent []string) []token.Pos {
	var locks []token.Pos
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Lock" {
			return true
		}
		if path, _ := calleePackage(info, sel); path == "sync" || pathInCatalog(path, concurrent) {
			locks = append(locks, call.Pos())
		}
		return true
	})
	return locks
}
