package core

import (
	"bytes"
	"testing"

	"aquatope/internal/sched"
	"aquatope/internal/telemetry"
)

// dumpRun executes one full pipeline and returns the span stream and
// metric snapshot bytes.
func dumpRun(t *testing.T, cfg Config) ([]byte, []byte) {
	t.Helper()
	col := telemetry.NewCollector()
	reg := telemetry.NewRegistry()
	cfg.Tracer = col
	cfg.Registry = reg
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	var spans, metrics bytes.Buffer
	if err := col.WriteJSONL(&spans); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteJSON(&metrics); err != nil {
		t.Fatal(err)
	}
	return spans.Bytes(), metrics.Bytes()
}

// TestSchedulerByteIdentity is the refactor-safety bar for the sched
// subsystem: the registered "aquatope" scheduler, parameterized to the
// test model shape, must drive the controller byte-identically to the
// pre-refactor wiring (PoolFactory + ManagerFactory passed directly).
func TestSchedulerByteIdentity(t *testing.T) {
	base := Config{
		Components:   smallComponents(4),
		TrainMin:     120,
		SearchBudget: 10,
		Seed:         5,
	}

	legacy := base
	legacy.PoolFactory = fastPool()
	legacy.ManagerFactory = AquatopeManagerFactory()
	spansL, metricsL := dumpRun(t, legacy)

	viaSched := base
	s, ok := sched.New("aquatope", sched.Options{
		EncoderHidden: 10,
		PredHidden:    []int{10, 6},
		EncoderEpochs: 4,
		PredEpochs:    10,
		MCSamples:     6,
		LR:            0.01,
		Window:        20,
		HeadroomZ:     2,
	})
	if !ok {
		t.Fatal("aquatope scheduler not registered")
	}
	viaSched.Scheduler = s
	spansS, metricsS := dumpRun(t, viaSched)

	if !bytes.Equal(spansL, spansS) {
		t.Errorf("span dumps diverge between factory and sched wiring (%d vs %d bytes): %s",
			len(spansL), len(spansS), firstDivergence(string(spansL), string(spansS)))
	}
	if !bytes.Equal(metricsL, metricsS) {
		t.Error("metric snapshots diverge between factory and sched wiring")
	}
	if len(spansL) == 0 {
		t.Error("expected spans from the full pipeline")
	}
}

// TestSchedulerExclusiveWithFactories: setting both a Scheduler and an
// explicit factory is a configuration error, not a silent precedence rule.
func TestSchedulerExclusiveWithFactories(t *testing.T) {
	s, _ := sched.New("naive", sched.Options{})
	_, err := Run(Config{
		Components:  smallComponents(1),
		TrainMin:    60,
		Scheduler:   s,
		PoolFactory: fastPool(),
		Seed:        1,
	})
	if err == nil {
		t.Fatal("Scheduler + PoolFactory should be rejected")
	}
}
