package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
	if got := Variance([]float64{1}); got != 0 {
		t.Fatalf("Variance(single) = %v, want 0", got)
	}
}

func TestSampleVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := SampleVariance(xs); !almostEqual(got, 2.5, 1e-12) {
		t.Fatalf("SampleVariance = %v, want 2.5", got)
	}
}

func TestCV(t *testing.T) {
	if got := CV([]float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("CV constant = %v, want 0", got)
	}
	if got := CV([]float64{0, 0}); got != 0 {
		t.Fatalf("CV zero-mean = %v, want 0", got)
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := CV(xs); !almostEqual(got, 2.0/5.0, 1e-12) {
		t.Fatalf("CV = %v, want 0.4", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 || Sum(xs) != 11 {
		t.Fatalf("Min/Max/Sum got %v/%v/%v", Min(xs), Max(xs), Sum(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty Min/Max should be +/-Inf")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	if got := Percentile(xs, 50); got != 35 {
		t.Fatalf("P50 = %v, want 35", got)
	}
	if got := Percentile(xs, 0); got != 15 {
		t.Fatalf("P0 = %v, want 15", got)
	}
	if got := Percentile(xs, 100); got != 50 {
		t.Fatalf("P100 = %v, want 50", got)
	}
	if got := Percentile(xs, 25); got != 20 {
		t.Fatalf("P25 = %v, want 20", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("P50(nil) = %v, want 0", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Percentile mutated input: %v", xs)
	}
}

func TestSMAPE(t *testing.T) {
	if got := SMAPE([]float64{1, 2, 3}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("SMAPE exact = %v, want 0", got)
	}
	// One pair (100 vs 0): |100-0|/((100+0)/2) = 2 -> 200%.
	if got := SMAPE([]float64{100}, []float64{0}); !almostEqual(got, 200, 1e-9) {
		t.Fatalf("SMAPE = %v, want 200", got)
	}
	// Zero pairs contribute nothing.
	if got := SMAPE([]float64{0, 0}, []float64{0, 0}); got != 0 {
		t.Fatalf("SMAPE zeros = %v, want 0", got)
	}
}

func TestSMAPEBounds(t *testing.T) {
	err := quick.Check(func(a, b []float64) bool {
		v := SMAPE(a, b)
		return v >= 0 && v <= 200 && !math.IsNaN(v)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMAERMSE(t *testing.T) {
	a := []float64{1, 2, 3}
	p := []float64{2, 2, 5}
	if got := MAE(a, p); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("MAE = %v, want 1", got)
	}
	if got := RMSE(a, p); !almostEqual(got, math.Sqrt(5.0/3.0), 1e-12) {
		t.Fatalf("RMSE = %v", got)
	}
}

func TestNormalCDFQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
		x := NormalQuantile(p)
		if got := NormalCDF(x); !almostEqual(got, p, 1e-8) {
			t.Fatalf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if NormalQuantile(0.5) != 0 && !almostEqual(NormalQuantile(0.5), 0, 1e-12) {
		t.Fatalf("Quantile(0.5) = %v, want 0", NormalQuantile(0.5))
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Fatal("Quantile at bounds should be infinite")
	}
}

func TestNormalPDF(t *testing.T) {
	if got := NormalPDF(0); !almostEqual(got, 1/math.Sqrt(2*math.Pi), 1e-12) {
		t.Fatalf("PDF(0) = %v", got)
	}
}

func TestStandardize(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	scaled, mean, std := Standardize(xs)
	if !almostEqual(Mean(scaled), 0, 1e-12) {
		t.Fatalf("standardized mean = %v", Mean(scaled))
	}
	if !almostEqual(StdDev(scaled), 1, 1e-12) {
		t.Fatalf("standardized std = %v", StdDev(scaled))
	}
	if mean != 2.5 || std == 0 {
		t.Fatalf("mean/std = %v/%v", mean, std)
	}
	// Constant input must not divide by zero.
	scaled, _, std = Standardize([]float64{7, 7, 7})
	if std != 1 {
		t.Fatalf("constant std = %v, want 1", std)
	}
	for _, v := range scaled {
		if v != 0 {
			t.Fatalf("constant scaled = %v, want 0", v)
		}
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Fatal("Clamp broken")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed should produce same stream")
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	g := NewRNG(1)
	n := 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = g.Normal(3, 2)
	}
	if m := Mean(xs); !almostEqual(m, 3, 0.1) {
		t.Fatalf("normal mean = %v", m)
	}
	if s := StdDev(xs); !almostEqual(s, 2, 0.1) {
		t.Fatalf("normal std = %v", s)
	}
}

func TestRNGExponentialMean(t *testing.T) {
	g := NewRNG(2)
	n := 20000
	var s float64
	for i := 0; i < n; i++ {
		s += g.Exponential(4)
	}
	if m := s / float64(n); !almostEqual(m, 0.25, 0.02) {
		t.Fatalf("exp mean = %v, want 0.25", m)
	}
	if g.Exponential(0) != 0 {
		t.Fatal("rate 0 should return 0")
	}
}

func TestRNGPoisson(t *testing.T) {
	g := NewRNG(3)
	for _, mean := range []float64{0.5, 3, 10, 80} {
		n := 20000
		var s float64
		for i := 0; i < n; i++ {
			s += float64(g.Poisson(mean))
		}
		got := s / float64(n)
		if !almostEqual(got, mean, mean*0.05+0.05) {
			t.Fatalf("poisson(%v) mean = %v", mean, got)
		}
	}
	if g.Poisson(0) != 0 || g.Poisson(-1) != 0 {
		t.Fatal("nonpositive mean should return 0")
	}
}

func TestRNGPareto(t *testing.T) {
	g := NewRNG(4)
	for i := 0; i < 1000; i++ {
		if v := g.Pareto(2, 1.5); v < 2 {
			t.Fatalf("pareto sample %v below xm", v)
		}
	}
}

func TestRNGUniformRange(t *testing.T) {
	g := NewRNG(5)
	for i := 0; i < 1000; i++ {
		v := g.Uniform(3, 7)
		if v < 3 || v >= 7 {
			t.Fatalf("uniform out of range: %v", v)
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	g := NewRNG(6)
	c1 := g.Split()
	c2 := g.Split()
	same := true
	for i := 0; i < 20; i++ {
		if c1.Float64() != c2.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("split streams should differ")
	}
}

func TestRNGBernoulli(t *testing.T) {
	g := NewRNG(7)
	n, hits := 20000, 0
	for i := 0; i < n; i++ {
		if g.Bernoulli(0.3) {
			hits++
		}
	}
	if p := float64(hits) / float64(n); !almostEqual(p, 0.3, 0.02) {
		t.Fatalf("bernoulli p = %v", p)
	}
}
