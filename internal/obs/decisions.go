package obs

import (
	"fmt"
	"sort"

	"aquatope/internal/telemetry"
)

// DecisionRecord is one reconstructed control-plane decision: a pool-sizing
// tick, a BO suggestion or observe round, a guard mode switch, or a circuit
// breaker transition — with a human-readable "why" built from the explain
// fields the emitting subsystem recorded.
type DecisionRecord struct {
	Time   float64          `json:"t_s"`
	Kind   string           `json:"kind"`
	Name   string           `json:"name,omitempty"`
	Why    string           `json:"why"`
	Fields telemetry.Fields `json:"fields,omitempty"`
}

// PoolFnStats aggregates pool decisions for one function.
type PoolFnStats struct {
	Function  string  `json:"function"`
	Decisions int     `json:"decisions"`
	Degraded  int     `json:"degraded"`
	Rewarms   int     `json:"rewarms"`
	MeanPred  float64 `json:"mean_predicted"`
	MeanHead  float64 `json:"mean_headroom"`
	MeanTgt   float64 `json:"mean_target"`
	MaxTgt    int     `json:"max_target"`
}

// DecisionSummary rolls the audit log up for the summary report.
type DecisionSummary struct {
	PoolDecisions int `json:"pool_decisions"`
	Degraded      int `json:"degraded_decisions"`
	Rewarms       int `json:"rewarms"`
	ModeSwitches  int `json:"mode_switches"`
	BOSuggests    int `json:"bo_suggests"`
	BOBootstraps  int `json:"bo_bootstraps"`
	BOIterations  int `json:"bo_iterations"`
	BreakerEvents int `json:"breaker_events"`
	// SchedDecisions counts sched.decision explain records — configuration
	// decisions by non-BO schedulers from the internal/sched arena.
	SchedDecisions int           `json:"sched_decisions,omitempty"`
	PerFunction    []PoolFnStats `json:"per_function,omitempty"`
}

// buildAudit reconstructs the decision audit log from a span stream. Spans
// arrive in creation order, which for points equals time order, so the log
// is chronological by construction.
func buildAudit(spans []telemetry.Span) ([]DecisionRecord, DecisionSummary) {
	var log []DecisionRecord
	var sum DecisionSummary
	perFn := make(map[string]*PoolFnStats)
	var fnOrder []string
	fnStats := func(name string) *PoolFnStats {
		s, ok := perFn[name]
		if !ok {
			s = &PoolFnStats{Function: name}
			perFn[name] = s
			fnOrder = append(fnOrder, name)
		}
		return s
	}
	for _, sp := range spans {
		switch sp.Kind {
		case telemetry.KindPoolDecision:
			rec := DecisionRecord{Time: sp.Start, Kind: sp.Kind, Name: sp.Name, Fields: sp.Fields}
			s := fnStats(sp.Name)
			switch sp.Fields["why"] {
			case 2: // rewarm (also tagged rewarm:1)
				sum.Rewarms++
				s.Rewarms++
				rec.Why = fmt.Sprintf("re-warm to target %.0f after invoker %.0f crash",
					sp.Fields["target"], sp.Fields["invoker"])
			case 1:
				sum.PoolDecisions++
				sum.Degraded++
				s.Decisions++
				s.Degraded++
				s.MeanPred += sp.Fields["predicted"]
				s.MeanHead += sp.Fields["headroom"]
				s.MeanTgt += sp.Fields["target"]
				if t := int(sp.Fields["target"]); t > s.MaxTgt {
					s.MaxTgt = t
				}
				rec.Why = fmt.Sprintf("degraded: recent-peak fallback → target %.0f (model said %.1f±%.1f; demand %.0f, sheds %.0f, open breakers %.0f)",
					sp.Fields["target"], sp.Fields["predicted"], sp.Fields["headroom"],
					sp.Fields["demand"], sp.Fields["sheds_interval"], sp.Fields["open_breakers"])
			default:
				sum.PoolDecisions++
				s.Decisions++
				s.MeanPred += sp.Fields["predicted"]
				s.MeanHead += sp.Fields["headroom"]
				s.MeanTgt += sp.Fields["target"]
				if t := int(sp.Fields["target"]); t > s.MaxTgt {
					s.MaxTgt = t
				}
				rec.Why = fmt.Sprintf("model: forecast %.1f + headroom %.1f → target %.0f (actual peak %.0f; warm %.0f idle/%.0f warming/%.0f busy)",
					sp.Fields["predicted"], sp.Fields["headroom"], sp.Fields["target"],
					sp.Fields["actual"], sp.Fields["idle"], sp.Fields["warming"], sp.Fields["busy"])
			}
			log = append(log, rec)
		case telemetry.KindPoolMode:
			sum.ModeSwitches++
			why := fmt.Sprintf("recovered to model-driven sizing (sheds %.0f)", sp.Fields["sheds"])
			if sp.Fields["mode"] == 1 {
				trigger := "model uncertainty above calibration bound"
				if sp.Fields["trigger"] == 1 {
					trigger = fmt.Sprintf("admission shed %.0f invocations in one interval", sp.Fields["sheds"])
				}
				why = "entered degraded mode: " + trigger
			}
			log = append(log, DecisionRecord{Time: sp.Start, Kind: sp.Kind, Name: sp.Name, Why: why, Fields: sp.Fields})
		case telemetry.KindBODecision:
			sum.BOSuggests++
			var why string
			if sp.Fields["bootstrap"] == 1 {
				sum.BOBootstraps++
				why = fmt.Sprintf("bootstrap: %.0f quasi-random configs (%.0f observations so far)",
					sp.Fields["batch"], sp.Fields["observations"])
			} else {
				why = fmt.Sprintf("model: batch of %.0f from %.0f candidates, acquisition %.4g; pick 0 posterior cost %.3g±%.3g, latency %.3g±%.3g vs QoS %.3g (feasibility %.2f)",
					sp.Fields["batch"], sp.Fields["candidates"], sp.Fields["acquisition"],
					sp.Fields["cost_mean"], sp.Fields["cost_sd"],
					sp.Fields["lat_mean"], sp.Fields["lat_sd"],
					sp.Fields["qos"], sp.Fields["feasibility"])
			}
			log = append(log, DecisionRecord{Time: sp.Start, Kind: sp.Kind, Name: sp.Name, Why: why, Fields: sp.Fields})
		case telemetry.KindBOIteration:
			sum.BOIterations++
			why := fmt.Sprintf("observed batch: %.0f total observations, %.0f pruned as anomalies",
				sp.Fields["observations"], sp.Fields["pruned"])
			if inc, ok := sp.Fields["incumbent_cost"]; ok {
				why += fmt.Sprintf("; incumbent cost %.4g at latency %.3g", inc, sp.Fields["incumbent_latency"])
			}
			log = append(log, DecisionRecord{Time: sp.Start, Kind: sp.Kind, Name: sp.Name, Why: why, Fields: sp.Fields})
		case telemetry.KindSchedDecision:
			sum.SchedDecisions++
			var why string
			switch {
			case sp.Fields["peak"] == 1:
				why = fmt.Sprintf("peak provisioning: max CPU/memory everywhere, cost %.4g at latency %.3g vs QoS %.3g",
					sp.Fields["cost"], sp.Fields["lat"], sp.Fields["qos"])
			case sp.Name == "jolteon":
				verdict := "frozen"
				if sp.Fields["accepted"] == 1 {
					verdict = "accepted"
				}
				tried := "anchor (all-max vCPUs)"
				if sp.Fields["fn"] >= 0 {
					tried = fmt.Sprintf("step-down of fn %.0f", sp.Fields["fn"])
				}
				why = fmt.Sprintf("%s: %s — P(1-%.2f) latency bound %.3g vs QoS %.3g (mean %.3g±%.3g over %.0f samples), cost %.4g; %.0f fns frozen",
					verdict, tried, sp.Fields["risk"], sp.Fields["bound"], sp.Fields["qos"],
					sp.Fields["lat_mean"], sp.Fields["lat_sd"], sp.Fields["samples"],
					sp.Fields["cost"], sp.Fields["frozen"])
			default:
				verdict := fmt.Sprintf("infeasible, frontier %.0f deep", sp.Fields["frontier"])
				if sp.Fields["satisfied"] == 1 {
					verdict = "satisfied — best-fit found"
				}
				why = fmt.Sprintf("BFS best-fit probe at %.0f memory grains: latency %.3g vs QoS %.3g, cost %.4g (%s)",
					sp.Fields["mem_levels"], sp.Fields["lat"], sp.Fields["qos"], sp.Fields["cost"], verdict)
			}
			log = append(log, DecisionRecord{Time: sp.Start, Kind: sp.Kind, Name: sp.Name, Why: why, Fields: sp.Fields})
		case telemetry.KindBreaker:
			sum.BreakerEvents++
			state := "closed"
			switch sp.Fields["state"] {
			case 1:
				state = "open"
			case 2:
				state = "half-open"
			}
			why := fmt.Sprintf("invoker %.0f breaker → %s (error rate %.2f)",
				sp.Fields["invoker"], state, sp.Fields["err_rate"])
			log = append(log, DecisionRecord{Time: sp.Start, Kind: sp.Kind, Name: sp.Name, Why: why, Fields: sp.Fields})
		}
	}
	sort.Strings(fnOrder)
	for _, name := range fnOrder {
		s := perFn[name]
		if s.Decisions > 0 {
			s.MeanPred /= float64(s.Decisions)
			s.MeanHead /= float64(s.Decisions)
			s.MeanTgt /= float64(s.Decisions)
		}
		sum.PerFunction = append(sum.PerFunction, *s)
	}
	return log, sum
}
