package bo_test

import (
	"fmt"

	"aquatope/internal/bo"
)

// ExampleEngine runs the customized Bayesian optimizer on a toy
// constrained problem: minimize cost = x subject to latency = 1.5 - x
// staying below the QoS of 1.0 (so the optimum sits at x ≈ 0.5).
func ExampleEngine() {
	eng := bo.New(bo.Options{Dim: 1, QoS: 1.0, Seed: 7})
	for iter := 0; iter < 12; iter++ {
		batch := eng.Suggest()
		obs := make([]bo.Observation, len(batch))
		for i, x := range batch {
			obs[i] = bo.Observation{X: x, Cost: x[0], Latency: 1.5 - x[0]}
		}
		eng.Observe(obs)
	}
	x, cost, ok := eng.BestFeasible()
	fmt.Printf("found feasible: %v\n", ok)
	fmt.Printf("near the boundary: %v\n", x[0] >= 0.5 && x[0] < 0.7)
	fmt.Printf("cost below 0.7: %v\n", cost < 0.7)
	// Output:
	// found feasible: true
	// near the boundary: true
	// cost below 0.7: true
}
