// Package core is Aquatope's top-level controller: it joins the dynamic
// pre-warmed container pool (§4) with the container resource manager (§5)
// and runs multi-stage serverless applications end to end on the simulated
// FaaS platform, reproducing the paper's full-system evaluation (§8.3).
//
// The controller operates exactly as Fig. 1 describes: the resource
// manager first searches for a near-optimal per-function configuration by
// profiling candidates (on side clusters, standing in for the paper's
// worker-server sampling); the chosen configuration is installed; the pool
// scheduler trains its prediction models on the trace history and then
// adjusts each function's pre-warmed container pool every interval while
// live traffic replays.
package core

import (
	"fmt"
	"math"
	"sort"

	"aquatope/internal/apps"
	"aquatope/internal/bo"
	"aquatope/internal/chaos"
	"aquatope/internal/faas"
	"aquatope/internal/loadgen"
	"aquatope/internal/pool"
	"aquatope/internal/resource"
	"aquatope/internal/sched"
	"aquatope/internal/sim"
	"aquatope/internal/stats"
	"aquatope/internal/telemetry"
	"aquatope/internal/trace"
	"aquatope/internal/workflow"
)

// Component pairs an application with the trace that drives it.
type Component struct {
	App   *apps.App
	Trace *trace.Trace
}

// PolicyFactory builds a pool policy for one function.
type PolicyFactory func(fn string) pool.Policy

// ManagerFactory builds a resource-manager for one application.
type ManagerFactory func(space *resource.Space, prof *resource.Profiler, qos float64, seed int64) resource.Manager

// Config parameterizes an end-to-end run.
type Config struct {
	Components []Component
	// TrainMin is the training prefix (minutes); metrics cover the rest.
	TrainMin int
	// PoolFactory supplies the container-pool policy (nil = provider
	// fixed keep-alive).
	PoolFactory PolicyFactory
	// ManagerFactory supplies the resource manager (nil = keep each
	// app's default configuration).
	ManagerFactory ManagerFactory
	// Scheduler supplies both halves — pool policy and resource manager —
	// from the pluggable internal/sched registry; its PoolSizer and
	// Configurator become the two factories above. Mutually exclusive
	// with setting PoolFactory/ManagerFactory directly.
	Scheduler sched.Scheduler
	// SearchBudget is the profiling-sample budget per application.
	SearchBudget int
	// ProfileNoise is the platform noise during configuration profiling.
	ProfileNoise faas.Noise
	// RuntimeNoise is the platform noise during the live run.
	RuntimeNoise faas.Noise
	// ColdStartFraction makes the profiler observe that share of cold
	// executions (Fig. 17's no-pool resource manager must average over
	// cold and warm behaviour).
	ColdStartFraction float64
	// ClusterCfg overrides the live platform configuration.
	ClusterCfg faas.Config
	// Tracer receives workflow/stage/invocation spans, container lifecycle
	// and pool/BO decision points from the live run (nil = tracing off).
	Tracer telemetry.Tracer
	// Registry collects metrics from all subsystems of the live run. When
	// nil a private registry is created (latency percentiles are always
	// computed from it).
	Registry *telemetry.Registry
	// Chosen, when non-nil, injects pre-searched per-app resource
	// configurations and skips the phase-1 search entirely. Harnesses that
	// fan the per-app searches out across workers (SearchSeeds +
	// SearchComponent) hand the merged result back through this field.
	Chosen map[string]map[string]faas.ResourceConfig
	// Chaos is an optional fault scenario armed on the live cluster (an
	// empty scenario injects nothing).
	Chaos chaos.Scenario
	// Resilience enables the workflow retry/timeout/hedging layer for the
	// live run (nil = fire-once).
	Resilience *workflow.RetryPolicy
	// PoolGuard enables degraded-mode fallback on the pool manager: under
	// heavy admission shedding or blown-out model uncertainty, pre-warm
	// targets switch to a conservative recent-peak rule (nil = off).
	PoolGuard *pool.Guard
	Seed      int64
}

// AppResult reports one application's test-window outcome.
type AppResult struct {
	Workflows     int
	QoSViolations int
	// LatencyViolations, FailureViolations and ShedViolations attribute
	// QoSViolations: a workflow that lost its output to an unrecovered
	// fault violates QoS regardless of how fast it failed; one whose
	// settling failure was an admission shed is overload the platform
	// chose (fast, bounded rejection) rather than a hard fault; one that
	// completed but missed its latency target is late.
	LatencyViolations int
	FailureViolations int
	ShedViolations    int
	// FailedWorkflows counts workflows with at least one terminally failed
	// stage instance (equals FailureViolations + ShedViolations).
	FailedWorkflows int
	// Retries and Hedges count resilience-layer re-issued and hedged
	// attempts over the test window; RetriesDenied and HedgesSkipped
	// count the ones its retry budget / hedge backpressure suppressed.
	Retries       int
	Hedges        int
	RetriesDenied int
	HedgesSkipped int
	// ShedInvocations counts stage attempts rejected by admission control.
	ShedInvocations int
	ColdStarts      int
	Invocations     int
	CPUTime         float64
	MemTime         float64
	MeanLatency     float64
	// P50/P95/P99 are end-to-end workflow latency percentiles over the
	// test window, from the app's telemetry histogram.
	P50, P95, P99 float64
	// ChosenConfig is the configuration the resource manager installed.
	ChosenConfig map[string]faas.ResourceConfig
}

// ViolationRate returns the fraction of workflows missing their QoS.
func (r AppResult) ViolationRate() float64 {
	if r.Workflows == 0 {
		return 0
	}
	return float64(r.QoSViolations) / float64(r.Workflows)
}

// Result aggregates an end-to-end run.
type Result struct {
	PerApp map[string]AppResult
	// ProvisionedMemGBs is held container memory over the test window.
	ProvisionedMemGBs float64
}

// Workflows returns the total workflow count.
func (r Result) Workflows() int {
	n := 0
	for _, a := range r.PerApp {
		n += a.Workflows
	}
	return n
}

// QoSViolationRate returns the aggregate violation fraction.
func (r Result) QoSViolationRate() float64 {
	var v, n int
	for _, a := range r.PerApp {
		v += a.QoSViolations
		n += a.Workflows
	}
	if n == 0 {
		return 0
	}
	return float64(v) / float64(n)
}

// FailedWorkflows returns the total workflows lost to unrecovered faults.
func (r Result) FailedWorkflows() int {
	n := 0
	for _, a := range r.PerApp {
		n += a.FailedWorkflows
	}
	return n
}

// Retries returns total resilience-layer retries across apps.
func (r Result) Retries() int {
	n := 0
	for _, a := range r.PerApp {
		n += a.Retries
	}
	return n
}

// Hedges returns total hedged attempts across apps.
func (r Result) Hedges() int {
	n := 0
	for _, a := range r.PerApp {
		n += a.Hedges
	}
	return n
}

// ShedViolations returns total workflows settled by admission sheds.
func (r Result) ShedViolations() int {
	n := 0
	for _, a := range r.PerApp {
		n += a.ShedViolations
	}
	return n
}

// ShedInvocations returns total stage attempts rejected by admission
// control across apps.
func (r Result) ShedInvocations() int {
	n := 0
	for _, a := range r.PerApp {
		n += a.ShedInvocations
	}
	return n
}

// RetriesDenied returns total budget-suppressed retries across apps.
func (r Result) RetriesDenied() int {
	n := 0
	for _, a := range r.PerApp {
		n += a.RetriesDenied
	}
	return n
}

// HedgesSkipped returns total suppressed hedges across apps.
func (r Result) HedgesSkipped() int {
	n := 0
	for _, a := range r.PerApp {
		n += a.HedgesSkipped
	}
	return n
}

// Goodput returns the fraction of workflows that completed successfully
// (whatever their latency) — the chaos experiments' recovery metric.
func (r Result) Goodput() float64 {
	n := r.Workflows()
	if n == 0 {
		return 0
	}
	return float64(n-r.FailedWorkflows()) / float64(n)
}

// ColdStartRate returns the aggregate cold-start fraction.
func (r Result) ColdStartRate() float64 {
	var c, n int
	for _, a := range r.PerApp {
		c += a.ColdStarts
		n += a.Invocations
	}
	if n == 0 {
		return 0
	}
	return float64(c) / float64(n)
}

// appNames returns the PerApp keys in sorted order so float aggregation
// below is independent of map iteration order (same-seed runs must produce
// bit-identical results).
func (r Result) appNames() []string {
	names := make([]string, 0, len(r.PerApp))
	for name := range r.PerApp {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// CPUTime returns total core-seconds across apps (test window).
func (r Result) CPUTime() float64 {
	var s float64
	for _, name := range r.appNames() {
		s += r.PerApp[name].CPUTime
	}
	return s
}

// MemTime returns total GB-seconds across apps (test window).
func (r Result) MemTime() float64 {
	var s float64
	for _, name := range r.appNames() {
		s += r.PerApp[name].MemTime
	}
	return s
}

// SearchSeeds pre-draws the (profiler, manager) seed pair each component's
// phase-1 search consumes, in component order from the run's root RNG.
// Fanning the searches out across workers with these pinned pairs
// reproduces the serial phase byte-for-byte.
func SearchSeeds(cfg Config) [][2]int64 {
	rng := stats.NewRNG(cfg.Seed)
	out := make([][2]int64, len(cfg.Components))
	for i := range out {
		out[i] = [2]int64{rng.Int63(), rng.Int63()}
	}
	return out
}

// SearchComponent runs the phase-1 resource search for component i and
// returns its chosen per-function configurations. It is self-contained —
// profiler, space and manager are private to the call — so independent
// components may search concurrently as long as each gets its SearchSeeds
// pair and its own tracer.
func SearchComponent(cfg Config, i int, seeds [2]int64, tracer telemetry.Tracer) map[string]faas.ResourceConfig {
	a := cfg.Components[i].App
	if cfg.ManagerFactory == nil {
		return a.Defaults
	}
	tracer = telemetry.OrNop(tracer)
	space := resource.NewSpace(a)
	prof := resource.NewProfiler(a, seeds[0])
	prof.Noise = cfg.ProfileNoise
	prof.ColdStartFraction = cfg.ColdStartFraction
	m := cfg.ManagerFactory(space, prof, a.QoS, seeds[1])
	if bm, ok := m.(interface{ Engine() *bo.Engine }); ok {
		if be := bm.Engine(); be != nil {
			be.SetTracer(tracer)
		}
	}
	if st, ok := m.(interface{ SetTracer(telemetry.Tracer) }); ok {
		st.SetTracer(tracer)
	}
	budget := cfg.SearchBudget
	if budget <= 0 {
		budget = 30
	}
	resource.Search(m, budget)
	if b, _, ok := m.Best(); ok {
		return b
	}
	return a.Defaults
}

// Run executes the end-to-end experiment.
func Run(cfg Config) (Result, error) {
	if len(cfg.Components) == 0 {
		return Result{}, fmt.Errorf("core: no components")
	}
	if cfg.TrainMin <= 0 {
		return Result{}, fmt.Errorf("core: TrainMin must be positive")
	}
	if cfg.Scheduler != nil {
		if cfg.PoolFactory != nil || cfg.ManagerFactory != nil {
			return Result{}, fmt.Errorf("core: Scheduler is mutually exclusive with PoolFactory/ManagerFactory")
		}
		if ps := cfg.Scheduler.PoolSizer(); ps != nil {
			cfg.PoolFactory = ps.Policy
		}
		if c := cfg.Scheduler.Configurator(); c != nil {
			cfg.ManagerFactory = c.Manager
		}
	}
	tracer := telemetry.OrNop(cfg.Tracer)
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}

	// Phase 1: per-app resource search (offline profiling), unless the
	// harness already ran it (fanned out) and injected the result.
	chosen := cfg.Chosen
	if chosen == nil {
		seeds := SearchSeeds(cfg)
		chosen = make(map[string]map[string]faas.ResourceConfig)
		for i, comp := range cfg.Components {
			chosen[comp.App.Name] = SearchComponent(cfg, i, seeds[i], tracer)
		}
	}

	// Phase 2: live cluster, instrumented end to end.
	eng := sim.NewEngine()
	eng.SetMetrics(reg)
	ccfg := cfg.ClusterCfg
	ccfg.Noise = cfg.RuntimeNoise
	ccfg.Registry = reg
	if ccfg.Seed == 0 {
		ccfg.Seed = cfg.Seed + 1
	}
	cl := faas.NewCluster(eng, ccfg)
	cl.SetTracer(tracer)
	for _, comp := range cfg.Components {
		if err := comp.App.Register(cl); err != nil {
			return Result{}, err
		}
		for fn, rc := range chosen[comp.App.Name] {
			if err := cl.SetResourceConfig(fn, rc); err != nil {
				return Result{}, err
			}
		}
	}
	ex := workflow.NewExecutor(cl)
	ex.Policy = cfg.Resilience
	ex.Seed = cfg.Seed + 7919
	if !cfg.Chaos.Empty() {
		chaos.New(cl, cfg.Chaos).Arm()
	}

	// Schedule workflow arrivals for every component over the full trace.
	trainCut := float64(cfg.TrainMin) * 60
	if tracer.Enabled() {
		// One run.meta point per application: the QoS target and training
		// cutoff that post-hoc analysis (cmd/aquatrace) needs to flag
		// violators and restrict rollups to the evaluation window.
		for _, comp := range cfg.Components {
			tracer.Point(telemetry.KindRunMeta, comp.App.Name, 0, 0, telemetry.Fields{
				"qos":      comp.App.QoS,
				"train_s":  trainCut,
				"invokers": float64(len(cl.Invokers())),
			})
		}
	}
	type appStats struct {
		res  *AppResult
		qos  float64
		lats []float64
		hist *telemetry.Histogram
	}
	statsByApp := make(map[string]*appStats)
	for _, comp := range cfg.Components {
		st := &appStats{
			res:  &AppResult{ChosenConfig: chosen[comp.App.Name]},
			qos:  comp.App.QoS,
			hist: reg.Histogram(telemetry.MetricWorkflowLatency + "." + comp.App.Name),
		}
		statsByApp[comp.App.Name] = st
		driver := &loadgen.Driver{
			Executor: ex,
			App:      comp.App,
			Trace:    comp.Trace,
			Seed:     cfg.Seed + int64(len(statsByApp)),
			OnResult: func(r workflow.Result) {
				if r.SubmitTime < trainCut {
					return
				}
				st.res.Workflows++
				if r.Failed {
					// A faulted workflow has no output: it violates QoS
					// no matter how quickly it gave up. Sheds are
					// attributed separately: the platform rejected the
					// work to stay stable, it did not lose it.
					st.res.QoSViolations++
					st.res.FailedWorkflows++
					if r.ShedStages > 0 {
						st.res.ShedViolations++
					} else {
						st.res.FailureViolations++
					}
				} else if r.Latency() > st.qos {
					st.res.QoSViolations++
					st.res.LatencyViolations++
				}
				st.res.Retries += r.Retries
				st.res.Hedges += r.Hedges
				st.res.RetriesDenied += r.RetriesDenied
				st.res.HedgesSkipped += r.HedgesSkipped
				st.res.ShedInvocations += r.Sheds
				st.res.ColdStarts += r.ColdStarts
				st.res.Invocations += r.Invocations
				st.res.CPUTime += r.CPUTime()
				st.res.MemTime += r.MemTime()
				if !r.Failed {
					// Failed workflows abort early; their "latency" is
					// time-to-failure and would skew the percentiles.
					st.lats = append(st.lats, r.Latency())
					st.hist.Observe(r.Latency())
				}
			},
		}
		driver.Start()
	}

	// Phase 3: container pool management. History accrues from t=0;
	// policies are fitted at the training boundary and applied after it.
	var mgr *pool.Manager
	if cfg.PoolFactory != nil {
		mgr = pool.NewManager(cl)
		mgr.ApplyAfter = trainCut
		mgr.Guard = cfg.PoolGuard
		policies := make(map[string]pool.Policy)
		for _, comp := range cfg.Components {
			tr := comp.Trace
			for _, fn := range comp.App.FunctionNames() {
				p := cfg.PoolFactory(fn)
				policies[fn] = p
				mgr.Manage(fn, p, 0)
				_ = tr
			}
		}
		mgr.Start()
		eng.Schedule(trainCut, func() {
			for _, comp := range cfg.Components {
				tr := comp.Trace
				for _, fn := range comp.App.FunctionNames() {
					fn := fn
					policies[fn].Fit(pool.FitData{
						Demand:   mgr.History(fn),
						Arrivals: arrivalsBefore(tr.Arrivals, trainCut),
						FeatFn:   func(i int) []float64 { return tr.Features(i) },
					})
				}
			}
		})
	}

	// Metrics snapshot at the training boundary.
	var provBase float64
	eng.Schedule(trainCut, func() { provBase = cl.Metrics().ProvisionedMemTime() })

	horizon := 0.0
	for _, comp := range cfg.Components {
		if h := float64(comp.Trace.DurationMin) * 60; h > horizon {
			horizon = h
		}
	}
	// Allow in-flight workflows to finish.
	eng.RunUntil(horizon + 300)
	cl.Flush()

	out := Result{PerApp: make(map[string]AppResult)}
	for name, st := range statsByApp {
		if len(st.lats) > 0 {
			st.res.MeanLatency = stats.Mean(st.lats)
			st.res.P50 = st.hist.Quantile(0.50)
			st.res.P95 = st.hist.Quantile(0.95)
			st.res.P99 = st.hist.Quantile(0.99)
		}
		out.PerApp[name] = *st.res
	}
	out.ProvisionedMemGBs = cl.Metrics().ProvisionedMemTime() - provBase
	if math.IsNaN(out.ProvisionedMemGBs) || out.ProvisionedMemGBs < 0 {
		out.ProvisionedMemGBs = 0
	}
	return out, nil
}

func arrivalsBefore(arrivals []float64, cut float64) []float64 {
	var out []float64
	for _, a := range arrivals {
		if a < cut {
			out = append(out, a)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Preset system variants used throughout the evaluation (§8.3).

// AquatopePoolFactory returns the paper's hybrid-Bayesian pool policy with
// a compact model configuration suitable for minute-scale traces.
func AquatopePoolFactory(lite bool) PolicyFactory {
	return func(fn string) pool.Policy {
		cfg := pool.DefaultModelConfig(trace.FeatureDim)
		cfg.EncoderHidden = 20
		cfg.PredHidden = []int{20, 10}
		cfg.EncoderEpochs = 10
		cfg.PredEpochs = 25
		cfg.MCSamples = 12
		cfg.LR = 0.01
		return &pool.Aquatope{ModelConfig: cfg, Window: 40, HeadroomZ: 2.5, Lite: lite}
	}
}

// AutoscalePoolFactory returns the reactive autoscaling pool baseline.
func AutoscalePoolFactory() PolicyFactory {
	return func(fn string) pool.Policy { return &pool.Autoscale{} }
}

// IceBreakerPoolFactory returns IceBreaker's Fourier pre-warming baseline.
func IceBreakerPoolFactory() PolicyFactory {
	return func(fn string) pool.Policy { return &pool.IceBreaker{} }
}

// KeepAlivePoolFactory returns the provider fixed keep-alive baseline.
func KeepAlivePoolFactory(seconds float64) PolicyFactory {
	return func(fn string) pool.Policy { return &pool.FixedKeepAlive{Duration: seconds} }
}

// AquatopeManagerFactory returns the customized-BO resource manager.
func AquatopeManagerFactory() ManagerFactory {
	return func(space *resource.Space, prof *resource.Profiler, qos float64, seed int64) resource.Manager {
		return resource.NewAquatope(space, prof, qos, seed)
	}
}

// CLITEManagerFactory returns the CLITE baseline manager.
func CLITEManagerFactory() ManagerFactory {
	return func(space *resource.Space, prof *resource.Profiler, qos float64, seed int64) resource.Manager {
		return resource.NewCLITE(space, prof, qos, seed)
	}
}

// AutoscaleManagerFactory returns the autoscaling resource manager.
func AutoscaleManagerFactory() ManagerFactory {
	return func(space *resource.Space, prof *resource.Profiler, qos float64, seed int64) resource.Manager {
		return resource.NewAutoscale(space, prof, qos, seed)
	}
}
