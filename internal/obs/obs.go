// Package obs is the post-hoc trace-analysis engine (DESIGN.md §11): a set
// of pure functions over recorded span streams and metric snapshots that
// reconstruct each workflow invocation's span tree, attribute its
// end-to-end latency to named phases (queue wait, cold start, execution,
// retry overhead, scheduling gap) along the critical stage chain, roll the
// attributions up per application and per stage, reconstruct the pool/BO
// decision audit log, and summarize fleet utilization.
//
// Everything here is deterministic: the input span stream is ordered by
// creation (telemetry.Collector guarantees it), analysis only iterates
// slices and sorted keys, and the renderers use fixed-precision formats —
// so repeated runs over the same dump are byte-identical (tested).
package obs

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"aquatope/internal/telemetry"
)

// Phases is one latency attribution: how much of an interval was spent in
// each named phase. All values are simulated seconds.
type Phases struct {
	// Queue is time spent waiting for admission, concurrency slots or
	// container capacity.
	Queue float64 `json:"queue_s"`
	// Cold is time spent waiting on container initialization.
	Cold float64 `json:"cold_s"`
	// Exec is execution time on the critical path.
	Exec float64 `json:"exec_s"`
	// Retry is overhead of failed attempts and backoff before the attempt
	// that settled a stage.
	Retry float64 `json:"retry_s"`
	// Sched is the residual scheduling gap: inter-stage handoff, time not
	// covered by any invocation, and float dust from reconstruction.
	Sched float64 `json:"sched_s"`
}

// Total returns the sum over phases.
func (p Phases) Total() float64 { return p.Queue + p.Cold + p.Exec + p.Retry + p.Sched }

// clean snaps float-dust residues (magnitude below 1e-9) to exactly zero so
// aggregates don't render as "-0.000".
func (p *Phases) clean() {
	for _, v := range []*float64{&p.Queue, &p.Cold, &p.Exec, &p.Retry, &p.Sched} {
		if math.Abs(*v) < 1e-9 {
			*v = 0
		}
	}
}

func (p *Phases) add(q Phases) {
	p.Queue += q.Queue
	p.Cold += q.Cold
	p.Exec += q.Exec
	p.Retry += q.Retry
	p.Sched += q.Sched
}

// StageAttr is the attribution of one stage on the critical chain.
type StageAttr struct {
	Stage    string  `json:"stage"`
	Function string  `json:"function,omitempty"`
	Start    float64 `json:"start_s"`
	End      float64 `json:"end_s"`
	// Attempt is the settling invocation's retry attempt (0 = first try).
	Attempt int `json:"attempt,omitempty"`
	// Cold marks a cold-started settling invocation.
	Cold bool `json:"cold,omitempty"`
	// Outcome is the settling invocation's faas outcome code (0 success).
	Outcome int `json:"outcome,omitempty"`
	// Skipped marks a stage short-circuited by upstream failure.
	Skipped bool   `json:"skipped,omitempty"`
	Phases  Phases `json:"phases"`
}

// Attribution is the per-workflow result of critical-path extraction.
type Attribution struct {
	SpanID  telemetry.SpanID `json:"span"`
	App     string           `json:"app"`
	Start   float64          `json:"start_s"`
	Latency float64          `json:"latency_s"`
	// Failed marks a workflow whose critical path settled on a
	// non-success outcome or skipped stages.
	Failed bool `json:"failed,omitempty"`
	// Violation marks a QoS miss (latency above the app's target, or a
	// failed workflow when a target is known).
	Violation bool   `json:"violation,omitempty"`
	Phases    Phases `json:"phases"`
	// Critical is the stage chain the end-to-end latency decomposes over.
	Critical []StageAttr `json:"critical_path,omitempty"`
}

// runMeta is the per-app run.meta record (QoS target, training cutoff).
type runMeta struct {
	qos    float64
	trainS float64
	seen   bool
}

// forest indexes one span dump for attribution.
type forest struct {
	spans    []telemetry.Span
	children map[telemetry.SpanID][]int // parent span ID → child indices
	// initTimes maps "function#containerID" → init_s from container.create
	// points, so cold wait can be split from queueing wait.
	initTimes map[string]float64
	meta      map[string]runMeta
}

func buildForest(spans []telemetry.Span) *forest {
	f := &forest{
		spans:     spans,
		children:  make(map[telemetry.SpanID][]int),
		initTimes: make(map[string]float64),
		meta:      make(map[string]runMeta),
	}
	for i, sp := range spans {
		if sp.Parent != 0 {
			f.children[sp.Parent] = append(f.children[sp.Parent], i)
		}
		switch sp.Kind {
		case telemetry.KindContainerCreate:
			f.initTimes[containerKey(sp.Name, sp.Fields["container"])] = sp.Fields["init_s"]
		case telemetry.KindRunMeta:
			f.meta[sp.Name] = runMeta{qos: sp.Fields["qos"], trainS: sp.Fields["train_s"], seen: true}
		}
	}
	return f
}

func containerKey(fn string, id float64) string {
	return fn + "#" + strconv.FormatFloat(id, 'g', -1, 64)
}

// attribute decomposes one workflow span's end-to-end latency.
//
// Phase attribution rules (DESIGN.md §11):
//
//  1. The critical chain starts at the latest-ending stage child and walks
//     backwards through stages whose end time equals the current stage's
//     start time — exact float equality, valid because a gated stage is
//     launched in the same simulation event that ends its last dependency.
//  2. Each chain stage is settled by its latest-ending invocation child
//     that ended by the stage's end (hedge losers end later and are
//     excluded). The settling invocation's wait splits into cold-start
//     wait (bounded by the container's recorded init time) and queue wait;
//     its pre-gap from stage start is retry overhead when it is a retry
//     attempt (attempt > 0), scheduling gap otherwise.
//  3. Whatever the chain's invocations do not cover — inter-stage gaps,
//     head/tail gaps, within-stage residue — is a scheduling gap, so the
//     phases telescope to the measured end-to-end latency.
func (f *forest) attribute(wfIdx int) Attribution {
	wf := f.spans[wfIdx]
	a := Attribution{
		SpanID:  wf.ID,
		App:     wf.Name,
		Start:   wf.Start,
		Latency: wf.End - wf.Start,
	}
	// Collect stage children.
	var stages []telemetry.Span
	for _, ci := range f.children[wf.ID] {
		sp := f.spans[ci]
		if sp.Kind == telemetry.KindStage {
			stages = append(stages, sp)
		}
		if sp.Kind == telemetry.KindStage && sp.Fields["skipped"] == 1 {
			a.Failed = true
		}
	}
	if len(stages) == 0 {
		a.Phases.Sched = a.Latency
		return a
	}
	chain := criticalChain(stages)
	// Head gap: workflow submit to first chain stage launch.
	a.Phases.Sched += dust(chain[0].Start - wf.Start)
	prevEnd := chain[0].Start
	for _, st := range chain {
		// Inter-stage gap (exact-equality chaining makes this 0; it is
		// nonzero only when the chain walk found no predecessor).
		a.Phases.Sched += dust(st.Start - prevEnd)
		sa := f.attributeStage(st)
		if sa.Outcome != 0 || sa.Skipped {
			a.Failed = true
		}
		a.Phases.add(sa.Phases)
		a.Critical = append(a.Critical, sa)
		prevEnd = st.End
	}
	// Tail gap: last chain stage to workflow end.
	a.Phases.Sched += dust(wf.End - prevEnd)
	a.Phases.clean()
	return a
}

// criticalChain returns the workflow's critical stage chain in execution
// order: from the latest-ending stage, walk predecessors whose End equals
// the current Start (ties broken toward the highest span ID — the span
// started last).
func criticalChain(stages []telemetry.Span) []telemetry.Span {
	cur := stages[0]
	for _, st := range stages[1:] {
		if st.End > cur.End || (st.End == cur.End && st.ID > cur.ID) {
			cur = st
		}
	}
	chain := []telemetry.Span{cur}
	used := map[telemetry.SpanID]bool{cur.ID: true}
	for len(chain) <= len(stages) {
		var pred telemetry.Span
		found := false
		for _, st := range stages {
			if used[st.ID] || st.End != cur.Start {
				continue
			}
			if !found || st.ID > pred.ID {
				pred, found = st, true
			}
		}
		if !found {
			break
		}
		used[pred.ID] = true
		chain = append(chain, pred)
		cur = pred
	}
	// Reverse into execution order.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}

// attributeStage decomposes one chain stage via its settling invocation.
func (f *forest) attributeStage(st telemetry.Span) StageAttr {
	sa := StageAttr{Stage: st.Name, Start: st.Start, End: st.End}
	if st.Fields["skipped"] == 1 {
		sa.Skipped = true
		return sa
	}
	// Settling invocation: latest-ending invocation child that ended by
	// the stage's end (hedge losers run past it), ties toward highest ID.
	var inv telemetry.Span
	found := false
	for _, ci := range f.children[st.ID] {
		sp := f.spans[ci]
		if sp.Kind != telemetry.KindInvocation || sp.End > st.End+1e-9 {
			continue
		}
		if !found || sp.End > inv.End || (sp.End == inv.End && sp.ID > inv.ID) {
			inv, found = sp, true
		}
	}
	if !found {
		// Nothing settled inside the stage window: all scheduling gap.
		sa.Phases.Sched = dust(st.End - st.Start)
		return sa
	}
	sa.Function = inv.Name
	sa.Attempt = int(inv.Fields["attempt"])
	sa.Outcome = int(inv.Fields["outcome"])
	wait := inv.Fields["wait_s"]
	exec := inv.Fields["exec_s"]
	cold := 0.0
	if inv.Fields["cold"] == 1 {
		sa.Cold = true
		// The cold share of the wait is bounded by the container's init
		// time; the rest of the wait is queueing ahead of it. Without a
		// recorded init time the whole wait counts as cold.
		cold = wait
		if init, ok := f.initTimes[containerKey(inv.Name, inv.Fields["container"])]; ok {
			cold = math.Min(wait, init)
		}
	}
	sa.Phases.Cold = cold
	sa.Phases.Queue = dust(wait - cold)
	sa.Phases.Exec = exec
	// Pre-gap: stage launch to invocation submit. Zero for the first
	// attempt (submission is synchronous); for retries it is the failed
	// attempts plus backoff — retry/hedge overhead.
	preGap := dust(inv.Start - st.Start)
	if sa.Attempt > 0 {
		sa.Phases.Retry = preGap
	} else {
		sa.Phases.Sched += preGap
	}
	// Residue: covered span geometry vs reported wait/exec (float dust),
	// plus any stage time past the settling invocation.
	sa.Phases.Sched += (inv.End - st.Start) - (preGap + wait + exec)
	sa.Phases.Sched += dust(st.End - inv.End)
	sa.Phases.clean()
	return sa
}

// dust clamps small negative float residues to zero (they arise from
// re-associated additions, not real intervals).
func dust(v float64) float64 {
	if v < 0 && v > -1e-6 {
		return 0
	}
	return v
}

// ---------------------------------------------------------------------------

// StageRollup aggregates critical-path attributions of one stage.
type StageRollup struct {
	Stage string `json:"stage"`
	// OnPath counts how often the stage sat on the critical chain.
	OnPath int    `json:"on_path"`
	Phases Phases `json:"phases"`
}

// AppAnalysis is the per-application rollup.
type AppAnalysis struct {
	App string `json:"app"`
	// QoS is the app's latency target (0 when no run.meta was recorded).
	QoS         float64 `json:"qos_s,omitempty"`
	Workflows   int     `json:"workflows"`
	Failed      int     `json:"failed"`
	Violations  int     `json:"violations"`
	MeanLatency float64 `json:"mean_latency_s"`
	MaxLatency  float64 `json:"max_latency_s"`
	// Phases sums attribution over the app's analyzed workflows.
	Phases Phases        `json:"phases"`
	Stages []StageRollup `json:"stages,omitempty"`
	// TopViolators are the worst QoS-missing workflows, latency
	// descending (bounded by Options.TopK).
	TopViolators []Attribution `json:"top_violators,omitempty"`
}

// Analysis is the full result of analyzing one dump.
type Analysis struct {
	Spans     int `json:"spans"`
	Workflows int `json:"workflows"`
	// SkippedTraining counts workflows excluded for starting before the
	// app's training cutoff.
	SkippedTraining int             `json:"skipped_training,omitempty"`
	Apps            []AppAnalysis   `json:"apps"`
	Decisions       DecisionSummary `json:"decisions"`
	Utilization     *Utilization    `json:"utilization,omitempty"`
	// AttributionError is the maximum relative |Σphases − latency| over
	// analyzed workflows (the acceptance bound is 1%).
	AttributionError float64 `json:"attribution_error"`

	// Attributions holds every analyzed workflow's attribution, span
	// order. Kept out of the JSON summary (it can be huge); tests and
	// library callers read it directly.
	Attributions []Attribution `json:"-"`
	// Audit is the full decision audit log, span order (rendered by
	// WriteAudit, kept out of the JSON summary).
	Audit []DecisionRecord `json:"-"`
}

// Options tunes Analyze.
type Options struct {
	// IncludeTraining keeps workflows submitted before each app's
	// training cutoff (run.meta train_s) in the rollups.
	IncludeTraining bool
	// TopK bounds the per-app top-violators list (default 5).
	TopK int
}

// Analyze runs the full analysis over a span dump and an optional metric
// snapshot. It is a pure function of its inputs.
func Analyze(spans []telemetry.Span, snap *telemetry.Snapshot, opts Options) *Analysis {
	if opts.TopK <= 0 {
		opts.TopK = 5
	}
	f := buildForest(spans)
	a := &Analysis{Spans: len(spans)}
	byApp := make(map[string]*AppAnalysis)
	stagesByApp := make(map[string]map[string]*StageRollup)
	var appOrder []string
	for i, sp := range spans {
		if sp.Kind != telemetry.KindWorkflow {
			continue
		}
		a.Workflows++
		meta := f.meta[sp.Name]
		if !opts.IncludeTraining && meta.seen && sp.Start < meta.trainS {
			a.SkippedTraining++
			continue
		}
		attr := f.attribute(i)
		if meta.qos > 0 && (attr.Latency > meta.qos || attr.Failed) {
			attr.Violation = true
		}
		a.Attributions = append(a.Attributions, attr)
		app, ok := byApp[sp.Name]
		if !ok {
			app = &AppAnalysis{App: sp.Name, QoS: meta.qos}
			byApp[sp.Name] = app
			stagesByApp[sp.Name] = make(map[string]*StageRollup)
			appOrder = append(appOrder, sp.Name)
		}
		app.Workflows++
		if attr.Failed {
			app.Failed++
		}
		if attr.Violation {
			app.Violations++
		}
		app.Phases.add(attr.Phases)
		if attr.Latency > app.MaxLatency {
			app.MaxLatency = attr.Latency
		}
		app.MeanLatency += attr.Latency // sum for now; divided below
		for _, sa := range attr.Critical {
			r, ok := stagesByApp[sp.Name][sa.Stage]
			if !ok {
				r = &StageRollup{Stage: sa.Stage}
				stagesByApp[sp.Name][sa.Stage] = r
			}
			r.OnPath++
			r.Phases.add(sa.Phases)
		}
		if err := relErr(attr.Phases.Total(), attr.Latency); err > a.AttributionError {
			a.AttributionError = err
		}
	}
	sort.Strings(appOrder)
	for _, name := range appOrder {
		app := byApp[name]
		if app.Workflows > 0 {
			app.MeanLatency /= float64(app.Workflows)
		}
		names := make([]string, 0, len(stagesByApp[name]))
		for s := range stagesByApp[name] {
			names = append(names, s)
		}
		sort.Strings(names)
		for _, s := range names {
			app.Stages = append(app.Stages, *stagesByApp[name][s])
		}
		app.TopViolators = topViolators(a.Attributions, name, opts.TopK)
		a.Apps = append(a.Apps, *app)
	}
	a.Audit, a.Decisions = buildAudit(spans)
	if snap != nil {
		a.Utilization = utilizationFrom(snap)
	}
	return a
}

func relErr(got, want float64) float64 {
	d := math.Abs(got - want)
	if want <= 1e-9 {
		return d
	}
	return d / want
}

// topViolators returns the k worst violating workflows of one app, latency
// descending (ties toward the earlier span: stable deterministic order).
func topViolators(attrs []Attribution, app string, k int) []Attribution {
	var v []Attribution
	for _, at := range attrs {
		if at.App == app && at.Violation {
			v = append(v, at)
		}
	}
	sort.SliceStable(v, func(i, j int) bool { return v[i].Latency > v[j].Latency })
	if len(v) > k {
		v = v[:k]
	}
	return v
}

// ---------------------------------------------------------------------------

// InvokerUtil is one invoker's utilization summary extracted from the
// metric snapshot (see internal/faas utilization gauges).
type InvokerUtil struct {
	Invoker    int     `json:"invoker"`
	BusyS      float64 `json:"busy_s"`
	IdleS      float64 `json:"idle_s"`
	ActiveS    float64 `json:"active_s"`
	CPUCoreS   float64 `json:"cpu_core_s"`
	MemGBs     float64 `json:"mem_gb_s"`
	WarmSpareS float64 `json:"warm_spare_s"`
	Created    int     `json:"containers_created"`
	Killed     int     `json:"containers_killed"`
}

// Utilization is the fleet utilization section of an analysis.
type Utilization struct {
	Invokers          []InvokerUtil `json:"invokers,omitempty"`
	BinPackEfficiency float64       `json:"binpack_efficiency"`
	FleetCPUUtil      float64       `json:"fleet_cpu_util"`
}

// utilizationFrom extracts the per-invoker utilization gauges from a
// snapshot. Gauge names are "<base>.<invokerID>".
func utilizationFrom(snap *telemetry.Snapshot) *Utilization {
	u := &Utilization{
		BinPackEfficiency: snap.Gauges[telemetry.MetricBinPackEfficiency],
		FleetCPUUtil:      snap.Gauges[telemetry.MetricFleetCPUUtil],
	}
	byID := make(map[int]*InvokerUtil)
	ids := make([]int, 0)
	get := func(id int) *InvokerUtil {
		iv, ok := byID[id]
		if !ok {
			iv = &InvokerUtil{Invoker: id}
			byID[id] = iv
			ids = append(ids, id)
		}
		return iv
	}
	for name, v := range snap.Gauges {
		base, id, ok := splitEntity(name)
		if !ok {
			continue
		}
		switch base {
		case telemetry.MetricInvokerBusyS:
			get(id).BusyS = v
		case telemetry.MetricInvokerIdleS:
			get(id).IdleS = v
		case telemetry.MetricInvokerActiveS:
			get(id).ActiveS = v
		case telemetry.MetricInvokerCPUCoreS:
			get(id).CPUCoreS = v
		case telemetry.MetricInvokerMemGBs:
			get(id).MemGBs = v
		case telemetry.MetricInvokerWarmSpareS:
			get(id).WarmSpareS = v
		case telemetry.MetricInvokerCreated:
			get(id).Created = int(v)
		case telemetry.MetricInvokerKilled:
			get(id).Killed = int(v)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		u.Invokers = append(u.Invokers, *byID[id])
	}
	if len(u.Invokers) == 0 && u.BinPackEfficiency == 0 && u.FleetCPUUtil == 0 {
		return nil
	}
	return u
}

// splitEntity splits "faas.invoker.busy_s.3" into base and entity ID.
func splitEntity(name string) (base string, id int, ok bool) {
	i := strings.LastIndex(name, ".")
	if i < 0 {
		return "", 0, false
	}
	id, err := strconv.Atoi(name[i+1:])
	if err != nil {
		return "", 0, false
	}
	return name[:i], id, true
}
