// Package nn is a small from-scratch neural-network library sufficient to
// reproduce the paper's hybrid Bayesian model: dense layers, stacked LSTM
// layers trained with backpropagation through time, the Adam optimizer, and
// standard plus variational (per-sequence tied) dropout for Monte-Carlo
// Bayesian inference.
//
// The library is deliberately minimal: vectors are []float64, there is no
// batching (gradients accumulate across samples before an optimizer step),
// and all randomness flows through explicitly seeded stats.RNG streams.
package nn

import (
	"math"

	"aquatope/internal/stats"
)

// Param is a named tensor (stored flat) with its gradient accumulator.
type Param struct {
	Name string
	W    []float64
	G    []float64
}

// NewParam allocates a zero parameter of the given size.
func NewParam(name string, size int) *Param {
	return &Param{Name: name, W: make([]float64, size), G: make([]float64, size)}
}

// InitXavier fills the parameter with Xavier/Glorot uniform noise for a
// layer with the given fan-in and fan-out.
func (p *Param) InitXavier(fanIn, fanOut int, rng *stats.RNG) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range p.W {
		p.W[i] = rng.Uniform(-limit, limit)
	}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// Adam is the Adam optimizer (Kingma & Ba 2015) over a set of parameters.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Eps     float64
	Clip    float64 // global gradient-norm clip; 0 disables
	t       int
	m, v    map[*Param][]float64
	targets []*Param
}

// NewAdam returns an Adam optimizer with standard defaults and the given
// learning rate, managing the provided parameters.
func NewAdam(lr float64, params []*Param) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, Clip: 5,
		m: make(map[*Param][]float64), v: make(map[*Param][]float64), targets: params}
	for _, p := range params {
		a.m[p] = make([]float64, len(p.W))
		a.v[p] = make([]float64, len(p.W))
	}
	return a
}

// Step applies one Adam update using the accumulated gradients (scaled by
// 1/scale, e.g. the mini-batch size) and then zeroes them.
func (a *Adam) Step(scale float64) {
	if scale == 0 {
		scale = 1
	}
	a.t++
	// Optional global-norm clipping, essential for LSTM BPTT stability.
	if a.Clip > 0 {
		var norm float64
		for _, p := range a.targets {
			for _, g := range p.G {
				g /= scale
				norm += g * g
			}
		}
		norm = math.Sqrt(norm)
		if norm > a.Clip {
			factor := a.Clip / norm
			scale /= factor
		}
	}
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range a.targets {
		m, v := a.m[p], a.v[p]
		for i := range p.W {
			g := p.G[i] / scale
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mh := m[i] / bc1
			vh := v[i] / bc2
			p.W[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
		p.ZeroGrad()
	}
}

// Params returns the managed parameters.
func (a *Adam) Params() []*Param { return a.targets }
