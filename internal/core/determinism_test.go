package core

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"aquatope/internal/chaos"
	"aquatope/internal/faas"
	"aquatope/internal/pool"
	"aquatope/internal/telemetry"
	"aquatope/internal/workflow"
)

// runFullPipeline executes the whole controller — resource-manager
// search, pool management, live traffic with chaos armed and the
// resilience layer on — with tracing and metrics attached. It is the
// regression fixture for the repo's core determinism invariant: every
// layer aqualint polices (virtual time only, seeded RNGs only, ordered
// float aggregation) feeds this run.
func runFullPipeline(t *testing.T, seed int64) (Result, *telemetry.Collector, *telemetry.Registry) {
	t.Helper()
	comps := smallComponents(2)
	horizon := float64(comps[0].Trace.DurationMin) * 60
	scn, ok := chaos.Builtin("mixed", horizon, seed)
	if !ok {
		t.Fatal("mixed chaos scenario missing")
	}
	pol := workflow.DefaultRetryPolicy()
	pol.HedgeDelay = 30 // exercise hedging, not just retries
	col := telemetry.NewCollector()
	reg := telemetry.NewRegistry()
	res, err := Run(Config{
		Components:     comps,
		TrainMin:       120,
		PoolFactory:    fastPool(),
		ManagerFactory: AquatopeManagerFactory(),
		SearchBudget:   6,
		Chaos:          scn,
		Resilience:     &pol,
		Tracer:         col,
		Registry:       reg,
		Seed:           seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, col, reg
}

// TestFullPipelineDeterministicUnderChaos runs the complete core pipeline
// twice with the same seed and chaos on, and requires byte-identical span
// and metric dumps. It complements chaos_test.go's injector-level
// determinism test by covering the full stack above it (BO search, BNN
// pool sizing, retry/hedge scheduling, metric aggregation).
func TestFullPipelineDeterministicUnderChaos(t *testing.T) {
	res1, col1, reg1 := runFullPipeline(t, 11)
	res2, col2, reg2 := runFullPipeline(t, 11)

	var faults int
	for _, s := range col1.Spans() {
		if s.Kind == telemetry.KindChaosFault {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("chaos scenario armed but no chaos.fault spans recorded")
	}
	if res1.Workflows() == 0 {
		t.Fatal("no workflows completed in the test window")
	}
	if res1.Retries()+res1.Hedges() == 0 {
		t.Fatal("resilience layer enabled but no retries or hedges occurred")
	}

	var s1, s2 bytes.Buffer
	if err := col1.WriteJSONL(&s1); err != nil {
		t.Fatal(err)
	}
	if err := col2.WriteJSONL(&s2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
		t.Errorf("same-seed chaos runs produced different span streams (%d vs %d bytes); first divergence:\n%s",
			s1.Len(), s2.Len(), firstDivergence(s1.String(), s2.String()))
	}

	var m1, m2 bytes.Buffer
	if err := reg1.WriteJSON(&m1); err != nil {
		t.Fatal(err)
	}
	if err := reg2.WriteJSON(&m2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m1.Bytes(), m2.Bytes()) {
		t.Errorf("same-seed chaos runs produced different metric snapshots; first divergence:\n%s",
			firstDivergence(m1.String(), m2.String()))
	}

	if res1.QoSViolationRate() != res2.QoSViolationRate() || res1.Goodput() != res2.Goodput() {
		t.Errorf("summary metrics diverged: violations %v vs %v, goodput %v vs %v",
			res1.QoSViolationRate(), res2.QoSViolationRate(), res1.Goodput(), res2.Goodput())
	}
}

// runOverloadPipeline executes the controller with every overload-protection
// layer armed — bounded queues under deadline-aware admission, per-invoker
// circuit breakers, the shared retry budget with hedge backpressure, the
// pool guard's degraded mode — under a surge-plus-invoker-loss chaos
// scenario that actually trips them.
func runOverloadPipeline(t *testing.T, seed int64) (Result, *telemetry.Collector, *telemetry.Registry) {
	t.Helper()
	comps := smallComponents(2)
	horizon := float64(comps[0].Trace.DurationMin) * 60
	scn, ok := chaos.Builtin("overload-crash", horizon, seed)
	if !ok {
		t.Fatal("overload-crash chaos scenario missing")
	}
	pol := workflow.DefaultRetryPolicy()
	pol.Timeout = 60
	pol.HedgeDelay = 10
	pol.MaxAttempts = 4
	pol.RetryBudget = 2
	pol.RetryBudgetPerSec = 0.05
	pol.HedgeQueueLimit = 2
	col := telemetry.NewCollector()
	reg := telemetry.NewRegistry()
	res, err := Run(Config{
		Components:     comps,
		TrainMin:       120,
		PoolFactory:    fastPool(),
		ManagerFactory: AquatopeManagerFactory(),
		SearchBudget:   6,
		ClusterCfg: faas.Config{
			Invokers: 2, CPUPerInvoker: 2, MemoryPerInvokerMB: 2048,
			QueueLimit: 4, Admission: faas.AdmitDeadlineAware,
			Breaker: faas.BreakerConfig{Enabled: true},
		},
		Chaos:      scn,
		Resilience: &pol,
		PoolGuard:  &pool.Guard{ShedThreshold: 5, UncertaintyFrac: 3, RecoverIntervals: 2},
		Tracer:     col,
		Registry:   reg,
		Seed:       seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, col, reg
}

// TestOverloadPipelineDeterministic runs the controller twice with circuit
// breakers, admission shedding, retry budgets and the pool guard all
// enabled, and requires byte-identical span and metric dumps — the overload
// layers must draw only on the run's seeded RNG streams and virtual clock.
func TestOverloadPipelineDeterministic(t *testing.T) {
	res1, col1, reg1 := runOverloadPipeline(t, 17)
	res2, col2, reg2 := runOverloadPipeline(t, 17)

	if res1.Workflows() == 0 {
		t.Fatal("no workflows completed in the test window")
	}
	if res1.ShedInvocations() == 0 {
		t.Fatal("overload scenario armed but nothing was shed — protections untested")
	}

	var s1, s2 bytes.Buffer
	if err := col1.WriteJSONL(&s1); err != nil {
		t.Fatal(err)
	}
	if err := col2.WriteJSONL(&s2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
		t.Errorf("same-seed overload runs produced different span streams (%d vs %d bytes); first divergence:\n%s",
			s1.Len(), s2.Len(), firstDivergence(s1.String(), s2.String()))
	}

	var m1, m2 bytes.Buffer
	if err := reg1.WriteJSON(&m1); err != nil {
		t.Fatal(err)
	}
	if err := reg2.WriteJSON(&m2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m1.Bytes(), m2.Bytes()) {
		t.Errorf("same-seed overload runs produced different metric snapshots; first divergence:\n%s",
			firstDivergence(m1.String(), m2.String()))
	}

	if res1.Goodput() != res2.Goodput() || res1.ShedViolations() != res2.ShedViolations() {
		t.Errorf("summary metrics diverged: goodput %v vs %v, shed violations %v vs %v",
			res1.Goodput(), res2.Goodput(), res1.ShedViolations(), res2.ShedViolations())
	}
}

// firstDivergence renders the first differing line pair of two dumps so a
// determinism regression points straight at the leaking subsystem.
func firstDivergence(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if la[i] != lb[i] {
			return "line " + strconv.Itoa(i+1) + ":\n  run1: " + la[i] + "\n  run2: " + lb[i]
		}
	}
	return "dumps differ only in length"
}
