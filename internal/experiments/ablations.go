package experiments

import (
	"fmt"

	"aquatope/internal/apps"
	"aquatope/internal/bo"
	"aquatope/internal/experiments/runner"
	"aquatope/internal/faas"
	"aquatope/internal/pool"
	"aquatope/internal/resource"
	"aquatope/internal/trace"
)

// AblationBatchResult sweeps the BO batch size q: the paper uses q=3,
// claiming it "speeds up the search without sacrificing quality" (§5.3).
// Iterations measures wall-clock-equivalent rounds (each round's samples
// are profiled in parallel on the scalable platform).
type AblationBatchResult struct {
	Q          []int
	CostPct    []float64 // final cost, % oracle
	Iterations []float64 // search rounds needed to consume the budget
}

// Table renders the sweep.
func (r AblationBatchResult) Table() string {
	return formatTable(r.Rows())
}

// Rows implements Result.
func (r AblationBatchResult) Rows() ([]string, [][]string) {
	rows := make([][]string, len(r.Q))
	for i := range r.Q {
		rows[i] = []string{fmt.Sprintf("q=%d", r.Q[i]), f0(r.CostPct[i]) + "%", f0(r.Iterations[i])}
	}
	return []string{"Batch", "Cost(%Oracle)", "Rounds"}, rows
}

// ablationBatchRep is one (q, repetition) search outcome.
type ablationBatchRep struct {
	cost, rounds float64
	feasible     bool
}

// AblationBatchSize runs the Aquatope engine on the ML pipeline with batch
// sizes 1, 3 and 6 under the same total sample budget. Replications: the
// oracle solve plus one search per (q, repetition).
func AblationBatchSize(s Scale) AblationBatchResult {
	eng := s.engine("ablation-batch")
	oracles := runner.MustRun(eng, oracleJobs(s, []string{"ml-pipeline"},
		func(int) *apps.App { return apps.NewMLPipeline() }))
	if !oracles[0].ok {
		return AblationBatchResult{}
	}
	oracleCost := oracles[0].cost

	qs := []int{1, 3, 6}
	var jobs []runner.Job[ablationBatchRep]
	for _, q := range qs {
		q := q
		for rep := 0; rep < s.Repeats; rep++ {
			rep := rep
			jobs = append(jobs, runner.Job[ablationBatchRep]{
				Cell: fmt.Sprintf("q%d", q), Rep: rep,
				Run: func(runner.Ctx) (ablationBatchRep, error) {
					a := apps.NewMLPipeline()
					space := resource.NewSpace(a)
					seed := s.Seed + int64(rep)*53
					prof := resource.NewProfiler(a, seed)
					prof.Noise = profileNoise
					opt := bo.New(bo.Options{Dim: space.Dim(), QoS: a.QoS, Seed: seed, BatchSize: q})
					m := &resource.BOManager{Label: "aquatope", Space: space, Profiler: prof, Opt: opt}
					rounds := 0
					for m.Samples() < s.SearchBudget {
						if m.Step() == 0 {
							break
						}
						rounds++
					}
					cfg, _, okB := m.Best()
					if !okB {
						return ablationBatchRep{}, nil
					}
					evalProf := resource.NewProfiler(a, s.Seed+500)
					c, feasible := evalTrue(evalProf, cfg, a.QoS)
					return ablationBatchRep{cost: c, rounds: float64(rounds), feasible: feasible}, nil
				}})
		}
	}
	out := runner.MustRun(eng, jobs)

	res := AblationBatchResult{}
	ji := 0
	for _, q := range qs {
		reps := out[ji : ji+s.Repeats]
		ji += s.Repeats
		var sumCost, sumRounds float64
		n := 0
		for _, r := range reps {
			if r.feasible {
				sumCost += r.cost
				sumRounds += r.rounds
				n++
			}
		}
		if n == 0 {
			continue
		}
		res.Q = append(res.Q, q)
		res.CostPct = append(res.CostPct, sumCost/float64(n)/oracleCost*100)
		res.Iterations = append(res.Iterations, sumRounds/float64(n))
	}
	return res
}

// ---------------------------------------------------------------------------

// AblationHeadroomResult sweeps the pool's uncertainty headroom z,
// exposing the cold-start / memory trade-off the paper's uncertainty-aware
// sizing navigates.
type AblationHeadroomResult struct {
	Z        []float64
	ColdRate []float64
	MemGBs   []float64
}

// Table renders the trade-off curve.
func (r AblationHeadroomResult) Table() string {
	return formatTable(r.Rows())
}

// Rows implements Result.
func (r AblationHeadroomResult) Rows() ([]string, [][]string) {
	rows := make([][]string, len(r.Z))
	for i := range r.Z {
		rows[i] = []string{fmt.Sprintf("z=%.1f", r.Z[i]), pct(r.ColdRate[i]), f0(r.MemGBs[i])}
	}
	return []string{"Headroom", "ColdStart", "MemGBs"}, rows
}

// ablationTrace synthesizes the shared periodic workload for the pool
// ablations (seedOffset distinguishes the two sweeps' traces).
func ablationTrace(s Scale, seedOffset int64) *trace.Trace {
	return trace.SynthesizePeriodic(trace.PeriodicGenConfig{
		DurationMin: s.TraceMin, PeriodMin: 30, JitterFrac: 0.12,
		ClumpMean: 2.5, Diurnal: 0.5, Seed: s.Seed + seedOffset,
	})
}

// ablationModel is the pool ablations' performance profile.
func ablationModel() *faas.SyntheticModel {
	model := faas.DefaultSyntheticModel()
	model.BaseExecSec = 6
	model.ColdInitSec = 3
	return model
}

// ablationPoolCell is one pool-replay replication's outcome.
type ablationPoolCell struct {
	coldRate, memGBs float64
}

// AblationHeadroom replays a periodic trace under the Aquatope pool with
// growing headroom. Each z is one replication.
func AblationHeadroom(s Scale) AblationHeadroomResult {
	zs := []float64{0.5, 1, 2, 3, 4}
	jobs := make([]runner.Job[ablationPoolCell], len(zs))
	for i, z := range zs {
		z := z
		jobs[i] = runner.Job[ablationPoolCell]{Cell: fmt.Sprintf("z%.1f", z),
			Run: func(runner.Ctx) (ablationPoolCell, error) {
				p := s.aquatopePolicy(false)
				p.HeadroomZ = z
				r := pool.Run(pool.RunConfig{
					Trace: ablationTrace(s, 31), TrainMin: s.TrainMin, Model: ablationModel(),
					Resources: faas.ResourceConfig{CPU: 1, MemoryMB: 512},
					Policy:    p, Seed: s.Seed,
				})
				return ablationPoolCell{coldRate: r.ColdRate, memGBs: r.ProvisionedMemGBs}, nil
			}}
	}
	cells := runner.MustRun(s.engine("ablation-headroom"), jobs)

	res := AblationHeadroomResult{}
	for i, z := range zs {
		res.Z = append(res.Z, z)
		res.ColdRate = append(res.ColdRate, cells[i].coldRate)
		res.MemGBs = append(res.MemGBs, cells[i].memGBs)
	}
	return res
}

// ---------------------------------------------------------------------------

// AblationMCSamplesResult sweeps the number of MC-dropout forward passes T
// used for the predictive distribution.
type AblationMCSamplesResult struct {
	T        []int
	ColdRate []float64
	MemGBs   []float64
}

// Table renders the sweep.
func (r AblationMCSamplesResult) Table() string {
	return formatTable(r.Rows())
}

// Rows implements Result.
func (r AblationMCSamplesResult) Rows() ([]string, [][]string) {
	rows := make([][]string, len(r.T))
	for i := range r.T {
		rows[i] = []string{fmt.Sprintf("T=%d", r.T[i]), pct(r.ColdRate[i]), f0(r.MemGBs[i])}
	}
	return []string{"MCSamples", "ColdStart", "MemGBs"}, rows
}

// AblationMCSamples varies T on the same periodic workload. Each T is one
// replication.
func AblationMCSamples(s Scale) AblationMCSamplesResult {
	ts := []int{1, 5, 15, 30}
	jobs := make([]runner.Job[ablationPoolCell], len(ts))
	for i, T := range ts {
		T := T
		jobs[i] = runner.Job[ablationPoolCell]{Cell: fmt.Sprintf("T%d", T),
			Run: func(runner.Ctx) (ablationPoolCell, error) {
				p := s.aquatopePolicy(false)
				p.ModelConfig.MCSamples = T
				r := pool.Run(pool.RunConfig{
					Trace: ablationTrace(s, 37), TrainMin: s.TrainMin, Model: ablationModel(),
					Resources: faas.ResourceConfig{CPU: 1, MemoryMB: 512},
					Policy:    p, Seed: s.Seed,
				})
				return ablationPoolCell{coldRate: r.ColdRate, memGBs: r.ProvisionedMemGBs}, nil
			}}
	}
	cells := runner.MustRun(s.engine("ablation-mc"), jobs)

	res := AblationMCSamplesResult{}
	for i, T := range ts {
		res.T = append(res.T, T)
		res.ColdRate = append(res.ColdRate, cells[i].coldRate)
		res.MemGBs = append(res.MemGBs, cells[i].memGBs)
	}
	return res
}
