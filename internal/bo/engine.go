// Package bo implements the paper's customized Bayesian optimization
// (§5.3) for per-function resource allocation, together with the baselines
// it is evaluated against.
//
// The Aquatope engine differs from conventional BO in the three ways the
// paper describes:
//
//  1. Noise awareness: fixed-noise Matérn-5/2 GP surrogates and a noisy
//     expected-improvement acquisition integrated with quasi-Monte-Carlo
//     samples (Letham et al. 2019), so the incumbent best is never assumed
//     to be observed noiselessly. Irregular (non-Gaussian) outliers are
//     pruned by leave-one-out diagnostic GPs.
//  2. Proactive QoS handling: an independent latency GP predicts end-to-end
//     performance, and candidates are filtered and weighted by their
//     probability of satisfying the QoS constraint (Gardner et al. 2014)
//     rather than penalized after the fact.
//  3. Batch sampling: a greedy q-point selection with per-sample fantasy
//     bookkeeping selects BatchSize candidates per iteration.
//
// All optimization happens over the normalized unit cube [0,1]^Dim; callers
// map coordinates to concrete CPU/memory/concurrency settings.
package bo

import (
	"math"

	"aquatope/internal/gp"
	"aquatope/internal/qmc"
	"aquatope/internal/stats"
	"aquatope/internal/telemetry"
)

// Observation is one profiled resource configuration: the normalized
// configuration, its measured execution cost and end-to-end latency.
type Observation struct {
	X       []float64
	Cost    float64
	Latency float64
}

// Acquisition selects the acquisition function family.
type Acquisition int

const (
	// NEI is constrained noisy expected improvement with QMC integration
	// (the Aquatope default).
	NEI Acquisition = iota
	// EI is classic expected improvement assuming noiseless observations
	// (used by the AquaLite ablation).
	EI
)

// Config parameterizes the engine. Zero values are replaced by the paper's
// defaults in New.
type Config struct {
	Dim       int     // dimensionality of the normalized config space
	QoS       float64 // end-to-end latency constraint
	BatchSize int     // candidates sampled per iteration (paper: 3)
	Bootstrap int     // random configs before the model kicks in
	MCSamples int     // QMC samples for the acquisition integral
	// CandidatePool is the number of Sobol candidate points scored per
	// suggestion round.
	CandidatePool int
	// FeasibilityFloor prunes candidates whose probability of meeting QoS
	// is below this value, provided at least one candidate passes.
	FeasibilityFloor float64
	// AnomalyZ is the leave-one-out z-score beyond which an observation is
	// labeled an anomaly (paper: 95% interval, z = 1.96).
	AnomalyZ float64
	// NoiseVar is the fixed observation-noise variance (standardized
	// units) of the GP surrogates.
	NoiseVar float64
	// Acquisition selects NEI (default) or plain EI.
	Acquisition Acquisition
	// DisableAnomalyDetection turns off outlier pruning (AquaLite).
	DisableAnomalyDetection bool
	// SlidingWindow keeps only the most recent N observations when
	// refitting (0 = keep all); used by incremental retraining.
	SlidingWindow int
	// ChangeBurst: if this many consecutive recent observations are all
	// anomalous, the engine declares a behaviour change and drops history
	// older than the burst (incremental retraining, §5.3).
	ChangeBurst int
	// HyperfitEvery refits GP hyperparameters every N observations.
	HyperfitEvery int
	Seed          int64
}

func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = 3
	}
	if c.Bootstrap <= 0 {
		c.Bootstrap = 5
	}
	if c.MCSamples <= 0 {
		c.MCSamples = 128
	}
	if c.CandidatePool <= 0 {
		c.CandidatePool = 128
	}
	if c.FeasibilityFloor <= 0 {
		c.FeasibilityFloor = 0.25
	}
	if c.AnomalyZ <= 0 {
		// Wider than the paper's 95% interval: the screen rejects points
		// before they enter the fit, so a tight gate would also discard
		// genuinely surprising (good) discoveries. Interference outliers
		// in FaaS are multiples of the signal and still exceed this.
		c.AnomalyZ = 3.5
	}
	if c.NoiseVar <= 0 {
		c.NoiseVar = 0.01
	}
	if c.ChangeBurst <= 0 {
		c.ChangeBurst = 6
	}
	if c.HyperfitEvery <= 0 {
		c.HyperfitEvery = 5
	}
	return c
}

// Engine is the customized BO optimizer.
type Engine struct {
	cfg Config
	rng *stats.RNG

	obs       []Observation
	anomalous []bool

	costGP *gp.GP
	latGP  *gp.GP
	fitted bool
	// Robust scales of the in-sample residuals, refreshed on refit.
	costResidScale float64
	latResidScale  float64

	changeEvents int
	sinceHyper   int

	tracer  telemetry.Tracer
	iter    int     // Observe calls, the telemetry iteration index
	lastAcq float64 // acquisition value of the last batch's first slot
}

// New returns an engine for the given configuration.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	if cfg.Dim <= 0 {
		panic("bo: Dim must be positive")
	}
	e := &Engine{cfg: cfg, rng: stats.NewRNG(cfg.Seed), tracer: telemetry.Nop{}}
	e.costGP = gp.New(gp.NewMatern52(cfg.Dim), cfg.NoiseVar)
	e.latGP = gp.New(gp.NewMatern52(cfg.Dim), cfg.NoiseVar)
	return e
}

// SetTracer installs the telemetry tracer receiving one bo.iteration point
// per Observe call. A nil tracer restores the no-op default.
func (e *Engine) SetTracer(t telemetry.Tracer) { e.tracer = telemetry.OrNop(t) }

// Config returns the engine configuration (after defaulting).
func (e *Engine) Config() Config { return e.cfg }

// NumObservations returns the number of recorded observations.
func (e *Engine) NumObservations() int { return len(e.obs) }

// NumAnomalies returns how many observations are currently flagged.
func (e *Engine) NumAnomalies() int {
	n := 0
	for _, a := range e.anomalous {
		if a {
			n++
		}
	}
	return n
}

// ChangeEvents returns how many behaviour-change resets have occurred.
func (e *Engine) ChangeEvents() int { return e.changeEvents }

// Suggest returns the next batch of candidate configurations to profile.
// During bootstrap it returns quasi-random points; afterwards it maximizes
// the configured acquisition greedily per batch slot.
func (e *Engine) Suggest() [][]float64 {
	q := e.cfg.BatchSize
	if len(e.cleanObservations()) < e.cfg.Bootstrap || !e.fitted {
		batch := e.randomBatch(q)
		e.traceDecision(batch, true, 0)
		return batch
	}
	cands := e.candidatePool()
	batch := e.selectBatch(cands, q)
	e.traceDecision(batch, false, len(cands))
	return batch
}

// traceDecision emits one bo.decision explain point for a suggested batch:
// the posterior view behind the first (acquisition-maximizing) pick — cost
// and latency mean with their uncertainty bands, feasibility probability —
// plus the batch's provenance (bootstrap vs model-driven, candidate-pool
// size after QoS pruning). Posterior reads are pure (no RNG draws), so
// tracing never perturbs a same-seed run; the point's time coordinate is
// the iteration index, matching bo.iteration.
func (e *Engine) traceDecision(batch [][]float64, bootstrap bool, candidates int) {
	if !e.tracer.Enabled() || len(batch) == 0 {
		return
	}
	f := telemetry.Fields{
		"batch":        float64(len(batch)),
		"candidates":   float64(candidates),
		"observations": float64(len(e.obs)),
		"qos":          e.cfg.QoS,
	}
	if bootstrap {
		f["bootstrap"] = 1
	} else {
		f["acquisition"] = e.lastAcq
		cm, cv := e.costGP.Posterior(batch[0])
		lm, lv := e.latGP.Posterior(batch[0])
		f["cost_mean"] = cm
		f["cost_sd"] = math.Sqrt(cv + 1e-12)
		f["lat_mean"] = lm
		f["lat_sd"] = math.Sqrt(lv + 1e-12)
		f["feasibility"] = e.FeasibilityProbability(batch[0])
	}
	e.tracer.Point(telemetry.KindBODecision, "bo", 0, float64(e.iter), f)
}

func (e *Engine) randomBatch(q int) [][]float64 {
	out := make([][]float64, q)
	for i := range out {
		x := make([]float64, e.cfg.Dim)
		for d := range x {
			x[d] = e.rng.Float64()
		}
		out[i] = x
	}
	// Anchor the first bootstrap batch with the extreme corners: the
	// most generous configuration calibrates the feasible side of the
	// latency surrogate, the most frugal one the infeasible side.
	if len(e.obs) == 0 && q >= 2 {
		hi := make([]float64, e.cfg.Dim)
		lo := make([]float64, e.cfg.Dim)
		for d := range hi {
			hi[d] = 0.97
			lo[d] = 0.03
		}
		out[0] = hi
		out[1] = lo
	}
	return out
}

// candidatePool generates scrambled Sobol candidates plus local
// perturbations of the incumbent (coordinate moves around the best
// feasible point, which matter increasingly in higher dimensions), and
// applies the proactive QoS filter: candidates unlikely to meet the
// constraint are pruned before acquisition scoring (unless that would
// empty the pool).
func (e *Engine) candidatePool() [][]float64 {
	n := e.cfg.CandidatePool
	if byDim := 32 * e.cfg.Dim; byDim > n {
		n = byDim
	}
	if n > 512 {
		n = 512
	}
	sob := qmc.NewScrambledSobol(e.cfg.Dim, e.rng.Split())
	raw := sob.Sample(n)
	if bestX, _, ok := e.BestFeasible(); ok {
		for d := 0; d < e.cfg.Dim; d++ {
			for _, dir := range []float64{-1, 1} {
				c := append([]float64(nil), bestX...)
				c[d] += dir * e.rng.Uniform(0.05, 0.25)
				if c[d] >= 0 && c[d] < 1 {
					raw = append(raw, c)
				}
			}
		}
	}
	var kept [][]float64
	for _, x := range raw {
		if e.FeasibilityProbability(x) >= e.cfg.FeasibilityFloor {
			kept = append(kept, x)
		}
	}
	if len(kept) == 0 {
		return raw
	}
	return kept
}

// FeasibilityProbability returns P(latency(x) <= QoS) under the latency GP.
func (e *Engine) FeasibilityProbability(x []float64) float64 {
	if !e.fitted {
		return 1
	}
	m, v := e.latGP.Posterior(x)
	sd := math.Sqrt(v + 1e-12)
	return stats.NormalCDF((e.cfg.QoS - m) / sd)
}

// CostPosterior exposes the cost surrogate's posterior for inspection.
func (e *Engine) CostPosterior(x []float64) (mean, variance float64) {
	return e.costGP.Posterior(x)
}

// cleanObservations returns the observations not flagged as anomalies.
func (e *Engine) cleanObservations() []Observation {
	var out []Observation
	for i, o := range e.obs {
		if !e.anomalous[i] {
			out = append(out, o)
		}
	}
	return out
}

// selectBatch greedily picks q candidates maximizing the acquisition with
// per-sample fantasy bookkeeping for pending selections.
func (e *Engine) selectBatch(cands [][]float64, q int) [][]float64 {
	S := e.cfg.MCSamples
	// Per-sample incumbent best over observed points (feasible preferred).
	best := e.sampleIncumbents(S)

	type cachedPosterior struct {
		cm, cv, lm, lv float64
	}
	caches := make([]cachedPosterior, len(cands))
	for i, x := range cands {
		cm, cv := e.costGP.Posterior(x)
		lm, lv := e.latGP.Posterior(x)
		caches[i] = cachedPosterior{cm, math.Sqrt(cv + 1e-12), lm, math.Sqrt(lv + 1e-12)}
	}
	// QMC normal draws shared across candidates: dims (cost, latency).
	sob := qmc.NewScrambledSobol(2, e.rng.Split())
	draws := sob.NormalSample(S)

	var batch [][]float64
	taken := make([]bool, len(cands))
	for slot := 0; slot < q; slot++ {
		bestIdx, bestGain := -1, -math.Inf(1)
		for i, x := range cands {
			if taken[i] {
				continue
			}
			c := caches[i]
			var gain float64
			switch e.cfg.Acquisition {
			case EI:
				gain = e.analyticEI(c.cm, c.cv, c.lm, c.lv, best)
			default: // NEI
				for s := 0; s < S; s++ {
					costS := c.cm + c.cv*draws[s][0]
					latS := c.lm + c.lv*draws[s][1]
					if latS > e.cfg.QoS {
						continue
					}
					if imp := best[s] - costS; imp > 0 {
						gain += imp
					}
				}
				gain /= float64(S)
			}
			if gain > bestGain {
				bestGain, bestIdx = gain, i
			}
			_ = x
		}
		if bestIdx < 0 {
			break
		}
		if slot == 0 {
			e.lastAcq = bestGain
		}
		taken[bestIdx] = true
		batch = append(batch, cands[bestIdx])
		// Fantasy update: pending point lowers the per-sample incumbent.
		c := caches[bestIdx]
		for s := 0; s < S; s++ {
			costS := c.cm + c.cv*draws[s][0]
			latS := c.lm + c.lv*draws[s][1]
			if latS <= e.cfg.QoS && costS < best[s] {
				best[s] = costS
			}
		}
	}
	// Top up with random points if the pool ran dry.
	for len(batch) < q {
		batch = append(batch, e.randomBatch(1)[0])
	}
	return batch
}

// analyticEI is classic constrained EI: expected improvement over the best
// *observed* feasible cost, weighted by the probability of feasibility.
func (e *Engine) analyticEI(cm, csd, lm, lsd float64, best []float64) float64 {
	// For EI the incumbent is deterministic: best[0] holds it (see
	// sampleIncumbents which returns a constant slice under EI).
	f := best[0]
	if csd < 1e-12 {
		csd = 1e-12
	}
	z := (f - cm) / csd
	ei := (f-cm)*stats.NormalCDF(z) + csd*stats.NormalPDF(z)
	if ei < 0 {
		ei = 0
	}
	pf := stats.NormalCDF((e.cfg.QoS - lm) / lsd)
	return ei * pf
}

// sampleIncumbents draws S joint posterior samples of (cost, latency) at
// the observed points and returns, per sample, the minimum cost among
// feasible points (falling back to overall minimum when no sampled point is
// feasible). Under EI it returns the deterministic observed feasible best
// replicated once.
func (e *Engine) sampleIncumbents(S int) []float64 {
	clean := e.cleanObservations()
	if e.cfg.Acquisition == EI {
		best := math.Inf(1)
		for _, o := range clean {
			if o.Latency <= e.cfg.QoS && o.Cost < best {
				best = o.Cost
			}
		}
		if math.IsInf(best, 1) {
			for _, o := range clean {
				if o.Cost < best {
					best = o.Cost
				}
			}
		}
		out := make([]float64, S)
		for i := range out {
			out[i] = best
		}
		return out
	}
	xs := make([][]float64, len(clean))
	for i, o := range clean {
		xs[i] = o.X
	}
	n := len(xs)
	dims := n
	if dims > qmc.MaxDim {
		// Sobol dimensionality is bounded; for larger histories use the
		// most recent points for the joint draw (older ones rarely hold
		// the incumbent under a converging optimizer) — fall back to the
		// last MaxDim observations.
		xs = xs[n-qmc.MaxDim:]
		clean = clean[n-qmc.MaxDim:]
		dims = qmc.MaxDim
	}
	sobC := qmc.NewScrambledSobol(dims, e.rng.Split())
	sobL := qmc.NewScrambledSobol(dims, e.rng.Split())
	costDraws := e.costGP.SampleJoint(xs, sobC.NormalSample(S))
	latDraws := e.latGP.SampleJoint(xs, sobL.NormalSample(S))
	best := make([]float64, S)
	for s := 0; s < S; s++ {
		bf, bAny := math.Inf(1), math.Inf(1)
		for i := range xs {
			c := costDraws[s][i]
			if c < bAny {
				bAny = c
			}
			if latDraws[s][i] <= e.cfg.QoS && c < bf {
				bf = c
			}
		}
		if math.IsInf(bf, 1) {
			bf = bAny
		}
		best[s] = bf
	}
	return best
}

// Observe records a batch of profiled observations. Each new observation
// is first screened against the *previous* surrogates (the paper's
// diagnostic models): a point far outside the robust predictive interval
// is an anomaly and never enters the fit. A burst of consecutive
// anomalies signals a workload behaviour change and triggers incremental
// retraining (history reset).
func (e *Engine) Observe(batch []Observation) {
	flags := make([]bool, len(batch))
	if !e.cfg.DisableAnomalyDetection && e.fitted {
		for i, o := range batch {
			flags[i] = e.isAnomalous(o)
		}
	}
	for i, o := range batch {
		e.obs = append(e.obs, o)
		e.anomalous = append(e.anomalous, flags[i])
	}
	e.sinceHyper += len(batch)
	if e.cfg.SlidingWindow > 0 && len(e.obs) > e.cfg.SlidingWindow {
		drop := len(e.obs) - e.cfg.SlidingWindow
		e.obs = e.obs[drop:]
		e.anomalous = e.anomalous[drop:]
	}
	if !e.cfg.DisableAnomalyDetection {
		e.maybeHandleChange()
	}
	e.refit()
	e.iter++
	if e.tracer.Enabled() {
		pruned := 0
		for _, f := range flags {
			if f {
				pruned++
			}
		}
		fields := telemetry.Fields{
			"observations": float64(len(e.obs)),
			"pruned":       float64(pruned),
			"acquisition":  e.lastAcq,
		}
		if _, cost, ok := e.BestFeasible(); ok {
			fields["incumbent_cost"] = cost
			fields["incumbent_latency"] = e.incumbentLatency()
		}
		e.tracer.Point(telemetry.KindBOIteration, "bo", 0, float64(e.iter), fields)
	}
}

// incumbentLatency returns the latency of the best feasible observation.
func (e *Engine) incumbentLatency() float64 {
	best := math.Inf(1)
	lat := 0.0
	for i, o := range e.obs {
		if e.anomalous[i] || o.Latency > e.cfg.QoS {
			continue
		}
		if o.Cost < best {
			best = o.Cost
			lat = o.Latency
		}
	}
	return lat
}

// isAnomalous screens one observation against the current surrogates: the
// yardstick combines the posterior variance at the point with the robust
// (MAD) scale of the current in-sample residuals, so ordinary noise and
// model misfit set the bar and only irregular outliers exceed it.
func (e *Engine) isAnomalous(o Observation) bool {
	cm, cv := e.costGP.Posterior(o.X)
	lm, lv := e.latGP.Posterior(o.X)
	cThresh := e.cfg.AnomalyZ * math.Sqrt(e.costResidScale*e.costResidScale+cv)
	lThresh := e.cfg.AnomalyZ * math.Sqrt(e.latResidScale*e.latResidScale+lv)
	return math.Abs(o.Cost-cm) > cThresh || math.Abs(o.Latency-lm) > lThresh
}

// refit re-trains both GPs on the clean observations.
func (e *Engine) refit() {
	clean := e.cleanObservations()
	if len(clean) < 2 {
		e.fitted = false
		return
	}
	xs := make([][]float64, len(clean))
	costs := make([]float64, len(clean))
	lats := make([]float64, len(clean))
	for i, o := range clean {
		xs[i] = o.X
		costs[i] = o.Cost
		lats[i] = o.Latency
	}
	if err := e.costGP.Fit(xs, costs); err != nil {
		e.fitted = false
		return
	}
	if err := e.latGP.Fit(xs, lats); err != nil {
		e.fitted = false
		return
	}
	if e.sinceHyper >= e.cfg.HyperfitEvery {
		e.costGP.FitHyperparameters(e.rng, 2)
		e.latGP.FitHyperparameters(e.rng, 2)
		e.sinceHyper = 0
	}
	e.fitted = true
	// Refresh the robust residual scales used by anomaly screening.
	// Leave-one-out residuals are required here: in-sample residuals of
	// a near-interpolating GP are ~0 and would flag everything.
	costRes := make([]float64, 0, len(clean))
	latRes := make([]float64, 0, len(clean))
	for i, o := range clean {
		cm, _, err1 := e.costGP.LeaveOneOut(i)
		lm, _, err2 := e.latGP.LeaveOneOut(i)
		if err1 != nil || err2 != nil {
			continue
		}
		costRes = append(costRes, o.Cost-cm)
		latRes = append(latRes, o.Latency-lm)
	}
	e.costResidScale = madScale(costRes)
	e.latResidScale = madScale(latRes)
}

// madScale returns a robust standard-deviation estimate
// (1.4826 × median absolute deviation), floored to avoid zero scales.
func madScale(resid []float64) float64 {
	abs := make([]float64, len(resid))
	for i, r := range resid {
		abs[i] = math.Abs(r)
	}
	s := 1.4826 * stats.Percentile(abs, 50)
	if s < 1e-9 {
		s = 1e-9
	}
	return s
}

// maybeHandleChange implements incremental retraining: when the most recent
// ChangeBurst observations are all anomalous, the workload's behaviour has
// likely changed (new inputs, function update); the engine drops older
// history and un-flags the burst so the model re-learns from fresh samples.
func (e *Engine) maybeHandleChange() {
	k := e.cfg.ChangeBurst
	if len(e.obs) < k {
		return
	}
	for i := len(e.obs) - k; i < len(e.obs); i++ {
		if !e.anomalous[i] {
			return
		}
	}
	e.obs = e.obs[len(e.obs)-k:]
	e.anomalous = make([]bool, len(e.obs))
	e.changeEvents++
	e.fitted = false
}

// BestFeasible returns the non-anomalous observation with the lowest cost
// among those meeting QoS. ok is false when no feasible point exists yet.
func (e *Engine) BestFeasible() (x []float64, cost float64, ok bool) {
	best := math.Inf(1)
	for i, o := range e.obs {
		if e.anomalous[i] || o.Latency > e.cfg.QoS {
			continue
		}
		if o.Cost < best {
			best = o.Cost
			x = o.X
			ok = true
		}
	}
	return x, best, ok
}

// BestAny returns the lowest-cost non-anomalous observation regardless of
// feasibility (used as a fallback when nothing meets QoS yet).
func (e *Engine) BestAny() (x []float64, cost float64, ok bool) {
	best := math.Inf(1)
	for i, o := range e.obs {
		if e.anomalous[i] {
			continue
		}
		if o.Cost < best {
			best = o.Cost
			x = o.X
			ok = true
		}
	}
	return x, best, ok
}
