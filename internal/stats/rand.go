package stats

import (
	"math"
	"math/rand"
)

// RNG wraps math/rand.Rand with the distribution samplers the simulator and
// workload generators need. Every stochastic component in the repository owns
// an RNG seeded explicitly so experiments are reproducible.
type RNG struct {
	r    *rand.Rand
	src  *countingSource
	seed int64
}

// countingSource wraps the math/rand source and counts every draw, making
// the generator's position in its stream observable. Because rand.Rand's
// samplers (NormFloat64, ExpFloat64, Intn, ...) hold no state beyond the
// source — rejection loops just draw again — (seed, draw count) captures
// the RNG exactly: replaying that many draws on a fresh source lands on the
// identical state.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func (s *countingSource) Int63() int64 {
	s.n++
	return s.src.Int63()
}

func (s *countingSource) Uint64() uint64 {
	s.n++
	return s.src.Uint64()
}

func (s *countingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.n = 0
}

// NewRNG returns a deterministic RNG for the given seed.
func NewRNG(seed int64) *RNG {
	src := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	return &RNG{r: rand.New(src), src: src, seed: seed}
}

// Pos returns the seed and the number of source draws consumed so far —
// the complete serializable state of the generator.
func (g *RNG) Pos() (seed int64, draws uint64) { return g.seed, g.src.n }

// Skip advances the generator by n source draws. NewRNG(seed) followed by
// Skip(draws) reconstructs the exact state reported by Pos.
func (g *RNG) Skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		g.src.src.Int63()
	}
	g.src.n += n
}

// Float64 returns a uniform sample in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Normal returns a Gaussian sample with the given mean and standard
// deviation.
func (g *RNG) Normal(mean, std float64) float64 {
	return mean + std*g.r.NormFloat64()
}

// LogNormal returns a sample whose logarithm is Normal(mu, sigma).
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.Normal(mu, sigma))
}

// Exponential returns an exponential sample with the given rate (lambda).
// The mean of the distribution is 1/rate.
func (g *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		return 0
	}
	return g.r.ExpFloat64() / rate
}

// Poisson returns a Poisson sample with the given mean using Knuth's method
// for small means and a normal approximation above 30 to stay O(1).
func (g *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := g.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= g.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Pareto returns a bounded Pareto sample with shape alpha and minimum xm.
func (g *RNG) Pareto(xm, alpha float64) float64 {
	u := g.r.Float64()
	for u == 0 {
		u = g.r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Uniform returns a uniform sample in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool { return g.r.Float64() < p }

// Split derives a new independent RNG from this one. Use it to hand child
// components their own deterministic streams.
func (g *RNG) Split() *RNG { return NewRNG(g.r.Int63()) }
