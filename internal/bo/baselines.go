package bo

import (
	"math"

	"aquatope/internal/gp"
	"aquatope/internal/stats"
)

// Optimizer is the common interface of all configuration-search strategies:
// propose configurations, ingest profiled observations, report the best
// QoS-feasible configuration found.
type Optimizer interface {
	Suggest() [][]float64
	Observe([]Observation)
	BestFeasible() (x []float64, cost float64, ok bool)
}

var (
	_ Optimizer = (*Engine)(nil)
	_ Optimizer = (*RandomSearch)(nil)
	_ Optimizer = (*CLITE)(nil)
)

// RandomSearch proposes uniformly random configurations and never learns —
// the Random baseline of Figs. 12 and 13.
type RandomSearch struct {
	Dim   int
	QoS   float64
	Batch int
	rng   *stats.RNG
	obs   []Observation
}

// NewRandomSearch returns a random-search baseline.
func NewRandomSearch(dim int, qos float64, batch int, seed int64) *RandomSearch {
	if batch <= 0 {
		batch = 1
	}
	return &RandomSearch{Dim: dim, QoS: qos, Batch: batch, rng: stats.NewRNG(seed)}
}

// Suggest implements Optimizer.
func (r *RandomSearch) Suggest() [][]float64 {
	out := make([][]float64, r.Batch)
	for i := range out {
		x := make([]float64, r.Dim)
		for d := range x {
			x[d] = r.rng.Float64()
		}
		out[i] = x
	}
	return out
}

// Observe implements Optimizer.
func (r *RandomSearch) Observe(batch []Observation) { r.obs = append(r.obs, batch...) }

// BestFeasible implements Optimizer.
func (r *RandomSearch) BestFeasible() ([]float64, float64, bool) {
	best := math.Inf(1)
	var x []float64
	ok := false
	for _, o := range r.obs {
		if o.Latency <= r.QoS && o.Cost < best {
			best, x, ok = o.Cost, o.X, true
		}
	}
	return x, best, ok
}

// CLITE reimplements the CLITE baseline (Patel & Tiwari, HPCA'20) adapted to
// serverless per the paper's §7.4: a single GP over a hand-crafted penalized
// objective — cost when QoS is met, cost plus a violation penalty otherwise —
// maximized with classic (noise-unaware) expected improvement, one sample at
// a time. Its known weaknesses, which Aquatope's design removes, are the
// reactive penalty, the noiseless-incumbent assumption, and sequential
// sampling.
type CLITE struct {
	Dim       int
	QoS       float64
	Bootstrap int
	// PenaltyWeight scales the QoS-violation term of the score function.
	PenaltyWeight float64

	rng    *stats.RNG
	surr   *gp.GP
	obs    []Observation
	fitted bool
	since  int
}

// NewCLITE returns the CLITE baseline optimizer.
func NewCLITE(dim int, qos float64, seed int64) *CLITE {
	c := &CLITE{Dim: dim, QoS: qos, Bootstrap: 5, PenaltyWeight: 2, rng: stats.NewRNG(seed)}
	c.surr = gp.New(gp.NewMatern52(dim), 1e-6) // noiseless assumption, per paper
	return c
}

// score is CLITE's manually crafted objective (lower is better).
func (c *CLITE) score(o Observation) float64 {
	if o.Latency <= c.QoS {
		return o.Cost
	}
	return o.Cost * (1 + c.PenaltyWeight*(o.Latency-c.QoS)/c.QoS)
}

// Suggest implements Optimizer (single candidate per iteration).
func (c *CLITE) Suggest() [][]float64 {
	if len(c.obs) < c.Bootstrap || !c.fitted {
		x := make([]float64, c.Dim)
		for d := range x {
			x[d] = c.rng.Float64()
		}
		return [][]float64{x}
	}
	// Classic EI over the penalized score with the best observed score as
	// a noiseless incumbent.
	best := math.Inf(1)
	for _, o := range c.obs {
		if s := c.score(o); s < best {
			best = s
		}
	}
	var bestX []float64
	bestEI := -1.0
	for i := 0; i < 256; i++ {
		x := make([]float64, c.Dim)
		for d := range x {
			x[d] = c.rng.Float64()
		}
		m, v := c.surr.Posterior(x)
		sd := math.Sqrt(v + 1e-12)
		z := (best - m) / sd
		ei := (best-m)*stats.NormalCDF(z) + sd*stats.NormalPDF(z)
		if ei > bestEI {
			bestEI, bestX = ei, x
		}
	}
	return [][]float64{bestX}
}

// Observe implements Optimizer. Scores are fixed at observation time and
// history is never evicted, so the surrogate grows by incremental appends
// (rank-1 factor extensions) instead of a full refit per batch; only the
// every-5-observations hyperparameter refit reconditions from scratch.
func (c *CLITE) Observe(batch []Observation) {
	c.obs = append(c.obs, batch...)
	c.since += len(batch)
	ok := true
	for _, o := range batch {
		if c.surr.Observe(o.X, c.score(o)) != nil {
			ok = false
			break
		}
	}
	if !ok {
		// Recondition from scratch; scores are recomputable from history.
		xs := make([][]float64, len(c.obs))
		ys := make([]float64, len(c.obs))
		for i, o := range c.obs {
			xs[i] = o.X
			ys[i] = c.score(o)
		}
		if err := c.surr.Fit(xs, ys); err != nil {
			c.fitted = false
			return
		}
	}
	if len(c.obs) < 2 {
		return
	}
	if c.since >= 5 {
		c.surr.FitHyperparameters(c.rng, 2)
		c.since = 0
	}
	c.fitted = true
}

// BestFeasible implements Optimizer.
func (c *CLITE) BestFeasible() ([]float64, float64, bool) {
	best := math.Inf(1)
	var x []float64
	ok := false
	for _, o := range c.obs {
		if o.Latency <= c.QoS && o.Cost < best {
			best, x, ok = o.Cost, o.X, true
		}
	}
	return x, best, ok
}
