// Command aqualint machine-checks the repository's determinism and
// simulation-safety invariants (DESIGN.md §8, §13). It is a
// self-contained static analyzer over go/ast + go/types with nine
// checks:
//
//	wallclock   no time.Now/Since/Sleep/timers in simulation-driven code
//	globalrand  no math/rand outside internal/stats (seeded RNGs only)
//	maporder    no order-dependent work inside for-range over a map
//	droppederr  no silently discarded error results in non-test code
//	metricname  metric names and span kinds come from the telemetry catalog
//	seedflow    every RNG constructor seed traces to config/DeriveSeed,
//	            never a literal or the wall clock, across helper layers
//	spanpair    every telemetry.StartSpan is ended on all control-flow
//	            paths (or deferred / handed off)
//	sharedmut   no unguarded writes to variables captured by goroutine
//	            or replication-job closures
//	hotalloc    advisory allocation hygiene in hot-path per-event loops
//
// Suppress a finding on one line with an explained escape hatch:
//
//	//aqualint:allow <check> <reason>
//
// Usage:
//
//	aqualint [-checks wallclock,maporder] [-json] [packages]
//
// Packages default to ./... relative to the current directory. With
// -json the findings are emitted as a JSON array on stdout (file, line,
// col, check, message) for CI archiving; the human format is the
// default. A timing summary always goes to stderr. Exit code is 0 when
// clean, 1 when findings are reported, 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"aquatope/internal/lint"
)

// jsonFinding is the machine-readable shape of one finding.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func main() {
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all of "+strings.Join(lint.AnalyzerNames(), ",")+")")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Parse()

	cfg := lint.DefaultConfig()
	if *checks != "" {
		keep := make(map[string]bool)
		for _, name := range strings.Split(*checks, ",") {
			name = strings.TrimSpace(name)
			if _, ok := cfg.Checks[name]; !ok {
				fmt.Fprintf(os.Stderr, "aqualint: unknown check %q (known: %s)\n", name, strings.Join(lint.AnalyzerNames(), ", "))
				os.Exit(2)
			}
			keep[name] = true
		}
		for name := range cfg.Checks {
			if !keep[name] {
				delete(cfg.Checks, name)
			}
		}
	}

	start := time.Now() //aqualint:allow wallclock the linter reports its own real elapsed time on stderr
	pkgs, err := lint.Load(".", flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aqualint:", err)
		os.Exit(2)
	}
	loaded := time.Since(start) //aqualint:allow wallclock the linter reports its own real elapsed time on stderr
	findings := lint.Run(pkgs, cfg)
	total := time.Since(start) //aqualint:allow wallclock the linter reports its own real elapsed time on stderr

	cwd, _ := os.Getwd()
	rel := func(name string) string {
		if cwd == "" {
			return name
		}
		if r, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
		return name
	}
	if *asJSON {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File: rel(f.Pos.Filename), Line: f.Pos.Line, Col: f.Pos.Column,
				Check: f.Check, Message: f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "aqualint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			pos := f.Pos
			pos.Filename = rel(pos.Filename)
			fmt.Printf("%s: [%s] %s\n", pos, f.Check, f.Message)
		}
	}
	fmt.Fprintf(os.Stderr, "aqualint: %d package(s), %d check(s), %d finding(s) in %v (load %v, analysis %v)\n",
		len(pkgs), len(cfg.Checks), len(findings),
		total.Round(time.Millisecond), loaded.Round(time.Millisecond), (total - loaded).Round(time.Millisecond))
	if len(findings) > 0 {
		os.Exit(1)
	}
}
