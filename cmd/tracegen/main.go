// Command tracegen emits synthetic Azure-style invocation traces as CSV
// (per-minute counts plus arrival timestamps), for inspection or for
// driving external tooling.
//
// Usage:
//
//	tracegen -kind seasonal -minutes 1440 -rate 10 -cv 2 > trace.csv
//	tracegen -kind periodic -minutes 2880 -period 30
//	tracegen -kind ensemble -n 12 -minutes 1440 -out traces
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"aquatope/internal/trace"
)

func main() {
	kind := flag.String("kind", "seasonal", "trace kind: seasonal | periodic | ensemble")
	minutes := flag.Int("minutes", 1440, "trace length in minutes")
	rate := flag.Float64("rate", 10, "mean invocations per minute (seasonal)")
	cv := flag.Float64("cv", 1.5, "inter-arrival CV (seasonal)")
	diurnal := flag.Float64("diurnal", 0.6, "diurnal amplitude 0..1")
	period := flag.Float64("period", 30, "period in minutes (periodic)")
	clump := flag.Float64("clump", 2, "mean clump size (periodic)")
	n := flag.Int("n", 8, "ensemble size")
	out := flag.String("out", "", "output directory for ensemble mode (default stdout for single)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	switch *kind {
	case "seasonal":
		tr := trace.Synthesize(trace.GenConfig{
			DurationMin: *minutes, MeanRatePerMin: *rate, Diurnal: *diurnal,
			CV: *cv, Seed: *seed,
		})
		writeTrace(os.Stdout, tr)
	case "periodic":
		tr := trace.SynthesizePeriodic(trace.PeriodicGenConfig{
			DurationMin: *minutes, PeriodMin: *period, ClumpMean: *clump,
			Diurnal: *diurnal, Seed: *seed,
		})
		writeTrace(os.Stdout, tr)
	case "ensemble":
		dir := *out
		if dir == "" {
			dir = "traces"
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for i, tr := range trace.AzureLikeEnsemble(*n, *minutes, *seed) {
			f, err := os.Create(filepath.Join(dir, fmt.Sprintf("trace%02d.csv", i)))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			writeTrace(f, tr)
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		fmt.Fprintf(os.Stderr, "wrote %d traces to %s/\n", *n, dir)
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		os.Exit(2)
	}
}

// writeTrace emits one CSV: header row, then minute,count rows, then a
// trailing block of raw arrival timestamps.
func writeTrace(f *os.File, tr *trace.Trace) {
	w := csv.NewWriter(f)
	defer w.Flush()
	_ = w.Write([]string{"minute", "count"})
	for i, c := range tr.Counts() {
		_ = w.Write([]string{strconv.Itoa(i), strconv.FormatFloat(c, 'f', 0, 64)})
	}
	_ = w.Write([]string{"# arrivals_sec", fmt.Sprintf("cv=%.2f", tr.InterArrivalCV())})
	for _, a := range tr.Arrivals {
		_ = w.Write([]string{strconv.FormatFloat(a, 'f', 3, 64)})
	}
}
