package faas

import "aquatope/internal/sim"

// containerState tracks a container's lifecycle.
type containerState int

const (
	stateWarming containerState = iota // being created / initializing
	stateIdle                          // warm, waiting for work
	stateBusy                          // executing an invocation
	stateDead                          // terminated
)

// container is one function container on an invoker.
type container struct {
	id       int
	fn       *function
	invoker  *Invoker
	state    containerState
	cfg      ResourceConfig
	born     float64 // creation time (memory accounting starts here)
	warmAt   float64 // when initialization completed
	lastUsed float64
	// everUsed reports whether any invocation ran in this container; a
	// container's first invocation is a cold start only if the invocation
	// triggered (or waited on) its creation.
	everUsed  bool
	idleTimer *sim.Event
	// prewarmed marks containers created proactively by the pool
	// scheduler rather than on demand.
	prewarmed bool
}
