package runner

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"aquatope/internal/telemetry"
)

// batch builds a deterministic job set whose replications emit spans and
// metrics derived only from Ctx.Seed, the way a real simulator run does.
func batch(cells, reps int) []Job[int64] {
	var jobs []Job[int64]
	for c := 0; c < cells; c++ {
		for r := 0; r < reps; r++ {
			cell := fmt.Sprintf("cell%d", c)
			rep := r
			jobs = append(jobs, Job[int64]{Cell: cell, Rep: rep,
				Run: func(ctx Ctx) (int64, error) {
					id := ctx.Tracer.StartSpan(telemetry.KindWorkflow, cell, 0, float64(rep))
					ctx.Tracer.Point(telemetry.KindRetry, cell, id, float64(rep)+0.5,
						telemetry.Fields{"seed": float64(ctx.Seed % 1000)})
					ctx.Tracer.EndSpan(id, float64(rep)+1, nil)
					ctx.Registry.Counter("runner.test.reps").Inc()
					ctx.Registry.Histogram("runner.test.seed_mod").Observe(float64(ctx.Seed % 97))
					return ctx.Seed, nil
				}})
		}
	}
	return jobs
}

// runBatch executes the standard batch at the given parallelism and returns
// the results plus serialized telemetry.
func runBatch(t *testing.T, parallel int) ([]int64, string, string) {
	t.Helper()
	col := telemetry.NewCollector()
	reg := telemetry.NewRegistry()
	e := &Engine{Experiment: "unit", Parallel: parallel, BaseSeed: 5, Collector: col, Registry: reg}
	out, err := Run(e, batch(4, 6))
	if err != nil {
		t.Fatal(err)
	}
	var spans, metrics bytes.Buffer
	if err := col.WriteJSONL(&spans); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteJSON(&metrics); err != nil {
		t.Fatal(err)
	}
	return out, spans.String(), metrics.String()
}

func TestRunSchedulingIndependence(t *testing.T) {
	r1, s1, m1 := runBatch(t, 1)
	for _, p := range []int{2, 7, 32} {
		rp, sp, mp := runBatch(t, p)
		for i := range r1 {
			if r1[i] != rp[i] {
				t.Fatalf("parallel=%d result[%d] = %d, want %d", p, i, rp[i], r1[i])
			}
		}
		if s1 != sp {
			t.Fatalf("parallel=%d span stream differs from serial run", p)
		}
		if m1 != mp {
			t.Fatalf("parallel=%d metric snapshot differs from serial run", p)
		}
	}
}

func TestRunSeedDerivationAndPinning(t *testing.T) {
	e := &Engine{Experiment: "seeds", Parallel: 3, BaseSeed: 42}
	jobs := []Job[int64]{
		{Cell: "a", Rep: 0, Run: func(ctx Ctx) (int64, error) { return ctx.Seed, nil }},
		{Cell: "a", Rep: 1, Run: func(ctx Ctx) (int64, error) { return ctx.Seed, nil }},
		{Cell: "b", Rep: 0, Seed: 1234, Run: func(ctx Ctx) (int64, error) { return ctx.Seed, nil }},
	}
	out, err := Run(e, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != DeriveSeed(42, "seeds", "a", 0) || out[1] != DeriveSeed(42, "seeds", "a", 1) {
		t.Fatalf("derived seeds wrong: %v", out)
	}
	if out[0] == out[1] {
		t.Fatal("adjacent reps derived the same seed")
	}
	if out[2] != 1234 {
		t.Fatalf("pinned seed not honored: %d", out[2])
	}
}

func TestDeriveSeedStable(t *testing.T) {
	a := DeriveSeed(1, "fig9", "keepalive", 0)
	if a != DeriveSeed(1, "fig9", "keepalive", 0) {
		t.Fatal("DeriveSeed not deterministic")
	}
	distinct := map[int64]string{a: "base"}
	for _, v := range []struct {
		base      int64
		exp, cell string
		rep       int
	}{
		{1, "fig9", "keepalive", 1},
		{1, "fig9", "autoscale", 0},
		{1, "fig10", "keepalive", 0},
		{2, "fig9", "keepalive", 0},
		{1, "fig9keepalive", "", 0}, // separator: concatenation must not collide
	} {
		s := DeriveSeed(v.base, v.exp, v.cell, v.rep)
		if s <= 0 {
			t.Fatalf("derived seed not positive: %d", s)
		}
		if prev, dup := distinct[s]; dup {
			t.Fatalf("seed collision between %q and %+v", prev, v)
		}
		distinct[s] = fmt.Sprint(v)
	}
}

func TestRunPanicsSurfaceAsErrors(t *testing.T) {
	e := &Engine{Experiment: "hazard", Parallel: 4}
	var jobs []Job[string]
	for i := 0; i < 24; i++ {
		i := i
		jobs = append(jobs, Job[string]{Cell: "mixed", Rep: i,
			Run: func(Ctx) (string, error) {
				switch i % 3 {
				case 0:
					panic(fmt.Sprintf("boom %d", i))
				case 1:
					return "", fmt.Errorf("fail %d", i)
				}
				return fmt.Sprintf("ok %d", i), nil
			}})
	}
	out, err := Run(e, jobs)
	if err == nil {
		t.Fatal("expected a joined error from failing replications")
	}
	msg := err.Error()
	if !strings.Contains(msg, "panicked: boom 0") || !strings.Contains(msg, "fail 1") {
		t.Fatalf("error missing failure details:\n%s", msg)
	}
	if !strings.Contains(msg, "hazard/mixed#0") {
		t.Fatalf("error missing experiment/cell/rep labels:\n%s", msg)
	}
	// Healthy replications still produce their results.
	for i := 2; i < 24; i += 3 {
		if out[i] != fmt.Sprintf("ok %d", i) {
			t.Fatalf("result %d lost: %q", i, out[i])
		}
	}
}

func TestMustRunPanicsOnFailure(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRun should panic when a replication fails")
		}
	}()
	MustRun(&Engine{Experiment: "x"}, []Job[int]{{Cell: "c",
		Run: func(Ctx) (int, error) { return 0, errors.New("nope") }}})
}

func TestRunEmptyBatch(t *testing.T) {
	out, err := Run[int](&Engine{Experiment: "empty"}, nil)
	if out != nil || err != nil {
		t.Fatalf("empty batch: %v, %v", out, err)
	}
}

func TestBenchAccumulates(t *testing.T) {
	b := NewBench()
	b.Record("fig9", 12, 2, 6)
	b.Record("fig9", 6, 1, 3)
	b.Record("table1", 4, 1, 1)
	entries := b.Entries()
	if len(entries) != 2 || entries[0].ID != "fig9" || entries[1].ID != "table1" {
		t.Fatalf("entries = %+v", entries)
	}
	if entries[0].Replications != 18 || entries[0].WallSeconds != 3 || entries[0].BusySeconds != 9 {
		t.Fatalf("fig9 stats = %+v", entries[0])
	}
	if entries[0].Speedup != 3 {
		t.Fatalf("speedup = %v, want 3", entries[0].Speedup)
	}
	var nilBench *Bench
	nilBench.Record("x", 1, 1, 1) // must not panic
	if nilBench.Entries() != nil {
		t.Fatal("nil bench should have no entries")
	}
	// The engine feeds the bench.
	e := &Engine{Experiment: "engine", Parallel: 2, Bench: NewBench()}
	if _, err := Run(e, batch(2, 2)); err != nil {
		t.Fatal(err)
	}
	got := e.Bench.Entries()
	if len(got) != 1 || got[0].Replications != 4 || got[0].WallSeconds <= 0 {
		t.Fatalf("engine bench entries = %+v", got)
	}
}
