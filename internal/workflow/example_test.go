package workflow_test

import (
	"fmt"

	"aquatope/internal/faas"
	"aquatope/internal/sim"
	"aquatope/internal/stats"
	"aquatope/internal/workflow"
)

type constModel struct{ exec float64 }

func (m constModel) InitTime(faas.ResourceConfig, *stats.RNG) float64 { return 0 }
func (m constModel) ExecTime(_ faas.ResourceConfig, _ bool, in float64, _ *stats.RNG) float64 {
	return m.exec * in
}
func (m constModel) BaseMemoryMB() float64 { return 64 }

// ExampleExecutor_Execute builds a fan-out workflow and runs one request
// end to end on the simulated platform.
func ExampleExecutor_Execute() {
	eng := sim.NewEngine()
	cl := faas.NewCluster(eng, faas.Config{Seed: 1})
	for _, fn := range []string{"split", "work", "merge"} {
		_ = cl.RegisterFunction(
			faas.FunctionSpec{Name: fn, Model: constModel{exec: 1}},
			faas.ResourceConfig{CPU: 1, MemoryMB: 128},
		)
	}
	dag := workflow.FanOutFanIn("demo", "split", []string{"work"}, "merge")

	ex := workflow.NewExecutor(cl)
	var res workflow.Result
	_ = ex.Execute(dag, 1, map[string]int{"branch0": 4}, func(r workflow.Result) { res = r })
	eng.Run()

	fmt.Printf("invocations: %d\n", res.Invocations)
	fmt.Printf("parallel latency below serial: %v\n", res.Latency() < 6)
	// Output:
	// invocations: 6
	// parallel latency below serial: true
}
