GO ?= go

.PHONY: verify build vet fmtcheck lint test bench microbench smoke

# Tier-1 gate: build everything, vet, check formatting, lint the
# determinism invariants, and run the full test suite with the race
# detector. CI and pre-commit both run this target. The race detector is
# ~10x slower than a plain run and the experiment harnesses are
# end-to-end simulations, so the suite needs more than go test's default
# 10-minute budget on small machines.
verify: build vet fmtcheck lint
	$(GO) test -race -timeout 30m ./...

# aqualint machine-checks the simulator's determinism invariants
# (DESIGN.md §8): no wall-clock time, no global randomness, no
# order-dependent map iteration, no silently dropped errors.
lint:
	$(GO) run ./cmd/aqualint ./...

fmtcheck:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# bench regenerates the evaluation suite at quick scale with the parallel
# replication engine at its default worker count (GOMAXPROCS) and records
# per-experiment wall/busy timing and speedup — the repo's performance
# trajectory for the harness.
bench:
	$(GO) run ./cmd/aquabench -exp all -scale quick -bench-out BENCH_aquabench.json

microbench:
	$(GO) test -bench=. -benchtime=1x ./...

# smoke runs the overload saturation sweep and the scheduler arena at
# quick scale through the CLI twice each — parallel and serial — and
# requires byte-identical stdout: the fastest end-to-end check that the
# overload-protection layers (bounded queues, breakers, retry budgets,
# pool guard) and every registered scheduler (aquatope, jolteon, caerus,
# naive) stay deterministic and parallel-safe. Timing lines go to
# stderr, so stdout compares clean.
#
# It then exercises the trace-analysis pipeline end to end: a short
# aquatope run dumps spans + metrics, aquatrace analyzes the dump twice
# and the reports must byte-compare equal (aquatrace itself exits nonzero
# if phase attribution drifts past 1% of measured latency). The summary
# lands in smoke_analysis.json for CI to archive.
#
# Finally the kill-restore leg drives the crash-safe serving loop end to
# end: record a stream, run an uninterrupted -serve reference (the
# scripted controller kill left inert via -ignore-crash), run the same
# serve with the kill armed — identical flags including the dump flags,
# since the config digest covers whether tracing is on — it must exit
# 137 mid-run writing no dumps (asserted), leaving only
# boundary checkpoints and the durable journal — then restore from the
# checkpoint directory and byte-compare the resumed run's span/metric
# dumps against the reference (DESIGN.md §15's restore-equals-
# uninterrupted contract, checked through the real binary).
smoke:
	$(GO) run ./cmd/aquabench -exp overload -scale quick -parallel 2 > .smoke_p2.txt
	$(GO) run ./cmd/aquabench -exp overload -scale quick -parallel 1 > .smoke_p1.txt
	cmp .smoke_p1.txt .smoke_p2.txt
	$(GO) run ./cmd/aquabench -exp arena -scale quick -parallel 2 > .smoke_arena_p2.txt
	$(GO) run ./cmd/aquabench -exp arena -scale quick -parallel 1 > .smoke_arena_p1.txt
	cmp .smoke_arena_p1.txt .smoke_arena_p2.txt
	$(GO) run ./cmd/aquatope -app chain -minutes 20 -train 5 -budget 2 -system keepalive -seed 3 \
		-trace-out .smoke_spans.jsonl -metrics-out .smoke_metrics.json > /dev/null
	$(GO) run ./cmd/aquatrace -trace .smoke_spans.jsonl -metrics .smoke_metrics.json \
		-json smoke_analysis.json > .smoke_a1.txt
	$(GO) run ./cmd/aquatrace -trace .smoke_spans.jsonl -metrics .smoke_metrics.json > .smoke_a2.txt
	cmp .smoke_a1.txt .smoke_a2.txt
	$(GO) build -o .smoke_aquatope ./cmd/aquatope
	./.smoke_aquatope -app chain -minutes 20 -seed 3 -emit-stream .smoke_stream.jsonl > /dev/null
	./.smoke_aquatope -serve -stream .smoke_stream.jsonl -checkpoint-dir .smoke_ck_ref \
		-app chain -minutes 20 -train 5 -budget 2 -system keepalive -seed 3 \
		-chaos kill-restore -ignore-crash \
		-trace-out .smoke_ref_spans.jsonl -metrics-out .smoke_ref_metrics.json > /dev/null
	./.smoke_aquatope -serve -stream .smoke_stream.jsonl -checkpoint-dir .smoke_ck \
		-app chain -minutes 20 -train 5 -budget 2 -system keepalive -seed 3 \
		-chaos kill-restore \
		-trace-out .smoke_crash_spans.jsonl -metrics-out .smoke_crash_metrics.json \
		> /dev/null 2>&1; test $$? -eq 137
	test ! -e .smoke_crash_spans.jsonl && test ! -e .smoke_crash_metrics.json
	./.smoke_aquatope -serve -stream .smoke_stream.jsonl -checkpoint-dir .smoke_ck \
		-restore .smoke_ck \
		-app chain -minutes 20 -train 5 -budget 2 -system keepalive -seed 3 \
		-chaos kill-restore \
		-trace-out .smoke_restore_spans.jsonl -metrics-out .smoke_restore_metrics.json > /dev/null
	cmp .smoke_ref_spans.jsonl .smoke_restore_spans.jsonl
	cmp .smoke_ref_metrics.json .smoke_restore_metrics.json
	rm -rf .smoke_p1.txt .smoke_p2.txt .smoke_arena_p1.txt .smoke_arena_p2.txt \
		.smoke_a1.txt .smoke_a2.txt .smoke_spans.jsonl .smoke_metrics.json \
		.smoke_aquatope .smoke_stream.jsonl .smoke_ck_ref .smoke_ck \
		.smoke_crash_spans.jsonl .smoke_crash_metrics.json \
		.smoke_ref_spans.jsonl .smoke_ref_metrics.json \
		.smoke_restore_spans.jsonl .smoke_restore_metrics.json
