// Command aquatrace is the post-hoc trace analysis engine (DESIGN.md §11).
// It reads a span dump (-trace-out JSONL from cmd/aquatope) and optionally
// a metrics snapshot (-metrics-out JSON), reconstructs each workflow's
// critical path, attributes end-to-end latency to phases (queue wait, cold
// start, execution, retry/hedge overhead, scheduling gap), rebuilds the
// control-plane decision audit log, and summarizes invoker utilization.
//
// The analysis is a pure function of its input files: the same dump always
// renders byte-identical reports.
//
// Usage:
//
//	aquatrace -trace spans.jsonl [-metrics metrics.json] [-json out.json]
//	          [-audit] [-top 5] [-all]
//
// By default workflows inside the training window (reconstructed from
// run.meta spans) are excluded, matching the evaluation convention; -all
// includes them. -audit replaces the summary with the full chronological
// decision log. Exit code is 0 on success, 1 when the attribution error
// bound (1% of end-to-end latency) is exceeded, 2 on usage or read errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"aquatope/internal/obs"
	"aquatope/internal/telemetry"
)

func main() {
	tracePath := flag.String("trace", "", "span dump to analyze (JSONL, required)")
	metricsPath := flag.String("metrics", "", "metrics snapshot to fold in (JSON, optional)")
	jsonOut := flag.String("json", "", "also write the analysis summary as JSON to this path ('-' for stdout)")
	audit := flag.Bool("audit", false, "print the full decision audit log instead of the summary")
	topK := flag.Int("top", 5, "top QoS violators to list per app")
	all := flag.Bool("all", false, "include workflows inside the training window")
	flag.Parse()

	if *tracePath == "" || flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "usage: aquatrace -trace spans.jsonl [-metrics metrics.json] [-json out.json] [-audit] [-top N] [-all]")
		os.Exit(2)
	}

	spans, err := readSpans(*tracePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aquatrace: %v\n", err)
		os.Exit(2)
	}
	var snap *telemetry.Snapshot
	if *metricsPath != "" {
		snap = new(telemetry.Snapshot)
		if err := readJSONFile(*metricsPath, snap); err != nil {
			fmt.Fprintf(os.Stderr, "aquatrace: %v\n", err)
			os.Exit(2)
		}
	}

	a := obs.Analyze(spans, snap, obs.Options{IncludeTraining: *all, TopK: *topK})

	if *audit {
		if err := a.WriteAudit(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "aquatrace: %v\n", err)
			os.Exit(2)
		}
	} else if err := a.WriteText(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "aquatrace: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut != "" {
		if err := writeJSONOut(a, *jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "aquatrace: %v\n", err)
			os.Exit(2)
		}
	}

	if a.AttributionError > 0.01 {
		fmt.Fprintf(os.Stderr, "aquatrace: attribution error %.3g%% exceeds the 1%% bound\n", a.AttributionError*100)
		os.Exit(1)
	}
}

func readSpans(path string) ([]telemetry.Span, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	spans, err := telemetry.ReadJSONL(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return spans, nil
}

func readJSONFile(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func writeJSONOut(a *obs.Analysis, path string) error {
	if path == "-" {
		return a.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = a.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
