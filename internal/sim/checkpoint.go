package sim

import (
	"sort"

	"aquatope/internal/checkpoint"
)

// Snapshot serializes the engine's verifiable state: clock, sequence
// counter, processed-event count, and a digest of the pending queue as the
// sorted (at, seq, canceled) schedule. Event callbacks are closures and
// cannot be serialized — the engine is a replay-derived component: restore
// rebuilds it by re-running the input stream, and this snapshot is the
// fingerprint the restorer byte-compares to prove the rebuilt engine is in
// the identical state (same clock, same event identities in the same order).
func (e *Engine) Snapshot(enc *checkpoint.Encoder) {
	enc.String("sim")
	enc.F64(e.now)
	enc.U64(e.seq)
	enc.U64(e.events)
	enc.Int(e.live)
	pend := make([]*Event, 0, len(e.queue))
	for _, ev := range e.queue {
		pend = append(pend, ev)
	}
	sort.Slice(pend, func(i, j int) bool {
		if pend[i].at != pend[j].at {
			return pend[i].at < pend[j].at
		}
		return pend[i].seq < pend[j].seq
	})
	enc.U64(uint64(len(pend)))
	for _, ev := range pend {
		enc.F64(ev.at)
		enc.U64(ev.seq)
		enc.Bool(ev.canceled)
	}
}
