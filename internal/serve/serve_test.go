package serve

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"aquatope/internal/apps"
	"aquatope/internal/chaos"
	"aquatope/internal/core"
	"aquatope/internal/faas"
	"aquatope/internal/pool"
	"aquatope/internal/telemetry"
	"aquatope/internal/trace"
	"aquatope/internal/workflow"
)

// fixtureStream synthesizes the arrival stream every test run replays.
func fixtureStream(t *testing.T, minutes int, seed int64) []Record {
	t.Helper()
	tr := trace.Synthesize(trace.GenConfig{
		DurationMin:    minutes,
		MeanRatePerMin: 5,
		Diurnal:        0.5,
		CV:             1.5,
		Seed:           seed,
	})
	recs := make([]Record, 0, len(tr.Arrivals))
	for _, at := range tr.Arrivals {
		recs = append(recs, Record{T: at, App: "chain2"})
	}
	if len(recs) < 10 {
		t.Fatalf("fixture trace too thin: %d arrivals", len(recs))
	}
	return recs
}

func sourceOf(t *testing.T, recs []Record) *Source {
	t.Helper()
	var buf bytes.Buffer
	arr := make([]float64, len(recs))
	for i, r := range recs {
		arr[i] = r.T
	}
	if err := WriteStream(&buf, "chain2", arr); err != nil {
		t.Fatal(err)
	}
	return NewSource(bytes.NewReader(buf.Bytes()))
}

// fixtureOpts builds the chaos+overload-armed serving configuration: the
// kill-restore scenario (demand surge + invoker loss + controller kill),
// bounded queues, the resilience layer, the pool guard, and the hybrid
// Bayesian pool policy at test scale.
func fixtureOpts(t *testing.T, dir string, armCrash bool) Options {
	t.Helper()
	const minutes = 20
	app := apps.NewChain(2)
	scn, ok := chaos.Builtin("kill-restore", float64(minutes)*60, 7)
	if !ok {
		t.Fatal("kill-restore scenario missing")
	}
	pol := workflow.DefaultRetryPolicy()
	pol.Timeout = app.QoS
	return Options{
		Apps:           []*apps.App{app},
		TrainMin:       5,
		HorizonMin:     minutes,
		PoolFactory:    testPoolFactory(),
		ManagerFactory: core.AquatopeManagerFactory(),
		SearchBudget:   3,
		ProfileNoise:   faas.Noise{GaussianStd: 0.15, OutlierRate: 0.02, OutlierScale: 3},
		RuntimeNoise:   faas.Noise{GaussianStd: 0.1, OutlierRate: 0.01, OutlierScale: 3},
		ClusterCfg:     faas.Config{Invokers: 4, QueueLimit: 8},
		Chaos:          scn,
		ArmCrash:       armCrash,
		Resilience:     &pol,
		PoolGuard:      &pool.Guard{},
		Tracer:         telemetry.NewCollector(),
		Registry:       telemetry.NewRegistry(),
		CheckpointDir:  dir,
		Seed:           7,
	}
}

func testPoolFactory() core.PolicyFactory {
	return func(fn string) pool.Policy {
		cfg := pool.DefaultModelConfig(trace.FeatureDim)
		cfg.EncoderHidden = 10
		cfg.PredHidden = []int{10, 6}
		cfg.EncoderEpochs = 4
		cfg.PredEpochs = 10
		cfg.MCSamples = 6
		cfg.LR = 0.01
		return &pool.Aquatope{ModelConfig: cfg, Window: 20, HeadroomZ: 2}
	}
}

// dumps renders the run's trace and metrics exactly as the CLI would.
func dumps(t *testing.T, o Options) (spans, metrics []byte) {
	t.Helper()
	var sb, mb bytes.Buffer
	if err := o.Tracer.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	if err := o.Registry.WriteJSON(&mb); err != nil {
		t.Fatal(err)
	}
	return sb.Bytes(), mb.Bytes()
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRestoreEqualsUninterrupted is the tentpole acceptance test: under
// the kill-restore chaos script (surge + invoker loss + controller kill),
// a run killed mid-surge and restored from any boundary checkpoint must
// produce byte-identical span and metric dumps to an uninterrupted
// reference run.
func TestRestoreEqualsUninterrupted(t *testing.T) {
	recs := fixtureStream(t, 20, 7)

	// Uninterrupted reference: crash fault fires inert (hook not armed).
	refOpts := fixtureOpts(t, t.TempDir(), false)
	ref, err := New(refOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(sourceOf(t, recs)); err != nil {
		t.Fatal(err)
	}
	wantSpans, wantMetrics := dumps(t, refOpts)
	if len(wantSpans) == 0 || len(wantMetrics) == 0 {
		t.Fatal("reference dumps empty")
	}

	// Killed run: the armed KindCrash fault unwinds the loop mid-surge.
	crashDir := t.TempDir()
	crashOpts := fixtureOpts(t, crashDir, true)
	crashed, err := New(crashOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := crashed.Run(sourceOf(t, recs)); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash run returned %v, want ErrCrashed", err)
	}
	lastK := crashed.Boundary()
	if lastK < 5 {
		t.Fatalf("crash came too early for a meaningful test: only %d boundaries", lastK)
	}
	if _, err := os.Stat(filepath.Join(crashDir, checkpointName(lastK))); err != nil {
		t.Fatalf("last boundary checkpoint missing: %v", err)
	}

	// Restore from three distinct boundaries — early, mid, and the last
	// checkpoint before the kill — and run each to completion. Every
	// resume works on a private copy of the crash state so the journals
	// do not cross-contaminate.
	for _, k := range []int{2, lastK / 2, lastK} {
		k := k
		t.Run(fmt.Sprintf("boundary-%d", k), func(t *testing.T) {
			dir := t.TempDir()
			copyDir(t, crashDir, dir)
			opts := fixtureOpts(t, dir, false)
			s, err := Restore(opts, filepath.Join(dir, checkpointName(k)))
			if err != nil {
				t.Fatalf("restore from boundary %d: %v", k, err)
			}
			src, err := s.ResumeSource(streamReader(t, recs))
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Run(src); err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			gotSpans, gotMetrics := dumps(t, opts)
			if !bytes.Equal(gotSpans, wantSpans) {
				t.Errorf("span dump diverged from uninterrupted run (%d vs %d bytes)",
					len(gotSpans), len(wantSpans))
			}
			if !bytes.Equal(gotMetrics, wantMetrics) {
				t.Errorf("metric dump diverged from uninterrupted run (%d vs %d bytes)",
					len(gotMetrics), len(wantMetrics))
			}
		})
	}
}

func streamReader(t *testing.T, recs []Record) *bytes.Reader {
	t.Helper()
	var buf bytes.Buffer
	arr := make([]float64, len(recs))
	for i, r := range recs {
		arr[i] = r.T
	}
	if err := WriteStream(&buf, "chain2", arr); err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(buf.Bytes())
}

// TestRestoreRejectsDigestMismatch: a checkpoint only restores against the
// exact options of the run that cut it.
func TestRestoreRejectsDigestMismatch(t *testing.T) {
	dir := t.TempDir()
	opts := fixtureOpts(t, dir, true)
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	recs := fixtureStream(t, 20, 7)
	if err := s.Run(sourceOf(t, recs)); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	wrong := fixtureOpts(t, dir, false)
	wrong.Seed = 8
	if _, err := Restore(wrong, filepath.Join(dir, checkpointName(2))); err == nil {
		t.Fatal("digest mismatch accepted")
	}
}
