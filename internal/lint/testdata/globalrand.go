package fixture

import "math/rand"

func globalrandPositives() {
	_ = rand.Intn(6)                   // want globalrand
	_ = rand.Float64()                 // want globalrand
	rand.Shuffle(3, func(i, j int) {}) // want globalrand
	_ = rand.New(rand.NewSource(1))    // want globalrand // want globalrand
}

func globalrandAllowed() {
	_ = rand.Int() //aqualint:allow globalrand fixture demonstrating the escape hatch
}
