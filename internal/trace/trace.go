// Package trace synthesizes serverless invocation traces with the
// statistical signatures of the Azure Functions Dataset the paper's
// workload generation relies on (§7.2): per-minute invocation counts with
// diurnal and weekly seasonality, bursts, controllable inter-arrival-time
// coefficient of variation (CV), and trigger-type metadata. It also
// provides the external-feature encoding (time of day, day of week,
// trigger type) consumed by the hybrid Bayesian prediction model.
package trace

import (
	"math"

	"aquatope/internal/stats"
)

// MinutesPerDay and MinutesPerWeek define the seasonal periods.
const (
	MinutesPerDay  = 1440
	MinutesPerWeek = 7 * MinutesPerDay
)

// Trace is one application's invocation history.
type Trace struct {
	// Arrivals are invocation timestamps in seconds from trace start,
	// strictly non-decreasing.
	Arrivals []float64
	// DurationMin is the covered horizon in minutes.
	DurationMin int
	// TriggerType is the function trigger class (0 HTTP, 1 storage,
	// 2 event hub).
	TriggerType int
	// StartMinute offsets the trace within the week (affects features).
	StartMinute int

	counts []float64 // lazily computed per-minute counts
}

// GenConfig parameterizes trace synthesis.
type GenConfig struct {
	// DurationMin is the horizon in minutes.
	DurationMin int
	// MeanRatePerMin is the average invocations per minute.
	MeanRatePerMin float64
	// Diurnal in [0,1) scales daily seasonality amplitude.
	Diurnal float64
	// Weekly in [0,1) scales weekly seasonality amplitude.
	Weekly float64
	// CV is the target coefficient of variation of inter-arrival times:
	// 1 ≈ Poisson, >1 bursty, <1 regular.
	CV float64
	// TriggerType tags the trace (external feature).
	TriggerType int
	// StartMinute offsets the trace within the week.
	StartMinute int
	// BurstEpisodesPerHour adds Markov-modulated load episodes: while an
	// episode is active the rate is multiplied by BurstMultiplier. Zero
	// disables episodes.
	BurstEpisodesPerHour float64
	// BurstDurationMin is the mean episode length in minutes (default 10).
	BurstDurationMin float64
	// BurstMultiplier is the mean rate multiplier during an episode
	// (default 6).
	BurstMultiplier float64
	Seed            int64
}

// Synthesize generates a trace by drawing inter-arrival gaps from a
// lognormal with the target CV and warping them through the cumulative
// seasonal rate, so both burstiness and seasonality are controlled.
func Synthesize(cfg GenConfig) *Trace {
	if cfg.DurationMin <= 0 {
		cfg.DurationMin = MinutesPerDay
	}
	if cfg.MeanRatePerMin <= 0 {
		cfg.MeanRatePerMin = 10
	}
	rng := stats.NewRNG(cfg.Seed)
	tr := &Trace{DurationMin: cfg.DurationMin, TriggerType: cfg.TriggerType, StartMinute: cfg.StartMinute}

	// Lognormal gap parameters for the target CV (CV² = e^{σ²} − 1).
	cv := cfg.CV
	if cv <= 0 {
		cv = 0.05
	}
	sigma := math.Sqrt(math.Log(1 + cv*cv))
	// Mean of lognormal(mu, sigma) is e^{mu+sigma²/2}; we want mean gap 1
	// in "unit-rate time", so mu = -sigma²/2.
	mu := -sigma * sigma / 2

	// Pre-draw burst episodes (start minute, duration, multiplier).
	type episode struct{ start, end, mult float64 }
	var episodes []episode
	if cfg.BurstEpisodesPerHour > 0 {
		durMean := cfg.BurstDurationMin
		if durMean <= 0 {
			durMean = 10
		}
		multMean := cfg.BurstMultiplier
		if multMean <= 1 {
			multMean = 6
		}
		t := 0.0
		for t < float64(cfg.DurationMin) {
			gap := rng.Exponential(cfg.BurstEpisodesPerHour / 60) // minutes
			t += gap
			if t >= float64(cfg.DurationMin) {
				break
			}
			dur := rng.Exponential(1 / durMean)
			mult := 1 + rng.Exponential(1/(multMean-1))
			episodes = append(episodes, episode{t, t + dur, mult})
			t += dur
		}
	}
	episodeMult := func(m float64) float64 {
		for _, e := range episodes {
			if m >= e.start && m < e.end {
				return e.mult
			}
		}
		return 1
	}
	// rate(t) in invocations/sec at absolute minute m.
	rate := func(m float64) float64 {
		day := 1 + cfg.Diurnal*math.Sin(2*math.Pi*(m+float64(cfg.StartMinute))/MinutesPerDay-math.Pi/2)
		week := 1 + cfg.Weekly*math.Sin(2*math.Pi*(m+float64(cfg.StartMinute))/MinutesPerWeek)
		r := cfg.MeanRatePerMin / 60 * day * week * episodeMult(m)
		if r < 0 {
			r = 0
		}
		return r
	}
	horizon := float64(cfg.DurationMin) * 60
	// Unit-rate arrival clock warped by instantaneous rate: we advance a
	// virtual unit clock by the lognormal gap, then translate to wall time
	// by dividing by the local rate (piecewise-constant per second scale).
	t := 0.0
	for t < horizon {
		gap := rng.LogNormal(mu, sigma) // unit-rate gap (mean 1)
		r := rate(t / 60)
		if r <= 1e-9 {
			t += 60 // skip dead zones
			continue
		}
		t += gap / r
		if t >= horizon {
			break
		}
		tr.Arrivals = append(tr.Arrivals, t)
	}
	return tr
}

// PeriodicGenConfig parameterizes semi-periodic trace synthesis — the
// cron-like / timer-triggered apps that dominate the Azure dataset, whose
// inter-arrival times concentrate around a period (the regime that makes
// histogram-style keep-alive policies effective).
type PeriodicGenConfig struct {
	DurationMin int
	// PeriodMin is the mean gap between invocation clumps in minutes.
	PeriodMin float64
	// JitterFrac is the relative std of the gap (default 0.15).
	JitterFrac float64
	// ClumpMean is the mean number of invocations per clump (≥1).
	ClumpMean float64
	// ClumpSpreadSec spreads a clump's invocations over this window.
	ClumpSpreadSec float64
	// Diurnal in [0,1) thins nighttime clumps.
	Diurnal     float64
	TriggerType int
	StartMinute int
	Seed        int64
}

// SynthesizePeriodic generates a semi-periodic trace: clumps of invocations
// separated by jittered periods, optionally thinned at night.
func SynthesizePeriodic(cfg PeriodicGenConfig) *Trace {
	if cfg.DurationMin <= 0 {
		cfg.DurationMin = MinutesPerDay
	}
	if cfg.PeriodMin <= 0 {
		cfg.PeriodMin = 30
	}
	jit := cfg.JitterFrac
	if jit <= 0 {
		jit = 0.15
	}
	clump := cfg.ClumpMean
	if clump < 1 {
		clump = 1
	}
	spread := cfg.ClumpSpreadSec
	if spread <= 0 {
		spread = 20
	}
	rng := stats.NewRNG(cfg.Seed)
	tr := &Trace{DurationMin: cfg.DurationMin, TriggerType: cfg.TriggerType, StartMinute: cfg.StartMinute}
	horizon := float64(cfg.DurationMin) * 60
	t := rng.Uniform(0, cfg.PeriodMin*60)
	for t < horizon {
		keep := true
		if cfg.Diurnal > 0 {
			m := t/60 + float64(cfg.StartMinute)
			phase := 1 + cfg.Diurnal*math.Sin(2*math.Pi*m/MinutesPerDay-math.Pi/2)
			keep = rng.Bernoulli(phase / (1 + cfg.Diurnal))
		}
		if keep {
			n := 1 + rng.Poisson(clump-1)
			for k := 0; k < n; k++ {
				at := t + rng.Uniform(0, spread)
				if at < horizon {
					tr.Arrivals = append(tr.Arrivals, at)
				}
			}
		}
		gap := rng.Normal(cfg.PeriodMin*60, cfg.PeriodMin*60*jit)
		if gap < 30 {
			gap = 30
		}
		t += gap
	}
	sortFloats(tr.Arrivals)
	return tr
}

// Counts returns per-minute invocation counts (length DurationMin).
func (t *Trace) Counts() []float64 {
	if t.counts != nil {
		return t.counts
	}
	c := make([]float64, t.DurationMin)
	for _, a := range t.Arrivals {
		m := int(a / 60)
		if m >= 0 && m < len(c) {
			c[m]++
		}
	}
	t.counts = c
	return c
}

// InterArrivalCV returns the measured CV of inter-arrival times.
func (t *Trace) InterArrivalCV() float64 {
	if len(t.Arrivals) < 3 {
		return 0
	}
	gaps := make([]float64, len(t.Arrivals)-1)
	for i := 1; i < len(t.Arrivals); i++ {
		gaps[i-1] = t.Arrivals[i] - t.Arrivals[i-1]
	}
	return stats.CV(gaps)
}

// Split divides the trace at the given minute into train and test halves.
func (t *Trace) Split(atMinute int) (train, test *Trace) {
	cut := float64(atMinute) * 60
	train = &Trace{DurationMin: atMinute, TriggerType: t.TriggerType, StartMinute: t.StartMinute}
	test = &Trace{DurationMin: t.DurationMin - atMinute, TriggerType: t.TriggerType,
		StartMinute: (t.StartMinute + atMinute) % MinutesPerWeek}
	for _, a := range t.Arrivals {
		if a < cut {
			train.Arrivals = append(train.Arrivals, a)
		} else {
			test.Arrivals = append(test.Arrivals, a-cut)
		}
	}
	return train, test
}

// NumTriggerTypes is the size of the trigger one-hot encoding.
const NumTriggerTypes = 3

// Features returns the external feature vector for an absolute minute
// index of this trace: sin/cos of time-of-day and a trigger-type one-hot —
// the external features §4.1 integrates into the prediction model. Weekly
// phase features are deliberately omitted: our synthetic runs are shorter
// than a week, so a weekly sinusoid never wraps within the training data
// and would force the model to extrapolate into unseen feature values
// (see DESIGN.md).
func (t *Trace) Features(minute int) []float64 {
	m := float64(minute + t.StartMinute)
	f := []float64{
		math.Sin(2 * math.Pi * m / MinutesPerDay),
		math.Cos(2 * math.Pi * m / MinutesPerDay),
	}
	oneHot := make([]float64, NumTriggerTypes)
	if t.TriggerType >= 0 && t.TriggerType < NumTriggerTypes {
		oneHot[t.TriggerType] = 1
	}
	return append(f, oneHot...)
}

// FeatureDim is the length of the vector returned by Features.
const FeatureDim = 2 + NumTriggerTypes

// AzureLikeEnsemble generates a mixture of traces echoing the Azure
// dataset's heterogeneity: log-spread mean rates, mixed trigger types, and
// a CV distribution where a large share of traces exceeds CV 2 (§8.1).
func AzureLikeEnsemble(n, durationMin int, seed int64) []*Trace {
	rng := stats.NewRNG(seed)
	out := make([]*Trace, n)
	for i := range out {
		cv := rng.LogNormal(0.4, 0.7) // median ~1.5, >40% above 2
		out[i] = Synthesize(GenConfig{
			DurationMin:    durationMin,
			MeanRatePerMin: rng.LogNormal(2.0, 0.8),
			Diurnal:        rng.Uniform(0.2, 0.8),
			Weekly:         rng.Uniform(0, 0.3),
			CV:             cv,
			TriggerType:    rng.Intn(NumTriggerTypes),
			StartMinute:    rng.Intn(MinutesPerWeek),
			Seed:           rng.Int63(),
		})
	}
	return out
}

// ScaleRate returns a copy of the trace with arrivals thinned or
// replicated so the mean rate is multiplied by factor (§7.2 scales traces
// so cluster CPU utilization stays below 70%).
func (t *Trace) ScaleRate(factor float64, seed int64) *Trace {
	rng := stats.NewRNG(seed)
	out := &Trace{DurationMin: t.DurationMin, TriggerType: t.TriggerType, StartMinute: t.StartMinute}
	if factor <= 0 {
		return out
	}
	whole := int(factor)
	frac := factor - float64(whole)
	for _, a := range t.Arrivals {
		for k := 0; k < whole; k++ {
			// Jitter replicas slightly to avoid exact ties.
			out.Arrivals = append(out.Arrivals, a+rng.Uniform(0, 0.2)*float64(k))
		}
		if rng.Bernoulli(frac) {
			out.Arrivals = append(out.Arrivals, a)
		}
	}
	sortFloats(out.Arrivals)
	return out
}

func sortFloats(xs []float64) {
	// insertion sort is fine: arrivals are nearly sorted already
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}
