// Package timeseries implements the forecasting baselines the paper
// compares its hybrid Bayesian model against (Table 1 and §8.1): the naive
// fixed keep-alive (last value) model, ARIMA, Holt-Winters exponential
// smoothing, the Fourier-extrapolation model of IceBreaker, and a vanilla
// LSTM without external features or uncertainty.
package timeseries

import (
	"math"
	"sync"

	"aquatope/internal/linalg"
	"aquatope/internal/nn"
	"aquatope/internal/stats"
)

// Predictor produces one-step-ahead forecasts of a per-minute count series.
// Fit trains on a historical prefix; Forecast returns predictions aligned
// with test: pred[i] is the forecast of test[i] given the training series
// and test[:i].
type Predictor interface {
	Name() string
	Fit(train []float64)
	Forecast(test []float64) []float64
}

// ---------------------------------------------------------------------------
// Naive last-value ("fixed keep-alive") model.

// Naive predicts the next window to equal the current one — the paper's
// "fixed Keep-Alive" baseline in Table 1.
type Naive struct {
	last float64
}

// NewNaive returns the last-value predictor.
func NewNaive() *Naive { return &Naive{} }

// Name implements Predictor.
func (n *Naive) Name() string { return "keepalive" }

// Fit records the last training value.
func (n *Naive) Fit(train []float64) {
	if len(train) > 0 {
		n.last = train[len(train)-1]
	}
}

// Forecast implements Predictor.
func (n *Naive) Forecast(test []float64) []float64 {
	out := make([]float64, len(test))
	prev := n.last
	for i, v := range test {
		out[i] = prev
		prev = v
	}
	return out
}

// ---------------------------------------------------------------------------
// ARIMA(p,d,q) via the Hannan-Rissanen two-stage regression.

// ARIMA is an autoregressive integrated moving-average model fitted by
// conditional least squares (long-AR residual bootstrap for the MA part).
type ARIMA struct {
	P, D, Q int
	phi     []float64 // AR coefficients
	theta   []float64 // MA coefficients
	c       float64   // intercept
	longAR  []float64 // stage-1 long-AR coefficients for residual estimates
	train   []float64
}

// NewARIMA returns an ARIMA(p,d,q) model.
func NewARIMA(p, d, q int) *ARIMA { return &ARIMA{P: p, D: d, Q: q} }

// Name implements Predictor.
func (a *ARIMA) Name() string { return "arima" }

// difference applies d-th order differencing.
func difference(xs []float64, d int) []float64 {
	out := append([]float64(nil), xs...)
	for k := 0; k < d; k++ {
		if len(out) < 2 {
			return nil
		}
		next := make([]float64, len(out)-1)
		for i := 1; i < len(out); i++ {
			next[i-1] = out[i] - out[i-1]
		}
		out = next
	}
	return out
}

// olsSolve fits y = X beta by normal equations with ridge damping.
func olsSolve(X [][]float64, y []float64) []float64 {
	if len(X) == 0 {
		return nil
	}
	k := len(X[0])
	xtx := linalg.NewMatrix(k, k)
	xty := make([]float64, k)
	for r, row := range X {
		yr := y[r]
		row = row[:k]
		// X'X is symmetric and float multiplication commutes bitwise, so
		// accumulating the upper triangle and mirroring it below halves the
		// work without changing a single bit of the result.
		for i := 0; i < k; i++ {
			ri := row[i]
			xty[i] += ri * yr
			for j := i; j < k; j++ {
				xtx.Set(i, j, xtx.At(i, j)+ri*row[j])
			}
		}
	}
	for i := 0; i < k; i++ {
		for j := 0; j < i; j++ {
			xtx.Set(i, j, xtx.At(j, i))
		}
		xtx.Set(i, i, xtx.At(i, i)+1e-6) // ridge for stability
	}
	l, err := linalg.Cholesky(xtx)
	if err != nil {
		return make([]float64, k)
	}
	return linalg.CholSolve(l, xty)
}

// Fit estimates the model with Hannan-Rissanen: (1) fit a long AR to get
// residual estimates, (2) regress the differenced series on its own lags
// and lagged residuals.
func (a *ARIMA) Fit(train []float64) {
	a.train = append([]float64(nil), train...)
	w := difference(train, a.D)
	if len(w) <= a.P+a.Q+2 {
		a.phi = make([]float64, a.P)
		a.theta = make([]float64, a.Q)
		return
	}
	// Stage 1: long AR for residuals.
	longP := a.P + a.Q + 3
	resid := make([]float64, len(w))
	if a.Q > 0 && len(w) > longP+2 {
		var X [][]float64
		var y []float64
		for t := longP; t < len(w); t++ {
			row := make([]float64, longP+1)
			row[0] = 1
			for j := 1; j <= longP; j++ {
				row[j] = w[t-j]
			}
			X = append(X, row)
			y = append(y, w[t])
		}
		beta := olsSolve(X, y)
		a.longAR = beta
		for t := longP; t < len(w); t++ {
			pred := beta[0]
			for j := 1; j <= longP; j++ {
				pred += beta[j] * w[t-j]
			}
			resid[t] = w[t] - pred
		}
	}
	// Stage 2: regress on P lags and Q lagged residuals.
	start := a.P
	if a.Q > 0 {
		start = maxInt(a.P, longP+a.Q)
	}
	var X [][]float64
	var y []float64
	for t := start; t < len(w); t++ {
		row := make([]float64, 1+a.P+a.Q)
		row[0] = 1
		for j := 1; j <= a.P; j++ {
			row[j] = w[t-j]
		}
		for j := 1; j <= a.Q; j++ {
			row[a.P+j] = resid[t-j]
		}
		X = append(X, row)
		y = append(y, w[t])
	}
	beta := olsSolve(X, y)
	if len(beta) != 1+a.P+a.Q {
		beta = make([]float64, 1+a.P+a.Q)
	}
	a.c = beta[0]
	a.phi = beta[1 : 1+a.P]
	a.theta = beta[1+a.P:]
}

// Forecast implements Predictor with rolling one-step-ahead forecasts.
func (a *ARIMA) Forecast(test []float64) []float64 {
	out := make([]float64, len(test))
	full := append(append([]float64(nil), a.train...), test...)
	offset := len(a.train)
	// Maintain residuals on the differenced series as we roll forward.
	for i := range test {
		histEnd := offset + i
		hist := full[:histEnd]
		w := difference(hist, a.D)
		pred := a.c
		for j := 0; j < a.P; j++ {
			if idx := len(w) - 1 - j; idx >= 0 {
				pred += a.phi[j] * w[idx]
			}
		}
		if a.Q > 0 && a.longAR != nil {
			tail := w
			if len(tail) > 4*(a.Q+len(a.longAR)) {
				tail = tail[len(tail)-4*(a.Q+len(a.longAR)):]
			}
			resid := a.residuals(tail)
			for j := 0; j < a.Q; j++ {
				if idx := len(resid) - 1 - j; idx >= 0 {
					pred += a.theta[j] * resid[idx]
				}
			}
		}
		// Undifference: prediction of next diff + last levels.
		out[i] = undiff(hist, a.D, pred)
		if out[i] < 0 {
			out[i] = 0
		}
	}
	return out
}

// residuals estimates innovations on a differenced series using the
// stage-1 long-AR fit. Unlike inverting the MA polynomial recursively, this
// is unconditionally stable (the Hannan-Rissanen forecasting shortcut).
func (a *ARIMA) residuals(w []float64) []float64 {
	resid := make([]float64, len(w))
	if a.longAR == nil {
		return resid
	}
	longP := len(a.longAR) - 1
	for t := longP; t < len(w); t++ {
		pred := a.longAR[0]
		for j := 1; j <= longP; j++ {
			pred += a.longAR[j] * w[t-j]
		}
		resid[t] = w[t] - pred
	}
	return resid
}

// undiff converts a d-th order differenced forecast back to the level scale.
func undiff(hist []float64, d int, diffPred float64) float64 {
	if d == 0 {
		return diffPred
	}
	// For d=1: x_{t+1} = x_t + diff. For higher d apply recursively.
	levels := make([][]float64, d+1)
	levels[0] = hist
	for k := 1; k <= d; k++ {
		levels[k] = difference(hist, k)
	}
	pred := diffPred
	for k := d - 1; k >= 0; k-- {
		series := levels[k]
		if len(series) == 0 {
			return pred
		}
		pred += series[len(series)-1]
	}
	return pred
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// Holt-Winters additive triple exponential smoothing.

// HoltWinters is additive seasonal exponential smoothing with a grid-search
// fit of its smoothing constants.
type HoltWinters struct {
	Season             int
	alpha, beta, gamma float64
	level, trend       float64
	seasonals          []float64
	seasonIdx          int
}

// NewHoltWinters returns a Holt-Winters model with the given season length.
func NewHoltWinters(season int) *HoltWinters { return &HoltWinters{Season: season} }

// Name implements Predictor.
func (h *HoltWinters) Name() string { return "holtwinters" }

// Fit grid-searches smoothing constants minimizing in-sample one-step SSE.
func (h *HoltWinters) Fit(train []float64) {
	if len(train) < 2*h.Season {
		h.alpha, h.beta, h.gamma = 0.5, 0.05, 0.1
		h.initState(train)
		return
	}
	best := math.Inf(1)
	for _, al := range []float64{0.2, 0.4, 0.6, 0.8} {
		for _, be := range []float64{0.01, 0.05, 0.15} {
			for _, ga := range []float64{0.05, 0.2, 0.4} {
				sse := h.sse(train, al, be, ga)
				if sse < best {
					best = sse
					h.alpha, h.beta, h.gamma = al, be, ga
				}
			}
		}
	}
	h.initState(train)
	h.run(train)
}

func (h *HoltWinters) initState(train []float64) {
	s := h.Season
	h.seasonals = make([]float64, s)
	if len(train) < 2*s {
		if len(train) > 0 {
			h.level = stats.Mean(train)
		}
		return
	}
	m1 := stats.Mean(train[:s])
	m2 := stats.Mean(train[s : 2*s])
	h.level = m1
	h.trend = (m2 - m1) / float64(s)
	for i := 0; i < s; i++ {
		h.seasonals[i] = train[i] - m1
	}
}

func (h *HoltWinters) sse(train []float64, al, be, ga float64) float64 {
	saveA, saveB, saveG := h.alpha, h.beta, h.gamma
	h.alpha, h.beta, h.gamma = al, be, ga
	h.initState(train)
	var sse float64
	level, trend := h.level, h.trend
	seas := append([]float64(nil), h.seasonals...)
	for t := 0; t < len(train); t++ {
		si := t % h.Season
		pred := level + trend + seas[si]
		e := train[t] - pred
		sse += e * e
		newLevel := al*(train[t]-seas[si]) + (1-al)*(level+trend)
		trend = be*(newLevel-level) + (1-be)*trend
		seas[si] = ga*(train[t]-newLevel) + (1-ga)*seas[si]
		level = newLevel
	}
	h.alpha, h.beta, h.gamma = saveA, saveB, saveG
	return sse
}

// run consumes observations updating the state; the internal index tracks
// season position continuing from the end of training.
func (h *HoltWinters) run(series []float64) {
	for t := 0; t < len(series); t++ {
		h.observe(series[t], t%h.Season)
	}
	h.seasonIdx = len(series) % h.Season
}

func (h *HoltWinters) observe(x float64, si int) {
	newLevel := h.alpha*(x-h.seasonals[si]) + (1-h.alpha)*(h.level+h.trend)
	h.trend = h.beta*(newLevel-h.level) + (1-h.beta)*h.trend
	h.seasonals[si] = h.gamma*(x-newLevel) + (1-h.gamma)*h.seasonals[si]
	h.level = newLevel
}

// Forecast implements Predictor.
func (h *HoltWinters) Forecast(test []float64) []float64 {
	out := make([]float64, len(test))
	si := h.seasonIdx
	for i, x := range test {
		pred := h.level + h.trend + h.seasonals[si%h.Season]
		if pred < 0 {
			pred = 0
		}
		out[i] = pred
		h.observe(x, si%h.Season)
		si++
	}
	h.seasonIdx = si % h.Season
	return out
}

// ---------------------------------------------------------------------------
// Fourier extrapolation (IceBreaker's predictor).

// Fourier predicts by keeping the top-K harmonics of the training series'
// discrete Fourier transform and extrapolating them forward — the model
// IceBreaker (ASPLOS'22) uses to pre-warm containers.
type Fourier struct {
	K      int // number of harmonics kept
	Window int // trailing window length used for the DFT (0 = whole train)
	train  []float64
}

// NewFourier returns a Fourier predictor keeping k harmonics.
func NewFourier(k, window int) *Fourier { return &Fourier{K: k, Window: window} }

// Name implements Predictor.
func (f *Fourier) Name() string { return "fourier" }

// Fit stores the training series.
func (f *Fourier) Fit(train []float64) { f.train = append([]float64(nil), train...) }

// dftTable caches cos/sin of the DFT grid angles 2πki/n for one window
// length n, row-major by bin: entry (k-1)*n+i holds the value at bin k,
// sample i. The values are computed with exactly the same expression the
// inline scan used, so looking them up is bitwise-identical to recomputing.
type dftTable struct {
	cos, sin []float64
}

// The pool policies rebuild a Fourier model per decision over a fixed-size
// trailing window, so the same n recurs millions of times; the grid scan's
// trig dominated their runtime. Tables are bounded (n ≤ maxDFTTableN, at
// most maxDFTTables distinct lengths ≈ 2 MB each) — window lengths beyond
// the cache fall back to the inline computation.
const (
	maxDFTTableN = 512
	maxDFTTables = 8
)

var (
	dftTableMu sync.Mutex
	dftTables  = make(map[int]*dftTable)
)

// dftTableFor returns the cached grid table for window length n, building
// it on first use, or nil when n is out of cache bounds.
func dftTableFor(n int) *dftTable {
	if n < 2 || n > maxDFTTableN {
		return nil
	}
	dftTableMu.Lock()
	defer dftTableMu.Unlock()
	if t, ok := dftTables[n]; ok {
		return t
	}
	if len(dftTables) >= maxDFTTables {
		return nil
	}
	half := n / 2
	t := &dftTable{cos: make([]float64, half*n), sin: make([]float64, half*n)}
	for k := 1; k <= half; k++ {
		row := (k - 1) * n
		for i := 0; i < n; i++ {
			ang := 2 * math.Pi * float64(k) * float64(i) / float64(n)
			s, c := math.Sincos(ang)
			t.cos[row+i] = c
			t.sin[row+i] = s
		}
	}
	dftTables[n] = t
	return t
}

// extrapolate fits a linear trend plus up to K harmonics to xs by matching
// pursuit — each round locates the dominant residual frequency on a
// continuous periodogram and jointly refits all terms by least squares —
// and evaluates the fit offset steps past the end of the window.
func (f *Fourier) extrapolate(xs []float64, offset int) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return xs[0]
	}
	basisAt := func(freqs []float64, t float64) []float64 {
		row := make([]float64, 2+2*len(freqs))
		row[0] = 1
		row[1] = t
		for k, fr := range freqs {
			ang := 2 * math.Pi * fr * t
			s, c := math.Sincos(ang)
			row[2+2*k] = c
			row[3+2*k] = s
		}
		return row
	}
	// The design matrix grows by one cos/sin column pair per pursuit round;
	// earlier columns are identical between rounds, so they are computed
	// once and kept (bitwise the same values a fresh rebuild would produce).
	X := make([][]float64, n)
	for i := range X {
		row := make([]float64, 2, 2+2*f.K)
		row[0] = 1
		row[1] = float64(i)
		X[i] = row
	}
	resid := make([]float64, n)
	fit := func() ([]float64, []float64) {
		beta := olsSolve(X, xs)
		for i, row := range X {
			pred := 0.0
			for j, b := range beta {
				pred += b * row[j]
			}
			resid[i] = xs[i] - pred
		}
		return beta, resid
	}
	var freqs []float64
	beta, resid := fit()
	half := n / 2
	tab := dftTableFor(n)
	for len(freqs) < f.K {
		// Dominant DFT bin of the residual.
		best, bestP := -1, 0.0
		for k := 1; k <= half; k++ {
			var re, im float64
			if tab != nil {
				cosRow := tab.cos[(k-1)*n : k*n]
				sinRow := tab.sin[(k-1)*n : k*n]
				for i, v := range resid {
					re += v * cosRow[i]
					im += v * sinRow[i]
				}
			} else {
				for i, v := range resid {
					ang := 2 * math.Pi * float64(k) * float64(i) / float64(n)
					s, c := math.Sincos(ang)
					re += v * c
					im += v * s
				}
			}
			if p := re*re + im*im; p > bestP {
				best, bestP = k, p
			}
		}
		if best < 0 || bestP < 1e-12 {
			break
		}
		fr := refineFrequency(resid, (float64(best)-1)/float64(n), (float64(best)+1)/float64(n))
		freqs = append(freqs, fr)
		for i := range X {
			ang := 2 * math.Pi * fr * float64(i)
			s, c := math.Sincos(ang)
			X[i] = append(X[i], c, s)
		}
		beta, resid = fit()
	}
	row := basisAt(freqs, float64(n-1+offset))
	var pred float64
	for j, b := range beta {
		pred += b * row[j]
	}
	return pred
}

// refineFrequency maximizes the continuous periodogram
// P(f) = (Σ v cos 2πfi)² + (Σ v sin 2πfi)² over [lo, hi] by ternary search,
// recovering the true frequency of a sinusoid to far better precision than
// the DFT bin spacing permits.
//
// 18 iterations shrink the two-bin bracket by (2/3)^18 ≈ 7e-4, i.e. a
// frequency error below 6e-6 cycles/step on a 256-sample window — under a
// milliradian of phase mismatch at the window edge, orders of magnitude
// below the noise-limited precision of the estimate. (The previous 40
// iterations chased the float64 epsilon at twice the cost; see
// EXPERIMENTS.md for the resulting output drift.)
func refineFrequency(v []float64, lo, hi float64) float64 {
	pow := func(f float64) float64 {
		var re, im float64
		for i, x := range v {
			ang := 2 * math.Pi * f * float64(i)
			s, c := math.Sincos(ang)
			re += x * c
			im += x * s
		}
		return re*re + im*im
	}
	for iter := 0; iter < 18; iter++ {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if pow(m1) < pow(m2) {
			lo = m1
		} else {
			hi = m2
		}
	}
	return (lo + hi) / 2
}

// Forecast implements Predictor with a rolling trailing window.
func (f *Fourier) Forecast(test []float64) []float64 {
	out := make([]float64, len(test))
	full := append(append([]float64(nil), f.train...), test...)
	offset := len(f.train)
	for i := range test {
		hist := full[:offset+i]
		w := f.Window
		if w <= 0 || w > len(hist) {
			w = len(hist)
		}
		pred := f.extrapolate(hist[len(hist)-w:], 1)
		if pred < 0 {
			pred = 0
		}
		out[i] = pred
	}
	return out
}

// ---------------------------------------------------------------------------
// Vanilla LSTM (no external features, no uncertainty).

// VanillaLSTM is a plain LSTM regressor used as the paper's third baseline:
// same recurrent architecture class as the hybrid model but without
// external features or Bayesian uncertainty.
type VanillaLSTM struct {
	Hidden  int
	Window  int
	Epochs  int
	LR      float64
	Seed    int64
	lstm    *nn.LSTM
	head    *nn.Dense
	mean    float64
	std     float64
	trained bool
	train   []float64
}

// NewVanillaLSTM returns an untrained vanilla LSTM predictor.
func NewVanillaLSTM(hidden, window, epochs int, seed int64) *VanillaLSTM {
	return &VanillaLSTM{Hidden: hidden, Window: window, Epochs: epochs, LR: 0.01, Seed: seed, std: 1}
}

// Name implements Predictor.
func (v *VanillaLSTM) Name() string { return "lstm" }

// Fit trains one-step-ahead regression on sliding windows.
func (v *VanillaLSTM) Fit(train []float64) {
	v.train = append([]float64(nil), train...)
	rng := stats.NewRNG(v.Seed)
	v.lstm = nn.NewLSTM("vl", 1, v.Hidden, rng)
	v.head = nn.NewDense("vh", v.Hidden, 1, nn.Identity, rng)
	_, v.mean, v.std = stats.Standardize(train)
	params := append(v.lstm.Params(), v.head.Params()...)
	opt := nn.NewAdam(v.LR, params)
	scale := func(x float64) float64 { return (x - v.mean) / v.std }
	n := len(train) - v.Window
	if n <= 0 {
		return
	}
	for epoch := 0; epoch < v.Epochs; epoch++ {
		order := rng.Perm(n)
		for _, s := range order {
			xs := make([][]float64, v.Window)
			for t := 0; t < v.Window; t++ {
				xs[t] = []float64{scale(train[s+t])}
			}
			hs := v.lstm.ForwardSeq(xs, nil, nil, nil, nil)
			pred := v.head.Forward(hs[len(hs)-1])
			_, g := nn.MSELoss(pred, []float64{scale(train[s+v.Window])})
			dh := v.head.Backward(g)
			v.lstm.BackwardSeq(nil, dh, nil)
			opt.Step(1)
		}
	}
	v.trained = true
}

// Forecast implements Predictor.
func (v *VanillaLSTM) Forecast(test []float64) []float64 {
	out := make([]float64, len(test))
	if !v.trained {
		return out
	}
	full := append(append([]float64(nil), v.train...), test...)
	offset := len(v.train)
	scale := func(x float64) float64 { return (x - v.mean) / v.std }
	for i := range test {
		start := offset + i - v.Window
		if start < 0 {
			start = 0
		}
		windowVals := full[start : offset+i]
		xs := make([][]float64, len(windowVals))
		for t, val := range windowVals {
			xs[t] = []float64{scale(val)}
		}
		if len(xs) == 0 {
			continue
		}
		hs := v.lstm.ForwardSeq(xs, nil, nil, nil, nil)
		pred := v.head.Forward(hs[len(hs)-1])[0]*v.std + v.mean
		if pred < 0 {
			pred = 0
		}
		out[i] = pred
	}
	return out
}
