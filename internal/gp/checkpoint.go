package gp

import (
	"aquatope/internal/checkpoint"
	"aquatope/internal/linalg"
)

// Snapshot serializes the complete posterior state: kernel hyperparameters,
// the observation window (raw and standardized), and the cached kernel
// matrix, Cholesky factor, jitter level and alpha vector. Persisting the
// factor (rather than a re-factorization recipe) keeps restore exact even
// though the incremental up/downdate path makes the factor depend on the
// whole Observe/Forget history, not just the current window.
func (g *GP) Snapshot(enc *checkpoint.Encoder) {
	enc.String("gp")
	enc.F64s(g.Kernel.Hyperparameters())
	enc.F64(g.Noise)
	enc.Int(g.window)
	enc.Bool(g.fullRefit)
	enc.U64(uint64(len(g.x)))
	for _, xi := range g.x {
		enc.F64s(xi)
	}
	enc.F64s(g.yRaw)
	enc.F64s(g.y)
	enc.F64(g.yMean)
	enc.F64(g.yStd)
	linalg.SnapshotMatrix(enc, g.kmat)
	linalg.SnapshotMatrix(enc, g.chol)
	enc.F64(g.jitter)
	enc.F64s(g.alpha)
}

// Restore loads a snapshot into a GP built with the same kernel family and
// dimensionality. Scratch buffers are left alone — every use overwrites
// them.
func (g *GP) Restore(dec *checkpoint.Decoder) error {
	dec.Expect("gp")
	hyper := dec.F64s()
	noise := dec.F64()
	window := dec.Int()
	fullRefit := dec.Bool()
	n := dec.U64()
	if err := dec.Err(); err != nil {
		return err
	}
	if len(hyper) != len(g.Kernel.Hyperparameters()) || window < 0 {
		return checkpoint.ErrShape
	}
	x := make([][]float64, 0, n)
	for i := uint64(0); i < n; i++ {
		x = append(x, dec.F64s())
	}
	yRaw := dec.F64s()
	y := dec.F64s()
	yMean := dec.F64()
	yStd := dec.F64()
	kmat, err := linalg.RestoreMatrix(dec)
	if err != nil {
		return err
	}
	chol, err := linalg.RestoreMatrix(dec)
	if err != nil {
		return err
	}
	jitter := dec.F64()
	alpha := dec.F64s()
	if err := dec.Err(); err != nil {
		return err
	}
	if uint64(len(yRaw)) != n || uint64(len(y)) != n || uint64(len(alpha)) != n {
		return checkpoint.ErrShape
	}
	if n > 0 && (kmat == nil || chol == nil || kmat.Rows != int(n) || chol.Rows != int(n)) {
		return checkpoint.ErrShape
	}
	g.Kernel.SetHyperparameters(hyper)
	g.Noise = noise
	g.window = window
	g.fullRefit = fullRefit
	if n == 0 {
		x = nil
	}
	g.x = x
	g.yRaw = yRaw
	g.y = y
	g.yMean = yMean
	g.yStd = yStd
	g.kmat = kmat
	g.chol = chol
	g.jitter = jitter
	g.alpha = alpha
	return nil
}
