package core

import (
	"bytes"
	"testing"

	"aquatope/internal/telemetry"
)

// runTraced executes a small end-to-end run with a span collector and
// registry attached and returns both.
func runTraced(t *testing.T, seed int64) (*telemetry.Collector, *telemetry.Registry) {
	t.Helper()
	col := telemetry.NewCollector()
	reg := telemetry.NewRegistry()
	_, err := Run(Config{
		Components: smallComponents(2),
		TrainMin:   120,
		Tracer:     col,
		Registry:   reg,
		Seed:       seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return col, reg
}

func TestRunEmitsSpanTree(t *testing.T) {
	col, reg := runTraced(t, 3)
	spans := col.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans collected")
	}
	byID := make(map[telemetry.SpanID]telemetry.Span, len(spans))
	var workflows, stages, invocations int
	for _, s := range spans {
		byID[s.ID] = s
	}
	for _, s := range spans {
		switch s.Kind {
		case telemetry.KindWorkflow:
			workflows++
			if s.Parent != 0 {
				t.Fatalf("workflow span %d has parent %d", s.ID, s.Parent)
			}
			if s.End < s.Start {
				t.Fatalf("workflow span %d ends before it starts", s.ID)
			}
		case telemetry.KindStage:
			stages++
			p, ok := byID[s.Parent]
			if !ok || p.Kind != telemetry.KindWorkflow {
				t.Fatalf("stage span %d not parented to a workflow", s.ID)
			}
		case telemetry.KindInvocation:
			invocations++
			p, ok := byID[s.Parent]
			if !ok || p.Kind != telemetry.KindStage {
				t.Fatalf("invocation span %d not parented to a stage", s.ID)
			}
			if s.Fields["exec_s"] <= 0 {
				t.Fatalf("invocation span %d missing exec_s", s.ID)
			}
		}
	}
	if workflows == 0 || stages == 0 || invocations == 0 {
		t.Fatalf("span kinds missing: wf=%d stage=%d inv=%d", workflows, stages, invocations)
	}
	// A 2-stage chain: each workflow has exactly 2 stages and 2 invocations.
	if stages != 2*workflows || invocations != 2*workflows {
		t.Fatalf("chain2 shape: wf=%d stage=%d inv=%d", workflows, stages, invocations)
	}

	snap := reg.Snapshot()
	if snap.Counters["sim.events"] == 0 {
		t.Fatal("engine metrics not registered")
	}
	if snap.Counters["faas.cold_starts"]+snap.Counters["faas.warm_starts"] == 0 {
		t.Fatal("platform metrics not registered")
	}
	h, ok := snap.Histograms["workflow.latency_s.chain2"]
	if !ok || h.Count == 0 {
		t.Fatal("per-app workflow latency histogram missing")
	}
	if !(h.P50 <= h.P95 && h.P95 <= h.P99) {
		t.Fatalf("percentiles not ordered: %v <= %v <= %v", h.P50, h.P95, h.P99)
	}
}

func TestRunSpanStreamDeterministic(t *testing.T) {
	col1, reg1 := runTraced(t, 9)
	col2, reg2 := runTraced(t, 9)
	var b1, b2 bytes.Buffer
	if err := col1.WriteJSONL(&b1); err != nil {
		t.Fatal(err)
	}
	if err := col2.WriteJSONL(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("same-seed runs produced different span streams")
	}
	var s1, s2 bytes.Buffer
	if err := reg1.WriteJSON(&s1); err != nil {
		t.Fatal(err)
	}
	if err := reg2.WriteJSON(&s2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
		t.Fatal("same-seed runs produced different metric snapshots")
	}
}

func TestRunPercentilesWithoutExplicitRegistry(t *testing.T) {
	// Percentiles come from a private registry when none is supplied.
	res, err := Run(Config{
		Components: smallComponents(5),
		TrainMin:   120,
		Seed:       6,
	})
	if err != nil {
		t.Fatal(err)
	}
	app := res.PerApp["chain2"]
	if app.Workflows == 0 {
		t.Fatal("no workflows")
	}
	if app.P50 <= 0 || app.P95 < app.P50 || app.P99 < app.P95 {
		t.Fatalf("percentiles wrong: p50=%v p95=%v p99=%v", app.P50, app.P95, app.P99)
	}
}
