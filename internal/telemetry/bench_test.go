package telemetry

// Benchmarks for the disabled-telemetry hot path: every instrumented
// subsystem calls through a Tracer interface and nil-safe registry handles
// on each invocation, so these must stay in the nanosecond range for the
// no-op tracer to be free in practice (the acceptance bar for wiring
// telemetry through faas/sim hot paths).

import "testing"

// BenchmarkNopInvocationPath mirrors the per-invocation instrumentation in
// faas.Cluster: one StartSpan, a zero-ID check that skips building the end
// fields, and one EndSpan.
func BenchmarkNopInvocationPath(b *testing.B) {
	var tr Tracer = Nop{}
	for i := 0; i < b.N; i++ {
		id := tr.StartSpan(KindInvocation, "f", 0, 0)
		if id != 0 {
			tr.EndSpan(id, 1, Fields{"exec": 1})
		} else {
			tr.EndSpan(id, 1, nil)
		}
	}
}

// BenchmarkNilInstruments mirrors the per-event registry updates in
// sim.Engine and faas.Metrics with telemetry disabled (nil handles).
func BenchmarkNilInstruments(b *testing.B) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Set(float64(i))
		h.Observe(float64(i))
	}
}

// BenchmarkCollectorInvocationPath is the enabled-path cost for one
// invocation span, for comparison against the Nop numbers.
func BenchmarkCollectorInvocationPath(b *testing.B) {
	c := NewCollector()
	var tr Tracer = c
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := tr.StartSpan(KindInvocation, "f", 0, float64(i))
		tr.EndSpan(id, float64(i)+1, Fields{"exec": 1, "cold": 0})
	}
}

// BenchmarkHistogramObserve is the enabled-path cost of one histogram
// observation (bucket index via one log call).
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DefaultBucketLo, DefaultBucketGrowth, DefaultBucketCount)
	for i := 0; i < b.N; i++ {
		h.Observe(0.25)
	}
}
