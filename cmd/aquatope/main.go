// Command aquatope runs the full Aquatope scheduler (pre-warmed container
// pool + container resource manager) over one of the paper's five
// applications on the simulated FaaS platform, and reports QoS compliance,
// cold-start rate and execution cost against a chosen baseline framework.
//
// Usage:
//
//	aquatope -app mlpipeline -system aquatope
//	aquatope -app socialnet -system icebreaker+clite -minutes 2880
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	"aquatope/internal/apps"
	"aquatope/internal/chaos"
	"aquatope/internal/core"
	"aquatope/internal/faas"
	"aquatope/internal/obs"
	"aquatope/internal/pool"
	"aquatope/internal/sched"
	"aquatope/internal/serve"
	"aquatope/internal/socialgraph"
	"aquatope/internal/telemetry"
	"aquatope/internal/trace"
	"aquatope/internal/workflow"
)

func buildApp(name string, seed int64) *apps.App {
	switch name {
	case "chain":
		return apps.NewChain(3)
	case "fanout":
		return apps.NewFanOutFanIn()
	case "mlpipeline":
		return apps.NewMLPipeline()
	case "videoproc":
		return apps.NewVideoProcessing()
	case "socialnet":
		// The follower graph drives per-post fan-out widths; derive it
		// from the run seed so reruns are reproducible but distinct
		// seeds explore different graphs.
		return apps.NewSocialNetwork(socialgraph.Reed98Like(seed))
	default:
		return nil
	}
}

func main() {
	appName := flag.String("app", "mlpipeline", "application: chain | fanout | mlpipeline | videoproc | socialnet")
	system := flag.String("system", "aquatope", "framework: aquatope | aqualite | autoscale | icebreaker+clite | keepalive")
	schedName := flag.String("scheduler", "", "pluggable scheduler from the internal/sched registry (overrides -system): "+strings.Join(sched.Names(), " | "))
	minutes := flag.Int("minutes", 2160, "trace length in minutes")
	trainMin := flag.Int("train", 1440, "training prefix in minutes")
	budget := flag.Int("budget", 30, "resource-search profiling budget")
	seed := flag.Int64("seed", 1, "random seed")
	chaosName := flag.String("chaos", "", "fault scenario: invoker-crash | container-churn | stragglers | mixed | random (enables the retry/timeout resilience layer)")
	traceOut := flag.String("trace-out", "", "write telemetry spans as JSONL to this file")
	metricsOut := flag.String("metrics-out", "", "write the metric registry snapshot as JSON to this file")
	telemetryAddr := flag.String("telemetry-addr", "", "serve live telemetry over HTTP on this address (/metrics Prometheus text, /analysis aquatrace JSON); keeps the process alive after the run until interrupted")
	serveFlag := flag.Bool("serve", false, "run the crash-safe serving loop: ingest arrivals from -stream, checkpoint every decision interval")
	streamFlag := flag.String("stream", "", "arrival stream for -serve: a JSONL file, '-' for stdin, or unix:SOCKETPATH")
	checkpointDir := flag.String("checkpoint-dir", "", "directory for -serve journal + checkpoints (empty = checkpointing off)")
	restoreFlag := flag.String("restore", "", "restore a -serve run from this checkpoint file or directory (implies -serve; requires the original flags)")
	emitStream := flag.String("emit-stream", "", "write the synthesized trace as a JSONL arrival stream to this file and exit (input for -serve -stream)")
	ignoreCrash := flag.Bool("ignore-crash", false, "leave controller-crash chaos faults inert in -serve mode (reference runs)")
	pace := flag.Float64("pace", 0, "-serve wall-clock pacing: virtual seconds per wall second (0 = as fast as possible)")
	flag.Parse()
	serveMode := *serveFlag || *restoreFlag != ""

	app := buildApp(*appName, *seed)
	if app == nil {
		fmt.Fprintf(os.Stderr, "unknown app %q\n", *appName)
		os.Exit(2)
	}

	tr := trace.Synthesize(trace.GenConfig{
		DurationMin:          *minutes,
		MeanRatePerMin:       0.8,
		Diurnal:              0.6,
		CV:                   2,
		BurstEpisodesPerHour: 1,
		BurstDurationMin:     10,
		BurstMultiplier:      6,
		Seed:                 *seed,
	})

	if *emitStream != "" {
		if err := serve.WriteStreamFile(*emitStream, app.Name, tr.Arrivals); err != nil {
			fmt.Fprintln(os.Stderr, "writing stream:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d arrivals for %s to %s\n", len(tr.Arrivals), app.Name, *emitStream)
		return
	}

	cfg := core.Config{
		Components:   []core.Component{{App: app, Trace: tr}},
		TrainMin:     *trainMin,
		SearchBudget: *budget,
		ProfileNoise: faas.Noise{GaussianStd: 0.15, OutlierRate: 0.02, OutlierScale: 3},
		RuntimeNoise: faas.Noise{GaussianStd: 0.1, OutlierRate: 0.01, OutlierScale: 3},
		Seed:         *seed,
	}
	if *chaosName != "" {
		scn, ok := chaos.Builtin(*chaosName, float64(*minutes)*60, *seed)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown chaos scenario %q (have: %v)\n", *chaosName, chaos.Names())
			os.Exit(2)
		}
		cfg.Chaos = scn
		// Fault injection without retries just loses workflows; pair the
		// scenario with the default resilience policy, bounding each
		// attempt by the app's QoS target.
		pol := workflow.DefaultRetryPolicy()
		pol.Timeout = app.QoS
		cfg.Resilience = &pol
	}
	var collector *telemetry.Collector
	if *traceOut != "" || *telemetryAddr != "" {
		collector = telemetry.NewCollector()
		cfg.Tracer = collector
	}
	registry := telemetry.NewRegistry()
	cfg.Registry = registry

	// dump flushes the telemetry files exactly once, whichever exit path
	// runs first (normal completion, run error, or an interrupt mid-run) —
	// a partial dump from a long run is still analyzable.
	var dumpOnce sync.Once
	dump := func() {
		dumpOnce.Do(func() {
			if collector != nil && *traceOut != "" {
				if err := collector.WriteJSONLFile(*traceOut); err != nil {
					fmt.Fprintln(os.Stderr, "writing trace:", err)
				} else {
					fmt.Fprintf(os.Stderr, "wrote %d spans to %s\n", collector.Len(), *traceOut)
				}
			}
			if *metricsOut != "" {
				if err := registry.WriteJSONFile(*metricsOut); err != nil {
					fmt.Fprintln(os.Stderr, "writing metrics:", err)
				} else {
					fmt.Fprintf(os.Stderr, "wrote metrics snapshot to %s\n", *metricsOut)
				}
			}
		})
	}
	if !serveMode {
		sigs := make(chan os.Signal, 1)
		signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sigs
			dump()
			os.Exit(130)
		}()
	}

	var srv *telemetryServer
	if *telemetryAddr != "" {
		var err error
		srv, err = serveTelemetry(*telemetryAddr, registry)
		if err != nil {
			fmt.Fprintln(os.Stderr, "telemetry server:", err)
			os.Exit(2)
		}
		fmt.Printf("serving telemetry on http://%s (/metrics, /analysis)\n", srv.addr)
	}
	label := *system
	if *schedName != "" {
		// -scheduler picks both halves (pool policy + resource manager)
		// from the pluggable registry and supersedes -system.
		s, ok := sched.New(*schedName, sched.Options{})
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown scheduler %q (have: %s)\n",
				*schedName, strings.Join(sched.Names(), " "))
			os.Exit(2)
		}
		cfg.Scheduler = s
		label = "scheduler/" + s.Name()
	} else {
		switch *system {
		case "aquatope":
			cfg.PoolFactory = aquaPool(false)
			cfg.ManagerFactory = core.AquatopeManagerFactory()
		case "aqualite":
			cfg.PoolFactory = aquaPool(true)
			cfg.ManagerFactory = core.AquatopeManagerFactory()
		case "autoscale":
			cfg.PoolFactory = core.AutoscalePoolFactory()
			cfg.ManagerFactory = core.AutoscaleManagerFactory()
		case "icebreaker+clite":
			cfg.PoolFactory = core.IceBreakerPoolFactory()
			cfg.ManagerFactory = core.CLITEManagerFactory()
		case "keepalive":
			cfg.PoolFactory = core.KeepAlivePoolFactory(600)
		default:
			fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
			os.Exit(2)
		}
	}

	if serveMode {
		runServe(serveRun{
			app:           app,
			cfg:           cfg,
			label:         label,
			minutes:       *minutes,
			stream:        *streamFlag,
			checkpointDir: *checkpointDir,
			restore:       *restoreFlag,
			ignoreCrash:   *ignoreCrash,
			pace:          *pace,
			budget:        *budget,
			chaosOn:       *chaosName != "",
			collector:     collector,
			registry:      registry,
			dump:          dump,
		})
		return
	}

	fmt.Printf("running %s under %s: %d invocations over %d min (train %d min)\n",
		app.Name, label, len(tr.Arrivals), *minutes, *trainMin)
	res, err := core.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "run failed:", err)
		dump()
		os.Exit(1)
	}
	printResult(app, res, *chaosName != "")

	dump()
	if srv != nil {
		snap := registry.Snapshot()
		srv.publish(obs.Analyze(collector.Spans(), &snap, obs.Options{}))
		fmt.Printf("\nrun complete; telemetry stays live on http://%s — interrupt to exit\n", srv.addr)
		select {}
	}
}

// telemetryServer is the optional live exposition endpoint: /metrics serves
// the registry in Prometheus text format (live during the run), /analysis
// the aquatrace summary JSON (503 until the run completes).
type telemetryServer struct {
	addr     string
	mu       sync.Mutex
	analysis *obs.Analysis
}

func (s *telemetryServer) publish(a *obs.Analysis) {
	s.mu.Lock()
	s.analysis = a
	s.mu.Unlock()
}

func serveTelemetry(addr string, reg *telemetry.Registry) (*telemetryServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &telemetryServer{addr: ln.Addr().String()}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := reg.WritePromText(w); err != nil {
			fmt.Fprintln(os.Stderr, "telemetry: /metrics:", err)
		}
	})
	mux.HandleFunc("/analysis", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		a := s.analysis
		s.mu.Unlock()
		if a == nil {
			http.Error(w, "analysis pending: run still in progress", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := a.WriteJSON(w); err != nil {
			fmt.Fprintln(os.Stderr, "telemetry: /analysis:", err)
		}
	})
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintln(os.Stderr, "telemetry server:", err)
		}
	}()
	return s, nil
}

// printResult renders the end-of-run summary shared by batch and serve
// modes.
func printResult(app *apps.App, res core.Result, chaosOn bool) {
	ar := res.PerApp[app.Name]
	fmt.Printf("\nworkflows completed:   %d\n", ar.Workflows)
	fmt.Printf("QoS (%.2fs) violations: %.1f%%\n", app.QoS, ar.ViolationRate()*100)
	if chaosOn {
		fmt.Printf("  latency violations:  %d\n", ar.LatencyViolations)
		fmt.Printf("  failure violations:  %d\n", ar.FailureViolations)
		fmt.Printf("goodput:               %.1f%%\n", res.Goodput()*100)
		fmt.Printf("retries / hedges:      %d / %d\n", ar.Retries, ar.Hedges)
	}
	fmt.Printf("cold-start rate:       %.1f%%\n", res.ColdStartRate()*100)
	fmt.Printf("mean latency:          %.2fs\n", ar.MeanLatency)
	fmt.Printf("latency p50/p95/p99:   %.2fs / %.2fs / %.2fs\n", ar.P50, ar.P95, ar.P99)
	fmt.Printf("CPU time:              %.1f core-s\n", ar.CPUTime)
	fmt.Printf("memory time:           %.1f GB-s\n", ar.MemTime)
	fmt.Printf("provisioned memory:    %.1f GB-s\n", res.ProvisionedMemGBs)
	if len(ar.ChosenConfig) > 0 {
		fmt.Println("\nchosen configuration:")
		for _, fn := range app.FunctionNames() {
			c := ar.ChosenConfig[fn]
			fmt.Printf("  %-16s cpu=%.2g mem=%.0fMB\n", fn, c.CPU, c.MemoryMB)
		}
	}
}

// serveRun carries everything the serving-mode entry point needs from main.
type serveRun struct {
	app           *apps.App
	cfg           core.Config
	label         string
	minutes       int
	stream        string
	checkpointDir string
	restore       string
	ignoreCrash   bool
	pace          float64
	budget        int
	chaosOn       bool
	collector     *telemetry.Collector
	registry      *telemetry.Registry
	dump          func()
}

// openStream resolves the -stream argument: a JSONL file path, '-' for
// stdin, or unix:SOCKETPATH to listen on a unix socket and serve the first
// connection (backpressure is the socket's: a full buffer blocks the
// producer).
func openStream(spec string) (io.ReadCloser, error) {
	switch {
	case spec == "":
		return nil, fmt.Errorf("-serve requires -stream (file, '-', or unix:PATH)")
	case spec == "-":
		return io.NopCloser(os.Stdin), nil
	case strings.HasPrefix(spec, "unix:"):
		path := strings.TrimPrefix(spec, "unix:")
		ln, err := net.Listen("unix", path)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "listening for arrival stream on %s\n", path)
		conn, err := ln.Accept()
		_ = ln.Close() //aqualint:allow droppederr one-shot listener; the accepted conn is the stream
		if err != nil {
			return nil, err
		}
		return conn, nil
	default:
		return os.Open(spec)
	}
}

// runServe is the crash-safe live mode: it builds (or restores) a
// serving loop over the arrival stream, checkpoints every interval
// boundary, and maps outcomes to exit codes — 0 on completion, 130 after
// a graceful signal stop (dumps flushed), 137 when a scripted controller
// crash fired (no dumps: the checkpoint and journal are the survivors).
func runServe(r serveRun) {
	opts := serve.Options{
		Apps:           []*apps.App{r.app},
		TrainMin:       r.cfg.TrainMin,
		HorizonMin:     r.minutes,
		PoolFactory:    r.cfg.PoolFactory,
		ManagerFactory: r.cfg.ManagerFactory,
		Scheduler:      r.cfg.Scheduler,
		SearchBudget:   r.budget,
		ProfileNoise:   r.cfg.ProfileNoise,
		RuntimeNoise:   r.cfg.RuntimeNoise,
		Chaos:          r.cfg.Chaos,
		ArmCrash:       r.restore == "" && !r.ignoreCrash && !r.cfg.Chaos.Empty(),
		Resilience:     r.cfg.Resilience,
		Tracer:         r.collector,
		Registry:       r.registry,
		CheckpointDir:  r.checkpointDir,
		Pace:           r.pace,
		Seed:           r.cfg.Seed,
	}

	reader, err := openStream(r.stream)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stream:", err)
		os.Exit(2)
	}
	defer reader.Close() //aqualint:allow droppederr read-only stream; process exits right after

	var s *serve.Server
	var src *serve.Source
	if r.restore != "" {
		path, err := serve.LatestCheckpoint(r.restore)
		if err != nil {
			fmt.Fprintln(os.Stderr, "restore:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "restoring from %s (verified replay)\n", path)
		s, err = serve.Restore(opts, path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "restore:", err)
			os.Exit(1)
		}
		src, err = s.ResumeSource(reader)
		if err != nil {
			fmt.Fprintln(os.Stderr, "restore:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "replayed %d journaled records through boundary %d; resuming live\n",
			s.Ingested(), s.Boundary())
	} else {
		s, err = serve.New(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		src = serve.NewSource(reader)
	}

	// First signal: graceful stop — the loop flushes a final checkpoint
	// and we write the usual dumps. Second signal: force exit; checkpoint
	// writes are atomic, so the last good checkpoint survives.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "stopping: flushing final checkpoint (signal again to force exit)")
		s.RequestStop()
		// A quiet stream leaves the loop blocked in a read; closing the
		// reader unblocks it so the stop is honored promptly.
		_ = reader.Close() //aqualint:allow droppederr closing to interrupt a blocked read; error is immaterial
		<-sigs
		os.Exit(130)
	}()

	fmt.Printf("serving %s under %s over %s (interval checkpoints in %s)\n",
		r.app.Name, r.label, r.stream, r.checkpointDir)
	switch err := s.Run(src); {
	case errors.Is(err, serve.ErrCrashed):
		fmt.Fprintln(os.Stderr, "controller crash fault fired; exiting without dumps (journal + checkpoints survive)")
		os.Exit(137)
	case errors.Is(err, serve.ErrStopped):
		fmt.Fprintf(os.Stderr, "stopped at boundary %d after %d records; final checkpoint flushed\n",
			s.Boundary(), s.Ingested())
		r.dump()
		os.Exit(130)
	case err != nil:
		fmt.Fprintln(os.Stderr, "serve failed:", err)
		r.dump()
		os.Exit(1)
	}
	printResult(r.app, s.Result(), r.chaosOn)
	r.dump()
}

func aquaPool(lite bool) core.PolicyFactory {
	return func(fn string) pool.Policy {
		cfg := pool.DefaultModelConfig(trace.FeatureDim)
		cfg.EncoderHidden = 20
		cfg.PredHidden = []int{20, 10}
		cfg.EncoderEpochs = 8
		cfg.PredEpochs = 24
		cfg.MCSamples = 12
		cfg.LR = 0.01
		return &pool.Aquatope{ModelConfig: cfg, Window: 40, HeadroomZ: 2.5, Lite: lite}
	}
}
