module aquatope

go 1.22
