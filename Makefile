GO ?= go

.PHONY: verify build vet test bench

# Tier-1 gate: build everything, vet, and run the full test suite with the
# race detector. CI and pre-commit both run this target.
verify: build vet
	$(GO) test -race ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...
