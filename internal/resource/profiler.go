package resource

import (
	"math"

	"aquatope/internal/apps"
	"aquatope/internal/faas"
	"aquatope/internal/sim"
	"aquatope/internal/stats"
	"aquatope/internal/workflow"
)

// Profiler evaluates candidate configurations by running the workflow on a
// fresh simulated cluster under warm-start conditions — the pre-warmed
// container pool guarantees the resource manager only ever needs to model
// warm behaviour (§5). Noise settings inject the platform uncertainty the
// customized BO must tolerate.
type Profiler struct {
	App *apps.App
	// Repeats is the number of workflow executions averaged per sample.
	Repeats int
	// Noise configures platform interference during profiling.
	Noise faas.Noise
	// ColdStartFraction, when positive, disables pre-warming for that
	// fraction of profiled requests — used by the Fig. 17 experiment
	// where the resource manager runs without the pre-warmed pool and
	// must average over cold and warm behaviour.
	ColdStartFraction float64
	// CPUWeight and MemWeight set the linear cost model (§5.1).
	CPUWeight, MemWeight float64
	// ExecTimeStd adds extra relative execution-time variability (the
	// Fig. 14b knob).
	ExecTimeStd float64
	// InputScale multiplies every request's input size (1 when zero); the
	// Fig. 16 experiment changes it mid-run to emulate a workload
	// behaviour change.
	InputScale float64

	rng  *stats.RNG
	seed int64
}

// NewProfiler returns a profiler for the app with the paper's defaults.
func NewProfiler(a *apps.App, seed int64) *Profiler {
	return &Profiler{App: a, Repeats: 3, CPUWeight: 1, MemWeight: 1,
		rng: stats.NewRNG(seed), seed: seed}
}

// Sample profiles one configuration and returns the mean per-request cost
// and the mean end-to-end latency.
func (p *Profiler) Sample(cfgs map[string]faas.ResourceConfig) (cost, latency float64) {
	cpu, mem, lat := p.SampleComponents(cfgs)
	return p.CPUWeight*cpu + p.MemWeight*mem, lat
}

// SampleComponents profiles one configuration and returns the mean
// per-request CPU-time (core-s), memory-time (GB-s) and latency.
func (p *Profiler) SampleComponents(cfgs map[string]faas.ResourceConfig) (cpu, mem, latency float64) {
	reps := p.Repeats
	if reps <= 0 {
		reps = 3
	}
	var cpus, mems, lats []float64
	for r := 0; r < reps; r++ {
		c, m, l := p.runOnce(cfgs, p.rng.Int63())
		cpus = append(cpus, c)
		mems = append(mems, m)
		lats = append(lats, l)
	}
	return stats.Mean(cpus), stats.Mean(mems), stats.Mean(lats)
}

// runOnce executes one workflow request on a fresh cluster.
func (p *Profiler) runOnce(cfgs map[string]faas.ResourceConfig, seed int64) (cpu, mem, latency float64) {
	eng := sim.NewEngine()
	noise := p.Noise
	if p.ExecTimeStd > 0 {
		noise.GaussianStd = math.Sqrt(noise.GaussianStd*noise.GaussianStd + p.ExecTimeStd*p.ExecTimeStd)
	}
	cl := faas.NewCluster(eng, faas.Config{
		Invokers:           4,
		CPUPerInvoker:      64,
		MemoryPerInvokerMB: 1 << 20,
		Noise:              noise,
		Seed:               seed,
	})
	if err := p.App.Register(cl); err != nil {
		panic(err)
	}
	for fn, cfg := range cfgs {
		if err := cl.SetResourceConfig(fn, cfg); err != nil {
			panic(err)
		}
	}
	rng := stats.NewRNG(seed + 1)
	widths := p.App.Widths(rng)
	input := p.App.Input(rng)
	if p.InputScale > 0 {
		input *= p.InputScale
	}

	cold := p.ColdStartFraction > 0 && rng.Bernoulli(p.ColdStartFraction)
	if !cold {
		// Pre-warm generously so the request observes warm behaviour.
		maxWidth := 1
		for _, w := range widths {
			if w > maxWidth {
				maxWidth = w
			}
		}
		for _, fn := range p.App.FunctionNames() {
			_ = cl.SetPrewarmTarget(fn, maxWidth+2)
		}
		eng.RunUntil(120) // let pre-warming finish
	}

	ex := workflow.NewExecutor(cl)
	var res *workflow.Result
	if err := ex.Execute(p.App.DAG, input, widths, func(r workflow.Result) { res = &r }); err != nil {
		panic(err)
	}
	eng.Run()
	if res == nil {
		return math.Inf(1), math.Inf(1), math.Inf(1)
	}
	return res.CPUTime(), res.MemTime(), res.Latency()
}

// SampleNoiseless profiles with interference disabled and extra repeats —
// the Oracle's evaluator.
func (p *Profiler) SampleNoiseless(cfgs map[string]faas.ResourceConfig, reps int) (cost, latency float64) {
	cpu, mem, lat := p.SampleNoiselessComponents(cfgs, reps)
	return p.CPUWeight*cpu + p.MemWeight*mem, lat
}

// SampleNoiselessComponents is SampleNoiseless with CPU and memory time
// reported separately (the Fig. 13 metrics).
func (p *Profiler) SampleNoiselessComponents(cfgs map[string]faas.ResourceConfig, reps int) (cpu, mem, latency float64) {
	saved := *p
	p.Noise = faas.Noise{}
	p.ExecTimeStd = 0
	p.ColdStartFraction = 0
	if reps <= 0 {
		reps = 6
	}
	var cpus, mems, lats []float64
	rng := stats.NewRNG(p.seed + 999)
	for r := 0; r < reps; r++ {
		c, m, l := p.runOnce(cfgs, rng.Int63())
		cpus = append(cpus, c)
		mems = append(mems, m)
		lats = append(lats, l)
	}
	*p = saved
	return stats.Mean(cpus), stats.Mean(mems), stats.Mean(lats)
}
