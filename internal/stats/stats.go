// Package stats provides the statistical primitives used across the
// Aquatope reproduction: descriptive statistics, error metrics for time
// series forecasts, and a small set of parametric distributions layered on
// top of math/rand for reproducible sampling.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// SampleVariance returns the Bessel-corrected sample variance.
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CV returns the coefficient of variation (stddev/mean) of xs. It returns 0
// when the mean is 0 to keep burst-free traces well defined.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Min returns the smallest element of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// SMAPE returns the Symmetric Mean Absolute Percentage Error between the
// actual and predicted series, expressed in percent (0-100). This is the
// accuracy metric used for Table 1 of the paper. Pairs where both values are
// zero contribute zero error.
func SMAPE(actual, predicted []float64) float64 {
	n := len(actual)
	if len(predicted) < n {
		n = len(predicted)
	}
	if n == 0 {
		return 0
	}
	var s float64
	for i := 0; i < n; i++ {
		a, p := actual[i], predicted[i]
		// Scale extreme magnitudes down; the ratio is scale-invariant and
		// this avoids overflow to Inf in |a|+|p| or |a-p|.
		for math.Abs(a) > 1e300 || math.Abs(p) > 1e300 {
			a /= 2
			p /= 2
		}
		denom := math.Abs(a) + math.Abs(p)
		if denom == 0 {
			continue
		}
		s += math.Abs(a-p) / (denom / 2)
	}
	return s / float64(n) * 100
}

// MAE returns the mean absolute error between actual and predicted.
func MAE(actual, predicted []float64) float64 {
	n := len(actual)
	if len(predicted) < n {
		n = len(predicted)
	}
	if n == 0 {
		return 0
	}
	var s float64
	for i := 0; i < n; i++ {
		s += math.Abs(actual[i] - predicted[i])
	}
	return s / float64(n)
}

// RMSE returns the root mean squared error between actual and predicted.
func RMSE(actual, predicted []float64) float64 {
	n := len(actual)
	if len(predicted) < n {
		n = len(predicted)
	}
	if n == 0 {
		return 0
	}
	var s float64
	for i := 0; i < n; i++ {
		d := actual[i] - predicted[i]
		s += d * d
	}
	return math.Sqrt(s / float64(n))
}

// NormalCDF returns the standard normal cumulative distribution function at x.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalPDF returns the standard normal probability density function at x.
func NormalPDF(x float64) float64 {
	return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
}

// NormalQuantile returns the inverse standard normal CDF at p in (0,1) using
// the Acklam rational approximation (relative error below 1.15e-9), refined
// with one Halley step. It is used to map quasi-Monte-Carlo uniforms to
// Gaussian draws.
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Acklam's coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// Standardize returns (xs - mean)/std along with the mean and std used. A
// zero std is replaced by 1 so constant series standardize to zero.
func Standardize(xs []float64) (scaled []float64, mean, std float64) {
	mean = Mean(xs)
	std = StdDev(xs)
	if std == 0 {
		std = 1
	}
	scaled = make([]float64, len(xs))
	for i, x := range xs {
		scaled[i] = (x - mean) / std
	}
	return scaled, mean, std
}

// Clamp restricts x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
