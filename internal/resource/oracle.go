package resource

import (
	"math"

	"aquatope/internal/faas"
	"aquatope/internal/stats"
)

// Oracle finds the reference near-optimal configuration against which the
// paper normalizes every cost result ("% Oracle"). It evaluates noiselessly
// (interference off, repeats averaged). For tractable grids it enumerates
// exhaustively, matching the paper's description; for larger spaces it runs
// multi-start coordinate descent on the option grid, which converges to the
// same optimum on the monotone-ish response surfaces of these workloads.
type Oracle struct {
	Space    *Space
	Profiler *Profiler
	QoS      float64
	// MaxGrid bounds exhaustive enumeration (default 4096 configs).
	MaxGrid int
	// Restarts for coordinate descent on large spaces (default 3).
	Restarts int
	// Repeats per noiseless evaluation (default 6).
	Repeats int
	Seed    int64
}

// NewOracle returns an oracle for the space.
func NewOracle(space *Space, prof *Profiler, qos float64, seed int64) *Oracle {
	return &Oracle{Space: space, Profiler: prof, QoS: qos,
		MaxGrid: 4096, Restarts: 3, Repeats: 6, Seed: seed}
}

// Solve returns the optimal feasible configuration and its cost. ok is
// false when no configuration meets QoS.
func (o *Oracle) Solve() (cfgs map[string]faas.ResourceConfig, cost float64, ok bool) {
	maxGrid := o.MaxGrid
	if maxGrid <= 0 {
		maxGrid = 4096
	}
	if o.Space.GridSize() <= maxGrid {
		return o.exhaustive()
	}
	return o.coordinateDescent()
}

func (o *Oracle) eval(x []float64) (cost, lat float64) {
	cfgs, err := o.Space.Decode(x)
	if err != nil {
		panic(err)
	}
	return o.Profiler.SampleNoiseless(cfgs, o.Repeats)
}

func (o *Oracle) exhaustive() (map[string]faas.ResourceConfig, float64, bool) {
	bestCost := math.Inf(1)
	var bestX []float64
	o.Space.EnumGrid(func(x []float64) {
		c, l := o.eval(x)
		if l <= o.QoS && c < bestCost {
			bestCost = c
			bestX = append([]float64(nil), x...)
		}
	})
	if bestX == nil {
		return nil, 0, false
	}
	cfgs, _ := o.Space.Decode(bestX)
	return cfgs, bestCost, true
}

// coordinateDescent improves one dimension at a time over the option grid
// until a full pass yields no improvement, from several starts.
func (o *Oracle) coordinateDescent() (map[string]faas.ResourceConfig, float64, bool) {
	rng := stats.NewRNG(o.Seed)
	k := o.Space.dimsPerFunction()
	dimOpts := func(d int) int {
		switch d % k {
		case 0:
			return len(o.Space.CPUOptions)
		case 1:
			return len(o.Space.MemOptions)
		default:
			return len(o.Space.Concurrency)
		}
	}
	restarts := o.Restarts
	if restarts <= 0 {
		restarts = 3
	}
	// Deterministic starts: the most generous configuration (always
	// feasible if anything is) plus every feasible uniform "ladder"
	// level — the configurations a uniform autoscaler would land on,
	// which coordinate descent must at least match.
	var starts [][]float64
	full := make([]float64, o.Space.Dim())
	for d := range full {
		full[d] = binCenter(dimOpts(d)-1, dimOpts(d))
	}
	starts = append(starts, full)
	ladder := len(o.Space.CPUOptions)
	if n := len(o.Space.MemOptions); n < ladder {
		ladder = n
	}
	for lvl := 0; lvl < ladder; lvl++ {
		x := make([]float64, o.Space.Dim())
		for d := range x {
			n := dimOpts(d)
			i := lvl
			if i >= n {
				i = n - 1
			}
			x[d] = binCenter(i, n)
		}
		if _, l := o.eval(x); l <= o.QoS {
			starts = append(starts, x)
			break // cheapest feasible ladder level is enough
		}
	}
	globalBest := math.Inf(1)
	var globalX []float64
	for r := 0; r < restarts+len(starts); r++ {
		var x []float64
		if r < len(starts) {
			x = append([]float64(nil), starts[r]...)
		} else {
			x = make([]float64, o.Space.Dim())
			for d := range x {
				x[d] = binCenter(rng.Intn(dimOpts(d)), dimOpts(d))
			}
		}
		cost, lat := o.eval(x)
		score := o.score(cost, lat)
		for pass := 0; pass < 8; pass++ {
			improved := false
			for d := 0; d < len(x); d++ {
				n := dimOpts(d)
				bestOpt := -1
				for i := 0; i < n; i++ {
					trial := append([]float64(nil), x...)
					trial[d] = binCenter(i, n)
					if trial[d] == x[d] {
						continue
					}
					c, l := o.eval(trial)
					if s := o.score(c, l); s < score {
						score, bestOpt = s, i
						cost, lat = c, l
					}
				}
				if bestOpt >= 0 {
					x[d] = binCenter(bestOpt, dimOpts(d))
					improved = true
				}
			}
			if !improved {
				break
			}
		}
		if lat <= o.QoS && cost < globalBest {
			globalBest = cost
			globalX = append([]float64(nil), x...)
		}
	}
	if globalX == nil {
		return nil, 0, false
	}
	cfgs, _ := o.Space.Decode(globalX)
	return cfgs, globalBest, true
}

// score orders configurations: feasible ones by cost, infeasible ones by a
// large violation penalty so descent walks toward feasibility first.
func (o *Oracle) score(cost, lat float64) float64 {
	if lat <= o.QoS {
		return cost
	}
	return 1e6 + (lat - o.QoS)
}
