package sched

import "aquatope/internal/checkpoint"

// Snapshot serializes the decision-overhead meter — the registry wrapper's
// only mutable state.
func (m *Meter) Snapshot(enc *checkpoint.Encoder) {
	enc.String("sched.meter")
	enc.Int(m.PoolDecisions)
	enc.F64(m.PoolEvals)
	enc.Int(m.ConfigDecisions)
	enc.F64(m.ConfigProfiles)
}

// Restore loads meter state saved by Snapshot.
func (m *Meter) Restore(dec *checkpoint.Decoder) error {
	dec.Expect("sched.meter")
	m.PoolDecisions = dec.Int()
	m.PoolEvals = dec.F64()
	m.ConfigDecisions = dec.Int()
	m.ConfigProfiles = dec.F64()
	return dec.Err()
}
