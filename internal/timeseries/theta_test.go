package timeseries

import (
	"math"
	"testing"

	"aquatope/internal/stats"
)

func TestThetaTrendedSeries(t *testing.T) {
	// Linear-trend series: Theta must track the trend where naive lags.
	g := stats.NewRNG(1)
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = 10 + 0.5*float64(i) + g.Normal(0, 1)
	}
	train, test := xs[:240], xs[240:]
	th := NewTheta()
	th.Fit(train)
	nv := NewNaive()
	nv.Fit(train)
	sTh := stats.SMAPE(test, th.Forecast(test))
	sNv := stats.SMAPE(test, nv.Forecast(test))
	if sTh >= sNv {
		t.Fatalf("Theta SMAPE %.2f should beat naive %.2f on trended data", sTh, sNv)
	}
}

func TestThetaShortSeriesSafe(t *testing.T) {
	th := NewTheta()
	th.Fit([]float64{5})
	out := th.Forecast([]float64{6, 7})
	for _, v := range out {
		if math.IsNaN(v) || v < 0 {
			t.Fatalf("bad forecast %v", v)
		}
	}
	th2 := NewTheta()
	th2.Fit(nil)
	if got := th2.Forecast([]float64{1}); len(got) != 1 {
		t.Fatal("length mismatch")
	}
}

func TestThetaName(t *testing.T) {
	if NewTheta().Name() != "theta" {
		t.Fatal("name wrong")
	}
}

func TestThetaAlphaFitted(t *testing.T) {
	th := NewTheta()
	g := stats.NewRNG(2)
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 20 + g.Normal(0, 3)
	}
	th.Fit(xs)
	if th.Alpha <= 0 || th.Alpha > 1 {
		t.Fatalf("alpha = %v", th.Alpha)
	}
}
