package faas

import (
	"fmt"

	"aquatope/internal/telemetry"
)

// AdmissionPolicy selects what happens when an invocation arrives at a
// function whose bounded queue (Config.QueueLimit) is already full. All
// policies keep the queue length at or below the limit — under overload the
// platform degrades by shedding work instead of letting wait times grow
// without bound (Fifer-style SLO-aware queuing).
type AdmissionPolicy int

const (
	// AdmitRejectNew sheds the arriving invocation (default; classic
	// bounded-queue tail drop).
	AdmitRejectNew AdmissionPolicy = iota
	// AdmitShedOldest sheds the head of the queue — the invocation that
	// has already waited longest and is therefore closest to its deadline
	// — and admits the newcomer (head drop).
	AdmitShedOldest
	// AdmitDeadlineAware first sheds queued invocations whose remaining
	// deadline budget is already unmeetable given the function's observed
	// service time (they would time out anyway; shedding them early frees
	// queue space without losing goodput). If no queued entry is doomed,
	// it falls back to rejecting the newcomer.
	AdmitDeadlineAware
)

// String returns the policy's wire name (flags, telemetry, reports).
func (a AdmissionPolicy) String() string {
	switch a {
	case AdmitRejectNew:
		return "reject-new"
	case AdmitShedOldest:
		return "shed-oldest"
	case AdmitDeadlineAware:
		return "deadline-aware"
	default:
		return fmt.Sprintf("admission(%d)", int(a))
	}
}

// ParseAdmissionPolicy maps a wire name back to a policy.
func ParseAdmissionPolicy(s string) (AdmissionPolicy, error) {
	switch s {
	case "reject-new", "":
		return AdmitRejectNew, nil
	case "shed-oldest":
		return AdmitShedOldest, nil
	case "deadline-aware":
		return AdmitDeadlineAware, nil
	}
	return AdmitRejectNew, fmt.Errorf("faas: unknown admission policy %q", s)
}

// BreakerConfig parameterizes the per-invoker circuit breakers. A breaker
// watches the terminal outcomes of invocations that ran on its invoker over
// a sliding window; when the error rate crosses the threshold the breaker
// opens and pickInvoker routes new containers elsewhere until a cool-down
// elapses, after which a half-open probe phase readmits the invoker
// gradually. Zero-valued config (Enabled=false) costs nothing and keeps
// byte-identical output with pre-breaker builds.
type BreakerConfig struct {
	// Enabled turns the breakers on.
	Enabled bool
	// Window is the outcome ring-buffer size per invoker (default 20).
	Window int
	// ErrorThreshold is the error-rate fraction that opens the breaker
	// (default 0.5).
	ErrorThreshold float64
	// MinSamples gates opening until the window holds at least this many
	// outcomes (default 8), so one early failure cannot open a breaker.
	MinSamples int
	// OpenSec is the cool-down before an open breaker admits half-open
	// probes (default 30).
	OpenSec float64
	// HalfOpenProbes is the number of consecutive successes required to
	// close a half-open breaker (default 3); any failure reopens it.
	HalfOpenProbes int
}

func (b BreakerConfig) withDefaults() BreakerConfig {
	if b.Window <= 0 {
		b.Window = 20
	}
	if b.ErrorThreshold <= 0 {
		b.ErrorThreshold = 0.5
	}
	if b.MinSamples <= 0 {
		b.MinSamples = 8
	}
	if b.OpenSec <= 0 {
		b.OpenSec = 30
	}
	if b.HalfOpenProbes <= 0 {
		b.HalfOpenProbes = 3
	}
	return b
}

// breakerState is the classic circuit-breaker state machine.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("breaker(%d)", int(s))
	}
}

// breaker tracks one invoker's recent outcome window and gate state.
type breaker struct {
	state breakerState
	// ring holds the last cfg.Window outcomes (true = error).
	ring []bool
	next int
	n    int
	errs int
	// openedAt is when the breaker last opened (half-open after OpenSec).
	openedAt float64
	// probeOK counts consecutive half-open successes.
	probeOK int
}

// errRate returns the windowed error fraction.
func (b *breaker) errRate() float64 {
	if b.n == 0 {
		return 0
	}
	return float64(b.errs) / float64(b.n)
}

// observe pushes one outcome into the window.
func (b *breaker) observe(isErr bool) {
	if len(b.ring) == 0 {
		return
	}
	if b.n == len(b.ring) {
		if b.ring[b.next] {
			b.errs--
		}
	} else {
		b.n++
	}
	b.ring[b.next] = isErr
	if isErr {
		b.errs++
	}
	b.next = (b.next + 1) % len(b.ring)
}

// clearWindow empties the outcome ring — called on every open/close
// transition so the next state starts judging from fresh evidence instead
// of re-tripping on the stale window that caused the transition.
func (b *breaker) clearWindow() {
	b.next, b.n, b.errs = 0, 0, 0
}

// reset clears the window and closes the breaker (invoker recovery).
func (b *breaker) reset() {
	b.state = breakerClosed
	b.clearWindow()
	b.probeOK = 0
}

// breakerEvent emits the state-transition telemetry point and counters.
func (c *Cluster) breakerEvent(iv *Invoker, to breakerState, errRate float64) {
	switch to {
	case breakerOpen:
		c.metrics.breakerOpened()
	case breakerClosed:
		c.metrics.breakerClosed()
	}
	if c.tracer.Enabled() {
		c.tracer.Point(telemetry.KindBreaker, fmt.Sprintf("invoker%d", iv.ID), 0,
			c.eng.Now(), telemetry.Fields{
				"invoker":  float64(iv.ID),
				"state":    float64(to),
				"err_rate": errRate,
			})
	}
}

// breakerAllows reports whether the invoker's breaker admits new placements,
// lazily transitioning open → half-open once the cool-down elapsed.
func (c *Cluster) breakerAllows(iv *Invoker) bool {
	if !c.cfg.Breaker.Enabled {
		return true
	}
	b := iv.breaker
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if c.eng.Now()-b.openedAt >= c.cfg.Breaker.OpenSec {
			b.state = breakerHalfOpen
			b.probeOK = 0
			c.breakerEvent(iv, breakerHalfOpen, b.errRate())
			return true
		}
		return false
	default: // half-open: admit probes
		return true
	}
}

// noteInvokerOutcome feeds one terminal outcome of work that ran on iv into
// its breaker and drives the state machine.
func (c *Cluster) noteInvokerOutcome(iv *Invoker, isErr bool) {
	if !c.cfg.Breaker.Enabled || iv == nil {
		return
	}
	b := iv.breaker
	b.observe(isErr)
	switch b.state {
	case breakerClosed:
		if b.n >= c.cfg.Breaker.MinSamples && b.errRate() >= c.cfg.Breaker.ErrorThreshold {
			rate := b.errRate()
			b.state = breakerOpen
			b.openedAt = c.eng.Now()
			b.clearWindow()
			c.breakerEvent(iv, breakerOpen, rate)
		}
	case breakerHalfOpen:
		if isErr {
			rate := b.errRate()
			b.state = breakerOpen
			b.openedAt = c.eng.Now()
			b.probeOK = 0
			b.clearWindow()
			c.breakerEvent(iv, breakerOpen, rate)
		} else {
			b.probeOK++
			if b.probeOK >= c.cfg.Breaker.HalfOpenProbes {
				b.state = breakerClosed
				b.probeOK = 0
				b.clearWindow()
				c.breakerEvent(iv, breakerClosed, 0)
			}
		}
	}
}

// BreakerState returns the named state of an invoker's breaker ("closed"
// when breakers are disabled or the invoker is unknown).
func (c *Cluster) BreakerState(invoker int) string {
	if !c.cfg.Breaker.Enabled || invoker < 0 || invoker >= len(c.invokers) {
		return breakerClosed.String()
	}
	return c.invokers[invoker].breaker.state.String()
}

// admit applies the function's admission policy to a newly arriving
// invocation. It returns true when the newcomer may be enqueued; when it
// returns false the newcomer has already been shed (terminal result
// delivered). Queue mutations happen before any shed result is delivered so
// reentrant submissions from done callbacks observe a consistent queue.
func (c *Cluster) admit(fn *function, p *pendingInvocation) bool {
	limit := fn.queueLimit
	if limit <= 0 || len(fn.queue) < limit {
		return true
	}
	switch c.cfg.Admission {
	case AdmitShedOldest:
		victim := fn.queue[0]
		fn.queue = fn.queue[1:]
		c.shed(fn, victim, "shed-oldest")
		return true
	case AdmitDeadlineAware:
		if c.shedDoomed(fn) > 0 {
			return true
		}
		c.shed(fn, p, "queue-full")
		return false
	default: // AdmitRejectNew
		c.shed(fn, p, "queue-full")
		return false
	}
}

// shedDoomed sheds queued invocations whose deadline cannot be met anymore
// given the function's observed service time, returning how many were shed.
// Entries without a deadline are never doomed.
func (c *Cluster) shedDoomed(fn *function) int {
	est := fn.execEWMA
	if est <= 0 {
		return 0
	}
	now := c.eng.Now()
	kept := fn.queue[:0]
	var victims []*pendingInvocation
	for _, q := range fn.queue {
		if q.timeout > 0 && q.submitAt+q.timeout < now+est {
			victims = append(victims, q) //aqualint:allow hotalloc most scans shed nothing; the nil slice costs zero then, preallocating len(queue) would cost every scan
		} else {
			kept = append(kept, q)
		}
	}
	fn.queue = kept
	for _, q := range victims {
		c.shed(fn, q, "deadline-unmeetable")
	}
	return len(victims)
}

// shed delivers a terminal OutcomeShed result for an invocation that was
// refused admission (or dropped from the queue). The caller must already
// have removed it from the queue.
func (c *Cluster) shed(fn *function, p *pendingInvocation, reason string) {
	c.failPending(fn, p, OutcomeShed, reason, nil)
}

// QueueDepth returns the number of invocations currently queued for the
// function (the backpressure signal hedging consults).
func (c *Cluster) QueueDepth(name string) int {
	fn, ok := c.fns[name]
	if !ok {
		return 0
	}
	return len(fn.queue)
}

// QueueLimitOf returns the function's effective queue bound (0 = unbounded).
func (c *Cluster) QueueLimitOf(name string) int {
	fn, ok := c.fns[name]
	if !ok {
		return 0
	}
	return fn.queueLimit
}

// SetQueueLimit overrides one function's queue bound (n <= 0 = unbounded),
// overriding the cluster-wide Config.QueueLimit default.
func (c *Cluster) SetQueueLimit(name string, n int) error {
	fn, ok := c.fns[name]
	if !ok {
		return fmt.Errorf("faas: unknown function %q", name)
	}
	if n < 0 {
		n = 0
	}
	fn.queueLimit = n
	return nil
}
