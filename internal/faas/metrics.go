package faas

import "aquatope/internal/telemetry"

// Metrics is the platform's metric accumulator. It is a thin compatibility
// facade over a telemetry.Registry: every statistic the paper's evaluation
// reports — cold/warm start counts, CPU-time and memory-time cost
// components, provisioned memory-time (the Fig. 9b metric), container
// churn — lives in registry counters, plus streaming latency/exec/wait
// histograms for percentile reporting, all under the "faas." namespace.
// The accessor methods preserve the pre-registry API.
type Metrics struct {
	Results []InvocationResult

	// KeepResults controls whether per-invocation results are retained
	// (slices can get large on long traces).
	KeepResults bool

	reg *telemetry.Registry

	coldStarts        *telemetry.Counter
	warmStarts        *telemetry.Counter
	failed            *telemetry.Counter
	timedOut          *telemetry.Counter
	shed              *telemetry.Counter
	breakerOpens      *telemetry.Counter
	breakerCloses     *telemetry.Counter
	initFailures      *telemetry.Counter
	invokerCrashes    *telemetry.Counter
	cpuTime           *telemetry.Counter
	memTime           *telemetry.Counter
	provisionedMem    *telemetry.Counter
	containersCreated *telemetry.Counter
	containersKilled  *telemetry.Counter

	latency  *telemetry.Histogram
	execTime *telemetry.Histogram
	waitTime *telemetry.Histogram
}

// NewMetrics returns an accumulator on a private registry that retains
// per-invocation results.
func NewMetrics() *Metrics { return NewMetricsOn(telemetry.NewRegistry()) }

// NewMetricsOn returns an accumulator recording into reg (shared with other
// subsystems when the caller exports one combined snapshot). A nil reg gets
// a private registry.
func NewMetricsOn(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &Metrics{
		KeepResults:       true,
		reg:               reg,
		coldStarts:        reg.Counter(telemetry.MetricColdStarts),
		warmStarts:        reg.Counter(telemetry.MetricWarmStarts),
		failed:            reg.Counter(telemetry.MetricFailedInvocations),
		timedOut:          reg.Counter(telemetry.MetricTimedOutInvocations),
		shed:              reg.Counter(telemetry.MetricShedInvocations),
		breakerOpens:      reg.Counter(telemetry.MetricBreakerOpens),
		breakerCloses:     reg.Counter(telemetry.MetricBreakerCloses),
		initFailures:      reg.Counter(telemetry.MetricInitFailures),
		invokerCrashes:    reg.Counter(telemetry.MetricInvokerCrashes),
		cpuTime:           reg.Counter(telemetry.MetricCPUTime),
		memTime:           reg.Counter(telemetry.MetricMemTime),
		provisionedMem:    reg.Counter(telemetry.MetricProvisionedMemTime),
		containersCreated: reg.Counter(telemetry.MetricContainersCreated),
		containersKilled:  reg.Counter(telemetry.MetricContainersKilled),
		latency:           reg.Histogram(telemetry.MetricInvocationLatency),
		execTime:          reg.Histogram(telemetry.MetricInvocationExec),
		waitTime:          reg.Histogram(telemetry.MetricInvocationWait),
	}
}

// Registry returns the backing registry (for export or for registering
// further instruments alongside the platform's).
func (m *Metrics) Registry() *telemetry.Registry { return m.reg }

func (m *Metrics) record(r InvocationResult) {
	if m.KeepResults {
		m.Results = append(m.Results, r)
	}
	switch r.Outcome {
	case OutcomeShed:
		// Admission rejections never ran: no cost, no latency sample.
		m.shed.Inc()
		return
	case OutcomeFailed, OutcomeTimedOut:
		if r.Outcome == OutcomeFailed {
			m.failed.Inc()
		} else {
			m.timedOut.Inc()
		}
		// The partial execution still burned resources; keep the cost
		// model honest but keep failure latencies out of the success
		// histograms.
		m.cpuTime.Add(r.CostCPUTime())
		m.memTime.Add(r.CostMemTime())
		return
	}
	if r.ColdStart {
		m.coldStarts.Inc()
	} else {
		m.warmStarts.Inc()
	}
	m.cpuTime.Add(r.CostCPUTime())
	m.memTime.Add(r.CostMemTime())
	m.latency.Observe(r.Latency())
	m.execTime.Observe(r.ExecTime)
	m.waitTime.Observe(r.WaitTime)
}

func (m *Metrics) containerCreated() { m.containersCreated.Inc() }

func (m *Metrics) breakerOpened() { m.breakerOpens.Inc() }

func (m *Metrics) breakerClosed() { m.breakerCloses.Inc() }

func (m *Metrics) initFailure() { m.initFailures.Inc() }

func (m *Metrics) invokerCrashed() { m.invokerCrashes.Inc() }

func (m *Metrics) containerDied(memMB, lifetime float64) {
	m.containersKilled.Inc()
	if lifetime > 0 {
		m.provisionedMem.Add(memMB / 1024 * lifetime)
	}
}

// ColdStarts returns the number of cold-started invocations.
func (m *Metrics) ColdStarts() int { return int(m.coldStarts.Value()) }

// WarmStarts returns the number of warm-started invocations.
func (m *Metrics) WarmStarts() int { return int(m.warmStarts.Value()) }

// CPUTime returns Σ cpuLimit × execTime over invocations (core-seconds).
func (m *Metrics) CPUTime() float64 { return m.cpuTime.Value() }

// MemTime returns Σ memLimit × execTime over invocations (GB-seconds).
func (m *Metrics) MemTime() float64 { return m.memTime.Value() }

// ProvisionedMemTime returns Σ memLimit × containerLifetime (GB-seconds):
// memory held by containers whether busy or idle.
func (m *Metrics) ProvisionedMemTime() float64 { return m.provisionedMem.Value() }

// ContainersCreated returns the number of containers provisioned.
func (m *Metrics) ContainersCreated() int { return int(m.containersCreated.Value()) }

// ContainersKilled returns the number of containers terminated.
func (m *Metrics) ContainersKilled() int { return int(m.containersKilled.Value()) }

// FailedInvocations returns the number of invocations that terminated with
// OutcomeFailed (init failure, container kill, invoker crash).
func (m *Metrics) FailedInvocations() int { return int(m.failed.Value()) }

// TimedOutInvocations returns the number of deadline-expired invocations.
func (m *Metrics) TimedOutInvocations() int { return int(m.timedOut.Value()) }

// ShedInvocations returns the number of invocations rejected by admission
// control (OutcomeShed).
func (m *Metrics) ShedInvocations() int { return int(m.shed.Value()) }

// BreakerOpens returns how many times an invoker circuit breaker opened.
func (m *Metrics) BreakerOpens() int { return int(m.breakerOpens.Value()) }

// BreakerCloses returns how many times an invoker circuit breaker closed
// again after opening.
func (m *Metrics) BreakerCloses() int { return int(m.breakerCloses.Value()) }

// InitFailures returns the number of container initialization failures.
func (m *Metrics) InitFailures() int { return int(m.initFailures.Value()) }

// InvokerCrashes returns the number of invoker crash events.
func (m *Metrics) InvokerCrashes() int { return int(m.invokerCrashes.Value()) }

// Invocations returns the total number of terminally completed invocations,
// whatever their outcome (shed ones included: the caller got an answer).
func (m *Metrics) Invocations() int {
	return m.ColdStarts() + m.WarmStarts() + m.FailedInvocations() +
		m.TimedOutInvocations() + m.ShedInvocations()
}

// ColdStartRate returns the fraction of invocations that were cold starts.
func (m *Metrics) ColdStartRate() float64 {
	total := m.Invocations()
	if total == 0 {
		return 0
	}
	return float64(m.ColdStarts()) / float64(total)
}

// LatencyHistogram returns the end-to-end invocation latency histogram.
func (m *Metrics) LatencyHistogram() *telemetry.Histogram { return m.latency }

// Reset clears all counters, histograms and retained results, preserving
// KeepResults and the registry binding.
func (m *Metrics) Reset() {
	m.Results = nil
	m.coldStarts.Reset()
	m.warmStarts.Reset()
	m.failed.Reset()
	m.timedOut.Reset()
	m.shed.Reset()
	m.breakerOpens.Reset()
	m.breakerCloses.Reset()
	m.initFailures.Reset()
	m.invokerCrashes.Reset()
	m.cpuTime.Reset()
	m.memTime.Reset()
	m.provisionedMem.Reset()
	m.containersCreated.Reset()
	m.containersKilled.Reset()
	m.latency.Reset()
	m.execTime.Reset()
	m.waitTime.Reset()
}
