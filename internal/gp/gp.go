package gp

import (
	"errors"
	"math"

	"aquatope/internal/linalg"
	"aquatope/internal/stats"
)

// GP is an exact Gaussian-process regressor with fixed (known) observation
// noise, matching the paper's "fixed-noise GP models with Matérn(5/2)".
// Targets are standardized internally; Posterior outputs are mapped back to
// the original scale.
//
// The model is conditioned through an incremental sliding-window API:
// Observe appends one observation with a rank-1 extension of the Cholesky
// factor (O(n²)), Forget evicts the oldest with a rank-1 update of the
// trailing block (O(n²)), and Fit remains as a thin rebuild wrapper used at
// window construction and scheduled hyperparameter refits. The train-kernel
// matrix is cached alongside the factor and reused by batch posteriors over
// window points; both caches are invalidated only by hyperparameter changes
// (FitHyperparameters, SetWindow rebuilds) — never by target updates, since
// the kernel matrix depends only on the inputs.
type GP struct {
	Kernel Kernel
	// Noise is the observation noise variance in standardized target
	// units, added to the kernel diagonal.
	Noise float64

	window int // sliding-window capacity; 0 = unbounded

	x     [][]float64
	yRaw  []float64 // original-unit targets, window order
	y     []float64 // standardized targets
	yMean float64
	yStd  float64

	kmat   *linalg.Matrix // cached train kernel, no noise diagonal
	chol   *linalg.Matrix // factor of kmat + Noise·I (+ jitter·I)
	jitter float64        // diagonal jitter the factorization needed
	alpha  []float64

	// Scratch buffers so steady-state Observe/Forget cycles are
	// allocation-free: cross-covariances, the evict rank-1 vector, and the
	// triangular-solve intermediate of restandardize.
	kbuf, vbuf, solveTmp []float64

	fullRefit bool // true => Observe/Forget rebuild from scratch (ablation)
}

// growBuf returns buf resized to n, reusing its backing array when possible.
func growBuf(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// New returns a GP with the given kernel and fixed noise variance.
func New(k Kernel, noise float64) *GP {
	if noise < 1e-9 {
		noise = 1e-9
	}
	return &GP{Kernel: k, Noise: noise, yStd: 1}
}

// Len returns the number of observations conditioning the posterior.
func (g *GP) Len() int { return len(g.x) }

// SetWindow installs the sliding-window capacity: Observe evicts the oldest
// observation once the window is full. 0 restores unbounded retention. If
// the current window already exceeds the new capacity the oldest points are
// forgotten immediately.
func (g *GP) SetWindow(n int) {
	if n < 0 {
		n = 0
	}
	g.window = n
	for g.window > 0 && len(g.x) > g.window {
		g.Forget()
	}
}

// SetFullRefit disables the incremental up/downdate path: every Observe and
// Forget rebuilds the factorization from scratch. This exists for ablation
// and debugging; the incremental path is the default.
func (g *GP) SetFullRefit(v bool) { g.fullRefit = v }

// Window returns the observations currently conditioning the posterior, in
// window order with targets in original units. The returned slices are
// views; callers must not modify them.
func (g *GP) Window() (X [][]float64, y []float64) { return g.x, g.yRaw }

// Observe appends one observation to the window, evicting the oldest first
// when the window is at capacity. The Cholesky factor is extended in O(n²);
// a full refactorization happens only if the extension loses positive
// definiteness (jitter escalation). The error mirrors Fit's: the kernel
// matrix could not be factored.
func (g *GP) Observe(x []float64, y float64) error {
	if g.window > 0 && len(g.x) >= g.window {
		// The eviction skips restandardization: Observe restandardizes once
		// after the extension, over the same final window.
		g.forget(false)
	}
	n := len(g.x)
	if g.fullRefit || (n > 0 && g.chol == nil) {
		g.x = append(g.x, x)
		g.yRaw = append(g.yRaw, y)
		return g.refactor()
	}
	if n == 0 {
		g.x = append(g.x, x)
		g.yRaw = append(g.yRaw, y)
		return g.refactor()
	}
	// Cross-covariances against the existing window, then the rank-1
	// extension of both caches, all in place on the owned buffers.
	g.kbuf = growBuf(g.kbuf, n)
	k := g.kbuf
	for i, xi := range g.x {
		k[i] = g.Kernel.Eval(xi, x)
	}
	d := g.Kernel.Eval(x, x)
	ok := linalg.ExtendCholeskyInPlace(g.chol, k, d+g.Noise, g.jitter)
	g.x = append(g.x, x)
	g.yRaw = append(g.yRaw, y)
	if !ok {
		return g.refactor()
	}
	g.kmat.GrowBorderInPlace(k, d)
	g.restandardize()
	return nil
}

// Forget evicts the oldest observation from the window in O(n²) via a
// rank-1 update of the trailing factor block.
func (g *GP) Forget() { g.forget(true) }

func (g *GP) forget(restandardize bool) {
	if len(g.x) == 0 {
		return
	}
	g.x = g.x[1:]
	g.yRaw = g.yRaw[1:]
	n := len(g.x)
	if n == 0 {
		g.kmat, g.chol, g.alpha = nil, nil, nil
		g.y = nil
		// Reset the jitter along with the caches: an empty GP must be
		// indistinguishable from a fresh one, and a stale jitter would
		// poison the first incremental extension (window-size-1 edge).
		g.jitter = 0
		return
	}
	if g.fullRefit || g.chol == nil {
		_ = g.refactor()
		return
	}
	g.vbuf = growBuf(g.vbuf, n)
	linalg.DropLeadingCholeskyInPlace(g.chol, g.vbuf)
	g.kmat.ShrinkLeadingInPlace()
	if restandardize {
		g.restandardize()
	}
}

// Fit conditions the GP on (X, y), rebuilding the window, standardization
// and factorization from scratch. It remains the entry point for window
// construction and for conditioning on a batch; steady-state updates should
// use Observe/Forget. If a sliding window is set, only the most recent
// window-many points are kept.
func (g *GP) Fit(X [][]float64, y []float64) error {
	if len(X) != len(y) {
		return errors.New("gp: X and y length mismatch")
	}
	if g.window > 0 && len(X) > g.window {
		X = X[len(X)-g.window:]
		y = y[len(y)-g.window:]
	}
	if len(X) == 0 {
		g.x, g.y, g.yRaw = nil, nil, nil
		g.chol, g.kmat, g.alpha = nil, nil, nil
		g.jitter = 0 // empty must equal fresh (see forget)
		return nil
	}
	g.x = append(g.x[:0:0], X...)
	g.yRaw = append([]float64(nil), y...)
	return g.refactor()
}

// refactor rebuilds the kernel-matrix cache and factorization from the
// current window. It is the only O(n³) path; Observe/Forget reach it solely
// through jitter escalation, hyperparameter refits, or SetFullRefit.
func (g *GP) refactor() error {
	n := len(g.x)
	km := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := g.Kernel.Eval(g.x[i], g.x[j])
			km.Set(i, j, v)
			km.Set(j, i, v)
		}
	}
	noisy := km.Clone()
	for i := 0; i < n; i++ {
		noisy.Set(i, i, noisy.At(i, i)+g.Noise)
	}
	l, jit, err := linalg.CholeskyJitter(noisy)
	if err != nil {
		return err
	}
	g.kmat, g.chol, g.jitter = km, l, jit
	g.restandardize()
	return nil
}

// restandardize refits the target standardization over the current window
// and recomputes alpha from the existing factor — O(n²), no factorization.
// Valid across any window/target change because the kernel matrix (and so
// its factor) does not depend on the targets.
func (g *GP) restandardize() {
	// Mirrors stats.Standardize (same Mean/StdDev calls, same per-element
	// expression) into a reused buffer, then the two triangular solves of
	// CholSolve into reused buffers — bitwise the same alpha, no allocation
	// at steady state.
	n := len(g.yRaw)
	mean := stats.Mean(g.yRaw)
	std := stats.StdDev(g.yRaw)
	if std == 0 {
		std = 1
	}
	g.y = growBuf(g.y, n)
	for i, x := range g.yRaw {
		g.y[i] = (x - mean) / std
	}
	g.yMean, g.yStd = mean, std
	g.solveTmp = growBuf(g.solveTmp, n)
	g.alpha = growBuf(g.alpha, n)
	linalg.SolveLowerInto(g.chol, g.y, g.solveTmp)
	linalg.SolveUpperTInto(g.chol, g.solveTmp, g.alpha)
}

// Posterior returns the predictive mean and variance (of the latent
// function, excluding observation noise) at x, in original target units.
func (g *GP) Posterior(x []float64) (mean, variance float64) {
	if len(g.x) == 0 {
		return g.yMean, g.yStd * g.yStd * g.Kernel.Eval(x, x)
	}
	ks := make([]float64, len(g.x))
	for i, xi := range g.x {
		ks[i] = g.Kernel.Eval(x, xi)
	}
	mu := linalg.Dot(ks, g.alpha)
	v := linalg.SolveLower(g.chol, ks)
	va := g.Kernel.Eval(x, x) - linalg.Dot(v, v)
	if va < 0 {
		va = 0
	}
	return mu*g.yStd + g.yMean, va * g.yStd * g.yStd
}

// PosteriorBatch returns the joint predictive mean vector and covariance
// matrix over a batch of points, in original units. The joint posterior is
// what lets the acquisition integrate over correlated fantasy outcomes.
func (g *GP) PosteriorBatch(xs [][]float64) (mean []float64, cov *linalg.Matrix) {
	q := len(xs)
	mean = make([]float64, q)
	cov = linalg.NewMatrix(q, q)
	if len(g.x) == 0 {
		for i := range xs {
			mean[i] = g.yMean
			for j := range xs {
				cov.Set(i, j, g.yStd*g.yStd*g.Kernel.Eval(xs[i], xs[j]))
			}
		}
		return mean, cov
	}
	n := len(g.x)
	// vMat[i] = L^{-1} k(X, xs[i])
	vMat := make([][]float64, q)
	for i, x := range xs {
		ks := make([]float64, n)
		for r, xr := range g.x {
			ks[r] = g.Kernel.Eval(x, xr)
		}
		mean[i] = linalg.Dot(ks, g.alpha)*g.yStd + g.yMean
		vMat[i] = linalg.SolveLower(g.chol, ks)
	}
	for i := 0; i < q; i++ {
		for j := i; j < q; j++ {
			c := g.Kernel.Eval(xs[i], xs[j]) - linalg.Dot(vMat[i], vMat[j])
			c *= g.yStd * g.yStd
			if i == j && c < 0 {
				c = 0
			}
			cov.Set(i, j, c)
			cov.Set(j, i, c)
		}
	}
	return mean, cov
}

// PosteriorBatchRecent returns the joint posterior over the most recent m
// window points, sourcing every kernel value from the cached train-kernel
// matrix — zero kernel evaluations. This is the NEI incumbent path's batch
// posterior: within one Suggest it reuses the same cache the factor was
// built from, so repeated calls cost only the triangular solves.
func (g *GP) PosteriorBatchRecent(m int) (mean []float64, cov *linalg.Matrix) {
	n := len(g.x)
	if m > n {
		m = n
	}
	mean = make([]float64, m)
	cov = linalg.NewMatrix(m, m)
	vMat := make([][]float64, m)
	for i := 0; i < m; i++ {
		ks := g.kmat.Row(n - m + i)
		mean[i] = linalg.Dot(ks, g.alpha)*g.yStd + g.yMean
		vMat[i] = linalg.SolveLower(g.chol, ks)
	}
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			c := g.kmat.At(n-m+i, n-m+j) - linalg.Dot(vMat[i], vMat[j])
			c *= g.yStd * g.yStd
			if i == j && c < 0 {
				c = 0
			}
			cov.Set(i, j, c)
			cov.Set(j, i, c)
		}
	}
	return mean, cov
}

// SampleJoint draws nSamples correlated function values at the batch points
// using the joint posterior and externally supplied standard-normal draws
// (e.g. from a Sobol sequence): draws[s] must have length len(xs).
func (g *GP) SampleJoint(xs [][]float64, draws [][]float64) [][]float64 {
	mean, cov := g.PosteriorBatch(xs)
	return sampleWithCov(mean, cov, draws)
}

// SampleJointRecent draws correlated function values at the most recent m
// window points via the cached-kernel batch posterior.
func (g *GP) SampleJointRecent(m int, draws [][]float64) [][]float64 {
	mean, cov := g.PosteriorBatchRecent(m)
	return sampleWithCov(mean, cov, draws)
}

func sampleWithCov(mean []float64, cov *linalg.Matrix, draws [][]float64) [][]float64 {
	q := len(mean)
	l, err := linalg.Cholesky(cov)
	if err != nil {
		// Degenerate covariance: fall back to independent marginals.
		l = linalg.NewMatrix(q, q)
		for i := 0; i < q; i++ {
			l.Set(i, i, math.Sqrt(math.Max(cov.At(i, i), 0)))
		}
	}
	out := make([][]float64, len(draws))
	for s, z := range draws {
		v := make([]float64, q)
		for i := 0; i < q; i++ {
			var acc float64
			for j := 0; j <= i; j++ {
				acc += l.At(i, j) * z[j]
			}
			v[i] = mean[i] + acc
		}
		out[s] = v
	}
	return out
}

// LogMarginalLikelihood returns the log evidence of the fitted data under
// the current hyperparameters (standardized scale).
func (g *GP) LogMarginalLikelihood() float64 {
	if g.chol == nil {
		return math.Inf(-1)
	}
	n := float64(len(g.y))
	return -0.5*linalg.Dot(g.y, g.alpha) - 0.5*linalg.LogDetFromChol(g.chol) - 0.5*n*math.Log(2*math.Pi)
}

// FitHyperparameters maximizes the log marginal likelihood over the kernel's
// log-hyperparameters with multi-start coordinate search (robust and
// derivative-free; the kernel matrices here are small, tens of points). The
// GP must already be fitted; the best hyperparameters are installed and the
// factorization (and kernel-matrix cache) refreshed. This is the scheduled
// full-refit path — per-step updates never come here.
func (g *GP) FitHyperparameters(rng *stats.RNG, restarts int) {
	if len(g.x) == 0 {
		return
	}
	dim := len(g.Kernel.Hyperparameters())
	evalAt := func(h []float64) float64 {
		g.Kernel.SetHyperparameters(h)
		if err := g.refactor(); err != nil {
			return math.Inf(-1)
		}
		return g.LogMarginalLikelihood()
	}
	best := append([]float64(nil), g.Kernel.Hyperparameters()...)
	bestLL := evalAt(best)

	for r := 0; r < restarts; r++ {
		var h []float64
		if r == 0 {
			h = append([]float64(nil), best...)
		} else {
			h = make([]float64, dim)
			for i := range h {
				h[i] = rng.Uniform(-2, 2) // lengthscales/variance in e^±2
			}
		}
		ll := evalAt(h)
		step := 0.5
		for pass := 0; pass < 12; pass++ {
			improved := false
			for d := 0; d < dim; d++ {
				for _, dir := range []float64{+1, -1} {
					trial := append([]float64(nil), h...)
					trial[d] += dir * step
					if trial[d] < -5 || trial[d] > 5 {
						continue
					}
					if tll := evalAt(trial); tll > ll {
						h, ll = trial, tll
						improved = true
					}
				}
			}
			if !improved {
				step /= 2
				if step < 0.02 {
					break
				}
			}
		}
		if ll > bestLL {
			bestLL = ll
			best = append([]float64(nil), h...)
		}
	}
	g.Kernel.SetHyperparameters(best)
	_ = g.refactor()
}

// LeaveOneOut returns the posterior mean and variance at x[i] of a GP
// trained on all observations except index i — the diagnostic model the
// paper uses for anomaly detection. It uses the closed-form identities
// (Rasmussen & Williams eqs. 5.10–5.12) on the existing factor: O(n²), no
// refit. The variance is the latent (noise-free) LOO variance in original
// units, matching Posterior's convention.
func (g *GP) LeaveOneOut(i int) (mean, variance float64, err error) {
	if i < 0 || i >= len(g.x) {
		return 0, 0, errors.New("gp: leave-one-out index out of range")
	}
	if g.chol == nil {
		return 0, 0, errors.New("gp: leave-one-out before fit")
	}
	ci := cholInverseDiagAt(g.chol, i)
	return g.looFrom(i, ci)
}

// LeaveOneOutAll returns LOO means and latent variances for every window
// point in one pass — the residual yardstick anomaly screening refreshes on
// each refit. O(n³)/3 total via the factor's inverse diagonal, versus the
// O(n⁴) of refitting n leave-one-out models.
func (g *GP) LeaveOneOutAll() (means, variances []float64) {
	n := len(g.x)
	means = make([]float64, n)
	variances = make([]float64, n)
	if n == 0 || g.chol == nil {
		return means, variances
	}
	diag := linalg.CholInverseDiag(g.chol)
	for i := 0; i < n; i++ {
		means[i], variances[i], _ = g.looFrom(i, diag[i])
	}
	return means, variances
}

// looFrom converts one precision-diagonal entry into original-unit LOO
// mean/variance: μ₋ᵢ = yᵢ − αᵢ/(K⁻¹)ᵢᵢ, σ²₋ᵢ = 1/(K⁻¹)ᵢᵢ − noise.
func (g *GP) looFrom(i int, ci float64) (mean, variance float64, err error) {
	if ci <= 0 || math.IsNaN(ci) {
		return 0, 0, errors.New("gp: degenerate leave-one-out precision")
	}
	muStd := g.y[i] - g.alpha[i]/ci
	varStd := 1/ci - g.Noise
	if varStd < 0 {
		varStd = 0
	}
	return muStd*g.yStd + g.yMean, varStd * g.yStd * g.yStd, nil
}

// cholInverseDiagAt returns diag(A⁻¹)ᵢ for a single index via one truncated
// forward substitution — O(n²).
func cholInverseDiagAt(l *linalg.Matrix, i int) float64 {
	n := l.Rows
	t := make([]float64, n)
	t[i] = 1 / l.At(i, i)
	s2 := t[i] * t[i]
	for j := i + 1; j < n; j++ {
		lj := l.Row(j)
		var s float64
		for k := i; k < j; k++ {
			s -= lj[k] * t[k]
		}
		t[j] = s / lj[j]
		s2 += t[j] * t[j]
	}
	return s2
}

// TrainingPoint returns observation i in original units.
func (g *GP) TrainingPoint(i int) ([]float64, float64) {
	return g.x[i], g.yRaw[i]
}
