package experiments

import (
	"fmt"

	"aquatope/internal/apps"
	"aquatope/internal/chaos"
	"aquatope/internal/core"
	"aquatope/internal/experiments/runner"
	"aquatope/internal/faas"
	"aquatope/internal/trace"
	"aquatope/internal/workflow"
)

// ChaosResult is the resilience sweep: fault rate × retry policy, reporting
// how much of the fault-induced QoS damage each policy recovers and what
// the recovery costs.
type ChaosResult struct {
	Rates    []float64
	Policies []string
	// Cell metrics are keyed "rate|policy".
	Violation map[string]float64
	Goodput   map[string]float64
	Cost      map[string]float64
	Retries   map[string]int
	Hedges    map[string]int
}

func chaosKey(rate float64, policy string) string {
	return fmt.Sprintf("%.3f|%s", rate, policy)
}

// Table renders one row per (fault rate, policy) cell.
func (r ChaosResult) Table() string {
	return formatTable(r.Rows())
}

// Rows implements Result.
func (r ChaosResult) Rows() ([]string, [][]string) {
	var rows [][]string
	base := make(map[float64]float64)
	for _, rate := range r.Rates {
		base[rate] = r.Violation[chaosKey(rate, r.Policies[0])]
	}
	for _, rate := range r.Rates {
		for _, p := range r.Policies {
			k := chaosKey(rate, p)
			recovered := "-"
			if p != r.Policies[0] && base[rate] > 0 {
				recovered = pct((base[rate] - r.Violation[k]) / base[rate])
			}
			rows = append(rows, []string{
				fmt.Sprintf("%.0f%%", rate*100),
				p,
				pct(r.Violation[k]),
				recovered,
				pct(r.Goodput[k]),
				fmt.Sprintf("%d", r.Retries[k]),
				fmt.Sprintf("%d", r.Hedges[k]),
				f0(r.Cost[k]),
			})
		}
	}
	return []string{"FaultRate", "Policy", "QoSViol", "Recovered", "Goodput", "Retries", "Hedges", "Cost"}, rows
}

// chaosApp builds the sweep's application with adequate per-function
// configurations installed up front (the sweep runs no resource search):
// enough memory to clear each stage's knee and headroom CPU, so the warm
// path comfortably meets QoS and violations measure fault damage, not
// misconfiguration. Each replication constructs its own copy — the Defaults
// assignment mutates the App, so sharing one across jobs would race.
func chaosApp() *apps.App {
	app := apps.NewMLPipeline()
	app.Defaults = map[string]faas.ResourceConfig{
		"ml-imgproc":   {CPU: 1, MemoryMB: 256},
		"ml-objdetect": {CPU: 2, MemoryMB: 2048},
		"ml-vehicle":   {CPU: 2, MemoryMB: 1024},
		"ml-human":     {CPU: 2, MemoryMB: 1024},
	}
	return app
}

// chaosTrace is the sweep workload: a dense diurnal trace that keeps the
// keep-alive pool warm, so baseline QoS violations reflect the injected
// faults rather than cold starts.
func chaosTrace(s Scale) *trace.Trace {
	return trace.Synthesize(trace.GenConfig{
		DurationMin:          s.TraceMin,
		MeanRatePerMin:       0.8,
		Diurnal:              0.6,
		CV:                   2,
		BurstEpisodesPerHour: 1,
		BurstDurationMin:     10,
		BurstMultiplier:      6,
		Seed:                 s.Seed + 77,
	})
}

// chaosScenario builds the seeded fault scenario for one sweep rate: a
// fault-rates window (init failures + mid-execution kills) covering most of
// the run plus one invoker crash in the test window.
func chaosScenario(s Scale, rate float64) chaos.Scenario {
	horizon := float64(s.TraceMin) * 60
	return chaos.Scenario{Name: fmt.Sprintf("sweep-%.2f", rate), Faults: []chaos.Fault{
		{Kind: chaos.KindFaultRates, At: 0.05 * horizon, Duration: 0.90 * horizon,
			Rates: faas.FaultRates{InitFailure: rate, ExecKill: rate}},
		{Kind: chaos.KindInvokerCrash, Invoker: 1,
			At:       float64(s.TrainMin)*60 + 0.25*(horizon-float64(s.TrainMin)*60),
			Duration: 0.10 * horizon},
	}}
}

// chaosPolicy builds the retry policy for one sweep column. The per-attempt
// timeout stays well above the QoS: a timeout kills the attempt's container
// (wedged executions do not come back), so an aggressive deadline near the
// burst-time latency destroys warm capacity and collapses the cluster.
// In-deadline recovery of slow attempts comes from the hedge instead, which
// races a duplicate without killing anything.
func chaosPolicy(polName string, qos float64) *workflow.RetryPolicy {
	switch polName {
	case "retry":
		p := workflow.DefaultRetryPolicy()
		p.Timeout = 2 * qos
		return &p
	case "retry+hedge":
		p := workflow.DefaultRetryPolicy()
		p.Timeout = 2 * qos
		p.HedgeDelay = qos / 2
		p.MaxAttempts = 4
		return &p
	}
	return nil
}

// chaosCell is one (fault rate, policy) replication's outcome.
type chaosCell struct {
	violation, goodput, cost float64
	retries, hedges          int
}

// Chaos sweeps injected fault rate × retry policy on one application under
// the provider keep-alive pool (no resource search — the sweep isolates the
// resilience layer). Each (rate, policy) cell is one replication running
// the same seeded scenario.
func Chaos(s Scale) ChaosResult {
	res := ChaosResult{
		Rates:     []float64{0.0, 0.02, 0.05, 0.10},
		Policies:  []string{"none", "retry", "retry+hedge"},
		Violation: make(map[string]float64),
		Goodput:   make(map[string]float64),
		Cost:      make(map[string]float64),
		Retries:   make(map[string]int),
		Hedges:    make(map[string]int),
	}
	var jobs []runner.Job[chaosCell]
	for _, rate := range res.Rates {
		rate := rate
		for _, polName := range res.Policies {
			polName := polName
			jobs = append(jobs, runner.Job[chaosCell]{
				Cell: fmt.Sprintf("rate%.2f/%s", rate, polName),
				Run: func(runner.Ctx) (chaosCell, error) {
					app := chaosApp()
					out, err := core.Run(core.Config{
						Components:   []core.Component{{App: app, Trace: chaosTrace(s)}},
						TrainMin:     s.TrainMin,
						PoolFactory:  core.KeepAlivePoolFactory(600),
						RuntimeNoise: runtimeNoise,
						Chaos:        chaosScenario(s, rate),
						Resilience:   chaosPolicy(polName, app.QoS),
						Seed:         s.Seed,
					})
					if err != nil {
						return chaosCell{}, err
					}
					return chaosCell{
						violation: out.QoSViolationRate(),
						goodput:   out.Goodput(),
						cost:      out.CPUTime() + out.MemTime(),
						retries:   out.Retries(),
						hedges:    out.Hedges(),
					}, nil
				}})
		}
	}
	cells := runner.MustRun(s.engine("chaos"), jobs)

	ji := 0
	for _, rate := range res.Rates {
		for _, polName := range res.Policies {
			k := chaosKey(rate, polName)
			res.Violation[k] = cells[ji].violation
			res.Goodput[k] = cells[ji].goodput
			res.Cost[k] = cells[ji].cost
			res.Retries[k] = cells[ji].retries
			res.Hedges[k] = cells[ji].hedges
			ji++
		}
	}
	return res
}
