// Package aquatope_bench exposes every evaluation experiment (§8 of the
// paper) as a testing.B benchmark, one per table/figure, so
//
//	go test -bench=. -benchmem
//
// regenerates the full evaluation at quick scale. Each benchmark reports
// its headline metrics through b.ReportMetric, so orderings are visible
// straight from the bench output; run cmd/aquabench for the full tables.
package aquatope_bench

import (
	"testing"

	"aquatope/internal/experiments"
)

// benchScale is deliberately small: benchmarks demonstrate and measure the
// harnesses; cmd/aquabench -scale full reproduces the paper-scale runs.
var benchScale = experiments.Scale{
	TraceMin: 2160, TrainMin: 1440,
	Ensemble: 3, Repeats: 2, SearchBudget: 36, ModelEpochs: 4, Seed: 1,
}

// tinyScale is for the heavier neural-model experiments.
var tinyScale = experiments.Scale{
	TraceMin: 1560, TrainMin: 1440,
	Ensemble: 2, Repeats: 1, SearchBudget: 12, ModelEpochs: 2, Seed: 1,
}

func BenchmarkTable1Smape(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table1(tinyScale)
		b.ReportMetric(r.SMAPE["aquatope"], "aquatope-smape-%")
		b.ReportMetric(r.SMAPE["keepalive"], "keepalive-smape-%")
	}
}

func BenchmarkFig9ColdStarts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig9(tinyScale)
		b.ReportMetric(r.ColdRate["aquatope"]*100, "aquatope-cold-%")
		b.ReportMetric(r.ColdRate["keepalive"]*100, "keepalive-cold-%")
		b.ReportMetric(r.RelMemPct["aquatope"], "aquatope-mem-%keep")
	}
}

func BenchmarkFig10ColdVsCV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig10(tinyScale)
		last := len(r.CVs) - 1
		b.ReportMetric(r.Aquatope[last]*100, "aquatope-cold-highCV-%")
		b.ReportMetric(r.IceBrk[last]*100, "icebreaker-cold-highCV-%")
	}
}

func BenchmarkFig11MemorySeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig11(tinyScale)
		b.ReportMetric(r.AquatopeCold*100, "aquatope-cold-%")
		b.ReportMetric(r.AquaLiteCold*100, "aqualite-cold-%")
	}
}

func BenchmarkFig12Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig12(benchScale)
		// Final-budget cost of the chain workflow, % oracle.
		if c := r.Curves["chain3"]; c != nil {
			b.ReportMetric(c["aquatope"][len(c["aquatope"])-1]*100, "aquatope-chain3-%oracle")
			b.ReportMetric(c["random"][len(c["random"])-1]*100, "random-chain3-%oracle")
		}
	}
}

func BenchmarkFig13FinalCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig13(benchScale)
		if m := r.CPUPct["chain3"]; m != nil {
			b.ReportMetric(m["aquatope"], "aquatope-cpu-%oracle")
			b.ReportMetric(m["autoscale"], "autoscale-cpu-%oracle")
		}
	}
}

func BenchmarkFig14aChainLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig14a(benchScale)
		last := len(r.Labels) - 1
		b.ReportMetric(r.Aquatope[last], "aquatope-N5-%oracle")
		b.ReportMetric(r.CLITE[last], "clite-N5-%oracle")
	}
}

func BenchmarkFig14bExecVariability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig14b(benchScale)
		last := len(r.Labels) - 1
		b.ReportMetric(r.Aquatope[last], "aquatope-cv1-%oracle")
		b.ReportMetric(r.CLITE[last], "clite-cv1-%oracle")
	}
}

func BenchmarkFig15NoiseRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig15(benchScale)
		last := len(r.Levels) - 1
		b.ReportMetric(r.Aquatope[last], "aquatope-noise4-%oracle")
		b.ReportMetric(r.CLITE[last], "clite-noise4-%oracle")
	}
}

func BenchmarkFig16Retraining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig16(benchScale)
		b.ReportMetric(float64(r.ChangeEvents), "change-events")
		if rec := r.RecoverySamples(50); rec >= 0 {
			b.ReportMetric(float64(rec), "recovery-samples")
		}
	}
}

func BenchmarkFig17PoolAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig17(tinyScale)
		b.ReportMetric(r.RMOnlyCPU/r.FullCPU*100, "rmonly-cpu-%full")
		b.ReportMetric(r.RMOnlyMem/r.FullMem*100, "rmonly-mem-%full")
	}
}

func BenchmarkFig18EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig18(tinyScale)
		b.ReportMetric(r.Violation["aquatope"]*100, "aquatope-viol-%")
		b.ReportMetric(r.Violation["autoscale"]*100, "autoscale-viol-%")
		b.ReportMetric(r.CPUTime["aquatope"]/r.CPUTime["autoscale"]*100, "aquatope-cpu-%auto")
	}
}
