package chaos

import (
	"bytes"
	"testing"

	"aquatope/internal/faas"
	"aquatope/internal/sim"
	"aquatope/internal/telemetry"
	"aquatope/internal/workflow"
)

// runScenario executes a small workflow stream under a chaos scenario and
// returns the full span dump plus completion bookkeeping.
func runScenario(t *testing.T, seed int64) (jsonl []byte, submitted, completed, failed int, pending int) {
	t.Helper()
	eng := sim.NewEngine()
	cl := faas.NewCluster(eng, faas.Config{Invokers: 4, CPUPerInvoker: 8, MemoryPerInvokerMB: 8192, Seed: seed})
	col := telemetry.NewCollector()
	cl.SetTracer(col)
	m := faas.DefaultSyntheticModel()
	m.BaseExecSec = 1
	m.ColdInitSec = 0.5
	if err := cl.RegisterFunction(faas.FunctionSpec{Name: "f", Model: m}, faas.ResourceConfig{CPU: 1, MemoryMB: 512}); err != nil {
		t.Fatal(err)
	}
	pol := workflow.DefaultRetryPolicy()
	pol.Timeout = 30
	ex := workflow.NewExecutor(cl)
	ex.Policy = &pol
	ex.Seed = seed
	scn := Random(120, 4, 2, seed)
	New(cl, scn).Arm()
	d := workflow.Chain("c", "f", "f", "f")
	for i := 0; i < 40; i++ {
		at := float64(i) * 3
		eng.Schedule(at, func() {
			submitted++
			if err := ex.Execute(d, 1, nil, func(r workflow.Result) {
				completed++
				if r.Failed {
					failed++
				}
			}); err != nil {
				t.Error(err)
			}
		})
	}
	eng.Run()
	cl.Flush()
	var buf bytes.Buffer
	if err := col.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), submitted, completed, failed, eng.Pending()
}

// TestSameSeedByteIdenticalSpans: two same-seed chaos runs produce
// byte-identical span JSONL dumps — the subsystem's core determinism
// guarantee.
func TestSameSeedByteIdenticalSpans(t *testing.T) {
	a, _, _, _, _ := runScenario(t, 42)
	b, _, _, _, _ := runScenario(t, 42)
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed span dumps differ (%d vs %d bytes)", len(a), len(b))
	}
	c, _, _, _, _ := runScenario(t, 43)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical dumps — scenario not seeded")
	}
}

// TestNoStuckWorkflowsUnderChaos: every submitted workflow terminates (the
// resilience layer turns faults into retries or fail-fast skips, never
// hangs) and the engine fully drains.
func TestNoStuckWorkflowsUnderChaos(t *testing.T) {
	dump, submitted, completed, failed, pending := runScenario(t, 7)
	if submitted == 0 || completed != submitted {
		t.Fatalf("completed %d of %d workflows", completed, submitted)
	}
	if pending != 0 {
		t.Fatalf("%d events stuck in the engine", pending)
	}
	spans, err := telemetry.ReadJSONL(bytes.NewReader(dump))
	if err != nil {
		t.Fatal(err)
	}
	kinds := make(map[string]int)
	for _, s := range spans {
		kinds[s.Kind]++
	}
	if kinds[telemetry.KindChaosFault] == 0 {
		t.Fatal("no chaos.fault spans emitted")
	}
	if kinds[telemetry.KindRetry] == 0 {
		t.Fatal("no invocation.retry spans emitted")
	}
	t.Logf("submitted=%d failed=%d chaos.fault=%d retries=%d",
		submitted, failed, kinds[telemetry.KindChaosFault], kinds[telemetry.KindRetry])
}

// TestBuiltinScenarios: every advertised name resolves, scales to the
// horizon, and unknown names are rejected.
func TestBuiltinScenarios(t *testing.T) {
	for _, name := range Names() {
		scn, ok := Builtin(name, 600, 1)
		if !ok {
			t.Fatalf("builtin %q not found", name)
		}
		if scn.Empty() {
			t.Fatalf("builtin %q is empty", name)
		}
		for _, f := range scn.Faults {
			if f.At < 0 || f.At > 600 {
				t.Fatalf("builtin %q fault at %v outside horizon", name, f.At)
			}
		}
	}
	if _, ok := Builtin("nope", 600, 1); ok {
		t.Fatal("unknown scenario accepted")
	}
}
