package lint

import (
	"go/ast"
)

// wallclockFuncs are the package time functions that read or wait on the
// real clock. A simulation-driven component calling any of them desyncs
// from the engine's virtual clock and breaks same-seed reproducibility.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"NewTimer":  true,
	"NewTicker": true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
}

var wallclockAnalyzer = &Analyzer{
	Name: "wallclock",
	Doc: "forbid wall-clock time (time.Now/Since/Sleep/timers) in " +
		"simulation-driven code; all time must come from the event " +
		"engine's virtual clock",
	Run: runWallclock,
}

func runWallclock(prog *Program, pkg *Package, file *File, rule Rule, report Reporter) {
	names, dot, spec := importNames(file.AST, "time")
	if dot {
		report(spec.Pos(), "dot-import of time hides wall-clock calls from aqualint; import it qualified")
		return
	}
	if len(names) == 0 {
		return
	}
	ast.Inspect(file.AST, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || !names[id.Name] || !wallclockFuncs[sel.Sel.Name] {
			return true
		}
		report(call.Pos(), "time.%s reads the wall clock; simulation time must come from the engine's virtual clock (sim.Engine.Now)", sel.Sel.Name)
		return true
	})
}
