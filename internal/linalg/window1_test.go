package linalg

import (
	"math"
	"testing"
)

// TestExtendFromEmptyIgnoresJitter pins the window-size-1 edge: extending
// an empty factor must match a cold 1×1 factorization (which starts at
// jitter 0) even when the caller passes a stale jitter from a previous,
// larger factorization.
func TestExtendFromEmptyIgnoresJitter(t *testing.T) {
	const d = 2.5
	cold, err := Cholesky(FromRows([][]float64{{d}}))
	if err != nil {
		t.Fatal(err)
	}
	for _, jitter := range []float64{0, 1e-10, 1e-6, 1e-4} {
		out, ok := ExtendCholesky(NewMatrix(0, 0), nil, d, jitter)
		if !ok {
			t.Fatalf("jitter %g: extend failed", jitter)
		}
		if out.Rows != 1 || out.Cols != 1 || out.At(0, 0) != cold.At(0, 0) {
			t.Fatalf("jitter %g: extend-from-empty %v != cold %v",
				jitter, out.At(0, 0), cold.At(0, 0))
		}
		ip := NewMatrix(0, 0)
		if !ExtendCholeskyInPlace(ip, nil, d, jitter) {
			t.Fatalf("jitter %g: in-place extend failed", jitter)
		}
		if ip.Rows != 1 || ip.At(0, 0) != cold.At(0, 0) {
			t.Fatalf("jitter %g: in-place extend-from-empty %v != cold %v",
				jitter, ip.At(0, 0), cold.At(0, 0))
		}
	}
}

// TestDropToEmptyThenExtendEqualsCold drives the full window-1 cycle at the
// linalg layer: factor a 1×1, drop to 0×0, extend back to 1×1 — the result
// must equal a cold factorization of the new point, through both the
// allocating and in-place variants.
func TestDropToEmptyThenExtendEqualsCold(t *testing.T) {
	l, err := Cholesky(FromRows([][]float64{{4}}))
	if err != nil {
		t.Fatal(err)
	}
	dropped := DropLeadingCholesky(l)
	if dropped.Rows != 0 || dropped.Cols != 0 || len(dropped.Data) != 0 {
		t.Fatalf("drop 1x1 -> %dx%d", dropped.Rows, dropped.Cols)
	}
	const d2 = 9.0
	out, ok := ExtendCholesky(dropped, nil, d2, 1e-5)
	if !ok {
		t.Fatal("extend after drop failed")
	}
	if out.At(0, 0) != math.Sqrt(d2) {
		t.Fatalf("extend after drop: %v != %v", out.At(0, 0), math.Sqrt(d2))
	}

	ip, err := Cholesky(FromRows([][]float64{{4}}))
	if err != nil {
		t.Fatal(err)
	}
	v := make([]float64, 1)
	DropLeadingCholeskyInPlace(ip, v)
	if ip.Rows != 0 || len(ip.Data) != 0 {
		t.Fatalf("in-place drop 1x1 -> %dx%d", ip.Rows, ip.Cols)
	}
	if !ExtendCholeskyInPlace(ip, nil, d2, 1e-5) {
		t.Fatal("in-place extend after drop failed")
	}
	if ip.At(0, 0) != math.Sqrt(d2) {
		t.Fatalf("in-place extend after drop: %v != %v", ip.At(0, 0), math.Sqrt(d2))
	}
}

// TestShrinkLeading1x1 exercises the 1×1 → 0×0 matrix shrink and the
// matching grow-back, the kmat side of the window-1 cycle.
func TestShrinkLeading1x1(t *testing.T) {
	m := FromRows([][]float64{{7}})
	m.ShrinkLeadingInPlace()
	if m.Rows != 0 || m.Cols != 0 || len(m.Data) != 0 {
		t.Fatalf("shrink 1x1 -> %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	m.GrowBorderInPlace(nil, 11)
	if m.Rows != 1 || m.At(0, 0) != 11 {
		t.Fatalf("grow back: %dx%d %v", m.Rows, m.Cols, m.Data)
	}
}
