package faas

import (
	"strconv"

	"aquatope/internal/telemetry"
)

// invokerUtil accumulates Fifer-style utilization time integrals for one
// invoker. Each field integrates an instantaneous occupancy quantity over
// simulated time; accrueUtil advances the integrals to "now" and must run
// immediately before any mutation of the quantities it integrates, so every
// segment is weighted by the state that actually held over it.
type invokerUtil struct {
	// lastAt is the simulation time the integrals were last advanced to.
	lastAt float64
	// busyS is wall time with at least one invocation executing.
	busyS float64
	// activeS is wall time with at least one container provisioned
	// (the denominator for bin-packing efficiency: memory capacity only
	// counts as wasted while the invoker was powering containers at all).
	activeS float64
	// cpuCoreS is ∫ busy-core-count dt (core-seconds of execution demand).
	cpuCoreS float64
	// memMBs is ∫ provisioned-container-memory dt (MB-seconds).
	memMBs float64
	// warmSpareS is ∫ idle-warm-container-count dt: capacity held ready
	// but unused — the quantity the pre-warm pool trades against cold
	// starts.
	warmSpareS float64
	// created/killed count container churn on this invoker.
	created int
	killed  int
}

// accrueUtil integrates an invoker's current occupancy up to the present
// simulation time. Callers mutating cpuBusy, memUsedMB or a resident
// container's state invoke it first.
func (c *Cluster) accrueUtil(iv *Invoker) {
	now := c.eng.Now()
	u := &iv.util
	dt := now - u.lastAt
	if dt > 0 {
		if iv.cpuBusy > 0 {
			u.busyS += dt
		}
		if len(iv.containers) > 0 {
			u.activeS += dt
		}
		u.cpuCoreS += iv.cpuBusy * dt
		u.memMBs += iv.memUsedMB * dt
		idle := 0
		for ct := range iv.containers {
			if ct.state == stateIdle {
				idle++
			}
		}
		u.warmSpareS += float64(idle) * dt
	}
	u.lastAt = now
}

// flushUtilization advances every invoker's integrals to now and publishes
// them as registry gauges (per-invoker names suffixed ".<id>"), plus the
// fleet-level bin-packing efficiency and CPU utilization gauges. Gauges are
// idempotent under Set, so flushing twice — or merging parallel replication
// registries — is safe.
func (c *Cluster) flushUtilization(now float64) {
	reg := c.metrics.Registry()
	var memMBs, capMBs, coreS, capCoreS float64
	for _, iv := range c.invokers {
		c.accrueUtil(iv)
		u := iv.util
		id := strconv.Itoa(iv.ID)
		reg.Gauge(telemetry.MetricInvokerBusyS + "." + id).Set(u.busyS)
		reg.Gauge(telemetry.MetricInvokerIdleS + "." + id).Set(u.activeS - u.busyS)
		reg.Gauge(telemetry.MetricInvokerActiveS + "." + id).Set(u.activeS)
		reg.Gauge(telemetry.MetricInvokerCPUCoreS + "." + id).Set(u.cpuCoreS)
		reg.Gauge(telemetry.MetricInvokerMemGBs + "." + id).Set(u.memMBs / 1024)
		reg.Gauge(telemetry.MetricInvokerWarmSpareS + "." + id).Set(u.warmSpareS)
		reg.Gauge(telemetry.MetricInvokerCreated + "." + id).Set(float64(u.created))
		reg.Gauge(telemetry.MetricInvokerKilled + "." + id).Set(float64(u.killed))
		memMBs += u.memMBs
		capMBs += iv.MemoryCapacityMB * u.activeS
		coreS += u.cpuCoreS
		capCoreS += iv.CPUCapacity * now
	}
	binpack := 0.0
	if capMBs > 0 {
		binpack = memMBs / capMBs
	}
	cpuUtil := 0.0
	if capCoreS > 0 {
		cpuUtil = coreS / capCoreS
	}
	reg.Gauge(telemetry.MetricBinPackEfficiency).Set(binpack)
	reg.Gauge(telemetry.MetricFleetCPUUtil).Set(cpuUtil)
}

// OpenBreakers returns how many invokers currently hold an open circuit
// breaker (0 when breakers are disabled). Pool decisions record it as part
// of their audit context: an open breaker shrinks the schedulable fleet, so
// the same demand forecast can produce different placements.
func (c *Cluster) OpenBreakers() int {
	n := 0
	for _, iv := range c.invokers {
		if iv.breaker != nil && iv.breaker.state == breakerOpen {
			n++
		}
	}
	return n
}
