package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath   string
	Dir          string
	Export       string
	Standard     bool
	DepOnly      bool
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// listResult is one decoded `go list -deps -export -json` invocation:
// export-data paths for every dependency plus the target package list.
type listResult struct {
	exports map[string]string
	targets []listPackage
}

// The go list invocation dominates a cold lint run (it may rebuild
// export data), so its decoded output is memoized per (dir, patterns)
// for the life of the process: cmd/aqualint loads once anyway, but the
// test suite calls Load repeatedly and shares a single exec.
var (
	listCacheMu sync.Mutex
	listCache   = make(map[string]*listResult)
)

func goList(dir string, patterns []string) (*listResult, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		abs = dir
	}
	key := abs + "\x00" + strings.Join(patterns, "\x00")
	listCacheMu.Lock()
	cached := listCache[key]
	listCacheMu.Unlock()
	if cached != nil {
		return cached, nil
	}

	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	res := &listResult{exports: make(map[string]string)}
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Export != "" {
			res.exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			res.targets = append(res.targets, p)
		}
	}

	listCacheMu.Lock()
	listCache[key] = res
	listCacheMu.Unlock()
	return res, nil
}

// Load resolves patterns (e.g. "./...") in dir to parsed, type-checked
// packages ready for analysis. It shells out to the go command once per
// process — `go list -deps -export -json` — to enumerate packages and
// obtain compiled export data for every dependency, parses all source
// files concurrently, then type-checks the target packages from source
// against that export data. This keeps the tool on the standard library
// alone: no golang.org/x/tools.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	list, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	files, err := parseAll(fset, list.targets)
	if err != nil {
		return nil, err
	}

	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := list.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for i, t := range list.targets {
		pkg, err := buildPackage(fset, imp, t, files[i])
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// parseJob is one source file to parse; target indexes listResult.targets.
type parseJob struct {
	target int
	path   string
	test   bool
}

// parseAll parses every file of every target concurrently (FileSet
// methods are synchronized, so a shared fset is safe) and returns the
// parsed files grouped per target in deterministic source order. Only
// the type-check stays sequential: the gc export-data importer does not
// document thread safety.
func parseAll(fset *token.FileSet, targets []listPackage) ([][]*File, error) {
	var jobs []parseJob
	for i, t := range targets {
		for _, name := range t.GoFiles {
			jobs = append(jobs, parseJob{target: i, path: filepath.Join(t.Dir, name)})
		}
		for _, name := range t.TestGoFiles {
			jobs = append(jobs, parseJob{target: i, path: filepath.Join(t.Dir, name), test: true})
		}
		for _, name := range t.XTestGoFiles {
			jobs = append(jobs, parseJob{target: i, path: filepath.Join(t.Dir, name), test: true})
		}
	}

	parsed := make([]*File, len(jobs))
	errs := make([]error, len(jobs))
	work := make(chan int)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				j := jobs[i]
				f, err := parser.ParseFile(fset, j.path, nil, parser.ParseComments|parser.SkipObjectResolution)
				if err != nil {
					errs[i] = fmt.Errorf("parsing %s: %v", j.path, err)
					continue
				}
				parsed[i] = &File{Name: j.path, AST: f, Test: j.test}
			}
		}()
	}
	for i := range jobs {
		work <- i
	}
	close(work)
	wg.Wait()

	files := make([][]*File, len(targets))
	for i := range jobs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		files[jobs[i].target] = append(files[jobs[i].target], parsed[i])
	}
	return files, nil
}

func buildPackage(fset *token.FileSet, imp types.Importer, t listPackage, files []*File) (*Package, error) {
	pkg := &Package{PkgPath: t.ImportPath, Fset: fset, Files: files}
	var compiled []*ast.File
	for _, f := range files {
		if !f.Test {
			compiled = append(compiled, f.AST)
		}
	}
	if len(compiled) > 0 {
		info := newTypesInfo()
		conf := types.Config{Importer: imp}
		if _, err := conf.Check(t.ImportPath, fset, compiled, info); err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
		}
		pkg.Info = info
	}
	return pkg, nil
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}
