package bayesnn

import (
	"math"
	"testing"

	"aquatope/internal/stats"
)

// TestPredictDeltaAnchorsAtPersistence: an untrained-ish model with
// PredictDelta should predict near the last observed count rather than
// near zero.
func TestPredictDeltaAnchorsAtPersistence(t *testing.T) {
	cfg := DefaultConfig(1, 0)
	cfg.EncoderHidden = 6
	cfg.DecoderHidden = 4
	cfg.EncoderLayers = 1
	cfg.PredHidden = []int{6}
	cfg.EncoderEpochs = 2
	cfg.PredEpochs = 6
	cfg.MCSamples = 4
	cfg.Horizon = 2
	m := New(cfg)
	// Random-walk series: optimal one-step forecast is the last value.
	g := stats.NewRNG(1)
	series := make([]float64, 300)
	series[0] = 50
	for i := 1; i < len(series); i++ {
		series[i] = math.Max(0, series[i-1]+g.Normal(0, 2))
	}
	noFeat := func(int) []float64 { return nil }
	m.Train(BuildSamples(series, 10, 2, noFeat, noFeat))
	samples := BuildSamples(series, 10, 2, noFeat, noFeat)
	var mae float64
	for _, s := range samples[250:] {
		p := m.PredictDeterministic(s.History, s.External)
		mae += math.Abs(p - s.Target)
	}
	mae /= float64(len(samples[250:]))
	// The persistence forecast has MAE ~ E|N(0,2)| ≈ 1.6; delta anchoring
	// should keep us in that regime rather than regressing to the mean
	// (which would give MAE on the order of the series' spread).
	if mae > 6 {
		t.Fatalf("delta-anchored MAE %v too large", mae)
	}
}

// TestHeteroscedasticUncertaintyScalesWithMean: higher predicted activity
// should carry wider intervals than predicted-quiet periods.
func TestHeteroscedasticUncertaintyScalesWithMean(t *testing.T) {
	cfg := DefaultConfig(1, 1)
	cfg.EncoderHidden = 8
	cfg.DecoderHidden = 4
	cfg.EncoderLayers = 1
	cfg.PredHidden = []int{8}
	cfg.EncoderEpochs = 3
	cfg.PredEpochs = 20
	cfg.MCSamples = 8
	cfg.Horizon = 2
	cfg.HeteroscedasticCounts = true
	cfg.PredictDelta = false
	m := New(cfg)
	g := stats.NewRNG(2)
	// Two regimes keyed by the external feature: quiet (0) and busy (~9
	// with Poisson-ish spread).
	var samples []Sample
	for i := 0; i < 400; i++ {
		busy := i%2 == 1
		ext := 0.0
		target := 0.0
		if busy {
			ext = 1
			target = float64(g.Poisson(9))
		}
		hist := make([][]float64, 6)
		for t := range hist {
			hist[t] = []float64{target * g.Float64()}
		}
		samples = append(samples, Sample{History: hist, Future: []float64{0, 0},
			External: []float64{ext}, Target: target})
	}
	m.Train(samples)
	quiet := m.Predict(samples[0].History, []float64{0})
	busy := m.Predict(samples[1].History, []float64{1})
	if busy.Mean <= quiet.Mean {
		t.Fatalf("busy mean %v should exceed quiet mean %v", busy.Mean, quiet.Mean)
	}
	if busy.Std <= quiet.Std {
		t.Fatalf("busy std %v should exceed quiet std %v (heteroscedastic)", busy.Std, quiet.Std)
	}
}
