package runner

import "sync"

// Stats is the accumulated timing of one experiment's replication batches.
type Stats struct {
	// Replications counts submitted jobs across all batches.
	Replications int `json:"replications"`
	// WallSeconds is real elapsed time spent inside Run.
	WallSeconds float64 `json:"wall_seconds"`
	// BusySeconds sums each replication's individual wall time; the ratio
	// BusySeconds/WallSeconds is the effective speedup the worker pool
	// achieved over a serial run.
	BusySeconds float64 `json:"busy_seconds"`
}

// Entry is one experiment's row in the exported bench report.
type Entry struct {
	ID string `json:"id"`
	Stats
	// Speedup is BusySeconds/WallSeconds (1.0 on a serial run).
	Speedup float64 `json:"speedup"`
}

// Bench collects per-experiment engine timing across a whole aquabench run.
// It is safe for concurrent use and nil-safe, so a disabled bench costs one
// branch per batch.
type Bench struct {
	mu    sync.Mutex
	order []string
	stats map[string]*Stats
}

// NewBench returns an empty bench.
func NewBench() *Bench {
	return &Bench{stats: make(map[string]*Stats)}
}

// Record accumulates one batch's timing under the experiment id. Nil-safe.
func (b *Bench) Record(experiment string, replications int, wallSeconds, busySeconds float64) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	s, ok := b.stats[experiment]
	if !ok {
		s = &Stats{}
		b.stats[experiment] = s
		b.order = append(b.order, experiment)
	}
	s.Replications += replications
	s.WallSeconds += wallSeconds
	s.BusySeconds += busySeconds
}

// Entries returns one entry per recorded experiment, in first-recorded
// order, with the speedup computed.
func (b *Bench) Entries() []Entry {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Entry, 0, len(b.order))
	for _, id := range b.order {
		s := b.stats[id]
		e := Entry{ID: id, Stats: *s}
		if s.WallSeconds > 0 {
			e.Speedup = s.BusySeconds / s.WallSeconds
		}
		out = append(out, e)
	}
	return out
}
