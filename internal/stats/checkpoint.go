package stats

import "aquatope/internal/checkpoint"

// Snapshot serializes the generator as (seed, draw count). Read-only.
func (g *RNG) Snapshot(enc *checkpoint.Encoder) {
	enc.String("rng")
	enc.I64(g.seed)
	enc.U64(g.src.n)
}

// Restore resets the generator to a snapshotted position: fresh source at
// the recorded seed, fast-forwarded by the recorded draw count.
func (g *RNG) Restore(dec *checkpoint.Decoder) error {
	dec.Expect("rng")
	seed := dec.I64()
	draws := dec.U64()
	if err := dec.Err(); err != nil {
		return err
	}
	*g = *NewRNG(seed)
	g.Skip(draws)
	return nil
}
