package faas

import (
	"testing"
	"testing/quick"

	"aquatope/internal/sim"
	"aquatope/internal/stats"
)

// overloadCluster builds a tiny cluster with a bounded queue: one invoker,
// one slot of concurrency, so work queues immediately.
func overloadCluster(t *testing.T, queueLimit int, adm AdmissionPolicy) (*sim.Engine, *Cluster) {
	t.Helper()
	eng := sim.NewEngine()
	cl := NewCluster(eng, Config{
		Invokers: 1, CPUPerInvoker: 4, MemoryPerInvokerMB: 1024,
		DefaultKeepAlive: 60, QueueLimit: queueLimit, Admission: adm, Seed: 1,
	})
	register(t, cl, "f", &testModel{init: 1, exec: 1},
		ResourceConfig{CPU: 1, MemoryMB: 256, Concurrency: 1})
	return eng, cl
}

func TestQueueLimitRejectNew(t *testing.T) {
	eng, cl := overloadCluster(t, 2, AdmitRejectNew)
	var results []InvocationResult
	collect := func(r InvocationResult) { results = append(results, r) }
	// 1 running + 2 queued fit; the 4th and 5th must be shed.
	for i := 0; i < 5; i++ {
		if err := cl.Invoke("f", 1, collect); err != nil {
			t.Fatal(err)
		}
	}
	if got := cl.QueueDepth("f"); got != 2 {
		t.Fatalf("queue depth = %d, want 2", got)
	}
	shed := 0
	for _, r := range results {
		if r.Outcome != OutcomeShed || r.FailureReason != "queue-full" {
			t.Fatalf("unexpected early result %+v", r)
		}
		shed++
	}
	if shed != 2 {
		t.Fatalf("sheds before run = %d, want 2", shed)
	}
	eng.RunUntil(100)
	if len(results) != 5 {
		t.Fatalf("results = %d, want 5", len(results))
	}
	ok := 0
	for _, r := range results {
		if r.OK() {
			ok++
		}
	}
	if ok != 3 {
		t.Fatalf("successes = %d, want 3", ok)
	}
	if cl.Metrics().ShedInvocations() != 2 {
		t.Fatalf("shed metric = %d, want 2", cl.Metrics().ShedInvocations())
	}
	if cl.Metrics().Invocations() != 5 {
		t.Fatalf("total invocations = %d, want 5", cl.Metrics().Invocations())
	}
}

func TestAdmissionShedOldest(t *testing.T) {
	eng, cl := overloadCluster(t, 2, AdmitShedOldest)
	type tagged struct {
		tag int
		res InvocationResult
	}
	var results []tagged
	invoke := func(tag int) {
		if err := cl.Invoke("f", 1, func(r InvocationResult) {
			results = append(results, tagged{tag, r})
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		invoke(i)
	}
	// 0 runs; 1,2 queue; 3 arrives → 1 (oldest queued) shed, 3 admitted;
	// 4 arrives → 2 shed, 4 admitted.
	if len(results) != 2 {
		t.Fatalf("early sheds = %d, want 2", len(results))
	}
	for i, want := range []int{1, 2} {
		if results[i].tag != want || results[i].res.Outcome != OutcomeShed ||
			results[i].res.FailureReason != "shed-oldest" {
			t.Fatalf("shed %d = tag %d (%s), want tag %d", i, results[i].tag,
				results[i].res.FailureReason, want)
		}
	}
	eng.RunUntil(100)
	var okTags []int
	for _, r := range results {
		if r.res.OK() {
			okTags = append(okTags, r.tag)
		}
	}
	// FIFO among survivors: 0 then 3 then 4.
	if len(okTags) != 3 || okTags[0] != 0 || okTags[1] != 3 || okTags[2] != 4 {
		t.Fatalf("completion order %v, want [0 3 4]", okTags)
	}
}

func TestAdmissionDeadlineAware(t *testing.T) {
	eng, cl := overloadCluster(t, 2, AdmitDeadlineAware)
	var results []InvocationResult
	collect := func(r InvocationResult) { results = append(results, r) }
	// Prime the service-time EWMA with one isolated cold run (init 1 + exec
	// 1 → exec EWMA 1).
	if err := cl.Invoke("f", 1, collect); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(10)
	results = nil
	// Refill: one running, two queued — one with a deadline it cannot make
	// (the running invocation alone outlasts it), one without a deadline.
	if err := cl.Invoke("f", 1, collect); err != nil { // runs warm, 1s
		t.Fatal(err)
	}
	if err := cl.InvokeOpts("f", InvokeOptions{InputSize: 1, Timeout: 0.5}, collect); err != nil {
		t.Fatal(err)
	}
	if err := cl.Invoke("f", 1, collect); err != nil {
		t.Fatal(err)
	}
	// Queue is full (2); the next arrival triggers deadline-aware shedding:
	// the doomed 0.5s-deadline entry goes, the newcomer is admitted.
	if err := cl.Invoke("f", 1, collect); err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Outcome != OutcomeShed ||
		results[0].FailureReason != "deadline-unmeetable" {
		t.Fatalf("expected one deadline-unmeetable shed, got %+v", results)
	}
	// With nothing doomed left, another overflow falls back to reject-new.
	if err := cl.Invoke("f", 1, collect); err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[1].FailureReason != "queue-full" {
		t.Fatalf("expected queue-full fallback, got %+v", results)
	}
	eng.RunUntil(100)
	okN := 0
	for _, r := range results {
		if r.OK() {
			okN++
		}
	}
	if okN != 3 {
		t.Fatalf("successes = %d, want 3", okN)
	}
}

func TestBreakerStateMachine(t *testing.T) {
	eng := sim.NewEngine()
	cl := NewCluster(eng, Config{
		Invokers: 1, CPUPerInvoker: 8, MemoryPerInvokerMB: 4096,
		DefaultKeepAlive: 300, Seed: 1,
		Breaker: BreakerConfig{Enabled: true, Window: 8, ErrorThreshold: 0.5,
			MinSamples: 4, OpenSec: 30, HalfOpenProbes: 2},
	})
	register(t, cl, "f", &testModel{init: 0.5, exec: 1}, ResourceConfig{CPU: 1, MemoryMB: 256})
	if got := cl.BreakerState(0); got != "closed" {
		t.Fatalf("initial state %q", got)
	}
	// Every execution killed: errors accumulate until the breaker opens.
	cl.SetFaultRates(FaultRates{ExecKill: 1})
	for i := 0; i < 6; i++ {
		at := float64(i) * 3
		eng.Schedule(at, func() { _ = cl.Invoke("f", 1, nil) })
	}
	eng.RunUntil(20)
	if got := cl.BreakerState(0); got != "open" {
		t.Fatalf("state after failures = %q, want open", got)
	}
	if cl.Metrics().BreakerOpens() != 1 {
		t.Fatalf("breaker opens = %d, want 1", cl.Metrics().BreakerOpens())
	}
	// While open, the sole invoker is gated: new work queues instead of
	// spawning.
	depthBefore := cl.QueueDepth("f")
	_ = cl.Invoke("f", 1, nil)
	if cl.QueueDepth("f") != depthBefore+1 {
		t.Fatal("open breaker should force queuing")
	}
	// Past the cool-down the breaker half-opens and probes; with faults
	// cleared, consecutive successes close it and the queue drains.
	cl.SetFaultRates(FaultRates{})
	var completed int
	eng.Schedule(60, func() {
		_ = cl.Invoke("f", 1, func(r InvocationResult) {
			if r.OK() {
				completed++
			}
		})
	})
	eng.RunUntil(300)
	if got := cl.BreakerState(0); got != "closed" {
		t.Fatalf("state after recovery = %q, want closed", got)
	}
	if cl.Metrics().BreakerCloses() != 1 {
		t.Fatalf("breaker closes = %d, want 1", cl.Metrics().BreakerCloses())
	}
	if completed != 1 {
		t.Fatalf("post-recovery invocation did not complete")
	}
}

func TestBreakerResetOnRecover(t *testing.T) {
	eng := sim.NewEngine()
	cl := NewCluster(eng, Config{
		Invokers: 2, CPUPerInvoker: 8, MemoryPerInvokerMB: 4096, Seed: 1,
		Breaker: BreakerConfig{Enabled: true, Window: 4, ErrorThreshold: 0.5,
			MinSamples: 2, OpenSec: 1e6, HalfOpenProbes: 2},
	})
	register(t, cl, "f", &testModel{init: 0.5, exec: 5}, ResourceConfig{CPU: 1, MemoryMB: 256})
	// Run work, then crash the hosting invoker: the aborts feed its breaker
	// until it opens.
	for i := 0; i < 4; i++ {
		_ = cl.Invoke("f", 1, nil)
	}
	eng.RunUntil(2)
	host := -1
	for _, iv := range cl.Invokers() {
		if iv.MemoryInUseMB() > 0 {
			host = iv.ID
		}
	}
	if host < 0 {
		t.Fatal("no hosting invoker")
	}
	cl.CrashInvoker(host)
	if got := cl.BreakerState(host); got != "open" {
		t.Fatalf("state after crash = %q, want open", got)
	}
	// Recovery resets the breaker without waiting out OpenSec.
	cl.RecoverInvoker(host)
	if got := cl.BreakerState(host); got != "closed" {
		t.Fatalf("state after recover = %q, want closed", got)
	}
}

// TestShedReentrancy is the PR-2 double-done regression family applied to
// shedding: a shed's done callback synchronously submits new work and
// cancels (times out) queued work. Every submission must settle exactly
// once and the queue bound must hold throughout.
func TestShedReentrancy(t *testing.T) {
	eng, cl := overloadCluster(t, 1, AdmitRejectNew)
	settled := make(map[int]int) // tag → deliveries
	resubmitted := false
	var tag3res *InvocationResult
	// Fill: 0 runs, 1 queues.
	_ = cl.Invoke("f", 1, func(r InvocationResult) { settled[0]++ })
	_ = cl.Invoke("f", 1, func(r InvocationResult) { settled[1]++ })
	// 2 overflows → shed; its callback reentrantly submits 3 (which must
	// itself be shed: the queue is still full).
	_ = cl.Invoke("f", 1, func(r InvocationResult) {
		settled[2]++
		if r.Outcome == OutcomeShed && !resubmitted {
			resubmitted = true
			_ = cl.Invoke("f", 1, func(r2 InvocationResult) {
				settled[3]++
				tag3res = &r2
			})
		}
	})
	if !resubmitted {
		t.Fatal("shed callback did not run synchronously")
	}
	if tag3res == nil || tag3res.Outcome != OutcomeShed {
		t.Fatalf("reentrant submission should shed, got %+v", tag3res)
	}
	if cl.QueueDepth("f") != 1 {
		t.Fatalf("queue depth = %d, want 1", cl.QueueDepth("f"))
	}
	eng.RunUntil(100)
	for tag, n := range settled {
		if n != 1 {
			t.Fatalf("tag %d settled %d times", tag, n)
		}
	}
	if len(settled) != 4 {
		t.Fatalf("settled %d tags, want 4", len(settled))
	}
	if d := cl.Demand("f"); d != 0 {
		t.Fatalf("final demand = %d, want 0", d)
	}
}

// TestShedOldestReentrancy drives the same family through the shed-oldest
// path: the victim's callback resubmits while admit is mid-mutation.
func TestShedOldestReentrancy(t *testing.T) {
	eng, cl := overloadCluster(t, 1, AdmitShedOldest)
	deliveries := 0
	submitted := 0
	var submit func()
	submit = func() {
		submitted++
		_ = cl.Invoke("f", 1, func(r InvocationResult) {
			deliveries++
			if r.Outcome == OutcomeShed && submitted < 6 {
				submit() // evicts the current head, possibly cascading
			}
		})
	}
	for i := 0; i < 3 && submitted < 6; i++ {
		submit()
	}
	eng.RunUntil(200)
	if deliveries != submitted {
		t.Fatalf("deliveries = %d, submitted = %d", deliveries, submitted)
	}
	if d := cl.Demand("f"); d != 0 {
		t.Fatalf("final demand = %d, want 0", d)
	}
}

// TestPropertyDemandAccounting asserts Demand == submitted − settled (every
// invocation is queued, in flight, or delivered — never double-counted,
// never lost) and the queue bound holds, across random fault/overload
// schedules mixing sheds, timeouts, crashes and churn.
func TestPropertyDemandAccounting(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		eng := sim.NewEngine()
		adm := AdmissionPolicy(int(seed&3) % 3)
		cl := NewCluster(eng, Config{
			Invokers: 2, CPUPerInvoker: 4, MemoryPerInvokerMB: 1024,
			DefaultKeepAlive: 30, QueueLimit: 3, Admission: adm, Seed: seed,
			Breaker: BreakerConfig{Enabled: seed%2 == 0, Window: 6,
				ErrorThreshold: 0.5, MinSamples: 3, OpenSec: 10, HalfOpenProbes: 2},
		})
		m := DefaultSyntheticModel()
		m.BaseExecSec = 0.5
		if err := cl.RegisterFunction(FunctionSpec{Name: "f", Model: m},
			ResourceConfig{CPU: 1, MemoryMB: 256, Concurrency: 2}); err != nil {
			return false
		}
		rng := stats.NewRNG(seed)
		submitted, settledN := 0, 0
		ok := true
		check := func() {
			if cl.Demand("f") != submitted-settledN {
				ok = false
			}
			if cl.QueueDepth("f") > 3 {
				ok = false
			}
		}
		for i, op := range ops {
			at := float64(i) * 1.5
			switch (op / 8) % 6 {
			case 0, 1, 2:
				timeout := 0.0
				if op%3 == 0 {
					timeout = rng.Uniform(0.2, 5)
				}
				eng.Schedule(at, func() {
					// Count the submission first: a bounded-queue shed can
					// settle synchronously inside InvokeOpts.
					submitted++
					_ = cl.InvokeOpts("f", InvokeOptions{InputSize: 1, Timeout: timeout},
						func(InvocationResult) { settledN++; check() })
					check()
				})
			case 3:
				n := int(op) % 4
				eng.Schedule(at, func() { _ = cl.SetPrewarmTarget("f", n); check() })
			case 4:
				iv := int(op) % 2
				eng.Schedule(at, func() { cl.CrashInvoker(iv); check() })
				eng.Schedule(at+rng.Uniform(1, 8), func() { cl.RecoverInvoker(iv); check() })
			default:
				kill := float64(op%10) / 20
				eng.Schedule(at, func() { cl.SetFaultRates(FaultRates{ExecKill: kill}); check() })
			}
		}
		eng.RunUntil(float64(len(ops))*1.5 + 600)
		check()
		return ok && submitted == settledN && cl.Demand("f") == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestDrainQueueFIFO: re-queued work re-enters at the front, so completion
// order matches submission order even when dispatch bounces.
func TestDrainQueueFIFO(t *testing.T) {
	eng, cl := overloadCluster(t, 0, AdmitRejectNew)
	var order []int
	for i := 0; i < 6; i++ {
		tag := i
		if err := cl.Invoke("f", 1, func(r InvocationResult) {
			if r.OK() {
				order = append(order, tag)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunUntil(200)
	if len(order) != 6 {
		t.Fatalf("completions = %d, want 6", len(order))
	}
	for i, tag := range order {
		if tag != i {
			t.Fatalf("completion order %v, want ascending", order)
		}
	}
}
