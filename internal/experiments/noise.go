package experiments

import (
	"fmt"
	"math"

	"aquatope/internal/apps"
	"aquatope/internal/bo"
	"aquatope/internal/faas"
	"aquatope/internal/resource"
	"aquatope/internal/stats"
)

// Fig15Result reports robustness to irregular system noise: execution cost
// (% oracle) as the background-interference level grows.
type Fig15Result struct {
	Levels   []int
	CLITE    []float64
	AquaLite []float64
	Aquatope []float64
}

// Table renders the three series.
func (r Fig15Result) Table() string {
	rows := make([][]string, len(r.Levels))
	for i := range r.Levels {
		rows[i] = []string{fmt.Sprintf("%d", r.Levels[i]),
			f0(r.CLITE[i]) + "%", f0(r.AquaLite[i]) + "%", f0(r.Aquatope[i]) + "%"}
	}
	return formatTable([]string{"Noise", "CLITE", "AquaLite", "Aquatope"}, rows)
}

// Fig15 injects intermittent background jobs (irregular, non-Gaussian
// interference) into the ML pipeline's profiling environment at growing
// intensity, and measures the final cost found by CLITE, AquaLite (noise-
// unaware BO) and Aquatope (noise-aware BO with anomaly pruning).
func Fig15(s Scale) Fig15Result {
	a := apps.NewMLPipeline()
	_, oracleCost, _, _, ok := solveOracle(a, s.Seed)
	if !ok {
		return Fig15Result{}
	}
	evalProf := resource.NewProfiler(a, s.Seed+500)
	res := Fig15Result{}
	for level := 0; level <= 4; level++ {
		// Interference must stay intermittent: the rate is per invocation
		// and a workflow sample aggregates ~15 invocations, so even small
		// per-invocation rates give a sizable share of corrupted samples.
		noise := faas.Noise{
			GaussianStd:  0.1,
			OutlierRate:  0.012 * float64(level),
			OutlierScale: 3 + 1.5*float64(level),
		}
		run := func(mk func(sp *resource.Space, p *resource.Profiler, q float64, seed int64) resource.Manager) float64 {
			var sum float64
			var n int
			for rep := 0; rep < s.Repeats; rep++ {
				seed := s.Seed + int64(rep)*91
				prof := resource.NewProfiler(a, seed)
				prof.Noise = noise
				m := mk(resource.NewSpace(a), prof, a.QoS, seed)
				resource.Search(m, s.SearchBudget)
				if cfg, _, okB := m.Best(); okB {
					if c, feasible := evalTrue(evalProf, cfg, a.QoS); feasible {
						sum += c
						n++
					}
				}
			}
			if n == 0 {
				return math.NaN()
			}
			return sum / float64(n) / oracleCost * 100
		}
		res.Levels = append(res.Levels, level)
		res.CLITE = append(res.CLITE, run(managerFactories()["clite"]))
		res.AquaLite = append(res.AquaLite, run(func(sp *resource.Space, p *resource.Profiler, q float64, seed int64) resource.Manager {
			return resource.NewAquaLite(sp, p, q, seed)
		}))
		res.Aquatope = append(res.Aquatope, run(managerFactories()["aquatope"]))
	}
	return res
}

// ---------------------------------------------------------------------------

// Fig16Result traces Aquatope's adaptation to workload behaviour changes:
// performance (oracle cost / current best cost, %) per profiled sample,
// with the change points marked.
type Fig16Result struct {
	Performance  []float64 // % of oracle-optimal (100 = optimal), per sample index
	ChangePoints []int
	ChangeEvents int // change resets detected by the engine
}

// Table renders a decimated trajectory.
func (r Fig16Result) Table() string {
	rows := [][]string{}
	for i := 0; i < len(r.Performance); i += 3 {
		mark := ""
		for _, cp := range r.ChangePoints {
			if i >= cp && i < cp+3 {
				mark = "<- input change"
			}
		}
		rows = append(rows, []string{fmt.Sprintf("%d", i), f0(r.Performance[i]) + "%", mark})
	}
	out := formatTable([]string{"Samples", "Perf(%Oracle)", ""}, rows)
	out += fmt.Sprintf("change events detected: %d\n", r.ChangeEvents)
	return out
}

// Fig16 runs the video pipeline's search while the input format/size
// changes mid-run (InputScale jumps); the engine's anomaly burst detection
// should trigger incremental retraining and performance should recover
// within ~20 samples.
func Fig16(s Scale) Fig16Result {
	a := apps.NewVideoProcessing()
	space := resource.NewSpace(a)
	prof := resource.NewProfiler(a, s.Seed)
	prof.Noise = faas.Noise{GaussianStd: 0.1}

	// Oracle cost for each phase (input scale 1 then 3).
	oracles := make(map[float64]float64)
	for _, scale := range []float64{1, 3} {
		p2 := resource.NewProfiler(a, s.Seed)
		p2.InputScale = scale
		or := resource.NewOracle(space, p2, a.QoS, s.Seed)
		or.MaxGrid = 1
		or.Repeats = 3
		if _, c, ok := or.Solve(); ok {
			oracles[scale] = c
		}
	}

	eng := bo.New(bo.Config{Dim: space.Dim(), QoS: a.QoS, Seed: s.Seed,
		SlidingWindow: 40, ChangeBurst: 6, AnomalyZ: 2.5})
	evalProf := resource.NewProfiler(a, s.Seed+500)

	totalSamples := 3 * s.SearchBudget
	changeAt := totalSamples / 2
	res := Fig16Result{ChangePoints: []int{changeAt}}
	scale := 1.0
	samples := 0
	for samples < totalSamples {
		if samples >= changeAt && scale == 1 {
			scale = 3 // behaviour change: input format/size triples
		}
		prof.InputScale = scale
		batch := eng.Suggest()
		obs := make([]bo.Observation, 0, len(batch))
		for _, x := range batch {
			cfgs, err := space.Decode(x)
			if err != nil {
				panic(err)
			}
			cost, lat := prof.Sample(cfgs)
			obs = append(obs, bo.Observation{X: x, Cost: cost, Latency: lat})
		}
		eng.Observe(obs)
		samples += len(obs)

		perf := 0.0
		if x, _, ok := eng.BestFeasible(); ok {
			cfgs, _ := space.Decode(x)
			evalProf.InputScale = scale
			c, l := evalProf.SampleNoiseless(cfgs, 2)
			if l <= a.QoS && c > 0 {
				perf = oracles[scale] / c * 100
				if perf > 100 {
					perf = 100
				}
			}
		}
		for i := 0; i < len(obs); i++ {
			res.Performance = append(res.Performance, perf)
		}
	}
	res.ChangeEvents = eng.ChangeEvents()
	return res
}

// RecoverySamples returns how many samples after the change point the
// performance needed to get back to the given threshold (%), or -1.
func (r Fig16Result) RecoverySamples(threshold float64) int {
	if len(r.ChangePoints) == 0 {
		return -1
	}
	cp := r.ChangePoints[0]
	for i := cp; i < len(r.Performance); i++ {
		if r.Performance[i] >= threshold {
			return i - cp
		}
	}
	return -1
}

var _ = stats.Mean // reserved for aggregate variants
