package resource

import (
	"math"
	"testing"

	"aquatope/internal/apps"
)

func chainApp() *apps.App { return apps.NewChain(2) }

func TestSpaceDecodeEncode(t *testing.T) {
	a := chainApp()
	s := NewSpace(a)
	if s.Dim() != 4 { // 2 functions × (cpu, mem)
		t.Fatalf("dim = %d", s.Dim())
	}
	cfgs, err := s.Decode([]float64{0, 0, 0.999, 0.999})
	if err != nil {
		t.Fatal(err)
	}
	f0 := cfgs[s.Functions[0]]
	f1 := cfgs[s.Functions[1]]
	if f0.CPU != DefaultCPUOptions[0] || f0.MemoryMB != DefaultMemOptions[0] {
		t.Fatalf("f0 = %+v", f0)
	}
	if f1.CPU != DefaultCPUOptions[len(DefaultCPUOptions)-1] {
		t.Fatalf("f1 = %+v", f1)
	}
	// Encode/Decode round trip preserves the configuration.
	x := s.Encode(cfgs)
	cfgs2, err := s.Decode(x)
	if err != nil {
		t.Fatal(err)
	}
	for fn, c := range cfgs {
		if cfgs2[fn] != c {
			t.Fatalf("round trip changed %s: %+v vs %+v", fn, c, cfgs2[fn])
		}
	}
}

func TestSpaceDimMismatch(t *testing.T) {
	s := NewSpace(chainApp())
	if _, err := s.Decode([]float64{0.5}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestSpaceWithConcurrency(t *testing.T) {
	s := NewSpace(chainApp())
	s.Concurrency = DefaultConcurrencyOptions
	if s.Dim() != 6 {
		t.Fatalf("dim = %d", s.Dim())
	}
	cfgs, err := s.Decode(make([]float64, 6))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cfgs {
		if c.Concurrency != DefaultConcurrencyOptions[0] {
			t.Fatalf("concurrency = %d", c.Concurrency)
		}
	}
}

func TestGridEnumeration(t *testing.T) {
	s := &Space{Functions: []string{"f"}, CPUOptions: []float64{1, 2}, MemOptions: []float64{128, 256, 512}}
	if s.GridSize() != 6 {
		t.Fatalf("grid = %d", s.GridSize())
	}
	n := 0
	seen := make(map[[2]float64]bool)
	s.EnumGrid(func(x []float64) {
		n++
		cfgs, _ := s.Decode(x)
		c := cfgs["f"]
		seen[[2]float64{c.CPU, c.MemoryMB}] = true
	})
	if n != 6 || len(seen) != 6 {
		t.Fatalf("enumerated %d configs, %d distinct", n, len(seen))
	}
}

func TestProfilerMonotonicity(t *testing.T) {
	a := chainApp()
	p := NewProfiler(a, 1)
	s := NewSpace(a)
	starved, _ := s.Decode([]float64{0.1, 0.1, 0.1, 0.1})
	generous, _ := s.Decode([]float64{0.9, 0.9, 0.9, 0.9})
	_, latStarved := p.Sample(starved)
	costGen, latGen := p.Sample(generous)
	if latGen >= latStarved {
		t.Fatalf("more resources should be faster: %v vs %v", latGen, latStarved)
	}
	if costGen <= 0 {
		t.Fatal("cost should be positive")
	}
}

func TestProfilerWarmStartsOnly(t *testing.T) {
	a := chainApp()
	p := NewProfiler(a, 2)
	s := NewSpace(a)
	cfgs, _ := s.Decode([]float64{0.5, 0.7, 0.5, 0.7})
	// Warm-start latency should be well below the cold path: compare with
	// ColdStartFraction = 1.
	_, warm := p.Sample(cfgs)
	p2 := NewProfiler(a, 2)
	p2.ColdStartFraction = 1
	_, cold := p2.Sample(cfgs)
	if cold <= warm {
		t.Fatalf("cold latency %v should exceed warm %v", cold, warm)
	}
}

func TestOracleExhaustiveSmall(t *testing.T) {
	a := apps.NewChain(1)
	p := NewProfiler(a, 3)
	s := NewSpace(a)
	o := NewOracle(s, p, a.QoS, 4)
	o.Repeats = 2
	cfgs, cost, ok := o.Solve()
	if !ok {
		t.Fatal("oracle found nothing feasible")
	}
	if cost <= 0 {
		t.Fatalf("cost = %v", cost)
	}
	// The oracle optimum must be feasible when re-evaluated.
	_, lat := p.SampleNoiseless(cfgs, 4)
	if lat > a.QoS*1.1 {
		t.Fatalf("oracle config violates QoS: %v > %v", lat, a.QoS)
	}
}

func TestOracleCoordinateDescentMatchesExhaustive(t *testing.T) {
	a := apps.NewChain(1)
	p := NewProfiler(a, 5)
	s := NewSpace(a)
	ex := NewOracle(s, p, a.QoS, 6)
	ex.Repeats = 2
	_, costEx, ok1 := ex.Solve()

	cd := NewOracle(s, p, a.QoS, 6)
	cd.Repeats = 2
	cd.MaxGrid = 1 // force descent
	_, costCD, ok2 := cd.Solve()
	if !ok1 || !ok2 {
		t.Fatal("oracle variant failed")
	}
	if costCD > costEx*1.2 {
		t.Fatalf("descent cost %v too far above exhaustive %v", costCD, costEx)
	}
}

func TestAquatopeManagerFindsFeasible(t *testing.T) {
	a := chainApp()
	p := NewProfiler(a, 7)
	s := NewSpace(a)
	m := NewAquatope(s, p, a.QoS, 8)
	costs, samples := Search(m, 24)
	if len(costs) == 0 {
		t.Fatal("no search progress")
	}
	cfgs, cost, ok := m.Best()
	if !ok {
		t.Fatal("no feasible configuration found")
	}
	if len(cfgs) != 2 || math.IsInf(cost, 1) {
		t.Fatalf("best = %v / %v", cfgs, cost)
	}
	// Trajectory must be non-increasing.
	for i := 1; i < len(costs); i++ {
		if costs[i] > costs[i-1]+1e-9 {
			t.Fatalf("best-cost trajectory increased at %d: %v", i, costs)
		}
	}
	if samples[len(samples)-1] < 24 {
		t.Fatalf("budget not consumed: %v", samples)
	}
}

func TestAquatopeBeatsAutoscale(t *testing.T) {
	// The comparison follows the evaluation methodology: each manager's
	// chosen configuration is re-measured noiselessly, and a pick that
	// truly violates QoS does not count as a win for anyone.
	a := chainApp()
	s := NewSpace(a)
	eval := NewProfiler(a, 999)
	trueCost := func(m Manager) (float64, bool) {
		cfg, _, ok := m.Best()
		if !ok {
			return 0, false
		}
		c, l := eval.SampleNoiseless(cfg, 3)
		return c, l <= a.QoS
	}
	wins := 0
	trials := 4
	for i := 0; i < trials; i++ {
		seed := int64(100 + i)
		ma := NewAquatope(s, NewProfiler(a, seed), a.QoS, seed)
		Search(ma, 30)
		costA, okA := trueCost(ma)

		mb := NewAutoscale(s, NewProfiler(a, seed), a.QoS, seed)
		Search(mb, 30)
		costB, okB := trueCost(mb)
		if okA && (!okB || costA <= costB*1.05) {
			wins++
		}
	}
	if wins < 3 {
		t.Fatalf("aquatope won only %d/%d vs autoscale", wins, trials)
	}
}

func TestAutoscaleScalesUpOnViolation(t *testing.T) {
	a := chainApp()
	p := NewProfiler(a, 9)
	s := NewSpace(a)
	m := NewAutoscale(s, p, 0.0001, 10) // impossible QoS → always violate
	for i := 0; i < 6; i++ {
		m.Step()
	}
	if m.level == 0 {
		t.Fatal("autoscale never scaled up under violations")
	}
	if _, _, ok := m.Best(); ok {
		t.Fatal("nothing should be feasible")
	}
}

func TestManagersReportNames(t *testing.T) {
	a := chainApp()
	p := NewProfiler(a, 11)
	s := NewSpace(a)
	if NewAquatope(s, p, 1, 1).Name() != "aquatope" ||
		NewAquaLite(s, p, 1, 1).Name() != "aqualite" ||
		NewCLITE(s, p, 1, 1).Name() != "clite" ||
		NewRandom(s, p, 1, 1).Name() != "random" ||
		NewAutoscale(s, p, 1, 1).Name() != "autoscale" {
		t.Fatal("manager names wrong")
	}
}

func TestBOManagerEngineAccessor(t *testing.T) {
	a := chainApp()
	p := NewProfiler(a, 12)
	s := NewSpace(a)
	if NewAquatope(s, p, 1, 1).Engine() == nil {
		t.Fatal("aquatope manager should expose its engine")
	}
	if NewCLITE(s, p, 1, 1).Engine() != nil {
		t.Fatal("CLITE manager has no aquatope engine")
	}
}

func TestSnapIdxBounds(t *testing.T) {
	if snapIdx(-0.5, 4) != 0 || snapIdx(1.5, 4) != 3 || snapIdx(0.49, 2) != 0 || snapIdx(0.51, 2) != 1 {
		t.Fatal("snapIdx boundaries wrong")
	}
}

func TestNearestIdx(t *testing.T) {
	if nearestIdx([]float64{1, 2, 4}, 2.9) != 1 || nearestIdx([]float64{1, 2, 4}, 3.1) != 2 {
		t.Fatal("nearestIdx wrong")
	}
	if nearestIntIdx([]int{4, 8, 16}, 10) != 1 {
		t.Fatal("nearestIntIdx wrong")
	}
}

func TestProfilerColdFractionConfig(t *testing.T) {
	a := chainApp()
	p := NewProfiler(a, 13)
	p.ColdStartFraction = 0.5
	s := NewSpace(a)
	cfgs, _ := s.Decode([]float64{0.5, 0.5, 0.5, 0.5})
	// Must not panic and must return finite values.
	c, l := p.Sample(cfgs)
	if math.IsNaN(c) || math.IsNaN(l) {
		t.Fatal("NaN profile")
	}
}
