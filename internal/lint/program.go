package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// Program is the whole loaded package set plus the whole-program indices
// the interprocedural analyzers (seedflow) share: a function index keyed
// by the fully qualified name of each declared function, and a reverse
// call index from callee to every resolved call site. Per-file syntactic
// analyzers ignore it.
//
// Functions are keyed by their types.Func FullName (e.g.
// "aquatope/internal/stats.NewRNG", "(*aquatope/internal/faas.Cluster).Invoke")
// rather than by object identity: each package is type-checked from
// source against export data for its dependencies, so the *types.Func a
// caller resolves and the *types.Func of the source declaration live in
// different type-checker universes. The fully qualified name is the
// stable bridge between them.
type Program struct {
	Pkgs []*Package
	// Funcs maps a function's FullName to its source declaration; only
	// functions declared with a body in a type-checked target package
	// appear.
	Funcs map[string]*ProgFunc
	// Callers maps a callee FullName to every call site that resolves to
	// it, in (package, file, position) order.
	Callers map[string][]*ProgCall

	funcNames []string // sorted keys of Funcs, for deterministic passes

	// seedCache memoizes seedflow's param-group fixpoint per sink config.
	seedCache map[string]map[string][][]int
}

// ProgFunc is one function declaration in the program.
type ProgFunc struct {
	FullName string
	Pkg      *Package
	File     *File
	Decl     *ast.FuncDecl
	Obj      *types.Func

	calls []*ProgCall // call sites lexically inside Decl
}

// ProgCall is one resolved call site.
type ProgCall struct {
	Pkg    *Package
	File   *File
	Call   *ast.CallExpr
	Callee string    // FullName of the resolved callee
	Caller *ProgFunc // enclosing declared function; nil in package-level initializers
}

// NewProgram indexes the loaded packages. Test files and packages without
// type information are skipped: the call graph only covers compiled code.
func NewProgram(pkgs []*Package) *Program {
	p := &Program{
		Pkgs:      pkgs,
		Funcs:     make(map[string]*ProgFunc),
		Callers:   make(map[string][]*ProgCall),
		seedCache: make(map[string]map[string][][]int),
	}
	for _, pkg := range pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, file := range pkg.Files {
			if file.Test {
				continue
			}
			p.indexFile(pkg, file)
		}
	}
	for name := range p.Funcs {
		p.funcNames = append(p.funcNames, name)
	}
	sort.Strings(p.funcNames)
	return p
}

func (p *Program) indexFile(pkg *Package, file *File) {
	// Declarations first, so calls inside them can attach to their entry.
	decls := make(map[*ast.FuncDecl]*ProgFunc)
	for _, d := range file.AST.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		pf := &ProgFunc{FullName: obj.FullName(), Pkg: pkg, File: file, Decl: fd, Obj: obj}
		p.Funcs[pf.FullName] = pf
		decls[fd] = pf
	}
	var stack []*ProgFunc
	cur := func() *ProgFunc {
		if len(stack) == 0 {
			return nil
		}
		return stack[len(stack)-1]
	}
	ast.Inspect(file.AST, func(n ast.Node) bool {
		switch x := n.(type) {
		case nil:
			return true
		case *ast.FuncDecl:
			if pf := decls[x]; pf != nil {
				stack = append(stack, pf)
				if x.Body != nil {
					ast.Inspect(x.Body, func(n ast.Node) bool {
						if call, ok := n.(*ast.CallExpr); ok {
							p.indexCall(pkg, file, call, pf)
						}
						return true
					})
				}
				stack = stack[:len(stack)-1]
			}
			return false // body already walked above with the right owner
		case *ast.CallExpr:
			p.indexCall(pkg, file, x, cur()) // package-level initializer
		}
		return true
	})
}

func (p *Program) indexCall(pkg *Package, file *File, call *ast.CallExpr, caller *ProgFunc) {
	name := calleeFullName(pkg.Info, call)
	if name == "" {
		return
	}
	site := &ProgCall{Pkg: pkg, File: file, Call: call, Callee: name, Caller: caller}
	p.Callers[name] = append(p.Callers[name], site)
	if caller != nil {
		caller.calls = append(caller.calls, site)
	}
}

// calleeFullName resolves a call to the FullName of a declared function or
// method; "" for builtins, conversions, func-typed variables and anything
// else without a *types.Func object.
func calleeFullName(info *types.Info, call *ast.CallExpr) string {
	fun := ast.Unparen(call.Fun)
	// Unwrap generic instantiations: f[T](x).
	switch x := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(x.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(x.X)
	}
	var obj types.Object
	switch x := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[x]
	case *ast.SelectorExpr:
		obj = info.Uses[x.Sel]
	}
	if fn, ok := obj.(*types.Func); ok {
		return fn.FullName()
	}
	return ""
}

// FuncNames returns the declared function names in sorted order.
func (p *Program) FuncNames() []string { return p.funcNames }
