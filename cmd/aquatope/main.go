// Command aquatope runs the full Aquatope scheduler (pre-warmed container
// pool + container resource manager) over one of the paper's five
// applications on the simulated FaaS platform, and reports QoS compliance,
// cold-start rate and execution cost against a chosen baseline framework.
//
// Usage:
//
//	aquatope -app mlpipeline -system aquatope
//	aquatope -app socialnet -system icebreaker+clite -minutes 2880
package main

import (
	"flag"
	"fmt"
	"os"

	"aquatope/internal/apps"
	"aquatope/internal/chaos"
	"aquatope/internal/core"
	"aquatope/internal/faas"
	"aquatope/internal/pool"
	"aquatope/internal/socialgraph"
	"aquatope/internal/telemetry"
	"aquatope/internal/trace"
	"aquatope/internal/workflow"
)

func buildApp(name string, seed int64) *apps.App {
	switch name {
	case "chain":
		return apps.NewChain(3)
	case "fanout":
		return apps.NewFanOutFanIn()
	case "mlpipeline":
		return apps.NewMLPipeline()
	case "videoproc":
		return apps.NewVideoProcessing()
	case "socialnet":
		// The follower graph drives per-post fan-out widths; derive it
		// from the run seed so reruns are reproducible but distinct
		// seeds explore different graphs.
		return apps.NewSocialNetwork(socialgraph.Reed98Like(seed))
	default:
		return nil
	}
}

func main() {
	appName := flag.String("app", "mlpipeline", "application: chain | fanout | mlpipeline | videoproc | socialnet")
	system := flag.String("system", "aquatope", "framework: aquatope | aqualite | autoscale | icebreaker+clite | keepalive")
	minutes := flag.Int("minutes", 2160, "trace length in minutes")
	trainMin := flag.Int("train", 1440, "training prefix in minutes")
	budget := flag.Int("budget", 30, "resource-search profiling budget")
	seed := flag.Int64("seed", 1, "random seed")
	chaosName := flag.String("chaos", "", "fault scenario: invoker-crash | container-churn | stragglers | mixed | random (enables the retry/timeout resilience layer)")
	traceOut := flag.String("trace-out", "", "write telemetry spans as JSONL to this file")
	metricsOut := flag.String("metrics-out", "", "write the metric registry snapshot as JSON to this file")
	flag.Parse()

	app := buildApp(*appName, *seed)
	if app == nil {
		fmt.Fprintf(os.Stderr, "unknown app %q\n", *appName)
		os.Exit(2)
	}

	tr := trace.Synthesize(trace.GenConfig{
		DurationMin:          *minutes,
		MeanRatePerMin:       0.8,
		Diurnal:              0.6,
		CV:                   2,
		BurstEpisodesPerHour: 1,
		BurstDurationMin:     10,
		BurstMultiplier:      6,
		Seed:                 *seed,
	})

	cfg := core.Config{
		Components:   []core.Component{{App: app, Trace: tr}},
		TrainMin:     *trainMin,
		SearchBudget: *budget,
		ProfileNoise: faas.Noise{GaussianStd: 0.15, OutlierRate: 0.02, OutlierScale: 3},
		RuntimeNoise: faas.Noise{GaussianStd: 0.1, OutlierRate: 0.01, OutlierScale: 3},
		Seed:         *seed,
	}
	if *chaosName != "" {
		scn, ok := chaos.Builtin(*chaosName, float64(*minutes)*60, *seed)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown chaos scenario %q (have: %v)\n", *chaosName, chaos.Names())
			os.Exit(2)
		}
		cfg.Chaos = scn
		// Fault injection without retries just loses workflows; pair the
		// scenario with the default resilience policy, bounding each
		// attempt by the app's QoS target.
		pol := workflow.DefaultRetryPolicy()
		pol.Timeout = app.QoS
		cfg.Resilience = &pol
	}
	var collector *telemetry.Collector
	if *traceOut != "" {
		collector = telemetry.NewCollector()
		cfg.Tracer = collector
	}
	registry := telemetry.NewRegistry()
	cfg.Registry = registry
	switch *system {
	case "aquatope":
		cfg.PoolFactory = aquaPool(false)
		cfg.ManagerFactory = core.AquatopeManagerFactory()
	case "aqualite":
		cfg.PoolFactory = aquaPool(true)
		cfg.ManagerFactory = core.AquatopeManagerFactory()
	case "autoscale":
		cfg.PoolFactory = core.AutoscalePoolFactory()
		cfg.ManagerFactory = core.AutoscaleManagerFactory()
	case "icebreaker+clite":
		cfg.PoolFactory = core.IceBreakerPoolFactory()
		cfg.ManagerFactory = core.CLITEManagerFactory()
	case "keepalive":
		cfg.PoolFactory = core.KeepAlivePoolFactory(600)
	default:
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
		os.Exit(2)
	}

	fmt.Printf("running %s under %s: %d invocations over %d min (train %d min)\n",
		app.Name, *system, len(tr.Arrivals), *minutes, *trainMin)
	res, err := core.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "run failed:", err)
		os.Exit(1)
	}
	ar := res.PerApp[app.Name]
	fmt.Printf("\nworkflows completed:   %d\n", ar.Workflows)
	fmt.Printf("QoS (%.2fs) violations: %.1f%%\n", app.QoS, ar.ViolationRate()*100)
	if *chaosName != "" {
		fmt.Printf("  latency violations:  %d\n", ar.LatencyViolations)
		fmt.Printf("  failure violations:  %d\n", ar.FailureViolations)
		fmt.Printf("goodput:               %.1f%%\n", res.Goodput()*100)
		fmt.Printf("retries / hedges:      %d / %d\n", ar.Retries, ar.Hedges)
	}
	fmt.Printf("cold-start rate:       %.1f%%\n", res.ColdStartRate()*100)
	fmt.Printf("mean latency:          %.2fs\n", ar.MeanLatency)
	fmt.Printf("latency p50/p95/p99:   %.2fs / %.2fs / %.2fs\n", ar.P50, ar.P95, ar.P99)
	fmt.Printf("CPU time:              %.1f core-s\n", ar.CPUTime)
	fmt.Printf("memory time:           %.1f GB-s\n", ar.MemTime)
	fmt.Printf("provisioned memory:    %.1f GB-s\n", res.ProvisionedMemGBs)
	if len(ar.ChosenConfig) > 0 {
		fmt.Println("\nchosen configuration:")
		for _, fn := range app.FunctionNames() {
			c := ar.ChosenConfig[fn]
			fmt.Printf("  %-16s cpu=%.2g mem=%.0fMB\n", fn, c.CPU, c.MemoryMB)
		}
	}

	if collector != nil {
		if err := collector.WriteJSONLFile(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "writing trace:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d spans to %s\n", collector.Len(), *traceOut)
	}
	if *metricsOut != "" {
		if err := registry.WriteJSONFile(*metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, "writing metrics:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote metrics snapshot to %s\n", *metricsOut)
	}
}

func aquaPool(lite bool) core.PolicyFactory {
	return func(fn string) pool.Policy {
		cfg := pool.DefaultModelConfig(trace.FeatureDim)
		cfg.EncoderHidden = 20
		cfg.PredHidden = []int{20, 10}
		cfg.EncoderEpochs = 8
		cfg.PredEpochs = 24
		cfg.MCSamples = 12
		cfg.LR = 0.01
		return &pool.Aquatope{ModelConfig: cfg, Window: 40, HeadroomZ: 2.5, Lite: lite}
	}
}
