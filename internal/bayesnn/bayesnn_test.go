package bayesnn

import (
	"math"
	"testing"

	"aquatope/internal/stats"
)

// smallConfig returns a fast architecture for tests.
func smallConfig(input, ext int) Config {
	cfg := DefaultConfig(input, ext)
	cfg.EncoderHidden = 12
	cfg.DecoderHidden = 6
	cfg.EncoderLayers = 1
	cfg.PredHidden = []int{12, 8}
	cfg.EncoderEpochs = 12
	cfg.PredEpochs = 40
	cfg.MCSamples = 15
	cfg.Horizon = 2
	return cfg
}

// sineSeries builds a noisy periodic series resembling diurnal invocation
// counts.
func sineSeries(n int, noise float64, seed int64) []float64 {
	g := stats.NewRNG(seed)
	out := make([]float64, n)
	for i := range out {
		base := 50 + 30*math.Sin(2*math.Pi*float64(i)/48)
		out[i] = math.Max(0, base+g.Normal(0, noise))
	}
	return out
}

func phaseFeat(i int) []float64 {
	return []float64{math.Sin(2 * math.Pi * float64(i) / 48), math.Cos(2 * math.Pi * float64(i) / 48)}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{})
}

func TestBuildSamples(t *testing.T) {
	series := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	featFn := func(i int) []float64 { return nil }
	extFn := func(i int) []float64 { return []float64{float64(i)} }
	samples := BuildSamples(series, 3, 2, featFn, extFn)
	// i ranges over [3, 6]: 4 samples.
	if len(samples) != 4 {
		t.Fatalf("got %d samples, want 4", len(samples))
	}
	s0 := samples[0]
	if s0.Target != 4 {
		t.Fatalf("target = %v, want 4", s0.Target)
	}
	if len(s0.History) != 3 || s0.History[0][0] != 1 || s0.History[2][0] != 3 {
		t.Fatalf("history wrong: %v", s0.History)
	}
	if len(s0.Future) != 2 || s0.Future[0] != 4 || s0.Future[1] != 5 {
		t.Fatalf("future wrong: %v", s0.Future)
	}
	if s0.External[0] != 3 {
		t.Fatalf("external wrong: %v", s0.External)
	}
}

func TestTrainEmptyIsNoop(t *testing.T) {
	m := New(smallConfig(1, 0))
	m.Train(nil)
	if m.Trained() {
		t.Fatal("empty training should not mark model trained")
	}
}

func TestLearnsPeriodicSeries(t *testing.T) {
	series := sineSeries(300, 2, 42)
	window := 16
	cfg := smallConfig(3, 2) // count + 2 phase features per step
	cfg.Seed = 7
	m := New(cfg)
	split := 240
	train := BuildSamples(series[:split], window, cfg.Horizon, phaseFeat, phaseFeat)
	m.Train(train)
	if !m.Trained() {
		t.Fatal("model should be trained")
	}

	// Evaluate SMAPE on held-out region vs the naive last-value model.
	test := BuildSamples(series[split-window:], window, cfg.Horizon, func(i int) []float64 { return phaseFeat(i + split - window) },
		func(i int) []float64 { return phaseFeat(i + split - window) })
	var preds, naive, actual []float64
	for _, s := range test {
		p := m.Predict(s.History, s.External)
		preds = append(preds, p.Mean)
		naive = append(naive, s.History[len(s.History)-1][0])
		actual = append(actual, s.Target)
	}
	smapeModel := stats.SMAPE(actual, preds)
	smapeNaive := stats.SMAPE(actual, naive)
	if smapeModel >= smapeNaive {
		t.Fatalf("hybrid model SMAPE %.2f not better than naive %.2f", smapeModel, smapeNaive)
	}
	if smapeModel > 15 {
		t.Fatalf("model SMAPE too high: %.2f", smapeModel)
	}
}

func TestPredictUncertaintyPositive(t *testing.T) {
	series := sineSeries(150, 5, 3)
	cfg := smallConfig(1, 0)
	cfg.Seed = 11
	noFeat := func(i int) []float64 { return nil }
	m := New(cfg)
	m.Train(BuildSamples(series, 12, cfg.Horizon, noFeat, noFeat))
	s := BuildSamples(series, 12, cfg.Horizon, noFeat, noFeat)[0]
	p := m.Predict(s.History, s.External)
	if p.Std <= 0 {
		t.Fatalf("MC dropout should yield positive predictive std, got %v", p.Std)
	}
	if math.IsNaN(p.Mean) {
		t.Fatal("mean is NaN")
	}
	if ub := p.UpperBound(2); ub <= p.Mean {
		t.Fatal("upper bound should exceed mean")
	}
}

func TestDeterministicPredictionStable(t *testing.T) {
	series := sineSeries(120, 3, 5)
	cfg := smallConfig(1, 0)
	noFeat := func(i int) []float64 { return nil }
	m := New(cfg)
	m.Train(BuildSamples(series, 10, cfg.Horizon, noFeat, noFeat))
	s := BuildSamples(series, 10, cfg.Horizon, noFeat, noFeat)[3]
	a := m.PredictDeterministic(s.History, s.External)
	b := m.PredictDeterministic(s.History, s.External)
	if a != b {
		t.Fatalf("deterministic prediction unstable: %v vs %v", a, b)
	}
}

func TestCoverage(t *testing.T) {
	preds := []Prediction{{Mean: 10, Std: 1}, {Mean: 20, Std: 1}, {Mean: 30, Std: 1}}
	actual := []float64{10.5, 25, 30}
	cov := Coverage(preds, actual, 2)
	if math.Abs(cov-2.0/3.0) > 1e-12 {
		t.Fatalf("coverage = %v, want 2/3", cov)
	}
	if Coverage(nil, nil, 2) != 0 {
		t.Fatal("empty coverage should be 0")
	}
}

func TestUncertaintyGrowsWithNoise(t *testing.T) {
	// Train two identical models on low- and high-noise series; the MC
	// dropout predictive std should be larger under high noise on average.
	window := 10
	noFeat := func(i int) []float64 { return nil }
	build := func(noise float64, seed int64) []Prediction {
		series := sineSeries(150, noise, seed)
		cfg := smallConfig(1, 0)
		cfg.Seed = 13
		m := New(cfg)
		samples := BuildSamples(series, window, cfg.Horizon, noFeat, noFeat)
		m.Train(samples[:100])
		var ps []Prediction
		for _, s := range samples[100:] {
			ps = append(ps, m.Predict(s.History, s.External))
		}
		return ps
	}
	low := build(0.5, 21)
	high := build(20, 21)
	var lowStd, highStd float64
	for _, p := range low {
		lowStd += p.Std
	}
	for _, p := range high {
		highStd += p.Std
	}
	if highStd <= lowStd {
		t.Fatalf("expected higher uncertainty under noise: low %v high %v", lowStd, highStd)
	}
}

func TestPredictSeriesAlignment(t *testing.T) {
	series := sineSeries(80, 2, 9)
	cfg := smallConfig(1, 0)
	cfg.EncoderEpochs, cfg.PredEpochs = 3, 5 // speed only
	noFeat := func(i int) []float64 { return nil }
	m := New(cfg)
	m.Train(BuildSamples(series, 8, cfg.Horizon, noFeat, noFeat))
	preds := m.PredictSeries(series, 8, noFeat, noFeat)
	if len(preds) != len(series)-8 {
		t.Fatalf("got %d predictions, want %d", len(preds), len(series)-8)
	}
}

func TestRetrainContinues(t *testing.T) {
	series := sineSeries(100, 2, 15)
	cfg := smallConfig(1, 0)
	cfg.EncoderEpochs, cfg.PredEpochs = 3, 5
	noFeat := func(i int) []float64 { return nil }
	m := New(cfg)
	samples := BuildSamples(series, 8, cfg.Horizon, noFeat, noFeat)
	m.Train(samples[:40])
	m.Train(samples[40:]) // incremental retraining must not panic
	if !m.Trained() {
		t.Fatal("model should remain trained")
	}
}
