package telemetry

import (
	"bytes"
	"testing"
)

// record plays a small deterministic span tree into t.
func record(t Tracer, base float64) {
	w := t.StartSpan(KindWorkflow, "wf", 0, base)
	s := t.StartSpan(KindStage, "stage", w, base+1)
	t.Point(KindRetry, "retry", s, base+2, Fields{"attempt": 1})
	t.EndSpan(s, base+3, nil)
	t.EndSpan(w, base+4, Fields{"latency_s": 4})
}

func TestCollectorMergeRebasesIDs(t *testing.T) {
	// Serial reference: both trees recorded into one collector.
	serial := NewCollector()
	record(serial, 0)
	record(serial, 100)

	// Split: each tree in its own collector, merged in order.
	a, b := NewCollector(), NewCollector()
	record(a, 0)
	record(b, 100)
	merged := NewCollector()
	merged.Merge(a)
	merged.Merge(b)

	var want, got bytes.Buffer
	if err := serial.WriteJSONL(&want); err != nil {
		t.Fatal(err)
	}
	if err := merged.WriteJSONL(&got); err != nil {
		t.Fatal(err)
	}
	if want.String() != got.String() {
		t.Fatalf("merged stream differs from serial:\nserial:\n%sgot:\n%s", want.String(), got.String())
	}

	// IDs stay dense and parents point inside the merged stream.
	spans := merged.Spans()
	for i, sp := range spans {
		if sp.ID != SpanID(i+1) {
			t.Fatalf("span %d has id %d, want dense numbering", i, sp.ID)
		}
		if sp.Parent >= sp.ID {
			t.Fatalf("span %d parent %d not before it", sp.ID, sp.Parent)
		}
	}
}

func TestCollectorMergeContinuesIDSequence(t *testing.T) {
	dst := NewCollector()
	src := NewCollector()
	record(src, 0)
	dst.Merge(src)
	// New spans started after a merge must continue past the merged IDs.
	id := dst.StartSpan(KindInvocation, "inv", 0, 9)
	if int(id) != len(src.Spans())+1 {
		t.Fatalf("post-merge span id = %d, want %d", id, len(src.Spans())+1)
	}
}

func TestRegistryMergeSemantics(t *testing.T) {
	a := NewRegistry()
	a.Counter("faas.cold_starts").Add(3)
	a.Gauge("pool.size").Set(7)
	a.Histogram("workflow.latency_s").Observe(0.5)
	a.Histogram("workflow.latency_s").Observe(2)

	b := NewRegistry()
	b.Counter("faas.cold_starts").Add(4)
	b.Counter("faas.invocations").Add(10)
	b.Gauge("pool.size").Set(5)
	b.Histogram("workflow.latency_s").Observe(8)

	dst := NewRegistry()
	dst.Merge(a)
	dst.Merge(b)

	if v := dst.Counter("faas.cold_starts").Value(); v != 7 {
		t.Fatalf("counter merge = %v, want 7", v)
	}
	if v := dst.Counter("faas.invocations").Value(); v != 10 {
		t.Fatalf("counter merge = %v, want 10", v)
	}
	// Gauges are last-write-wins in merge order, like a serial run.
	if v := dst.Gauge("pool.size").Value(); v != 5 {
		t.Fatalf("gauge merge = %v, want 5", v)
	}
	h := dst.Histogram("workflow.latency_s")
	if h.Count() != 3 || h.Sum() != 10.5 {
		t.Fatalf("histogram merge count=%d sum=%v, want 3/10.5", h.Count(), h.Sum())
	}

	// The merged snapshot must match a serially-built registry exactly.
	serial := NewRegistry()
	serial.Counter("faas.cold_starts").Add(3)
	serial.Counter("faas.cold_starts").Add(4)
	serial.Counter("faas.invocations").Add(10)
	serial.Gauge("pool.size").Set(7)
	serial.Gauge("pool.size").Set(5)
	for _, v := range []float64{0.5, 2, 8} {
		serial.Histogram("workflow.latency_s").Observe(v)
	}
	var want, got bytes.Buffer
	if err := serial.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if err := dst.WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	if want.String() != got.String() {
		t.Fatalf("merged snapshot differs from serial:\n%s\nvs\n%s", want.String(), got.String())
	}
}

func TestRegistryMergeLayoutMismatchPanics(t *testing.T) {
	a := NewRegistry()
	a.HistogramBuckets("h", 1e-3, 2, 8).Observe(1)
	b := NewRegistry()
	b.HistogramBuckets("h", 1e-2, 2, 8).Observe(1)
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched histogram layouts should panic")
		}
	}()
	a.Merge(b)
}

func TestMergeNilSafety(t *testing.T) {
	var nilC *Collector
	nilC.Merge(NewCollector()) // must not panic
	c := NewCollector()
	c.Merge(nil)
	var nilR *Registry
	nilR.Merge(NewRegistry())
	r := NewRegistry()
	r.Merge(nil)
}
