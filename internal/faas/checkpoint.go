package faas

import (
	"sort"

	"aquatope/internal/checkpoint"
)

// Snapshot serializes the cluster's observable state as a verification
// digest: RNG positions, per-function container/queue/EWMA state, breaker
// windows, invoker occupancy and utilization integrals, and active fault
// rates. Queue entries and containers carry completion closures and armed
// timers that cannot be serialized, so the cluster is a replay-derived
// component — restore rebuilds it by re-running the input stream and this
// digest is what proves the rebuilt cluster identical (every scalar that
// influences future scheduling decisions is captured; divergence anywhere
// shows up here first). All iteration is in deterministic order: functions
// by registration order, containers sorted by id, invokers by index.
func (c *Cluster) Snapshot(enc *checkpoint.Encoder) {
	enc.String("faas.cluster")
	c.rng.Snapshot(enc)
	c.faultRNG.Snapshot(enc)
	enc.F64(c.faults.InitFailure)
	enc.F64(c.faults.ExecKill)
	enc.Bool(c.draining)

	enc.U64(uint64(len(c.fnOrder)))
	for _, name := range c.fnOrder {
		f := c.fns[name]
		enc.String(name)
		enc.F64(f.keepAlive)
		enc.Int(f.prewarmTarget)
		enc.Int(f.busyN)
		enc.Int(f.inFlight)
		enc.Int(f.queueLimit)
		enc.F64(f.execEWMA)
		enc.Int(f.nextContainerID)
		enc.F64(f.cfg.CPU)
		enc.F64(f.cfg.MemoryMB)
		enc.Int(f.cfg.Concurrency)
		snapshotContainers(enc, f.idle)
		snapshotContainers(enc, f.warming)
		enc.U64(uint64(len(f.queue)))
		for _, pi := range f.queue {
			enc.F64(pi.inputSize)
			enc.F64(pi.submitAt)
			enc.U64(uint64(pi.span))
			enc.Int(pi.attempt)
			enc.F64(pi.timeout)
			enc.Bool(pi.settled)
		}
	}

	enc.U64(uint64(len(c.invokers)))
	for _, iv := range c.invokers {
		enc.Int(iv.ID)
		enc.F64(iv.memUsedMB)
		enc.F64(iv.cpuBusy)
		enc.Bool(iv.down)
		enc.F64(iv.straggle)
		enc.F64(iv.util.lastAt)
		enc.F64(iv.util.busyS)
		enc.F64(iv.util.activeS)
		enc.F64(iv.util.cpuCoreS)
		enc.F64(iv.util.memMBs)
		enc.F64(iv.util.warmSpareS)
		enc.Int(iv.util.created)
		enc.Int(iv.util.killed)
		if iv.breaker == nil {
			enc.Bool(false)
		} else {
			enc.Bool(true)
			b := iv.breaker
			enc.Int(int(b.state))
			enc.Bools(b.ring)
			enc.Int(b.next)
			enc.Int(b.n)
			enc.Int(b.errs)
			enc.F64(b.openedAt)
			enc.Int(b.probeOK)
		}
		// Resident containers, sorted by (function, id) for a
		// deterministic digest of an unordered set.
		cts := make([]*container, 0, len(iv.containers))
		for ct := range iv.containers {
			cts = append(cts, ct)
		}
		sort.Slice(cts, func(i, j int) bool {
			if cts[i].fn.spec.Name != cts[j].fn.spec.Name {
				return cts[i].fn.spec.Name < cts[j].fn.spec.Name
			}
			return cts[i].id < cts[j].id
		})
		enc.U64(uint64(len(cts)))
		for _, ct := range cts {
			enc.String(ct.fn.spec.Name)
			snapshotContainer(enc, ct)
		}
	}
}

func snapshotContainers(enc *checkpoint.Encoder, cts []*container) {
	enc.U64(uint64(len(cts)))
	for _, ct := range cts {
		snapshotContainer(enc, ct)
	}
}

func snapshotContainer(enc *checkpoint.Encoder, ct *container) {
	enc.Int(ct.id)
	enc.Int(int(ct.state))
	enc.F64(ct.born)
	enc.F64(ct.warmAt)
	enc.F64(ct.lastUsed)
	enc.Bool(ct.everUsed)
	enc.Bool(ct.prewarmed)
	enc.Bool(ct.initFailed)
	enc.Bool(ct.faultKilled)
	enc.Bool(ct.running != nil)
}
