// Fixtures for the spanpair analyzer. The test config points the
// telemetry catalog (Rule.Sinks) at this fixture package, so spanTracer
// below plays the role of telemetry.Tracer: every StartSpan result must
// reach an EndSpan on all control-flow paths, be deferred, or be handed
// off to an owner outside the function.
package fixture

type spanID int

type spanTracer struct{ next spanID }

func (t *spanTracer) StartSpan(kind, name string, parent spanID, at float64) spanID {
	t.next++
	return t.next
}

func (t *spanTracer) EndSpan(id spanID, at float64) {}

func (t *spanTracer) Point(kind, name string, parent spanID, at float64) {}

func spanWork() {}

func spanMayPanic() {}

// --- leaks ---

func spanLeakEarlyReturn(tr *spanTracer, fail bool) {
	id := tr.StartSpan("stage", "s", 0, 0) // want spanpair
	if fail {
		return // leaks the span
	}
	tr.EndSpan(id, 1)
}

func spanLeakSwitchClause(tr *spanTracer, mode int) {
	id := tr.StartSpan("stage", "s", 0, 0) // want spanpair
	switch mode {
	case 0:
		tr.EndSpan(id, 1)
	case 1:
		return // leaks the span
	default:
		tr.EndSpan(id, 2)
	}
}

func spanLeakInLoop(tr *spanTracer, n int) {
	parent := tr.StartSpan("workflow", "w", 0, 0)
	for i := 0; i < n; i++ {
		child := tr.StartSpan("stage", "s", parent, 0) // want spanpair
		tr.Point("event", "e", child, 1)
	}
	tr.EndSpan(parent, 9)
}

func spanDiscarded(tr *spanTracer) {
	tr.StartSpan("stage", "s", 0, 0) // want spanpair
}

// --- closed on every path ---

func spanClosedBothBranches(tr *spanTracer, fail bool) {
	id := tr.StartSpan("stage", "s", 0, 0)
	if fail {
		tr.EndSpan(id, 1)
		return
	}
	spanWork()
	tr.EndSpan(id, 2)
}

func spanDeferredEnd(tr *spanTracer) {
	id := tr.StartSpan("stage", "s", 0, 0)
	defer tr.EndSpan(id, 1)
	spanMayPanic()
}

func spanDeferredClosure(tr *spanTracer) {
	id := tr.StartSpan("stage", "s", 0, 0)
	defer func() { tr.EndSpan(id, 1) }()
	spanMayPanic()
}

func spanZeroGuard(tr *spanTracer, trace bool) {
	var id spanID
	if trace {
		id = tr.StartSpan("stage", "s", 0, 0)
	}
	spanWork()
	if id != 0 {
		tr.EndSpan(id, 1)
	}
}

// --- non-local lifecycles: conservatively out of scope ---

type spanBag struct{ spans []spanID }

func spanStoredForLater(tr *spanTracer, bag *spanBag) {
	id := tr.StartSpan("stage", "s", 0, 0)
	bag.spans = append(bag.spans, id) // handed off: closed elsewhere
}

func spanReturnedToCaller(tr *spanTracer) spanID {
	id := tr.StartSpan("stage", "s", 0, 0)
	return id // the caller owns the lifecycle
}

func spanReassignedVar(tr *spanTracer, again bool) {
	id := tr.StartSpan("stage", "a", 0, 0)
	if again {
		id = tr.StartSpan("stage", "b", 0, 0)
	}
	tr.EndSpan(id, 1)
}

// --- allowed ---

func spanAllowed(tr *spanTracer, fail bool) {
	id := tr.StartSpan("stage", "s", 0, 0) //aqualint:allow spanpair the collector flushes open spans at shutdown
	if fail {
		return
	}
	tr.EndSpan(id, 1)
}
