package chaos

import "aquatope/internal/checkpoint"

// Snapshot serializes the injector's mutable state: armed flag and the
// accumulated fault-rate window sums. The scheduled fault events themselves
// live in the simulation queue (closures, replay-derived); the scenario
// script is configuration covered by the serving layer's config digest.
func (in *Injector) Snapshot(enc *checkpoint.Encoder) {
	enc.String("chaos.injector")
	enc.Bool(in.armed)
	enc.F64(in.curRates.InitFailure)
	enc.F64(in.curRates.ExecKill)
}

// Restore loads injector state saved by Snapshot.
func (in *Injector) Restore(dec *checkpoint.Decoder) error {
	dec.Expect("chaos.injector")
	in.armed = dec.Bool()
	in.curRates.InitFailure = dec.F64()
	in.curRates.ExecKill = dec.F64()
	return dec.Err()
}
