package bo

import (
	"math"
	"testing"

	"aquatope/internal/stats"
)

// quadProblem is a noisy synthetic 2-D resource problem: cost rises with
// allocated resources, latency falls; the QoS boundary creates a feasible
// region whose cheapest corner is the optimum.
type quadProblem struct {
	qos   float64
	noise float64
	rng   *stats.RNG
	// outlierRate injects irregular non-Gaussian noise.
	outlierRate float64
}

func (p *quadProblem) eval(x []float64) (cost, latency float64) {
	// cost in [~0.5, ~3]: linear in resources.
	cost = 0.5 + 1.5*x[0] + 1.0*x[1]
	// latency falls with resources, floor 0.5.
	latency = 0.5 + 2.0/(0.4+1.2*x[0]+0.8*x[1])
	if p.noise > 0 {
		cost += p.rng.Normal(0, p.noise*0.05)
		latency += p.rng.Normal(0, p.noise*0.05)
	}
	if p.outlierRate > 0 && p.rng.Bernoulli(p.outlierRate) {
		latency += p.rng.Uniform(2, 6) // interference spike
		cost += p.rng.Uniform(1, 3)
	}
	if latency < 0.5 {
		latency = 0.5
	}
	return cost, latency
}

// optimum finds the true noiseless feasible optimum by grid search.
func (p *quadProblem) optimum() float64 {
	save := p.noise
	saveOut := p.outlierRate
	p.noise, p.outlierRate = 0, 0
	best := math.Inf(1)
	for i := 0; i <= 100; i++ {
		for j := 0; j <= 100; j++ {
			x := []float64{float64(i) / 100, float64(j) / 100}
			c, l := p.eval(x)
			if l <= p.qos && c < best {
				best = c
			}
		}
	}
	p.noise, p.outlierRate = save, saveOut
	return best
}

func runOptimizer(t *testing.T, opt Optimizer, p *quadProblem, iters int) float64 {
	t.Helper()
	for i := 0; i < iters; i++ {
		batch := opt.Suggest()
		obs := make([]Observation, len(batch))
		for j, x := range batch {
			c, l := p.eval(x)
			obs[j] = Observation{X: x, Cost: c, Latency: l}
		}
		opt.Observe(obs)
	}
	_, cost, ok := opt.BestFeasible()
	if !ok {
		t.Fatal("no feasible configuration found")
	}
	return cost
}

func TestEngineConvergesNearOptimum(t *testing.T) {
	p := &quadProblem{qos: 1.6, noise: 1, rng: stats.NewRNG(1)}
	opt := New(Options{Dim: 2, QoS: p.qos, Seed: 2})
	got := runOptimizer(t, opt, p, 12) // 12 iterations x batch 3 = 36 samples
	optimal := p.optimum()
	if got > optimal*1.25 {
		t.Fatalf("engine cost %v, optimum %v: not within 25%%", got, optimal)
	}
}

func TestEngineBeatsRandomOnBudget(t *testing.T) {
	trials := 5
	var engWins int
	for s := int64(0); s < int64(trials); s++ {
		p1 := &quadProblem{qos: 1.6, noise: 1, rng: stats.NewRNG(100 + s)}
		eng := New(Options{Dim: 2, QoS: p1.qos, Seed: 200 + s})
		engCost := runOptimizer(t, eng, p1, 8)

		p2 := &quadProblem{qos: 1.6, noise: 1, rng: stats.NewRNG(100 + s)}
		rnd := NewRandomSearch(2, p2.qos, 3, 300+s)
		rndCost := runOptimizer(t, rnd, p2, 8)
		if engCost <= rndCost {
			engWins++
		}
	}
	if engWins < 3 {
		t.Fatalf("engine won only %d/%d trials vs random", engWins, trials)
	}
}

func TestEngineRobustToOutliers(t *testing.T) {
	// With anomaly detection the engine should stay near optimal despite
	// irregular interference spikes; with detection disabled (AquaLite) the
	// average regret across seeds should be no better.
	trials := 4
	var withDet, without float64
	for s := int64(0); s < int64(trials); s++ {
		p1 := &quadProblem{qos: 1.6, noise: 1, outlierRate: 0.2, rng: stats.NewRNG(400 + s)}
		e1 := New(Options{Dim: 2, QoS: p1.qos, Seed: 500 + s})
		withDet += runOptimizer(t, e1, p1, 12)

		p2 := &quadProblem{qos: 1.6, noise: 1, outlierRate: 0.2, rng: stats.NewRNG(400 + s)}
		e2 := New(Options{Dim: 2, QoS: p2.qos, Seed: 500 + s, DisableAnomalyDetection: true, Acquisition: EI})
		without += runOptimizer(t, e2, p2, 12)
	}
	optimal := (&quadProblem{qos: 1.6, rng: stats.NewRNG(1)}).optimum()
	if withDet/float64(trials) > optimal*1.4 {
		t.Fatalf("noise-aware engine mean cost %v too far from optimum %v", withDet/float64(trials), optimal)
	}
}

func TestAnomalyDetectionFlagsInjectedOutlier(t *testing.T) {
	p := &quadProblem{qos: 1.6, noise: 0.5, rng: stats.NewRNG(7)}
	e := New(Options{Dim: 2, QoS: p.qos, Seed: 8})
	// Feed clean observations.
	for i := 0; i < 6; i++ {
		batch := e.Suggest()
		obs := make([]Observation, len(batch))
		for j, x := range batch {
			c, l := p.eval(x)
			obs[j] = Observation{X: x, Cost: c, Latency: l}
		}
		e.Observe(obs)
	}
	before := e.NumAnomalies()
	// Inject one massive outlier.
	x := []float64{0.5, 0.5}
	e.Observe([]Observation{{X: x, Cost: 100, Latency: 50}})
	if e.NumAnomalies() <= before {
		t.Fatalf("outlier not flagged: anomalies %d -> %d", before, e.NumAnomalies())
	}
}

func TestChangeDetectionResetsHistory(t *testing.T) {
	e := New(Options{Dim: 1, QoS: 10, Seed: 9, ChangeBurst: 4, Bootstrap: 3})
	rng := stats.NewRNG(10)
	// Phase 1: smooth function.
	for i := 0; i < 8; i++ {
		batch := e.Suggest()
		obs := make([]Observation, len(batch))
		for j, x := range batch {
			obs[j] = Observation{X: x, Cost: 1 + x[0] + rng.Normal(0, 0.01), Latency: 2 - x[0]}
		}
		e.Observe(obs)
	}
	n := e.NumObservations()
	// Phase 2: behaviour changes drastically — every new observation is an
	// outlier under the old model.
	for i := 0; i < 4; i++ {
		batch := e.Suggest()
		obs := make([]Observation, len(batch))
		for j, x := range batch {
			obs[j] = Observation{X: x, Cost: 50 + 10*x[0] + rng.Normal(0, 0.01), Latency: 30 - x[0]}
		}
		e.Observe(obs)
	}
	if e.ChangeEvents() == 0 {
		t.Fatal("behaviour change was not detected")
	}
	if e.NumObservations() >= n+12 {
		t.Fatalf("history not truncated after change: %d obs", e.NumObservations())
	}
}

func TestSlidingWindow(t *testing.T) {
	e := New(Options{Dim: 1, QoS: 5, Seed: 11, Window: 10, DisableAnomalyDetection: true})
	for i := 0; i < 30; i++ {
		x := []float64{float64(i%10) / 10}
		e.Observe([]Observation{{X: x, Cost: 1, Latency: 1}})
	}
	if e.NumObservations() != 10 {
		t.Fatalf("window kept %d obs, want 10", e.NumObservations())
	}
}

func TestSuggestBatchSize(t *testing.T) {
	e := New(Options{Dim: 3, QoS: 1, Seed: 12})
	batch := e.Suggest()
	if len(batch) != 3 {
		t.Fatalf("default batch size = %d, want 3", len(batch))
	}
	for _, x := range batch {
		if len(x) != 3 {
			t.Fatalf("candidate dim = %d", len(x))
		}
		for _, v := range x {
			if v < 0 || v >= 1 {
				t.Fatalf("coordinate %v outside unit cube", v)
			}
		}
	}
}

func TestFeasibilityProbabilityOrdering(t *testing.T) {
	p := &quadProblem{qos: 1.6, noise: 0, rng: stats.NewRNG(13)}
	e := New(Options{Dim: 2, QoS: p.qos, Seed: 14})
	for i := 0; i < 10; i++ {
		batch := e.Suggest()
		obs := make([]Observation, len(batch))
		for j, x := range batch {
			c, l := p.eval(x)
			obs[j] = Observation{X: x, Cost: c, Latency: l}
		}
		e.Observe(obs)
	}
	// High resources -> low latency -> high feasibility probability.
	pHigh := e.FeasibilityProbability([]float64{0.95, 0.95})
	pLow := e.FeasibilityProbability([]float64{0.02, 0.02})
	if pHigh <= pLow {
		t.Fatalf("feasibility ordering wrong: high %v low %v", pHigh, pLow)
	}
}

func TestBestFeasibleFallback(t *testing.T) {
	e := New(Options{Dim: 1, QoS: 1, Seed: 15})
	e.Observe([]Observation{{X: []float64{0.5}, Cost: 2, Latency: 5}}) // infeasible
	if _, _, ok := e.BestFeasible(); ok {
		t.Fatal("BestFeasible should report no feasible point")
	}
	if _, c, ok := e.BestAny(); !ok || c != 2 {
		t.Fatalf("BestAny = (%v, %v)", c, ok)
	}
}

func TestCLITEConvergesOnSmoothProblem(t *testing.T) {
	p := &quadProblem{qos: 1.6, noise: 0, rng: stats.NewRNG(16)}
	c := NewCLITE(2, p.qos, 17)
	got := runOptimizer(t, c, p, 36) // same total sample budget as engine x12
	optimal := p.optimum()
	if got > optimal*1.6 {
		t.Fatalf("CLITE cost %v too far from optimum %v", got, optimal)
	}
}

func TestCLITEScorePenalizesViolations(t *testing.T) {
	c := NewCLITE(1, 1.0, 18)
	feasible := Observation{Cost: 2, Latency: 0.9}
	violating := Observation{Cost: 2, Latency: 1.5}
	if c.score(violating) <= c.score(feasible) {
		t.Fatal("violating configuration should score worse")
	}
}

func TestRandomSearchFindsFeasible(t *testing.T) {
	p := &quadProblem{qos: 1.6, noise: 0, rng: stats.NewRNG(19)}
	r := NewRandomSearch(2, p.qos, 3, 20)
	cost := runOptimizer(t, r, p, 20)
	if math.IsInf(cost, 1) {
		t.Fatal("random search found nothing")
	}
}

func TestEngineBadDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Options{})
}

func TestOptionsDefaults(t *testing.T) {
	e := New(Options{Dim: 1})
	cfg := e.Options()
	if cfg.BatchSize != 3 || cfg.FantasySamples != 128 || cfg.AnomalyZ != 3.5 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	// RefitEveryK defaults to ceil(5/BatchSize): the historical
	// every-5-observations cadence expressed in window updates.
	if cfg.RefitEveryK != 2 {
		t.Fatalf("RefitEveryK default = %d, want 2", cfg.RefitEveryK)
	}
	if q1 := New(Options{Dim: 1, BatchSize: 1}).Options(); q1.RefitEveryK != 5 {
		t.Fatalf("RefitEveryK (q=1) = %d, want 5", q1.RefitEveryK)
	}
}
