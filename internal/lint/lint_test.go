package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// parseFixture loads one testdata file as a single-file package. Fixtures
// are self-contained, so type-checking runs without an importer and
// tolerates the resulting unresolved std imports — the analyzers only
// need types for locally declared code.
func parseFixture(t *testing.T, name, pkgPath string, typed bool) *Package {
	t.Helper()
	path := filepath.Join("testdata", name)
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{PkgPath: pkgPath, Fset: fset, Files: []*File{{Name: path, AST: f}}}
	if typed {
		pkg.Info = newTypesInfo()
		conf := types.Config{Error: func(error) {}}
		conf.Check(pkgPath, fset, []*ast.File{f}, pkg.Info) //aqualint:allow droppederr fixtures type-check with expected unresolved-import errors
	}
	return pkg
}

var wantRE = regexp.MustCompile(`want (\w+)`)

// expectations collects "// want <check>" markers per line.
func expectations(pkg *Package) map[int][]string {
	want := make(map[int][]string)
	for _, file := range pkg.Files {
		for _, cg := range file.AST.Comments {
			for _, c := range cg.List {
				line := pkg.Fset.Position(c.Pos()).Line
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					want[line] = append(want[line], m[1])
				}
			}
		}
	}
	return want
}

func checkFixture(t *testing.T, fixture, check string, typed bool, rule Rule) {
	t.Helper()
	pkg := parseFixture(t, fixture, "fixture/"+check, typed)
	findings := Run([]*Package{pkg}, Config{Checks: map[string]Rule{check: rule}})
	got := make(map[int][]string)
	for _, f := range findings {
		got[f.Pos.Line] = append(got[f.Pos.Line], f.Check)
	}
	want := expectations(pkg)
	lines := make(map[int]bool)
	for l := range got {
		lines[l] = true
	}
	for l := range want {
		lines[l] = true
	}
	var sorted []int
	for l := range lines {
		sorted = append(sorted, l)
	}
	sort.Ints(sorted)
	for _, l := range sorted {
		if fmt.Sprint(got[l]) != fmt.Sprint(want[l]) {
			t.Errorf("%s:%d: got findings %v, want %v", fixture, l, got[l], want[l])
		}
	}
}

func TestWallclockFixture(t *testing.T) {
	checkFixture(t, "wallclock.go", "wallclock", false, Rule{Tests: true})
}

func TestGlobalrandFixture(t *testing.T) {
	checkFixture(t, "globalrand.go", "globalrand", false, Rule{Tests: true})
}

func TestMaporderFixture(t *testing.T) {
	checkFixture(t, "maporder.go", "maporder", true, Rule{Sinks: []string{"fixture/maporder"}})
}

func TestDroppederrFixture(t *testing.T) {
	checkFixture(t, "droppederr.go", "droppederr", true, Rule{})
}

func TestMetricnameFixture(t *testing.T) {
	checkFixture(t, "metricname.go", "metricname", true, Rule{Sinks: []string{"fixture/metricname"}})
}

func TestSeedflowFixture(t *testing.T) {
	checkFixture(t, "seedflow.go", "seedflow", true, Rule{Sinks: []string{"fixture/seedflow"}})
}

func TestSpanpairFixture(t *testing.T) {
	checkFixture(t, "spanpair.go", "spanpair", true, Rule{Sinks: []string{"fixture/spanpair"}})
}

func TestSharedmutFixture(t *testing.T) {
	checkFixture(t, "sharedmut.go", "sharedmut", true, Rule{Sinks: []string{"fixture/sharedmut"}})
}

func TestHotallocFixture(t *testing.T) {
	checkFixture(t, "hotalloc.go", "hotalloc", true, Rule{})
}

// TestSpanpairCatchesEarlyReturnLeak pins the motivating bug shape for
// the spanpair analyzer: a span started at the top of a function and
// leaked by an early return must be reported, and the finding must name
// the leaking return's line so the fix is mechanical.
func TestSpanpairCatchesEarlyReturnLeak(t *testing.T) {
	pkg := parseFixture(t, "spanpair.go", "fixture/spanpair", true)
	findings := Run([]*Package{pkg}, Config{Checks: map[string]Rule{
		"spanpair": {Sinks: []string{"fixture/spanpair"}},
	}})
	found := false
	for _, f := range findings {
		if strings.Contains(f.Message, "not ended on every path") && strings.Contains(f.Message, "the return at line") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no early-return span-leak finding naming the return line; got %v", findings)
	}
}

func TestMalformedDirectivesAreFindings(t *testing.T) {
	pkg := parseFixture(t, "directive.go", "fixture/directive", false)
	findings := Run([]*Package{pkg}, Config{Checks: map[string]Rule{}})
	if len(findings) != 4 {
		t.Fatalf("got %d findings, want 4 malformed directives: %v", len(findings), findings)
	}
	for _, f := range findings {
		if f.Check != "directive" {
			t.Errorf("unexpected finding %v", f)
		}
	}
}

func TestPackageGlobExcludeSuppresses(t *testing.T) {
	// The internal/stats mechanism: a package glob exempts a whole
	// package from a check.
	pkg := parseFixture(t, "globalrand.go", "fixture/globalrand", false)
	cfg := Config{Checks: map[string]Rule{
		"globalrand": {Exclude: []string{"fixture/globalrand"}},
	}}
	if findings := Run([]*Package{pkg}, cfg); len(findings) != 0 {
		t.Fatalf("excluded package still reported: %v", findings)
	}
}

func TestMatchGlob(t *testing.T) {
	cases := []struct {
		pattern, path string
		want          bool
	}{
		{"...", "anything/at/all", true},
		{"aquatope/internal/...", "aquatope/internal/sim", true},
		{"aquatope/internal/...", "aquatope/internal", true},
		{"aquatope/internal/...", "aquatope/internals", false},
		{"aquatope/internal/stats", "aquatope/internal/stats", true},
		{"aquatope/internal/stats", "aquatope/internal/stats/sub", false},
	}
	for _, c := range cases {
		if got := matchGlob(c.pattern, c.path); got != c.want {
			t.Errorf("matchGlob(%q, %q) = %v, want %v", c.pattern, c.path, got, c.want)
		}
	}
}

// parseSource builds a package from an in-memory file, stamped with an
// arbitrary import path so config scoping can be tested.
func parseSource(t *testing.T, pkgPath, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{PkgPath: pkgPath, Fset: fset, Files: []*File{{Name: "src.go", AST: f}}}
}

func TestDefaultConfigFlagsSeededViolation(t *testing.T) {
	// A deliberate wall-clock call planted in a simulation package must
	// fail the default policy (the acceptance check for the lint gate).
	pkg := parseSource(t, "aquatope/internal/faas", `package faas
import "time"
func bad() { time.Sleep(time.Second) }
`)
	findings := Run([]*Package{pkg}, DefaultConfig())
	if len(findings) != 1 || findings[0].Check != "wallclock" {
		t.Fatalf("want exactly one wallclock finding, got %v", findings)
	}
}

func TestDefaultConfigExemptsStatsFromGlobalrand(t *testing.T) {
	pkg := parseSource(t, "aquatope/internal/stats", `package stats
import "math/rand"
func ok(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
`)
	if findings := Run([]*Package{pkg}, DefaultConfig()); len(findings) != 0 {
		t.Fatalf("internal/stats must be exempt from globalrand, got %v", findings)
	}
}

// TestDefaultConfigCoversSched: the pluggable scheduler package must sit
// under every determinism check — competitor implementations are exactly
// where ad-hoc wall-clock or global randomness would creep in.
func TestDefaultConfigCoversSched(t *testing.T) {
	cfg := DefaultConfig()
	for check, rule := range cfg.Checks {
		if check == "hotalloc" {
			continue // hotalloc is deliberately scoped to the sim/faas/workflow hot path
		}
		if !rule.appliesTo("aquatope/internal/sched") {
			t.Errorf("check %s does not cover aquatope/internal/sched", check)
		}
	}
	// And the gate must actually bite there: a planted wall-clock call in
	// a sched source file is a finding.
	pkg := parseSource(t, "aquatope/internal/sched", `package sched
import "time"
func bad() { time.Sleep(time.Second) }
`)
	findings := Run([]*Package{pkg}, cfg)
	if len(findings) != 1 || findings[0].Check != "wallclock" {
		t.Fatalf("want exactly one wallclock finding in internal/sched, got %v", findings)
	}
}
