package obs

import (
	"bytes"
	"math"
	"testing"

	"aquatope/internal/telemetry"
)

// span is a compact hand-built span constructor for tests.
func span(id, parent telemetry.SpanID, kind, name string, start, end float64, f telemetry.Fields) telemetry.Span {
	return telemetry.Span{ID: id, Parent: parent, Kind: kind, Name: name, Start: start, End: end, Fields: f}
}

// testTrace builds a two-stage workflow [0,10] for app "app" (QoS 8s):
//
//	s0 [0,4]: cold invocation, wait 1 (all init), exec 3
//	s1 [4,10]: retry attempt starting at 5 (1s retry overhead),
//	           wait 1 (queueing), exec 4; plus a hedge loser ending at 10.5
//
// Expected attribution: cold 1 + exec 7 + retry 1 + queue 1 = 10 = latency.
func testTrace() []telemetry.Span {
	return []telemetry.Span{
		span(1, 0, telemetry.KindRunMeta, "app", 0, 0,
			telemetry.Fields{"qos": 8, "train_s": 0, "invokers": 1}),
		span(2, 0, telemetry.KindContainerCreate, "fa", 0, 0,
			telemetry.Fields{"container": 0, "init_s": 1, "invoker": 0, "mem_mb": 128}),
		span(3, 0, telemetry.KindWorkflow, "app", 0, 10, nil),
		span(4, 3, telemetry.KindStage, "s0", 0, 4,
			telemetry.Fields{"invocations": 1}),
		span(5, 4, telemetry.KindInvocation, "fa", 0, 4,
			telemetry.Fields{"cold": 1, "wait_s": 1, "exec_s": 3, "container": 0, "outcome": 0}),
		span(6, 3, telemetry.KindStage, "s1", 4, 10,
			telemetry.Fields{"invocations": 2}),
		span(7, 6, telemetry.KindInvocation, "fb", 5, 10,
			telemetry.Fields{"attempt": 1, "wait_s": 1, "exec_s": 4, "container": 1, "outcome": 0}),
		// Hedge loser: ends after the stage, must not settle it.
		span(8, 6, telemetry.KindInvocation, "fb", 5, 10.5,
			telemetry.Fields{"hedge": 1, "wait_s": 1.5, "exec_s": 4, "container": 2, "outcome": 0}),
	}
}

func TestAttributionTwoStage(t *testing.T) {
	a := Analyze(testTrace(), nil, Options{})
	if a.Workflows != 1 || len(a.Attributions) != 1 {
		t.Fatalf("workflows = %d, attributions = %d, want 1", a.Workflows, len(a.Attributions))
	}
	at := a.Attributions[0]
	if at.Latency != 10 {
		t.Fatalf("latency = %g, want 10", at.Latency)
	}
	want := Phases{Queue: 1, Cold: 1, Exec: 7, Retry: 1, Sched: 0}
	if at.Phases != want {
		t.Fatalf("phases = %+v, want %+v", at.Phases, want)
	}
	if got := at.Phases.Total(); math.Abs(got-at.Latency) > 1e-9 {
		t.Fatalf("phase total %g != latency %g", got, at.Latency)
	}
	if len(at.Critical) != 2 || at.Critical[0].Stage != "s0" || at.Critical[1].Stage != "s1" {
		t.Fatalf("critical chain = %+v, want [s0 s1]", at.Critical)
	}
	if !at.Critical[0].Cold || at.Critical[0].Function != "fa" {
		t.Fatalf("s0 attribution = %+v, want cold fa", at.Critical[0])
	}
	if at.Critical[1].Attempt != 1 || at.Critical[1].Phases.Retry != 1 {
		t.Fatalf("s1 attribution = %+v, want retry attempt 1", at.Critical[1])
	}
	// Latency 10 > QoS 8 → violation, surfaced in the app rollup.
	if !at.Violation {
		t.Fatal("expected a QoS violation")
	}
	if len(a.Apps) != 1 || a.Apps[0].Violations != 1 || len(a.Apps[0].TopViolators) != 1 {
		t.Fatalf("app rollup = %+v, want 1 violation listed", a.Apps)
	}
	if a.AttributionError > 1e-9 {
		t.Fatalf("attribution error = %g, want 0", a.AttributionError)
	}
}

func TestCriticalChainPicksLongestBranch(t *testing.T) {
	// Fan-out: s0 [0,2] feeds s1 [2,3] and s2 [2,6]; join s3 [6,7] starts
	// when s2 (the slower branch) ends. Chain must be s0→s2→s3.
	spans := []telemetry.Span{
		span(1, 0, telemetry.KindWorkflow, "app", 0, 7, nil),
		span(2, 1, telemetry.KindStage, "s0", 0, 2, nil),
		span(3, 1, telemetry.KindStage, "s1", 2, 3, nil),
		span(4, 1, telemetry.KindStage, "s2", 2, 6, nil),
		span(5, 1, telemetry.KindStage, "s3", 6, 7, nil),
	}
	a := Analyze(spans, nil, Options{})
	at := a.Attributions[0]
	var names []string
	for _, sa := range at.Critical {
		names = append(names, sa.Stage)
	}
	if len(names) != 3 || names[0] != "s0" || names[1] != "s2" || names[2] != "s3" {
		t.Fatalf("critical chain = %v, want [s0 s2 s3]", names)
	}
	// No invocations recorded: everything is scheduling gap, still
	// telescoping to the full latency.
	if math.Abs(at.Phases.Total()-7) > 1e-9 || math.Abs(at.Phases.Sched-7) > 1e-9 {
		t.Fatalf("phases = %+v, want sched 7", at.Phases)
	}
}

func TestSkippedStageMarksFailure(t *testing.T) {
	spans := []telemetry.Span{
		span(1, 0, telemetry.KindRunMeta, "app", 0, 0, telemetry.Fields{"qos": 8, "train_s": 0}),
		span(2, 0, telemetry.KindWorkflow, "app", 0, 3, nil),
		span(3, 2, telemetry.KindStage, "s0", 0, 3, nil),
		span(4, 3, telemetry.KindInvocation, "fa", 0, 3,
			telemetry.Fields{"wait_s": 1, "exec_s": 2, "outcome": 2, "container": 0}),
		span(5, 2, telemetry.KindStage, "s1", 3, 3, telemetry.Fields{"skipped": 1, "invocations": 0}),
	}
	a := Analyze(spans, nil, Options{})
	at := a.Attributions[0]
	if !at.Failed || !at.Violation {
		t.Fatalf("attribution = %+v, want failed+violation", at)
	}
	if a.Apps[0].Failed != 1 {
		t.Fatalf("app failed = %d, want 1", a.Apps[0].Failed)
	}
}

func TestTrainingWindowFilter(t *testing.T) {
	spans := []telemetry.Span{
		span(1, 0, telemetry.KindRunMeta, "app", 0, 0, telemetry.Fields{"qos": 8, "train_s": 60}),
		span(2, 0, telemetry.KindWorkflow, "app", 10, 15, nil), // training
		span(3, 0, telemetry.KindWorkflow, "app", 70, 75, nil), // evaluation
	}
	a := Analyze(spans, nil, Options{})
	if a.Workflows != 2 || a.SkippedTraining != 1 || len(a.Attributions) != 1 {
		t.Fatalf("got workflows=%d skipped=%d attrs=%d, want 2/1/1",
			a.Workflows, a.SkippedTraining, len(a.Attributions))
	}
	all := Analyze(spans, nil, Options{IncludeTraining: true})
	if all.SkippedTraining != 0 || len(all.Attributions) != 2 {
		t.Fatalf("IncludeTraining: skipped=%d attrs=%d, want 0/2", all.SkippedTraining, len(all.Attributions))
	}
}

func TestBuildAuditSummaries(t *testing.T) {
	spans := []telemetry.Span{
		span(1, 0, telemetry.KindPoolDecision, "fa", 30, 30, telemetry.Fields{
			"predicted": 2.5, "headroom": 1.1, "target": 4, "actual": 2,
			"demand": 3, "idle": 1, "warming": 0, "busy": 2, "why": 0}),
		span(2, 0, telemetry.KindPoolMode, "fa", 31, 31, telemetry.Fields{
			"mode": 1, "trigger": 1, "sheds": 7}),
		span(3, 0, telemetry.KindPoolDecision, "fa", 60, 60, telemetry.Fields{
			"predicted": 9, "headroom": 3, "target": 6, "demand": 5,
			"sheds_interval": 7, "open_breakers": 0, "why": 1}),
		span(4, 0, telemetry.KindPoolDecision, "fa", 61, 61, telemetry.Fields{
			"target": 6, "invoker": 2, "rewarm": 1, "why": 2}),
		span(5, 0, telemetry.KindBODecision, "bo", 0, 0, telemetry.Fields{
			"batch": 3, "candidates": 0, "observations": 0, "bootstrap": 1, "qos": 8}),
		span(6, 0, telemetry.KindBOIteration, "bo", 0, 0, telemetry.Fields{
			"observations": 3, "pruned": 0}),
		span(7, 0, telemetry.KindBreaker, "invoker2", 90, 90, telemetry.Fields{
			"invoker": 2, "state": 1, "err_rate": 0.6}),
	}
	audit, sum := buildAudit(spans)
	if len(audit) != 7 {
		t.Fatalf("audit length = %d, want 7", len(audit))
	}
	if sum.PoolDecisions != 2 || sum.Degraded != 1 || sum.Rewarms != 1 ||
		sum.ModeSwitches != 1 || sum.BOSuggests != 1 || sum.BOBootstraps != 1 ||
		sum.BOIterations != 1 || sum.BreakerEvents != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	if len(sum.PerFunction) != 1 {
		t.Fatalf("per-function = %+v, want one entry", sum.PerFunction)
	}
	fa := sum.PerFunction[0]
	// Means cover the 2 sizing decisions (rewarm excluded).
	if fa.Decisions != 2 || fa.MaxTgt != 6 || math.Abs(fa.MeanPred-5.75) > 1e-9 {
		t.Fatalf("fa stats = %+v", fa)
	}
	for _, r := range audit {
		if r.Why == "" {
			t.Fatalf("record %+v has empty why", r)
		}
	}
}

func TestUtilizationFromSnapshot(t *testing.T) {
	snap := &telemetry.Snapshot{Gauges: map[string]float64{
		telemetry.MetricInvokerBusyS + ".0":   10,
		telemetry.MetricInvokerIdleS + ".0":   5,
		telemetry.MetricInvokerBusyS + ".2":   3,
		telemetry.MetricInvokerCreated + ".2": 4,
		telemetry.MetricBinPackEfficiency:     0.25,
		telemetry.MetricFleetCPUUtil:          0.5,
	}}
	u := utilizationFrom(snap)
	if u == nil || len(u.Invokers) != 2 {
		t.Fatalf("utilization = %+v, want 2 invokers", u)
	}
	if u.Invokers[0].Invoker != 0 || u.Invokers[1].Invoker != 2 {
		t.Fatalf("invoker order = %+v, want sorted by ID", u.Invokers)
	}
	if u.Invokers[0].BusyS != 10 || u.Invokers[1].Created != 4 {
		t.Fatalf("invoker values = %+v", u.Invokers)
	}
	if u.BinPackEfficiency != 0.25 || u.FleetCPUUtil != 0.5 {
		t.Fatalf("fleet gauges = %+v", u)
	}
	if got := utilizationFrom(&telemetry.Snapshot{}); got != nil {
		t.Fatalf("empty snapshot gave %+v, want nil", got)
	}
}

func TestRenderDeterminism(t *testing.T) {
	snap := &telemetry.Snapshot{Gauges: map[string]float64{
		telemetry.MetricInvokerBusyS + ".0": 10,
		telemetry.MetricBinPackEfficiency:   0.25,
	}}
	render := func() (string, string, string) {
		a := Analyze(testTrace(), snap, Options{})
		var txt, audit, js bytes.Buffer
		if err := a.WriteText(&txt); err != nil {
			t.Fatal(err)
		}
		if err := a.WriteAudit(&audit); err != nil {
			t.Fatal(err)
		}
		if err := a.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		return txt.String(), audit.String(), js.String()
	}
	t1, a1, j1 := render()
	for i := 0; i < 3; i++ {
		t2, a2, j2 := render()
		if t1 != t2 || a1 != a2 || j1 != j2 {
			t.Fatal("repeated renders differ")
		}
	}
	if t1 == "" || j1 == "" {
		t.Fatal("empty render")
	}
}
