package experiments

import (
	"fmt"

	"aquatope/internal/apps"
	"aquatope/internal/bo"
	"aquatope/internal/faas"
	"aquatope/internal/pool"
	"aquatope/internal/resource"
	"aquatope/internal/trace"
)

// AblationBatchResult sweeps the BO batch size q: the paper uses q=3,
// claiming it "speeds up the search without sacrificing quality" (§5.3).
// Iterations measures wall-clock-equivalent rounds (each round's samples
// are profiled in parallel on the scalable platform).
type AblationBatchResult struct {
	Q          []int
	CostPct    []float64 // final cost, % oracle
	Iterations []float64 // search rounds needed to consume the budget
}

// Table renders the sweep.
func (r AblationBatchResult) Table() string {
	rows := make([][]string, len(r.Q))
	for i := range r.Q {
		rows[i] = []string{fmt.Sprintf("q=%d", r.Q[i]), f0(r.CostPct[i]) + "%", f0(r.Iterations[i])}
	}
	return formatTable([]string{"Batch", "Cost(%Oracle)", "Rounds"}, rows)
}

// AblationBatchSize runs the Aquatope engine on the ML pipeline with batch
// sizes 1, 3 and 6 under the same total sample budget.
func AblationBatchSize(s Scale) AblationBatchResult {
	a := apps.NewMLPipeline()
	space := resource.NewSpace(a)
	_, oracleCost, _, _, ok := solveOracle(a, s.Seed)
	if !ok {
		return AblationBatchResult{}
	}
	evalProf := resource.NewProfiler(a, s.Seed+500)
	res := AblationBatchResult{}
	for _, q := range []int{1, 3, 6} {
		var sumCost, sumRounds float64
		n := 0
		for rep := 0; rep < s.Repeats; rep++ {
			seed := s.Seed + int64(rep)*53
			prof := resource.NewProfiler(a, seed)
			prof.Noise = profileNoise
			eng := bo.New(bo.Config{Dim: space.Dim(), QoS: a.QoS, Seed: seed, BatchSize: q})
			m := &resource.BOManager{Label: "aquatope", Space: space, Profiler: prof, Opt: eng}
			rounds := 0
			for m.Samples() < s.SearchBudget {
				if m.Step() == 0 {
					break
				}
				rounds++
			}
			if cfg, _, okB := m.Best(); okB {
				if c, feasible := evalTrue(evalProf, cfg, a.QoS); feasible {
					sumCost += c
					sumRounds += float64(rounds)
					n++
				}
			}
		}
		if n == 0 {
			continue
		}
		res.Q = append(res.Q, q)
		res.CostPct = append(res.CostPct, sumCost/float64(n)/oracleCost*100)
		res.Iterations = append(res.Iterations, sumRounds/float64(n))
	}
	return res
}

// ---------------------------------------------------------------------------

// AblationHeadroomResult sweeps the pool's uncertainty headroom z,
// exposing the cold-start / memory trade-off the paper's uncertainty-aware
// sizing navigates.
type AblationHeadroomResult struct {
	Z        []float64
	ColdRate []float64
	MemGBs   []float64
}

// Table renders the trade-off curve.
func (r AblationHeadroomResult) Table() string {
	rows := make([][]string, len(r.Z))
	for i := range r.Z {
		rows[i] = []string{fmt.Sprintf("z=%.1f", r.Z[i]), pct(r.ColdRate[i]), f0(r.MemGBs[i])}
	}
	return formatTable([]string{"Headroom", "ColdStart", "MemGBs"}, rows)
}

// AblationHeadroom replays a periodic trace under the Aquatope pool with
// growing headroom.
func AblationHeadroom(s Scale) AblationHeadroomResult {
	tr := trace.SynthesizePeriodic(trace.PeriodicGenConfig{
		DurationMin: s.TraceMin, PeriodMin: 30, JitterFrac: 0.12,
		ClumpMean: 2.5, Diurnal: 0.5, Seed: s.Seed + 31,
	})
	model := faas.DefaultSyntheticModel()
	model.BaseExecSec = 6
	model.ColdInitSec = 3
	res := AblationHeadroomResult{}
	for _, z := range []float64{0.5, 1, 2, 3, 4} {
		p := s.aquatopePolicy(false)
		p.HeadroomZ = z
		r := pool.Run(pool.RunConfig{
			Trace: tr, TrainMin: s.TrainMin, Model: model,
			Resources: faas.ResourceConfig{CPU: 1, MemoryMB: 512},
			Policy:    p, Seed: s.Seed,
		})
		res.Z = append(res.Z, z)
		res.ColdRate = append(res.ColdRate, r.ColdRate)
		res.MemGBs = append(res.MemGBs, r.ProvisionedMemGBs)
	}
	return res
}

// ---------------------------------------------------------------------------

// AblationMCSamplesResult sweeps the number of MC-dropout forward passes T
// used for the predictive distribution.
type AblationMCSamplesResult struct {
	T        []int
	ColdRate []float64
	MemGBs   []float64
}

// Table renders the sweep.
func (r AblationMCSamplesResult) Table() string {
	rows := make([][]string, len(r.T))
	for i := range r.T {
		rows[i] = []string{fmt.Sprintf("T=%d", r.T[i]), pct(r.ColdRate[i]), f0(r.MemGBs[i])}
	}
	return formatTable([]string{"MCSamples", "ColdStart", "MemGBs"}, rows)
}

// AblationMCSamples varies T on the same periodic workload.
func AblationMCSamples(s Scale) AblationMCSamplesResult {
	tr := trace.SynthesizePeriodic(trace.PeriodicGenConfig{
		DurationMin: s.TraceMin, PeriodMin: 30, JitterFrac: 0.12,
		ClumpMean: 2.5, Diurnal: 0.5, Seed: s.Seed + 37,
	})
	model := faas.DefaultSyntheticModel()
	model.BaseExecSec = 6
	model.ColdInitSec = 3
	res := AblationMCSamplesResult{}
	for _, T := range []int{1, 5, 15, 30} {
		p := s.aquatopePolicy(false)
		p.ModelConfig.MCSamples = T
		r := pool.Run(pool.RunConfig{
			Trace: tr, TrainMin: s.TrainMin, Model: model,
			Resources: faas.ResourceConfig{CPU: 1, MemoryMB: 512},
			Policy:    p, Seed: s.Seed,
		})
		res.T = append(res.T, T)
		res.ColdRate = append(res.ColdRate, r.ColdRate)
		res.MemGBs = append(res.MemGBs, r.ProvisionedMemGBs)
	}
	return res
}
