package experiments

import (
	"fmt"
	"math"

	"aquatope/internal/apps"
	"aquatope/internal/experiments/runner"
	"aquatope/internal/faas"
	"aquatope/internal/resource"
	"aquatope/internal/stats"
)

// evalApps returns the five evaluation applications.
func evalApps(seed int64) []*apps.App { return apps.All(seed) }

// profileNoise is the default platform noise during configuration search.
var profileNoise = faas.Noise{GaussianStd: 0.15, OutlierRate: 0.02, OutlierScale: 3}

// managerFactories is the Fig. 12/13 lineup.
func managerFactories() map[string]func(space *resource.Space, prof *resource.Profiler, qos float64, seed int64) resource.Manager {
	return map[string]func(space *resource.Space, prof *resource.Profiler, qos float64, seed int64) resource.Manager{
		"random": func(sp *resource.Space, p *resource.Profiler, q float64, seed int64) resource.Manager {
			return resource.NewRandom(sp, p, q, seed)
		},
		"autoscale": func(sp *resource.Space, p *resource.Profiler, q float64, seed int64) resource.Manager {
			return resource.NewAutoscale(sp, p, q, seed)
		},
		"clite": func(sp *resource.Space, p *resource.Profiler, q float64, seed int64) resource.Manager {
			return resource.NewCLITE(sp, p, q, seed)
		},
		"aquatope": func(sp *resource.Space, p *resource.Profiler, q float64, seed int64) resource.Manager {
			return resource.NewAquatope(sp, p, q, seed)
		},
	}
}

var managerOrder = []string{"random", "autoscale", "clite", "aquatope"}

// evalTrue re-evaluates a chosen configuration noiselessly and reports
// whether it truly meets QoS — the managers' own feasibility judgements
// are made under noise, so a "best feasible" pick can violate in truth.
func evalTrue(prof *resource.Profiler, cfg map[string]faas.ResourceConfig, qos float64) (cost float64, feasible bool) {
	cpu, mem, lat := prof.SampleNoiselessComponents(cfg, 3)
	return prof.CPUWeight*cpu + prof.MemWeight*mem, lat <= qos
}

// solveOracle returns the oracle's cost components for an app.
func solveOracle(a *apps.App, seed int64) (cfg map[string]faas.ResourceConfig, cost, cpu, mem float64, ok bool) {
	space := resource.NewSpace(a)
	prof := resource.NewProfiler(a, seed)
	or := resource.NewOracle(space, prof, a.QoS, seed)
	or.MaxGrid = 1 // coordinate descent: tractable on every app
	or.Repeats = 3
	cfg, cost, ok = or.Solve()
	if !ok {
		return nil, 0, 0, 0, false
	}
	cpu, mem, _ = prof.SampleNoiselessComponents(cfg, 4)
	return cfg, cost, cpu, mem, true
}

// oracleSolution is one oracle replication's output.
type oracleSolution struct {
	cost, cpu, mem float64
	ok             bool
}

// oracleJobs builds one oracle-solve replication per evaluation app.
func oracleJobs(s Scale, names []string, mk func(i int) *apps.App) []runner.Job[oracleSolution] {
	jobs := make([]runner.Job[oracleSolution], len(names))
	for i := range names {
		i := i
		jobs[i] = runner.Job[oracleSolution]{Cell: "oracle/" + names[i],
			Run: func(runner.Ctx) (oracleSolution, error) {
				_, cost, cpu, mem, ok := solveOracle(mk(i), s.Seed)
				return oracleSolution{cost: cost, cpu: cpu, mem: mem, ok: ok}, nil
			}}
	}
	return jobs
}

// ---------------------------------------------------------------------------

// Fig12Result holds the cost-vs-budget convergence curves per app and
// manager, normalized to the oracle cost (values ≥ 1).
type Fig12Result struct {
	Apps     []string
	Budgets  []int                           // sample counts at measurement points
	Curves   map[string]map[string][]float64 // app -> manager -> % oracle per budget point
	OracleAt map[string]float64
}

// Table renders one block per app.
func (r Fig12Result) Table() string {
	var out string
	for _, app := range r.Apps {
		rows := [][]string{}
		for _, m := range managerOrder {
			row := []string{m}
			for _, v := range r.Curves[app][m] {
				row = append(row, f0(v*100)+"%")
			}
			rows = append(rows, row)
		}
		header := []string{app + " @samples"}
		for _, b := range r.Budgets {
			header = append(header, fmt.Sprintf("%d", b))
		}
		out += formatTable(header, rows) + "\n"
	}
	return out
}

// Rows implements Result: the per-app blocks flattened into one table.
func (r Fig12Result) Rows() ([]string, [][]string) {
	header := []string{"App", "Manager"}
	for _, b := range r.Budgets {
		header = append(header, fmt.Sprintf("@%d", b))
	}
	var rows [][]string
	for _, app := range r.Apps {
		for _, m := range managerOrder {
			row := []string{app, m}
			for _, v := range r.Curves[app][m] {
				row = append(row, f0(v*100)+"%")
			}
			rows = append(rows, row)
		}
	}
	return header, rows
}

// fig12Checkpoints returns the budget measurement points.
func fig12Checkpoints(budget int) []int {
	return []int{budget / 5, 2 * budget / 5, 3 * budget / 5, 4 * budget / 5, budget}
}

// fig12Curve runs one manager repetition and returns the running-best
// truly-feasible cost at each checkpoint (math.Inf(1) until the first
// feasible pick). Values are raw costs; the caller normalizes by oracle.
func fig12Curve(s Scale, a *apps.App, mgr string, rep int) []float64 {
	checkpoints := fig12Checkpoints(s.SearchBudget)
	seed := s.Seed + int64(rep)*37
	prof := resource.NewProfiler(a, seed)
	prof.Noise = profileNoise
	m := managerFactories()[mgr](resource.NewSpace(a), prof, a.QoS, seed)
	evalProf := resource.NewProfiler(a, s.Seed+500)
	curve := make([]float64, len(checkpoints))
	ci := 0
	bestTrue := math.Inf(1)
	lastEvaluated := ""
	for m.Samples() < s.SearchBudget && ci < len(checkpoints) {
		if m.Step() == 0 {
			break
		}
		for ci < len(checkpoints) && m.Samples() >= checkpoints[ci] {
			if cfg, _, ok := m.Best(); ok {
				key := fmt.Sprint(cfg)
				if key != lastEvaluated {
					// Count only configurations that truly meet QoS when
					// re-measured noiselessly.
					if c, feasible := evalTrue(evalProf, cfg, a.QoS); feasible && c < bestTrue {
						bestTrue = c
					}
					lastEvaluated = key
				}
			}
			curve[ci] = bestTrue
			ci++
		}
	}
	for ; ci < len(checkpoints); ci++ {
		curve[ci] = bestTrue
	}
	return curve
}

// Fig12 measures convergence: best-feasible cost (noiselessly re-evaluated)
// as the search budget grows, for each workflow and manager. Replications:
// one oracle solve per app, then one search per (app, manager, repetition).
func Fig12(s Scale) Fig12Result {
	names := make([]string, 0, 5)
	for _, a := range evalApps(s.Seed) {
		names = append(names, a.Name)
	}
	eng := s.engine("fig12")
	oracles := runner.MustRun(eng, oracleJobs(s, names,
		func(i int) *apps.App { return evalApps(s.Seed)[i] }))

	var jobs []runner.Job[[]float64]
	for ai := range names {
		ai := ai
		if !oracles[ai].ok {
			continue
		}
		for _, mgr := range managerOrder {
			mgr := mgr
			for rep := 0; rep < s.Repeats; rep++ {
				rep := rep
				jobs = append(jobs, runner.Job[[]float64]{
					Cell: names[ai] + "/" + mgr, Rep: rep,
					Run: func(runner.Ctx) ([]float64, error) {
						return fig12Curve(s, evalApps(s.Seed)[ai], mgr, rep), nil
					}})
			}
		}
	}
	curves := runner.MustRun(eng, jobs)

	res := Fig12Result{
		Apps:     names,
		Budgets:  fig12Checkpoints(s.SearchBudget),
		Curves:   make(map[string]map[string][]float64),
		OracleAt: make(map[string]float64),
	}
	ji := 0
	for ai, name := range names {
		if !oracles[ai].ok {
			continue
		}
		res.OracleAt[name] = oracles[ai].cost
		res.Curves[name] = make(map[string][]float64)
		for _, mgr := range managerOrder {
			reps := curves[ji : ji+s.Repeats]
			ji += s.Repeats
			// Mean across repetitions, ignoring infinities (no feasible
			// yet), normalized by the oracle cost.
			agg := make([]float64, len(res.Budgets))
			for i := range agg {
				var sum float64
				var n int
				for _, c := range reps {
					if !math.IsInf(c[i], 1) && c[i] > 0 {
						sum += c[i] / oracles[ai].cost
						n++
					}
				}
				if n > 0 {
					agg[i] = sum / float64(n)
				} else {
					agg[i] = math.Inf(1)
				}
			}
			res.Curves[name][mgr] = agg
		}
	}
	return res
}

// ---------------------------------------------------------------------------

// Fig13Result reports final CPU-time and memory-time (relative to the
// oracle) per app and manager.
type Fig13Result struct {
	Apps []string
	// CPUPct/MemPct: app -> manager -> %-of-oracle.
	CPUPct, MemPct map[string]map[string]float64
	ViolationRate  map[string]map[string]float64
}

// Table renders the two panels.
func (r Fig13Result) Table() string {
	var out string
	for _, metric := range []struct {
		name string
		m    map[string]map[string]float64
	}{{"CPU time (% oracle)", r.CPUPct}, {"Memory time (% oracle)", r.MemPct}} {
		rows := [][]string{}
		for _, app := range r.Apps {
			row := []string{app}
			for _, mgr := range managerOrder {
				v := metric.m[app][mgr]
				if v == 0 {
					// No repetition of this manager produced a truly
					// QoS-feasible configuration.
					row = append(row, "n/a")
					continue
				}
				row = append(row, f0(v)+"%")
			}
			rows = append(rows, row)
		}
		out += metric.name + "\n" + formatTable(append([]string{"App"}, managerOrder...), rows) + "\n"
	}
	return out
}

// Rows implements Result: one row per (app, manager) with both panels as
// columns.
func (r Fig13Result) Rows() ([]string, [][]string) {
	var rows [][]string
	for _, app := range r.Apps {
		for _, mgr := range managerOrder {
			cpu, mem := "n/a", "n/a"
			if v := r.CPUPct[app][mgr]; v != 0 {
				cpu = f0(v) + "%"
			}
			if v := r.MemPct[app][mgr]; v != 0 {
				mem = f0(v) + "%"
			}
			rows = append(rows, []string{app, mgr, cpu, mem, pct(r.ViolationRate[app][mgr])})
		}
	}
	return []string{"App", "Manager", "CPU(%Oracle)", "Mem(%Oracle)", "ViolRate"}, rows
}

// fig13Rep is one (app, manager, repetition) search outcome, noiselessly
// re-evaluated with a fresh evaluation profiler.
type fig13Rep struct {
	cpu, mem, lat float64
	found         bool
}

// Fig13 runs every manager to the full budget on every app (Repeats times)
// and reports the chosen configuration's noiseless CPU/memory time
// relative to the oracle. For random search, the best of all repetitions
// is used, per the paper's methodology.
func Fig13(s Scale) Fig13Result {
	names := make([]string, 0, 5)
	for _, a := range evalApps(s.Seed) {
		names = append(names, a.Name)
	}
	eng := s.engine("fig13")
	oracles := runner.MustRun(eng, oracleJobs(s, names,
		func(i int) *apps.App { return evalApps(s.Seed)[i] }))

	var jobs []runner.Job[fig13Rep]
	for ai := range names {
		ai := ai
		if !oracles[ai].ok {
			continue
		}
		for _, mgr := range managerOrder {
			mgr := mgr
			for rep := 0; rep < s.Repeats; rep++ {
				rep := rep
				jobs = append(jobs, runner.Job[fig13Rep]{
					Cell: names[ai] + "/" + mgr, Rep: rep,
					Run: func(runner.Ctx) (fig13Rep, error) {
						a := evalApps(s.Seed)[ai]
						seed := s.Seed + int64(rep)*61
						prof := resource.NewProfiler(a, seed)
						prof.Noise = profileNoise
						m := managerFactories()[mgr](resource.NewSpace(a), prof, a.QoS, seed)
						resource.Search(m, s.SearchBudget)
						cfg, _, okB := m.Best()
						if !okB {
							return fig13Rep{}, nil
						}
						evalProf := resource.NewProfiler(a, s.Seed+500)
						cpu, mem, lat := evalProf.SampleNoiselessComponents(cfg, 4)
						return fig13Rep{cpu: cpu, mem: mem, lat: lat, found: true}, nil
					}})
			}
		}
	}
	out := runner.MustRun(eng, jobs)

	res := Fig13Result{
		Apps:          names,
		CPUPct:        make(map[string]map[string]float64),
		MemPct:        make(map[string]map[string]float64),
		ViolationRate: make(map[string]map[string]float64),
	}
	ji := 0
	for ai, name := range names {
		if !oracles[ai].ok {
			continue
		}
		res.CPUPct[name] = make(map[string]float64)
		res.MemPct[name] = make(map[string]float64)
		res.ViolationRate[name] = make(map[string]float64)
		for _, mgr := range managerOrder {
			reps := out[ji : ji+s.Repeats]
			ji += s.Repeats
			var cpus, mems []float64
			viol := 0
			if mgr == "random" {
				// Paper: best of all random trials.
				best := math.Inf(1)
				var pick fig13Rep
				for _, r := range reps {
					if r.found && r.lat <= qosOf(s, ai) && r.cpu+r.mem < best {
						best = r.cpu + r.mem
						pick = r
					}
				}
				if pick.found {
					cpus, mems = []float64{pick.cpu}, []float64{pick.mem}
				}
			} else {
				for _, r := range reps {
					if !r.found {
						continue
					}
					if r.lat > qosOf(s, ai) {
						// A truly-violating pick does not contribute a
						// cost sample (the paper's managers all meet
						// QoS); it is reported through the violation
						// rate instead.
						viol++
						continue
					}
					cpus = append(cpus, r.cpu)
					mems = append(mems, r.mem)
				}
			}
			if len(cpus) > 0 {
				res.CPUPct[name][mgr] = stats.Mean(cpus) / oracles[ai].cpu * 100
				res.MemPct[name][mgr] = stats.Mean(mems) / oracles[ai].mem * 100
				res.ViolationRate[name][mgr] = float64(viol) / float64(s.Repeats)
			}
		}
	}
	return res
}

// qosOf returns the i-th evaluation app's QoS target.
func qosOf(s Scale, i int) float64 {
	return evalApps(s.Seed)[i].QoS
}

// ---------------------------------------------------------------------------

// Fig14Result compares CLITE and Aquatope as the workflow gets harder:
// (a) more chained stages; (b) more execution-time variability.
type Fig14Result struct {
	Labels   []string
	CLITE    []float64 // % oracle
	Aquatope []float64
}

// Table renders the comparison.
func (r Fig14Result) Table() string {
	return formatTable(r.Rows())
}

// Rows implements Result.
func (r Fig14Result) Rows() ([]string, [][]string) {
	rows := make([][]string, len(r.Labels))
	for i := range r.Labels {
		rows[i] = []string{r.Labels[i], f0(r.CLITE[i]) + "%", f0(r.Aquatope[i]) + "%"}
	}
	return []string{"Case", "CLITE", "Aquatope"}, rows
}

// fig14Case is one sweep point of Fig. 14a/b.
type fig14Case struct {
	label   string
	mkApp   func() *apps.App
	execStd float64
}

// headToHeadRep is one (case, manager, repetition) outcome.
type headToHeadRep struct {
	cost     float64
	feasible bool
}

// headToHead runs CLITE and Aquatope over the sweep cases and returns
// their final %-oracle costs (mean over repetitions). Replications: one
// oracle per case plus one search per (case, manager, repetition).
func headToHead(s Scale, experiment string, cases []fig14Case) Fig14Result {
	eng := s.engine(experiment)
	labels := make([]string, len(cases))
	for i, c := range cases {
		labels[i] = c.label
	}
	oracles := runner.MustRun(eng, oracleJobs(s, labels,
		func(i int) *apps.App { return cases[i].mkApp() }))

	managers := []string{"clite", "aquatope"}
	var jobs []runner.Job[headToHeadRep]
	for ci := range cases {
		ci := ci
		for _, mgr := range managers {
			mgr := mgr
			for rep := 0; rep < s.Repeats; rep++ {
				rep := rep
				jobs = append(jobs, runner.Job[headToHeadRep]{
					Cell: cases[ci].label + "/" + mgr, Rep: rep,
					Run: func(runner.Ctx) (headToHeadRep, error) {
						a := cases[ci].mkApp()
						seed := s.Seed + int64(rep)*73
						prof := resource.NewProfiler(a, seed)
						prof.Noise = profileNoise
						prof.ExecTimeStd = cases[ci].execStd
						m := managerFactories()[mgr](resource.NewSpace(a), prof, a.QoS, seed)
						resource.Search(m, s.SearchBudget)
						cfg, _, okB := m.Best()
						if !okB {
							return headToHeadRep{}, nil
						}
						evalProf := resource.NewProfiler(a, s.Seed+500)
						c, feasible := evalTrue(evalProf, cfg, a.QoS)
						return headToHeadRep{cost: c, feasible: feasible}, nil
					}})
			}
		}
	}
	out := runner.MustRun(eng, jobs)

	res := Fig14Result{Labels: labels}
	ji := 0
	for ci := range cases {
		perManager := make(map[string]float64, len(managers))
		for _, mgr := range managers {
			reps := out[ji : ji+s.Repeats]
			ji += s.Repeats
			var sum float64
			var n int
			for _, r := range reps {
				if r.feasible {
					sum += r.cost
					n++
				}
			}
			if n == 0 || !oracles[ci].ok {
				perManager[mgr] = math.NaN()
				continue
			}
			perManager[mgr] = sum / float64(n) / oracles[ci].cost * 100
		}
		res.CLITE = append(res.CLITE, perManager["clite"])
		res.Aquatope = append(res.Aquatope, perManager["aquatope"])
	}
	return res
}

// Fig14a sweeps the chain length (1, 3, 5 stages).
func Fig14a(s Scale) Fig14Result {
	var cases []fig14Case
	for _, n := range []int{1, 3, 5} {
		n := n
		cases = append(cases, fig14Case{
			label: fmt.Sprintf("N=%d", n),
			mkApp: func() *apps.App { return apps.NewChain(n) },
		})
	}
	return headToHead(s, "fig14a", cases)
}

// Fig14b sweeps execution-time variability on a single-stage workflow.
func Fig14b(s Scale) Fig14Result {
	var cases []fig14Case
	for _, cv := range []float64{0, 0.5, 1} {
		cases = append(cases, fig14Case{
			label:   fmt.Sprintf("CV=%.1f", cv),
			mkApp:   func() *apps.App { return apps.NewChain(1) },
			execStd: cv,
		})
	}
	return headToHead(s, "fig14b", cases)
}
