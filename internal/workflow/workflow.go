// Package workflow models multi-stage serverless applications as DAGs of
// function stages and executes them on the faas simulator: stages run when
// all their dependencies complete, fan-out stages invoke many parallel
// function instances, and the end-to-end latency and cost of the whole
// request are accounted per execution — including cascading cold starts
// across dependent stages (§2.2).
package workflow

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"aquatope/internal/faas"
	"aquatope/internal/sim"
	"aquatope/internal/stats"
	"aquatope/internal/telemetry"
)

// Stage is one node of a workflow DAG.
type Stage struct {
	// Name identifies the stage within the DAG.
	Name string
	// Function is the faas function the stage invokes.
	Function string
	// Deps lists stage names that must complete first.
	Deps []string
	// Width is the number of parallel invocations the stage issues
	// (fan-out); 0 or 1 means a single invocation.
	Width int
	// InputScale multiplies the workflow's input size for this stage
	// (e.g. a decoder emits fixed-size chunks).
	InputScale float64
}

func (s Stage) width() int {
	if s.Width <= 0 {
		return 1
	}
	return s.Width
}

func (s Stage) inputScale() float64 {
	if s.InputScale == 0 {
		return 1
	}
	return s.InputScale
}

// DAG is a validated workflow graph.
type DAG struct {
	Name   string
	stages []Stage
	index  map[string]int
	// children[i] lists indices of stages depending on stage i.
	children [][]int
	order    []int // topological order
}

// NewDAG validates the stages (unique names, existing dependencies,
// acyclicity) and returns the workflow.
func NewDAG(name string, stages []Stage) (*DAG, error) {
	d := &DAG{Name: name, stages: stages, index: make(map[string]int)}
	for i, s := range stages {
		if s.Name == "" {
			return nil, fmt.Errorf("workflow: stage %d has empty name", i)
		}
		if _, dup := d.index[s.Name]; dup {
			return nil, fmt.Errorf("workflow: duplicate stage %q", s.Name)
		}
		d.index[s.Name] = i
	}
	d.children = make([][]int, len(stages))
	indeg := make([]int, len(stages))
	for i, s := range stages {
		for _, dep := range s.Deps {
			j, ok := d.index[dep]
			if !ok {
				return nil, fmt.Errorf("workflow: stage %q depends on unknown %q", s.Name, dep)
			}
			d.children[j] = append(d.children[j], i)
			indeg[i]++
		}
	}
	// Kahn's algorithm for topological order / cycle detection. Every
	// stage enters the queue exactly once, so len(stages) is an exact cap.
	queue := make([]int, 0, len(stages))
	for i, deg := range indeg {
		if deg == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		d.order = append(d.order, i)
		for _, ch := range d.children[i] {
			indeg[ch]--
			if indeg[ch] == 0 {
				queue = append(queue, ch)
			}
		}
	}
	if len(d.order) != len(stages) {
		return nil, fmt.Errorf("workflow: %q has a dependency cycle", name)
	}
	return d, nil
}

// Stages returns the DAG's stages.
func (d *DAG) Stages() []Stage { return append([]Stage(nil), d.stages...) }

// Functions returns the distinct function names used, in stage order.
func (d *DAG) Functions() []string {
	seen := make(map[string]bool, len(d.stages))
	out := make([]string, 0, len(d.stages))
	for _, s := range d.stages {
		if !seen[s.Function] {
			seen[s.Function] = true
			out = append(out, s.Function)
		}
	}
	return out
}

// Chain builds a linear workflow f1 -> f2 -> ... over the given functions.
func Chain(name string, functions ...string) *DAG {
	stages := make([]Stage, len(functions))
	for i, fn := range functions {
		stages[i] = Stage{Name: "s" + strconv.Itoa(i), Function: fn}
		if i > 0 {
			stages[i].Deps = []string{"s" + strconv.Itoa(i-1)}
		}
	}
	d, err := NewDAG(name, stages)
	if err != nil {
		panic(err) // unreachable: construction is well-formed
	}
	return d
}

// FanOutFanIn builds source -> {branches...} -> sink.
func FanOutFanIn(name, source string, branches []string, sink string) *DAG {
	stages := make([]Stage, 0, len(branches)+2)
	stages = append(stages, Stage{Name: "source", Function: source})
	branchNames := make([]string, 0, len(branches))
	for i, fn := range branches {
		bn := "branch" + strconv.Itoa(i)
		branchNames = append(branchNames, bn)
		stages = append(stages, Stage{Name: bn, Function: fn, Deps: []string{"source"}})
	}
	stages = append(stages, Stage{Name: "sink", Function: sink, Deps: branchNames})
	d, err := NewDAG(name, stages)
	if err != nil {
		panic(err)
	}
	return d
}

// RetryPolicy is the workflow resilience layer: per-attempt timeouts,
// capped exponential backoff with deterministic jitter, and an optional
// hedged duplicate request. A nil policy on the Executor preserves the
// original fire-once semantics.
type RetryPolicy struct {
	// MaxAttempts bounds the total attempts per logical invocation,
	// including the first and any hedge (values < 1 behave as 1).
	MaxAttempts int
	// Timeout is the per-attempt deadline in seconds (0 = none).
	Timeout float64
	// InitialBackoff is the delay before the first retry; each further
	// retry multiplies it by BackoffFactor, capped at MaxBackoff.
	InitialBackoff float64
	BackoffFactor  float64
	MaxBackoff     float64
	// JitterFrac spreads each backoff uniformly in ±JitterFrac around its
	// nominal value, drawn from the executor's seeded RNG so same-seed
	// runs schedule identical retries.
	JitterFrac float64
	// HedgeDelay, when positive, issues one duplicate of a still-pending
	// first attempt after this many seconds (tail-latency hedging). The
	// first terminal success wins; the hedge counts against MaxAttempts.
	HedgeDelay float64
	// RetryBudget, when positive, is a token bucket shared by every stage
	// call of one workflow execution: each retry or hedge spends a token,
	// and when the bucket is empty the call fails fast instead of
	// re-issuing — under saturation the resilience layer stops amplifying
	// load. Zero preserves unbudgeted (legacy) retries.
	RetryBudget int
	// RetryBudgetPerSec refills the bucket while the workflow runs
	// (capped at RetryBudget); zero means no refill.
	RetryBudgetPerSec float64
	// HedgeQueueLimit, when positive, is the backpressure bound on
	// hedging: a hedge is skipped when the target function's queue depth
	// is at or above it (a saturated queue makes a duplicate request pure
	// extra load). Zero hedges unconditionally.
	HedgeQueueLimit int
}

// DefaultRetryPolicy returns a conservative production-style policy: three
// attempts, 0.5 s initial backoff doubling to a 8 s cap, 20% jitter, no
// per-attempt timeout and no hedging (enable per workload).
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:    3,
		InitialBackoff: 0.5,
		BackoffFactor:  2,
		MaxBackoff:     8,
		JitterFrac:     0.2,
	}
}

func (p RetryPolicy) maxAttempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// backoff returns the nominal delay before retry number k (0-based).
func (p RetryPolicy) backoff(k int) float64 {
	b := p.InitialBackoff
	if b <= 0 {
		return 0
	}
	f := p.BackoffFactor
	if f < 1 {
		f = 1
	}
	b *= math.Pow(f, float64(k))
	if p.MaxBackoff > 0 && b > p.MaxBackoff {
		b = p.MaxBackoff
	}
	return b
}

// Result reports one end-to-end workflow execution.
type Result struct {
	Workflow   string
	SubmitTime float64
	EndTime    float64
	// PerStage holds the terminal invocation result of every stage
	// instance (the settling attempt: the winner under retries/hedging).
	PerStage map[string][]faas.InvocationResult
	// ColdStarts counts cold-started invocations across stages.
	ColdStarts int
	// Invocations counts total function invocations.
	Invocations int
	// Failed reports that some stage instance exhausted its attempts:
	// downstream stages were skipped and the workflow's output is lost.
	Failed bool
	// FailedInvocations counts stage instances that terminally failed.
	FailedInvocations int
	// Retries counts re-issued attempts; Hedges counts hedged duplicates.
	Retries int
	Hedges  int
	// SkippedStages counts stages short-circuited after a failure.
	SkippedStages int
	// Sheds counts attempts rejected by platform admission control
	// (OutcomeShed); ShedStages counts stage instances whose settling
	// result was a shed — the signal QoS attribution uses to separate
	// overload rejections from hard faults.
	Sheds      int
	ShedStages int
	// RetriesDenied counts retries suppressed by an exhausted retry
	// budget; HedgesSkipped counts hedges suppressed by the budget or by
	// queue-depth backpressure.
	RetriesDenied int
	HedgesSkipped int
}

// Latency returns the end-to-end latency.
func (r Result) Latency() float64 { return r.EndTime - r.SubmitTime }

// CPUTime returns total CPU-seconds across all stage invocations. Stages
// are summed in sorted-name order so the float result is identical across
// same-seed runs (map iteration order would perturb the last ULP).
func (r Result) CPUTime() float64 {
	var s float64
	for _, name := range r.StageNames() {
		for _, ir := range r.PerStage[name] {
			s += ir.CostCPUTime()
		}
	}
	return s
}

// MemTime returns total GB-seconds across all stage invocations, in the
// same deterministic stage order as CPUTime.
func (r Result) MemTime() float64 {
	var s float64
	for _, name := range r.StageNames() {
		for _, ir := range r.PerStage[name] {
			s += ir.CostMemTime()
		}
	}
	return s
}

// Cost returns the linear execution cost κc·CPUTime + κm·MemTime used by
// the resource manager (§5.1); provider-style weights default to 1 each.
func (r Result) Cost(cpuWeight, memWeight float64) float64 {
	return cpuWeight*r.CPUTime() + memWeight*r.MemTime()
}

// Executor runs workflow DAGs on a cluster.
type Executor struct {
	Cluster *faas.Cluster
	// Policy enables the resilience layer (nil = fire-once, no timeout).
	Policy *RetryPolicy
	// Seed drives the deterministic retry jitter stream.
	Seed int64

	rng *stats.RNG
}

// NewExecutor returns an executor bound to a cluster.
func NewExecutor(c *faas.Cluster) *Executor { return &Executor{Cluster: c} }

// jitter returns a multiplicative jitter factor in [1-frac, 1+frac].
func (e *Executor) jitter(frac float64) float64 {
	if frac <= 0 {
		return 1
	}
	if e.rng == nil {
		e.rng = stats.NewRNG(e.Seed)
	}
	return 1 + frac*(2*e.rng.Float64()-1)
}

// Execute submits one workflow request with the given input size. Width
// overrides (may be nil) replace stage widths per request — e.g. a social
// post fanning out to each follower. done receives the completed Result.
func (e *Executor) Execute(d *DAG, inputSize float64, widths map[string]int, done func(Result)) error {
	n := len(d.stages)
	res := &Result{
		Workflow:   d.Name,
		SubmitTime: e.Cluster.Engine().Now(),
		PerStage:   make(map[string][]faas.InvocationResult, n),
	}
	tr := e.Cluster.Tracer()
	var wfSpan telemetry.SpanID
	stageSpans := make([]telemetry.SpanID, n)
	// Retry budget: one token bucket shared by all of this execution's
	// stage calls. tokens < 0 means unbudgeted (legacy behaviour).
	tokens := -1.0
	tokensAt := res.SubmitTime
	if e.Policy != nil && e.Policy.RetryBudget > 0 {
		tokens = float64(e.Policy.RetryBudget)
	}
	takeBudget := func() bool {
		if tokens < 0 {
			return true
		}
		now := e.Cluster.Engine().Now()
		if refill := e.Policy.RetryBudgetPerSec; refill > 0 {
			tokens = math.Min(float64(e.Policy.RetryBudget),
				tokens+(now-tokensAt)*refill)
		}
		tokensAt = now
		if tokens >= 1 {
			tokens--
			return true
		}
		return false
	}
	remainingDeps := make([]int, n)
	pendingInv := make([]int, n) // outstanding invocations per running stage
	stagesLeft := n
	finished := false
	var launch func(i int)
	finishStage := func(i int) {
		stagesLeft--
		if stageSpans[i] != 0 {
			tr.EndSpan(stageSpans[i], e.Cluster.Engine().Now(), telemetry.Fields{
				"invocations": float64(len(res.PerStage[d.stages[i].Name])),
			})
		}
		for _, ch := range d.children[i] {
			remainingDeps[ch]--
			if remainingDeps[ch] == 0 {
				launch(ch)
			}
		}
		// The finished guard matters under fail-fast: skipping a child
		// stage re-enters finishStage synchronously, so after the recursion
		// unwinds the parent frame can observe stagesLeft == 0 again.
		if stagesLeft == 0 && !finished {
			finished = true
			res.EndTime = e.Cluster.Engine().Now()
			if wfSpan != 0 {
				tr.EndSpan(wfSpan, res.EndTime, telemetry.Fields{
					"invocations": float64(res.Invocations),
					"cold_starts": float64(res.ColdStarts),
				})
			}
			if done != nil {
				done(*res)
			}
		}
	}
	// settleCall records the terminal result of one logical stage instance
	// (the winning attempt under retries/hedging) and advances the stage.
	settleCall := func(i int, r faas.InvocationResult) {
		st := d.stages[i]
		res.PerStage[st.Name] = append(res.PerStage[st.Name], r)
		res.Invocations++
		if r.ColdStart {
			res.ColdStarts++
		}
		if !r.OK() {
			res.Failed = true
			res.FailedInvocations++
			if r.Outcome == faas.OutcomeShed {
				res.ShedStages++
			}
		}
		pendingInv[i]--
		if pendingInv[i] == 0 {
			finishStage(i)
		}
	}
	// runCall executes one logical stage instance under the resilience
	// policy: per-attempt timeout, capped exponential backoff retries with
	// deterministic jitter, and an optional hedged duplicate. Exactly one
	// terminal result settles the call; late hedge losers are dropped.
	runCall := func(i int) {
		st := d.stages[i]
		pol := e.Policy
		maxAttempts := 1
		var timeout float64
		if pol != nil {
			maxAttempts = pol.maxAttempts()
			timeout = pol.Timeout
		}
		type callState struct {
			settled     bool
			issued      int // attempts issued or committed (incl. scheduled)
			outstanding int // attempts in flight or scheduled
			retries     int
			hedgeEv     *sim.Event
		}
		cs := &callState{}
		eng := e.Cluster.Engine()
		var issue func()
		var onTerminal func(r faas.InvocationResult)
		issue = func() {
			attempt := cs.issued
			cs.issued++
			cs.outstanding++
			err := e.Cluster.InvokeOpts(st.Function, faas.InvokeOptions{
				InputSize: inputSize * st.inputScale(),
				Parent:    stageSpans[i],
				Timeout:   timeout,
				Attempt:   attempt,
			}, onTerminal)
			if err != nil {
				panic(fmt.Sprintf("workflow: invoke %s: %v", st.Function, err))
			}
		}
		settle := func(r faas.InvocationResult) {
			cs.settled = true
			if cs.hedgeEv != nil {
				cs.hedgeEv.Cancel()
				cs.hedgeEv = nil
			}
			settleCall(i, r)
		}
		onTerminal = func(r faas.InvocationResult) {
			cs.outstanding--
			if r.Outcome == faas.OutcomeShed {
				res.Sheds++
			}
			if cs.settled {
				return // hedge loser / late completion
			}
			if r.OK() {
				settle(r)
				return
			}
			if cs.issued < maxAttempts {
				if takeBudget() {
					// Schedule a retry with capped exponential backoff.
					k := cs.retries
					cs.retries++
					res.Retries++
					backoff := pol.backoff(k) * e.jitter(pol.JitterFrac)
					if tr.Enabled() {
						tr.Point(telemetry.KindRetry, st.Function, stageSpans[i], eng.Now(), telemetry.Fields{
							"attempt":   float64(cs.issued),
							"backoff_s": backoff,
							"outcome":   float64(r.Outcome),
							"hedge":     0,
						})
					}
					cs.issued++ // commit the slot before the timer fires
					cs.outstanding++
					eng.After(backoff, func() {
						if cs.settled {
							cs.outstanding--
							return
						}
						cs.issued--
						cs.outstanding--
						issue()
					})
					return
				}
				// Budget exhausted: degrade to fail-fast instead of
				// amplifying an already-saturated platform.
				res.RetriesDenied++
				if tr.Enabled() {
					tr.Point(telemetry.KindRetry, st.Function, stageSpans[i], eng.Now(), telemetry.Fields{
						"attempt": float64(cs.issued),
						"outcome": float64(r.Outcome),
						"hedge":   0,
						"denied":  1,
					})
				}
			}
			if cs.outstanding == 0 {
				// Every attempt exhausted; the last failure settles.
				settle(r)
			}
		}
		issue()
		// A shed (or budget-denied) first attempt can settle the call
		// synchronously inside issue(); arming a hedge then would leak it.
		if pol != nil && pol.HedgeDelay > 0 && maxAttempts > 1 && !cs.settled {
			cs.hedgeEv = eng.After(pol.HedgeDelay, func() {
				cs.hedgeEv = nil
				if cs.settled || cs.issued >= maxAttempts || cs.outstanding == 0 {
					return
				}
				if lim := pol.HedgeQueueLimit; lim > 0 {
					if depth := e.Cluster.QueueDepth(st.Function); depth >= lim {
						// Backpressure: the target queue is saturated, so a
						// duplicate request is pure extra load.
						res.HedgesSkipped++
						if tr.Enabled() {
							tr.Point(telemetry.KindRetry, st.Function, stageSpans[i], eng.Now(), telemetry.Fields{
								"attempt":     float64(cs.issued),
								"outcome":     0,
								"hedge":       1,
								"denied":      1,
								"queue_depth": float64(depth),
							})
						}
						return
					}
				}
				if !takeBudget() {
					res.HedgesSkipped++
					if tr.Enabled() {
						tr.Point(telemetry.KindRetry, st.Function, stageSpans[i], eng.Now(), telemetry.Fields{
							"attempt": float64(cs.issued),
							"outcome": 0,
							"hedge":   1,
							"denied":  1,
						})
					}
					return
				}
				res.Hedges++
				if tr.Enabled() {
					tr.Point(telemetry.KindRetry, st.Function, stageSpans[i], eng.Now(), telemetry.Fields{
						"attempt":   float64(cs.issued),
						"backoff_s": 0,
						"outcome":   0,
						"hedge":     1,
					})
				}
				issue()
			})
		}
	}
	launch = func(i int) {
		st := d.stages[i]
		stageSpans[i] = tr.StartSpan(telemetry.KindStage, st.Name, wfSpan, e.Cluster.Engine().Now())
		if res.Failed {
			// Fail-fast: an upstream stage exhausted its attempts, so
			// this stage's inputs are lost. Skip it (and, transitively,
			// the rest of the DAG) instead of burning resources.
			res.SkippedStages++
			pendingInv[i] = 0
			if stageSpans[i] != 0 {
				tr.EndSpan(stageSpans[i], e.Cluster.Engine().Now(), telemetry.Fields{
					"invocations": 0,
					"skipped":     1,
				})
				stageSpans[i] = 0
			}
			finishStage(i)
			return
		}
		w := st.width()
		if widths != nil {
			if ov, ok := widths[st.Name]; ok && ov > 0 {
				w = ov
			}
		}
		pendingInv[i] = w
		for k := 0; k < w; k++ {
			runCall(i)
		}
	}
	// Validate functions exist before launching anything.
	known := make(map[string]bool)
	for _, fn := range e.Cluster.Functions() {
		known[fn] = true
	}
	for _, st := range d.stages {
		if !known[st.Function] {
			return fmt.Errorf("workflow: function %q not registered", st.Function)
		}
	}
	for i, s := range d.stages {
		remainingDeps[i] = len(s.Deps)
	}
	wfSpan = tr.StartSpan(telemetry.KindWorkflow, d.Name, 0, res.SubmitTime)
	for i, s := range d.stages {
		if len(s.Deps) == 0 {
			launch(i)
		}
	}
	return nil
}

// StageNames returns sorted stage names of a result (stable for reports).
func (r Result) StageNames() []string {
	names := make([]string, 0, len(r.PerStage))
	for k := range r.PerStage {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
