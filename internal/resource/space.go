// Package resource implements the container resource manager of §5: it
// maps workflow-wide resource configurations (per-function CPU, memory and
// optionally concurrency, matching provider interfaces) onto the normalized
// search cube, profiles candidates on the simulated platform under
// warm-start conditions, and drives the search with the customized BO
// engine or one of the paper's baselines (Random, Autoscale, CLITE), with
// an exhaustive Oracle for reference.
package resource

import (
	"fmt"
	"math"

	"aquatope/internal/apps"
	"aquatope/internal/faas"
)

// DefaultCPUOptions are the per-function CPU limits explored (cores).
var DefaultCPUOptions = []float64{0.25, 0.5, 1, 2, 4}

// DefaultMemOptions are the per-function memory limits explored (MB).
var DefaultMemOptions = []float64{128, 256, 512, 1024, 2048, 4096}

// DefaultConcurrencyOptions are per-function concurrency caps.
var DefaultConcurrencyOptions = []int{4, 8, 16, 32}

// Space maps [0,1]^Dim vectors to per-function resource configurations.
type Space struct {
	Functions   []string
	CPUOptions  []float64
	MemOptions  []float64
	Concurrency []int // nil disables the concurrency dimension
}

// NewSpace returns the default CPU×memory space over an app's functions.
func NewSpace(a *apps.App) *Space {
	return &Space{
		Functions:  a.FunctionNames(),
		CPUOptions: DefaultCPUOptions,
		MemOptions: DefaultMemOptions,
	}
}

// dimsPerFunction returns 2 (CPU, mem) or 3 (plus concurrency).
func (s *Space) dimsPerFunction() int {
	if len(s.Concurrency) > 0 {
		return 3
	}
	return 2
}

// Dim returns the dimensionality of the normalized search cube.
func (s *Space) Dim() int { return len(s.Functions) * s.dimsPerFunction() }

// snap maps u in [0,1] to an option index.
func snapIdx(u float64, n int) int {
	i := int(u * float64(n))
	if i >= n {
		i = n - 1
	}
	if i < 0 {
		i = 0
	}
	return i
}

// Decode maps a normalized vector to per-function configurations.
func (s *Space) Decode(x []float64) (map[string]faas.ResourceConfig, error) {
	if len(x) != s.Dim() {
		return nil, fmt.Errorf("resource: vector dim %d, want %d", len(x), s.Dim())
	}
	k := s.dimsPerFunction()
	out := make(map[string]faas.ResourceConfig, len(s.Functions))
	for i, fn := range s.Functions {
		cfg := faas.ResourceConfig{
			CPU:      s.CPUOptions[snapIdx(x[i*k], len(s.CPUOptions))],
			MemoryMB: s.MemOptions[snapIdx(x[i*k+1], len(s.MemOptions))],
		}
		if k == 3 {
			cfg.Concurrency = s.Concurrency[snapIdx(x[i*k+2], len(s.Concurrency))]
		}
		out[fn] = cfg
	}
	return out, nil
}

// Encode maps per-function configurations back to the (bin-center)
// normalized vector.
func (s *Space) Encode(cfgs map[string]faas.ResourceConfig) []float64 {
	k := s.dimsPerFunction()
	x := make([]float64, s.Dim())
	for i, fn := range s.Functions {
		cfg := cfgs[fn]
		x[i*k] = binCenter(nearestIdx(s.CPUOptions, cfg.CPU), len(s.CPUOptions))
		x[i*k+1] = binCenter(nearestIdx(s.MemOptions, cfg.MemoryMB), len(s.MemOptions))
		if k == 3 {
			x[i*k+2] = binCenter(nearestIntIdx(s.Concurrency, cfg.Concurrency), len(s.Concurrency))
		}
	}
	return x
}

func binCenter(i, n int) float64 { return (float64(i) + 0.5) / float64(n) }

func nearestIdx(opts []float64, v float64) int {
	best, bd := 0, math.Inf(1)
	for i, o := range opts {
		if d := math.Abs(o - v); d < bd {
			best, bd = i, d
		}
	}
	return best
}

func nearestIntIdx(opts []int, v int) int {
	best, bd := 0, math.MaxInt
	for i, o := range opts {
		d := o - v
		if d < 0 {
			d = -d
		}
		if d < bd {
			best, bd = i, d
		}
	}
	return best
}

// GridSize returns the total number of distinct configurations.
func (s *Space) GridSize() int {
	per := len(s.CPUOptions) * len(s.MemOptions)
	if len(s.Concurrency) > 0 {
		per *= len(s.Concurrency)
	}
	total := 1
	for range s.Functions {
		total *= per
		if total > math.MaxInt32 {
			return math.MaxInt32
		}
	}
	return total
}

// EnumGrid calls fn for every grid configuration (bin-center coordinates).
// Use only when GridSize is tractable.
func (s *Space) EnumGrid(fn func(x []float64)) {
	k := s.dimsPerFunction()
	dims := make([]int, s.Dim())
	for i := range s.Functions {
		dims[i*k] = len(s.CPUOptions)
		dims[i*k+1] = len(s.MemOptions)
		if k == 3 {
			dims[i*k+2] = len(s.Concurrency)
		}
	}
	idx := make([]int, len(dims))
	for {
		x := make([]float64, len(dims))
		for d := range dims {
			x[d] = binCenter(idx[d], dims[d])
		}
		fn(x)
		// Increment mixed-radix counter.
		d := 0
		for d < len(dims) {
			idx[d]++
			if idx[d] < dims[d] {
				break
			}
			idx[d] = 0
			d++
		}
		if d == len(dims) {
			return
		}
	}
}
