package serve

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"aquatope/internal/checkpoint"
)

// header is the decoded serve-specific checkpoint header.
type header struct {
	Final      bool
	Seed       int64
	Digest     string
	Now        float64
	K          int
	Ingested   int
	LastT      float64
	JournalOff int64
	JournalSHA []byte
}

func decodeHeader(data []byte) (header, error) {
	d := checkpoint.NewDecoder(data)
	var h header
	d.Expect("serve.header")
	h.Final = d.Bool()
	h.Seed = d.I64()
	h.Digest = d.String()
	h.Now = d.F64()
	h.K = d.Int()
	h.Ingested = d.Int()
	h.LastT = d.F64()
	h.JournalOff = d.I64()
	h.JournalSHA = d.Blob()
	if err := d.Done(); err != nil {
		return header{}, fmt.Errorf("serve: checkpoint header: %w", err)
	}
	return h, nil
}

// LatestCheckpoint resolves a -restore argument: a checkpoint file is used
// as-is; a directory resolves to checkpoint-final.aqcp when present, else
// the highest-numbered boundary checkpoint.
func LatestCheckpoint(path string) (string, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return "", fmt.Errorf("serve: restore: %w", err)
	}
	if !fi.IsDir() {
		return path, nil
	}
	if p := filepath.Join(path, "checkpoint-final.aqcp"); fileExists(p) {
		return p, nil
	}
	entries, err := os.ReadDir(path)
	if err != nil {
		return "", fmt.Errorf("serve: restore: %w", err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if strings.HasPrefix(n, "checkpoint-") && strings.HasSuffix(n, ".aqcp") {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return "", fmt.Errorf("serve: restore: no checkpoints in %s", path)
	}
	// Zero-padded boundary indices sort lexically.
	sort.Strings(names)
	return filepath.Join(path, names[len(names)-1]), nil
}

func fileExists(p string) bool {
	fi, err := os.Stat(p)
	return err == nil && !fi.IsDir()
}

// Restore rebuilds a server from a checkpoint by verified deterministic
// replay. opts must be bit-identical to the options of the run that cut
// the checkpoint (enforced via the embedded config digest). The steps:
//
//  1. Read and validate the checkpoint container (CRC-guarded).
//  2. Truncate the journal's torn tail and prove the checkpoint's journal
//     prefix (offset + SHA-256) survives in it.
//  3. Build a fresh server from opts — re-running the resource search and
//     re-scheduling the training fit — and replay the entire durable
//     journal through the normal ingest loop.
//  4. At the checkpointed boundary, byte-compare every re-derived
//     component snapshot against the stored sections; any divergence is a
//     hard error.
//
// The returned server has consumed Ingested() records; resume by skipping
// that many records on the live source and calling Run. Restored servers
// never arm the crash hook: a scripted KindCrash that killed the original
// run fires inert on the replay and the resumed tail.
func Restore(opts Options, checkpointPath string) (*Server, error) {
	if opts.CheckpointDir == "" {
		return nil, fmt.Errorf("serve: restore requires CheckpointDir")
	}
	opts.ArmCrash = false
	f, err := checkpoint.ReadFile(checkpointPath)
	if err != nil {
		return nil, err
	}
	h, err := decodeHeader(f.Header)
	if err != nil {
		return nil, err
	}
	if h.Digest != opts.Digest() {
		return nil, fmt.Errorf("serve: restore: config digest mismatch: checkpoint %s.. vs options %s.. — the restored run must use the exact options of the original",
			h.Digest[:12], opts.Digest()[:12])
	}

	journalPath := filepath.Join(opts.CheckpointDir, "stream.jsonl")
	recs, data, err := LoadJournal(journalPath)
	if err != nil {
		return nil, err
	}
	if int64(len(data)) < h.JournalOff {
		return nil, fmt.Errorf("serve: restore: journal holds %d durable bytes, checkpoint covers %d",
			len(data), h.JournalOff)
	}
	sum := sha256.Sum256(data[:h.JournalOff])
	if !bytes.Equal(sum[:], h.JournalSHA) {
		return nil, fmt.Errorf("serve: restore: journal prefix hash mismatch — journal is not the one the checkpoint was cut against")
	}
	if len(recs) < h.Ingested {
		return nil, fmt.Errorf("serve: restore: journal holds %d records, checkpoint covers %d", len(recs), h.Ingested)
	}

	// Rebuild and replay. New would truncate the journal; construct with
	// journaling deferred, then re-open it in append mode afterwards.
	replayOpts := opts
	replayOpts.CheckpointDir = ""
	s, err := New(replayOpts)
	if err != nil {
		return nil, err
	}
	s.opts = opts
	s.replaying = true
	s.verifyFile = f
	// A final checkpoint is cut mid-interval (after extra ingests beyond
	// boundary K), so it verifies at journal exhaustion; boundary
	// checkpoints verify the moment replay crosses boundary K.
	s.verifyAtK = h.K
	if h.Final {
		s.verifyAtK = -1
	}

	src := NewSource(bytes.NewReader(data))
	if err := s.consume(src); err != nil {
		return nil, fmt.Errorf("serve: restore: replaying journal: %w", err)
	}
	// A stopped-run final checkpoint is cut mid-interval: it verifies at
	// journal exhaustion, not at a boundary.
	if h.Final && !s.verified {
		if err := s.verifyAgainst(f); err != nil {
			return nil, err
		}
		s.verified = true
	}
	// A boundary checkpoint whose triggering record was lost with the torn
	// tail: the original advanced to boundary K on a record the journal no
	// longer holds. Advancing without it reproduces the same state — the
	// checkpoint predates that record's ingest.
	for !s.verified && s.k < h.K {
		if err := s.advance(); err != nil {
			return nil, err
		}
	}
	if !s.verified {
		return nil, fmt.Errorf("serve: restore: replay of %d records never reached boundary %d (journal too short?)",
			s.ingested, h.K)
	}
	if s.ingested != len(recs) {
		return nil, fmt.Errorf("serve: restore: replay consumed %d of %d journal records", s.ingested, len(recs))
	}
	s.replaying = false
	s.verifyFile = nil

	j, err := OpenJournalAppend(journalPath)
	if err != nil {
		return nil, err
	}
	s.journal = j
	return s, nil
}

// ResumeSource opens the original stream for a restored server, skipping
// the prefix the journal already replayed.
func (s *Server) ResumeSource(r io.Reader) (*Source, error) {
	src := NewSource(r)
	if err := src.Skip(s.ingested); err != nil {
		return nil, err
	}
	return src, nil
}
