package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

var seedflowAnalyzer = &Analyzer{
	Name: "seedflow",
	Doc: "interprocedural taint check that every seed reaching an RNG " +
		"constructor originates from configuration or runner.DeriveSeed, " +
		"never from a literal or the wall clock — even through helper " +
		"layers",
	NeedsTypes: true,
	Run:        runSeedflow,
}

// seedflowConstructorPkgs are the packages whose constructors consume a
// seed; overridden by Rule.Sinks in fixtures.
var seedflowConstructorPkgs = []string{"aquatope/internal/stats", "math/rand", "math/rand/v2"}

// seedflowConstructors maps constructor function names to the index of
// their seed parameter.
var seedflowConstructors = map[string]int{
	"NewRNG":    0,
	"NewSource": 0,
	"NewPCG":    0,
}

func runSeedflow(prog *Program, pkg *Package, file *File, rule Rule, report Reporter) {
	catalog := rule.Sinks
	if len(catalog) == 0 {
		catalog = seedflowConstructorPkgs
	}
	seedGroups := prog.seedFlowGroups(catalog)
	info := pkg.Info

	// Walk the file's call sites with their enclosing declared function,
	// so parameter references in seed expressions can be expanded through
	// the caller's locals.
	checkCall := func(owner *ProgFunc, call *ast.CallExpr) {
		// Direct constructor call: stats.NewRNG(seed).
		if idx, ok := constructorSeedArg(info, call, catalog); ok && idx < len(call.Args) {
			if reason := taintedSeed(prog, pkg, owner, call.Args[idx], 0, nil); reason != "" {
				report(call.Args[idx].Pos(), "%s seeds an RNG constructor; derive the seed from the run configuration or runner.DeriveSeed instead", reason)
			}
			return
		}
		// Call into a function whose parameters flow into a constructor
		// seed. Each group is one seed expression's ingredient set: the
		// seed is tainted only when EVERY member receives a tainted
		// argument (a constant salt mixed with a clean config seed stays
		// clean, mirroring taintedSeed's binary-mix rule).
		name := calleeFullName(info, call)
		if name == "" {
			return
		}
		for _, g := range seedGroups[name] {
			reason := ""
			var at ast.Expr
			tainted := len(g) > 0
			for _, idx := range g {
				if idx >= len(call.Args) {
					tainted = false
					break
				}
				r := taintedSeed(prog, pkg, owner, call.Args[idx], 0, nil)
				if r == "" {
					tainted = false
					break
				}
				if reason == "" {
					reason, at = r, call.Args[idx]
				}
			}
			if tainted {
				report(at.Pos(), "%s flows into an RNG constructor through %s; derive the seed from the run configuration or runner.DeriveSeed instead", reason, shortFunc(name))
				return
			}
		}
	}

	for _, d := range file.AST.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		var owner *ProgFunc
		if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
			owner = prog.Funcs[obj.FullName()]
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkCall(owner, call)
			}
			return true
		})
	}
}

// constructorSeedArg reports whether call is an RNG constructor from the
// catalog and returns the seed argument index.
func constructorSeedArg(info *types.Info, call *ast.CallExpr, catalog []string) (int, bool) {
	var path, name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		path, name = calleePackage(info, fun)
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok && fn.Pkg() != nil {
			path, name = fn.Pkg().Path(), fn.Name()
		}
	}
	if path == "" || !pathInCatalog(path, catalog) {
		return 0, false
	}
	idx, ok := seedflowConstructors[name]
	return idx, ok
}

// seedFlowGroups computes, for every declared function, the groups of
// parameter indices whose values are mixed into an RNG constructor's
// seed: the fixpoint of "these params together form a seed" over the
// call graph. Group semantics follow taintedSeed's mixing rule — a seed
// expression is tainted only when every ingredient is — so a helper like
// ablationTrace(s, salt) building Seed: s.Seed + salt produces no group
// at all once any ingredient can never be tainted, and a group {0, 1}
// fires at a call site only when both arguments are tainted. Memoized
// per sink configuration on the Program.
func (p *Program) seedFlowGroups(catalog []string) map[string][][]int {
	key := strings.Join(catalog, ",")
	if cached, ok := p.seedCache[key]; ok {
		return cached
	}
	groups := make(map[string][][]int)
	add := func(fn string, g []int) bool {
		if len(g) == 0 {
			return false // fully tainted in place: reported at that site, nothing to propagate
		}
		k := intsKey(g)
		for _, old := range groups[fn] {
			if intsKey(old) == k {
				return false
			}
		}
		groups[fn] = append(groups[fn], g)
		return true
	}
	for changed := true; changed; {
		changed = false
		for _, name := range p.funcNames {
			fn := p.Funcs[name]
			params := paramObjects(fn)
			for _, site := range fn.calls {
				// Direct constructor call: the seed argument's own mix.
				if idx, ok := constructorSeedArg(fn.Pkg.Info, site.Call, catalog); ok && idx < len(site.Call.Args) {
					if need, dead := mixClassify(p, fn, params, site.Call.Args[idx], 0); !dead {
						if add(name, sortedIntKeys(need)) {
							changed = true
						}
					}
				}
				// Propagate the callee's groups through this site: the
				// caller's group is the union of the parameter mixes feeding
				// each member, and dies if any member can never be tainted.
				for _, g := range groups[site.Callee] {
					union := make(map[int]bool)
					dead := false
					for _, gi := range g {
						if gi >= len(site.Call.Args) {
							dead = true
							break
						}
						need, d := mixClassify(p, fn, params, site.Call.Args[gi], 0)
						if d {
							dead = true
							break
						}
						for i := range need {
							union[i] = true
						}
					}
					if !dead && add(name, sortedIntKeys(union)) {
						changed = true
					}
				}
			}
		}
	}
	p.seedCache[key] = groups
	return groups
}

func intsKey(g []int) string {
	s := ""
	for _, i := range g {
		s += "," + fmt.Sprint(i)
	}
	return s
}

// mixClassify decomposes a seed expression into the set of enclosing-
// function parameters that must ALL be tainted for the expression to be
// tainted. An empty set with dead == false means the expression is
// tainted in place (constants, wall-clock reads). dead == true means
// some ingredient can never be tainted — config-struct literals, channel
// or map reads, calls into foreign code — so no choice of arguments
// taints the seed and no group is produced.
func mixClassify(prog *Program, fn *ProgFunc, params map[types.Object]int, e ast.Expr, depth int) (map[int]bool, bool) {
	if depth > 6 {
		return nil, true
	}
	info := fn.Pkg.Info
	e = ast.Unparen(e)
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return nil, false // constant: tainted in place, requires nothing
	}
	switch x := e.(type) {
	case *ast.Ident:
		obj := info.ObjectOf(x)
		if obj == nil {
			return nil, true
		}
		if idx, ok := params[obj]; ok {
			return map[int]bool{idx: true}, false
		}
		if init := localInit(fn, obj); init != nil {
			return mixClassify(prog, fn, params, init, depth+1)
		}
		return nil, true
	case *ast.SelectorExpr:
		// A field read off a parameter (s.Seed): the parameter carries it.
		if id := rootIdent(x); id != nil {
			if idx, ok := params[info.ObjectOf(id)]; ok {
				return map[int]bool{idx: true}, false
			}
		}
		return nil, true
	case *ast.BinaryExpr:
		left, dead := mixClassify(prog, fn, params, x.X, depth+1)
		if dead {
			return nil, true
		}
		right, dead := mixClassify(prog, fn, params, x.Y, depth+1)
		if dead {
			return nil, true
		}
		for i := range right {
			if left == nil {
				left = make(map[int]bool)
			}
			left[i] = true
		}
		return left, false
	case *ast.UnaryExpr:
		return mixClassify(prog, fn, params, x.X, depth+1)
	case *ast.CallExpr:
		// Conversions: int64(x).
		if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return mixClassify(prog, fn, params, x.Args[0], depth+1)
		}
		if containsWallclockRead(info, x) {
			return nil, false // wall clock: tainted in place
		}
		if name := calleeFullName(info, x); name != "" {
			if callee := prog.Funcs[name]; callee != nil && alwaysReturnsTainted(prog, callee, depth+1) != "" {
				return nil, false // helper smuggling a tainted value out
			}
		}
		return nil, true
	}
	return nil, true
}

func sortedIntKeys(set map[int]bool) []int {
	idxs := make([]int, 0, len(set))
	for i := range set {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	return idxs
}

func paramObjects(fn *ProgFunc) map[types.Object]int {
	out := make(map[types.Object]int)
	idx := 0
	if fn.Decl.Type.Params == nil {
		return out
	}
	for _, field := range fn.Decl.Type.Params.List {
		if len(field.Names) == 0 {
			idx++
			continue
		}
		for _, name := range field.Names {
			if obj := fn.Pkg.Info.Defs[name]; obj != nil {
				out[obj] = idx
			}
			idx++
		}
	}
	return out
}

// localInit finds the single-definition initializer of a local variable
// inside fn (x := expr, var x = expr); nil for parameters, multi-value
// assignments and reassigned variables.
func localInit(fn *ProgFunc, obj types.Object) ast.Expr {
	if fn.Decl.Body == nil {
		return nil
	}
	var init ast.Expr
	writes := 0
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, l := range st.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok || fn.Pkg.Info.ObjectOf(id) != obj {
					continue
				}
				writes++
				if len(st.Lhs) == len(st.Rhs) {
					init = st.Rhs[i]
				}
			}
		case *ast.ValueSpec:
			for i, id := range st.Names {
				if fn.Pkg.Info.ObjectOf(id) != obj {
					continue
				}
				writes++
				if i < len(st.Values) {
					init = st.Values[i]
				}
			}
		case *ast.IncDecStmt:
			if id, ok := st.X.(*ast.Ident); ok && fn.Pkg.Info.ObjectOf(id) == obj {
				writes++
			}
		}
		return true
	})
	if writes != 1 {
		return nil
	}
	return init
}

// taintedSeed classifies a seed expression, returning a non-empty reason
// when it is tainted: a compile-time constant, a wall-clock read, a
// single-assignment local bound to a tainted expression, or a call to a
// helper that always returns a tainted value. Clean sources — function
// parameters, config fields, channel/flag reads, DeriveSeed results —
// return "".
func taintedSeed(prog *Program, pkg *Package, owner *ProgFunc, expr ast.Expr, depth int, seen map[types.Object]bool) string {
	if depth > 6 {
		return ""
	}
	if seen == nil {
		seen = make(map[types.Object]bool)
	}
	e := ast.Unparen(expr)
	if tv, ok := pkg.Info.Types[e]; ok && tv.Value != nil {
		return fmt.Sprintf("constant seed %s", tv.Value)
	}
	if containsWallclockRead(pkg.Info, e) {
		return "wall-clock-derived seed"
	}
	switch x := e.(type) {
	case *ast.Ident:
		obj := pkg.Info.ObjectOf(x)
		if obj == nil || seen[obj] {
			return ""
		}
		seen[obj] = true
		if owner != nil {
			if init := localInit(owner, obj); init != nil {
				return taintedSeed(prog, pkg, owner, init, depth+1, seen)
			}
		}
	case *ast.BinaryExpr:
		// A mix is tainted only when every operand is (cfg.Seed ^ 0x5eed
		// is clean; 42 ^ time-now is not).
		left := taintedSeed(prog, pkg, owner, x.X, depth+1, seen)
		if left == "" {
			return ""
		}
		right := taintedSeed(prog, pkg, owner, x.Y, depth+1, seen)
		if right == "" {
			return ""
		}
		return left
	case *ast.UnaryExpr:
		return taintedSeed(prog, pkg, owner, x.X, depth+1, seen)
	case *ast.CallExpr:
		// Conversions: int64(x).
		if tv, ok := pkg.Info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return taintedSeed(prog, pkg, owner, x.Args[0], depth+1, seen)
		}
		// A helper that always returns a tainted value smuggles the seed
		// through a layer: func defaultSeed() int64 { return 42 }.
		if name := calleeFullName(pkg.Info, x); name != "" {
			if callee := prog.Funcs[name]; callee != nil {
				if reason := alwaysReturnsTainted(prog, callee, depth+1); reason != "" {
					return fmt.Sprintf("%s (via %s)", reason, shortFunc(name))
				}
			}
		}
	}
	return ""
}

// alwaysReturnsTainted reports whether every return statement of fn
// yields a tainted first result.
func alwaysReturnsTainted(prog *Program, fn *ProgFunc, depth int) string {
	if depth > 6 || fn.Decl.Body == nil {
		return ""
	}
	reason := ""
	all := true
	found := false
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return true
		}
		found = true
		r := taintedSeed(prog, fn.Pkg, fn, ret.Results[0], depth, nil)
		if r == "" {
			all = false
		} else if reason == "" {
			reason = r
		}
		return true
	})
	if found && all {
		return reason
	}
	return ""
}

// containsWallclockRead reports whether the expression reads the wall
// clock (time.Now and friends) anywhere in its subtree.
func containsWallclockRead(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if obj, ok := info.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Path() == "time" && wallclockFuncs[obj.Name()] {
			found = true
		}
		return !found
	})
	return found
}

func shortFunc(fullName string) string {
	if i := strings.LastIndex(fullName, "/"); i >= 0 {
		return fullName[i+1:]
	}
	return fullName
}
