package linalg

import "aquatope/internal/checkpoint"

// SnapshotMatrix serializes a matrix (nil allowed) shape-first.
func SnapshotMatrix(enc *checkpoint.Encoder, m *Matrix) {
	if m == nil {
		enc.Bool(false)
		return
	}
	enc.Bool(true)
	enc.Int(m.Rows)
	enc.Int(m.Cols)
	enc.F64s(m.Data)
}

// RestoreMatrix reads a matrix serialized by SnapshotMatrix.
func RestoreMatrix(dec *checkpoint.Decoder) (*Matrix, error) {
	present := dec.Bool()
	if err := dec.Err(); err != nil {
		return nil, err
	}
	if !present {
		return nil, nil
	}
	rows := dec.Int()
	cols := dec.Int()
	data := dec.F64s()
	if err := dec.Err(); err != nil {
		return nil, err
	}
	if rows < 0 || cols < 0 || len(data) != rows*cols {
		return nil, checkpoint.ErrShape
	}
	if data == nil {
		data = []float64{}
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}, nil
}
