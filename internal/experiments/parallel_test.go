package experiments

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"aquatope/internal/telemetry"
)

// micro is the smallest scale that still exercises the full pipeline; the
// parallel-determinism test runs its experiment twice.
var micro = Scale{TraceMin: 240, TrainMin: 180, Ensemble: 1, Repeats: 1, SearchBudget: 6, ModelEpochs: 1, Seed: 3}

// captureFig17 runs Fig17 at the given worker count and returns the three
// observable outputs: the rendered table, the span stream, and the metric
// snapshot.
func captureFig17(t *testing.T, parallel int) (string, []byte, []byte) {
	t.Helper()
	s := micro
	s.Parallel = parallel
	col := telemetry.NewCollector()
	reg := telemetry.NewRegistry()
	s.Collector = col
	s.Registry = reg
	table := Fig17(s).Table()
	var spans, metrics bytes.Buffer
	if err := col.WriteJSONL(&spans); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteJSON(&metrics); err != nil {
		t.Fatal(err)
	}
	return table, spans.Bytes(), metrics.Bytes()
}

// TestParallelDeterminism is the tentpole regression: a serial run and a
// heavily parallel run of a telemetry-emitting experiment must produce
// byte-identical tables, span dumps and metric snapshots.
func TestParallelDeterminism(t *testing.T) {
	table1, spans1, metrics1 := captureFig17(t, 1)
	table8, spans8, metrics8 := captureFig17(t, 8)
	if table1 != table8 {
		t.Errorf("tables diverge between -parallel 1 and 8:\n%s\nvs\n%s", table1, table8)
	}
	if !bytes.Equal(spans1, spans8) {
		t.Errorf("span streams diverge between -parallel 1 and 8 (%d vs %d bytes)", len(spans1), len(spans8))
	}
	if !bytes.Equal(metrics1, metrics8) {
		t.Errorf("metric snapshots diverge between -parallel 1 and 8:\n%s\nvs\n%s", metrics1, metrics8)
	}
	if len(spans1) == 0 {
		t.Error("expected the end-to-end run to emit spans")
	}
}

// TestFig17FanoutMatchesMonolithic pins the fan-out restructure: Fig17
// submits every per-app BO search as its own job before the two live runs,
// and the observable output must stay byte-identical to the old monolithic
// layout — one traced full-system run and one untraced rm-only run, each
// doing its own phase-1 search internally.
func TestFig17FanoutMatchesMonolithic(t *testing.T) {
	s := micro
	s.Parallel = 4
	col := telemetry.NewCollector()
	reg := telemetry.NewRegistry()
	s.Collector = col
	s.Registry = reg
	table := Fig17(s).Table()

	refCol := telemetry.NewCollector()
	refReg := telemetry.NewRegistry()
	fullCfg := fig17FullConfig(micro)
	fullCfg.Tracer = refCol
	fullCfg.Registry = refReg
	full, err := runE2E(fullCfg)
	if err != nil {
		t.Fatal(err)
	}
	rmOnly, err := runE2E(fig17RMOnlyConfig(micro))
	if err != nil {
		t.Fatal(err)
	}
	refTable := Fig17Result{
		FullCPU: full.cpu, FullMem: full.mem,
		RMOnlyCPU: rmOnly.cpu, RMOnlyMem: rmOnly.mem,
	}.Table()

	if table != refTable {
		t.Errorf("fanned-out table diverges from monolithic reference:\n%s\nvs\n%s", table, refTable)
	}
	var spans, refSpans, metrics, refMetrics bytes.Buffer
	if err := col.WriteJSONL(&spans); err != nil {
		t.Fatal(err)
	}
	if err := refCol.WriteJSONL(&refSpans); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(spans.Bytes(), refSpans.Bytes()) {
		t.Errorf("fanned-out span stream diverges from monolithic reference (%d vs %d bytes)",
			spans.Len(), refSpans.Len())
	}
	if err := reg.WriteJSON(&metrics); err != nil {
		t.Fatal(err)
	}
	if err := refReg.WriteJSON(&refMetrics); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(metrics.Bytes(), refMetrics.Bytes()) {
		t.Errorf("fanned-out metric snapshot diverges from monolithic reference:\n%s\nvs\n%s",
			metrics.Bytes(), refMetrics.Bytes())
	}
}

func TestRegistryLineup(t *testing.T) {
	all := All()
	if len(all) != 18 {
		t.Fatalf("registered experiments = %d, want 18", len(all))
	}
	ids := IDs()
	if ids[0] != "table1" || ids[len(ids)-1] != "arena" {
		t.Fatalf("registration order wrong: %v", ids)
	}
	seen := make(map[string]bool)
	for _, e := range all {
		if e.Title() == "" {
			t.Errorf("experiment %s has no title", e.ID())
		}
		if seen[e.ID()] {
			t.Errorf("duplicate id %s", e.ID())
		}
		seen[e.ID()] = true
		got, ok := Get(e.ID())
		if !ok || got.ID() != e.ID() {
			t.Errorf("Get(%q) failed", e.ID())
		}
	}
	if _, ok := Get("no-such-experiment"); ok {
		t.Error("Get on unknown id should fail")
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register should panic")
		}
	}()
	Register(New("table1", "dup", func(Scale) Result { return Table1Result{} }))
}

func TestMarshalResult(t *testing.T) {
	e := New("fake", "Fake experiment", func(Scale) Result {
		return Table1Result{Order: []string{"m"}, SMAPE: map[string]float64{"m": 12.34}}
	})
	r := e.Run(Scale{})
	out := MarshalResult(e, r)
	if out.ID != "fake" || out.Title != "Fake experiment" {
		t.Fatalf("metadata wrong: %+v", out)
	}
	header, rows := r.Rows()
	if len(out.Header) != len(header) || len(out.Rows) != len(rows) {
		t.Fatalf("rows not mirrored: %+v", out)
	}
	data, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"id":"fake"`, `"12.34%"`} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("JSON missing %s: %s", want, data)
		}
	}
}

// TestAllResultsImplementRows pins that every registered experiment's result
// type satisfies the structured Result surface with a consistent row width.
func TestAllResultsImplementRows(t *testing.T) {
	results := []Result{
		Table1Result{}, Fig9Result{}, Fig10Result{}, Fig11Result{},
		Fig12Result{}, Fig13Result{}, Fig14Result{}, Fig15Result{},
		Fig16Result{}, Fig17Result{FullCPU: 1, FullMem: 1}, Fig18Result{Order: []string{"a"}, Violation: map[string]float64{}, CPUTime: map[string]float64{"a": 1}, MemTime: map[string]float64{"a": 1}, ColdRate: map[string]float64{}},
		AblationBatchResult{}, AblationHeadroomResult{}, AblationMCSamplesResult{},
		ChaosResult{Policies: []string{"none"}},
		OverloadResult{Mults: []int{1}, Policies: []string{"none"}},
	}
	for i, r := range results {
		header, rows := r.Rows()
		if len(header) == 0 {
			t.Errorf("result %d (%T) has an empty header", i, r)
		}
		for _, row := range rows {
			if len(row) != len(header) {
				t.Errorf("%T row width %d != header width %d", r, len(row), len(header))
			}
		}
	}
}

func TestScaleEngineWorkers(t *testing.T) {
	s := Scale{Seed: 1}
	if got := s.engine("x").Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default workers = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	s.Parallel = 1
	if got := s.engine("x").Workers(); got != 1 {
		t.Fatalf("serial workers = %d", got)
	}
}
