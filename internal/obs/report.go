package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// WriteText renders the analysis summary as a fixed-precision plain-text
// report. Rendering only walks slices built in sorted order, so repeated
// renders of the same analysis are byte-identical.
func (a *Analysis) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "aquatrace summary: %d spans, %d workflows", a.Spans, a.Workflows)
	if a.SkippedTraining > 0 {
		fmt.Fprintf(bw, " (%d in training window, excluded)", a.SkippedTraining)
	}
	fmt.Fprintf(bw, "\nmax attribution error: %.4g%% of end-to-end latency\n", a.AttributionError*100)

	for i := range a.Apps {
		app := &a.Apps[i]
		fmt.Fprintf(bw, "\n== app %s", app.App)
		if app.QoS > 0 {
			fmt.Fprintf(bw, " (QoS %.3gs)", app.QoS)
		}
		fmt.Fprintf(bw, " ==\n")
		viol := 0.0
		if app.Workflows > 0 {
			viol = 100 * float64(app.Violations) / float64(app.Workflows)
		}
		fmt.Fprintf(bw, "workflows %d  failed %d  violations %d (%.1f%%)\n",
			app.Workflows, app.Failed, app.Violations, viol)
		fmt.Fprintf(bw, "latency: mean %.3fs  max %.3fs\n", app.MeanLatency, app.MaxLatency)
		writePhaseShare(bw, "critical-path attribution", app.Phases)
		if len(app.Stages) > 0 {
			fmt.Fprintf(bw, "per-stage rollup (critical-path time, seconds):\n")
			fmt.Fprintf(bw, "  %-16s %8s %10s %10s %10s %10s %10s\n",
				"stage", "on-path", "queue", "cold", "exec", "retry", "sched")
			for _, st := range app.Stages {
				fmt.Fprintf(bw, "  %-16s %8d %10.3f %10.3f %10.3f %10.3f %10.3f\n",
					st.Stage, st.OnPath, st.Phases.Queue, st.Phases.Cold,
					st.Phases.Exec, st.Phases.Retry, st.Phases.Sched)
			}
		}
		if len(app.TopViolators) > 0 {
			fmt.Fprintf(bw, "top violators:\n")
			fmt.Fprintf(bw, "  %-8s %10s %10s %10s %10s %10s %10s %10s\n",
				"span", "start", "latency", "queue", "cold", "exec", "retry", "sched")
			for _, v := range app.TopViolators {
				flag := ""
				if v.Failed {
					flag = " FAILED"
				}
				fmt.Fprintf(bw, "  %-8d %10.1f %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f%s\n",
					v.SpanID, v.Start, v.Latency, v.Phases.Queue, v.Phases.Cold,
					v.Phases.Exec, v.Phases.Retry, v.Phases.Sched, flag)
			}
		}
	}

	d := &a.Decisions
	fmt.Fprintf(bw, "\n== decisions ==\n")
	fmt.Fprintf(bw, "pool: %d decisions (%d degraded, %d rewarms, %d mode switches)\n",
		d.PoolDecisions, d.Degraded, d.Rewarms, d.ModeSwitches)
	for _, s := range d.PerFunction {
		fmt.Fprintf(bw, "  %-16s decisions %4d  mean predicted %.2f  mean headroom %.2f  mean target %.2f  max target %d\n",
			s.Function, s.Decisions, s.MeanPred, s.MeanHead, s.MeanTgt, s.MaxTgt)
	}
	fmt.Fprintf(bw, "bo: %d suggests (%d bootstrap), %d observe rounds\n",
		d.BOSuggests, d.BOBootstraps, d.BOIterations)
	fmt.Fprintf(bw, "breakers: %d transitions\n", d.BreakerEvents)

	if u := a.Utilization; u != nil {
		fmt.Fprintf(bw, "\n== utilization ==\n")
		if len(u.Invokers) > 0 {
			fmt.Fprintf(bw, "  %-8s %10s %10s %12s %12s %12s %8s %8s\n",
				"invoker", "busy_s", "idle_s", "warm_spare_s", "cpu_core_s", "mem_gb_s", "created", "killed")
			for _, iv := range u.Invokers {
				fmt.Fprintf(bw, "  %-8d %10.1f %10.1f %12.1f %12.1f %12.1f %8d %8d\n",
					iv.Invoker, iv.BusyS, iv.IdleS, iv.WarmSpareS, iv.CPUCoreS,
					iv.MemGBs, iv.Created, iv.Killed)
			}
		}
		fmt.Fprintf(bw, "bin-packing efficiency %.1f%%  fleet CPU utilization %.1f%%\n",
			u.BinPackEfficiency*100, u.FleetCPUUtil*100)
	}
	return bw.Flush()
}

// writePhaseShare prints a phase breakdown with percentage shares.
func writePhaseShare(w io.Writer, label string, p Phases) {
	total := p.Total()
	pct := func(v float64) float64 {
		if total <= 0 {
			return 0
		}
		return 100 * v / total
	}
	fmt.Fprintf(w, "%s: queue %.1f%%  cold %.1f%%  exec %.1f%%  retry %.1f%%  sched %.1f%%  (total %.1fs)\n",
		label, pct(p.Queue), pct(p.Cold), pct(p.Exec), pct(p.Retry), pct(p.Sched), total)
}

// WriteAudit renders the full decision audit log, one chronological line
// per decision with its reconstructed explanation and raw explain fields.
func (a *Analysis) WriteAudit(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, r := range a.Audit {
		fmt.Fprintf(bw, "t=%010.1f %-14s %-12s %s", r.Time, r.Kind, r.Name, r.Why)
		if len(r.Fields) > 0 {
			keys := make([]string, 0, len(r.Fields))
			for k := range r.Fields {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fmt.Fprintf(bw, "  [")
			for i, k := range keys {
				if i > 0 {
					fmt.Fprintf(bw, " ")
				}
				fmt.Fprintf(bw, "%s=%.6g", k, r.Fields[k])
			}
			fmt.Fprintf(bw, "]")
		}
		fmt.Fprintf(bw, "\n")
	}
	return bw.Flush()
}

// WriteJSON writes the indented JSON summary (the machine-readable side of
// WriteText; map-free structures keep it byte-deterministic).
func (a *Analysis) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}
