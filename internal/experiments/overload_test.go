package experiments

import (
	"bytes"
	"testing"

	"aquatope/internal/telemetry"
)

// captureOverload runs the overload sweep at the given worker count and
// returns the rendered table, span stream and metric snapshot.
func captureOverload(t *testing.T, parallel int) (OverloadResult, string, []byte, []byte) {
	t.Helper()
	s := micro
	s.Parallel = parallel
	col := telemetry.NewCollector()
	reg := telemetry.NewRegistry()
	s.Collector = col
	s.Registry = reg
	r := Overload(s)
	var spans, metrics bytes.Buffer
	if err := col.WriteJSONL(&spans); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteJSON(&metrics); err != nil {
		t.Fatal(err)
	}
	return r, r.Table(), spans.Bytes(), metrics.Bytes()
}

// TestOverloadParallelDeterminism: serial and parallel runs of the overload
// sweep produce byte-identical tables, span dumps and metric snapshots —
// with every protection layer (admission, breakers, budgets, pool guard)
// enabled.
func TestOverloadParallelDeterminism(t *testing.T) {
	_, table1, spans1, metrics1 := captureOverload(t, 1)
	_, table8, spans8, metrics8 := captureOverload(t, 8)
	if table1 != table8 {
		t.Errorf("tables diverge between -parallel 1 and 8:\n%s\nvs\n%s", table1, table8)
	}
	if !bytes.Equal(spans1, spans8) {
		t.Errorf("span streams diverge between -parallel 1 and 8 (%d vs %d bytes)", len(spans1), len(spans8))
	}
	if !bytes.Equal(metrics1, metrics8) {
		t.Errorf("metric snapshots diverge between -parallel 1 and 8")
	}
	if len(spans1) == 0 {
		t.Error("expected the overload sweep to emit spans")
	}
}

// TestOverloadCurves checks the sweep's acceptance shape: a clean baseline
// row, monotonically increasing shed rate past saturation, bounded P99
// under the deadline-carrying policies, and the retry budget recovering
// strictly more goodput than naive retries under the same overload.
func TestOverloadCurves(t *testing.T) {
	r, _, _, _ := captureOverload(t, 0)

	// Baseline (×1): no overload, nothing shed, everything in QoS.
	for _, p := range r.Policies {
		k := overloadKey(r.Mults[0], p)
		if r.ShedRate[k] != 0 {
			t.Errorf("baseline %s sheds %.2f%%", p, r.ShedRate[k]*100)
		}
		if r.Goodput[k] < 0.99 {
			t.Errorf("baseline %s goodput %.2f%%", p, r.Goodput[k]*100)
		}
		if r.Violation[k] > 0.05 {
			t.Errorf("baseline %s violation %.2f%%", p, r.Violation[k]*100)
		}
	}

	// Shed rate must increase monotonically with the load multiplier for
	// every policy.
	for _, p := range r.Policies {
		prev := -1.0
		for _, m := range r.Mults {
			k := overloadKey(m, p)
			if r.ShedRate[k] < prev {
				t.Errorf("%s shed rate not monotone: x%d=%.3f after %.3f", p, m, r.ShedRate[k], prev)
			}
			prev = r.ShedRate[k]
		}
		top := overloadKey(r.Mults[len(r.Mults)-1], p)
		if r.ShedRate[top] < 0.3 {
			t.Errorf("%s sheds only %.1f%% at the top multiplier — not past saturation", p, r.ShedRate[top]*100)
		}
	}

	// Deadline-carrying policies keep the tail bounded at every load: the
	// per-attempt timeout plus deadline-aware shedding caps queue waits.
	for _, p := range []string{"naive", "budget"} {
		for _, m := range r.Mults {
			k := overloadKey(m, p)
			if r.P99[k] > 300 {
				t.Errorf("%s P99 unbounded at x%d: %.1fs", p, m, r.P99[k])
			}
		}
	}

	// The shared retry budget degrades to fail-fast instead of amplifying
	// the overload: strictly more goodput than naive retries past
	// saturation, with the denials accounted for.
	for _, m := range r.Mults[2:] {
		nk, bk := overloadKey(m, "naive"), overloadKey(m, "budget")
		if r.Goodput[bk] <= r.Goodput[nk] {
			t.Errorf("x%d: budget goodput %.3f not above naive %.3f", m, r.Goodput[bk], r.Goodput[nk])
		}
		if r.Denied[bk] == 0 {
			t.Errorf("x%d: budget denied nothing", m)
		}
		if r.Denied[nk] != 0 {
			t.Errorf("x%d: naive policy denied %d — budget misconfigured", m, r.Denied[nk])
		}
	}
}
