package workflow

import (
	"testing"

	"aquatope/internal/faas"
	"aquatope/internal/sim"
	"aquatope/internal/telemetry"
)

// TestRetryBudgetFailFast: with a shared retry budget smaller than the
// retries the fault schedule demands, the executor degrades to fail-fast —
// it spends the budget, then reports the denial instead of re-issuing.
func TestRetryBudgetFailFast(t *testing.T) {
	run := func(budget int) *Result {
		eng := sim.NewEngine()
		cl := faas.NewCluster(eng, faas.Config{Invokers: 2, CPUPerInvoker: 8, MemoryPerInvokerMB: 4096, Seed: 1})
		col := telemetry.NewCollector()
		cl.SetTracer(col)
		m := faas.DefaultSyntheticModel()
		if err := cl.RegisterFunction(faas.FunctionSpec{Name: "f", Model: m}, faas.ResourceConfig{CPU: 1, MemoryMB: 512}); err != nil {
			t.Fatal(err)
		}
		cl.SetFaultRates(faas.FaultRates{InitFailure: 1}) // permanent
		p := RetryPolicy{MaxAttempts: 3, InitialBackoff: 0.1, BackoffFactor: 2, RetryBudget: budget}
		ex := NewExecutor(cl)
		ex.Policy = &p
		var res *Result
		if err := ex.Execute(Chain("c", "f", "f"), 1, nil, func(r Result) { res = &r }); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if res == nil {
			t.Fatal("workflow never completed")
		}
		if eng.Pending() != 0 {
			t.Fatalf("%d events stuck", eng.Pending())
		}
		// Check the denied retry point count matches the result.
		denied := 0
		for _, s := range col.Spans() {
			if s.Kind == telemetry.KindRetry && s.Fields["denied"] == 1 && s.Fields["hedge"] == 0 {
				denied++
			}
		}
		if denied != res.RetriesDenied {
			t.Fatalf("budget %d: denied points %d != RetriesDenied %d", budget, denied, res.RetriesDenied)
		}
		return res
	}

	budgeted := run(1)
	if !budgeted.Failed {
		t.Fatalf("budgeted run should fail under permanent faults: %+v", *budgeted)
	}
	if budgeted.Retries != 1 || budgeted.RetriesDenied != 1 {
		t.Fatalf("budget 1: retries=%d denied=%d, want 1 and 1", budgeted.Retries, budgeted.RetriesDenied)
	}
	naive := run(0)
	if naive.RetriesDenied != 0 {
		t.Fatalf("unbudgeted run denied %d retries", naive.RetriesDenied)
	}
	if naive.Retries <= budgeted.Retries {
		t.Fatalf("unbudgeted retries %d should exceed budgeted %d", naive.Retries, budgeted.Retries)
	}
	// Fail-fast: the budgeted workflow gives up strictly earlier.
	if budgeted.Latency() >= naive.Latency() {
		t.Fatalf("budgeted latency %v should be below naive %v", budgeted.Latency(), naive.Latency())
	}
}

// TestRetryBudgetRefill: a refilling bucket readmits retries after enough
// simulated time passes, so a later transient fault is still absorbed.
func TestRetryBudgetRefill(t *testing.T) {
	eng := sim.NewEngine()
	cl := faas.NewCluster(eng, faas.Config{Invokers: 2, CPUPerInvoker: 8, MemoryPerInvokerMB: 4096, Seed: 1})
	m := faas.DefaultSyntheticModel()
	if err := cl.RegisterFunction(faas.FunctionSpec{Name: "f", Model: m}, faas.ResourceConfig{CPU: 1, MemoryMB: 512}); err != nil {
		t.Fatal(err)
	}
	// Inits fail until t=2, then clear: the first attempt needs one retry.
	cl.SetFaultRates(faas.FaultRates{InitFailure: 1})
	eng.Schedule(2, func() { cl.SetFaultRates(faas.FaultRates{}) })
	p := RetryPolicy{MaxAttempts: 4, InitialBackoff: 1.5, BackoffFactor: 2,
		RetryBudget: 1, RetryBudgetPerSec: 0.5}
	ex := NewExecutor(cl)
	ex.Policy = &p
	var res *Result
	if err := ex.Execute(Chain("c", "f", "f", "f"), 1, nil, func(r Result) { res = &r }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if res == nil {
		t.Fatal("workflow never completed")
	}
	if res.Failed {
		t.Fatalf("refilled budget should absorb the transient fault: %+v", *res)
	}
	if res.Retries == 0 {
		t.Fatal("no retries recorded")
	}
}

// TestHedgeBackpressure: a hedge is suppressed when the target function's
// queue depth is at or above HedgeQueueLimit — a saturated queue turns a
// duplicate request into pure extra load.
func TestHedgeBackpressure(t *testing.T) {
	eng := sim.NewEngine()
	// One slot: Concurrency 1 on a single invoker serializes everything.
	cl := faas.NewCluster(eng, faas.Config{Invokers: 1, CPUPerInvoker: 1, MemoryPerInvokerMB: 4096, Seed: 1})
	m := faas.DefaultSyntheticModel()
	m.BaseExecSec = 2
	if err := cl.RegisterFunction(faas.FunctionSpec{Name: "f", Model: m},
		faas.ResourceConfig{CPU: 1, MemoryMB: 512, Concurrency: 1}); err != nil {
		t.Fatal(err)
	}
	// Fill the queue with background work so the workflow's attempt queues
	// behind it and the queue stays deep at hedge time.
	for i := 0; i < 3; i++ {
		if err := cl.Invoke("f", 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	p := RetryPolicy{MaxAttempts: 2, InitialBackoff: 0.1, BackoffFactor: 2,
		HedgeDelay: 0.5, HedgeQueueLimit: 1}
	ex := NewExecutor(cl)
	ex.Policy = &p
	var res *Result
	if err := ex.Execute(Chain("c", "f"), 1, nil, func(r Result) { res = &r }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if res == nil {
		t.Fatal("workflow never completed")
	}
	if res.Failed {
		t.Fatalf("workflow failed: %+v", *res)
	}
	if res.Hedges != 0 {
		t.Fatalf("hedge issued into a saturated queue (%d)", res.Hedges)
	}
	if res.HedgesSkipped == 0 {
		t.Fatal("no hedge skip recorded")
	}

	// Control: same setup without the limit does hedge.
	eng2 := sim.NewEngine()
	cl2 := faas.NewCluster(eng2, faas.Config{Invokers: 1, CPUPerInvoker: 1, MemoryPerInvokerMB: 4096, Seed: 1})
	if err := cl2.RegisterFunction(faas.FunctionSpec{Name: "f", Model: m},
		faas.ResourceConfig{CPU: 1, MemoryMB: 512, Concurrency: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := cl2.Invoke("f", 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	p2 := p
	p2.HedgeQueueLimit = 0
	ex2 := NewExecutor(cl2)
	ex2.Policy = &p2
	var res2 *Result
	if err := ex2.Execute(Chain("c", "f"), 1, nil, func(r Result) { res2 = &r }); err != nil {
		t.Fatal(err)
	}
	eng2.Run()
	if res2 == nil || res2.Hedges == 0 {
		t.Fatalf("control run should hedge: %+v", res2)
	}
}

// TestShedStageAttribution: an admission-control shed that settles a stage
// is counted in Sheds/ShedStages so QoS attribution can separate overload
// rejections from hard faults.
func TestShedStageAttribution(t *testing.T) {
	eng := sim.NewEngine()
	cl := faas.NewCluster(eng, faas.Config{Invokers: 1, CPUPerInvoker: 1, MemoryPerInvokerMB: 4096,
		Seed: 1, QueueLimit: 1})
	m := faas.DefaultSyntheticModel()
	m.BaseExecSec = 2
	if err := cl.RegisterFunction(faas.FunctionSpec{Name: "f", Model: m},
		faas.ResourceConfig{CPU: 1, MemoryMB: 512, Concurrency: 1}); err != nil {
		t.Fatal(err)
	}
	// One running + one queued: the workflow's attempt is refused admission.
	for i := 0; i < 2; i++ {
		if err := cl.Invoke("f", 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	ex := NewExecutor(cl) // no retry policy: the shed settles the stage
	var res *Result
	if err := ex.Execute(Chain("c", "f", "f"), 1, nil, func(r Result) { res = &r }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if res == nil {
		t.Fatal("workflow never completed")
	}
	if !res.Failed {
		t.Fatalf("shed stage should fail the workflow: %+v", *res)
	}
	if res.Sheds != 1 || res.ShedStages != 1 {
		t.Fatalf("sheds=%d shedStages=%d, want 1 and 1", res.Sheds, res.ShedStages)
	}
	if res.SkippedStages != 1 {
		t.Fatalf("skipped %d stages, want 1", res.SkippedStages)
	}
	if eng.Pending() != 0 {
		t.Fatalf("%d events stuck", eng.Pending())
	}
}
