package sim

import (
	"sort"
	"testing"
	"testing/quick"

	"aquatope/internal/telemetry"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %v, want 3", e.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestAfter(t *testing.T) {
	e := NewEngine()
	var fired Time
	e.Schedule(10, func() {
		e.After(5, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 15 {
		t.Fatalf("After fired at %v, want 15", fired)
	}
}

func TestAfterNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		e.After(-3, func() {})
	})
	e.Run()
	if e.Now() != 10 {
		t.Fatalf("Now = %v, want 10", e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() should be true")
	}
	if e.Processed() != 0 {
		t.Fatalf("Processed = %v, want 0", e.Processed())
	}
}

func TestCancelNilSafe(t *testing.T) {
	var ev *Event
	ev.Cancel() // must not panic
	if ev.Canceled() {
		t.Fatal("nil event reports canceled")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		e.Schedule(1, func() {})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("fired %v events, want 3", len(fired))
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %v, want 3", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %v, want 2", e.Pending())
	}
	// Advancing clock past the last event even when queue has nothing there.
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("Now = %v, want 100", e.Now())
	}
	if len(fired) != 5 {
		t.Fatalf("fired %v events, want 5", len(fired))
	}
}

func TestRunUntilSkipsCanceledHead(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(1, func() { t.Error("should not fire") })
	fired := false
	e.Schedule(2, func() { fired = true })
	ev.Cancel()
	e.RunUntil(5)
	if !fired {
		t.Fatal("live event did not fire")
	}
}

func TestEventAt(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(7, func() {})
	if ev.At() != 7 {
		t.Fatalf("At = %v, want 7", ev.At())
	}
}

func TestPropertyEventsFireInTimestampOrder(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, r := range raw {
			at := Time(r)
			e.Schedule(at, func() { fired = append(fired, at) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var step func()
	step = func() {
		count++
		if count < 100 {
			e.After(1, step)
		}
	}
	e.Schedule(0, step)
	e.Run()
	if count != 100 {
		t.Fatalf("count = %v, want 100", count)
	}
	if e.Now() != 99 {
		t.Fatalf("Now = %v, want 99", e.Now())
	}
	if e.Processed() != 100 {
		t.Fatalf("Processed = %v", e.Processed())
	}
}

func TestPendingExcludesCanceled(t *testing.T) {
	e := NewEngine()
	a := e.Schedule(1, func() {})
	b := e.Schedule(2, func() {})
	e.Schedule(3, func() {})
	if e.Pending() != 3 {
		t.Fatalf("Pending = %v, want 3", e.Pending())
	}
	b.Cancel()
	if e.Pending() != 2 {
		t.Fatalf("Pending after cancel = %v, want 2", e.Pending())
	}
	b.Cancel() // double cancel must not decrement twice
	if e.Pending() != 2 {
		t.Fatalf("Pending after double cancel = %v, want 2", e.Pending())
	}
	if !e.Step() {
		t.Fatal("Step should fire event a")
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending after step = %v, want 1", e.Pending())
	}
	a.Cancel() // canceling an already-fired event is a no-op
	if e.Pending() != 1 {
		t.Fatalf("Pending after canceling fired event = %v, want 1", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending after drain = %v, want 0", e.Pending())
	}
}

func TestEngineMetrics(t *testing.T) {
	e := NewEngine()
	reg := telemetry.NewRegistry()
	e.SetMetrics(reg)
	for i := 1; i <= 4; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.Run()
	s := reg.Snapshot()
	if s.Counters["sim.events"] != 4 {
		t.Fatalf("sim.events = %v, want 4", s.Counters["sim.events"])
	}
	if s.Gauges["sim.clock_s"] != 4 {
		t.Fatalf("sim.clock_s = %v, want 4", s.Gauges["sim.clock_s"])
	}
	if s.Gauges["sim.pending_events"] != 0 {
		t.Fatalf("sim.pending_events = %v, want 0", s.Gauges["sim.pending_events"])
	}
}
