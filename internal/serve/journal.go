package serve

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"fmt"
	"hash"
	"io"
	"os"
)

// Journal is the durable arrival log: every ingested record is appended as
// its canonical JSONL line, and the file is fsynced at each checkpoint
// boundary before the checkpoint that references it is written. A
// checkpoint stores (record count, byte offset, SHA-256 of the byte
// prefix), so restore can prove the journal it replays is the journal the
// checkpoint was cut against.
//
// The journal doubles as a recorded stream: its format is exactly the
// -stream JSONL format, so a journal from one run can drive another.
type Journal struct {
	f     *os.File
	w     *bufio.Writer
	h     hash.Hash // running SHA-256 over all durable+buffered bytes
	off   int64     // bytes written (including buffered)
	count int       // records appended
}

// CreateJournal opens a fresh (truncated) journal at path.
func CreateJournal(path string) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("serve: journal: %w", err)
	}
	return &Journal{f: f, w: bufio.NewWriter(f), h: sha256.New()}, nil
}

// OpenJournalAppend reopens an existing journal for appending after its
// torn tail (a partial last line from a crash mid-write) has been
// truncated by LoadJournal. The running hash and counters are re-seeded
// from the surviving content.
func OpenJournalAppend(path string) (*Journal, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("serve: journal: %w", err)
	}
	if n := durablePrefix(data); n != len(data) {
		return nil, fmt.Errorf("serve: journal %s: torn tail not truncated before append", path)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: journal: %w", err)
	}
	j := &Journal{f: f, w: bufio.NewWriter(f), h: sha256.New(), off: int64(len(data))}
	j.h.Write(data) //aqualint:allow droppederr hash.Hash Write never returns an error
	j.count = bytes.Count(data, []byte{'\n'})
	return j, nil
}

// Append journals one record. The write is buffered; durability is only
// guaranteed after Sync.
func (j *Journal) Append(rec Record) error {
	line, err := rec.MarshalLine()
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if _, err := j.w.Write(line); err != nil {
		return fmt.Errorf("serve: journal append: %w", err)
	}
	j.h.Write(line) //aqualint:allow droppederr hash.Hash Write never returns an error
	j.off += int64(len(line))
	j.count++
	return nil
}

// Sync flushes buffered records and fsyncs the file.
func (j *Journal) Sync() error {
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("serve: journal flush: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("serve: journal fsync: %w", err)
	}
	return nil
}

// Count returns the number of records appended (including re-seeded ones).
func (j *Journal) Count() int { return j.count }

// Offset returns the byte length of the journal including buffered writes.
func (j *Journal) Offset() int64 { return j.off }

// PrefixSHA256 returns the SHA-256 of everything appended so far. Sum does
// not disturb the running state, so this is cheap at every boundary.
func (j *Journal) PrefixSHA256() []byte { return j.h.Sum(nil) }

// Close flushes and closes the journal (without fsync; call Sync first if
// durability matters).
func (j *Journal) Close() error {
	if err := j.w.Flush(); err != nil {
		_ = j.f.Close() //aqualint:allow droppederr best-effort cleanup on an already-failing flush path
		return err
	}
	return j.f.Close()
}

// durablePrefix returns the length of the newline-terminated prefix of
// data — everything after the last '\n' is a torn tail.
func durablePrefix(data []byte) int {
	i := bytes.LastIndexByte(data, '\n')
	return i + 1
}

// LoadJournal reads the journal at path, truncates any torn tail in place
// (a crash can leave a partial final line; dropping it loses only records
// the referencing checkpoint never covered), and returns the parsed
// records plus the surviving bytes.
func LoadJournal(path string) ([]Record, []byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: journal: %w", err)
	}
	if n := durablePrefix(data); n != len(data) {
		if err := os.Truncate(path, int64(n)); err != nil {
			return nil, nil, fmt.Errorf("serve: journal: truncating torn tail: %w", err)
		}
		data = data[:n]
	}
	var recs []Record
	src := NewSource(bytes.NewReader(data))
	for {
		rec, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("serve: journal %s: %w", path, err)
		}
		recs = append(recs, rec)
	}
	return recs, data, nil
}
