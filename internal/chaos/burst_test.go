package chaos

import (
	"bytes"
	"testing"

	"aquatope/internal/faas"
	"aquatope/internal/sim"
	"aquatope/internal/telemetry"
)

// burstCluster builds a deliberately small cluster so a burst saturates it.
func burstCluster(t *testing.T, seed int64, queueLimit int) (*sim.Engine, *faas.Cluster, *telemetry.Collector) {
	t.Helper()
	eng := sim.NewEngine()
	cl := faas.NewCluster(eng, faas.Config{
		Invokers: 1, CPUPerInvoker: 2, MemoryPerInvokerMB: 2048,
		Seed: seed, QueueLimit: queueLimit,
	})
	col := telemetry.NewCollector()
	cl.SetTracer(col)
	m := faas.DefaultSyntheticModel()
	m.BaseExecSec = 2
	if err := cl.RegisterFunction(faas.FunctionSpec{Name: "f", Model: m},
		faas.ResourceConfig{CPU: 1, MemoryMB: 512, Concurrency: 1}); err != nil {
		t.Fatal(err)
	}
	return eng, cl, col
}

// TestBurstInjectsAndSheds: a burst fault drives invocations at its rate
// for its window; against a bounded queue the overflow is shed, and the
// chaos.fault span reports the injected count.
func TestBurstInjectsAndSheds(t *testing.T) {
	eng, cl, col := burstCluster(t, 1, 2)
	scn := Scenario{Name: "burst", Faults: []Fault{
		{Kind: KindBurst, At: 10, Duration: 5, Rate: 4, Function: "f"},
	}}
	New(cl, scn).Arm()
	eng.Run()
	cl.Flush()

	mets := cl.Metrics()
	// 5 s at 4/s = 20 arrivals against ~1 slot: most must shed.
	if got := mets.Invocations(); got < 15 {
		t.Fatalf("burst injected too little: %d invocations", got)
	}
	if mets.ShedInvocations() == 0 {
		t.Fatal("saturating burst shed nothing")
	}
	var span *telemetry.Span
	for i, s := range col.Spans() {
		if s.Kind == telemetry.KindChaosFault && s.Name == string(KindBurst) {
			span = &col.Spans()[i]
		}
	}
	if span == nil {
		t.Fatal("no chaos.fault span for the burst")
	}
	if span.Fields["rate"] != 4 || span.Fields["injected"] < 15 {
		t.Fatalf("burst span fields off: %+v", span.Fields)
	}
	if eng.Pending() != 0 {
		t.Fatalf("%d events stuck", eng.Pending())
	}
}

// TestBurstDeterministic: same-seed runs of an overload scenario produce
// byte-identical span dumps.
func TestBurstDeterministic(t *testing.T) {
	run := func(seed int64) []byte {
		eng, cl, col := burstCluster(t, seed, 2)
		scn, ok := Builtin("overload", 60, seed)
		if !ok {
			t.Fatal("overload scenario missing")
		}
		New(cl, scn).Arm()
		eng.Run()
		cl.Flush()
		var buf bytes.Buffer
		if err := col.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(9), run(9)
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed overload dumps differ (%d vs %d bytes)", len(a), len(b))
	}
}

// TestBurstRoundRobinAndGuards: an untargeted burst round-robins all
// registered functions; degenerate bursts (no rate, no duration) inject
// nothing but still close their span.
func TestBurstRoundRobinAndGuards(t *testing.T) {
	eng, cl, col := burstCluster(t, 3, 0)
	m := faas.DefaultSyntheticModel()
	m.BaseExecSec = 0.5
	if err := cl.RegisterFunction(faas.FunctionSpec{Name: "g", Model: m},
		faas.ResourceConfig{CPU: 1, MemoryMB: 256}); err != nil {
		t.Fatal(err)
	}
	scn := Scenario{Name: "rr", Faults: []Fault{
		{Kind: KindBurst, At: 1, Duration: 3, Rate: 2},
		{Kind: KindBurst, At: 2, Duration: 0, Rate: 5}, // degenerate
	}}
	New(cl, scn).Arm()
	eng.Run()
	cl.Flush()
	if got := cl.Metrics().Invocations(); got < 5 {
		t.Fatalf("round-robin burst injected %d invocations", got)
	}
	bursts := 0
	for _, s := range col.Spans() {
		if s.Kind == telemetry.KindChaosFault && s.Name == string(KindBurst) {
			bursts++
		}
	}
	if bursts != 2 {
		t.Fatalf("want both burst spans closed, got %d", bursts)
	}
	if eng.Pending() != 0 {
		t.Fatalf("%d events stuck", eng.Pending())
	}
}

// TestOverloadCrashScenario: the overload-crash builtin — invoker loss in
// the middle of a surge — terminates cleanly and registers the crash.
func TestOverloadCrashScenario(t *testing.T) {
	eng := sim.NewEngine()
	cl := faas.NewCluster(eng, faas.Config{
		Invokers: 2, CPUPerInvoker: 2, MemoryPerInvokerMB: 2048,
		Seed: 5, QueueLimit: 4,
	})
	col := telemetry.NewCollector()
	cl.SetTracer(col)
	m := faas.DefaultSyntheticModel()
	m.BaseExecSec = 1.5
	if err := cl.RegisterFunction(faas.FunctionSpec{Name: "f", Model: m},
		faas.ResourceConfig{CPU: 1, MemoryMB: 512, Concurrency: 1}); err != nil {
		t.Fatal(err)
	}
	scn, ok := Builtin("overload-crash", 100, 5)
	if !ok {
		t.Fatal("overload-crash scenario missing")
	}
	New(cl, scn).Arm()
	eng.Run()
	cl.Flush()
	kinds := map[Kind]int{}
	for _, s := range col.Spans() {
		if s.Kind == telemetry.KindChaosFault {
			kinds[Kind(s.Name)]++
		}
	}
	if kinds[KindBurst] == 0 || kinds[KindInvokerCrash] == 0 {
		t.Fatalf("overload-crash spans incomplete: %+v", kinds)
	}
	if eng.Pending() != 0 {
		t.Fatalf("%d events stuck", eng.Pending())
	}
}
