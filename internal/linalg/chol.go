package linalg

import "math"

// Incremental Cholesky maintenance for sliding windows.
//
// A Gaussian-process kernel matrix grows by one row/column per observation
// and shrinks from the front when the window slides. Recomputing the factor
// from scratch is O(n³) per update; the two primitives here keep it O(n²):
//
//   - ExtendCholesky appends one row/column: the new off-diagonal row is a
//     forward substitution L·ℓ = k and the new diagonal is the square root
//     of the Schur complement. Because tryCholesky computes row n of L by
//     exactly the same operations in the same order, an extended factor is
//     bitwise identical to a cold factorization of the extended matrix
//     (when the cold path succeeds at the same jitter level).
//
//   - DropLeadingCholesky removes row/column 0: writing the factor in block
//     form L = [[l₁₁, 0], [l₂₁, L₂₂]] gives A[1:,1:] = l₂₁l₂₁ᵀ + L₂₂L₂₂ᵀ,
//     so the trailing block needs only a rank-1 *update* (the numerically
//     benign direction) with the deleted column as the vector.
//
// Rank1Update is the shared kernel: the classic LINPACK-style sweep of
// scaled Givens rotations, O(n²), stable for updates (downdates — which can
// lose positive definiteness — are never needed for evict-front windows).

// CholeskyJitter is Cholesky, additionally reporting the diagonal jitter
// that made the factorization succeed (0 when none was needed). Callers
// maintaining a factor incrementally must add the same jitter to appended
// diagonal entries to stay consistent with the factored matrix.
func CholeskyJitter(a *Matrix) (*Matrix, float64, error) {
	if a.Rows != a.Cols {
		return nil, 0, errNonSquare
	}
	jitter := 0.0
	for attempt := 0; attempt < 8; attempt++ {
		l, ok := tryCholesky(a, jitter)
		if ok {
			return l, jitter, nil
		}
		if jitter == 0 {
			jitter = 1e-10
		} else {
			jitter *= 100
		}
		if jitter > 1e-4 {
			break
		}
	}
	return nil, 0, ErrNotPSD
}

// ExtendCholesky returns the (n+1)×(n+1) Cholesky factor of the matrix
//
//	[ A  k ]
//	[ kᵀ d ]
//
// given L = chol(A + jitter·I) (n×n), the cross column k = A[0:n, n], and
// the new diagonal entry d (jitter is re-applied to d for consistency).
// It runs in O(n²). ok is false when the Schur complement is not positive —
// the caller should fall back to a cold factorization with jitter
// escalation. L is not modified.
//
// Extending an empty factor (n == 0) ignores jitter: there is no existing
// factorization to stay consistent with, and a cold factorization of a 1×1
// matrix starts at jitter 0 — applying a stale caller-side jitter here
// would silently diverge from the cold path (the window-size-1 edge of a
// sliding window that just dropped to empty).
func ExtendCholesky(l *Matrix, k []float64, d, jitter float64) (*Matrix, bool) {
	n := l.Rows
	if len(k) != n {
		panic("linalg: extend length mismatch")
	}
	if n == 0 {
		jitter = 0
	}
	out := NewMatrix(n+1, n+1)
	for i := 0; i < n; i++ {
		copy(out.Row(i)[:n], l.Row(i)[:n])
	}
	// New row by forward substitution, mirroring tryCholesky's update of
	// row n against rows 0..n-1 (same operations, same order).
	row := out.Row(n)
	for j := 0; j < n; j++ {
		s := k[j]
		lj := l.Row(j)
		for t := 0; t < j; t++ {
			s -= row[t] * lj[t]
		}
		row[j] = s / lj[j]
	}
	dd := d + jitter
	for t := 0; t < n; t++ {
		dd -= row[t] * row[t]
	}
	if dd <= 0 || math.IsNaN(dd) {
		return nil, false
	}
	row[n] = math.Sqrt(dd)
	return out, true
}

// ExtendCholeskyInPlace is ExtendCholesky mutating l itself: the factor is
// restructured for the wider stride inside its own backing array (growing it
// only when capacity runs out, so a sliding window at steady state never
// allocates) and the new row is computed exactly as ExtendCholesky would,
// producing a bitwise-identical factor. On ok=false the factor has been
// restructured and is no longer valid — the caller must refactor from
// scratch, which is what the failure demands anyway. Like ExtendCholesky,
// extending an empty factor ignores jitter to match a cold 1×1
// factorization.
func ExtendCholeskyInPlace(l *Matrix, k []float64, d, jitter float64) bool {
	n := l.Rows
	if len(k) != n {
		panic("linalg: extend length mismatch")
	}
	if n == 0 {
		jitter = 0
	}
	need := (n + 1) * (n + 1)
	if cap(l.Data) < need {
		grown := make([]float64, need)
		copy(grown, l.Data)
		l.Data = grown
	}
	l.Data = l.Data[:need]
	// Widen the stride from the last row down: each destination starts at or
	// past its source, so pending source rows are never clobbered, and the
	// new trailing column is zeroed to mirror a freshly allocated factor.
	for i := n - 1; i >= 1; i-- {
		copy(l.Data[i*(n+1):i*(n+1)+n], l.Data[i*n:(i+1)*n])
	}
	for i := 0; i < n; i++ {
		l.Data[i*(n+1)+n] = 0
	}
	l.Rows, l.Cols = n+1, n+1
	row := l.Row(n)
	for j := 0; j < n; j++ {
		s := k[j]
		lj := l.Row(j)
		for t := 0; t < j; t++ {
			s -= row[t] * lj[t]
		}
		row[j] = s / lj[j]
	}
	dd := d + jitter
	for t := 0; t < n; t++ {
		dd -= row[t] * row[t]
	}
	if dd <= 0 || math.IsNaN(dd) {
		return false
	}
	row[n] = math.Sqrt(dd)
	return true
}

// DropLeadingCholesky returns the (n-1)×(n-1) Cholesky factor of A[1:,1:]
// given L = chol(A) (n×n), in O(n²). L is not modified.
func DropLeadingCholesky(l *Matrix) *Matrix {
	n := l.Rows
	if n == 0 {
		panic("linalg: drop from empty factor")
	}
	out := NewMatrix(n-1, n-1)
	v := make([]float64, n-1)
	for i := 1; i < n; i++ {
		copy(out.Row(i - 1)[:i], l.Row(i)[1:i+1])
		v[i-1] = l.At(i, 0)
	}
	Rank1Update(out, v)
	return out
}

// DropLeadingCholeskyInPlace is DropLeadingCholesky mutating l itself, with
// v as caller-provided scratch (length ≥ n-1, overwritten). The trailing
// block is compacted to the narrower stride inside the same backing array —
// every destination precedes its source — then rank-1-updated, producing a
// factor bitwise-identical to the allocating variant with zero allocations.
func DropLeadingCholeskyInPlace(l *Matrix, v []float64) {
	n := l.Rows
	if n == 0 {
		panic("linalg: drop from empty factor")
	}
	v = v[:n-1]
	for i := 1; i < n; i++ {
		v[i-1] = l.Data[i*n]
	}
	for i := 1; i < n; i++ {
		copy(l.Data[(i-1)*(n-1):(i-1)*(n-1)+i], l.Data[i*n+1:i*n+1+i])
		// Zero the above-diagonal tail to mirror a freshly allocated factor.
		tail := l.Data[(i-1)*(n-1)+i : i*(n-1)]
		for j := range tail {
			tail[j] = 0
		}
	}
	l.Rows, l.Cols = n-1, n-1
	l.Data = l.Data[:(n-1)*(n-1)]
	Rank1Update(l, v)
}

// CholInverseDiag returns the diagonal of A⁻¹ given L = chol(A), in O(n³)/3
// without materializing the inverse: column i of L⁻¹ is a truncated forward
// substitution and diag(A⁻¹)ᵢ = Σₖ (L⁻¹)ₖᵢ². This is the closed-form
// leave-one-out identity's only dense ingredient.
func CholInverseDiag(l *Matrix) []float64 {
	n := l.Rows
	diag := make([]float64, n)
	t := make([]float64, n)
	for i := 0; i < n; i++ {
		t[i] = 1 / l.At(i, i)
		s2 := t[i] * t[i]
		for j := i + 1; j < n; j++ {
			lj := l.Row(j)
			var s float64
			for k := i; k < j; k++ {
				s -= lj[k] * t[k]
			}
			t[j] = s / lj[j]
			s2 += t[j] * t[j]
		}
		diag[i] = s2
	}
	return diag
}

// Rank1Update replaces L with the Cholesky factor of L·Lᵀ + x·xᵀ in place,
// in O(n²), destroying x. L must be lower triangular with positive diagonal;
// the update direction cannot lose positive definiteness.
func Rank1Update(l *Matrix, x []float64) {
	n := l.Rows
	if len(x) != n {
		panic("linalg: rank1 length mismatch")
	}
	for k := 0; k < n; k++ {
		lk := l.Row(k)
		r := math.Sqrt(lk[k]*lk[k] + x[k]*x[k])
		c := r / lk[k]
		s := x[k] / lk[k]
		lk[k] = r
		for i := k + 1; i < n; i++ {
			li := l.Row(i)
			li[k] = (li[k] + s*x[i]) / c
			x[i] = c*x[i] - s*li[k]
		}
	}
}
