// Package apps defines the five multi-stage serverless applications of the
// paper's methodology (§7.1) — the synthetic Chain and Fan-out/Fan-in
// workflows, the ML pipeline, the video processing framework, and the
// DeathStarBench-style social network — as workflow DAGs over calibrated
// per-stage performance models. The databases and object stores the real
// deployments use (MinIO, Memcached, MongoDB) appear here as service-time
// components of each stage's model: the resource manager only ever
// observes end-to-end behaviour, which these models preserve.
package apps

import (
	"fmt"

	"aquatope/internal/faas"
	"aquatope/internal/socialgraph"
	"aquatope/internal/stats"
	"aquatope/internal/workflow"
)

// App bundles everything needed to deploy and drive one application.
type App struct {
	Name string
	DAG  *workflow.DAG
	// Specs lists the functions to register.
	Specs []faas.FunctionSpec
	// Defaults maps function name to its initial resource configuration.
	Defaults map[string]faas.ResourceConfig
	// QoS is the end-to-end latency constraint in seconds (chosen, per
	// §8.2, as the latency before saturation).
	QoS float64
	// InputFn samples a request's input size.
	InputFn func(rng *stats.RNG) float64
	// WidthFn samples per-request stage width overrides (nil = none).
	WidthFn func(rng *stats.RNG) map[string]int
}

// Register deploys the app's functions onto a cluster.
func (a *App) Register(cl *faas.Cluster) error {
	for _, spec := range a.Specs {
		cfg, ok := a.Defaults[spec.Name]
		if !ok {
			return fmt.Errorf("apps: missing default config for %q", spec.Name)
		}
		if err := cl.RegisterFunction(spec, cfg); err != nil {
			return err
		}
	}
	return nil
}

// Input returns an input size (1 when InputFn is nil).
func (a *App) Input(rng *stats.RNG) float64 {
	if a.InputFn == nil {
		return 1
	}
	return a.InputFn(rng)
}

// Widths returns per-request width overrides (nil when WidthFn is nil).
func (a *App) Widths(rng *stats.RNG) map[string]int {
	if a.WidthFn == nil {
		return nil
	}
	return a.WidthFn(rng)
}

// FunctionNames returns the app's function names in registration order.
func (a *App) FunctionNames() []string {
	out := make([]string, len(a.Specs))
	for i, s := range a.Specs {
		out[i] = s.Name
	}
	return out
}

func defaultCfg() faas.ResourceConfig {
	return faas.ResourceConfig{CPU: 1, MemoryMB: 512}
}

// synth builds a SyntheticModel with the given profile.
func synth(baseExec, cpuShare, kneeMB, coldInit, coldPenalty float64) *faas.SyntheticModel {
	return &faas.SyntheticModel{
		BaseExecSec:     baseExec,
		CPUShare:        cpuShare,
		MemKneeMB:       kneeMB,
		ColdInitSec:     coldInit,
		ColdExecPenalty: coldPenalty,
		InputExponent:   1,
		JitterStd:       0.05,
	}
}

// NewChain builds the synthetic Chain workflow with n stages of
// heterogeneous CPU/memory profiles (§7.1 "a sequence of functions executes
// in a specific order").
func NewChain(n int) *App {
	if n < 1 {
		n = 1
	}
	var specs []faas.FunctionSpec
	defaults := make(map[string]faas.ResourceConfig)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("chain-f%d", i)
		names[i] = name
		// Alternate CPU-bound and memory-bound stages.
		var m *faas.SyntheticModel
		if i%2 == 0 {
			m = synth(0.35, 0.85, 192, 1.2, 1.6)
		} else {
			m = synth(0.25, 0.4, 640, 1.8, 2.0)
		}
		specs = append(specs, faas.FunctionSpec{Name: name, Model: m, TriggerType: 0})
		defaults[name] = defaultCfg()
	}
	return &App{
		Name:     fmt.Sprintf("chain%d", n),
		DAG:      workflow.Chain(fmt.Sprintf("chain%d", n), names...),
		Specs:    specs,
		Defaults: defaults,
		QoS:      0.35 * float64(n),
	}
}

// NewFanOutFanIn builds the synthetic Fan-out/Fan-in workflow: a splitter,
// three heterogeneous parallel branches, and an aggregator.
func NewFanOutFanIn() *App {
	specs := []faas.FunctionSpec{
		{Name: "fan-src", Model: synth(0.15, 0.6, 128, 1.0, 1.5)},
		{Name: "fan-b0", Model: synth(0.5, 0.9, 192, 1.2, 1.6)},
		{Name: "fan-b1", Model: synth(0.4, 0.5, 512, 1.5, 1.8)},
		{Name: "fan-b2", Model: synth(0.3, 0.7, 320, 1.1, 1.6)},
		{Name: "fan-sink", Model: synth(0.2, 0.6, 160, 1.0, 1.5)},
	}
	defaults := make(map[string]faas.ResourceConfig)
	for _, s := range specs {
		defaults[s.Name] = defaultCfg()
	}
	return &App{
		Name:     "fanout",
		DAG:      workflow.FanOutFanIn("fanout", "fan-src", []string{"fan-b0", "fan-b1", "fan-b2"}, "fan-sink"),
		Specs:    specs,
		Defaults: defaults,
		QoS:      1.1,
	}
}

// NewMLPipeline builds the parking-lot security ML pipeline of Fig. 6:
// image upload triggers image processing and object detection, whose
// labeled output feeds vehicle and human recognition in parallel. Model
// loading dominates cold starts (large ColdInit and penalty); inference is
// CPU-heavy with high memory knees (resident models).
func NewMLPipeline() *App {
	// Stage profiles are deliberately heterogeneous (§2.2 "diverse
	// resource requirements"): image processing is I/O-bound with a tiny
	// footprint, object detection dominates CPU and memory, the two
	// recognizers sit in between. A uniform allocation must over-provision
	// three stages to satisfy the fourth.
	specs := []faas.FunctionSpec{
		{Name: "ml-imgproc", Model: synth(0.25, 0.35, 128, 1.2, 1.6), TriggerType: 1},
		{Name: "ml-objdetect", Model: synth(1.6, 0.95, 1536, 4.0, 2.5), TriggerType: 1},
		{Name: "ml-vehicle", Model: synth(0.7, 0.85, 512, 3.0, 2.2), TriggerType: 1},
		{Name: "ml-human", Model: synth(0.8, 0.6, 896, 3.2, 2.2), TriggerType: 1},
	}
	stages := []workflow.Stage{
		{Name: "imgproc", Function: "ml-imgproc"},
		{Name: "objdetect", Function: "ml-objdetect", Deps: []string{"imgproc"}},
		{Name: "vehicle", Function: "ml-vehicle", Deps: []string{"objdetect"}},
		{Name: "human", Function: "ml-human", Deps: []string{"objdetect"}},
	}
	d, err := workflow.NewDAG("mlpipeline", stages)
	if err != nil {
		panic(err)
	}
	defaults := make(map[string]faas.ResourceConfig)
	for _, s := range specs {
		defaults[s.Name] = faas.ResourceConfig{CPU: 1, MemoryMB: 1024}
	}
	return &App{
		Name:     "mlpipeline",
		DAG:      d,
		Specs:    specs,
		Defaults: defaults,
		QoS:      4.2,
		InputFn: func(rng *stats.RNG) float64 {
			// Camera frames vary mildly in complexity.
			return rng.LogNormal(0, 0.2)
		},
	}
}

// NewVideoProcessing builds the Sprocket-style video framework of Fig. 7:
// fetch/decode, scene-change detection, then per-chunk face recognition,
// box drawing and watermarking in parallel, and a final encode. MinIO
// ephemeral storage shows up as I/O-bound (low CPU share) stage time.
func NewVideoProcessing() *App {
	specs := []faas.FunctionSpec{
		{Name: "vid-decode", Model: synth(0.8, 0.6, 512, 2.0, 1.8), TriggerType: 1},
		{Name: "vid-scene", Model: synth(0.3, 0.8, 256, 1.2, 1.6), TriggerType: 1},
		{Name: "vid-face", Model: synth(0.9, 0.9, 896, 3.5, 2.4), TriggerType: 1},
		{Name: "vid-drawbox", Model: synth(0.25, 0.7, 256, 1.0, 1.5), TriggerType: 1},
		{Name: "vid-watermark", Model: synth(0.2, 0.5, 192, 1.0, 1.5), TriggerType: 1},
		{Name: "vid-encode", Model: synth(1.0, 0.85, 512, 1.8, 1.7), TriggerType: 1},
	}
	stages := []workflow.Stage{
		{Name: "decode", Function: "vid-decode"},
		{Name: "scene", Function: "vid-scene", Deps: []string{"decode"}},
		{Name: "face", Function: "vid-face", Deps: []string{"scene"}, Width: 4, InputScale: 0.25},
		{Name: "drawbox", Function: "vid-drawbox", Deps: []string{"face"}, Width: 4, InputScale: 0.25},
		{Name: "watermark", Function: "vid-watermark", Deps: []string{"drawbox"}, Width: 4, InputScale: 0.25},
		{Name: "encode", Function: "vid-encode", Deps: []string{"watermark"}},
	}
	d, err := workflow.NewDAG("videoproc", stages)
	if err != nil {
		panic(err)
	}
	defaults := make(map[string]faas.ResourceConfig)
	for _, s := range specs {
		defaults[s.Name] = faas.ResourceConfig{CPU: 1, MemoryMB: 768}
	}
	return &App{
		Name:     "videoproc",
		DAG:      d,
		Specs:    specs,
		Defaults: defaults,
		QoS:      4.2,
		InputFn: func(rng *stats.RNG) float64 {
			// Video length in relative units.
			return rng.LogNormal(0, 0.3)
		},
		WidthFn: func(rng *stats.RNG) map[string]int {
			// Chunk count varies with video length (2..8).
			w := 2 + rng.Intn(7)
			return map[string]int{"face": w, "drawbox": w, "watermark": w}
		},
	}
}

// NewSocialNetwork builds the serverless DeathStarBench social network of
// Fig. 8 driven by a socfb-Reed98-scale graph: compose-post fans into text
// and media filters, unique-id/user-mention resolution, post storage, and
// a home-timeline broadcast whose width follows the author's follower
// count. Memcached/Redis/MongoDB round trips are folded into stage service
// times (I/O-bound, low CPU share).
func NewSocialNetwork(graph *socialgraph.Graph) *App {
	if graph == nil {
		graph = socialgraph.Reed98Like(42) //aqualint:allow seedflow nil means the caller wants the documented default topology; one fixed seed keeps it identical everywhere
	}
	specs := []faas.FunctionSpec{
		{Name: "sn-compose", Model: synth(0.12, 0.5, 128, 0.8, 1.5), TriggerType: 0},
		{Name: "sn-textfilter", Model: synth(0.3, 0.85, 384, 2.2, 2.0), TriggerType: 0},
		{Name: "sn-mediafilter", Model: synth(0.5, 0.9, 640, 2.8, 2.2), TriggerType: 0},
		{Name: "sn-uniqueid", Model: synth(0.05, 0.3, 64, 0.5, 1.3), TriggerType: 0},
		{Name: "sn-usermention", Model: synth(0.15, 0.4, 128, 0.8, 1.5), TriggerType: 0},
		{Name: "sn-poststore", Model: synth(0.2, 0.3, 256, 1.0, 1.6), TriggerType: 0},
		{Name: "sn-hometimeline", Model: synth(0.08, 0.35, 128, 0.7, 1.4), TriggerType: 0},
	}
	stages := []workflow.Stage{
		{Name: "compose", Function: "sn-compose"},
		{Name: "textfilter", Function: "sn-textfilter", Deps: []string{"compose"}},
		{Name: "mediafilter", Function: "sn-mediafilter", Deps: []string{"compose"}},
		{Name: "uniqueid", Function: "sn-uniqueid", Deps: []string{"compose"}},
		{Name: "usermention", Function: "sn-usermention", Deps: []string{"textfilter"}},
		{Name: "poststore", Function: "sn-poststore", Deps: []string{"textfilter", "mediafilter", "uniqueid", "usermention"}},
		{Name: "hometimeline", Function: "sn-hometimeline", Deps: []string{"poststore"}},
	}
	d, err := workflow.NewDAG("socialnet", stages)
	if err != nil {
		panic(err)
	}
	defaults := make(map[string]faas.ResourceConfig)
	for _, s := range specs {
		defaults[s.Name] = faas.ResourceConfig{CPU: 0.5, MemoryMB: 384}
	}
	return &App{
		Name:     "socialnet",
		DAG:      d,
		Specs:    specs,
		Defaults: defaults,
		QoS:      1.4,
		InputFn: func(rng *stats.RNG) float64 {
			return rng.LogNormal(0, 0.25)
		},
		WidthFn: func(rng *stats.RNG) map[string]int {
			// Broadcast shards: one home-timeline update per 32 followers.
			user := graph.SampleUser(rng)
			w := graph.Followers(user)/32 + 1
			return map[string]int{"hometimeline": w}
		},
	}
}

// All returns the five evaluation applications (chain uses 3 stages as the
// paper's default).
func All(graphSeed int64) []*App {
	return []*App{
		NewChain(3),
		NewFanOutFanIn(),
		NewMLPipeline(),
		NewVideoProcessing(),
		NewSocialNetwork(socialgraph.Reed98Like(graphSeed)),
	}
}
