// ML pipeline example: the parking-lot security backend of the paper's
// Fig. 6 (image processing → object detection → parallel vehicle/human
// recognition) under a camera-like diurnal trace. The example contrasts
// the Aquatope resource manager's chosen configuration against the naive
// "give every function the same resources" approach, showing why per-stage
// allocation matters.
//
// Run with:
//
//	go run ./examples/mlpipeline
package main

import (
	"fmt"

	"aquatope/internal/apps"
	"aquatope/internal/faas"
	"aquatope/internal/resource"
)

func main() {
	app := apps.NewMLPipeline()
	fmt.Printf("ML pipeline: %d stages, QoS %.1fs\n", len(app.DAG.Stages()), app.QoS)
	fmt.Println("stages:", app.FunctionNames())

	space := resource.NewSpace(app)
	prof := resource.NewProfiler(app, 7) //aqualint:allow seedflow example pins its documented demo seed so the printed numbers match the README
	prof.Noise = faas.Noise{GaussianStd: 0.15, OutlierRate: 0.02, OutlierScale: 3}

	// Uniform allocations: the provider-default mindset.
	fmt.Println("\nuniform allocations (cpu/mem identical for all stages):")
	for _, level := range []struct {
		cpu float64
		mem float64
	}{{0.5, 512}, {1, 1024}, {2, 2048}, {4, 4096}} {
		cfgs := make(map[string]faas.ResourceConfig)
		for _, fn := range app.FunctionNames() {
			cfgs[fn] = faas.ResourceConfig{CPU: level.cpu, MemoryMB: level.mem}
		}
		cost, lat := prof.SampleNoiseless(cfgs, 3)
		status := "meets QoS"
		if lat > app.QoS {
			status = "VIOLATES QoS"
		}
		fmt.Printf("  cpu=%.1f mem=%4.0fMB  cost=%6.2f  latency=%5.2fs  %s\n",
			level.cpu, level.mem, cost, lat, status)
	}

	// Aquatope: customized BO with independent cost/latency surrogates.
	fmt.Println("\nAquatope resource search (36 profiled samples):")
	m := resource.NewAquatope(space, prof, app.QoS, 11)
	costs, samples := resource.Search(m, 36)
	for i := range costs {
		fmt.Printf("  after %2d samples: best feasible cost %.2f\n", samples[i], costs[i])
	}
	cfgs, _, ok := m.Best()
	if !ok {
		fmt.Println("no feasible configuration found")
		return
	}
	cost, lat := prof.SampleNoiseless(cfgs, 4)
	fmt.Printf("\nchosen configuration (true cost %.2f, latency %.2fs <= QoS %.1fs):\n", cost, lat, app.QoS)
	for _, fn := range app.FunctionNames() {
		c := cfgs[fn]
		fmt.Printf("  %-14s cpu=%.2g mem=%.0fMB\n", fn, c.CPU, c.MemoryMB)
	}
	fmt.Println("\nnote how object detection gets the large allocation while")
	fmt.Println("image processing runs on a fraction of it — the per-stage")
	fmt.Println("diversity the paper's §2.2 motivates.")
}
