// Fixtures for the seedflow analyzer. The test config points the
// constructor catalog (Rule.Sinks) at this fixture package, so NewRNG
// below plays the role of stats.NewRNG: parameter 0 is the seed, and
// every value reaching it must trace back to a clean source (a caller
// parameter standing in for configuration / runner.DeriveSeed).
package fixture

type seedRNG struct{ state int64 }

// NewRNG stands in for stats.NewRNG.
func NewRNG(seed int64) *seedRNG { return &seedRNG{state: seed} }

// --- direct constructor calls ---

func seedflowLiteral() *seedRNG {
	return NewRNG(42) // want seedflow
}

func seedflowConst() *seedRNG {
	const pinned = 1234
	return NewRNG(pinned) // want seedflow
}

func seedflowFromConfig(seed int64) *seedRNG {
	return NewRNG(seed) // ok: the seed is plumbed in by the caller
}

func seedflowMixedClean(seed int64) *seedRNG {
	return NewRNG(seed ^ 0x5eed) // ok: mixing a constant into a clean source stays clean
}

func seedflowLocalCopy() *seedRNG {
	s := int64(7)
	return NewRNG(s) // want seedflow
}

// --- helper layers: the taint fixpoint must see through plumbing ---

func buildRNG(seed int64) *seedRNG { return NewRNG(seed) }

func buildRNGSalted(seed int64) *seedRNG { return buildRNG(seed ^ 0x5a17) }

func seedflowThroughHelper() *seedRNG {
	return buildRNG(99) // want seedflow
}

func seedflowTwoLayersDeep() *seedRNG {
	return buildRNGSalted(99) // want seedflow
}

func seedflowHelperClean(cfgSeed int64) *seedRNG {
	return buildRNGSalted(cfgSeed) // ok: still the caller's seed underneath
}

// --- a helper smuggling a literal seed out through its result ---

func hardcodedSeed() int64 { return 40 + 2 }

func seedflowHelperReturn() *seedRNG {
	return NewRNG(hardcodedSeed()) // want seedflow
}

// --- allowed: demos may pin a documented seed on purpose ---

func seedflowAllowed() *seedRNG {
	return NewRNG(7) //aqualint:allow seedflow demo fixture pins the documented example seed
}
