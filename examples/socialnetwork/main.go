// Social network example: the DeathStarBench-style broadcast service of
// the paper's Fig. 8 over a socfb-Reed98-scale follower graph. Post
// broadcasts fan out to each author's followers, so stage widths — and
// resource needs — vary request to request; the example shows the graph's
// heavy tail flowing through to workflow cost and latency.
//
// Run with:
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"sort"

	"aquatope/internal/apps"
	"aquatope/internal/faas"
	"aquatope/internal/sim"
	"aquatope/internal/socialgraph"
	"aquatope/internal/stats"
	"aquatope/internal/workflow"
)

func main() {
	g := socialgraph.Reed98Like(42) //aqualint:allow seedflow example pins the documented Reed98-like topology seed
	fmt.Printf("social graph: %d users, %d follow edges (mean %.1f, max %d)\n",
		g.NumUsers(), g.NumEdges(), g.MeanDegree(), g.MaxDegree())

	app := apps.NewSocialNetwork(g)
	eng := sim.NewEngine()
	cl := faas.NewCluster(eng, faas.Config{Seed: 1})
	if err := app.Register(cl); err != nil {
		panic(err)
	}
	// Give every stage a sound configuration (the defaults deliberately
	// sit below some stages' memory knees — that is what the resource
	// manager exists to fix) and pre-warm generously: this example
	// isolates the fan-out effect.
	for _, fn := range app.FunctionNames() {
		_ = cl.SetResourceConfig(fn, faas.ResourceConfig{CPU: 2, MemoryMB: 1024})
		_ = cl.SetPrewarmTarget(fn, 40)
	}
	eng.RunUntil(60)

	ex := workflow.NewExecutor(cl)
	rng := stats.NewRNG(7) //aqualint:allow seedflow example pins its documented demo seed so the printed numbers match the README

	type post struct {
		width int
		lat   float64
		cost  float64
	}
	var posts []post
	for i := 0; i < 200; i++ {
		widths := app.Widths(rng)
		input := app.Input(rng)
		var res *workflow.Result
		if err := ex.Execute(app.DAG, input, widths, func(r workflow.Result) { res = &r }); err != nil {
			panic(err)
		}
		eng.Run()
		posts = append(posts, post{widths["hometimeline"], res.Latency(), res.Cost(1, 1)})
	}

	sort.Slice(posts, func(i, j int) bool { return posts[i].width < posts[j].width })
	fmt.Println("\nper-post cost/latency by broadcast width (timeline shards):")
	buckets := map[int][]post{}
	for _, p := range posts {
		buckets[p.width] = append(buckets[p.width], p)
	}
	var widths []int
	for w := range buckets {
		widths = append(widths, w)
	}
	sort.Ints(widths)
	for _, w := range widths {
		var lat, cost float64
		for _, p := range buckets[w] {
			lat += p.lat
			cost += p.cost
		}
		n := float64(len(buckets[w]))
		fmt.Printf("  width %2d  (%3d posts)  mean latency %.2fs  mean cost %.2f\n",
			w, len(buckets[w]), lat/n, cost/n)
	}

	var lats []float64
	for _, p := range posts {
		lats = append(lats, p.lat)
	}
	fmt.Printf("\nlatency p50=%.2fs p95=%.2fs p99=%.2fs (QoS %.1fs)\n",
		stats.Percentile(lats, 50), stats.Percentile(lats, 95), stats.Percentile(lats, 99), app.QoS)
	fmt.Println("\nhub users' posts fan out to hundreds of followers, inflating both")
	fmt.Println("tail latency and cost — the variability the paper's uncertainty-")
	fmt.Println("aware models are built to absorb.")
}
