// Package faas is a discrete-event simulator of an OpenWhisk-style
// Function-as-a-Service platform: a controller load-balances invocations
// over invokers (worker servers), each of which manages per-function
// container pools with cold starts, keep-alive timers, pre-warming, memory
// capacity, and configurable CPU/memory limits per container. It replaces
// the paper's 7-server OpenWhisk deployment while reproducing the
// observable behaviour the Aquatope scheduler depends on: cold/warm start
// dynamics (including cascading cold starts across workflow stages),
// resource-dependent execution times, provisioned memory-time accounting,
// and injected interference noise.
package faas

import (
	"fmt"

	"aquatope/internal/stats"
)

// ResourceConfig is a per-function container configuration, mirroring the
// CPU / memory / concurrency interface of major FaaS providers (§5.1).
type ResourceConfig struct {
	// CPU is the CPU limit in cores (fractions allowed).
	CPU float64
	// MemoryMB is the memory limit in megabytes.
	MemoryMB float64
	// Concurrency is the maximum number of simultaneously running
	// containers for the function (per cluster). Zero means unlimited.
	Concurrency int
}

// Validate reports whether the configuration is usable.
func (c ResourceConfig) Validate() error {
	if c.CPU <= 0 {
		return fmt.Errorf("faas: non-positive CPU limit %v", c.CPU)
	}
	if c.MemoryMB <= 0 {
		return fmt.Errorf("faas: non-positive memory limit %v", c.MemoryMB)
	}
	if c.Concurrency < 0 {
		return fmt.Errorf("faas: negative concurrency %d", c.Concurrency)
	}
	return nil
}

// PerfModel describes how a function behaves under a resource
// configuration. Implementations live in internal/apps; the simulator only
// calls these hooks.
type PerfModel interface {
	// InitTime returns the container initialization time (runtime setup,
	// dependency loading, execution-context warmup) in seconds for a cold
	// container under cfg.
	InitTime(cfg ResourceConfig, rng *stats.RNG) float64
	// ExecTime returns the execution time in seconds of one invocation
	// with the given input size under cfg. cold reports whether this is
	// the first invocation in a fresh container (no cached execution
	// context — SDK clients, models, connections — so cold runs are
	// slower even after initialization, §2.2).
	ExecTime(cfg ResourceConfig, cold bool, inputSize float64, rng *stats.RNG) float64
	// BaseMemoryMB returns the function's minimum viable memory footprint;
	// configurations below it thrash and time out.
	BaseMemoryMB() float64
}

// FunctionSpec registers a function with the cluster.
type FunctionSpec struct {
	Name  string
	Model PerfModel
	// TriggerType is an external feature for the prediction model
	// (0=HTTP, 1=object storage, 2=event hub, ...).
	TriggerType int
}

// InvocationResult reports one completed invocation.
type InvocationResult struct {
	Function   string
	SubmitTime float64
	StartTime  float64 // when execution began (after any wait/init)
	EndTime    float64
	ColdStart  bool
	WaitTime   float64 // queueing + container provisioning wait
	ExecTime   float64
	CPU        float64 // CPU limit during the run
	MemoryMB   float64
	Err        error
}

// Latency returns the invocation's end-to-end latency (submit to finish).
func (r InvocationResult) Latency() float64 { return r.EndTime - r.SubmitTime }

// CostCPUTime returns CPU-seconds consumed (CPU limit × execution time),
// the CPU component of the paper's linear cost model.
func (r InvocationResult) CostCPUTime() float64 { return r.CPU * r.ExecTime }

// CostMemTime returns GB-seconds consumed.
func (r InvocationResult) CostMemTime() float64 { return r.MemoryMB / 1024 * r.ExecTime }
