package experiments

import (
	"aquatope/internal/bayesnn"
	"aquatope/internal/experiments/runner"
	"aquatope/internal/pool"
	"aquatope/internal/stats"
	"aquatope/internal/timeseries"
	"aquatope/internal/trace"
)

// Table1Result holds the SMAPE of each prediction model across the
// ensemble (paper: Keep-Alive 24.5, ARIMA 18.6, LSTM 9.5, Aquatope 5.7).
type Table1Result struct {
	SMAPE map[string]float64 // model name -> mean SMAPE (%)
	Order []string
}

// Table renders the result like the paper's Table 1.
func (r Table1Result) Table() string {
	return formatTable(r.Rows())
}

// Rows implements Result.
func (r Table1Result) Rows() ([]string, [][]string) {
	rows := make([][]string, 0, len(r.Order))
	for _, name := range r.Order {
		rows = append(rows, []string{name, f2(r.SMAPE[name]) + "%"})
	}
	return []string{"Model", "SMAPE"}, rows
}

// Table1 measures one-step-ahead prediction accuracy of the fixed
// keep-alive (naive), ARIMA, vanilla LSTM, and Aquatope hybrid Bayesian
// models over the workload ensemble's demand series. Each ensemble member
// is one replication; a member whose test window is empty contributes
// nothing (nil map).
func Table1(s Scale) Table1Result {
	jobs := make([]runner.Job[map[string]float64], s.Ensemble)
	for i := 0; i < s.Ensemble; i++ {
		i := i
		jobs[i] = runner.Job[map[string]float64]{Cell: "member", Rep: i,
			Run: func(runner.Ctx) (map[string]float64, error) {
				tr := table1Trace(i, s.TraceMin, s.Seed)
				execSec := stats.NewRNG(s.Seed+int64(i)*17).Uniform(4, 8)
				demand := pool.DemandSeries(tr.Arrivals, execSec, s.TraceMin)
				train := demand[:s.TrainMin]
				test := demand[s.TrainMin:]
				if stats.Sum(test) == 0 {
					return nil, nil
				}
				smape := make(map[string]float64)
				// Classic predictors.
				for _, p := range []timeseries.Predictor{
					timeseries.NewNaive(),
					timeseries.NewARIMA(6, 1, 2),
					timeseries.NewHoltWinters(trace.MinutesPerDay / 4),
					timeseries.NewVanillaLSTM(16, 32, s.ModelEpochs, s.Seed+int64(i)),
				} {
					p.Fit(train)
					pred := p.Forecast(test)
					smape[p.Name()] = stats.SMAPE(test, pred)
				}
				// Aquatope hybrid model: one-step-ahead predictive means
				// over the test window, with external features.
				smape["aquatope"] = aquatopeSMAPE(s, tr, demand, i)
				return smape, nil
			}}
	}
	members := runner.MustRun(s.engine("table1"), jobs)

	res := Table1Result{
		SMAPE: make(map[string]float64),
		// The paper's Table 1 compares Keep-Alive, ARIMA, LSTM and the
		// hybrid model; Holt-Winters is included as the classic
		// exponential-smoothing family §4.2 also mentions.
		Order: []string{"keepalive", "arima", "holtwinters", "lstm", "aquatope"},
	}
	counts := make(map[string]int)
	for _, smape := range members { // index order: deterministic float sums
		for _, name := range res.Order {
			if v, ok := smape[name]; ok {
				res.SMAPE[name] += v
				counts[name]++
			}
		}
	}
	for _, name := range res.Order {
		if c := counts[name]; c > 0 {
			res.SMAPE[name] /= float64(c)
		}
	}
	return res
}

// table1Trace generates a dense scaled workload (the regime of the paper's
// §7.2, where traces are scaled so cluster utilization approaches 70% and
// the per-minute active-container series is informative): tens of
// concurrent containers with diurnal seasonality, bursts, and episodes.
func table1Trace(i, traceMin int, seed int64) *trace.Trace {
	rng := stats.NewRNG(seed + int64(i)*59)
	return trace.Synthesize(trace.GenConfig{
		DurationMin:          traceMin,
		MeanRatePerMin:       rng.Uniform(80, 200),
		Diurnal:              rng.Uniform(0.4, 0.8),
		Weekly:               rng.Uniform(0, 0.2),
		CV:                   rng.Uniform(1, 2.5),
		BurstEpisodesPerHour: rng.Uniform(0.3, 1),
		BurstDurationMin:     rng.Uniform(8, 20),
		BurstMultiplier:      rng.Uniform(1.5, 3),
		TriggerType:          rng.Intn(trace.NumTriggerTypes),
		StartMinute:          rng.Intn(trace.MinutesPerWeek),
		Seed:                 rng.Int63(),
	})
}

// aquatopeSMAPE trains the hybrid model on the training prefix and scores
// rolling one-step-ahead deterministic predictions on the test suffix.
func aquatopeSMAPE(s Scale, tr *trace.Trace, demand []float64, i int) float64 {
	cfg := bayesnn.DefaultConfig(1+trace.FeatureDim, trace.FeatureDim)
	cfg.EncoderHidden = 24
	cfg.DecoderHidden = 8
	cfg.EncoderLayers = 1
	cfg.PredHidden = []int{24, 12}
	cfg.EncoderEpochs = s.ModelEpochs
	cfg.PredEpochs = s.ModelEpochs * 3
	cfg.MCSamples = 15
	cfg.LR = 0.005
	cfg.Seed = s.Seed + int64(i)
	m := bayesnn.New(cfg)

	const window = 24
	featFn := func(idx int) []float64 { return tr.Features(idx) }
	samples := bayesnn.BuildSamples(demand[:s.TrainMin], window, cfg.Horizon, featFn, featFn)
	m.Train(samples)

	var preds, actual []float64
	for idx := s.TrainMin; idx < len(demand); idx++ {
		hist := make([][]float64, window)
		for t := 0; t < window; t++ {
			j := idx - window + t
			hist[t] = append([]float64{demand[j]}, featFn(j)...)
		}
		p := m.Predict(hist, featFn(idx)).Mean
		if p < 0 {
			p = 0
		}
		preds = append(preds, p)
		actual = append(actual, demand[idx])
	}
	return stats.SMAPE(actual, preds)
}
