package experiments

import (
	"bytes"
	"testing"

	"aquatope/internal/telemetry"
)

// captureArena runs the scheduler arena at the given worker count and
// returns the result plus the rendered table, span stream and metric
// snapshot.
func captureArena(t *testing.T, parallel int) (ArenaResult, string, []byte, []byte) {
	t.Helper()
	s := micro
	s.Parallel = parallel
	col := telemetry.NewCollector()
	reg := telemetry.NewRegistry()
	s.Collector = col
	s.Registry = reg
	r := Arena(s)
	var spans, metrics bytes.Buffer
	if err := col.WriteJSONL(&spans); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteJSON(&metrics); err != nil {
		t.Fatal(err)
	}
	return r, r.Table(), spans.Bytes(), metrics.Bytes()
}

// TestArenaParallelDeterminism: serial and parallel arena runs produce
// byte-identical tables, span dumps and metric snapshots across all four
// schedulers and all three workload regimes.
func TestArenaParallelDeterminism(t *testing.T) {
	_, table1, spans1, metrics1 := captureArena(t, 1)
	_, table8, spans8, metrics8 := captureArena(t, 8)
	if table1 != table8 {
		t.Errorf("tables diverge between -parallel 1 and 8:\n%s\nvs\n%s", table1, table8)
	}
	if !bytes.Equal(spans1, spans8) {
		t.Errorf("span streams diverge between -parallel 1 and 8 (%d vs %d bytes)", len(spans1), len(spans8))
	}
	if !bytes.Equal(metrics1, metrics8) {
		t.Errorf("metric snapshots diverge between -parallel 1 and 8")
	}
	if len(spans1) == 0 {
		t.Error("expected the arena to emit spans")
	}
}

// TestArenaDifferentiation asserts the head-to-head actually separates the
// schedulers — the arena's reason to exist:
//
//   - every cell makes decisions and completes work outside the overload
//     regime;
//   - under steady traffic the naive peak-provisioned baseline is strictly
//     more expensive than AQUATOPE at an equally clean violation rate;
//   - the model-driven brain pays measurably more per decision than the
//     static baselines (the cost of intelligence is visible, not hidden);
//   - under overload AQUATOPE keeps strictly more goodput than the static
//     caerus allocation.
func TestArenaDifferentiation(t *testing.T) {
	r, _, _, _ := captureArena(t, 0)

	for _, w := range r.Workloads {
		for _, sc := range r.Schedulers {
			k := arenaKey(w, sc)
			if r.Decisions[k] == 0 {
				t.Errorf("%s: no decisions recorded", k)
			}
			if r.DecLatMS[k] <= 0 {
				t.Errorf("%s: no modeled decision latency", k)
			}
			if w != "overload" && r.Goodput[k] < 0.9 {
				t.Errorf("%s: goodput %.1f%% — cell degenerate outside overload", k, r.Goodput[k]*100)
			}
			if r.CostPerWf[k] <= 0 {
				t.Errorf("%s: non-positive cost per workflow", k)
			}
		}
	}

	// The differentiation invariant: peak provisioning buys nothing under
	// steady traffic — naive's cost must sit strictly above AQUATOPE's
	// while both hold an equally clean violation rate.
	an, aq := arenaKey("steady", "naive"), arenaKey("steady", "aquatope")
	if r.CostPerWf[an] <= r.CostPerWf[aq] {
		t.Errorf("steady: naive cost %.2f not strictly above aquatope %.2f",
			r.CostPerWf[an], r.CostPerWf[aq])
	}
	if r.Violation[an] > 0.1 || r.Violation[aq] > 0.1 {
		t.Errorf("steady: violation rates not comparably clean (naive %.1f%%, aquatope %.1f%%)",
			r.Violation[an]*100, r.Violation[aq]*100)
	}

	// Decision effort must reflect the machinery: the BNN+BO brain pays
	// more modeled latency per decision than the static baselines.
	for _, sc := range []string{"caerus", "naive"} {
		k := arenaKey("steady", sc)
		if r.DecLatMS[aq] <= r.DecLatMS[k] {
			t.Errorf("steady: aquatope decision latency %.3fms not above %s's %.3fms",
				r.DecLatMS[aq], sc, r.DecLatMS[k])
		}
	}

	// Under overload the learned scheduler must keep strictly more goodput
	// than the static caerus allocation.
	oa, oc := arenaKey("overload", "aquatope"), arenaKey("overload", "caerus")
	if r.Goodput[oa] <= r.Goodput[oc] {
		t.Errorf("overload: aquatope goodput %.1f%% not strictly above caerus %.1f%%",
			r.Goodput[oa]*100, r.Goodput[oc]*100)
	}
}
