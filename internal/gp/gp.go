package gp

import (
	"errors"
	"math"

	"aquatope/internal/linalg"
	"aquatope/internal/stats"
)

// GP is an exact Gaussian-process regressor with fixed (known) observation
// noise, matching the paper's "fixed-noise GP models with Matérn(5/2)".
// Targets are standardized internally; Posterior outputs are mapped back to
// the original scale.
type GP struct {
	Kernel Kernel
	// Noise is the observation noise variance in standardized target
	// units, added to the kernel diagonal.
	Noise float64

	x     [][]float64
	y     []float64 // standardized targets
	yMean float64
	yStd  float64

	chol  *linalg.Matrix
	alpha []float64
}

// New returns a GP with the given kernel and fixed noise variance.
func New(k Kernel, noise float64) *GP {
	if noise < 1e-9 {
		noise = 1e-9
	}
	return &GP{Kernel: k, Noise: noise, yStd: 1}
}

// Len returns the number of fitted observations.
func (g *GP) Len() int { return len(g.x) }

// Fit conditions the GP on (X, y). It refits the target standardization and
// recomputes the Cholesky factor. An error is returned if the kernel matrix
// cannot be factored even with jitter.
func (g *GP) Fit(X [][]float64, y []float64) error {
	if len(X) != len(y) {
		return errors.New("gp: X and y length mismatch")
	}
	if len(X) == 0 {
		g.x, g.y = nil, nil
		g.chol, g.alpha = nil, nil
		return nil
	}
	g.x = X
	scaled, mean, std := stats.Standardize(y)
	g.y, g.yMean, g.yStd = scaled, mean, std
	return g.refactor()
}

func (g *GP) refactor() error {
	n := len(g.x)
	K := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := g.Kernel.Eval(g.x[i], g.x[j])
			K.Set(i, j, v)
			K.Set(j, i, v)
		}
		K.Set(i, i, K.At(i, i)+g.Noise)
	}
	l, err := linalg.Cholesky(K)
	if err != nil {
		return err
	}
	g.chol = l
	g.alpha = linalg.CholSolve(l, g.y)
	return nil
}

// Posterior returns the predictive mean and variance (of the latent
// function, excluding observation noise) at x, in original target units.
func (g *GP) Posterior(x []float64) (mean, variance float64) {
	if len(g.x) == 0 {
		return g.yMean, g.yStd * g.yStd * g.Kernel.Eval(x, x)
	}
	ks := make([]float64, len(g.x))
	for i, xi := range g.x {
		ks[i] = g.Kernel.Eval(x, xi)
	}
	mu := linalg.Dot(ks, g.alpha)
	v := linalg.SolveLower(g.chol, ks)
	va := g.Kernel.Eval(x, x) - linalg.Dot(v, v)
	if va < 0 {
		va = 0
	}
	return mu*g.yStd + g.yMean, va * g.yStd * g.yStd
}

// PosteriorBatch returns the joint predictive mean vector and covariance
// matrix over a batch of points, in original units. The joint posterior is
// what lets the acquisition integrate over correlated fantasy outcomes.
func (g *GP) PosteriorBatch(xs [][]float64) (mean []float64, cov *linalg.Matrix) {
	q := len(xs)
	mean = make([]float64, q)
	cov = linalg.NewMatrix(q, q)
	if len(g.x) == 0 {
		for i := range xs {
			mean[i] = g.yMean
			for j := range xs {
				cov.Set(i, j, g.yStd*g.yStd*g.Kernel.Eval(xs[i], xs[j]))
			}
		}
		return mean, cov
	}
	n := len(g.x)
	// vMat[i] = L^{-1} k(X, xs[i])
	vMat := make([][]float64, q)
	for i, x := range xs {
		ks := make([]float64, n)
		for r, xr := range g.x {
			ks[r] = g.Kernel.Eval(x, xr)
		}
		mean[i] = linalg.Dot(ks, g.alpha)*g.yStd + g.yMean
		vMat[i] = linalg.SolveLower(g.chol, ks)
	}
	for i := 0; i < q; i++ {
		for j := i; j < q; j++ {
			c := g.Kernel.Eval(xs[i], xs[j]) - linalg.Dot(vMat[i], vMat[j])
			c *= g.yStd * g.yStd
			if i == j && c < 0 {
				c = 0
			}
			cov.Set(i, j, c)
			cov.Set(j, i, c)
		}
	}
	return mean, cov
}

// SampleJoint draws nSamples correlated function values at the batch points
// using the joint posterior and externally supplied standard-normal draws
// (e.g. from a Sobol sequence): draws[s] must have length len(xs).
func (g *GP) SampleJoint(xs [][]float64, draws [][]float64) [][]float64 {
	mean, cov := g.PosteriorBatch(xs)
	q := len(xs)
	l, err := linalg.Cholesky(cov)
	if err != nil {
		// Degenerate covariance: fall back to independent marginals.
		l = linalg.NewMatrix(q, q)
		for i := 0; i < q; i++ {
			l.Set(i, i, math.Sqrt(math.Max(cov.At(i, i), 0)))
		}
	}
	out := make([][]float64, len(draws))
	for s, z := range draws {
		v := make([]float64, q)
		for i := 0; i < q; i++ {
			var acc float64
			for j := 0; j <= i; j++ {
				acc += l.At(i, j) * z[j]
			}
			v[i] = mean[i] + acc
		}
		out[s] = v
	}
	return out
}

// LogMarginalLikelihood returns the log evidence of the fitted data under
// the current hyperparameters (standardized scale).
func (g *GP) LogMarginalLikelihood() float64 {
	if g.chol == nil {
		return math.Inf(-1)
	}
	n := float64(len(g.y))
	return -0.5*linalg.Dot(g.y, g.alpha) - 0.5*linalg.LogDetFromChol(g.chol) - 0.5*n*math.Log(2*math.Pi)
}

// FitHyperparameters maximizes the log marginal likelihood over the kernel's
// log-hyperparameters with multi-start coordinate search (robust and
// derivative-free; the kernel matrices here are small, tens of points). The
// GP must already be fitted; the best hyperparameters are installed and the
// factorization refreshed.
func (g *GP) FitHyperparameters(rng *stats.RNG, restarts int) {
	if len(g.x) == 0 {
		return
	}
	dim := len(g.Kernel.Hyperparameters())
	evalAt := func(h []float64) float64 {
		g.Kernel.SetHyperparameters(h)
		if err := g.refactor(); err != nil {
			return math.Inf(-1)
		}
		return g.LogMarginalLikelihood()
	}
	best := append([]float64(nil), g.Kernel.Hyperparameters()...)
	bestLL := evalAt(best)

	for r := 0; r < restarts; r++ {
		var h []float64
		if r == 0 {
			h = append([]float64(nil), best...)
		} else {
			h = make([]float64, dim)
			for i := range h {
				h[i] = rng.Uniform(-2, 2) // lengthscales/variance in e^±2
			}
		}
		ll := evalAt(h)
		step := 0.5
		for pass := 0; pass < 12; pass++ {
			improved := false
			for d := 0; d < dim; d++ {
				for _, dir := range []float64{+1, -1} {
					trial := append([]float64(nil), h...)
					trial[d] += dir * step
					if trial[d] < -5 || trial[d] > 5 {
						continue
					}
					if tll := evalAt(trial); tll > ll {
						h, ll = trial, tll
						improved = true
					}
				}
			}
			if !improved {
				step /= 2
				if step < 0.02 {
					break
				}
			}
		}
		if ll > bestLL {
			bestLL = ll
			best = append([]float64(nil), h...)
		}
	}
	g.Kernel.SetHyperparameters(best)
	_ = g.refactor()
}

// LeaveOneOut returns the posterior mean and variance at x[i] of a GP
// trained on all observations except index i — the diagnostic model the
// paper uses for anomaly detection. The kernel hyperparameters are reused.
func (g *GP) LeaveOneOut(i int) (mean, variance float64, err error) {
	if i < 0 || i >= len(g.x) {
		return 0, 0, errors.New("gp: leave-one-out index out of range")
	}
	X := make([][]float64, 0, len(g.x)-1)
	y := make([]float64, 0, len(g.x)-1)
	for j := range g.x {
		if j == i {
			continue
		}
		X = append(X, g.x[j])
		y = append(y, g.y[j]*g.yStd+g.yMean)
	}
	diag := New(g.Kernel, g.Noise)
	if err := diag.Fit(X, y); err != nil {
		return 0, 0, err
	}
	m, v := diag.Posterior(g.x[i])
	return m, v, nil
}

// TrainingPoint returns observation i in original units.
func (g *GP) TrainingPoint(i int) ([]float64, float64) {
	return g.x[i], g.y[i]*g.yStd + g.yMean
}
