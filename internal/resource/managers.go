package resource

import (
	"math"

	"aquatope/internal/bo"
	"aquatope/internal/faas"
	"aquatope/internal/stats"
)

// Manager searches an app's configuration space for the cheapest
// QoS-feasible configuration under a profiling budget.
type Manager interface {
	Name() string
	// Step proposes, profiles and ingests one batch; it returns how many
	// samples were consumed.
	Step() int
	// Best returns the cheapest QoS-feasible configuration observed and
	// its cost; ok is false if none was found yet.
	Best() (cfg map[string]faas.ResourceConfig, cost float64, ok bool)
	// Samples returns the number of profiled configurations so far.
	Samples() int
}

// Search runs a manager until the sample budget is exhausted and returns
// the trajectory of the running best-feasible cost after each step
// (aligned with cumulative sample counts) — the Fig. 12 curves. The
// running minimum is reported because anomaly pruning may retroactively
// invalidate an earlier incumbent inside the optimizer.
func Search(m Manager, budget int) (costs []float64, samples []int) {
	best := math.Inf(1)
	for m.Samples() < budget {
		n := m.Step()
		if n == 0 {
			break
		}
		if _, c, ok := m.Best(); ok && c < best {
			best = c
		}
		costs = append(costs, best)
		samples = append(samples, m.Samples())
	}
	return costs, samples
}

// ---------------------------------------------------------------------------

// BOManager adapts any bo.Optimizer (the Aquatope engine, CLITE, or random
// search) to a workflow's configuration space.
type BOManager struct {
	Label    string
	Space    *Space
	Profiler *Profiler
	Opt      bo.Optimizer
	samples  int
}

// NewBO returns a manager driving the Aquatope engine with explicit
// options; Dim is derived from the space and need not be set. This is the
// declarative entry point for arena configs that tune the engine's window,
// refit schedule or cache toggles.
func NewBO(label string, space *Space, prof *Profiler, opts bo.Options) *BOManager {
	opts.Dim = space.Dim()
	return &BOManager{Label: label, Space: space, Profiler: prof, Opt: bo.New(opts)}
}

// NewAquatope returns the paper's customized-BO resource manager.
func NewAquatope(space *Space, prof *Profiler, qos float64, seed int64) *BOManager {
	return NewBO("aquatope", space, prof, bo.Options{QoS: qos, Seed: seed})
}

// NewAquaLite returns the noise-unaware ablation: plain EI, no anomaly
// pruning (Fig. 15's AquaLite).
func NewAquaLite(space *Space, prof *Profiler, qos float64, seed int64) *BOManager {
	return NewBO("aqualite", space, prof, bo.Options{QoS: qos, Seed: seed,
		Acquisition: bo.EI, DisableAnomalyDetection: true})
}

// NewCLITE returns the CLITE baseline manager.
func NewCLITE(space *Space, prof *Profiler, qos float64, seed int64) *BOManager {
	return &BOManager{Label: "clite", Space: space, Profiler: prof,
		Opt: bo.NewCLITE(space.Dim(), qos, seed)}
}

// NewRandom returns the random-search baseline manager.
func NewRandom(space *Space, prof *Profiler, qos float64, seed int64) *BOManager {
	return &BOManager{Label: "random", Space: space, Profiler: prof,
		Opt: bo.NewRandomSearch(space.Dim(), qos, 3, seed)}
}

// Name implements Manager.
func (m *BOManager) Name() string { return m.Label }

// Samples implements Manager.
func (m *BOManager) Samples() int { return m.samples }

// Step implements Manager.
func (m *BOManager) Step() int {
	batch := m.Opt.Suggest()
	obs := make([]bo.Observation, 0, len(batch))
	for _, x := range batch {
		cfgs, err := m.Space.Decode(x)
		if err != nil {
			panic(err)
		}
		cost, lat := m.Profiler.Sample(cfgs)
		obs = append(obs, bo.Observation{X: x, Cost: cost, Latency: lat})
	}
	m.Opt.Observe(obs)
	m.samples += len(obs)
	return len(obs)
}

// Best implements Manager.
func (m *BOManager) Best() (map[string]faas.ResourceConfig, float64, bool) {
	x, cost, ok := m.Opt.BestFeasible()
	if !ok {
		return nil, 0, false
	}
	cfgs, err := m.Space.Decode(x)
	if err != nil {
		return nil, 0, false
	}
	return cfgs, cost, true
}

// Engine exposes the underlying Aquatope engine when present (for
// retraining statistics), or nil.
func (m *BOManager) Engine() *bo.Engine {
	e, _ := m.Opt.(*bo.Engine)
	return e
}

// ---------------------------------------------------------------------------

// AutoscaleManager reproduces the reactive autoscaling baseline (§7.4): it
// scales every function together — up when QoS is violated, down when there
// is slack — without learning from history, so it overshoots and inflates
// cost (§8.2).
type AutoscaleManager struct {
	Space    *Space
	Profiler *Profiler
	QoS      float64

	level   int // index into the uniform scaling ladder
	maxLvl  int
	rng     *stats.RNG
	samples int
	best    map[string]faas.ResourceConfig
	bestC   float64
	haveB   bool
}

// NewAutoscale returns the autoscaling resource-manager baseline.
func NewAutoscale(space *Space, prof *Profiler, qos float64, seed int64) *AutoscaleManager {
	n := len(space.CPUOptions)
	if len(space.MemOptions) < n {
		n = len(space.MemOptions)
	}
	return &AutoscaleManager{Space: space, Profiler: prof, QoS: qos,
		level: 0, maxLvl: n - 1, rng: stats.NewRNG(seed)}
}

// Name implements Manager.
func (m *AutoscaleManager) Name() string { return "autoscale" }

// Samples implements Manager.
func (m *AutoscaleManager) Samples() int { return m.samples }

// uniform builds the configuration at the current ladder level: every
// function gets the level-th CPU and memory option.
func (m *AutoscaleManager) uniform(level int) map[string]faas.ResourceConfig {
	cfgs := make(map[string]faas.ResourceConfig, len(m.Space.Functions))
	ci := level
	if ci >= len(m.Space.CPUOptions) {
		ci = len(m.Space.CPUOptions) - 1
	}
	mi := level
	if mi >= len(m.Space.MemOptions) {
		mi = len(m.Space.MemOptions) - 1
	}
	for _, fn := range m.Space.Functions {
		cfgs[fn] = faas.ResourceConfig{
			CPU:      m.Space.CPUOptions[ci],
			MemoryMB: m.Space.MemOptions[mi],
		}
	}
	return cfgs
}

// Step implements Manager.
func (m *AutoscaleManager) Step() int {
	cfgs := m.uniform(m.level)
	cost, lat := m.Profiler.Sample(cfgs)
	m.samples++
	if lat > m.QoS {
		if m.level < m.maxLvl {
			m.level++ // scale everything up
		}
	} else {
		if !m.haveB || cost < m.bestC {
			m.best, m.bestC, m.haveB = cfgs, cost, true
		}
		// Occasional downscale probe when there is latency slack.
		if lat < 0.7*m.QoS && m.level > 0 && m.rng.Bernoulli(0.5) {
			m.level--
		}
	}
	return 1
}

// Best implements Manager.
func (m *AutoscaleManager) Best() (map[string]faas.ResourceConfig, float64, bool) {
	return m.best, m.bestC, m.haveB
}
