package loadgen

import (
	"math"
	"sort"
	"testing"

	"aquatope/internal/apps"
	"aquatope/internal/faas"
	"aquatope/internal/sim"
	"aquatope/internal/trace"
	"aquatope/internal/workflow"
)

func TestDriverSchedulesAllArrivals(t *testing.T) {
	app := apps.NewChain(2)
	eng := sim.NewEngine()
	cl := faas.NewCluster(eng, faas.Config{Seed: 1})
	if err := app.Register(cl); err != nil {
		t.Fatal(err)
	}
	tr := trace.Synthesize(trace.GenConfig{DurationMin: 60, MeanRatePerMin: 3, CV: 1, Seed: 2})
	done := 0
	d := &Driver{
		Executor: workflow.NewExecutor(cl),
		App:      app,
		Trace:    tr,
		OnResult: func(workflow.Result) { done++ },
		Seed:     3,
	}
	n := d.Start()
	if n != len(tr.Arrivals) || d.Scheduled() != n {
		t.Fatalf("scheduled %d, want %d", n, len(tr.Arrivals))
	}
	eng.Run()
	if done != n {
		t.Fatalf("completed %d of %d workflows", done, n)
	}
}

func TestOpenLoopPoissonRespectsCounts(t *testing.T) {
	counts := []float64{0, 30, 0, 60, 0}
	tr := OpenLoopPoisson(counts, 4)
	if tr.DurationMin != 5 {
		t.Fatalf("duration = %d", tr.DurationMin)
	}
	if !sort.Float64sAreSorted(tr.Arrivals) {
		t.Fatal("arrivals unsorted")
	}
	got := tr.Counts()
	// Poisson sampling: minute totals vary but zero minutes must be zero
	// and busy minutes close to the requested count.
	if got[0] != 0 || got[2] != 0 || got[4] != 0 {
		t.Fatalf("quiet minutes got traffic: %v", got)
	}
	if math.Abs(got[1]-30) > 18 || math.Abs(got[3]-60) > 25 {
		t.Fatalf("busy minutes off: %v", got)
	}
}

func TestScaleToUtilization(t *testing.T) {
	tr := trace.Synthesize(trace.GenConfig{DurationMin: 60, MeanRatePerMin: 600, CV: 1, Seed: 5})
	// 10 req/s × 2s × 1 cpu = 20 cores demanded; cap at 70% of 10 cores.
	scaled := ScaleToUtilization(tr, 2, 1, 10, 0.7, 6)
	if len(scaled.Arrivals) >= len(tr.Arrivals) {
		t.Fatal("overloaded trace should be thinned")
	}
	ratePerSec := float64(len(scaled.Arrivals)) / (60 * 60)
	if demand := ratePerSec * 2; demand > 7.5 {
		t.Fatalf("scaled demand %.1f cores exceeds 70%% of 10", demand)
	}
	// Under-capacity traces pass through untouched.
	light := trace.Synthesize(trace.GenConfig{DurationMin: 60, MeanRatePerMin: 6, CV: 1, Seed: 7})
	if out := ScaleToUtilization(light, 2, 1, 100, 0.7, 8); len(out.Arrivals) != len(light.Arrivals) {
		t.Fatal("light trace should be unchanged")
	}
	// Degenerate inputs are returned unchanged.
	if out := ScaleToUtilization(light, 2, 1, 0, 0.7, 9); out != light {
		t.Fatal("zero capacity should pass through")
	}
}
