// Package bo implements the paper's customized Bayesian optimization
// (§5.3) for per-function resource allocation, together with the baselines
// it is evaluated against.
//
// The Aquatope engine differs from conventional BO in the three ways the
// paper describes:
//
//  1. Noise awareness: fixed-noise Matérn-5/2 GP surrogates and a noisy
//     expected-improvement acquisition integrated with quasi-Monte-Carlo
//     samples (Letham et al. 2019), so the incumbent best is never assumed
//     to be observed noiselessly. Irregular (non-Gaussian) outliers are
//     pruned by leave-one-out diagnostic GPs.
//  2. Proactive QoS handling: an independent latency GP predicts end-to-end
//     performance, and candidates are filtered and weighted by their
//     probability of satisfying the QoS constraint (Gardner et al. 2014)
//     rather than penalized after the fact.
//  3. Batch sampling: a greedy q-point selection with per-sample fantasy
//     bookkeeping selects BatchSize candidates per iteration.
//
// The surrogates are maintained incrementally: each Observe extends the
// GPs' sliding windows through rank-1 Cholesky updates (O(n²) per step),
// full refactorizations happen only on the refit-every-k hyperparameter
// schedule and at window construction, and the anomaly screen's
// leave-one-out residuals come from the closed-form identities on the
// existing factor instead of n refitted diagnostic models.
//
// All optimization happens over the normalized unit cube [0,1]^Dim; callers
// map coordinates to concrete CPU/memory/concurrency settings.
package bo

import (
	"math"

	"aquatope/internal/gp"
	"aquatope/internal/qmc"
	"aquatope/internal/stats"
	"aquatope/internal/telemetry"
)

// Observation is one profiled resource configuration: the normalized
// configuration, its measured execution cost and end-to-end latency.
type Observation struct {
	X       []float64
	Cost    float64
	Latency float64
}

// Acquisition selects the acquisition function family.
type Acquisition int

const (
	// NEI is constrained noisy expected improvement with QMC integration
	// (the Aquatope default).
	NEI Acquisition = iota
	// EI is classic expected improvement assuming noiseless observations
	// (used by the AquaLite ablation).
	EI
)

// KernelKind selects the GP covariance family for both surrogates.
type KernelKind int

const (
	// KernelMatern52 is the paper's Matérn-5/2 kernel (default).
	KernelMatern52 KernelKind = iota
	// KernelRBF is the squared-exponential ablation kernel.
	KernelRBF
)

func (k KernelKind) build(dim int) gp.Kernel {
	if k == KernelRBF {
		return gp.NewRBF(dim)
	}
	return gp.NewMatern52(dim)
}

// Options is the single construction surface of the engine: model choice,
// acquisition, batch shape, sliding window, refit schedule and cache
// toggles. Zero values are replaced by the paper's defaults in New.
type Options struct {
	Dim int     // dimensionality of the normalized config space
	QoS float64 // end-to-end latency constraint

	// Kernel selects the surrogate covariance family (default Matérn-5/2).
	Kernel KernelKind
	// Acquisition selects NEI (default) or plain EI.
	Acquisition Acquisition

	BatchSize int // candidates sampled per iteration (paper: 3)
	Bootstrap int // random configs before the model kicks in
	// FantasySamples is the QMC sample count for the acquisition integral
	// (per-sample fantasy incumbents).
	FantasySamples int
	// CandidatePool is the number of Sobol candidate points scored per
	// suggestion round.
	CandidatePool int
	// FeasibilityFloor prunes candidates whose probability of meeting QoS
	// is below this value, provided at least one candidate passes.
	FeasibilityFloor float64
	// AnomalyZ is the leave-one-out z-score beyond which an observation is
	// labeled an anomaly (paper: 95% interval, z = 1.96).
	AnomalyZ float64
	// NoiseVar is the fixed observation-noise variance (standardized
	// units) of the GP surrogates.
	NoiseVar float64
	// DisableAnomalyDetection turns off outlier pruning (AquaLite).
	DisableAnomalyDetection bool

	// Window keeps only the most recent N observations (0 = keep all);
	// older points are evicted from the surrogates by rank-1 downdates.
	Window int
	// ChangeBurst: if this many consecutive recent observations are all
	// anomalous, the engine declares a behaviour change and drops history
	// older than the burst (incremental retraining, §5.3).
	ChangeBurst int
	// RefitEveryK refits GP hyperparameters (a full refactorization) every
	// K window updates — i.e. every K Observe batches. 0 picks the default
	// ceil(5/BatchSize), reproducing the historical every-5-observations
	// cadence.
	RefitEveryK int

	// DisableKernelCache turns off train-kernel matrix reuse in the NEI
	// incumbent path (kernel values are then re-evaluated per Suggest).
	DisableKernelCache bool
	// DisableIncremental forces a full surrogate rebuild on every Observe
	// (the pre-incremental behaviour, kept for ablation and debugging).
	DisableIncremental bool

	Seed int64
}

func (o Options) withDefaults() Options {
	if o.BatchSize <= 0 {
		o.BatchSize = 3
	}
	if o.Bootstrap <= 0 {
		o.Bootstrap = 5
	}
	if o.FantasySamples <= 0 {
		o.FantasySamples = 128
	}
	if o.CandidatePool <= 0 {
		o.CandidatePool = 128
	}
	if o.FeasibilityFloor <= 0 {
		o.FeasibilityFloor = 0.25
	}
	if o.AnomalyZ <= 0 {
		// Wider than the paper's 95% interval: the screen rejects points
		// before they enter the fit, so a tight gate would also discard
		// genuinely surprising (good) discoveries. Interference outliers
		// in FaaS are multiples of the signal and still exceed this.
		o.AnomalyZ = 3.5
	}
	if o.NoiseVar <= 0 {
		o.NoiseVar = 0.01
	}
	if o.ChangeBurst <= 0 {
		o.ChangeBurst = 6
	}
	if o.RefitEveryK <= 0 {
		o.RefitEveryK = (5 + o.BatchSize - 1) / o.BatchSize
	}
	return o
}

// Engine is the customized BO optimizer.
type Engine struct {
	cfg Options
	rng *stats.RNG

	obs       []Observation
	anomalous []bool

	costGP *gp.GP
	latGP  *gp.GP
	fitted bool
	// synced reports that the GPs' windows mirror the engine's clean
	// observation set, so incremental updates are valid.
	synced bool
	// Robust scales of the leave-one-out residuals, refreshed on refit.
	costResidScale float64
	latResidScale  float64

	changeEvents int
	sinceRefit   int // window updates since the last hyperparameter refit

	tracer  telemetry.Tracer
	iter    int     // Observe calls, the telemetry iteration index
	lastAcq float64 // acquisition value of the last batch's first slot
}

// New returns an engine for the given options.
func New(opts Options) *Engine {
	opts = opts.withDefaults()
	if opts.Dim <= 0 {
		panic("bo: Dim must be positive")
	}
	e := &Engine{cfg: opts, rng: stats.NewRNG(opts.Seed), tracer: telemetry.Nop{}}
	e.costGP = gp.New(opts.Kernel.build(opts.Dim), opts.NoiseVar)
	e.latGP = gp.New(opts.Kernel.build(opts.Dim), opts.NoiseVar)
	e.costGP.SetFullRefit(opts.DisableIncremental)
	e.latGP.SetFullRefit(opts.DisableIncremental)
	return e
}

// SetTracer installs the telemetry tracer receiving one bo.iteration point
// per Observe call. A nil tracer restores the no-op default.
func (e *Engine) SetTracer(t telemetry.Tracer) { e.tracer = telemetry.OrNop(t) }

// Options returns the engine options (after defaulting).
func (e *Engine) Options() Options { return e.cfg }

// NumObservations returns the number of recorded observations.
func (e *Engine) NumObservations() int { return len(e.obs) }

// NumAnomalies returns how many observations are currently flagged.
func (e *Engine) NumAnomalies() int {
	n := 0
	for _, a := range e.anomalous {
		if a {
			n++
		}
	}
	return n
}

// ChangeEvents returns how many behaviour-change resets have occurred.
func (e *Engine) ChangeEvents() int { return e.changeEvents }

// Suggest returns the next batch of candidate configurations to profile.
// During bootstrap it returns quasi-random points; afterwards it maximizes
// the configured acquisition greedily per batch slot.
func (e *Engine) Suggest() [][]float64 {
	q := e.cfg.BatchSize
	if e.countClean() < e.cfg.Bootstrap || !e.fitted {
		batch := e.randomBatch(q)
		e.traceDecision(batch, true, 0)
		return batch
	}
	cands := e.candidatePool()
	batch := e.selectBatch(cands, q)
	e.traceDecision(batch, false, len(cands))
	return batch
}

// traceDecision emits one bo.decision explain point for a suggested batch:
// the posterior view behind the first (acquisition-maximizing) pick — cost
// and latency mean with their uncertainty bands, feasibility probability —
// plus the batch's provenance (bootstrap vs model-driven, candidate-pool
// size after QoS pruning) and the engine's update schedule (window size,
// hyperparameter refit cadence) so audits can verify the incremental
// engine's behaviour. Posterior reads are pure (no RNG draws), so tracing
// never perturbs a same-seed run; the point's time coordinate is the
// iteration index, matching bo.iteration.
func (e *Engine) traceDecision(batch [][]float64, bootstrap bool, candidates int) {
	if !e.tracer.Enabled() || len(batch) == 0 {
		return
	}
	f := telemetry.Fields{
		"batch":        float64(len(batch)),
		"candidates":   float64(candidates),
		"observations": float64(len(e.obs)),
		"qos":          e.cfg.QoS,
		"window":       float64(e.cfg.Window),
		"refit_every":  float64(e.cfg.RefitEveryK),
	}
	if bootstrap {
		f["bootstrap"] = 1
	} else {
		f["acquisition"] = e.lastAcq
		cm, cv := e.costGP.Posterior(batch[0])
		lm, lv := e.latGP.Posterior(batch[0])
		f["cost_mean"] = cm
		f["cost_sd"] = math.Sqrt(cv + 1e-12)
		f["lat_mean"] = lm
		f["lat_sd"] = math.Sqrt(lv + 1e-12)
		f["feasibility"] = e.FeasibilityProbability(batch[0])
	}
	e.tracer.Point(telemetry.KindBODecision, "bo", 0, float64(e.iter), f)
}

func (e *Engine) randomBatch(q int) [][]float64 {
	out := make([][]float64, q)
	for i := range out {
		x := make([]float64, e.cfg.Dim)
		for d := range x {
			x[d] = e.rng.Float64()
		}
		out[i] = x
	}
	// Anchor the first bootstrap batch with the extreme corners: the
	// most generous configuration calibrates the feasible side of the
	// latency surrogate, the most frugal one the infeasible side.
	if len(e.obs) == 0 && q >= 2 {
		hi := make([]float64, e.cfg.Dim)
		lo := make([]float64, e.cfg.Dim)
		for d := range hi {
			hi[d] = 0.97
			lo[d] = 0.03
		}
		out[0] = hi
		out[1] = lo
	}
	return out
}

// candidate carries one pool point together with its latency posterior —
// computed once and reused by the QoS filter, the acquisition and the
// fantasy sampling (the cross-kernel work per candidate happens exactly
// once per Suggest).
type candidate struct {
	x        []float64
	lm, lsd  float64
	cm, csd  float64
	feasible float64
}

// candidatePool generates scrambled Sobol candidates plus local
// perturbations of the incumbent (coordinate moves around the best
// feasible point, which matter increasingly in higher dimensions), and
// applies the proactive QoS filter: candidates unlikely to meet the
// constraint are pruned before acquisition scoring (unless that would
// empty the pool). Each surviving candidate keeps its latency posterior
// for reuse in selectBatch.
func (e *Engine) candidatePool() []candidate {
	n := e.cfg.CandidatePool
	if byDim := 32 * e.cfg.Dim; byDim > n {
		n = byDim
	}
	if n > 512 {
		n = 512
	}
	sob := qmc.NewScrambledSobol(e.cfg.Dim, e.rng.Split())
	raw := sob.Sample(n)
	if bestX, _, ok := e.BestFeasible(); ok {
		for d := 0; d < e.cfg.Dim; d++ {
			for _, dir := range []float64{-1, 1} {
				c := append([]float64(nil), bestX...)
				c[d] += dir * e.rng.Uniform(0.05, 0.25)
				if c[d] >= 0 && c[d] < 1 {
					raw = append(raw, c)
				}
			}
		}
	}
	all := make([]candidate, len(raw))
	kept := make([]candidate, 0, len(raw))
	for i, x := range raw {
		lm, lv := e.latGP.Posterior(x)
		lsd := math.Sqrt(lv + 1e-12)
		feas := stats.NormalCDF((e.cfg.QoS - lm) / lsd)
		all[i] = candidate{x: x, lm: lm, lsd: lsd, feasible: feas}
		if feas >= e.cfg.FeasibilityFloor {
			kept = append(kept, all[i])
		}
	}
	if len(kept) == 0 {
		return all
	}
	return kept
}

// FeasibilityProbability returns P(latency(x) <= QoS) under the latency GP.
func (e *Engine) FeasibilityProbability(x []float64) float64 {
	if !e.fitted {
		return 1
	}
	m, v := e.latGP.Posterior(x)
	sd := math.Sqrt(v + 1e-12)
	return stats.NormalCDF((e.cfg.QoS - m) / sd)
}

// CostPosterior exposes the cost surrogate's posterior for inspection.
func (e *Engine) CostPosterior(x []float64) (mean, variance float64) {
	return e.costGP.Posterior(x)
}

// countClean returns the number of observations not flagged as anomalies.
func (e *Engine) countClean() int {
	n := 0
	for _, a := range e.anomalous {
		if !a {
			n++
		}
	}
	return n
}

// cleanObservations returns the observations not flagged as anomalies.
func (e *Engine) cleanObservations() []Observation {
	out := make([]Observation, 0, len(e.obs))
	for i, o := range e.obs {
		if !e.anomalous[i] {
			out = append(out, o)
		}
	}
	return out
}

// selectBatch greedily picks q candidates maximizing the acquisition with
// per-sample fantasy bookkeeping for pending selections. The fantasy
// evaluation is batched: every candidate's QMC cost/feasibility samples are
// materialized in one pass over the shared draws, so the greedy slot loop
// (and the fantasy incumbent updates) only compare precomputed values
// instead of re-deriving them per slot.
func (e *Engine) selectBatch(cands []candidate, q int) [][]float64 {
	S := e.cfg.FantasySamples
	// Per-sample incumbent best over observed points (feasible preferred).
	best := e.sampleIncumbents(S)

	// QMC normal draws shared across candidates: dims (cost, latency).
	sob := qmc.NewScrambledSobol(2, e.rng.Split())
	draws := sob.NormalSample(S)

	nei := e.cfg.Acquisition != EI
	// Batched fantasy samples, one pass per candidate.
	costS := make([][]float64, len(cands))
	feasS := make([][]bool, len(cands))
	for i := range cands {
		cm, cv := e.costGP.Posterior(cands[i].x)
		cands[i].cm = cm
		cands[i].csd = math.Sqrt(cv + 1e-12)
		if !nei {
			continue
		}
		cs := make([]float64, S)
		fs := make([]bool, S)
		for s := 0; s < S; s++ {
			cs[s] = cands[i].cm + cands[i].csd*draws[s][0]
			fs[s] = cands[i].lm+cands[i].lsd*draws[s][1] <= e.cfg.QoS
		}
		costS[i], feasS[i] = cs, fs
	}

	var batch [][]float64
	taken := make([]bool, len(cands))
	for slot := 0; slot < q; slot++ {
		bestIdx, bestGain := -1, -math.Inf(1)
		for i := range cands {
			if taken[i] {
				continue
			}
			var gain float64
			if !nei {
				c := cands[i]
				gain = e.analyticEI(c.cm, c.csd, c.lm, c.lsd, best)
			} else {
				cs, fs := costS[i], feasS[i]
				for s := 0; s < S; s++ {
					if !fs[s] {
						continue
					}
					if imp := best[s] - cs[s]; imp > 0 {
						gain += imp
					}
				}
				gain /= float64(S)
			}
			if gain > bestGain {
				bestGain, bestIdx = gain, i
			}
		}
		if bestIdx < 0 {
			break
		}
		if slot == 0 {
			e.lastAcq = bestGain
		}
		taken[bestIdx] = true
		batch = append(batch, cands[bestIdx].x)
		// Fantasy update: pending point lowers the per-sample incumbent.
		// This also runs under EI (best[0] is the analytic incumbent), so
		// later slots improve over pending picks, not just observed points.
		if nei {
			cs, fs := costS[bestIdx], feasS[bestIdx]
			for s := 0; s < S; s++ {
				if fs[s] && cs[s] < best[s] {
					best[s] = cs[s]
				}
			}
		} else {
			c := cands[bestIdx]
			for s := 0; s < S; s++ {
				costS := c.cm + c.csd*draws[s][0]
				latS := c.lm + c.lsd*draws[s][1]
				if latS <= e.cfg.QoS && costS < best[s] {
					best[s] = costS
				}
			}
		}
	}
	// Top up with random points if the pool ran dry.
	for len(batch) < q {
		batch = append(batch, e.randomBatch(1)[0])
	}
	return batch
}

// analyticEI is classic constrained EI: expected improvement over the best
// *observed* feasible cost, weighted by the probability of feasibility.
func (e *Engine) analyticEI(cm, csd, lm, lsd float64, best []float64) float64 {
	// For EI the incumbent is deterministic: best[0] holds it (see
	// sampleIncumbents which returns a constant slice under EI).
	f := best[0]
	if csd < 1e-12 {
		csd = 1e-12
	}
	z := (f - cm) / csd
	ei := (f-cm)*stats.NormalCDF(z) + csd*stats.NormalPDF(z)
	if ei < 0 {
		ei = 0
	}
	pf := stats.NormalCDF((e.cfg.QoS - lm) / lsd)
	return ei * pf
}

// sampleIncumbents draws S joint posterior samples of (cost, latency) at
// the observed points and returns, per sample, the minimum cost among
// feasible points (falling back to overall minimum when no sampled point is
// feasible). Under EI it returns the deterministic observed feasible best
// replicated once. The joint posterior over window points reuses the GPs'
// cached train-kernel matrices — no kernel re-evaluation — unless the cache
// is disabled.
func (e *Engine) sampleIncumbents(S int) []float64 {
	clean := e.cleanObservations()
	if e.cfg.Acquisition == EI {
		best := math.Inf(1)
		for _, o := range clean {
			if o.Latency <= e.cfg.QoS && o.Cost < best {
				best = o.Cost
			}
		}
		if math.IsInf(best, 1) {
			for _, o := range clean {
				if o.Cost < best {
					best = o.Cost
				}
			}
		}
		out := make([]float64, S)
		for i := range out {
			out[i] = best
		}
		return out
	}
	// Sobol dimensionality is bounded; for larger histories use the most
	// recent points for the joint draw (older ones rarely hold the
	// incumbent under a converging optimizer).
	m := len(clean)
	if m > qmc.MaxDim {
		m = qmc.MaxDim
	}
	sobC := qmc.NewScrambledSobol(m, e.rng.Split())
	sobL := qmc.NewScrambledSobol(m, e.rng.Split())
	var costDraws, latDraws [][]float64
	if e.cfg.DisableKernelCache || !e.synced {
		xs := make([][]float64, 0, m)
		for _, o := range clean[len(clean)-m:] {
			xs = append(xs, o.X)
		}
		costDraws = e.costGP.SampleJoint(xs, sobC.NormalSample(S))
		latDraws = e.latGP.SampleJoint(xs, sobL.NormalSample(S))
	} else {
		// The GP windows mirror the clean set, so the most recent m window
		// points are exactly clean[len-m:] — served from the kernel cache.
		costDraws = e.costGP.SampleJointRecent(m, sobC.NormalSample(S))
		latDraws = e.latGP.SampleJointRecent(m, sobL.NormalSample(S))
	}
	best := make([]float64, S)
	for s := 0; s < S; s++ {
		bf, bAny := math.Inf(1), math.Inf(1)
		for i := 0; i < m; i++ {
			c := costDraws[s][i]
			if c < bAny {
				bAny = c
			}
			if latDraws[s][i] <= e.cfg.QoS && c < bf {
				bf = c
			}
		}
		if math.IsInf(bf, 1) {
			bf = bAny
		}
		best[s] = bf
	}
	return best
}

// Observe records a batch of profiled observations. Each new observation
// is first screened against the *previous* surrogates (the paper's
// diagnostic models): a point far outside the robust predictive interval
// is an anomaly and never enters the fit. A burst of consecutive
// anomalies signals a workload behaviour change and triggers incremental
// retraining (history reset).
func (e *Engine) Observe(batch []Observation) {
	flags := make([]bool, len(batch))
	if !e.cfg.DisableAnomalyDetection && e.fitted {
		for i, o := range batch {
			flags[i] = e.isAnomalous(o)
		}
	}
	for i, o := range batch {
		e.obs = append(e.obs, o)
		e.anomalous = append(e.anomalous, flags[i])
	}
	droppedClean := 0
	if e.cfg.Window > 0 && len(e.obs) > e.cfg.Window {
		drop := len(e.obs) - e.cfg.Window
		for i := 0; i < drop; i++ {
			if !e.anomalous[i] {
				droppedClean++
			}
		}
		e.obs = e.obs[drop:]
		e.anomalous = e.anomalous[drop:]
	}
	if !e.cfg.DisableAnomalyDetection {
		if e.maybeHandleChange() {
			droppedClean = 0
		}
	}
	e.refit(batch, flags, droppedClean)
	e.iter++
	if e.tracer.Enabled() {
		pruned := 0
		for _, f := range flags {
			if f {
				pruned++
			}
		}
		fields := telemetry.Fields{
			"observations": float64(len(e.obs)),
			"pruned":       float64(pruned),
			"acquisition":  e.lastAcq,
		}
		if _, cost, ok := e.BestFeasible(); ok {
			fields["incumbent_cost"] = cost
			fields["incumbent_latency"] = e.incumbentLatency()
		}
		e.tracer.Point(telemetry.KindBOIteration, "bo", 0, float64(e.iter), fields)
	}
}

// incumbentLatency returns the latency of the best feasible observation.
func (e *Engine) incumbentLatency() float64 {
	best := math.Inf(1)
	lat := 0.0
	for i, o := range e.obs {
		if e.anomalous[i] || o.Latency > e.cfg.QoS {
			continue
		}
		if o.Cost < best {
			best = o.Cost
			lat = o.Latency
		}
	}
	return lat
}

// isAnomalous screens one observation against the current surrogates: the
// yardstick combines the posterior variance at the point with the robust
// (MAD) scale of the leave-one-out residuals, so ordinary noise and model
// misfit set the bar and only irregular outliers exceed it.
func (e *Engine) isAnomalous(o Observation) bool {
	cm, cv := e.costGP.Posterior(o.X)
	lm, lv := e.latGP.Posterior(o.X)
	cThresh := e.cfg.AnomalyZ * math.Sqrt(e.costResidScale*e.costResidScale+cv)
	lThresh := e.cfg.AnomalyZ * math.Sqrt(e.latResidScale*e.latResidScale+lv)
	return math.Abs(o.Cost-cm) > cThresh || math.Abs(o.Latency-lm) > lThresh
}

// refit brings the surrogates up to date with the clean observation set.
// In steady state this is incremental — rank-1 window updates for the new
// batch (and evictions), O(n²) per point — with full refactorizations only
// at window construction, after behaviour-change resets, and on the
// refit-every-k hyperparameter schedule.
func (e *Engine) refit(batch []Observation, flags []bool, droppedClean int) {
	// The schedule counter ticks on every window update, including ones
	// where the model is not yet fittable — the first hyperparameter refit
	// then lands exactly where the historical every-5-observations cadence
	// put it, for any batch size.
	e.sinceRefit++
	clean := e.cleanObservations()
	if len(clean) < 2 {
		e.fitted = false
		e.synced = false
		return
	}
	if e.cfg.DisableIncremental || !e.synced {
		if !e.rebuild(clean) {
			return
		}
	} else {
		for i := 0; i < droppedClean; i++ {
			e.costGP.Forget()
			e.latGP.Forget()
		}
		ok := true
		for i, o := range batch {
			if flags[i] {
				continue
			}
			if e.costGP.Observe(o.X, o.Cost) != nil || e.latGP.Observe(o.X, o.Latency) != nil {
				ok = false
				break
			}
		}
		if !ok && !e.rebuild(clean) {
			return
		}
	}
	if e.sinceRefit >= e.cfg.RefitEveryK {
		e.costGP.FitHyperparameters(e.rng, 2)
		e.latGP.FitHyperparameters(e.rng, 2)
		e.sinceRefit = 0
	}
	e.fitted = true
	e.synced = true
	// Refresh the robust residual scales used by anomaly screening.
	// Leave-one-out residuals are required here: in-sample residuals of
	// a near-interpolating GP are ~0 and would flag everything. The
	// closed-form identities provide them from the existing factor.
	if e.cfg.DisableAnomalyDetection {
		return
	}
	costMeans, _ := e.costGP.LeaveOneOutAll()
	latMeans, _ := e.latGP.LeaveOneOutAll()
	costRes := make([]float64, 0, len(clean))
	latRes := make([]float64, 0, len(clean))
	for i, o := range clean {
		costRes = append(costRes, o.Cost-costMeans[i])
		latRes = append(latRes, o.Latency-latMeans[i])
	}
	e.costResidScale = madScale(costRes)
	e.latResidScale = madScale(latRes)
}

// rebuild fully reconditions both GPs on the clean set (window
// construction). Reports success; on failure the engine is unfitted.
func (e *Engine) rebuild(clean []Observation) bool {
	xs := make([][]float64, len(clean))
	costs := make([]float64, len(clean))
	lats := make([]float64, len(clean))
	for i, o := range clean {
		xs[i] = o.X
		costs[i] = o.Cost
		lats[i] = o.Latency
	}
	if e.costGP.Fit(xs, costs) != nil || e.latGP.Fit(xs, lats) != nil {
		e.fitted = false
		e.synced = false
		return false
	}
	return true
}

// madScale returns a robust standard-deviation estimate
// (1.4826 × median absolute deviation), floored to avoid zero scales.
func madScale(resid []float64) float64 {
	abs := make([]float64, len(resid))
	for i, r := range resid {
		abs[i] = math.Abs(r)
	}
	s := 1.4826 * stats.Percentile(abs, 50)
	if s < 1e-9 {
		s = 1e-9
	}
	return s
}

// maybeHandleChange implements incremental retraining: when the most recent
// ChangeBurst observations are all anomalous, the workload's behaviour has
// likely changed (new inputs, function update); the engine drops older
// history and un-flags the burst so the model re-learns from fresh samples.
// It reports whether a reset occurred (the surrogates must then be rebuilt).
func (e *Engine) maybeHandleChange() bool {
	k := e.cfg.ChangeBurst
	if len(e.obs) < k {
		return false
	}
	for i := len(e.obs) - k; i < len(e.obs); i++ {
		if !e.anomalous[i] {
			return false
		}
	}
	e.obs = e.obs[len(e.obs)-k:]
	e.anomalous = make([]bool, len(e.obs))
	e.changeEvents++
	e.fitted = false
	e.synced = false
	return true
}

// BestFeasible returns the non-anomalous observation with the lowest cost
// among those meeting QoS. ok is false when no feasible point exists yet.
func (e *Engine) BestFeasible() (x []float64, cost float64, ok bool) {
	best := math.Inf(1)
	for i, o := range e.obs {
		if e.anomalous[i] || o.Latency > e.cfg.QoS {
			continue
		}
		if o.Cost < best {
			best = o.Cost
			x = o.X
			ok = true
		}
	}
	return x, best, ok
}

// BestAny returns the lowest-cost non-anomalous observation regardless of
// feasibility (used as a fallback when nothing meets QoS yet).
func (e *Engine) BestAny() (x []float64, cost float64, ok bool) {
	best := math.Inf(1)
	for i, o := range e.obs {
		if e.anomalous[i] {
			continue
		}
		if o.Cost < best {
			best = o.Cost
			x = o.X
			ok = true
		}
	}
	return x, best, ok
}
