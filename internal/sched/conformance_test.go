package sched_test

import (
	"bytes"
	"testing"

	"aquatope/internal/apps"
	"aquatope/internal/core"
	"aquatope/internal/sched"
	"aquatope/internal/telemetry"
	"aquatope/internal/trace"
)

// conformanceOptions shrinks every scheduler's knobs to conformance-run
// scale and arms the meter.
func conformanceOptions(m *sched.Meter) sched.Options {
	return sched.Options{
		EncoderHidden: 8,
		PredHidden:    []int{8, 4},
		EncoderEpochs: 2,
		PredEpochs:    4,
		MCSamples:     4,
		LR:            0.01,
		Window:        16,
		HeadroomZ:     2,
		Meter:         m,
	}
}

// runConformance executes one mini end-to-end run under the named
// scheduler and returns the meter, the span stream and the metric
// snapshot.
func runConformance(t *testing.T, name string, seed int64) (*sched.Meter, []telemetry.Span, []byte, []byte) {
	t.Helper()
	meter := &sched.Meter{}
	s, ok := sched.New(name, conformanceOptions(meter))
	if !ok {
		t.Fatalf("scheduler %q not registered", name)
	}
	col := telemetry.NewCollector()
	reg := telemetry.NewRegistry()
	tr := trace.Synthesize(trace.GenConfig{
		DurationMin:    90,
		MeanRatePerMin: 2,
		Diurnal:        0.5,
		CV:             1.5,
		Seed:           seed,
	})
	_, err := core.Run(core.Config{
		Components:   []core.Component{{App: apps.NewChain(2), Trace: tr}},
		TrainMin:     30,
		Scheduler:    s,
		SearchBudget: 6,
		Tracer:       col,
		Registry:     reg,
		Seed:         seed,
	})
	if err != nil {
		t.Fatalf("%s: run failed: %v", name, err)
	}
	var spans, metrics bytes.Buffer
	if err := col.WriteJSONL(&spans); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteJSON(&metrics); err != nil {
		t.Fatal(err)
	}
	return meter, col.Spans(), spans.Bytes(), metrics.Bytes()
}

// TestConformanceDeterminism: every registered scheduler must produce
// byte-identical span and metric dumps across two same-seed runs — the
// registry-wide version of the repo's determinism bar. New schedulers get
// this check for free by registering.
func TestConformanceDeterminism(t *testing.T) {
	for _, name := range sched.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			_, _, spans1, metrics1 := runConformance(t, name, 7)
			_, _, spans2, metrics2 := runConformance(t, name, 7)
			if !bytes.Equal(spans1, spans2) {
				t.Errorf("span dumps diverge across same-seed runs (%d vs %d bytes)", len(spans1), len(spans2))
			}
			if !bytes.Equal(metrics1, metrics2) {
				t.Error("metric snapshots diverge across same-seed runs")
			}
			if len(spans1) == 0 {
				t.Error("no spans emitted")
			}
		})
	}
}

// TestConformanceExplainRecords: every decision a scheduler makes must
// leave an auditable explain record — pool decisions as pool.decision
// points, configuration decisions as bo.decision or sched.decision points
// — and the counts must match the meter's deterministic accounting
// exactly.
func TestConformanceExplainRecords(t *testing.T) {
	for _, name := range sched.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			meter, spans, _, _ := runConformance(t, name, 11)
			poolPts, confPts := 0, 0
			for _, sp := range spans {
				switch sp.Kind {
				case telemetry.KindPoolDecision:
					// Rewarm points are crash recovery, not policy
					// decisions; none occur here but filter on principle.
					if sp.Fields["rewarm"] != 1 {
						poolPts++
					}
				case telemetry.KindBODecision, telemetry.KindSchedDecision:
					confPts++
				}
			}
			if poolPts == 0 {
				t.Error("no pool.decision explain records emitted")
			}
			if confPts == 0 {
				t.Error("no configuration explain records (bo.decision / sched.decision) emitted")
			}
			if poolPts != meter.PoolDecisions {
				t.Errorf("pool.decision records %d != metered pool decisions %d", poolPts, meter.PoolDecisions)
			}
			if confPts != meter.ConfigDecisions {
				t.Errorf("configuration records %d != metered config decisions %d", confPts, meter.ConfigDecisions)
			}
			if meter.MeanDecisionLatencyS() <= 0 {
				t.Error("no modeled decision latency accrued")
			}
		})
	}
}
