package telemetry

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// goldenSpans builds a small but representative span stream: a workflow
// with a stage, an invocation, a container create and a decision point.
func goldenSpans() *Collector {
	c := NewCollector()
	wf := c.StartSpan(KindWorkflow, "app", 0, 10)
	st := c.StartSpan(KindStage, "s0", wf, 10)
	c.Point(KindContainerCreate, "fn", 0, 10.5,
		Fields{"container": 0, "invoker": 1, "mem_mb": 256, "prewarmed": 0, "init_s": 1.25})
	inv := c.StartSpan(KindInvocation, "fn", st, 10)
	c.EndSpan(inv, 14.75, Fields{"cold": 1, "wait_s": 1.25, "exec_s": 3.5, "container": 0, "outcome": 0})
	c.EndSpan(st, 14.75, Fields{"invocations": 1})
	c.EndSpan(wf, 14.75, Fields{"latency_s": 4.75})
	c.Point(KindPoolDecision, "fn", 0, 60,
		Fields{"predicted": 2.5, "headroom": 1.5, "target": 4, "actual": 2, "why": 0})
	return c
}

// goldenRegistry builds a registry covering every exported metric family.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter(MetricColdStarts).Add(2)
	r.Counter(MetricWarmStarts).Add(7)
	r.Gauge(MetricInvokerBusyS + ".0").Set(12.5)
	r.Gauge(MetricBinPackEfficiency).Set(0.375)
	h := r.HistogramBuckets(MetricWorkflowLatency+".app", 0.1, 2, 8)
	for _, v := range []float64{0.05, 0.3, 0.3, 1.7, 99} {
		h.Observe(v)
	}
	return r
}

// checkGolden compares rendered bytes to the committed golden file.
// Regenerate with UPDATE_GOLDEN=1 go test ./internal/telemetry/.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden bytes (regenerate with UPDATE_GOLDEN=1 if intended)\ngot:\n%s\nwant:\n%s",
			name, got, want)
	}
}

func TestGoldenSpanJSONL(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenSpans().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "spans.golden.jsonl", buf.Bytes())

	// The stream must round-trip losslessly.
	spans, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != goldenSpans().Len() {
		t.Fatalf("round-trip lost spans: %d != %d", len(spans), goldenSpans().Len())
	}
	var buf2 bytes.Buffer
	if err := goldenSpans().WriteJSONL(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("repeated JSONL renders differ")
	}
}

func TestGoldenMetricsJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.golden.json", buf.Bytes())
}

func TestGoldenMetricsProm(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePromText(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.golden.prom", buf.Bytes())
}
