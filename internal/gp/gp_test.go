package gp

import (
	"math"
	"testing"

	"aquatope/internal/qmc"
	"aquatope/internal/stats"
)

func TestMatern52Properties(t *testing.T) {
	k := NewMatern52(2)
	a := []float64{0.3, 0.7}
	// k(x,x) = variance.
	if got := k.Eval(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("k(x,x) = %v, want 1", got)
	}
	// Symmetry.
	b := []float64{0.9, 0.1}
	if k.Eval(a, b) != k.Eval(b, a) {
		t.Fatal("kernel not symmetric")
	}
	// Decay with distance.
	c := []float64{5, 5}
	if k.Eval(a, b) <= k.Eval(a, c) {
		t.Fatal("kernel should decay with distance")
	}
	// Positive.
	if k.Eval(a, c) <= 0 {
		t.Fatal("kernel should be positive")
	}
}

func TestKernelHyperparameterRoundTrip(t *testing.T) {
	for _, k := range []Kernel{NewMatern52(3), NewRBF(3)} {
		h := k.Hyperparameters()
		h[0] = math.Log(2.5)
		h[len(h)-1] = math.Log(0.7)
		k.SetHyperparameters(h)
		h2 := k.Hyperparameters()
		for i := range h {
			if math.Abs(h[i]-h2[i]) > 1e-12 {
				t.Fatalf("hyperparameter round trip failed at %d", i)
			}
		}
	}
}

func TestGPInterpolatesNoiselessData(t *testing.T) {
	g := New(NewMatern52(1), 1e-8)
	X := [][]float64{{0}, {0.25}, {0.5}, {0.75}, {1}}
	y := []float64{0, 1, 0, -1, 0}
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i, x := range X {
		m, v := g.Posterior(x)
		if math.Abs(m-y[i]) > 1e-3 {
			t.Fatalf("mean at training point %d = %v, want %v", i, m, y[i])
		}
		if v > 1e-3 {
			t.Fatalf("variance at training point should be ~0, got %v", v)
		}
	}
}

func TestGPUncertaintyGrowsAwayFromData(t *testing.T) {
	g := New(NewMatern52(1), 1e-6)
	if err := g.Fit([][]float64{{0}, {1}}, []float64{0, 1}); err != nil {
		t.Fatal(err)
	}
	_, vNear := g.Posterior([]float64{0.5})
	_, vFar := g.Posterior([]float64{10})
	if vFar <= vNear {
		t.Fatalf("variance should grow away from data: near %v far %v", vNear, vFar)
	}
}

func TestGPEmptyFit(t *testing.T) {
	g := New(NewMatern52(1), 1e-6)
	if err := g.Fit(nil, nil); err != nil {
		t.Fatal(err)
	}
	m, v := g.Posterior([]float64{0})
	if m != 0 || v <= 0 {
		t.Fatalf("prior posterior = (%v, %v)", m, v)
	}
}

func TestGPMismatchedInput(t *testing.T) {
	g := New(NewMatern52(1), 1e-6)
	if err := g.Fit([][]float64{{0}}, []float64{1, 2}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestGPRecoverFunctionWithNoise(t *testing.T) {
	rng := stats.NewRNG(1)
	f := func(x float64) float64 { return math.Sin(3*x) + 0.5*x }
	var X [][]float64
	var y []float64
	for i := 0; i < 40; i++ {
		x := rng.Uniform(0, 2)
		X = append(X, []float64{x})
		y = append(y, f(x)+rng.Normal(0, 0.05))
	}
	g := New(NewMatern52(1), 0.01)
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	g.FitHyperparameters(rng, 3)
	var maxErr float64
	for x := 0.1; x < 1.9; x += 0.1 {
		m, _ := g.Posterior([]float64{x})
		if e := math.Abs(m - f(x)); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.25 {
		t.Fatalf("max posterior error %v too large", maxErr)
	}
}

func TestFitHyperparametersImprovesLikelihood(t *testing.T) {
	rng := stats.NewRNG(2)
	var X [][]float64
	var y []float64
	for i := 0; i < 25; i++ {
		x := rng.Uniform(0, 5)
		X = append(X, []float64{x})
		y = append(y, math.Sin(x)+rng.Normal(0, 0.1))
	}
	g := New(NewMatern52(1), 0.01)
	// Deliberately bad initial lengthscale.
	g.Kernel.SetHyperparameters([]float64{math.Log(20), 0})
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	before := g.LogMarginalLikelihood()
	g.FitHyperparameters(rng, 4)
	after := g.LogMarginalLikelihood()
	if after < before {
		t.Fatalf("hyperparameter fit worsened LL: %v -> %v", before, after)
	}
}

func TestPosteriorBatchConsistentWithMarginal(t *testing.T) {
	rng := stats.NewRNG(3)
	var X [][]float64
	var y []float64
	for i := 0; i < 15; i++ {
		x := rng.Uniform(0, 1)
		X = append(X, []float64{x})
		y = append(y, x*x)
	}
	g := New(NewMatern52(1), 0.01)
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	xs := [][]float64{{0.2}, {0.8}}
	mean, cov := g.PosteriorBatch(xs)
	for i, x := range xs {
		m, v := g.Posterior(x)
		if math.Abs(mean[i]-m) > 1e-9 {
			t.Fatalf("batch mean %v != marginal %v", mean[i], m)
		}
		if math.Abs(cov.At(i, i)-v) > 1e-9 {
			t.Fatalf("batch var %v != marginal %v", cov.At(i, i), v)
		}
	}
	// Covariance symmetric with |c12| <= sqrt(c11*c22).
	if cov.At(0, 1) != cov.At(1, 0) {
		t.Fatal("covariance not symmetric")
	}
	if math.Abs(cov.At(0, 1)) > math.Sqrt(cov.At(0, 0)*cov.At(1, 1))+1e-9 {
		t.Fatal("covariance violates Cauchy-Schwarz")
	}
}

func TestSampleJointMatchesPosteriorMoments(t *testing.T) {
	rng := stats.NewRNG(4)
	var X [][]float64
	var y []float64
	for i := 0; i < 10; i++ {
		x := rng.Uniform(0, 1)
		X = append(X, []float64{x})
		y = append(y, math.Cos(2*x))
	}
	g := New(NewMatern52(1), 0.05)
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	xs := [][]float64{{0.3}, {0.6}, {2.0}}
	sob := qmc.NewSobol(len(xs))
	draws := sob.NormalSample(2048)
	samples := g.SampleJoint(xs, draws)
	mean, cov := g.PosteriorBatch(xs)
	for j := range xs {
		var s, ss float64
		for _, row := range samples {
			s += row[j]
			ss += row[j] * row[j]
		}
		n := float64(len(samples))
		m := s / n
		v := ss/n - m*m
		if math.Abs(m-mean[j]) > 0.05 {
			t.Fatalf("sample mean[%d] = %v, want %v", j, m, mean[j])
		}
		if math.Abs(v-cov.At(j, j)) > 0.1*(cov.At(j, j)+0.01) {
			t.Fatalf("sample var[%d] = %v, want %v", j, v, cov.At(j, j))
		}
	}
}

func TestLeaveOneOutDetectsOutlier(t *testing.T) {
	rng := stats.NewRNG(5)
	var X [][]float64
	var y []float64
	for i := 0; i < 20; i++ {
		x := float64(i) / 19
		X = append(X, []float64{x})
		y = append(y, 2*x+rng.Normal(0, 0.02))
	}
	// Corrupt one observation massively.
	y[10] = 50
	g := New(NewMatern52(1), 0.01)
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	m, v, err := g.LeaveOneOut(10)
	if err != nil {
		t.Fatal(err)
	}
	// The held-out prediction should be near 2*x = ~1.05, far below 50.
	z := math.Abs(50-m) / math.Sqrt(v+1e-12)
	if z < 2 {
		t.Fatalf("outlier z-score %v should exceed 2 (mean %v var %v)", z, m, v)
	}
	if _, _, err := g.LeaveOneOut(99); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestTrainingPointRoundTrip(t *testing.T) {
	g := New(NewMatern52(1), 0.01)
	X := [][]float64{{1}, {2}, {3}}
	y := []float64{10, 20, 30}
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	x, yi := g.TrainingPoint(1)
	if x[0] != 2 || math.Abs(yi-20) > 1e-9 {
		t.Fatalf("training point = (%v, %v)", x, yi)
	}
	if g.Len() != 3 {
		t.Fatalf("Len = %d", g.Len())
	}
}

func TestLogMarginalLikelihoodUnfitted(t *testing.T) {
	g := New(NewMatern52(1), 0.01)
	if !math.IsInf(g.LogMarginalLikelihood(), -1) {
		t.Fatal("unfitted LL should be -Inf")
	}
}
