// Package faas is a discrete-event simulator of an OpenWhisk-style
// Function-as-a-Service platform: a controller load-balances invocations
// over invokers (worker servers), each of which manages per-function
// container pools with cold starts, keep-alive timers, pre-warming, memory
// capacity, and configurable CPU/memory limits per container. It replaces
// the paper's 7-server OpenWhisk deployment while reproducing the
// observable behaviour the Aquatope scheduler depends on: cold/warm start
// dynamics (including cascading cold starts across workflow stages),
// resource-dependent execution times, provisioned memory-time accounting,
// and injected interference noise.
package faas

import (
	"fmt"

	"aquatope/internal/stats"
	"aquatope/internal/telemetry"
)

// ResourceConfig is a per-function container configuration, mirroring the
// CPU / memory / concurrency interface of major FaaS providers (§5.1).
type ResourceConfig struct {
	// CPU is the CPU limit in cores (fractions allowed).
	CPU float64
	// MemoryMB is the memory limit in megabytes.
	MemoryMB float64
	// Concurrency is the maximum number of simultaneously running
	// containers for the function (per cluster). Zero means unlimited.
	Concurrency int
}

// Validate reports whether the configuration is usable.
func (c ResourceConfig) Validate() error {
	if c.CPU <= 0 {
		return fmt.Errorf("faas: non-positive CPU limit %v", c.CPU)
	}
	if c.MemoryMB <= 0 {
		return fmt.Errorf("faas: non-positive memory limit %v", c.MemoryMB)
	}
	if c.Concurrency < 0 {
		return fmt.Errorf("faas: negative concurrency %d", c.Concurrency)
	}
	return nil
}

// PerfModel describes how a function behaves under a resource
// configuration. Implementations live in internal/apps; the simulator only
// calls these hooks.
type PerfModel interface {
	// InitTime returns the container initialization time (runtime setup,
	// dependency loading, execution-context warmup) in seconds for a cold
	// container under cfg.
	InitTime(cfg ResourceConfig, rng *stats.RNG) float64
	// ExecTime returns the execution time in seconds of one invocation
	// with the given input size under cfg. cold reports whether this is
	// the first invocation in a fresh container (no cached execution
	// context — SDK clients, models, connections — so cold runs are
	// slower even after initialization, §2.2).
	ExecTime(cfg ResourceConfig, cold bool, inputSize float64, rng *stats.RNG) float64
	// BaseMemoryMB returns the function's minimum viable memory footprint;
	// configurations below it thrash and time out.
	BaseMemoryMB() float64
}

// FunctionSpec registers a function with the cluster.
type FunctionSpec struct {
	Name  string
	Model PerfModel
	// TriggerType is an external feature for the prediction model
	// (0=HTTP, 1=object storage, 2=event hub, ...).
	TriggerType int
}

// Outcome is the terminal state of an invocation. Before the fault model
// existed every invocation succeeded; now results carry an explicit outcome
// instead of overloading latency with sentinel values.
type Outcome int

const (
	// OutcomeSuccess is a normally completed invocation.
	OutcomeSuccess Outcome = iota
	// OutcomeFailed is a hard fault: container init failure, container
	// kill mid-execution, or invoker crash losing the invocation.
	OutcomeFailed
	// OutcomeTimedOut is a caller-imposed deadline expiring before the
	// invocation completed (the container is reclaimed).
	OutcomeTimedOut
	// OutcomeShed is an admission-control rejection: the invocation never
	// ran because the function's bounded queue was full (or, under
	// deadline-aware shedding, its remaining latency budget was already
	// unmeetable). Shed work burns no execution resources.
	OutcomeShed
)

// String returns the outcome's wire name (used in telemetry and reports).
func (o Outcome) String() string {
	switch o {
	case OutcomeSuccess:
		return "success"
	case OutcomeFailed:
		return "failed"
	case OutcomeTimedOut:
		return "timed-out"
	case OutcomeShed:
		return "shed"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// InvocationResult reports one completed invocation.
type InvocationResult struct {
	Function   string
	SubmitTime float64
	StartTime  float64 // when execution began (after any wait/init)
	EndTime    float64
	ColdStart  bool
	WaitTime   float64 // queueing + container provisioning wait
	ExecTime   float64
	CPU        float64 // CPU limit during the run
	MemoryMB   float64
	// Outcome is the terminal state; non-success results report the time
	// actually burned (partial ExecTime) so cost accounting stays honest.
	Outcome Outcome
	// FailureReason names the fault for non-success outcomes
	// ("init-failure", "container-kill", "invoker-crash", "timeout",
	// "queue-full", "shed-oldest", "deadline-unmeetable").
	FailureReason string
	// Attempt is the caller's retry attempt index (0 = first try),
	// threaded through InvokeOptions for telemetry.
	Attempt int
	Err     error
}

// OK reports whether the invocation completed successfully.
func (r InvocationResult) OK() bool { return r.Outcome == OutcomeSuccess }

// InvokeOptions parameterizes an invocation beyond the basic path.
type InvokeOptions struct {
	// InputSize is the request's input size (performance-model feature).
	InputSize float64
	// Parent links the invocation span to the issuing operation's span.
	Parent telemetry.SpanID
	// Timeout fails the invocation with OutcomeTimedOut if it has not
	// completed this many seconds after submission (0 = no deadline).
	Timeout float64
	// Attempt tags the result and span with the caller's retry attempt.
	Attempt int
}

// FaultRates are the probabilistic fault knobs of the platform, normally
// zero and driven by internal/chaos during fault windows. Draws come from a
// dedicated fault RNG so enabling them never perturbs the noise stream.
type FaultRates struct {
	// InitFailure is the probability a container's initialization fails
	// (the container dies at warm-up completion; a reserved invocation
	// fails with OutcomeFailed).
	InitFailure float64
	// ExecKill is the per-invocation probability the hosting container is
	// killed mid-execution (OOM-style), failing the invocation at a
	// uniform point of its execution.
	ExecKill float64
}

// Latency returns the invocation's end-to-end latency (submit to finish).
func (r InvocationResult) Latency() float64 { return r.EndTime - r.SubmitTime }

// CostCPUTime returns CPU-seconds consumed (CPU limit × execution time),
// the CPU component of the paper's linear cost model.
func (r InvocationResult) CostCPUTime() float64 { return r.CPU * r.ExecTime }

// CostMemTime returns GB-seconds consumed.
func (r InvocationResult) CostMemTime() float64 { return r.MemoryMB / 1024 * r.ExecTime }
