package lint

import (
	"go/ast"
	"go/types"
)

var metricnameAnalyzer = &Analyzer{
	Name: "metricname",
	Doc: "require every telemetry metric name and span kind to be built " +
		"from a constant in the central catalog (internal/telemetry), so " +
		"dashboards and the trace analyzer never chase ad-hoc strings",
	NeedsTypes: true,
	Run:        runMetricName,
}

// metricnameEntryPoints are the telemetry calls whose first argument names
// a metric or span kind: registry lookups and tracer emissions.
var metricnameEntryPoints = map[string]bool{
	"Counter":          true,
	"Gauge":            true,
	"Histogram":        true,
	"HistogramBuckets": true,
	"Point":            true,
	"StartSpan":        true,
}

// metricnameCatalog is the default catalog package: names are valid when
// they are built from a constant it declares.
var metricnameCatalog = []string{"aquatope/internal/telemetry"}

func runMetricName(prog *Program, pkg *Package, file *File, rule Rule, report Reporter) {
	catalog := rule.Sinks
	if len(catalog) == 0 {
		catalog = metricnameCatalog
	}
	info := pkg.Info
	ast.Inspect(file.AST, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !metricnameEntryPoints[sel.Sel.Name] {
			return true
		}
		path, name := calleePackage(info, sel)
		if path == "" || !pathInCatalog(path, catalog) {
			return true
		}
		if usesCatalogConst(info, call.Args[0], catalog) {
			return true
		}
		report(call.Args[0].Pos(),
			"%s.%s name is not built from a catalog constant; add it to internal/telemetry/names.go so every emission shares one spelling",
			shortPkg(path), name)
		return true
	})
}

func pathInCatalog(path string, catalog []string) bool {
	for _, g := range catalog {
		if matchGlob(g, path) {
			return true
		}
	}
	return false
}

// usesCatalogConst reports whether the expression contains an identifier
// resolving to a constant declared in a catalog package — e.g. the name
// itself, or a "<const> + suffix" composition for per-entity metrics.
func usesCatalogConst(info *types.Info, e ast.Expr, catalog []string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if c, ok := obj.(*types.Const); ok && c.Pkg() != nil && pathInCatalog(c.Pkg().Path(), catalog) {
			found = true
		}
		return !found
	})
	return found
}
