package gp

import (
	"bytes"
	"testing"

	"aquatope/internal/checkpoint"
	"aquatope/internal/stats"
)

func trainedGP(t *testing.T, seed int64) *GP {
	t.Helper()
	rng := stats.NewRNG(seed)
	g := New(NewMatern52(2), 0.01)
	g.SetWindow(9)
	for i := 0; i < 25; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		if err := g.Observe(x, x[0]+rng.Normal(0, 0.05)); err != nil {
			t.Fatalf("observe: %v", err)
		}
	}
	return g
}

func TestGPSnapshotRoundTrip(t *testing.T) {
	g := trainedGP(t, 11)
	enc := checkpoint.NewEncoder()
	g.Snapshot(enc)

	clone := New(NewMatern52(2), 0.5) // divergent noise; Restore overwrites
	if err := clone.Restore(checkpoint.NewDecoder(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	// The restored GP must be indistinguishable: identical snapshot bytes
	// and an identical trajectory under further updates.
	enc2 := checkpoint.NewEncoder()
	clone.Snapshot(enc2)
	if !bytes.Equal(enc.Bytes(), enc2.Bytes()) {
		t.Fatal("re-snapshot differs")
	}
	for i := 0; i < 8; i++ {
		x := []float64{0.1 * float64(i), 0.05 * float64(i)}
		if err := g.Observe(x, float64(i)); err != nil {
			t.Fatal(err)
		}
		if err := clone.Observe(x, float64(i)); err != nil {
			t.Fatal(err)
		}
		gm, gv := g.Posterior(x)
		cm, cv := clone.Posterior(x)
		if gm != cm || gv != cv {
			t.Fatalf("step %d: trajectories diverged: (%v,%v) vs (%v,%v)", i, gm, gv, cm, cv)
		}
	}
}

func TestGPSnapshotEmpty(t *testing.T) {
	g := New(NewRBF(1), 0.01)
	enc := checkpoint.NewEncoder()
	g.Snapshot(enc)
	clone := New(NewRBF(1), 0.01)
	if err := clone.Restore(checkpoint.NewDecoder(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	if clone.Len() != 0 || clone.chol != nil {
		t.Fatal("restored empty GP is not empty")
	}
}

func TestGPRestoreRejectsMismatch(t *testing.T) {
	g := trainedGP(t, 3)
	enc := checkpoint.NewEncoder()
	g.Snapshot(enc)
	// Wrong kernel dimensionality: hyperparameter count differs.
	wrongDim := New(NewMatern52(5), 0.01)
	if err := wrongDim.Restore(checkpoint.NewDecoder(enc.Bytes())); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	// Truncated snapshot.
	data := enc.Bytes()
	if err := New(NewMatern52(2), 0.01).Restore(checkpoint.NewDecoder(data[:len(data)/2])); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}
