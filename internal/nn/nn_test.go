package nn

import (
	"math"
	"testing"

	"aquatope/internal/stats"
)

func TestDenseForwardKnown(t *testing.T) {
	rng := stats.NewRNG(1)
	d := NewDense("d", 2, 1, Identity, rng)
	copy(d.W.W, []float64{2, 3})
	d.B.W[0] = 1
	out := d.Forward([]float64{1, 1})
	if out[0] != 6 {
		t.Fatalf("out = %v, want 6", out[0])
	}
}

func TestDenseInputMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense("d", 2, 1, Identity, stats.NewRNG(1)).Forward([]float64{1})
}

func TestActivations(t *testing.T) {
	if Tanh.apply(0) != 0 || Sigmoid.apply(0) != 0.5 || ReLU.apply(-2) != 0 || ReLU.apply(2) != 2 {
		t.Fatal("activation values wrong")
	}
	if Identity.derivFromOutput(123) != 1 {
		t.Fatal("identity deriv wrong")
	}
	if math.Abs(Sigmoid.derivFromOutput(0.5)-0.25) > 1e-12 {
		t.Fatal("sigmoid deriv wrong")
	}
}

// numericGrad computes d(loss)/d(p.W[i]) by central differences.
func numericGrad(p *Param, i int, loss func() float64) float64 {
	const eps = 1e-5
	orig := p.W[i]
	p.W[i] = orig + eps
	up := loss()
	p.W[i] = orig - eps
	down := loss()
	p.W[i] = orig
	return (up - down) / (2 * eps)
}

func TestMLPGradientCheck(t *testing.T) {
	rng := stats.NewRNG(2)
	m := NewMLP("m", []int{3, 4, 2}, Tanh, 0, rng)
	x := []float64{0.3, -0.7, 0.5}
	target := []float64{0.2, -0.1}
	lossFn := func() float64 {
		l, _ := MSELoss(m.Forward(x), target)
		return l
	}
	// Analytic gradients.
	_, g := MSELoss(m.Forward(x), target)
	m.Backward(g)
	for _, p := range m.Params() {
		for i := range p.W {
			want := numericGrad(p, i, lossFn)
			got := p.G[i]
			if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", p.Name, i, got, want)
			}
		}
		p.ZeroGrad()
	}
}

func TestMLPInputGradientCheck(t *testing.T) {
	rng := stats.NewRNG(3)
	m := NewMLP("m", []int{2, 3, 1}, Tanh, 0, rng)
	x := []float64{0.4, -0.2}
	target := []float64{0.5}
	_, g := MSELoss(m.Forward(x), target)
	dx := m.Backward(g)
	const eps = 1e-5
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		lu, _ := MSELoss(m.Forward(x), target)
		x[i] = orig - eps
		ld, _ := MSELoss(m.Forward(x), target)
		x[i] = orig
		want := (lu - ld) / (2 * eps)
		if math.Abs(dx[i]-want) > 1e-6 {
			t.Fatalf("dx[%d]: analytic %v vs numeric %v", i, dx[i], want)
		}
	}
}

func TestLSTMGradientCheck(t *testing.T) {
	rng := stats.NewRNG(4)
	l := NewLSTM("l", 2, 3, rng)
	xs := [][]float64{{0.5, -0.3}, {0.1, 0.8}, {-0.6, 0.2}}
	target := []float64{0.3, -0.2, 0.1}
	lossFn := func() float64 {
		hs := l.ForwardSeq(xs, nil, nil, nil, nil)
		loss, _ := MSELoss(hs[len(hs)-1], target)
		return loss
	}
	hs := l.ForwardSeq(xs, nil, nil, nil, nil)
	_, g := MSELoss(hs[len(hs)-1], target)
	l.BackwardSeq(nil, g, nil)
	for _, p := range l.Params() {
		for i := range p.W {
			want := numericGrad(p, i, lossFn)
			got := p.G[i]
			if math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", p.Name, i, got, want)
			}
		}
		p.ZeroGrad()
	}
}

func TestLSTMPerStepGradientCheck(t *testing.T) {
	// Gradients flowing from every timestep's output, not just the last.
	rng := stats.NewRNG(5)
	l := NewLSTM("l", 1, 2, rng)
	xs := [][]float64{{0.5}, {-0.5}, {0.25}}
	targets := [][]float64{{0.1, 0}, {0, 0.1}, {-0.1, 0.1}}
	lossFn := func() float64 {
		hs := l.ForwardSeq(xs, nil, nil, nil, nil)
		var total float64
		for t := range hs {
			lt, _ := MSELoss(hs[t], targets[t])
			total += lt
		}
		return total
	}
	hs := l.ForwardSeq(xs, nil, nil, nil, nil)
	dhs := make([][]float64, len(hs))
	for ti := range hs {
		_, g := MSELoss(hs[ti], targets[ti])
		dhs[ti] = g
	}
	l.BackwardSeq(dhs, nil, nil)
	for _, p := range l.Params() {
		for i := range p.W {
			want := numericGrad(p, i, lossFn)
			got := p.G[i]
			if math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", p.Name, i, got, want)
			}
		}
		p.ZeroGrad()
	}
}

func TestLSTMVariationalDropoutGradientCheck(t *testing.T) {
	rng := stats.NewRNG(6)
	l := NewLSTM("l", 2, 2, rng)
	mx := DropoutMask{2, 0} // deterministic masks for the check
	mh := DropoutMask{0, 2}
	xs := [][]float64{{0.5, -0.3}, {0.1, 0.8}}
	target := []float64{0.3, -0.2}
	lossFn := func() float64 {
		hs := l.ForwardSeq(xs, nil, nil, mx, mh)
		loss, _ := MSELoss(hs[len(hs)-1], target)
		return loss
	}
	hs := l.ForwardSeq(xs, nil, nil, mx, mh)
	_, g := MSELoss(hs[len(hs)-1], target)
	l.BackwardSeq(nil, g, nil)
	for _, p := range l.Params() {
		for i := range p.W {
			want := numericGrad(p, i, lossFn)
			got := p.G[i]
			if math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", p.Name, i, got, want)
			}
		}
		p.ZeroGrad()
	}
}

func TestLSTMStackGradientCheck(t *testing.T) {
	rng := stats.NewRNG(7)
	s := NewLSTMStack("s", 1, 2, 2, rng)
	xs := [][]float64{{0.4}, {-0.4}, {0.9}}
	target := []float64{0.2, -0.3}
	lossFn := func() float64 {
		s.ForwardSeq(xs, nil, nil)
		loss, _ := MSELoss(s.FinalHidden(), target)
		return loss
	}
	s.ForwardSeq(xs, nil, nil)
	_, g := MSELoss(s.FinalHidden(), target)
	s.BackwardSeq(nil, g, nil)
	for _, p := range s.Params() {
		for i := range p.W {
			want := numericGrad(p, i, lossFn)
			got := p.G[i]
			if math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", p.Name, i, got, want)
			}
		}
		p.ZeroGrad()
	}
}

func TestAdamReducesLossOnRegression(t *testing.T) {
	rng := stats.NewRNG(8)
	m := NewMLP("m", []int{1, 8, 1}, Tanh, 0, rng)
	opt := NewAdam(0.01, m.Params())
	f := func(x float64) float64 { return math.Sin(3 * x) }
	var first, last float64
	for epoch := 0; epoch < 400; epoch++ {
		var total float64
		n := 20
		for i := 0; i < n; i++ {
			x := -1 + 2*float64(i)/float64(n-1)
			pred := m.Forward([]float64{x})
			loss, g := MSELoss(pred, []float64{f(x)})
			total += loss
			m.Backward(g)
		}
		opt.Step(float64(n))
		if epoch == 0 {
			first = total
		}
		last = total
	}
	if last > first/10 {
		t.Fatalf("training did not converge: first %v last %v", first, last)
	}
}

func TestAdamGradientClipping(t *testing.T) {
	p := NewParam("p", 1)
	p.G[0] = 1e9
	opt := NewAdam(0.1, []*Param{p})
	opt.Step(1)
	if math.Abs(p.W[0]) > 1 {
		t.Fatalf("clipped step moved too far: %v", p.W[0])
	}
	if p.G[0] != 0 {
		t.Fatal("gradient not zeroed after step")
	}
}

func TestLSTMLearnsToMemorize(t *testing.T) {
	// Learn to output the first input after 3 steps (needs memory).
	rng := stats.NewRNG(9)
	l := NewLSTM("l", 1, 8, rng)
	out := NewDense("o", 8, 1, Identity, rng)
	params := append(l.Params(), out.Params()...)
	opt := NewAdam(0.02, params)
	sequences := [][][]float64{
		{{1}, {0}, {0}},
		{{-1}, {0}, {0}},
		{{0.5}, {0}, {0}},
		{{-0.5}, {0}, {0}},
	}
	var last float64
	for epoch := 0; epoch < 300; epoch++ {
		var total float64
		for _, xs := range sequences {
			hs := l.ForwardSeq(xs, nil, nil, nil, nil)
			pred := out.Forward(hs[len(hs)-1])
			loss, g := MSELoss(pred, []float64{xs[0][0]})
			total += loss
			dh := out.Backward(g)
			l.BackwardSeq(nil, dh, nil)
		}
		opt.Step(float64(len(sequences)))
		last = total
	}
	if last > 0.01 {
		t.Fatalf("LSTM failed to memorize: loss %v", last)
	}
}

func TestDropoutMask(t *testing.T) {
	rng := stats.NewRNG(10)
	m := NewDropoutMask(1000, 0.5, rng)
	zero, kept := 0, 0
	for _, v := range m {
		switch v {
		case 0:
			zero++
		case 2: // 1/(1-0.5)
			kept++
		default:
			t.Fatalf("unexpected mask value %v", v)
		}
	}
	if zero < 400 || zero > 600 {
		t.Fatalf("drop count %d not near 500", zero)
	}
	// Rate 0 returns identity mask.
	m0 := NewDropoutMask(5, 0, rng)
	for _, v := range m0 {
		if v != 1 {
			t.Fatal("rate-0 mask should be all ones")
		}
	}
}

func TestMLPDropoutOnlyInTraining(t *testing.T) {
	rng := stats.NewRNG(11)
	m := NewMLP("m", []int{2, 16, 1}, Tanh, 0.5, rng)
	x := []float64{0.5, -0.5}
	m.Train = false
	a := m.Forward(x)[0]
	b := m.Forward(x)[0]
	if a != b {
		t.Fatal("inference should be deterministic with Train=false")
	}
	m.Train = true
	c := m.Forward(x)[0]
	d := m.Forward(x)[0]
	if c == d {
		t.Fatal("MC dropout forward passes should differ (with overwhelming probability)")
	}
}

func TestMSELoss(t *testing.T) {
	loss, g := MSELoss([]float64{1, 2}, []float64{0, 0})
	if loss != 2.5 {
		t.Fatalf("loss = %v, want 2.5", loss)
	}
	if g[0] != 1 || g[1] != 2 {
		t.Fatalf("grad = %v", g)
	}
}

func TestXavierInitRange(t *testing.T) {
	rng := stats.NewRNG(12)
	p := NewParam("p", 100)
	p.InitXavier(10, 10, rng)
	limit := math.Sqrt(6.0 / 20.0)
	for _, w := range p.W {
		if w < -limit || w > limit {
			t.Fatalf("weight %v outside Xavier range", w)
		}
	}
}
