package faas

import "aquatope/internal/sim"

// containerState tracks a container's lifecycle.
type containerState int

const (
	stateWarming containerState = iota // being created / initializing
	stateIdle                          // warm, waiting for work
	stateBusy                          // executing an invocation
	stateDead                          // terminated
)

// container is one function container on an invoker.
type container struct {
	id       int
	fn       *function
	invoker  *Invoker
	state    containerState
	cfg      ResourceConfig
	born     float64 // creation time (memory accounting starts here)
	warmAt   float64 // when initialization completed
	lastUsed float64
	// everUsed reports whether any invocation ran in this container; a
	// container's first invocation is a cold start only if the invocation
	// triggered (or waited on) its creation.
	everUsed  bool
	idleTimer *sim.Event
	// prewarmed marks containers created proactively by the pool
	// scheduler rather than on demand.
	prewarmed bool
	// initFailed marks a container whose initialization was chosen to
	// fail (FaultRates.InitFailure): it dies at warmAt instead of going
	// idle, and any invocation reserved on it fails.
	initFailed bool
	// faultKilled distinguishes fault-driven deaths (invoker crash, init
	// failure, exec kill) from benign keep-alive/eviction kills: waiters
	// on a fault-killed container fail instead of re-dispatching.
	// faultReason names the fault for failure results.
	faultKilled bool
	faultReason string
	// running/execTimer track the in-flight invocation while busy, so
	// crashes and timeouts can cancel the completion and fail it.
	running   *pendingInvocation
	execTimer *sim.Event
}
