package pool

import (
	"math"

	"aquatope/internal/faas"
	"aquatope/internal/telemetry"
)

// Manager drives pool policies against a cluster: it samples each managed
// function's instantaneous demand, folds it into per-minute history, and
// applies the policy's pre-warm target / keep-alive decision once per
// adjustment interval (1 minute by default, §4.3).
type Manager struct {
	cl *faas.Cluster
	// IntervalSec is the adjustment interval (default 60).
	IntervalSec float64
	// SamplesPerInterval sets the demand sampling resolution (default 12).
	SamplesPerInterval int
	// ApplyAfter delays policy decisions until this simulation time while
	// demand history is already being collected — the training window of
	// an end-to-end run.
	ApplyAfter float64
	// RewarmDelaySec is how long after an invoker crash the manager
	// re-asserts its last pre-warm targets, restoring the pool that died
	// with the invoker instead of waiting out the adjustment interval
	// (default 1 s — the surviving invokers' spawn latency dominates).
	RewarmDelaySec float64
	// Guard, when non-nil, enables degraded-mode fallback: when the
	// platform sheds heavily or the model's uncertainty band blows past
	// its calibration bound, pre-warm targets switch from the model's
	// decisions to a conservative recent-peak rule until the signals stay
	// clean for RecoverIntervals consecutive ticks.
	Guard *Guard

	entries []*entry
	started bool
	// Degraded-mode state (all zero when Guard is nil).
	degraded   bool
	cleanTicks int
	lastShed   int
}

// Guard configures degraded-mode fallback (ISSUE: overload protection).
// The zero value never trips; set at least one trigger.
type Guard struct {
	// ShedThreshold trips degraded mode when the platform sheds at least
	// this many invocations within one adjustment interval (0 = trigger
	// disabled).
	ShedThreshold int
	// UncertaintyFrac trips degraded mode when any managed function's
	// decision headroom (the policy's uncertainty band) exceeds
	// UncertaintyFrac × max(1, predicted demand) — the model is guessing,
	// so its targets are not to be trusted (0 = trigger disabled).
	UncertaintyFrac float64
	// PeakWindowMin is the trailing demand window whose peak sets the
	// degraded pre-warm target (default 10 minutes).
	PeakWindowMin int
	// RecoverIntervals is how many consecutive clean ticks restore
	// model-driven mode (default 3).
	RecoverIntervals int
}

func (g *Guard) peakWindow() int {
	if g.PeakWindowMin <= 0 {
		return 10
	}
	return g.PeakWindowMin
}

func (g *Guard) recoverIntervals() int {
	if g.RecoverIntervals <= 0 {
		return 3
	}
	return g.RecoverIntervals
}

type entry struct {
	fn     string
	policy Policy
	// history of finalized per-minute demand values.
	history []float64
	// offsetMin is the absolute minute index of history[0] (training data
	// length), keeping time-of-day features continuous.
	offsetMin int
	watermark float64
	// lastTarget remembers the most recent applied pre-warm target so pool
	// capacity lost to an invoker crash can be restored between ticks.
	lastTarget int
}

// NewManager returns a manager bound to a cluster.
func NewManager(cl *faas.Cluster) *Manager {
	return &Manager{cl: cl, IntervalSec: 60, SamplesPerInterval: 12, RewarmDelaySec: 1}
}

// Manage registers a function under a policy. offsetMin is the absolute
// minute index at which the run starts (the length of the policy's
// training history). Call before Start.
func (m *Manager) Manage(fn string, p Policy, offsetMin int) {
	m.entries = append(m.entries, &entry{fn: fn, policy: p, offsetMin: offsetMin})
}

// History returns the observed per-minute demand of a managed function.
func (m *Manager) History(fn string) []float64 {
	for _, e := range m.entries {
		if e.fn == fn {
			return append([]float64(nil), e.history...)
		}
	}
	return nil
}

// Start begins sampling and periodic adjustment on the cluster's engine.
func (m *Manager) Start() {
	if m.started {
		return
	}
	m.started = true
	eng := m.cl.Engine()
	sampleGap := m.IntervalSec / float64(m.SamplesPerInterval)
	var sample func()
	sample = func() {
		for _, e := range m.entries {
			d := float64(m.cl.Demand(e.fn))
			if d > e.watermark {
				e.watermark = d
			}
		}
		eng.After(sampleGap, sample)
	}
	var tick func()
	tick = func() {
		tr := m.cl.Tracer()
		apply := eng.Now() >= m.ApplyAfter
		// Pass 1: finalize demand history and collect every policy's
		// decision. Decisions are pure in cluster state (they see only
		// history), so hoisting them ahead of the applies preserves the
		// policy and cluster RNG streams exactly.
		decs := make([]Decision, len(m.entries))
		actuals := make([]float64, len(m.entries))
		for i, e := range m.entries {
			actuals[i] = e.watermark
			e.history = append(e.history, e.watermark)
			e.watermark = float64(m.cl.Demand(e.fn))
			if apply {
				minute := e.offsetMin + len(e.history)
				decs[i] = e.policy.Decide(e.history, minute)
			}
		}
		// Guard: trip or recover degraded mode on this tick's evidence.
		degraded, newSheds := m.updateGuard(decs, apply, tr)
		if apply {
			// Pass 2: apply — in degraded mode the pre-warm target falls
			// back to the conservative recent-peak rule.
			for i, e := range m.entries {
				dec := decs[i]
				if degraded {
					dec.Target = m.peakTarget(e)
				}
				if dec.KeepAlive > 0 {
					_ = m.cl.SetKeepAlive(e.fn, dec.KeepAlive)
				}
				if dec.Target >= 0 {
					_ = m.cl.SetPrewarmTarget(e.fn, dec.Target)
					e.lastTarget = dec.Target
				}
				if tr.Enabled() {
					// Explain record: the decision's inputs (forecast,
					// uncertainty band, observed demand, platform state)
					// alongside its outputs, so aquatrace can reconstruct
					// why each target was chosen (DESIGN.md §11).
					idle, warming, busy := m.cl.WarmCount(e.fn)
					f := telemetry.Fields{
						"predicted":      dec.Predicted,
						"headroom":       dec.Headroom,
						"target":         float64(dec.Target),
						"keepalive":      dec.KeepAlive,
						"actual":         actuals[i],
						"demand":         float64(m.cl.Demand(e.fn)),
						"idle":           float64(idle),
						"warming":        float64(warming),
						"busy":           float64(busy),
						"open_breakers":  float64(m.cl.OpenBreakers()),
						"sheds_interval": float64(newSheds),
						"why":            whyModel,
					}
					if degraded {
						f["degraded"] = 1
						f["why"] = whyDegraded
					}
					tr.Point(telemetry.KindPoolDecision, e.fn, 0, eng.Now(), f)
				}
			}
		}
		eng.After(m.IntervalSec, tick)
	}
	eng.After(sampleGap, sample)
	eng.After(m.IntervalSec, tick)
	// Recovery re-warming: when an invoker crashes, its warm containers die
	// with it. Re-assert the last pre-warm targets shortly after the crash
	// so the pool is rebuilt on the survivors instead of serving cold
	// starts until the next adjustment tick.
	m.cl.OnInvokerDown(func(invoker int) {
		delay := m.RewarmDelaySec
		if delay <= 0 {
			delay = 1
		}
		eng.After(delay, func() {
			tr := m.cl.Tracer()
			for _, e := range m.entries {
				if e.lastTarget <= 0 {
					continue
				}
				_ = m.cl.SetPrewarmTarget(e.fn, e.lastTarget)
				if tr.Enabled() {
					tr.Point(telemetry.KindPoolDecision, e.fn, 0, eng.Now(), telemetry.Fields{
						"target":  float64(e.lastTarget),
						"rewarm":  1,
						"invoker": float64(invoker),
						"why":     whyRewarm,
					})
				}
			}
		})
	})
}

// "why" codes recorded on pool.decision explain points.
const (
	whyModel    = 0 // model-driven forecast + headroom
	whyDegraded = 1 // guard tripped: recent-peak fallback
	whyRewarm   = 2 // re-assert targets after an invoker crash
)

// updateGuard drives the degraded-mode state machine on one tick's
// evidence (platform shed counters and the tick's decisions) and reports
// whether targets should fall back to the recent-peak rule, plus the shed
// count observed this interval (for the decision audit log). Mode changes
// emit an explicit pool.mode telemetry point.
func (m *Manager) updateGuard(decs []Decision, apply bool, tr telemetry.Tracer) (bool, int) {
	g := m.Guard
	if g == nil {
		return false, 0
	}
	// Track the shed counter every tick (training included) so the first
	// applied tick sees one interval's delta, not the whole training run.
	shed := m.cl.Metrics().ShedInvocations()
	newSheds := shed - m.lastShed
	m.lastShed = shed
	if !apply {
		return false, newSheds
	}
	trigger := 0.0 // 1 = admission sheds, 2 = model uncertainty
	if g.ShedThreshold > 0 && newSheds >= g.ShedThreshold {
		trigger = 1
	}
	if trigger == 0 && g.UncertaintyFrac > 0 {
		for _, d := range decs {
			if d.Headroom > g.UncertaintyFrac*math.Max(1, d.Predicted) {
				trigger = 2
				break
			}
		}
	}
	now := m.cl.Engine().Now()
	if trigger != 0 {
		m.cleanTicks = 0
		if !m.degraded {
			m.degraded = true
			if tr.Enabled() {
				tr.Point(telemetry.KindPoolMode, "pool", 0, now, telemetry.Fields{
					"mode":    1,
					"trigger": trigger,
					"sheds":   float64(newSheds),
				})
			}
		}
	} else if m.degraded {
		m.cleanTicks++
		if m.cleanTicks >= g.recoverIntervals() {
			m.degraded = false
			if tr.Enabled() {
				tr.Point(telemetry.KindPoolMode, "pool", 0, now, telemetry.Fields{
					"mode":    0,
					"trigger": 0,
					"sheds":   float64(newSheds),
				})
			}
		}
	}
	return m.degraded, newSheds
}

// peakTarget is the degraded-mode target: the ceiling of the trailing peak
// demand over the guard's window.
func (m *Manager) peakTarget(e *entry) int {
	w := m.Guard.peakWindow()
	start := len(e.history) - w
	if start < 0 {
		start = 0
	}
	peak := 0.0
	for _, v := range e.history[start:] {
		if v > peak {
			peak = v
		}
	}
	return int(math.Ceil(peak))
}

// Degraded reports whether the manager is currently in degraded mode.
func (m *Manager) Degraded() bool { return m.degraded }

// DemandSeries computes the per-minute concurrent-demand series implied by
// a set of arrivals with a given mean service time — the training signal
// for predictive policies. It counts, for each minute, the peak number of
// overlapping (arrival, arrival+service) intervals.
func DemandSeries(arrivals []float64, serviceSec float64, minutes int) []float64 {
	out := make([]float64, minutes)
	if serviceSec <= 0 {
		serviceSec = 1
	}
	// Sweep: events at start (+1) and end (-1), tracking per-minute max.
	type ev struct {
		t float64
		d int
	}
	evs := make([]ev, 0, 2*len(arrivals))
	for _, a := range arrivals {
		evs = append(evs, ev{a, +1}, ev{a + serviceSec, -1})
	}
	// Events are nearly sorted; insertion sort by time.
	for i := 1; i < len(evs); i++ {
		v := evs[i]
		j := i - 1
		for j >= 0 && evs[j].t > v.t {
			evs[j+1] = evs[j]
			j--
		}
		evs[j+1] = v
	}
	cur := 0
	for _, e := range evs {
		m := int(e.t / 60)
		cur += e.d
		if m >= 0 && m < minutes && float64(cur) > out[m] {
			out[m] = float64(cur)
		}
	}
	// Demand persists across minute boundaries for long-running work:
	// carry a floor of the running concurrency into each minute.
	cur = 0
	idx := 0
	for m := 0; m < minutes; m++ {
		boundary := float64(m) * 60
		for idx < len(evs) && evs[idx].t < boundary {
			cur += evs[idx].d
			idx++
		}
		if float64(cur) > out[m] {
			out[m] = float64(cur)
		}
	}
	return out
}

// Smooth applies a short trailing moving average, stabilizing noisy demand
// series before policy training.
func Smooth(xs []float64, window int) []float64 {
	if window <= 1 {
		return append([]float64(nil), xs...)
	}
	out := make([]float64, len(xs))
	var sum float64
	for i, x := range xs {
		sum += x
		if i >= window {
			sum -= xs[i-window]
		}
		n := math.Min(float64(window), float64(i+1))
		out[i] = sum / n
	}
	return out
}
