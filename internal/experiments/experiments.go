// Package experiments contains one reproducible harness per table and
// figure of the paper's evaluation (§8), exposed through the Experiment
// registry (see registry.go). Every harness is parameterized by a Scale so
// the same code serves quick CI runs and the full regeneration driven by
// cmd/aquabench; all randomness is seeded. The independent replications
// inside each harness run on the parallel replication engine
// (internal/experiments/runner), which preserves byte-identical same-seed
// output at any worker count. Each result type carries a Table method that
// prints the same rows/series the paper reports, plus a Rows method for
// mechanical (JSON) export.
package experiments

import (
	"fmt"
	"strings"

	"aquatope/internal/experiments/runner"
	"aquatope/internal/faas"
	"aquatope/internal/pool"
	"aquatope/internal/stats"
	"aquatope/internal/telemetry"
	"aquatope/internal/trace"
)

// Scale selects the experiment size.
type Scale struct {
	// TraceMin is the trace length in minutes; TrainMin the training
	// prefix.
	TraceMin, TrainMin int
	// Ensemble is the number of functions in cold-start experiments.
	Ensemble int
	// Repeats is the number of repetitions for search experiments
	// (paper: 30).
	Repeats int
	// SearchBudget is the profiling-sample budget per search.
	SearchBudget int
	// ModelEpochs scales neural-model training effort.
	ModelEpochs int
	// Parallel is the replication worker count handed to the runner
	// engine: 0 means runtime.GOMAXPROCS(0), 1 forces serial execution.
	// Any value produces identical results, tables and telemetry.
	Parallel int
	// Collector, when non-nil, receives the merged span stream of every
	// replication (end-to-end experiments; Fig. 17/18) in deterministic
	// submission order; Registry likewise collects merged metric
	// snapshots.
	Collector *telemetry.Collector
	Registry  *telemetry.Registry
	// Bench, when non-nil, accumulates per-experiment wall/busy timing
	// from the replication engine (aquabench -bench-out).
	Bench *runner.Bench
	Seed  int64
}

// engine builds the replication engine for one experiment run at this
// scale.
func (s Scale) engine(experiment string) *runner.Engine {
	return &runner.Engine{
		Experiment: experiment,
		Parallel:   s.Parallel,
		BaseSeed:   s.Seed,
		Collector:  s.Collector,
		Registry:   s.Registry,
		Bench:      s.Bench,
	}
}

// Quick is a minutes-scale configuration for tests and smoke benches.
// Training spans a full day so the calendar features cover every phase.
var Quick = Scale{
	TraceMin: 2160, TrainMin: 1440,
	Ensemble: 4, Repeats: 12, SearchBudget: 45, ModelEpochs: 6, Seed: 1,
}

// Full approximates the paper's scale (hours of wall-clock).
var Full = Scale{
	TraceMin: 4320, TrainMin: 2880,
	Ensemble: 12, Repeats: 10, SearchBudget: 60, ModelEpochs: 15, Seed: 1,
}

// aquatopePolicy builds the hybrid-Bayesian pool policy at this scale.
func (s Scale) aquatopePolicy(lite bool) *pool.Aquatope {
	cfg := pool.DefaultModelConfig(trace.FeatureDim)
	cfg.EncoderHidden = 20
	cfg.PredHidden = []int{20, 10}
	cfg.EncoderEpochs = s.ModelEpochs
	cfg.PredEpochs = s.ModelEpochs * 3
	cfg.MCSamples = 12
	cfg.LR = 0.01
	return &pool.Aquatope{ModelConfig: cfg, Window: 40, HeadroomZ: 3, Lite: lite,
		MaxTrainSamples: 500}
}

// workloadArchetype describes one function's trace pattern in the
// cold-start ensemble, echoing the Azure mixture: mostly semi-periodic
// rare functions, some episodic diurnal ones, a few dense seasonal ones.
type workloadArchetype int

const (
	archPeriodic workloadArchetype = iota
	archEpisodic
	archDense
)

// ensembleTrace synthesizes the i-th ensemble member's trace. The mixture
// is dominated by episodic workloads — short demand surges (tens of
// invocations per minute for a few minutes) separated by long quiet gaps —
// the minute-scale intermittency of the Azure traces that makes both
// keep-alive cold starts and keep-alive memory waste large, with
// semi-periodic (cron-like) members mixed in.
func ensembleTrace(i, traceMin int, seed int64) *trace.Trace {
	rng := stats.NewRNG(seed + int64(i)*101)
	arch := archPeriodic
	if i%3 == 2 {
		arch = archEpisodic
	}
	switch arch {
	case archPeriodic:
		return trace.SynthesizePeriodic(trace.PeriodicGenConfig{
			DurationMin: traceMin,
			PeriodMin:   rng.Uniform(18, 45),
			JitterFrac:  rng.Uniform(0.08, 0.2),
			ClumpMean:   rng.Uniform(1.5, 3.5),
			Diurnal:     rng.Uniform(0.3, 0.6),
			TriggerType: rng.Intn(trace.NumTriggerTypes),
			StartMinute: rng.Intn(trace.MinutesPerWeek),
			Seed:        rng.Int63(),
		})
	default:
		// Short Poisson-timed bursts: every invocation of a burst arrives
		// within the cold window, so reactive policies pay full ramps.
		return trace.Synthesize(trace.GenConfig{
			DurationMin:          traceMin,
			MeanRatePerMin:       rng.Uniform(0.05, 0.2),
			Diurnal:              rng.Uniform(0.5, 0.8),
			CV:                   rng.Uniform(1.5, 3),
			BurstEpisodesPerHour: rng.Uniform(1, 3),
			BurstDurationMin:     rng.Uniform(0.3, 1),
			BurstMultiplier:      rng.Uniform(60, 150),
			TriggerType:          rng.Intn(trace.NumTriggerTypes),
			StartMinute:          rng.Intn(trace.MinutesPerWeek),
			Seed:                 rng.Int63(),
		})
	}
}

// ensembleModel returns the i-th ensemble member's performance profile.
func ensembleModel(i int, seed int64) *faas.SyntheticModel {
	rng := stats.NewRNG(seed + int64(i)*211)
	m := faas.DefaultSyntheticModel()
	m.BaseExecSec = rng.Uniform(2, 8)
	m.ColdInitSec = rng.Uniform(1.5, 4)
	m.ColdExecPenalty = rng.Uniform(1.4, 2.2)
	m.CPUShare = rng.Uniform(0.4, 0.9)
	return m
}

// formatTable renders rows with aligned columns.
func formatTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// indexOf returns the position of x in xs, and whether it is present.
func indexOf(xs []string, x string) (int, bool) {
	for i, v := range xs {
		if v == x {
			return i, true
		}
	}
	return -1, false
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }
func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func f0(x float64) string  { return fmt.Sprintf("%.0f", x) }
