// Command aquatope runs the full Aquatope scheduler (pre-warmed container
// pool + container resource manager) over one of the paper's five
// applications on the simulated FaaS platform, and reports QoS compliance,
// cold-start rate and execution cost against a chosen baseline framework.
//
// Usage:
//
//	aquatope -app mlpipeline -system aquatope
//	aquatope -app socialnet -system icebreaker+clite -minutes 2880
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	"aquatope/internal/apps"
	"aquatope/internal/chaos"
	"aquatope/internal/core"
	"aquatope/internal/faas"
	"aquatope/internal/obs"
	"aquatope/internal/pool"
	"aquatope/internal/sched"
	"aquatope/internal/socialgraph"
	"aquatope/internal/telemetry"
	"aquatope/internal/trace"
	"aquatope/internal/workflow"
)

func buildApp(name string, seed int64) *apps.App {
	switch name {
	case "chain":
		return apps.NewChain(3)
	case "fanout":
		return apps.NewFanOutFanIn()
	case "mlpipeline":
		return apps.NewMLPipeline()
	case "videoproc":
		return apps.NewVideoProcessing()
	case "socialnet":
		// The follower graph drives per-post fan-out widths; derive it
		// from the run seed so reruns are reproducible but distinct
		// seeds explore different graphs.
		return apps.NewSocialNetwork(socialgraph.Reed98Like(seed))
	default:
		return nil
	}
}

func main() {
	appName := flag.String("app", "mlpipeline", "application: chain | fanout | mlpipeline | videoproc | socialnet")
	system := flag.String("system", "aquatope", "framework: aquatope | aqualite | autoscale | icebreaker+clite | keepalive")
	schedName := flag.String("scheduler", "", "pluggable scheduler from the internal/sched registry (overrides -system): "+strings.Join(sched.Names(), " | "))
	minutes := flag.Int("minutes", 2160, "trace length in minutes")
	trainMin := flag.Int("train", 1440, "training prefix in minutes")
	budget := flag.Int("budget", 30, "resource-search profiling budget")
	seed := flag.Int64("seed", 1, "random seed")
	chaosName := flag.String("chaos", "", "fault scenario: invoker-crash | container-churn | stragglers | mixed | random (enables the retry/timeout resilience layer)")
	traceOut := flag.String("trace-out", "", "write telemetry spans as JSONL to this file")
	metricsOut := flag.String("metrics-out", "", "write the metric registry snapshot as JSON to this file")
	telemetryAddr := flag.String("telemetry-addr", "", "serve live telemetry over HTTP on this address (/metrics Prometheus text, /analysis aquatrace JSON); keeps the process alive after the run until interrupted")
	flag.Parse()

	app := buildApp(*appName, *seed)
	if app == nil {
		fmt.Fprintf(os.Stderr, "unknown app %q\n", *appName)
		os.Exit(2)
	}

	tr := trace.Synthesize(trace.GenConfig{
		DurationMin:          *minutes,
		MeanRatePerMin:       0.8,
		Diurnal:              0.6,
		CV:                   2,
		BurstEpisodesPerHour: 1,
		BurstDurationMin:     10,
		BurstMultiplier:      6,
		Seed:                 *seed,
	})

	cfg := core.Config{
		Components:   []core.Component{{App: app, Trace: tr}},
		TrainMin:     *trainMin,
		SearchBudget: *budget,
		ProfileNoise: faas.Noise{GaussianStd: 0.15, OutlierRate: 0.02, OutlierScale: 3},
		RuntimeNoise: faas.Noise{GaussianStd: 0.1, OutlierRate: 0.01, OutlierScale: 3},
		Seed:         *seed,
	}
	if *chaosName != "" {
		scn, ok := chaos.Builtin(*chaosName, float64(*minutes)*60, *seed)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown chaos scenario %q (have: %v)\n", *chaosName, chaos.Names())
			os.Exit(2)
		}
		cfg.Chaos = scn
		// Fault injection without retries just loses workflows; pair the
		// scenario with the default resilience policy, bounding each
		// attempt by the app's QoS target.
		pol := workflow.DefaultRetryPolicy()
		pol.Timeout = app.QoS
		cfg.Resilience = &pol
	}
	var collector *telemetry.Collector
	if *traceOut != "" || *telemetryAddr != "" {
		collector = telemetry.NewCollector()
		cfg.Tracer = collector
	}
	registry := telemetry.NewRegistry()
	cfg.Registry = registry

	// dump flushes the telemetry files exactly once, whichever exit path
	// runs first (normal completion, run error, or an interrupt mid-run) —
	// a partial dump from a long run is still analyzable.
	var dumpOnce sync.Once
	dump := func() {
		dumpOnce.Do(func() {
			if collector != nil && *traceOut != "" {
				if err := collector.WriteJSONLFile(*traceOut); err != nil {
					fmt.Fprintln(os.Stderr, "writing trace:", err)
				} else {
					fmt.Fprintf(os.Stderr, "wrote %d spans to %s\n", collector.Len(), *traceOut)
				}
			}
			if *metricsOut != "" {
				if err := registry.WriteJSONFile(*metricsOut); err != nil {
					fmt.Fprintln(os.Stderr, "writing metrics:", err)
				} else {
					fmt.Fprintf(os.Stderr, "wrote metrics snapshot to %s\n", *metricsOut)
				}
			}
		})
	}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		dump()
		os.Exit(130)
	}()

	var srv *telemetryServer
	if *telemetryAddr != "" {
		var err error
		srv, err = serveTelemetry(*telemetryAddr, registry)
		if err != nil {
			fmt.Fprintln(os.Stderr, "telemetry server:", err)
			os.Exit(2)
		}
		fmt.Printf("serving telemetry on http://%s (/metrics, /analysis)\n", srv.addr)
	}
	label := *system
	if *schedName != "" {
		// -scheduler picks both halves (pool policy + resource manager)
		// from the pluggable registry and supersedes -system.
		s, ok := sched.New(*schedName, sched.Options{})
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown scheduler %q (have: %s)\n",
				*schedName, strings.Join(sched.Names(), " "))
			os.Exit(2)
		}
		cfg.Scheduler = s
		label = "scheduler/" + s.Name()
	} else {
		switch *system {
		case "aquatope":
			cfg.PoolFactory = aquaPool(false)
			cfg.ManagerFactory = core.AquatopeManagerFactory()
		case "aqualite":
			cfg.PoolFactory = aquaPool(true)
			cfg.ManagerFactory = core.AquatopeManagerFactory()
		case "autoscale":
			cfg.PoolFactory = core.AutoscalePoolFactory()
			cfg.ManagerFactory = core.AutoscaleManagerFactory()
		case "icebreaker+clite":
			cfg.PoolFactory = core.IceBreakerPoolFactory()
			cfg.ManagerFactory = core.CLITEManagerFactory()
		case "keepalive":
			cfg.PoolFactory = core.KeepAlivePoolFactory(600)
		default:
			fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
			os.Exit(2)
		}
	}

	fmt.Printf("running %s under %s: %d invocations over %d min (train %d min)\n",
		app.Name, label, len(tr.Arrivals), *minutes, *trainMin)
	res, err := core.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "run failed:", err)
		dump()
		os.Exit(1)
	}
	ar := res.PerApp[app.Name]
	fmt.Printf("\nworkflows completed:   %d\n", ar.Workflows)
	fmt.Printf("QoS (%.2fs) violations: %.1f%%\n", app.QoS, ar.ViolationRate()*100)
	if *chaosName != "" {
		fmt.Printf("  latency violations:  %d\n", ar.LatencyViolations)
		fmt.Printf("  failure violations:  %d\n", ar.FailureViolations)
		fmt.Printf("goodput:               %.1f%%\n", res.Goodput()*100)
		fmt.Printf("retries / hedges:      %d / %d\n", ar.Retries, ar.Hedges)
	}
	fmt.Printf("cold-start rate:       %.1f%%\n", res.ColdStartRate()*100)
	fmt.Printf("mean latency:          %.2fs\n", ar.MeanLatency)
	fmt.Printf("latency p50/p95/p99:   %.2fs / %.2fs / %.2fs\n", ar.P50, ar.P95, ar.P99)
	fmt.Printf("CPU time:              %.1f core-s\n", ar.CPUTime)
	fmt.Printf("memory time:           %.1f GB-s\n", ar.MemTime)
	fmt.Printf("provisioned memory:    %.1f GB-s\n", res.ProvisionedMemGBs)
	if len(ar.ChosenConfig) > 0 {
		fmt.Println("\nchosen configuration:")
		for _, fn := range app.FunctionNames() {
			c := ar.ChosenConfig[fn]
			fmt.Printf("  %-16s cpu=%.2g mem=%.0fMB\n", fn, c.CPU, c.MemoryMB)
		}
	}

	dump()
	if srv != nil {
		snap := registry.Snapshot()
		srv.publish(obs.Analyze(collector.Spans(), &snap, obs.Options{}))
		fmt.Printf("\nrun complete; telemetry stays live on http://%s — interrupt to exit\n", srv.addr)
		select {}
	}
}

// telemetryServer is the optional live exposition endpoint: /metrics serves
// the registry in Prometheus text format (live during the run), /analysis
// the aquatrace summary JSON (503 until the run completes).
type telemetryServer struct {
	addr     string
	mu       sync.Mutex
	analysis *obs.Analysis
}

func (s *telemetryServer) publish(a *obs.Analysis) {
	s.mu.Lock()
	s.analysis = a
	s.mu.Unlock()
}

func serveTelemetry(addr string, reg *telemetry.Registry) (*telemetryServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &telemetryServer{addr: ln.Addr().String()}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := reg.WritePromText(w); err != nil {
			fmt.Fprintln(os.Stderr, "telemetry: /metrics:", err)
		}
	})
	mux.HandleFunc("/analysis", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		a := s.analysis
		s.mu.Unlock()
		if a == nil {
			http.Error(w, "analysis pending: run still in progress", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := a.WriteJSON(w); err != nil {
			fmt.Fprintln(os.Stderr, "telemetry: /analysis:", err)
		}
	})
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintln(os.Stderr, "telemetry server:", err)
		}
	}()
	return s, nil
}

func aquaPool(lite bool) core.PolicyFactory {
	return func(fn string) pool.Policy {
		cfg := pool.DefaultModelConfig(trace.FeatureDim)
		cfg.EncoderHidden = 20
		cfg.PredHidden = []int{20, 10}
		cfg.EncoderEpochs = 8
		cfg.PredEpochs = 24
		cfg.MCSamples = 12
		cfg.LR = 0.01
		return &pool.Aquatope{ModelConfig: cfg, Window: 40, HeadroomZ: 2.5, Lite: lite}
	}
}
