package faas

import (
	"testing"

	"aquatope/internal/sim"
)

// TestInvokerCrashFailsInFlight: crashing every invoker while an invocation
// runs fails it with OutcomeFailed/"invoker-crash" and partial exec time;
// after recovery the function cold-starts and succeeds again.
func TestInvokerCrashFailsInFlight(t *testing.T) {
	eng, cl := newTestCluster(t)
	register(t, cl, "f", &testModel{init: 1, exec: 10}, ResourceConfig{CPU: 1, MemoryMB: 128})
	var results []InvocationResult
	cl.Invoke("f", 1, func(r InvocationResult) { results = append(results, r) })
	// Execution runs over [1, 11); crash both invokers mid-flight at t=3.
	eng.Schedule(3, func() {
		cl.CrashInvoker(0)
		cl.CrashInvoker(1)
	})
	eng.RunUntil(20)
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1", len(results))
	}
	r := results[0]
	if r.Outcome != OutcomeFailed || r.FailureReason != "invoker-crash" {
		t.Fatalf("outcome = %v (%q), want failed/invoker-crash", r.Outcome, r.FailureReason)
	}
	if r.ExecTime != 2 { // started at t=1, killed at t=3
		t.Fatalf("partial exec = %v, want 2", r.ExecTime)
	}
	if cl.Metrics().FailedInvocations() != 1 || cl.Metrics().InvokerCrashes() != 2 {
		t.Fatalf("metrics: failed=%d crashes=%d", cl.Metrics().FailedInvocations(), cl.Metrics().InvokerCrashes())
	}

	// Both invokers down: a new invocation queues but cannot run.
	var blocked *InvocationResult
	eng.Schedule(21, func() { cl.Invoke("f", 1, func(r InvocationResult) { blocked = &r }) })
	eng.RunUntil(30)
	if blocked != nil {
		t.Fatalf("invocation completed with all invokers down: %+v", blocked)
	}
	// Recovery drains the queue; the run is a cold start on a fresh container.
	eng.Schedule(31, func() { cl.RecoverInvoker(0) })
	eng.RunUntil(100)
	if blocked == nil {
		t.Fatal("queued invocation never ran after recovery")
	}
	if !blocked.OK() || !blocked.ColdStart {
		t.Fatalf("post-recovery result = %+v, want cold success", *blocked)
	}
}

// TestCrashedInvokerNotRouted: with one invoker down, every new container
// lands on the survivor, and recovery makes the crashed invoker usable again.
func TestCrashedInvokerNotRouted(t *testing.T) {
	eng, cl := newTestCluster(t)
	register(t, cl, "f", &testModel{init: 1, exec: 1}, ResourceConfig{CPU: 1, MemoryMB: 128})
	cl.CrashInvoker(0)
	done := 0
	for i := 0; i < 4; i++ {
		cl.Invoke("f", 1, func(r InvocationResult) {
			if r.OK() {
				done++
			}
		})
	}
	eng.RunUntil(50)
	if done != 4 {
		t.Fatalf("completed %d/4 with one invoker down", done)
	}
	if mem := cl.Invokers()[0].MemoryInUseMB(); mem != 0 {
		t.Fatalf("crashed invoker holds %v MB of containers", mem)
	}
}

// TestInitFailure: with InitFailure=1 every container dies at warm-up and
// the reserved invocation fails with "init-failure".
func TestInitFailure(t *testing.T) {
	eng, cl := newTestCluster(t)
	register(t, cl, "f", &testModel{init: 1, exec: 1}, ResourceConfig{CPU: 1, MemoryMB: 128})
	cl.SetFaultRates(FaultRates{InitFailure: 1})
	var res *InvocationResult
	cl.Invoke("f", 1, func(r InvocationResult) { res = &r })
	eng.RunUntil(20)
	if res == nil {
		t.Fatal("no result")
	}
	if res.Outcome != OutcomeFailed || res.FailureReason != "init-failure" {
		t.Fatalf("outcome = %v (%q), want failed/init-failure", res.Outcome, res.FailureReason)
	}
	if cl.Metrics().InitFailures() == 0 {
		t.Fatal("init failure not counted")
	}
}

// TestExecKill: with ExecKill=1 the invocation is killed at a uniform point
// of its execution: it fails with partial exec time in (0, exec).
func TestExecKill(t *testing.T) {
	eng, cl := newTestCluster(t)
	register(t, cl, "f", &testModel{init: 1, exec: 10}, ResourceConfig{CPU: 1, MemoryMB: 128})
	cl.SetFaultRates(FaultRates{ExecKill: 1})
	var res *InvocationResult
	cl.Invoke("f", 1, func(r InvocationResult) { res = &r })
	eng.RunUntil(50)
	if res == nil {
		t.Fatal("no result")
	}
	if res.Outcome != OutcomeFailed || res.FailureReason != "container-kill" {
		t.Fatalf("outcome = %v (%q), want failed/container-kill", res.Outcome, res.FailureReason)
	}
	if res.ExecTime <= 0 || res.ExecTime >= 10 {
		t.Fatalf("partial exec = %v, want in (0, 10)", res.ExecTime)
	}
}

// TestInvokeTimeout: a deadline below the execution time fails the
// invocation with OutcomeTimedOut and reclaims the container.
func TestInvokeTimeout(t *testing.T) {
	eng, cl := newTestCluster(t)
	register(t, cl, "f", &testModel{init: 1, exec: 10}, ResourceConfig{CPU: 1, MemoryMB: 128})
	var res *InvocationResult
	err := cl.InvokeOpts("f", InvokeOptions{InputSize: 1, Timeout: 3}, func(r InvocationResult) { res = &r })
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(50)
	if res == nil {
		t.Fatal("no result")
	}
	if res.Outcome != OutcomeTimedOut || res.FailureReason != "timeout" {
		t.Fatalf("outcome = %v (%q), want timed-out/timeout", res.Outcome, res.FailureReason)
	}
	if res.EndTime != 3 {
		t.Fatalf("timed out at %v, want 3", res.EndTime)
	}
	if cl.Metrics().TimedOutInvocations() != 1 {
		t.Fatal("timeout not counted")
	}
	// A later invocation succeeds normally.
	var ok *InvocationResult
	cl.Invoke("f", 1, func(r InvocationResult) { ok = &r })
	eng.RunUntil(100)
	if ok == nil || !ok.OK() {
		t.Fatalf("post-timeout invocation = %+v, want success", ok)
	}
}

// TestQueuedTimeout: a deadline expiring while the invocation still waits in
// the queue fails it without it ever running.
func TestQueuedTimeout(t *testing.T) {
	eng := sim.NewEngine()
	// One invoker with capacity for a single container.
	cl := NewCluster(eng, Config{Invokers: 1, CPUPerInvoker: 1, MemoryPerInvokerMB: 128, DefaultKeepAlive: 60, Seed: 1})
	register(t, cl, "f", &testModel{init: 1, exec: 10}, ResourceConfig{CPU: 1, MemoryMB: 128})
	var first, second *InvocationResult
	cl.Invoke("f", 1, func(r InvocationResult) { first = &r })
	if err := cl.InvokeOpts("f", InvokeOptions{InputSize: 1, Timeout: 2}, func(r InvocationResult) { second = &r }); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(50)
	if second == nil {
		t.Fatal("queued invocation has no result")
	}
	if second.Outcome != OutcomeTimedOut || second.ExecTime != 0 {
		t.Fatalf("queued timeout = %+v, want timed-out with zero exec", *second)
	}
	if first == nil || !first.OK() {
		t.Fatalf("first invocation = %+v, want success", first)
	}
}

// TestStragglerSlowdown: a straggler factor multiplies execution time on the
// affected invoker and clears when reset.
func TestStragglerSlowdown(t *testing.T) {
	eng := sim.NewEngine()
	cl := NewCluster(eng, Config{Invokers: 1, CPUPerInvoker: 8, MemoryPerInvokerMB: 4096, DefaultKeepAlive: 60, Seed: 1})
	register(t, cl, "f", &testModel{init: 1, exec: 2}, ResourceConfig{CPU: 1, MemoryMB: 128})
	cl.SetStraggler(0, 3)
	var slow, fast *InvocationResult
	cl.Invoke("f", 1, func(r InvocationResult) { slow = &r })
	eng.RunUntil(20)
	cl.SetStraggler(0, 1)
	cl.Invoke("f", 1, func(r InvocationResult) { fast = &r })
	eng.RunUntil(40)
	if slow == nil || fast == nil {
		t.Fatal("missing results")
	}
	if slow.ExecTime != 6 {
		t.Fatalf("straggler exec = %v, want 6", slow.ExecTime)
	}
	if fast.ExecTime != 2 {
		t.Fatalf("recovered exec = %v, want 2", fast.ExecTime)
	}
}

// TestZeroFaultRatesUnchanged: arming then clearing fault rates draws
// nothing from the fault RNG, so a zero-rate cluster behaves identically to
// one that never had a fault model.
func TestZeroFaultRatesUnchanged(t *testing.T) {
	run := func(touch bool) []InvocationResult {
		eng, cl := newTestCluster(t)
		register(t, cl, "f", &testModel{init: 1, exec: 2}, ResourceConfig{CPU: 1, MemoryMB: 128})
		if touch {
			cl.SetFaultRates(FaultRates{InitFailure: 0.5, ExecKill: 0.5})
			cl.SetFaultRates(FaultRates{})
		}
		var out []InvocationResult
		for i := 0; i < 5; i++ {
			at := float64(i) * 3
			eng.Schedule(at, func() { cl.Invoke("f", 1, func(r InvocationResult) { out = append(out, r) }) })
		}
		eng.RunUntil(200)
		return out
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("result counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}
