package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WritePromText renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples, histograms
// as cumulative _bucket/_sum/_count families. Metric names are written in
// sorted order and values with shortest-roundtrip formatting, so the same
// snapshot always renders byte-identically.
func (s Snapshot) WritePromText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name)
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %s\n", pn, pn, promVal(s.Counters[name]))
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", pn, pn, promVal(s.Gauges[name]))
	}
	hnames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := s.Histograms[name]
		pn := promName(name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", pn)
		cum := uint64(0)
		for _, b := range h.Buckets {
			cum += b.N
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", pn, promVal(b.LE), cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		fmt.Fprintf(bw, "%s_sum %s\n", pn, promVal(h.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", pn, h.Count)
	}
	return bw.Flush()
}

// WritePromText snapshots the registry and renders it in the Prometheus
// text exposition format. Safe to call concurrently with metric updates.
func (r *Registry) WritePromText(w io.Writer) error {
	return r.Snapshot().WritePromText(w)
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// promName maps a registry name onto the Prometheus metric-name alphabet
// [a-zA-Z0-9_:]; the convention's dots become underscores.
func promName(name string) string {
	b := []byte(name)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9' && i > 0:
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

func promVal(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
