package faas

import (
	"math"
	"testing"

	"aquatope/internal/sim"
	"aquatope/internal/telemetry"
)

func gaugeVal(t *testing.T, cl *Cluster, name string) float64 {
	t.Helper()
	return cl.Metrics().Registry().Gauge(name).Value()
}

// TestUtilizationIntegrals walks one cold invocation through its full
// lifecycle — warm-up, execution, keep-alive idle, expiry — and checks the
// flushed per-invoker time integrals against the exact closed-form values.
func TestUtilizationIntegrals(t *testing.T) {
	eng := sim.NewEngine()
	cl := NewCluster(eng, Config{Invokers: 1, CPUPerInvoker: 8, MemoryPerInvokerMB: 4096, DefaultKeepAlive: 60, Seed: 1})
	register(t, cl, "f", &testModel{init: 2, exec: 1}, ResourceConfig{CPU: 1, MemoryMB: 128})

	if err := cl.Invoke("f", 1, nil); err != nil {
		t.Fatal(err)
	}
	// Timeline: warming [0,2), busy [2,3), idle [3,63), killed at t=63
	// (keep-alive), then an empty invoker until the flush at t=100.
	eng.RunUntil(100)
	cl.Flush()

	approx := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	approx("busy_s", gaugeVal(t, cl, telemetry.MetricInvokerBusyS+".0"), 1)
	approx("active_s", gaugeVal(t, cl, telemetry.MetricInvokerActiveS+".0"), 63)
	approx("idle_s", gaugeVal(t, cl, telemetry.MetricInvokerIdleS+".0"), 62)
	approx("cpu_core_s", gaugeVal(t, cl, telemetry.MetricInvokerCPUCoreS+".0"), 1)
	approx("mem_gb_s", gaugeVal(t, cl, telemetry.MetricInvokerMemGBs+".0"), 128.0*63/1024)
	approx("warm_spare_s", gaugeVal(t, cl, telemetry.MetricInvokerWarmSpareS+".0"), 60)
	approx("created", gaugeVal(t, cl, telemetry.MetricInvokerCreated+".0"), 1)
	approx("killed", gaugeVal(t, cl, telemetry.MetricInvokerKilled+".0"), 1)
	// Bin-packing efficiency: 128 MB held over the whole 63 s active window
	// on a 4096 MB invoker.
	approx("binpack", gaugeVal(t, cl, telemetry.MetricBinPackEfficiency), 128.0/4096)
	// Fleet CPU utilization: 1 core-second of demand over 8 cores × 100 s.
	approx("fleet_cpu_util", gaugeVal(t, cl, telemetry.MetricFleetCPUUtil), 1.0/800)
}

// TestUtilizationConcurrent checks the core-seconds integral under CPU
// overlap: two invocations running simultaneously must integrate both cores.
func TestUtilizationConcurrent(t *testing.T) {
	eng := sim.NewEngine()
	cl := NewCluster(eng, Config{Invokers: 1, CPUPerInvoker: 8, MemoryPerInvokerMB: 4096, DefaultKeepAlive: 5, Seed: 1})
	register(t, cl, "f", &testModel{init: 2, exec: 2}, ResourceConfig{CPU: 2, MemoryMB: 256})

	// Two submissions at t=0 cold-start two containers: warming [0,2),
	// both busy [2,3) (exec 2/2 CPU = 1 s), idle [3,8), killed at t=8.
	if err := cl.Invoke("f", 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := cl.Invoke("f", 1, nil); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(20)
	cl.Flush()

	if got, want := gaugeVal(t, cl, telemetry.MetricInvokerCPUCoreS+".0"), 4.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("cpu_core_s = %v, want %v (2 cores × 1 s × 2 containers)", got, want)
	}
	if got, want := gaugeVal(t, cl, telemetry.MetricInvokerBusyS+".0"), 1.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("busy_s = %v, want %v (the two runs overlap exactly)", got, want)
	}
	if got, want := gaugeVal(t, cl, telemetry.MetricInvokerWarmSpareS+".0"), 10.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("warm_spare_s = %v, want %v (2 idle containers × 5 s)", got, want)
	}
}
