package workflow

import (
	"testing"
	"testing/quick"

	"aquatope/internal/faas"
	"aquatope/internal/sim"
	"aquatope/internal/stats"
)

// randomDAG builds a random acyclic workflow over nStages stages where
// stage i may depend on any earlier stage.
func randomDAG(nStages int, rng *stats.RNG) *DAG {
	stages := make([]Stage, nStages)
	for i := range stages {
		stages[i] = Stage{
			Name:     stageName(i),
			Function: "f",
			Width:    1 + rng.Intn(3),
		}
		for j := 0; j < i; j++ {
			if rng.Bernoulli(0.3) {
				stages[i].Deps = append(stages[i].Deps, stageName(j))
			}
		}
	}
	d, err := NewDAG("rand", stages)
	if err != nil {
		panic(err)
	}
	return d
}

func stageName(i int) string { return string(rune('a' + i)) }

// TestPropertyWorkflowCompletesAndLatencyBounds: every random DAG completes,
// its end-to-end latency is at least the longest single invocation and at
// most the sum of all invocation latencies.
func TestPropertyWorkflowCompletesAndLatencyBounds(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		nStages := int(sizeRaw)%6 + 1
		rng := stats.NewRNG(seed)
		eng := sim.NewEngine()
		cl := faas.NewCluster(eng, faas.Config{Invokers: 2, CPUPerInvoker: 64, MemoryPerInvokerMB: 1 << 20, Seed: seed})
		m := faas.DefaultSyntheticModel()
		m.BaseExecSec = 0.2 + rng.Float64()
		if err := cl.RegisterFunction(faas.FunctionSpec{Name: "f", Model: m}, faas.ResourceConfig{CPU: 1, MemoryMB: 512}); err != nil {
			return false
		}
		d := randomDAG(nStages, rng)
		ex := NewExecutor(cl)
		var res *Result
		if err := ex.Execute(d, 1, nil, func(r Result) { res = &r }); err != nil {
			return false
		}
		eng.Run()
		if res == nil {
			return false
		}
		var maxLat, sumLat float64
		n := 0
		for _, rs := range res.PerStage {
			for _, ir := range rs {
				l := ir.Latency()
				if l > maxLat {
					maxLat = l
				}
				sumLat += l
				n++
			}
		}
		if n != res.Invocations {
			return false
		}
		e2e := res.Latency()
		return e2e >= maxLat-1e-9 && e2e <= sumLat+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCostAdditivity: workflow CPU/mem time equals the sum over
// stage invocations, and Cost is linear in its weights.
func TestPropertyCostAdditivity(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		eng := sim.NewEngine()
		cl := faas.NewCluster(eng, faas.Config{Invokers: 2, CPUPerInvoker: 64, MemoryPerInvokerMB: 1 << 20, Seed: seed})
		m := faas.DefaultSyntheticModel()
		cl.RegisterFunction(faas.FunctionSpec{Name: "f", Model: m}, faas.ResourceConfig{CPU: 2, MemoryMB: 1024})
		d := randomDAG(4, rng)
		ex := NewExecutor(cl)
		var res *Result
		ex.Execute(d, 1, nil, func(r Result) { res = &r })
		eng.Run()
		if res == nil {
			return false
		}
		var cpu, mem float64
		for _, rs := range res.PerStage {
			for _, ir := range rs {
				cpu += ir.CostCPUTime()
				mem += ir.CostMemTime()
			}
		}
		if abs(cpu-res.CPUTime()) > 1e-9 || abs(mem-res.MemTime()) > 1e-9 {
			return false
		}
		// Linearity of Cost.
		return abs(res.Cost(2, 3)-(2*cpu+3*mem)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
