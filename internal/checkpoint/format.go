package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// The AQCP container layout (all fixed integers little-endian u32):
//
//	"AQCP" | version | headerLen header crc32(header)
//	     | sectionCount
//	     | { nameLen name bodyLen body crc32(name‖body) } × sectionCount
//	     | crc32(everything above)
//
// The header is an opaque blob owned by the producer (internal/serve encodes
// seed, virtual time, interval index, journal position and config digest into
// it with an Encoder). Sections are named component snapshots. Every layer is
// CRC-guarded and length-validated so truncation or bit flips anywhere are
// detected before any byte reaches a Restorer.

// Magic identifies an AQCP checkpoint file.
const Magic = "AQCP"

// Version is the current format version. Decode rejects any other value:
// snapshot state is tightly coupled to component struct layout, so skew
// always means "refuse and re-run" rather than best-effort migration.
const Version uint32 = 1

// Section is one named component snapshot inside a File.
type Section struct {
	Name string
	Data []byte
}

// File is a decoded (or to-be-encoded) checkpoint container.
type File struct {
	Version  uint32
	Header   []byte
	Sections []Section
}

// Section returns the named section's bytes.
func (f *File) Section(name string) ([]byte, bool) {
	for _, s := range f.Sections {
		if s.Name == name {
			return s.Data, true
		}
	}
	return nil, false
}

// AddSection appends a named section. Names must be unique; producers add
// them in sorted order so equal state yields equal files.
func (f *File) AddSection(name string, data []byte) {
	f.Sections = append(f.Sections, Section{Name: name, Data: data})
}

// SortSections orders sections by name, the canonical on-disk order.
func (f *File) SortSections() {
	sort.Slice(f.Sections, func(i, j int) bool { return f.Sections[i].Name < f.Sections[j].Name })
}

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

// Encode serializes the container. Sections are written in their current
// order; call SortSections first for canonical output.
func (f *File) Encode() []byte {
	buf := make([]byte, 0, 256)
	buf = append(buf, Magic...)
	buf = appendU32(buf, Version)
	buf = appendU32(buf, uint32(len(f.Header)))
	buf = append(buf, f.Header...)
	buf = appendU32(buf, crc32.ChecksumIEEE(f.Header))
	buf = appendU32(buf, uint32(len(f.Sections)))
	for _, s := range f.Sections {
		buf = appendU32(buf, uint32(len(s.Name)))
		buf = append(buf, s.Name...)
		buf = appendU32(buf, uint32(len(s.Data)))
		buf = append(buf, s.Data...)
		crc := crc32.NewIEEE()
		crc.Write([]byte(s.Name)) //aqualint:allow droppederr hash.Hash Write never returns an error
		crc.Write(s.Data)         //aqualint:allow droppederr hash.Hash Write never returns an error
		buf = appendU32(buf, crc.Sum32())
	}
	buf = appendU32(buf, crc32.ChecksumIEEE(buf))
	return buf
}

type reader struct {
	data []byte
	off  int
}

func (r *reader) u32(what string) (uint32, error) {
	if r.off+4 > len(r.data) {
		return 0, corrupt("truncated %s at offset %d", what, r.off)
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) bytes(n uint32, what string) ([]byte, error) {
	if uint64(r.off)+uint64(n) > uint64(len(r.data)) {
		return nil, corrupt("truncated %s: need %d bytes at offset %d, have %d", what, n, r.off, len(r.data)-r.off)
	}
	b := r.data[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

// Decode parses and fully validates an AQCP container. It returns an error —
// never panics, never a partial File — on truncation, bit flips (CRC
// mismatch at any layer), version skew, duplicate section names, or trailing
// garbage.
func Decode(data []byte) (*File, error) {
	r := &reader{data: data}
	magic, err := r.bytes(4, "magic")
	if err != nil {
		return nil, err
	}
	if string(magic) != Magic {
		return nil, corrupt("bad magic %q", magic)
	}
	version, err := r.u32("version")
	if err != nil {
		return nil, err
	}
	if version != Version {
		return nil, fmt.Errorf("%w: unsupported snapshot version %d (supported: %d)", ErrCorrupt, version, Version)
	}
	// Whole-file CRC first: it catches any corruption in one shot.
	if len(data) < r.off+4 {
		return nil, corrupt("truncated file")
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, corrupt("file checksum mismatch")
	}
	r.data = body // keep the trailer out of section parsing

	hlen, err := r.u32("header length")
	if err != nil {
		return nil, err
	}
	header, err := r.bytes(hlen, "header")
	if err != nil {
		return nil, err
	}
	hcrc, err := r.u32("header checksum")
	if err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(header) != hcrc {
		return nil, corrupt("header checksum mismatch")
	}
	count, err := r.u32("section count")
	if err != nil {
		return nil, err
	}
	f := &File{Version: version, Header: append([]byte(nil), header...)}
	seen := make(map[string]bool, count)
	for i := uint32(0); i < count; i++ {
		nlen, err := r.u32("section name length")
		if err != nil {
			return nil, err
		}
		nameB, err := r.bytes(nlen, "section name")
		if err != nil {
			return nil, err
		}
		name := string(nameB)
		if seen[name] {
			return nil, corrupt("duplicate section %q", name)
		}
		seen[name] = true
		blen, err := r.u32("section body length")
		if err != nil {
			return nil, err
		}
		bodyB, err := r.bytes(blen, "section body")
		if err != nil {
			return nil, err
		}
		scrc, err := r.u32("section checksum")
		if err != nil {
			return nil, err
		}
		crc := crc32.NewIEEE()
		crc.Write(nameB) //aqualint:allow droppederr hash.Hash Write never returns an error
		crc.Write(bodyB) //aqualint:allow droppederr hash.Hash Write never returns an error
		if crc.Sum32() != scrc {
			return nil, corrupt("section %q checksum mismatch", name)
		}
		f.AddSection(name, append([]byte(nil), bodyB...))
	}
	if r.off != len(r.data) {
		return nil, corrupt("%d trailing bytes after sections", len(r.data)-r.off)
	}
	return f, nil
}

// WriteFile writes the container atomically: encode to path.tmp, fsync,
// rename over path, fsync the directory. A crash at any point leaves either
// the previous file intact or the new one complete — never a torn mix.
func WriteFile(path string, f *File) error {
	data := f.Encode()
	dir := filepath.Dir(path)
	tmp := path + ".tmp"
	fd, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := fd.Write(data); err != nil {
		_ = fd.Close()     //aqualint:allow droppederr best-effort cleanup on an already-failing write path
		_ = os.Remove(tmp) //aqualint:allow droppederr best-effort cleanup on an already-failing write path
		return err
	}
	if err := fd.Sync(); err != nil {
		_ = fd.Close()     //aqualint:allow droppederr best-effort cleanup on an already-failing write path
		_ = os.Remove(tmp) //aqualint:allow droppederr best-effort cleanup on an already-failing write path
		return err
	}
	if err := fd.Close(); err != nil {
		_ = os.Remove(tmp) //aqualint:allow droppederr best-effort cleanup on an already-failing write path
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp) //aqualint:allow droppederr best-effort cleanup on an already-failing write path
		return err
	}
	if d, err := os.Open(dir); err == nil {
		// Directory fsync is best-effort durability for the rename; a
		// failure cannot un-rename the complete file.
		_ = d.Sync()  //aqualint:allow droppederr rename already durable-complete; dir fsync is best-effort
		_ = d.Close() //aqualint:allow droppederr read-only directory handle
	}
	return nil
}

// ReadFile reads and validates a checkpoint file.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}
