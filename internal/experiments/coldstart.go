package experiments

import (
	"fmt"

	"aquatope/internal/experiments/runner"
	"aquatope/internal/faas"
	"aquatope/internal/pool"
	"aquatope/internal/timeseries"
	"aquatope/internal/trace"
)

// coldStartPolicies returns the Fig. 9 policy lineup, freshly constructed.
func (s Scale) coldStartPolicies() []func() pool.Policy {
	return []func() pool.Policy{
		func() pool.Policy { return &pool.FixedKeepAlive{Duration: 600} },
		func() pool.Policy { return &pool.Autoscale{} },
		func() pool.Policy { return &pool.Histogram{} },
		func() pool.Policy { return &pool.FaaSCache{} },
		func() pool.Policy { return &pool.IceBreaker{} },
		func() pool.Policy { return s.aquatopePolicy(false) },
	}
}

// Fig9Result reports cold-start rate (Fig. 9a) and provisioned memory time
// (Fig. 9b, relative to keep-alive = 100) per policy.
type Fig9Result struct {
	Order     []string
	ColdRate  map[string]float64
	MemGBs    map[string]float64
	RelMemPct map[string]float64 // % of the keep-alive baseline
}

// Table renders both panels.
func (r Fig9Result) Table() string {
	return formatTable(r.Rows())
}

// Rows implements Result.
func (r Fig9Result) Rows() ([]string, [][]string) {
	rows := make([][]string, 0, len(r.Order))
	for _, name := range r.Order {
		rows = append(rows, []string{name, pct(r.ColdRate[name]),
			f0(r.MemGBs[name]), f0(r.RelMemPct[name]) + "%"})
	}
	return []string{"Policy", "ColdStart", "MemGBs", "Mem(%Keep)"}, rows
}

// fig9Rep is one (policy, ensemble member) replication's raw counts.
type fig9Rep struct {
	name        string
	cold, total float64
	memGBs      float64
}

// Fig9 replays the workload ensemble under each cold-start policy and
// aggregates invocation-weighted cold-start rates and provisioned memory.
// Each (policy, ensemble member) pair is one replication.
func Fig9(s Scale) Fig9Result {
	var jobs []runner.Job[fig9Rep]
	for _, mk := range s.coldStartPolicies() {
		mk := mk
		name := mk().Name()
		for i := 0; i < s.Ensemble; i++ {
			i := i
			jobs = append(jobs, runner.Job[fig9Rep]{Cell: name, Rep: i,
				Run: func(runner.Ctx) (fig9Rep, error) {
					r := pool.Run(pool.RunConfig{
						Trace:     ensembleTrace(i, s.TraceMin, s.Seed),
						TrainMin:  s.TrainMin,
						Model:     ensembleModel(i, s.Seed),
						Resources: faas.ResourceConfig{CPU: 1, MemoryMB: 512},
						Policy:    mk(),
						Seed:      s.Seed + int64(i),
					})
					return fig9Rep{name: name, cold: float64(r.ColdStarts),
						total: float64(r.Invocations), memGBs: r.ProvisionedMemGBs}, nil
				}})
		}
	}
	reps := runner.MustRun(s.engine("fig9"), jobs)

	res := Fig9Result{
		ColdRate:  make(map[string]float64),
		MemGBs:    make(map[string]float64),
		RelMemPct: make(map[string]float64),
	}
	cold := make(map[string][2]float64) // cold, total
	for _, rep := range reps {          // index order: deterministic float sums
		c := cold[rep.name]
		c[0] += rep.cold
		c[1] += rep.total
		cold[rep.name] = c
		res.MemGBs[rep.name] += rep.memGBs
		if _, seen := indexOf(res.Order, rep.name); !seen {
			res.Order = append(res.Order, rep.name)
		}
	}
	for name, c := range cold {
		if c[1] > 0 {
			res.ColdRate[name] = c[0] / c[1]
		}
	}
	base := res.MemGBs["keepalive"]
	for name, m := range res.MemGBs {
		if base > 0 {
			res.RelMemPct[name] = m / base * 100
		}
	}
	return res
}

// ---------------------------------------------------------------------------

// Fig10Result compares IceBreaker and Aquatope cold-start rates across
// workloads with growing inter-arrival CV.
type Fig10Result struct {
	CVs      []float64
	IceBrk   []float64
	Aquatope []float64
}

// Table renders the Fig. 10 series.
func (r Fig10Result) Table() string {
	return formatTable(r.Rows())
}

// Rows implements Result.
func (r Fig10Result) Rows() ([]string, [][]string) {
	rows := make([][]string, len(r.CVs))
	for i := range r.CVs {
		rows[i] = []string{f2(r.CVs[i]), pct(r.IceBrk[i]), pct(r.Aquatope[i])}
	}
	return []string{"CV", "IceBreaker", "Aquatope"}, rows
}

// fig10Cell is one (CV target, policy) replication: the realized trace CV
// plus the measured cold-start rate.
type fig10Cell struct {
	cv, coldRate float64
}

// fig10Trace synthesizes the CV-sweep trace for one target CV.
func fig10Trace(s Scale, cv float64) *trace.Trace {
	return trace.Synthesize(trace.GenConfig{
		DurationMin:          s.TraceMin,
		MeanRatePerMin:       1.2,
		Diurnal:              0.6,
		CV:                   cv,
		BurstEpisodesPerHour: 0.8 * cv / 2,
		BurstDurationMin:     10,
		BurstMultiplier:      4 + 2*cv,
		Seed:                 s.Seed + int64(cv*100),
	})
}

// Fig10 sweeps the trace coefficient of variation and measures the
// cold-start rate of IceBreaker (best prior work) vs Aquatope. Each
// (CV, policy) pair is one replication; both policies of a CV synthesize
// the identical seeded trace independently.
func Fig10(s Scale) Fig10Result {
	cvs := []float64{0.25, 1, 2, 3, 4}
	policies := []struct {
		name string
		mk   func() pool.Policy
	}{
		{"icebreaker", func() pool.Policy { return &pool.IceBreaker{} }},
		{"aquatope", func() pool.Policy { return s.aquatopePolicy(false) }},
	}
	var jobs []runner.Job[fig10Cell]
	for _, cv := range cvs {
		cv := cv
		for _, p := range policies {
			p := p
			jobs = append(jobs, runner.Job[fig10Cell]{
				Cell: fmt.Sprintf("cv%.2f/%s", cv, p.name),
				Run: func(runner.Ctx) (fig10Cell, error) {
					tr := fig10Trace(s, cv)
					model := faas.DefaultSyntheticModel()
					model.BaseExecSec = 6
					model.ColdInitSec = 3
					r := pool.Run(pool.RunConfig{
						Trace:     tr,
						TrainMin:  s.TrainMin,
						Model:     model,
						Resources: faas.ResourceConfig{CPU: 1, MemoryMB: 512},
						Policy:    p.mk(),
						Seed:      s.Seed,
					})
					return fig10Cell{cv: tr.InterArrivalCV(), coldRate: r.ColdRate}, nil
				}})
		}
	}
	cells := runner.MustRun(s.engine("fig10"), jobs)

	res := Fig10Result{}
	for i := 0; i < len(cells); i += 2 {
		res.CVs = append(res.CVs, cells[i].cv)
		res.IceBrk = append(res.IceBrk, cells[i].coldRate)
		res.Aquatope = append(res.Aquatope, cells[i+1].coldRate)
	}
	return res
}

// ---------------------------------------------------------------------------

// Fig11Result is the provisioned-memory-over-time comparison of Aquatope
// vs AquaLite against the actual demand footprint.
type Fig11Result struct {
	MinuteOffset int
	ActualGB     []float64
	AquatopeGB   []float64
	AquaLiteGB   []float64
	// Cold rates over the window (the paper: Aquatope saves 8% memory and
	// 3% more cold starts than AquaLite).
	AquatopeCold, AquaLiteCold float64
}

// Table renders a decimated series plus the summary line.
func (r Fig11Result) Table() string {
	out := formatTable(r.Rows())
	out += fmt.Sprintf("cold: aquatope %s, aqualite %s\n", pct(r.AquatopeCold), pct(r.AquaLiteCold))
	return out
}

// Rows implements Result (the decimated series; cold rates are in Data).
func (r Fig11Result) Rows() ([]string, [][]string) {
	rows := [][]string{}
	for i := 0; i < len(r.ActualGB); i += 10 {
		rows = append(rows, []string{
			fmt.Sprintf("t+%dmin", i), f2(r.ActualGB[i]), f2(r.AquatopeGB[i]), f2(r.AquaLiteGB[i]),
		})
	}
	return []string{"Time", "ActualGB", "AquatopeGB", "AquaLiteGB"}, rows
}

// Fig11 runs a fluctuating episodic trace under Aquatope and AquaLite and
// records each pool's memory footprint over time alongside the actual
// demand footprint. The two variants are the two replications.
func Fig11(s Scale) Fig11Result {
	run := func(lite bool) pool.RunResult {
		tr := trace.Synthesize(trace.GenConfig{
			DurationMin:          s.TraceMin,
			MeanRatePerMin:       0.8,
			Diurnal:              0.7,
			CV:                   2,
			BurstEpisodesPerHour: 1.2,
			BurstDurationMin:     12,
			BurstMultiplier:      8,
			Seed:                 s.Seed + 7,
		})
		model := faas.DefaultSyntheticModel()
		model.BaseExecSec = 6
		model.ColdInitSec = 3
		return pool.Run(pool.RunConfig{
			Trace: tr, TrainMin: s.TrainMin, Model: model,
			Resources: faas.ResourceConfig{CPU: 1, MemoryMB: 512},
			Policy:    s.aquatopePolicy(lite), MemorySeries: true, Seed: s.Seed,
		})
	}
	jobs := []runner.Job[pool.RunResult]{
		{Cell: "aquatope",
			Run: func(runner.Ctx) (pool.RunResult, error) { return run(false), nil }},
		{Cell: "aqualite",
			Run: func(runner.Ctx) (pool.RunResult, error) { return run(true), nil }},
	}
	out := runner.MustRun(s.engine("fig11"), jobs)
	full, lite := out[0], out[1]

	// Actual footprint: demand series × container memory.
	resources := faas.ResourceConfig{CPU: 1, MemoryMB: 512}
	demand := full.DemandSeries
	n := len(full.MemorySeriesGB)
	if len(lite.MemorySeriesGB) < n {
		n = len(lite.MemorySeriesGB)
	}
	if len(demand) < n {
		n = len(demand)
	}
	res := Fig11Result{MinuteOffset: s.TrainMin,
		AquatopeCold: full.ColdRate, AquaLiteCold: lite.ColdRate}
	for i := 0; i < n; i++ {
		res.ActualGB = append(res.ActualGB, demand[i]*resources.MemoryMB/1024)
		res.AquatopeGB = append(res.AquatopeGB, full.MemorySeriesGB[i])
		res.AquaLiteGB = append(res.AquaLiteGB, lite.MemorySeriesGB[i])
	}
	return res
}

// PredictorPolicyForTable1 adapts a timeseries predictor into a pool
// policy (exported for the CLI's extended comparisons).
func PredictorPolicyForTable1(name string, p timeseries.Predictor) pool.Policy {
	return &pool.PredictorPolicy{Label: name, Predictor: p}
}
