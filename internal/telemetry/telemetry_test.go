package telemetry

import (
	"bytes"
	"math"
	"sort"
	"testing"
)

func TestCollectorSpanTree(t *testing.T) {
	c := NewCollector()
	wf := c.StartSpan(KindWorkflow, "mlpipeline", 0, 10)
	st := c.StartSpan(KindStage, "preprocess", wf, 10)
	inv := c.StartSpan(KindInvocation, "ml-preprocess", st, 10)
	c.EndSpan(inv, 12.5, Fields{"cold": 1, "exec": 2})
	c.EndSpan(st, 12.5, nil)
	c.Point(KindPoolDecision, "ml-preprocess", 0, 60, Fields{"target": 3})
	c.EndSpan(wf, 13, Fields{"invocations": 1})

	spans := c.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	byKind := make(map[string]Span)
	for _, s := range spans {
		byKind[s.Kind] = s
	}
	if byKind[KindStage].Parent != byKind[KindWorkflow].ID {
		t.Fatalf("stage parent = %d, want workflow id %d", byKind[KindStage].Parent, byKind[KindWorkflow].ID)
	}
	if byKind[KindInvocation].Parent != byKind[KindStage].ID {
		t.Fatal("invocation not linked to stage")
	}
	if d := byKind[KindInvocation].Duration(); math.Abs(d-2.5) > 1e-12 {
		t.Fatalf("invocation duration = %v, want 2.5", d)
	}
	if byKind[KindInvocation].Fields["cold"] != 1 {
		t.Fatal("fields not attached at EndSpan")
	}
	if p := byKind[KindPoolDecision]; p.Start != p.End || p.Fields["target"] != 3 {
		t.Fatalf("point malformed: %+v", p)
	}
}

func TestCollectorEndUnknownSpan(t *testing.T) {
	c := NewCollector()
	c.EndSpan(0, 1, nil)  // zero id: no-op
	c.EndSpan(99, 1, nil) // unknown id: no-op
	id := c.StartSpan(KindInvocation, "f", 0, 0)
	c.EndSpan(id, 1, nil)
	c.EndSpan(id, 2, Fields{"late": 1}) // double end: no-op
	if got := c.Spans()[0].End; got != 1 {
		t.Fatalf("End = %v, want 1", got)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestJSONLRoundTripAndDeterminism(t *testing.T) {
	record := func() *Collector {
		c := NewCollector()
		wf := c.StartSpan(KindWorkflow, "w", 0, 0)
		for i := 0; i < 3; i++ {
			s := c.StartSpan(KindStage, "s", wf, float64(i))
			c.EndSpan(s, float64(i)+0.5, Fields{"exec": 0.5, "cold": float64(i % 2)})
		}
		c.EndSpan(wf, 3, nil)
		return c
	}
	var b1, b2 bytes.Buffer
	if err := record().WriteJSONL(&b1); err != nil {
		t.Fatal(err)
	}
	if err := record().WriteJSONL(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("identical recordings produced different JSONL bytes")
	}
	spans, err := ReadJSONL(&b1)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 4 || spans[0].Kind != KindWorkflow {
		t.Fatalf("round trip lost spans: %+v", spans)
	}
	if spans[1].Fields["exec"] != 0.5 {
		t.Fatal("round trip lost fields")
	}
}

func TestHistogramQuantilesVsExact(t *testing.T) {
	h := NewHistogram(DefaultBucketLo, DefaultBucketGrowth, DefaultBucketCount)
	// Deterministic skewed sample spanning several decades.
	var xs []float64
	v := 0.004
	for i := 0; i < 2000; i++ {
		xs = append(xs, v)
		v *= 1.0031
		h.Observe(xs[i])
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, q := range []float64{0.5, 0.95, 0.99} {
		exact := sorted[int(q*float64(len(sorted)-1))]
		got := h.Quantile(q)
		// Error bounded by one bucket's growth factor.
		if got < exact/DefaultBucketGrowth || got > exact*DefaultBucketGrowth {
			t.Fatalf("q%v = %v, exact %v: outside one-bucket tolerance", q, got, exact)
		}
	}
	if h.Count() != 2000 {
		t.Fatalf("count = %d", h.Count())
	}
	if m := h.Mean(); math.Abs(m-meanOf(xs)) > 1e-9 {
		t.Fatalf("mean = %v, want %v", m, meanOf(xs))
	}
}

func meanOf(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestHistogramEdgeCases(t *testing.T) {
	h := NewHistogram(1, 2, 4) // edges 1,2,4,8
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	h.Observe(3)
	if got := h.Quantile(0.5); got != 3 {
		t.Fatalf("single value p50 = %v, want clamped to 3", got)
	}
	// Underflow and overflow land in the outermost buckets.
	h.Observe(0.001)
	h.Observe(100)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Quantile(0); got != 0.001 {
		t.Fatalf("q0 = %v, want min", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Fatalf("q1 = %v, want max", got)
	}
	s := h.snapshot()
	if s.Overflow != 1 {
		t.Fatalf("overflow = %d, want 1", s.Overflow)
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("reset failed")
	}
	h.Observe(math.NaN())
	if h.Count() != 0 {
		t.Fatal("NaN should be dropped")
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram(1, 2, 4) // edges 1,2,4,8
	for _, v := range []float64{1, 2, 4, 8} {
		h.Observe(v) // exact edges are inclusive upper bounds
	}
	s := h.snapshot()
	if s.Overflow != 0 {
		t.Fatalf("edge values overflowed: %+v", s)
	}
	if len(s.Buckets) != 4 {
		t.Fatalf("buckets = %+v, want one value per bucket", s.Buckets)
	}
	for _, b := range s.Buckets {
		if b.N != 1 {
			t.Fatalf("bucket %v holds %d, want 1", b.LE, b.N)
		}
	}
}

func TestRegistryHandlesAndNilSafety(t *testing.T) {
	var nilReg *Registry
	if nilReg.Counter("x") != nil || nilReg.Gauge("x") != nil || nilReg.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	// Nil instruments: every method is a no-op.
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Add(1)
	c.Inc()
	c.Reset()
	g.Set(2)
	g.Reset()
	h.Observe(3)
	h.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if !bytes.Contains(mustJSON(t, nilReg), []byte("counters")) {
		t.Fatal("nil registry snapshot should still be valid JSON")
	}

	reg := NewRegistry()
	if reg.Counter("a") != reg.Counter("a") {
		t.Fatal("counter handle not cached")
	}
	reg.Counter("a").Add(2.5)
	reg.Gauge("b").Set(7)
	reg.Histogram("lat").Observe(0.2)
	s := reg.Snapshot()
	if s.Counters["a"] != 2.5 || s.Gauges["b"] != 7 || s.Histograms["lat"].Count != 1 {
		t.Fatalf("snapshot wrong: %+v", s)
	}
}

func mustJSON(t *testing.T, r *Registry) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func TestSnapshotJSONDeterminism(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		for _, n := range []string{"z.last", "a.first", "m.mid"} {
			r.Counter(n).Add(1)
			r.Gauge("g." + n).Set(2)
			r.Histogram("h." + n).Observe(0.5)
		}
		return r
	}
	b1 := mustJSON(t, build())
	b2 := mustJSON(t, build())
	if !bytes.Equal(b1, b2) {
		t.Fatal("identical registries produced different snapshot bytes")
	}
}

func TestNopAndOrNop(t *testing.T) {
	var tr Tracer = Nop{}
	if tr.Enabled() {
		t.Fatal("Nop must report disabled")
	}
	if id := tr.StartSpan(KindWorkflow, "w", 0, 0); id != 0 {
		t.Fatalf("Nop StartSpan = %d, want 0", id)
	}
	tr.EndSpan(1, 2, Fields{"x": 1})
	tr.Point(KindPoolDecision, "p", 0, 0, nil)
	if _, ok := OrNop(nil).(Nop); !ok {
		t.Fatal("OrNop(nil) must be Nop")
	}
	c := NewCollector()
	if OrNop(c) != Tracer(c) {
		t.Fatal("OrNop must pass through non-nil tracers")
	}
}
