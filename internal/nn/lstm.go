package nn

import (
	"math"

	"aquatope/internal/stats"
)

// LSTM is a single LSTM layer processing time-major sequences. It supports
// variational dropout in the style of Gal & Ghahramani (2016): one input
// mask and one recurrent mask are sampled per sequence and reused at every
// timestep, which is the dropout scheme the paper applies to its encoder.
type LSTM struct {
	In, Hidden int
	Wx         *Param // 4H×In
	Wh         *Param // 4H×H
	B          *Param // 4H

	cache *lstmCache
}

type lstmStep struct {
	xMasked []float64 // input after variational mask
	hPrevM  []float64 // previous hidden after recurrent mask
	i, f, g, o,
	c, h, tanhC []float64
}

type lstmCache struct {
	steps  []lstmStep
	h0, c0 []float64
	mx, mh DropoutMask
}

// NewLSTM returns an LSTM layer with Xavier-initialized weights and a
// forget-gate bias of 1 (standard practice for gradient flow).
func NewLSTM(name string, in, hidden int, rng *stats.RNG) *LSTM {
	l := &LSTM{In: in, Hidden: hidden,
		Wx: NewParam(name+".Wx", 4*hidden*in),
		Wh: NewParam(name+".Wh", 4*hidden*hidden),
		B:  NewParam(name+".b", 4*hidden)}
	l.Wx.InitXavier(in, hidden, rng)
	l.Wh.InitXavier(hidden, hidden, rng)
	for j := hidden; j < 2*hidden; j++ { // forget-gate slice of the bias
		l.B.W[j] = 1
	}
	return l
}

// Params returns the trainable parameters.
func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// ForwardSeq runs the layer over a time-major sequence xs with initial
// state (h0, c0); nil initial states are treated as zeros. mx and mh are
// optional variational dropout masks (nil disables) applied to the input
// and the recurrent hidden state at every step. It returns the hidden state
// at each timestep.
func (l *LSTM) ForwardSeq(xs [][]float64, h0, c0 []float64, mx, mh DropoutMask) [][]float64 {
	h := make([]float64, l.Hidden)
	c := make([]float64, l.Hidden)
	if h0 != nil {
		copy(h, h0)
	}
	if c0 != nil {
		copy(c, c0)
	}
	cache := &lstmCache{h0: append([]float64(nil), h...), c0: append([]float64(nil), c...), mx: mx, mh: mh}
	hs := make([][]float64, len(xs))
	H := l.Hidden
	for t, x := range xs {
		if len(x) != l.In {
			panic("nn: lstm input size mismatch")
		}
		xm := x
		if mx != nil {
			xm = mx.Apply(x)
		}
		hm := h
		if mh != nil {
			hm = mh.Apply(h)
		}
		z := make([]float64, 4*H)
		copy(z, l.B.W)
		for r := 0; r < 4*H; r++ {
			row := l.Wx.W[r*l.In : (r+1)*l.In]
			s := z[r]
			for i, xi := range xm {
				s += row[i] * xi
			}
			hrow := l.Wh.W[r*H : (r+1)*H]
			for i, hi := range hm {
				s += hrow[i] * hi
			}
			z[r] = s
		}
		st := lstmStep{
			xMasked: xm, hPrevM: hm,
			i: make([]float64, H), f: make([]float64, H),
			g: make([]float64, H), o: make([]float64, H),
			c: make([]float64, H), h: make([]float64, H), tanhC: make([]float64, H),
		}
		newC := make([]float64, H)
		newH := make([]float64, H)
		for j := 0; j < H; j++ {
			st.i[j] = sigmoid(z[j])
			st.f[j] = sigmoid(z[H+j])
			st.g[j] = math.Tanh(z[2*H+j])
			st.o[j] = sigmoid(z[3*H+j])
			newC[j] = st.f[j]*c[j] + st.i[j]*st.g[j]
			st.tanhC[j] = math.Tanh(newC[j])
			newH[j] = st.o[j] * st.tanhC[j]
		}
		copy(st.c, newC)
		copy(st.h, newH)
		cache.steps = append(cache.steps, st)
		h, c = newH, newC
		hs[t] = newH
	}
	l.cache = cache
	return hs
}

// BackwardSeq backpropagates through time. dhs[t] is dL/dh_t from the layer
// above (nil entries allowed); dhLast and dcLast are extra gradients flowing
// into the final hidden and cell state (e.g. from a decoder bridge). It
// accumulates parameter gradients, returns dL/dx per timestep, and the
// gradients on the initial state.
func (l *LSTM) BackwardSeq(dhs [][]float64, dhLast, dcLast []float64) (dxs [][]float64, dh0, dc0 []float64) {
	cache := l.cache
	if cache == nil {
		panic("nn: BackwardSeq before ForwardSeq")
	}
	T := len(cache.steps)
	H := l.Hidden
	dh := make([]float64, H)
	dc := make([]float64, H)
	if dhLast != nil {
		copy(dh, dhLast)
	}
	if dcLast != nil {
		copy(dc, dcLast)
	}
	dxs = make([][]float64, T)
	for t := T - 1; t >= 0; t-- {
		st := cache.steps[t]
		if dhs != nil && dhs[t] != nil {
			for j := range dh {
				dh[j] += dhs[t][j]
			}
		}
		var cPrev []float64
		if t == 0 {
			cPrev = cache.c0
		} else {
			cPrev = cache.steps[t-1].c
		}
		dz := make([]float64, 4*H)
		dcPrev := make([]float64, H)
		for j := 0; j < H; j++ {
			do := dh[j] * st.tanhC[j]
			dcj := dc[j] + dh[j]*st.o[j]*(1-st.tanhC[j]*st.tanhC[j])
			df := dcj * cPrev[j]
			di := dcj * st.g[j]
			dg := dcj * st.i[j]
			dcPrev[j] = dcj * st.f[j]
			dz[j] = di * st.i[j] * (1 - st.i[j])
			dz[H+j] = df * st.f[j] * (1 - st.f[j])
			dz[2*H+j] = dg * (1 - st.g[j]*st.g[j])
			dz[3*H+j] = do * st.o[j] * (1 - st.o[j])
		}
		dx := make([]float64, l.In)
		dhPrev := make([]float64, H)
		for r := 0; r < 4*H; r++ {
			gz := dz[r]
			if gz == 0 {
				continue
			}
			l.B.G[r] += gz
			wxRow := l.Wx.W[r*l.In : (r+1)*l.In]
			gxRow := l.Wx.G[r*l.In : (r+1)*l.In]
			for i := 0; i < l.In; i++ {
				gxRow[i] += gz * st.xMasked[i]
				dx[i] += gz * wxRow[i]
			}
			whRow := l.Wh.W[r*H : (r+1)*H]
			ghRow := l.Wh.G[r*H : (r+1)*H]
			for i := 0; i < H; i++ {
				ghRow[i] += gz * st.hPrevM[i]
				dhPrev[i] += gz * whRow[i]
			}
		}
		if cache.mx != nil {
			for i := range dx {
				dx[i] *= cache.mx[i]
			}
		}
		if cache.mh != nil {
			for i := range dhPrev {
				dhPrev[i] *= cache.mh[i]
			}
		}
		dxs[t] = dx
		dh, dc = dhPrev, dcPrev
	}
	return dxs, dh, dc
}

// LSTMStack is a stack of LSTM layers (the paper's encoder uses two).
type LSTMStack struct {
	Layers []*LSTM
}

// NewLSTMStack builds numLayers LSTM layers each with the given hidden size;
// the first consumes in features, the rest consume hidden features.
func NewLSTMStack(name string, in, hidden, numLayers int, rng *stats.RNG) *LSTMStack {
	s := &LSTMStack{}
	for i := 0; i < numLayers; i++ {
		sz := in
		if i > 0 {
			sz = hidden
		}
		s.Layers = append(s.Layers, NewLSTM(name, sz, hidden, rng))
	}
	return s
}

// Params returns all trainable parameters of the stack.
func (s *LSTMStack) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ForwardSeq runs the whole stack; masks (parallel to layers) may be nil to
// disable dropout. It returns the top layer's hidden sequence.
func (s *LSTMStack) ForwardSeq(xs [][]float64, mxs, mhs []DropoutMask) [][]float64 {
	h := xs
	for i, l := range s.Layers {
		var mx, mh DropoutMask
		if mxs != nil {
			mx = mxs[i]
		}
		if mhs != nil {
			mh = mhs[i]
		}
		h = l.ForwardSeq(h, nil, nil, mx, mh)
	}
	return h
}

// BackwardSeq backpropagates dhs (gradients on the top layer's outputs) and
// dhLast/dcLast on the top layer's final state through the stack.
func (s *LSTMStack) BackwardSeq(dhs [][]float64, dhLast, dcLast []float64) {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dxs, _, _ := s.Layers[i].BackwardSeq(dhs, dhLast, dcLast)
		dhs = dxs
		dhLast, dcLast = nil, nil
	}
}

// FinalHidden returns the last timestep's hidden state of the top layer
// from the most recent ForwardSeq (the latent variable Z in the paper).
func (s *LSTMStack) FinalHidden() []float64 {
	top := s.Layers[len(s.Layers)-1]
	steps := top.cache.steps
	return steps[len(steps)-1].h
}
