package linalg

import (
	"math"
	"testing"

	"aquatope/internal/stats"
)

// randSPD returns a random n×n SPD matrix A = M Mᵀ + ridge·I.
func randSPD(g *stats.RNG, n int, ridge float64) *Matrix {
	m := NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = g.Normal(0, 1)
	}
	a := m.Mul(m.T())
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+ridge)
	}
	return a
}

func maxAbsDiff(a, b *Matrix) float64 {
	var worst float64
	for i := range a.Data {
		d := math.Abs(a.Data[i] - b.Data[i])
		if math.IsNaN(d) {
			return math.Inf(1)
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

func TestExtendCholeskyMatchesCold(t *testing.T) {
	g := stats.NewRNG(7)
	for trial := 0; trial < 50; trial++ {
		n := 1 + int(g.Int63()%12)
		a := randSPD(g, n+1, float64(n)+1)
		lead := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			copy(lead.Row(i), a.Row(i)[:n])
		}
		l, jit, err := CholeskyJitter(lead)
		if err != nil {
			t.Fatal(err)
		}
		k := make([]float64, n)
		for i := 0; i < n; i++ {
			k[i] = a.At(i, n)
		}
		ext, ok := ExtendCholesky(l, k, a.At(n, n), jit)
		if !ok {
			t.Fatalf("trial %d: extend failed", trial)
		}
		cold, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		// The extension mirrors the cold factorization's operations exactly,
		// so when neither needed jitter the factors are bitwise equal.
		if jit == 0 {
			for i := range cold.Data {
				if ext.Data[i] != cold.Data[i] {
					t.Fatalf("trial %d: extended factor not bitwise equal at %d: %v vs %v",
						trial, i, ext.Data[i], cold.Data[i])
				}
			}
		} else if d := maxAbsDiff(ext, cold); d > 1e-9 {
			t.Fatalf("trial %d: extended factor off by %g", trial, d)
		}
	}
}

func TestDropLeadingCholeskyMatchesCold(t *testing.T) {
	g := stats.NewRNG(9)
	for trial := 0; trial < 50; trial++ {
		n := 2 + int(g.Int63()%12)
		a := randSPD(g, n, float64(n))
		l, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		dropped := DropLeadingCholesky(l)
		trail := NewMatrix(n-1, n-1)
		for i := 1; i < n; i++ {
			copy(trail.Row(i-1), a.Row(i)[1:])
		}
		cold, err := Cholesky(trail)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(dropped, cold); d > 1e-9 {
			t.Fatalf("trial %d: dropped factor off by %g", trial, d)
		}
	}
}

func TestRank1Update(t *testing.T) {
	g := stats.NewRNG(13)
	for trial := 0; trial < 50; trial++ {
		n := 1 + int(g.Int63()%10)
		a := randSPD(g, n, float64(n))
		x := make([]float64, n)
		for i := range x {
			x[i] = g.Normal(0, 1)
		}
		l, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		Rank1Update(l, append([]float64(nil), x...))
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, a.At(i, j)+x[i]*x[j])
			}
		}
		cold, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(l, cold); d > 1e-8 {
			t.Fatalf("trial %d: rank-1 updated factor off by %g", trial, d)
		}
	}
}

func TestCholInverseDiag(t *testing.T) {
	g := stats.NewRNG(17)
	for trial := 0; trial < 30; trial++ {
		n := 1 + int(g.Int63()%10)
		a := randSPD(g, n, float64(n))
		l, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		diag := CholInverseDiag(l)
		for i := 0; i < n; i++ {
			e := make([]float64, n)
			e[i] = 1
			col := CholSolve(l, e)
			if !approx(diag[i], col[i], 1e-9*math.Abs(col[i])+1e-12) {
				t.Fatalf("trial %d: diag[%d] = %v, want %v", trial, i, diag[i], col[i])
			}
		}
	}
}

// Sliding-window property: a long random sequence of appends and
// evict-front operations tracked incrementally stays within 1e-9 of a cold
// factorization of the current window's matrix.
func TestSlidingWindowCholeskyProperty(t *testing.T) {
	g := stats.NewRNG(21)
	type point struct{ v []float64 }
	var window []point
	dim := 3
	kernel := func(a, b []float64) float64 {
		var d2 float64
		for i := range a {
			d2 += (a[i] - b[i]) * (a[i] - b[i])
		}
		return math.Exp(-0.5*d2) + boolNoise(a, b)
	}
	var l *Matrix
	rebuild := func() *Matrix {
		n := len(window)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, kernel(window[i].v, window[j].v))
			}
		}
		cold, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		return cold
	}
	for step := 0; step < 300; step++ {
		if len(window) > 0 && (len(window) >= 20 || g.Float64() < 0.3) {
			window = window[1:]
			l = DropLeadingCholesky(l)
		} else {
			v := make([]float64, dim)
			for i := range v {
				v[i] = g.Float64()
			}
			k := make([]float64, len(window))
			for i, p := range window {
				k[i] = kernel(p.v, v)
			}
			window = append(window, point{v})
			if l == nil || l.Rows == 0 {
				l = rebuild()
			} else {
				var ok bool
				l, ok = ExtendCholesky(l, k, kernel(v, v), 0)
				if !ok {
					l = rebuild()
				}
			}
		}
		if step%17 == 0 && len(window) > 0 {
			if d := maxAbsDiff(l, rebuild()); d > 1e-9 {
				t.Fatalf("step %d (n=%d): incremental factor off by %g", step, len(window), d)
			}
		}
	}
}

// TestInPlaceVariantsBitwiseEqual pins that the in-place extend/drop used by
// the GP's steady-state path produce bitwise the same factors and matrices
// as the allocating variants, across a random add/evict sequence.
func TestInPlaceVariantsBitwiseEqual(t *testing.T) {
	g := stats.NewRNG(33)
	dim := 3
	kernel := func(a, b []float64) float64 {
		var d2 float64
		for i := range a {
			d2 += (a[i] - b[i]) * (a[i] - b[i])
		}
		return math.Exp(-0.5*d2) + boolNoise(a, b)
	}
	var window [][]float64
	var lRef, lInPlace, kmRef, kmInPlace *Matrix
	vbuf := make([]float64, 0, 64)
	for step := 0; step < 300; step++ {
		if len(window) > 1 && (len(window) >= 16 || g.Float64() < 0.3) {
			window = window[1:]
			lRef = DropLeadingCholesky(lRef)
			DropLeadingCholeskyInPlace(lInPlace, vbuf[:cap(vbuf)])
			n := len(window)
			next := NewMatrix(n, n)
			for i := 0; i < n; i++ {
				copy(next.Row(i), kmRef.Row(i + 1)[1:])
			}
			kmRef = next
			kmInPlace.ShrinkLeadingInPlace()
		} else {
			v := make([]float64, dim)
			for i := range v {
				v[i] = g.Float64()
			}
			k := make([]float64, len(window))
			for i, p := range window {
				k[i] = kernel(p, v)
			}
			d := kernel(v, v)
			window = append(window, v)
			if lRef == nil || lRef.Rows == 0 {
				n := len(window)
				a := NewMatrix(n, n)
				a.Set(0, 0, d)
				var err error
				lRef, err = Cholesky(a.Clone())
				if err != nil {
					t.Fatal(err)
				}
				lInPlace = lRef.Clone()
				kmRef, kmInPlace = a, a.Clone()
				continue
			}
			var ok bool
			lRef, ok = ExtendCholesky(lRef, k, d, 0)
			if !ok {
				t.Fatalf("step %d: extend failed", step)
			}
			if !ExtendCholeskyInPlace(lInPlace, k, d, 0) {
				t.Fatalf("step %d: in-place extend failed", step)
			}
			n := len(window) - 1
			next := NewMatrix(n+1, n+1)
			for i := 0; i < n; i++ {
				copy(next.Row(i)[:n], kmRef.Row(i))
				next.Set(i, n, k[i])
				next.Set(n, i, k[i])
			}
			next.Set(n, n, d)
			kmRef = next
			kmInPlace.GrowBorderInPlace(k, d)
		}
		for i := range lRef.Data {
			if lRef.Data[i] != lInPlace.Data[i] {
				t.Fatalf("step %d: factor diverges bitwise at %d", step, i)
			}
		}
		for i := range kmRef.Data {
			if kmRef.Data[i] != kmInPlace.Data[i] {
				t.Fatalf("step %d: kernel cache diverges bitwise at %d", step, i)
			}
		}
	}
}

// boolNoise adds observation noise on the diagonal only.
func boolNoise(a, b []float64) float64 {
	if &a[0] == &b[0] {
		return 0.05
	}
	return 0
}
