package pool

import (
	"testing"

	"aquatope/internal/faas"
	"aquatope/internal/sim"
	"aquatope/internal/stats"
)

// constTarget is a test policy holding the pool at a fixed size.
type constTarget struct{ n int }

func (p *constTarget) Name() string { return "const" }
func (p *constTarget) Fit(FitData)  {}
func (p *constTarget) Decide([]float64, int) Decision {
	return Decision{Target: p.n, KeepAlive: 600}
}

type rewarmModel struct{}

func (rewarmModel) InitTime(faas.ResourceConfig, *stats.RNG) float64 { return 1 }
func (rewarmModel) ExecTime(faas.ResourceConfig, bool, float64, *stats.RNG) float64 {
	return 1
}
func (rewarmModel) BaseMemoryMB() float64 { return 64 }

// TestRewarmAfterInvokerCrash: when an invoker crash wipes part of the warm
// pool, the manager re-asserts its last pre-warm target after RewarmDelaySec
// instead of waiting for the next adjustment tick.
func TestRewarmAfterInvokerCrash(t *testing.T) {
	eng := sim.NewEngine()
	cl := faas.NewCluster(eng, faas.Config{Invokers: 2, CPUPerInvoker: 8, MemoryPerInvokerMB: 2048, DefaultKeepAlive: 600, Seed: 1})
	if err := cl.RegisterFunction(faas.FunctionSpec{Name: "f", Model: rewarmModel{}}, faas.ResourceConfig{CPU: 1, MemoryMB: 256}); err != nil {
		t.Fatal(err)
	}
	m := NewManager(cl)
	m.IntervalSec = 60
	m.RewarmDelaySec = 1
	m.Manage("f", &constTarget{n: 4}, 0)
	m.Start()

	// After the first tick (t=60) the pool holds 4 warm containers split
	// across both invokers (warm-up takes 1s).
	eng.RunUntil(70)
	idle, warming, busy := cl.WarmCount("f")
	if idle+warming+busy != 4 {
		t.Fatalf("pool = %d/%d/%d before crash, want 4 total", idle, warming, busy)
	}

	// Crash invoker 0 between ticks; its share of the pool dies.
	cl.CrashInvoker(0)
	idle, warming, busy = cl.WarmCount("f")
	if idle+warming+busy >= 4 {
		t.Fatalf("pool = %d/%d/%d right after crash, expected losses", idle, warming, busy)
	}

	// Well before the next tick (t=120), the re-warm callback restores the
	// target on the survivor.
	eng.RunUntil(75)
	idle, warming, busy = cl.WarmCount("f")
	if idle+warming+busy != 4 {
		t.Fatalf("pool = %d/%d/%d after re-warm, want 4 total", idle, warming, busy)
	}
	if mem := cl.Invokers()[0].MemoryInUseMB(); mem != 0 {
		t.Fatalf("crashed invoker hosts %v MB", mem)
	}
}
