package obs_test

import (
	"bytes"
	"math"
	"testing"

	"aquatope/internal/apps"
	"aquatope/internal/core"
	"aquatope/internal/faas"
	"aquatope/internal/obs"
	"aquatope/internal/pool"
	"aquatope/internal/telemetry"
	"aquatope/internal/trace"
	"aquatope/internal/workflow"
)

// e2eRun drives an overload-style end-to-end run (small saturated cluster,
// retries and hedges armed, pool guard on) with a full span collector, and
// returns the dump it produced.
func e2eRun(t *testing.T) ([]telemetry.Span, *telemetry.Snapshot) {
	t.Helper()
	mk := func(execSec float64) *faas.SyntheticModel {
		m := faas.DefaultSyntheticModel()
		m.BaseExecSec = execSec
		m.ColdInitSec = 1
		m.ColdExecPenalty = 1.5
		m.CPUShare = 0.85
		m.MemKneeMB = 256
		return m
	}
	app := &apps.App{
		Name: "ov-chain",
		DAG:  workflow.Chain("ov-chain", "ov-f0", "ov-f1"),
		Specs: []faas.FunctionSpec{
			{Name: "ov-f0", Model: mk(3.0)},
			{Name: "ov-f1", Model: mk(2.5)},
		},
		Defaults: map[string]faas.ResourceConfig{
			"ov-f0": {CPU: 1, MemoryMB: 512},
			"ov-f1": {CPU: 1, MemoryMB: 512},
		},
		QoS: 30,
	}
	tr := trace.Synthesize(trace.GenConfig{
		DurationMin:    12,
		MeanRatePerMin: 30, // ~3× the 2×2-CPU cluster's capacity
		Diurnal:        0,
		CV:             1,
		Seed:           97,
	})
	pol := workflow.DefaultRetryPolicy()
	pol.Timeout = 2 * app.QoS
	pol.HedgeDelay = app.QoS / 2
	pol.MaxAttempts = 4
	col := telemetry.NewCollector()
	reg := telemetry.NewRegistry()
	_, err := core.Run(core.Config{
		Components:  []core.Component{{App: app, Trace: tr}},
		TrainMin:    3,
		PoolFactory: core.KeepAlivePoolFactory(600),
		ClusterCfg: faas.Config{
			Invokers:           2,
			CPUPerInvoker:      2,
			MemoryPerInvokerMB: 2048,
			QueueLimit:         16,
			Admission:          faas.AdmitDeadlineAware,
			Breaker:            faas.BreakerConfig{Enabled: true},
			Seed:               43,
		},
		RuntimeNoise: faas.Noise{GaussianStd: 0.1, OutlierRate: 0.01, OutlierScale: 3},
		Resilience:   &pol,
		PoolGuard:    &pool.Guard{ShedThreshold: 30, RecoverIntervals: 3},
		Tracer:       col,
		Registry:     reg,
		Seed:         42,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	return col.Spans(), &snap
}

// TestEndToEndAttribution is the tentpole acceptance test: on a real
// overload-style dump, every analyzed workflow's phase attribution sums to
// within 1% of its measured end-to-end latency, and analysis output is
// byte-identical across repeated invocations over the same (re-generated)
// dump.
func TestEndToEndAttribution(t *testing.T) {
	spans, snap := e2eRun(t)
	a := obs.Analyze(spans, snap, obs.Options{IncludeTraining: true})
	if a.Workflows < 50 {
		t.Fatalf("only %d workflows traced; the run is too small to be meaningful", a.Workflows)
	}
	if len(a.Attributions) != a.Workflows {
		t.Fatalf("attributed %d of %d workflows", len(a.Attributions), a.Workflows)
	}
	for _, at := range a.Attributions {
		if at.Latency <= 0 {
			continue
		}
		if err := math.Abs(at.Phases.Total()-at.Latency) / at.Latency; err > 0.01 {
			t.Errorf("workflow span %d: phases %+v total %.6f vs latency %.6f (%.3g%% off)",
				at.SpanID, at.Phases, at.Phases.Total(), at.Latency, err*100)
		}
	}
	if a.AttributionError > 0.01 {
		t.Fatalf("max attribution error %.4g exceeds 1%%", a.AttributionError)
	}
	// The run must actually exercise the interesting phases and decisions.
	if len(a.Apps) != 1 {
		t.Fatalf("apps = %+v, want one", a.Apps)
	}
	sum := a.Apps[0].Phases
	if sum.Cold == 0 || sum.Queue == 0 || sum.Exec == 0 {
		t.Fatalf("phase rollup %+v has empty core phases; dump not representative", sum)
	}
	if a.Decisions.PoolDecisions == 0 {
		t.Fatal("no pool decisions in audit log")
	}
	if a.Utilization == nil || len(a.Utilization.Invokers) != 2 {
		t.Fatalf("utilization = %+v, want 2 invokers", a.Utilization)
	}

	// Determinism: regenerate the dump and re-render; bytes must match.
	render := func(spans []telemetry.Span, snap *telemetry.Snapshot) (string, string, string) {
		an := obs.Analyze(spans, snap, obs.Options{})
		var txt, audit, js bytes.Buffer
		if err := an.WriteText(&txt); err != nil {
			t.Fatal(err)
		}
		if err := an.WriteAudit(&audit); err != nil {
			t.Fatal(err)
		}
		if err := an.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		return txt.String(), audit.String(), js.String()
	}
	t1, au1, j1 := render(spans, snap)
	spans2, snap2 := e2eRun(t)
	t2, au2, j2 := render(spans2, snap2)
	if t1 != t2 {
		t.Error("text report differs across identical runs")
	}
	if au1 != au2 {
		t.Error("audit log differs across identical runs")
	}
	if j1 != j2 {
		t.Error("JSON summary differs across identical runs")
	}
}
