package sched

import (
	"fmt"
	"math"

	"aquatope/internal/faas"
	"aquatope/internal/pool"
	"aquatope/internal/resource"
	"aquatope/internal/stats"
	"aquatope/internal/telemetry"
)

func init() {
	Register("caerus",
		"static baseline: Caerus-style work-proportional CPU allocation per stage + Orion-style BFS best-fit over the memory grid, fixed 10-minute keep-alive pools",
		func(o Options) Scheduler {
			return &scheduler{
				name: "caerus",
				desc: Describe("caerus"),
				pool: &fixedPool{name: "caerus", duration: 600, meter: o.Meter},
				conf: &caerusConf{opts: o},
			}
		})
}

// fixedPool is the provider-default keep-alive pool half shared by the
// static schedulers: no pre-warm target, a fixed idle lifetime.
type fixedPool struct {
	name     string
	duration float64
	meter    *Meter
}

func (p *fixedPool) Name() string { return p.name }

// Policy implements PoolSizer.
func (p *fixedPool) Policy(string) pool.Policy {
	return meterPolicy(&pool.FixedKeepAlive{Duration: p.duration}, p.meter)
}

// ---------------------------------------------------------------------------

// caerusConf builds caerusManager per application.
type caerusConf struct {
	opts Options
}

func (c *caerusConf) Name() string { return "caerus" }

// Manager implements Configurator.
func (c *caerusConf) Manager(space *resource.Space, prof *resource.Profiler, qos float64, seed int64) resource.Manager {
	m := &caerusManager{
		space:  space,
		prof:   prof,
		qos:    qos,
		seed:   seed,
		tracer: telemetry.Nop{},
	}
	if c.opts.Meter == nil {
		return m
	}
	return meteredManager{Manager: m, meter: c.opts.Meter}
}

// caerusManager is the Caerus/Orion composite static baseline.
//
// CPU (the parallelism analog on this platform — stages have no separate
// fan-out knob, compute share is the degree-of-parallelism lever) is fixed
// up front the Caerus way: proportional to each stage's estimated work,
// measured by sampling the stage's perf model at a reference configuration
// before any profiling. The heaviest stage gets the top CPU option and the
// rest scale down linearly by work share.
//
// Memory is then searched the Orion way: breadth-first best-fit over the
// per-stage memory grid, starting from the all-minimum assignment and
// expanding one stage by one grain per candidate; the first assignment
// whose profiled latency meets the QoS bound wins. If the budget runs out
// first, the lowest-latency assignment seen stands in.
type caerusManager struct {
	space  *resource.Space
	prof   *resource.Profiler
	qos    float64
	seed   int64
	tracer telemetry.Tracer

	cpus    []float64 // per-function CPU fixed by work share
	queue   [][]int   // BFS frontier of per-function memory-level vectors
	visited map[string]bool
	iter    int
	samples int
	done    bool

	best  map[string]faas.ResourceConfig
	bestC float64
	haveB bool
	// fallback: lowest-latency candidate seen, used when nothing met QoS
	fbCfg map[string]faas.ResourceConfig
	fbC   float64
	fbLat float64
}

// Name implements resource.Manager.
func (m *caerusManager) Name() string { return "caerus" }

// Samples implements resource.Manager.
func (m *caerusManager) Samples() int { return m.samples }

// SetTracer installs the explain-record sink (sched.decision points).
func (m *caerusManager) SetTracer(t telemetry.Tracer) {
	if t != nil {
		m.tracer = t
	}
}

// workRefDraws is how many perf-model draws estimate one stage's work.
const workRefDraws = 5

// initShares fixes per-function CPU by relative work share and seeds the
// BFS frontier at the all-minimum memory assignment.
func (m *caerusManager) initShares() {
	rng := stats.NewRNG(m.seed)
	ref := faas.ResourceConfig{
		CPU:      1,
		MemoryMB: m.space.MemOptions[len(m.space.MemOptions)-1],
	}
	work := make([]float64, len(m.space.Functions))
	maxW := 0.0
	for i, fn := range m.space.Functions {
		spec, ok := specFor(m.prof.App.Specs, fn)
		if !ok {
			work[i] = 1
		} else {
			draws := make([]float64, workRefDraws)
			for j := range draws {
				draws[j] = spec.Model.ExecTime(ref, false, 1, rng)
			}
			work[i] = stats.Mean(draws)
		}
		if work[i] > maxW {
			maxW = work[i]
		}
	}
	m.cpus = make([]float64, len(work))
	top := len(m.space.CPUOptions) - 1
	for i, w := range work {
		share := 1.0
		if maxW > 0 {
			share = w / maxW
		}
		m.cpus[i] = m.space.CPUOptions[int(math.Round(share*float64(top)))]
	}
	start := make([]int, len(m.space.Functions))
	m.queue = [][]int{start}
	m.visited = map[string]bool{levelKey(start): true}
}

func specFor(specs []faas.FunctionSpec, fn string) (faas.FunctionSpec, bool) {
	for _, s := range specs {
		if s.Name == fn {
			return s, true
		}
	}
	return faas.FunctionSpec{}, false
}

func levelKey(levels []int) string {
	return fmt.Sprint(levels)
}

// configAt materializes per-function configs for a memory-level vector.
func (m *caerusManager) configAt(levels []int) map[string]faas.ResourceConfig {
	cfgs := make(map[string]faas.ResourceConfig, len(m.space.Functions))
	for i, fn := range m.space.Functions {
		cfgs[fn] = faas.ResourceConfig{CPU: m.cpus[i], MemoryMB: m.space.MemOptions[levels[i]]}
	}
	return cfgs
}

// Step implements resource.Manager: one BFS candidate per call.
func (m *caerusManager) Step() int {
	if m.done {
		return 0
	}
	if m.cpus == nil {
		m.initShares()
	}
	if len(m.queue) == 0 {
		m.done = true
		return 0
	}
	levels := m.queue[0]
	m.queue = m.queue[1:]
	cfgs := m.configAt(levels)
	cost, lat := m.prof.Sample(cfgs)
	m.samples++
	satisfied := lat <= m.qos
	if satisfied {
		// Best-fit: the first (i.e. smallest-footprint, by BFS order)
		// satisfying assignment wins outright.
		m.best, m.bestC, m.haveB = cfgs, cost, true
		m.done = true
	} else {
		if m.fbCfg == nil || lat < m.fbLat {
			m.fbCfg, m.fbC, m.fbLat = cfgs, cost, lat
		}
		for i := range levels {
			if levels[i]+1 >= len(m.space.MemOptions) {
				continue
			}
			next := append([]int(nil), levels...)
			next[i]++
			k := levelKey(next)
			if !m.visited[k] {
				m.visited[k] = true
				m.queue = append(m.queue, next)
			}
		}
	}
	if m.tracer.Enabled() {
		sum := 0
		for _, l := range levels {
			sum += l
		}
		f := telemetry.Fields{
			"iter":       float64(m.iter),
			"cost":       cost,
			"lat":        lat,
			"qos":        m.qos,
			"mem_levels": float64(sum),
			"frontier":   float64(len(m.queue)),
		}
		if satisfied {
			f["satisfied"] = 1
		}
		m.tracer.Point(telemetry.KindSchedDecision, "caerus", 0, float64(m.iter), f)
	}
	m.iter++
	return 1
}

// Best implements resource.Manager: the first QoS-satisfying assignment,
// else the lowest-latency candidate profiled.
func (m *caerusManager) Best() (map[string]faas.ResourceConfig, float64, bool) {
	if m.haveB {
		return m.best, m.bestC, true
	}
	if m.fbCfg != nil {
		return m.fbCfg, m.fbC, true
	}
	return nil, 0, false
}
