// Fixtures for the sharedmut analyzer. The test config points the
// concurrent-package catalog (Rule.Sinks) at this fixture package, so
// Job / RunJobs / Replicate below play the role of runner.Job and
// runner.Run, and fakeMutex stands in for sync.Mutex.
package fixture

type Job struct {
	Name string
	Run  func(rep int)
}

func RunJobs(par int, jobs []Job) {}

func Replicate(par int, body func(rep int)) {}

type fakeMutex struct{}

func (m *fakeMutex) Lock()   {}
func (m *fakeMutex) Unlock() {}

// --- go statements ---

func sharedmutGoWrite(done chan struct{}) int {
	total := 0
	go func() {
		total++ // want sharedmut
		close(done)
	}()
	<-done
	return total
}

func sharedmutShardedIndex(out []int, jobs chan int) {
	go func() {
		for i := range jobs {
			out[i] = i * 2 // ok: the index is goroutine-local, each writer owns its cell
		}
	}()
}

func sharedmutSharedIndex(out []int, i int) {
	go func() {
		out[i] = 1 // want sharedmut
	}()
}

func sharedmutMapWrite(counts map[string]int, keys chan string) {
	go func() {
		for k := range keys {
			counts[k]++ // want sharedmut
		}
	}()
}

func sharedmutGuarded(mu *fakeMutex) int {
	total := 0
	go func() {
		mu.Lock()
		total += 7 // ok: the write is behind the mutex
		mu.Unlock()
	}()
	return total
}

// --- replication jobs ---

func sharedmutJobLiteral() []Job {
	sum := 0
	jobs := []Job{{
		Name: "accumulate",
		Run: func(rep int) {
			sum += rep // want sharedmut
		},
	}}
	return jobs
}

func sharedmutJobLocal() []Job {
	return []Job{{
		Name: "independent",
		Run: func(rep int) {
			local := rep * rep // ok: nothing captured is written
			_ = local
		},
	}}
}

func sharedmutReplicateSharded(results []float64) {
	Replicate(4, func(rep int) {
		results[rep] = float64(rep) // ok: rep shards the slice
	})
}

func sharedmutReplicateCapture() float64 {
	mean := 0.0
	Replicate(4, func(rep int) {
		mean += float64(rep) // want sharedmut
	})
	return mean
}

// --- allowed ---

func sharedmutAllowed() bool {
	ready := false
	go func() {
		ready = true //aqualint:allow sharedmut single writer; readers load only after the channel sync
	}()
	return ready
}
