package fixture

// Stand-ins for the telemetry registry and tracer; the test configures
// this package path as the metricname catalog, so the constants below
// play the role of internal/telemetry/names.go.
type metricRegistry struct{}

func (*metricRegistry) Counter(name string) *metricCounter   { return nil }
func (*metricRegistry) Gauge(name string) *metricCounter     { return nil }
func (*metricRegistry) Histogram(name string) *metricCounter { return nil }
func (*metricRegistry) HistogramBuckets(name string, lo, g float64, n int) *metricCounter {
	return nil
}

type metricCounter struct{}

func (*metricCounter) Add(float64) {}

type metricTracer struct{}

func (*metricTracer) Point(kind, name string, parent int, at float64) {}
func (*metricTracer) StartSpan(kind, name string, parent int, at float64) int {
	return 0
}

const (
	MetricGood   = "faas.good_metric"
	KindGoodSpan = "good.span"
)

func metricnameLiterals(r *metricRegistry, tr *metricTracer) {
	r.Counter("faas.adhoc")                        // want metricname
	r.Gauge("faas.adhoc_gauge")                    // want metricname
	r.Histogram("lat" + ".s")                      // want metricname
	r.HistogramBuckets("faas.adhoc_h", 0.1, 2, 10) // want metricname
	tr.Point("ad.hoc", "x", 0, 0)                  // want metricname
	tr.StartSpan("ad.hoc", "x", 0, 0)              // want metricname
}

func metricnameCatalogued(r *metricRegistry, tr *metricTracer, id string) {
	r.Counter(MetricGood)
	r.Gauge(MetricGood + "." + id) // per-entity suffix on a catalog base
	r.Histogram(MetricGood)
	r.HistogramBuckets(MetricGood, 0.1, 2, 10)
	tr.Point(KindGoodSpan, "x", 0, 0)
	tr.StartSpan(KindGoodSpan, "x", 0, 0)
}

func metricnameLocalConst(r *metricRegistry) {
	// A constant declared outside the catalog package does not satisfy
	// the check — but this fixture package IS the configured catalog, so
	// localConst counts as catalogued here. The negative case is covered
	// by the string literals above, which resolve to no constant at all.
	const localConst = "faas.local"
	r.Counter(localConst)
}

func metricnameAllow(r *metricRegistry) {
	r.Counter("faas.one_off") //aqualint:allow metricname experiment-private scratch metric
}

func metricnameNonSink(id string) {
	// Same method names on a type outside the catalog are not telemetry.
	type other struct{}
	_ = id
}
