package bo

import "aquatope/internal/checkpoint"

// Snapshot serializes the engine: RNG position, the observation set with
// anomaly flags, both GP surrogates, and the refit bookkeeping. The Options
// are configuration, not state — a restored engine must be built from the
// same Options, which the serving layer's config digest enforces.
func (e *Engine) Snapshot(enc *checkpoint.Encoder) {
	enc.String("bo")
	e.rng.Snapshot(enc)
	enc.U64(uint64(len(e.obs)))
	for _, o := range e.obs {
		enc.F64s(o.X)
		enc.F64(o.Cost)
		enc.F64(o.Latency)
	}
	enc.Bools(e.anomalous)
	e.costGP.Snapshot(enc)
	e.latGP.Snapshot(enc)
	enc.Bool(e.fitted)
	enc.Bool(e.synced)
	enc.F64(e.costResidScale)
	enc.F64(e.latResidScale)
	enc.Int(e.changeEvents)
	enc.Int(e.sinceRefit)
	enc.Int(e.iter)
	enc.F64(e.lastAcq)
}

// Restore loads a snapshot into an engine built from the same Options.
func (e *Engine) Restore(dec *checkpoint.Decoder) error {
	dec.Expect("bo")
	if err := e.rng.Restore(dec); err != nil {
		return err
	}
	n := dec.U64()
	if err := dec.Err(); err != nil {
		return err
	}
	obs := make([]Observation, 0, n)
	for i := uint64(0); i < n; i++ {
		o := Observation{X: dec.F64s(), Cost: dec.F64(), Latency: dec.F64()}
		if len(o.X) != e.cfg.Dim {
			if err := dec.Err(); err != nil {
				return err
			}
			return checkpoint.ErrShape
		}
		obs = append(obs, o)
	}
	anomalous := dec.Bools()
	if err := dec.Err(); err != nil {
		return err
	}
	if uint64(len(anomalous)) != n && !(anomalous == nil && n == 0) {
		return checkpoint.ErrShape
	}
	if err := e.costGP.Restore(dec); err != nil {
		return err
	}
	if err := e.latGP.Restore(dec); err != nil {
		return err
	}
	e.fitted = dec.Bool()
	e.synced = dec.Bool()
	e.costResidScale = dec.F64()
	e.latResidScale = dec.F64()
	e.changeEvents = dec.Int()
	e.sinceRefit = dec.Int()
	e.iter = dec.Int()
	e.lastAcq = dec.F64()
	if err := dec.Err(); err != nil {
		return err
	}
	if n == 0 {
		obs = nil
	}
	e.obs = obs
	e.anomalous = anomalous
	return nil
}
