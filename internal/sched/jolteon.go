package sched

import (
	"math"

	"aquatope/internal/faas"
	"aquatope/internal/pool"
	"aquatope/internal/resource"
	"aquatope/internal/stats"
	"aquatope/internal/telemetry"
)

func init() {
	Register("jolteon",
		"probabilistic-bound solver: per-stage latency distributions from repeated profiler samples, greedy step-down on a vCPU ladder with Lambda-style memory coupling, accept while the P(1-risk) latency bound holds",
		func(o Options) Scheduler {
			return &scheduler{
				name: "jolteon",
				desc: Describe("jolteon"),
				pool: &quantilePool{risk: o.risk(), meter: o.Meter},
				conf: &jolteonConf{opts: o},
			}
		})
}

// lambdaMemRatioMB is AWS Lambda's memory-per-vCPU coupling (1792 MB per
// full vCPU): jolteon tunes one knob — vCPUs — and derives memory from it,
// exactly like eq_vcpu_alloc in the reference implementation.
const lambdaMemRatioMB = 1792.0

// quantileZ converts a tail risk into the matching one-sided normal
// quantile: risk 0.05 → z ≈ 1.645 (a P95 bound).
func quantileZ(risk float64) float64 {
	return math.Sqrt2 * math.Erfinv(1-2*risk)
}

// ---------------------------------------------------------------------------
// Pool half: empirical-quantile demand sizing.

// quantilePool targets the (1-risk) empirical quantile of the trailing
// demand window — a distribution-aware rule with no learned model: the
// pool covers demand with probability 1-risk assuming the recent past
// predicts the next interval.
type quantilePool struct {
	risk  float64
	meter *Meter
}

func (p *quantilePool) Name() string { return "jolteon" }

// Policy implements PoolSizer.
func (p *quantilePool) Policy(string) pool.Policy {
	return meterPolicy(&quantilePolicy{risk: p.risk}, p.meter)
}

// quantilePolicy is the per-function pool.Policy behind quantilePool.
type quantilePolicy struct {
	risk float64
}

func (p *quantilePolicy) Name() string { return "jolteon" }

// Fit implements pool.Policy. The empirical quantile needs no training:
// Decide reads the trailing window of the live history directly.
func (p *quantilePolicy) Fit(pool.FitData) {}

// quantileWindowMin is the trailing demand window the quantile is taken
// over. One hour balances adaptivity against quantile stability at
// minute-scale sampling.
const quantileWindowMin = 60

// Decide implements pool.Policy.
func (p *quantilePolicy) Decide(history []float64, _ int) pool.Decision {
	if len(history) == 0 {
		return pool.Decision{Target: 0, KeepAlive: 120}
	}
	w := quantileWindowMin
	if len(history) < w {
		w = len(history)
	}
	recent := history[len(history)-w:]
	q := stats.Percentile(recent, (1-p.risk)*100)
	target := int(math.Ceil(q))
	// Never size below instantaneous demand: the quantile lags a ramp by
	// design, current demand is a hard floor.
	last := history[len(history)-1]
	if t := int(math.Ceil(last)); t > target {
		target = t
	}
	return pool.Decision{
		Target:    target,
		KeepAlive: 120,
		Predicted: q,
		Headroom:  float64(target) - last,
	}
}

// ---------------------------------------------------------------------------
// Configuration half: probabilistic-bound greedy descent.

// jolteonConf builds jolteonManager per application.
type jolteonConf struct {
	opts Options
}

func (c *jolteonConf) Name() string { return "jolteon" }

// Manager implements Configurator.
func (c *jolteonConf) Manager(space *resource.Space, prof *resource.Profiler, qos float64, _ int64) resource.Manager {
	m := &jolteonManager{
		space: space,
		prof:  prof,
		qos:   qos,
		risk:  c.opts.risk(),
		k:     c.opts.samplesPerCandidate(),
		level: make([]int, len(space.Functions)),
		done:  make([]bool, len(space.Functions)),
	}
	for i := range m.level {
		m.level[i] = len(space.CPUOptions) - 1
	}
	m.tracer = telemetry.Nop{}
	if c.opts.Meter == nil {
		return m
	}
	return meteredManager{Manager: m, meter: c.opts.Meter}
}

// jolteonManager solves for the cheapest per-function vCPU allocation
// whose modeled tail latency stays under the QoS bound. It anchors at the
// all-max allocation (feasible by construction or nothing is), then walks
// round-robin over functions stepping each one down the vCPU ladder while
// the probabilistic bound mean + z·sd·sqrt(1+1/k) ≤ QoS holds and cost
// improves; a function that fails its step-down is frozen at its current
// level. Memory rides the vCPU ladder at Lambda's 1792 MB/vCPU coupling,
// so the search is one-dimensional per function like the reference
// solver's eq_vcpu_alloc mode.
type jolteonManager struct {
	space  *resource.Space
	prof   *resource.Profiler
	qos    float64
	risk   float64
	k      int
	tracer telemetry.Tracer

	level   []int // per-function index into space.CPUOptions
	done    []bool
	next    int // round-robin cursor
	iter    int
	samples int
	started bool

	best  map[string]faas.ResourceConfig
	bestC float64
	haveB bool
}

// Name implements resource.Manager.
func (m *jolteonManager) Name() string { return "jolteon" }

// Samples implements resource.Manager.
func (m *jolteonManager) Samples() int { return m.samples }

// SetTracer installs the explain-record sink (sched.decision points).
func (m *jolteonManager) SetTracer(t telemetry.Tracer) {
	if t != nil {
		m.tracer = t
	}
}

// memFor returns the smallest memory option covering the Lambda coupling
// for the given vCPU allocation (or the largest option if none does).
func memFor(space *resource.Space, cpu float64) float64 {
	want := cpu * lambdaMemRatioMB
	opts := space.MemOptions
	for _, mb := range opts {
		if mb >= want {
			return mb
		}
	}
	return opts[len(opts)-1]
}

// configAt materializes the per-function configs for a level vector.
func (m *jolteonManager) configAt(level []int) map[string]faas.ResourceConfig {
	cfgs := make(map[string]faas.ResourceConfig, len(m.space.Functions))
	for i, fn := range m.space.Functions {
		cpu := m.space.CPUOptions[level[i]]
		cfgs[fn] = faas.ResourceConfig{CPU: cpu, MemoryMB: memFor(m.space, cpu)}
	}
	return cfgs
}

// measure profiles one candidate k times and returns the cost mean plus
// the latency mean/sd across draws.
func (m *jolteonManager) measure(cfgs map[string]faas.ResourceConfig) (costMean, latMean, latSD float64) {
	lats := make([]float64, m.k)
	for j := 0; j < m.k; j++ {
		c, l := m.prof.Sample(cfgs)
		costMean += c
		lats[j] = l
		m.samples++
	}
	costMean /= float64(m.k)
	return costMean, stats.Mean(lats), stats.StdDev(lats)
}

// bound returns the modeled (1-risk) latency quantile for a candidate,
// inflating the sample standard deviation for the finite sample count.
func (m *jolteonManager) bound(latMean, latSD float64) float64 {
	return latMean + quantileZ(m.risk)*latSD*math.Sqrt(1+1/float64(m.k))
}

// Step implements resource.Manager: one candidate evaluation per call —
// the anchor first, then one round-robin step-down attempt.
func (m *jolteonManager) Step() int {
	if !m.started {
		m.started = true
		cost, latMean, latSD := m.measure(m.configAt(m.level))
		b := m.bound(latMean, latSD)
		feasible := b <= m.qos
		if feasible {
			m.best, m.bestC, m.haveB = m.configAt(m.level), cost, true
		}
		m.trace(-1, cost, latMean, latSD, b, feasible, feasible)
		m.iter++
		return m.k
	}
	// Pick the next unfrozen function to step down.
	fi := -1
	for off := 0; off < len(m.level); off++ {
		i := (m.next + off) % len(m.level)
		if !m.done[i] && m.level[i] > 0 {
			fi = i
			break
		}
	}
	if fi < 0 {
		return 0 // converged: every function frozen or at the floor
	}
	m.next = fi + 1
	m.level[fi]--
	cost, latMean, latSD := m.measure(m.configAt(m.level))
	b := m.bound(latMean, latSD)
	accept := b <= m.qos && (!m.haveB || cost < m.bestC)
	if accept {
		m.best, m.bestC, m.haveB = m.configAt(m.level), cost, true
		if m.level[fi] == 0 {
			m.done[fi] = true
		}
	} else {
		m.level[fi]++ // revert and freeze: the bound (or cost) broke
		m.done[fi] = true
	}
	m.trace(fi, cost, latMean, latSD, b, b <= m.qos, accept)
	m.iter++
	return m.k
}

// trace emits the explain record for one candidate evaluation.
func (m *jolteonManager) trace(fn int, cost, latMean, latSD, bound float64, feasible, accepted bool) {
	if !m.tracer.Enabled() {
		return
	}
	frozen := 0
	for _, d := range m.done {
		if d {
			frozen++
		}
	}
	f := telemetry.Fields{
		"iter":     float64(m.iter),
		"fn":       float64(fn),
		"samples":  float64(m.k),
		"cost":     cost,
		"lat_mean": latMean,
		"lat_sd":   latSD,
		"bound":    bound,
		"qos":      m.qos,
		"risk":     m.risk,
		"frozen":   float64(frozen),
	}
	if feasible {
		f["feasible"] = 1
	}
	if accepted {
		f["accepted"] = 1
	}
	m.tracer.Point(telemetry.KindSchedDecision, "jolteon", 0, float64(m.iter), f)
}

// Best implements resource.Manager.
func (m *jolteonManager) Best() (map[string]faas.ResourceConfig, float64, bool) {
	return m.best, m.bestC, m.haveB
}
