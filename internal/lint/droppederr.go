package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

var droppederrAnalyzer = &Analyzer{
	Name: "droppederr",
	Doc: "flag calls whose error result is silently discarded in non-test " +
		"code (expression statements, defer, go)",
	NeedsTypes: true,
	Run:        runDroppedErr,
}

// droppederrExcluded lists callees whose dropped error is conventional:
// fmt's console printers and the in-memory writers documented to never
// fail. Explicit `_ = f()` is also never flagged — the blank assignment
// is a visible, reviewable discard.
var droppederrExcluded = map[string]bool{
	"fmt.Print":    true,
	"fmt.Printf":   true,
	"fmt.Println":  true,
	"fmt.Fprint":   true,
	"fmt.Fprintf":  true,
	"fmt.Fprintln": true,
}

var droppederrExcludedRecv = []string{
	"(*bytes.Buffer).",
	"(*strings.Builder).",
}

func runDroppedErr(prog *Program, pkg *Package, file *File, rule Rule, report Reporter) {
	info := pkg.Info
	ast.Inspect(file.AST, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
				checkDroppedErr(info, call, "", report)
			}
		case *ast.DeferStmt:
			checkDroppedErr(info, st.Call, "deferred ", report)
		case *ast.GoStmt:
			checkDroppedErr(info, st.Call, "goroutine ", report)
		}
		return true
	})
}

func checkDroppedErr(info *types.Info, call *ast.CallExpr, kind string, report Reporter) {
	if !returnsError(info, call) || excludedCallee(info, call) {
		return
	}
	report(call.Pos(), "%scall to %s discards its error result; handle it, assign it explicitly, or annotate the line", kind, types.ExprString(call.Fun))
}

func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	if types.Identical(t, errorType) {
		return true
	}
	iface, _ := errorType.Underlying().(*types.Interface)
	return iface != nil && types.Implements(t, iface)
}

func excludedCallee(info *types.Info, call *ast.CallExpr) bool {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	full := fn.FullName()
	if droppederrExcluded[full] {
		return true
	}
	for _, prefix := range droppederrExcludedRecv {
		if strings.HasPrefix(full, prefix) {
			return true
		}
	}
	return false
}
