// Fixtures for the hotalloc analyzer: advisory allocation hygiene in
// per-event loops. The checks are purely local, so no catalog override
// is needed.
package fixture

import "fmt"

func hotConsume(s string) {}

func hotConsumeInts(xs []int) {}

func hotCleanup() {}

// --- append without preallocation ---

func hotallocAppendUncapped(events []int) []int {
	var out []int
	for _, e := range events {
		out = append(out, e*2) // want hotalloc
	}
	return out
}

func hotallocEmptyLiteral(events []int) []int {
	out := []int{}
	for _, e := range events {
		if e > 0 {
			out = append(out, e) // want hotalloc
		}
	}
	return out
}

func hotallocPreallocated(events []int) []int {
	out := make([]int, 0, len(events))
	for _, e := range events {
		out = append(out, e*2) // ok: capacity reserved before the loop
	}
	return out
}

func hotallocFreshPerIteration(events []int) {
	for _, e := range events {
		var batch []int
		batch = append(batch, e) // ok: a fresh slice each iteration
		hotConsumeInts(batch)
	}
}

func hotallocBulkAppend(chunks [][]int) []int {
	var out []int
	for _, c := range chunks {
		out = append(out, c...) // ok: bulk growth, not per-event
	}
	return out
}

// --- fmt formatting inside loops ---

func hotallocSprintfInLoop(names []string) {
	for _, n := range names {
		hotConsume(fmt.Sprintf("event-%s", n)) // want hotalloc
	}
}

func hotallocSprintfHoisted(prefix string, names []string) {
	label := fmt.Sprintf("event-%s", prefix) // ok: hoisted out of the loop
	for range names {
		hotConsume(label)
	}
}

// --- defer inside loops ---

func hotallocDeferInLoop(events []int) {
	for range events {
		defer hotCleanup() // want hotalloc
	}
}

func hotallocDeferInClosure(events []int) {
	for range events {
		func() {
			defer hotCleanup() // ok: runs at each closure's exit
		}()
	}
}

// --- allowed ---

func hotallocAllowed(events []int) []int {
	var hits []int
	for _, e := range events {
		if e > 100 {
			hits = append(hits, e) //aqualint:allow hotalloc rare hits; preallocating len(events) would waste more than it saves
		}
	}
	return hits
}
