package nn

import (
	"math"

	"aquatope/internal/stats"
)

// Activation selects the nonlinearity of a Dense layer.
type Activation int

const (
	// Identity applies no nonlinearity.
	Identity Activation = iota
	// Tanh is the hyperbolic tangent, the paper's choice for the
	// prediction network.
	Tanh
	// Sigmoid is the logistic function.
	Sigmoid
	// ReLU is max(0, x).
	ReLU
)

func (a Activation) apply(x float64) float64 {
	switch a {
	case Tanh:
		return math.Tanh(x)
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	default:
		return x
	}
}

// derivFromOutput returns d(act)/dx expressed via the activation output y.
func (a Activation) derivFromOutput(y float64) float64 {
	switch a {
	case Tanh:
		return 1 - y*y
	case Sigmoid:
		return y * (1 - y)
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	default:
		return 1
	}
}

// Dense is a fully connected layer y = act(Wx + b).
type Dense struct {
	In, Out int
	Act     Activation
	W       *Param // Out×In, row-major
	B       *Param // Out

	// caches from the most recent Forward, used by Backward. lastOut is a
	// reusable buffer: Forward's return value stays valid only until the
	// next Forward on this layer.
	lastIn  []float64
	lastOut []float64
}

// NewDense returns a Dense layer with Xavier-initialized weights.
func NewDense(name string, in, out int, act Activation, rng *stats.RNG) *Dense {
	d := &Dense{In: in, Out: out, Act: act,
		W: NewParam(name+".W", out*in), B: NewParam(name+".b", out)}
	d.W.InitXavier(in, out, rng)
	return d
}

// Params returns the layer's trainable parameters.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// Forward computes the layer output, caching activations for Backward.
// The returned slice is a view into a per-layer buffer reused by the next
// Forward call.
func (d *Dense) Forward(x []float64) []float64 {
	if len(x) != d.In {
		panic("nn: dense input size mismatch")
	}
	out := grow(d.lastOut, d.Out)
	for o := 0; o < d.Out; o++ {
		s := d.B.W[o]
		row := d.W.W[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			s += row[i] * xi
		}
		out[o] = d.Act.apply(s)
	}
	d.lastIn = x
	d.lastOut = out
	return out
}

// Backward accumulates gradients given dL/dy and returns dL/dx. It must
// follow a Forward call on the same input.
func (d *Dense) Backward(dy []float64) []float64 {
	if len(dy) != d.Out {
		panic("nn: dense grad size mismatch")
	}
	dx := make([]float64, d.In)
	for o := 0; o < d.Out; o++ {
		g := dy[o] * d.Act.derivFromOutput(d.lastOut[o])
		d.B.G[o] += g
		row := d.W.W[o*d.In : (o+1)*d.In]
		grow := d.W.G[o*d.In : (o+1)*d.In]
		for i := 0; i < d.In; i++ {
			grow[i] += g * d.lastIn[i]
			dx[i] += g * row[i]
		}
	}
	return dx
}

// DropoutMask is a per-unit keep/scale mask. With inverted dropout the kept
// units are scaled by 1/(1-rate) so inference needs no rescaling.
type DropoutMask []float64

// NewDropoutMask samples a mask of the given size with drop probability
// rate. A rate of 0 returns an all-ones mask.
func NewDropoutMask(size int, rate float64, rng *stats.RNG) DropoutMask {
	m := make(DropoutMask, size)
	if rate <= 0 {
		for i := range m {
			m[i] = 1
		}
		return m
	}
	keep := 1 - rate
	for i := range m {
		if rng.Float64() < keep {
			m[i] = 1 / keep
		}
	}
	return m
}

// ResampleDropoutMask refills m in place with a fresh mask of the given
// size, growing the buffer only when needed. It consumes exactly the same
// RNG draws as NewDropoutMask, so swapping one for the other is
// stream-preserving.
func ResampleDropoutMask(m DropoutMask, size int, rate float64, rng *stats.RNG) DropoutMask {
	if cap(m) < size {
		m = make(DropoutMask, size)
	}
	m = m[:size]
	if rate <= 0 {
		for i := range m {
			m[i] = 1
		}
		return m
	}
	keep := 1 - rate
	for i := range m {
		if rng.Float64() < keep {
			m[i] = 1 / keep
		} else {
			m[i] = 0
		}
	}
	return m
}

// Apply returns x element-wise multiplied by the mask (new slice).
func (m DropoutMask) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] * m[i]
	}
	return out
}

// ApplyInto writes x element-wise multiplied by the mask into dst, which
// must have the same length as x.
func (m DropoutMask) ApplyInto(x, dst []float64) {
	for i := range x {
		dst[i] = x[i] * m[i]
	}
}

// MLP is a stack of Dense layers with optional dropout masks between them.
// When Train is false dropout is skipped entirely; when true, fresh masks
// are sampled on every forward pass (MC dropout keeps Train=true at
// inference to draw from the approximate posterior).
type MLP struct {
	Layers      []*Dense
	DropoutRate float64
	Train       bool
	rng         *stats.RNG

	masks []DropoutMask // masks used by the last forward, per hidden layer

	// Reusable per-hidden-layer buffers: the mask storage behind masks and
	// the post-dropout activations.
	maskBufs []DropoutMask
	hBufs    [][]float64
}

// NewMLP builds an MLP with the given layer sizes (len >= 2), hidden
// activation act and identity output.
func NewMLP(name string, sizes []int, act Activation, dropout float64, rng *stats.RNG) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	m := &MLP{DropoutRate: dropout, rng: rng}
	for i := 0; i+1 < len(sizes); i++ {
		a := act
		if i+2 == len(sizes) {
			a = Identity
		}
		m.Layers = append(m.Layers, NewDense(name, sizes[i], sizes[i+1], a, rng))
	}
	return m
}

// Params returns all trainable parameters.
func (m *MLP) Params() []*Param {
	var ps []*Param
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Forward runs the network. Dropout applies after every hidden layer when
// Train is true.
func (m *MLP) Forward(x []float64) []float64 {
	m.masks = m.masks[:0]
	h := x
	mi := 0
	for i, l := range m.Layers {
		h = l.Forward(h)
		if m.Train && m.DropoutRate > 0 && i+1 < len(m.Layers) {
			if mi >= len(m.maskBufs) {
				m.maskBufs = append(m.maskBufs, nil)
				m.hBufs = append(m.hBufs, nil)
			}
			m.maskBufs[mi] = ResampleDropoutMask(m.maskBufs[mi], len(h), m.DropoutRate, m.rng)
			m.hBufs[mi] = grow(m.hBufs[mi], len(h))
			m.maskBufs[mi].ApplyInto(h, m.hBufs[mi])
			h = m.hBufs[mi]
			m.masks = append(m.masks, m.maskBufs[mi])
			mi++
		}
	}
	return h
}

// Backward accumulates parameter gradients for the last Forward and returns
// the gradient with respect to the input.
func (m *MLP) Backward(dy []float64) []float64 {
	g := dy
	maskIdx := len(m.masks) - 1
	for i := len(m.Layers) - 1; i >= 0; i-- {
		if m.Train && m.DropoutRate > 0 && i+1 < len(m.Layers) {
			g = m.masks[maskIdx].Apply(g)
			maskIdx--
		}
		g = m.Layers[i].Backward(g)
	}
	return g
}

// MSELoss returns the mean squared error and the gradient dL/dpred.
func MSELoss(pred, target []float64) (float64, []float64) {
	if len(pred) != len(target) {
		panic("nn: loss size mismatch")
	}
	n := float64(len(pred))
	grad := make([]float64, len(pred))
	var loss float64
	for i := range pred {
		d := pred[i] - target[i]
		loss += d * d
		grad[i] = 2 * d / n
	}
	return loss / n, grad
}
