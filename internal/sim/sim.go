// Package sim implements the discrete-event simulation engine the FaaS
// platform substrate runs on: a virtual clock, a binary-heap event queue with
// stable FIFO ordering for simultaneous events, and cancellable timers.
//
// All simulated time is expressed as float64 seconds from the start of the
// simulation. The engine is single-goroutine and deterministic: running the
// same event program twice yields identical schedules.
package sim

import (
	"container/heap"
	"fmt"
	"math"

	"aquatope/internal/telemetry"
)

// Time is a point in virtual time, in seconds since simulation start.
type Time = float64

// Event is a scheduled callback.
type Event struct {
	at       Time
	seq      uint64 // tie-breaker preserving schedule order
	fn       func()
	canceled bool
	index    int     // heap index, -1 when popped
	eng      *Engine // owner, for live-event accounting on Cancel
}

// Cancel prevents a pending event from firing. Canceling an event that
// already fired (or canceling twice) is a no-op.
func (e *Event) Cancel() {
	if e == nil || e.canceled {
		return
	}
	e.canceled = true
	// Still in the queue: it no longer counts as a live pending event.
	if e.eng != nil && e.index >= 0 {
		e.eng.live--
	}
}

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e != nil && e.canceled }

// At returns the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulator.
type Engine struct {
	now    Time
	queue  eventQueue
	seq    uint64
	events uint64 // total events processed, for diagnostics
	live   int    // scheduled events that are neither canceled nor fired

	// Optional telemetry instruments (nil when not instrumented).
	evCount  *telemetry.Counter
	clockG   *telemetry.Gauge
	pendingG *telemetry.Gauge
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// SetMetrics registers the engine's telemetry instruments on reg: the
// "sim.events" counter plus "sim.clock_s" and "sim.pending_events" gauges,
// updated as events execute. A nil registry detaches them.
func (e *Engine) SetMetrics(reg *telemetry.Registry) {
	e.evCount = reg.Counter(telemetry.MetricSimEvents)
	e.clockG = reg.Gauge(telemetry.MetricSimClock)
	e.pendingG = reg.Gauge(telemetry.MetricSimPendingEvents)
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.events }

// Pending returns the number of live scheduled events: canceled events are
// excluded even while they still occupy the queue, so gauges built on this
// reflect real outstanding work.
func (e *Engine) Pending() int { return e.live }

// Schedule runs fn at absolute virtual time at. Scheduling in the past
// panics: it always indicates a logic bug in the caller.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	if math.IsNaN(at) {
		panic("sim: scheduling event at NaN")
	}
	ev := &Event{at: at, seq: e.seq, fn: fn, eng: e}
	e.seq++
	heap.Push(&e.queue, ev)
	e.live++
	return ev
}

// After runs fn after delay seconds of virtual time. Negative delays are
// clamped to zero.
func (e *Engine) After(delay float64, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.Schedule(e.now+delay, fn)
}

// Step executes the next event. It returns false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue // live count already dropped at Cancel time
		}
		e.now = ev.at
		e.events++
		e.live--
		e.evCount.Inc()
		e.clockG.Set(e.now)
		e.pendingG.Set(float64(e.live))
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline (if it has not passed it already).
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 {
		// Peek without popping: heap root is index 0.
		next := e.queue[0]
		if next.canceled {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
