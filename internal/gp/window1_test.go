package gp

import (
	"math"
	"testing"

	"aquatope/internal/stats"
)

// TestWindow1IncrementalMatchesColdProperty is the window-size-1 companion
// of TestIncrementalMatchesColdProperty: with capacity 1 every Observe on a
// full window evicts to empty and extends from an empty factor, the edge
// where a stale jitter level can silently diverge from the cold path. 200+
// randomized sequences of observe/forget/refit must stay bitwise on the
// cold trajectory.
func TestWindow1IncrementalMatchesColdProperty(t *testing.T) {
	rng := stats.NewRNG(97)
	const dim = 2
	g := New(NewMatern52(dim), 0.01)
	g.SetWindow(1)
	probe := []float64{0.3, 0.7}
	steps, checks := 0, 0
	for steps < 240 || checks < 200 {
		op := rng.Float64()
		switch {
		case op < 0.7 || g.Len() == 0:
			x := []float64{rng.Float64(), rng.Float64()}
			if err := g.Observe(x, math.Cos(3*x[0])+rng.Normal(0, 0.1)); err != nil {
				t.Fatalf("observe: %v", err)
			}
		case op < 0.9:
			g.Forget()
		default:
			h := g.Kernel.Hyperparameters()
			for i := range h {
				h[i] += rng.Uniform(-0.2, 0.2)
			}
			g.Kernel.SetHyperparameters(h)
			X, y := g.Window()
			if err := g.Fit(X, y); err != nil {
				t.Fatalf("refit: %v", err)
			}
		}
		steps++
		if g.Len() < 1 {
			if g.jitter != 0 {
				t.Fatalf("step %d: empty GP holds stale jitter %g", steps, g.jitter)
			}
			continue
		}
		cold := cloneCold(t, g)
		if d := maxFactorDiff(g, cold); d > 0 {
			t.Fatalf("step %d: window-1 factor diverged by %g", steps, d)
		}
		im, iv := g.Posterior(probe)
		cm, cv := cold.Posterior(probe)
		if im != cm || iv != cv {
			t.Fatalf("step %d: posterior diverged: (%v,%v) vs (%v,%v)", steps, im, iv, cm, cv)
		}
		checks++
	}
	if checks < 200 {
		t.Fatalf("only %d checked sequences", checks)
	}
}

// TestDropToEmptyThenObserveEqualsColdFit pins the contract by name: after
// the window drops to empty (via Forget or an empty Fit), the next Observe
// must land in exactly the state of a cold Fit on that single point —
// including when the pre-drop factorization had escalated to a non-zero
// jitter.
func TestDropToEmptyThenObserveEqualsColdFit(t *testing.T) {
	g := New(NewRBF(1), 0.01)
	// Two nearly identical points force jitter escalation.
	if err := g.Fit([][]float64{{0.5}, {0.5 + 1e-13}}, []float64{1, 1}); err != nil {
		t.Fatalf("fit: %v", err)
	}
	if g.jitter == 0 {
		t.Skip("degenerate fit did not escalate jitter; edge not exercised")
	}
	g.Forget()
	g.Forget()
	if g.Len() != 0 {
		t.Fatalf("window not empty: %d", g.Len())
	}
	if g.jitter != 0 {
		t.Fatalf("drop-to-empty left stale jitter %g", g.jitter)
	}
	if err := g.Observe([]float64{0.2}, 3); err != nil {
		t.Fatalf("observe: %v", err)
	}
	cold := cloneCold(t, g)
	if d := maxFactorDiff(g, cold); d > 0 {
		t.Fatalf("observe-after-empty diverged from cold fit by %g", d)
	}
	m1, v1 := g.Posterior([]float64{0.25})
	m2, v2 := cold.Posterior([]float64{0.25})
	if m1 != m2 || v1 != v2 {
		t.Fatalf("posterior diverged: (%v,%v) vs (%v,%v)", m1, v1, m2, v2)
	}

	// Same contract via the empty-Fit path.
	g2 := New(NewRBF(1), 0.01)
	if err := g2.Fit([][]float64{{0.1}, {0.1 + 1e-13}}, []float64{2, 2}); err != nil {
		t.Fatalf("fit: %v", err)
	}
	if err := g2.Fit(nil, nil); err != nil {
		t.Fatalf("empty fit: %v", err)
	}
	if g2.jitter != 0 {
		t.Fatalf("empty Fit left stale jitter %g", g2.jitter)
	}
}
