package fixture

import "errors"

func fail() error { return errors.New("boom") }

func failWithValue() (int, error) { return 0, errors.New("boom") }

type closer struct{}

func (closer) Close() error { return nil }

func droppederrPositives() {
	fail()          // want droppederr
	failWithValue() // want droppederr
	defer fail()    // want droppederr
	go fail()       // want droppederr
	var c closer
	c.Close() // want droppederr
}

func droppederrNegatives() error {
	if err := fail(); err != nil {
		return err
	}
	// An explicit blank assignment is a visible, reviewable discard.
	_ = fail()
	n, _ := failWithValue()
	_ = n
	// Calls without an error result are not the analyzer's business.
	noErr()
	return nil
}

func noErr() {}

func droppederrAllowed() {
	fail() //aqualint:allow droppederr fixture demonstrating the escape hatch
}
