// Package serve is Aquatope's crash-safe live mode: a serving loop that
// decouples virtual time from wall time, ingests workflow arrivals from a
// record stream instead of a pre-synthesized trace, makes the same pool
// and configuration decisions as the batch controller (internal/core), and
// writes an atomic checkpoint at every decision-interval boundary so a
// killed controller can be restored mid-run.
//
// Restore is verified deterministic replay (DESIGN.md §15): a checkpoint
// is a journal position plus per-component state snapshots. Restoring
// rebuilds a fresh server from the identical configuration, re-ingests the
// durable journal through the normal serving loop — re-running search and
// training — and byte-compares the re-derived component snapshots against
// the stored ones at the checkpointed boundary before resuming live
// ingest. A restored run therefore produces byte-identical span and metric
// dumps to an uninterrupted run by construction, and the comparison turns
// any environment drift into a hard error instead of silent divergence.
package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Record is one streamed workflow arrival: a virtual timestamp (seconds
// from stream start) and the target application. Records must be
// non-decreasing in T — the stream carries virtual time, so ingest order
// is time order.
type Record struct {
	T   float64 `json:"t"`
	App string  `json:"app"`
}

// MarshalLine renders the record as its canonical JSONL line (no trailing
// newline). encoding/json emits shortest-round-trip floats, so the same
// record always produces the same bytes — the journal hash depends on it.
func (r Record) MarshalLine() ([]byte, error) {
	return json.Marshal(r)
}

// Source reads an arrival stream as JSONL records. Reads block on the
// underlying reader, which is the serving loop's backpressure: a slow
// consumer simply stops draining the pipe or socket.
type Source struct {
	sc   *bufio.Scanner
	line int
}

// NewSource wraps a JSONL stream. Blank lines are skipped.
func NewSource(r io.Reader) *Source {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &Source{sc: sc}
}

// Next returns the next record, or io.EOF at end of stream.
func (s *Source) Next() (Record, error) {
	for s.sc.Scan() {
		s.line++
		line := s.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return Record{}, fmt.Errorf("serve: stream line %d: %w", s.line, err)
		}
		return rec, nil
	}
	if err := s.sc.Err(); err != nil {
		return Record{}, fmt.Errorf("serve: stream line %d: %w", s.line+1, err)
	}
	return Record{}, io.EOF
}

// Skip discards the next n records — resuming a restored server against
// the original stream skips the prefix the journal already replayed.
func (s *Source) Skip(n int) error {
	for i := 0; i < n; i++ {
		if _, err := s.Next(); err != nil {
			return fmt.Errorf("serve: skipping %d already-journaled records: %w", n, err)
		}
	}
	return nil
}

// WriteStream writes arrivals for one application as a JSONL record
// stream — the recorded-stream format -emit-stream produces and -serve
// consumes (and the journal's on-disk format).
func WriteStream(w io.Writer, app string, arrivals []float64) error {
	bw := bufio.NewWriter(w)
	for _, at := range arrivals {
		line, err := Record{T: at, App: app}.MarshalLine()
		if err != nil {
			return err
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteStreamFile writes the stream to path (truncating).
func WriteStreamFile(path, app string, arrivals []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteStream(f, app, arrivals); err != nil {
		_ = f.Close() //aqualint:allow droppederr best-effort cleanup on an already-failing write path
		return err
	}
	return f.Close()
}
