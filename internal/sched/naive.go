package sched

import (
	"math"

	"aquatope/internal/faas"
	"aquatope/internal/pool"
	"aquatope/internal/resource"
	"aquatope/internal/telemetry"
)

func init() {
	Register("naive",
		"peak-provisioned baseline: every function at the maximum CPU/memory configuration, pools pinned to the all-time demand peak with an hour-long keep-alive",
		func(o Options) Scheduler {
			return &scheduler{
				name: "naive",
				desc: Describe("naive"),
				pool: &peakPool{meter: o.Meter},
				conf: &naiveConf{opts: o},
			}
		})
}

// peakPool pins every function's pre-warm target at the highest demand
// ever observed — the never-cold, never-cheap upper bound.
type peakPool struct {
	meter *Meter
}

func (p *peakPool) Name() string { return "naive" }

// Policy implements PoolSizer.
func (p *peakPool) Policy(string) pool.Policy {
	return meterPolicy(&peakPolicy{}, p.meter)
}

// peakPolicy is the per-function pool.Policy behind peakPool.
type peakPolicy struct{}

func (p *peakPolicy) Name() string { return "naive" }

// Fit implements pool.Policy.
func (p *peakPolicy) Fit(pool.FitData) {}

// Decide implements pool.Policy: target the all-time peak.
func (p *peakPolicy) Decide(history []float64, _ int) pool.Decision {
	peak := 0.0
	for _, d := range history {
		if d > peak {
			peak = d
		}
	}
	target := int(math.Ceil(peak))
	return pool.Decision{Target: target, KeepAlive: 3600, Predicted: peak}
}

// ---------------------------------------------------------------------------

// naiveConf builds naiveManager per application.
type naiveConf struct {
	opts Options
}

func (c *naiveConf) Name() string { return "naive" }

// Manager implements Configurator.
func (c *naiveConf) Manager(space *resource.Space, prof *resource.Profiler, qos float64, _ int64) resource.Manager {
	m := &naiveManager{space: space, prof: prof, qos: qos, tracer: telemetry.Nop{}}
	if c.opts.Meter == nil {
		return m
	}
	return meteredManager{Manager: m, meter: c.opts.Meter}
}

// naiveManager makes exactly one decision: everything at the top of the
// grid. The single profiling sample only prices the choice.
type naiveManager struct {
	space  *resource.Space
	prof   *resource.Profiler
	qos    float64
	tracer telemetry.Tracer

	samples int
	best    map[string]faas.ResourceConfig
	bestC   float64
	haveB   bool
}

// Name implements resource.Manager.
func (m *naiveManager) Name() string { return "naive" }

// Samples implements resource.Manager.
func (m *naiveManager) Samples() int { return m.samples }

// SetTracer installs the explain-record sink (sched.decision points).
func (m *naiveManager) SetTracer(t telemetry.Tracer) {
	if t != nil {
		m.tracer = t
	}
}

// Step implements resource.Manager.
func (m *naiveManager) Step() int {
	if m.haveB {
		return 0
	}
	cfgs := make(map[string]faas.ResourceConfig, len(m.space.Functions))
	maxCPU := m.space.CPUOptions[len(m.space.CPUOptions)-1]
	maxMem := m.space.MemOptions[len(m.space.MemOptions)-1]
	for _, fn := range m.space.Functions {
		cfgs[fn] = faas.ResourceConfig{CPU: maxCPU, MemoryMB: maxMem}
	}
	cost, lat := m.prof.Sample(cfgs)
	m.samples++
	m.best, m.bestC, m.haveB = cfgs, cost, true
	if m.tracer.Enabled() {
		m.tracer.Point(telemetry.KindSchedDecision, "naive", 0, 0, telemetry.Fields{
			"iter": 0,
			"cost": cost,
			"lat":  lat,
			"qos":  m.qos,
			"peak": 1,
		})
	}
	return 1
}

// Best implements resource.Manager.
func (m *naiveManager) Best() (map[string]faas.ResourceConfig, float64, bool) {
	return m.best, m.bestC, m.haveB
}
