// Command aquabench regenerates every table and figure of the paper's
// evaluation (§8) by iterating the experiments registry. Each experiment
// prints the same rows/series the paper reports; absolute numbers come from
// the simulated substrate, so compare shapes and orderings, not raw values
// (see EXPERIMENTS.md).
//
// Replications fan out across -parallel workers; any worker count produces
// byte-identical stdout (timing lines go to stderr).
//
// Usage:
//
//	aquabench -list                   # registered experiments
//	aquabench -exp table1             # one experiment
//	aquabench -exp all                # everything
//	aquabench -exp fig13 -scale full  # paper-scale repetitions
//	aquabench -exp all -format json   # mechanical output
//	aquabench -exp all -bench-out BENCH_aquabench.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux, served behind -pprof
	"os"
	"runtime"
	"time"

	"aquatope/internal/experiments"
	"aquatope/internal/experiments/runner"
	"aquatope/internal/telemetry"
)

// benchReport is the -bench-out file layout: the repo's performance
// trajectory for the evaluation harness.
type benchReport struct {
	Scale            string         `json:"scale"`
	Parallel         int            `json:"parallel"`
	Workers          int            `json:"workers"`
	GOMAXPROCS       int            `json:"gomaxprocs"`
	Seed             int64          `json:"seed"`
	TotalWallSeconds float64        `json:"total_wall_seconds"`
	Experiments      []runner.Entry `json:"experiments"`
}

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list), or all")
	scaleName := flag.String("scale", "quick", "experiment scale: quick | full")
	seed := flag.Int64("seed", 1, "global random seed")
	parallel := flag.Int("parallel", 0, "replication workers per experiment (0 = GOMAXPROCS, 1 = serial)")
	format := flag.String("format", "table", "output format: table | json")
	list := flag.Bool("list", false, "list registered experiments and exit")
	traceOut := flag.String("trace-out", "", "write telemetry spans from end-to-end experiments as JSONL to this file")
	metricsOut := flag.String("metrics-out", "", "write the metric registry snapshot as JSON to this file")
	benchOut := flag.String("bench-out", "", "write per-experiment wall/busy timing and speedup as JSON to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) while experiments run")
	flag.Parse()

	if *pprofAddr != "" {
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pprof listener:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "pprof on http://%s/debug/pprof/\n", ln.Addr())
		go func() {
			// DefaultServeMux carries the net/http/pprof handlers.
			if err := http.Serve(ln, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof server:", err)
			}
		}()
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-18s %s\n", e.ID(), e.Title())
		}
		return
	}
	if *format != "table" && *format != "json" {
		fmt.Fprintf(os.Stderr, "unknown format %q; available: table, json\n", *format)
		os.Exit(2)
	}

	scale := experiments.Quick
	if *scaleName == "full" {
		scale = experiments.Full
	}
	scale.Seed = *seed
	scale.Parallel = *parallel

	var collector *telemetry.Collector
	if *traceOut != "" {
		collector = telemetry.NewCollector()
		scale.Collector = collector
	}
	var registry *telemetry.Registry
	if *metricsOut != "" {
		registry = telemetry.NewRegistry()
		scale.Registry = registry
	}
	bench := runner.NewBench()
	scale.Bench = bench

	var targets []experiments.Experiment
	if *exp == "all" {
		targets = experiments.All()
	} else {
		e, ok := experiments.Get(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available:\n", *exp)
			for _, reg := range experiments.All() {
				fmt.Fprintf(os.Stderr, "  %-18s %s\n", reg.ID(), reg.Title())
			}
			os.Exit(2)
		}
		targets = []experiments.Experiment{e}
	}

	workers := scale.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	suiteStart := time.Now() //aqualint:allow wallclock benchmark harness reports real elapsed time, not simulated time
	var jsonResults []experiments.ResultJSON
	for _, e := range targets {
		start := time.Now() //aqualint:allow wallclock benchmark harness reports real elapsed time per experiment, not simulated time
		r := e.Run(scale)
		if *format == "json" {
			jsonResults = append(jsonResults, experiments.MarshalResult(e, r))
		} else {
			fmt.Printf("=== %s ===\n", e.Title())
			fmt.Print(r.Table())
			fmt.Println()
		}
		// Timing goes to stderr so stdout stays byte-identical run to run.
		//aqualint:allow wallclock real elapsed time of the experiment run
		fmt.Fprintf(os.Stderr, "(%s, scale=%s, workers=%d, %.1fs)\n", e.ID(), *scaleName, workers, time.Since(start).Seconds())
	}
	totalWall := time.Since(suiteStart).Seconds() //aqualint:allow wallclock benchmark harness reports real elapsed time, not simulated time

	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonResults); err != nil {
			fmt.Fprintln(os.Stderr, "writing results:", err)
			os.Exit(1)
		}
	}

	if collector != nil {
		if err := collector.WriteJSONLFile(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "writing trace:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d spans to %s\n", collector.Len(), *traceOut)
	}
	if registry != nil {
		if err := registry.WriteJSONFile(*metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, "writing metrics:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote metrics snapshot to %s\n", *metricsOut)
	}
	if *benchOut != "" {
		report := benchReport{
			Scale:            *scaleName,
			Parallel:         *parallel,
			Workers:          workers,
			GOMAXPROCS:       runtime.GOMAXPROCS(0),
			Seed:             *seed,
			TotalWallSeconds: totalWall,
			Experiments:      bench.Entries(),
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err == nil {
			err = os.WriteFile(*benchOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "writing bench report:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote bench report to %s\n", *benchOut)
	}
}
