package timeseries

import "aquatope/internal/stats"

// Theta implements the Theta method (Assimakopoulos & Nikolopoulos 2000),
// one of the classic forecasting models the paper lists alongside
// exponential smoothing and ARIMA (§4.2). The standard Theta(0,2) variant
// averages an extrapolated linear trend (theta=0 line) with simple
// exponential smoothing of the theta=2 line.
type Theta struct {
	// Alpha is the SES smoothing constant (fitted on Fit when 0).
	Alpha float64

	slope, intercept float64
	level            float64
	n                int
}

// NewTheta returns a Theta-method predictor.
func NewTheta() *Theta { return &Theta{} }

// Name implements Predictor.
func (th *Theta) Name() string { return "theta" }

// Fit estimates the linear trend of the series and the SES state of the
// theta=2 line, grid-searching alpha by in-sample one-step SSE.
func (th *Theta) Fit(train []float64) {
	th.n = len(train)
	if len(train) < 3 {
		if len(train) > 0 {
			th.level = stats.Mean(train)
		}
		return
	}
	// OLS trend (the theta=0 line).
	var sx, sy, sxx, sxy float64
	for i, v := range train {
		x := float64(i)
		sx += x
		sy += v
		sxx += x * x
		sxy += x * v
	}
	fn := float64(len(train))
	den := fn*sxx - sx*sx
	if den != 0 {
		th.slope = (fn*sxy - sx*sy) / den
		th.intercept = (sy - th.slope*sx) / fn
	} else {
		th.intercept = sy / fn
	}
	// Theta=2 line: 2*x_t - trend_t, smoothed with SES.
	theta2 := make([]float64, len(train))
	for i, v := range train {
		theta2[i] = 2*v - (th.intercept + th.slope*float64(i))
	}
	if th.Alpha <= 0 {
		best := -1.0
		for _, a := range []float64{0.1, 0.2, 0.3, 0.5, 0.7, 0.9} {
			sse := sesSSE(theta2, a)
			if best < 0 || sse < best {
				best = sse
				th.Alpha = a
			}
		}
	}
	th.level = theta2[0]
	for _, v := range theta2[1:] {
		th.level = th.Alpha*v + (1-th.Alpha)*th.level
	}
}

func sesSSE(xs []float64, alpha float64) float64 {
	level := xs[0]
	var sse float64
	for _, v := range xs[1:] {
		e := v - level
		sse += e * e
		level = alpha*v + (1-alpha)*level
	}
	return sse
}

// Forecast implements Predictor with rolling one-step-ahead updates.
func (th *Theta) Forecast(test []float64) []float64 {
	out := make([]float64, len(test))
	for i, x := range test {
		t := float64(th.n + i)
		trend := th.intercept + th.slope*t
		// Theta combination: average of the extrapolated trend and the
		// smoothed theta=2 line.
		pred := 0.5*trend + 0.5*th.level
		if pred < 0 {
			pred = 0
		}
		out[i] = pred
		// Update the SES state with the new observation's theta=2 value.
		theta2 := 2*x - trend
		a := th.Alpha
		if a <= 0 {
			a = 0.3
		}
		th.level = a*theta2 + (1-a)*th.level
	}
	return out
}
