package lint

import (
	"go/ast"
	"go/types"
)

var hotallocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc: "advisory allocation-hygiene lint for hot-path packages: " +
		"append without preallocation in per-event loops, fmt string " +
		"formatting inside loops, and defer inside loops all allocate " +
		"per iteration — visible at fleet scale",
	NeedsTypes: true,
	Run:        runHotalloc,
}

// hotallocFmtAllocators are the fmt functions that allocate a fresh
// string or slice per call.
var hotallocFmtAllocators = map[string]bool{
	"Sprintf":  true,
	"Sprint":   true,
	"Sprintln": true,
	"Appendf":  true,
}

func runHotalloc(prog *Program, pkg *Package, file *File, rule Rule, report Reporter) {
	fmtNames, _, _ := importNames(file.AST, "fmt")
	info := pkg.Info
	// Track the enclosing function body (for append-target declarations)
	// and loop depth along the traversal.
	var stack []ast.Node
	loopDepth := func() int {
		d := 0
		for _, n := range stack {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				d++
			case *ast.FuncLit:
				// A closure resets the loop context: a defer inside a
				// closure inside a loop runs per closure call, not per
				// iteration of the outer loop.
				d = 0
			}
		}
		return d
	}
	ast.Inspect(file.AST, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		switch x := n.(type) {
		case *ast.DeferStmt:
			if loopDepth() > 0 {
				report(x.Pos(), "defer inside a loop allocates a deferred frame per iteration and only runs at function exit; hoist the loop body into a function or call the cleanup explicitly")
			}
		case *ast.CallExpr:
			if loopDepth() > 0 {
				if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
					if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && fmtNames[id.Name] && hotallocFmtAllocators[sel.Sel.Name] {
						report(x.Pos(), "fmt.%s inside a loop allocates a string per iteration on a hot path; hoist it, cache the formatted value, or use strconv into a reused buffer", sel.Sel.Name)
					}
				}
			}
		case *ast.AssignStmt:
			if rs := enclosingRange(stack); rs != nil {
				checkAppendPrealloc(info, x, rs, enclosingFuncBody(stack), report)
			}
		}
		stack = append(stack, n)
		return true
	})
}

// enclosingRange returns the innermost range statement on the stack, or
// nil; a function literal boundary resets the context like loopDepth.
func enclosingRange(stack []ast.Node) *ast.RangeStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.RangeStmt:
			return n
		case *ast.FuncLit:
			return nil
		}
	}
	return nil
}

// checkAppendPrealloc flags `xs = append(xs, …)` inside a range loop when
// xs is a function-local slice declared without capacity: the loop's size
// is knowable (it ranges over a finite collection), so the backing array
// can be preallocated instead of grown geometrically per event.
func checkAppendPrealloc(info *types.Info, st *ast.AssignStmt, rs *ast.RangeStmt, encl *ast.BlockStmt, report Reporter) {
	if encl == nil || len(st.Lhs) != len(st.Rhs) {
		return
	}
	for i, rhs := range st.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fid.Name != "append" {
			continue
		}
		// append(xs, ys...) growth is bulk, not per-event; skip.
		if call.Ellipsis.IsValid() {
			continue
		}
		obj := lhsObject(info, st.Lhs[i])
		if obj == nil || obj.Pos() < encl.Pos() || obj.Pos() > encl.End() {
			continue // not function-local (field, package var, param)
		}
		if obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End() {
			continue // declared inside the loop: fresh slice per iteration
		}
		if declaredWithoutCap(info, encl, obj) {
			report(st.Pos(), "append to %s grows an uncapped slice once per iteration; preallocate with make(%s, 0, len(…)) before the loop", obj.Name(), types.TypeString(obj.Type(), nil))
		}
	}
}

// declaredWithoutCap reports whether the slice variable's declaration has
// no usable capacity: `var xs []T`, `xs := []T{}`, or `xs := make([]T, 0)`
// with no capacity argument. Declarations with a capacity (make 3-arg),
// non-empty literals, or initializers we cannot see return false.
func declaredWithoutCap(info *types.Info, encl *ast.BlockStmt, obj types.Object) bool {
	result := false
	found := false
	check := func(init ast.Expr) {
		found = true
		if init == nil {
			result = true // var xs []T
			return
		}
		switch x := ast.Unparen(init).(type) {
		case *ast.CompositeLit:
			result = len(x.Elts) == 0
		case *ast.CallExpr:
			if fid, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && fid.Name == "make" {
				// make([]T, 0) without a cap; make([]T, 0, n) has one.
				if len(x.Args) == 2 {
					if lit, ok := ast.Unparen(x.Args[1]).(*ast.BasicLit); ok && lit.Value == "0" {
						result = true
					}
				}
			}
		}
	}
	ast.Inspect(encl, func(n ast.Node) bool {
		if found {
			return false
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, l := range st.Lhs {
				if id, ok := l.(*ast.Ident); ok && info.Defs[id] == obj && len(st.Lhs) == len(st.Rhs) {
					check(st.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, id := range st.Names {
				if info.Defs[id] != obj {
					continue
				}
				if i < len(st.Values) {
					check(st.Values[i])
				} else {
					check(nil)
				}
			}
		}
		return !found
	})
	return found && result
}
