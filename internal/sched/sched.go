// Package sched is the pluggable resource-management layer: it splits a
// "scheduler" — the brain that decides how many containers to pre-warm and
// what CPU/memory each function gets — into two interfaces (PoolSizer and
// Configurator) behind one registry, so competing policies from the
// literature run head-to-head on the same platform under the same
// telemetry. The paper's hybrid-BNN pool + customized-BO configurator is
// the first registered implementation; Jolteon-style probabilistic-bound
// solving, Caerus/Orion-style static allocation, and a peak-provisioned
// naive baseline compete against it in the `-exp arena` sweep.
//
// Every implementation must obey the repo's determinism invariants
// (virtual time only, seeded RNGs only — machine-checked by aqualint) and
// must emit one explain record per decision: pool decisions surface as
// pool.decision points through pool.Manager, configuration decisions as
// bo.decision (the BO engine) or sched.decision (everything else) points,
// all auditable by cmd/aquatrace.
package sched

import (
	"fmt"
	"sort"
	"sync"

	"aquatope/internal/bo"
	"aquatope/internal/pool"
	"aquatope/internal/resource"
	"aquatope/internal/telemetry"
)

// PoolSizer supplies the pre-warm pool policy for each function — the
// half of a scheduler that replaces the hard-wired pool.Manager→BNN
// coupling. Policy is called once per managed function before the run.
type PoolSizer interface {
	Name() string
	// Policy builds the pool policy driving one function's pre-warm
	// target and keep-alive (the core.PolicyFactory shape).
	Policy(fn string) pool.Policy
}

// Configurator supplies the per-application resource-configuration search
// — the half of a scheduler that replaces the hard-wired BO path. Manager
// is called once per application before the live run.
type Configurator interface {
	Name() string
	// Manager builds the configuration search for one application (the
	// core.ManagerFactory shape).
	Manager(space *resource.Space, prof *resource.Profiler, qos float64, seed int64) resource.Manager
}

// Scheduler couples a PoolSizer and a Configurator under one name. Either
// half may be nil: a nil PoolSizer leaves pools to the provider keep-alive,
// a nil Configurator keeps each application's default configuration.
type Scheduler interface {
	Name() string
	Description() string
	PoolSizer() PoolSizer
	Configurator() Configurator
}

// Options parameterizes a scheduler built from the registry. The zero
// value reproduces cmd/aquatope's defaults; experiments shrink the model
// knobs to fit their scale.
type Options struct {
	// Pool model shape for the aquatope/aqualite BNN policy. Zero values
	// take the cmd/aquatope defaults (encoder 20, pred [20 10], epochs
	// 8/24, 12 MC passes, LR 0.01).
	EncoderHidden int
	PredHidden    []int
	EncoderEpochs int
	PredEpochs    int
	MCSamples     int
	LR            float64
	// Window is the BNN encoder history length in minutes (default 40).
	Window int
	// HeadroomZ scales the BNN uncertainty headroom (default 2.5).
	HeadroomZ float64
	// MaxTrainSamples bounds BNN training-set size (0 = everything).
	MaxTrainSamples int
	// Lite drops the uncertainty headroom (the AquaLite ablation).
	Lite bool
	// Risk is the tail probability for probabilistic-bound schedulers:
	// jolteon sizes pools at the (1-Risk) demand quantile and accepts
	// configurations whose modeled P(latency > QoS) <= Risk (default
	// 0.05, i.e. a P95 bound).
	Risk float64
	// SamplesPerCandidate is how many profiler samples jolteon draws per
	// candidate configuration to estimate the latency distribution
	// (default 3).
	SamplesPerCandidate int
	// BO declaratively tunes the customized-BO engine behind the
	// aquatope/aqualite configurator: kernel, acquisition, batch shape,
	// sliding window, refit-every-k schedule and cache toggles. Dim, QoS
	// and Seed are filled per application; the zero value reproduces the
	// engine defaults (and aqualite still forces EI + no anomaly pruning
	// on top of it).
	BO bo.Options
	// Meter, when non-nil, accrues deterministic decision-work accounting
	// for this scheduler instance (the arena's per-decision latency
	// column).
	Meter *Meter
}

func (o Options) risk() float64 {
	if o.Risk <= 0 || o.Risk >= 1 {
		return 0.05
	}
	return o.Risk
}

func (o Options) samplesPerCandidate() int {
	if o.SamplesPerCandidate <= 0 {
		return 3
	}
	return o.SamplesPerCandidate
}

// ---------------------------------------------------------------------------
// Decision-work metering.
//
// Wall-clock timing of decisions would break the byte-determinism contract
// (same-seed runs, any -parallel level, must produce identical experiment
// tables), so decision latency is *modeled*: every implementation accrues
// deterministic work counters — model evaluations per pool decision,
// profiled configurations per configuration step — and the meter converts
// them to seconds at nominal per-operation costs. Absolute values are
// order-of-magnitude calibrated against the Go implementations; the signal
// is the relative ordering between schedulers (a BNN+BO brain pays ~10^3×
// the per-decision compute of a static rule), which is preserved exactly.

// Nominal per-operation costs (seconds) for the modeled decision latency.
const (
	// PoolEvalCostS is one forward pass of a pool model (one BNN MC
	// sample, one forecast evaluation, one quantile scan).
	PoolEvalCostS = 50e-6
	// ProfileCostS is one profiled configuration: Profiler.Sample's
	// repeated workflow simulations plus the surrogate bookkeeping
	// around them.
	ProfileCostS = 25e-3
)

// Meter accrues deterministic decision-work accounting for one scheduler
// instance over one run. It is not safe for concurrent use; each
// replication builds its own scheduler and meter.
type Meter struct {
	// PoolDecisions counts pool-policy Decide calls; PoolEvals the model
	// evaluations they performed.
	PoolDecisions int
	PoolEvals     float64
	// ConfigDecisions counts configurator Step calls; ConfigProfiles the
	// profiled configurations they consumed.
	ConfigDecisions int
	ConfigProfiles  float64
}

// Decisions returns the total decision count (pool + configuration).
func (m *Meter) Decisions() int { return m.PoolDecisions + m.ConfigDecisions }

// WorkSeconds returns the modeled total decision compute.
func (m *Meter) WorkSeconds() float64 {
	return m.PoolEvals*PoolEvalCostS + m.ConfigProfiles*ProfileCostS
}

// MeanDecisionLatencyS returns the modeled mean latency per decision.
func (m *Meter) MeanDecisionLatencyS() float64 {
	n := m.Decisions()
	if n == 0 {
		return 0
	}
	return m.WorkSeconds() / float64(n)
}

// meteredPolicy counts Decide calls (and their modeled model evaluations)
// on the scheduler's meter without perturbing the wrapped policy.
type meteredPolicy struct {
	pool.Policy
	meter *Meter
	evals float64
}

func (p meteredPolicy) Decide(history []float64, minute int) pool.Decision {
	if p.meter != nil {
		p.meter.PoolDecisions++
		p.meter.PoolEvals += p.evals
	}
	return p.Policy.Decide(history, minute)
}

// meterPolicy wraps a pool policy with decision-work accounting. The
// modeled work per Decide is policy-shaped: a BNN pays one evaluation per
// MC sample, everything else one evaluation per decision.
func meterPolicy(p pool.Policy, m *Meter) pool.Policy {
	if m == nil {
		return p
	}
	evals := 1.0
	if aq, ok := p.(*pool.Aquatope); ok && !aq.Lite {
		mc := aq.ModelConfig.MCSamples
		if mc <= 0 {
			mc = 15
		}
		evals = float64(mc)
	}
	return meteredPolicy{Policy: p, meter: m, evals: evals}
}

// meteredManager counts Step calls and profiled configurations on the
// scheduler's meter. It forwards the optional Engine/SetTracer hooks so
// core's telemetry wiring sees through the wrapper.
type meteredManager struct {
	resource.Manager
	meter *Meter
}

func (m meteredManager) Step() int {
	n := m.Manager.Step()
	// A zero-sample Step is the manager reporting convergence, not a
	// decision — no explain record is emitted for it either.
	if m.meter != nil && n > 0 {
		m.meter.ConfigDecisions++
		m.meter.ConfigProfiles += float64(n)
	}
	return n
}

// Engine forwards the BO-engine accessor core.Run uses to wire tracing,
// so metering a BOManager does not hide its engine.
func (m meteredManager) Engine() *bo.Engine {
	if e, ok := m.Manager.(interface{ Engine() *bo.Engine }); ok {
		return e.Engine()
	}
	return nil
}

// SetTracer forwards the tracer hook non-BO configurators use to emit
// sched.decision explain records.
func (m meteredManager) SetTracer(t telemetry.Tracer) {
	if st, ok := m.Manager.(interface{ SetTracer(telemetry.Tracer) }); ok {
		st.SetTracer(t)
	}
}

// ---------------------------------------------------------------------------
// Registry.

type buildFunc func(Options) Scheduler

type registration struct {
	name, desc string
	build      buildFunc
}

var (
	regMu  sync.Mutex
	regs   []registration
	byName = make(map[string]registration)
)

// Register adds a scheduler builder to the package registry. Like the
// experiments registry it panics on an empty or duplicate name:
// registration is an init-time programming contract.
func Register(name, desc string, build func(Options) Scheduler) {
	regMu.Lock()
	defer regMu.Unlock()
	if name == "" {
		panic("sched: Register with empty name")
	}
	if _, dup := byName[name]; dup {
		panic(fmt.Sprintf("sched: duplicate scheduler %q", name))
	}
	r := registration{name: name, desc: desc, build: build}
	byName[name] = r
	regs = append(regs, r)
}

// New builds the scheduler registered under name with the given options.
func New(name string, o Options) (Scheduler, bool) {
	regMu.Lock()
	r, ok := byName[name]
	regMu.Unlock()
	if !ok {
		return nil, false
	}
	return r.build(o), true
}

// Names returns the registered scheduler names in sorted order.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(regs))
	for _, r := range regs {
		out = append(out, r.name)
	}
	sort.Strings(out)
	return out
}

// Describe returns the one-line description registered under name.
func Describe(name string) string {
	regMu.Lock()
	defer regMu.Unlock()
	return byName[name].desc
}

// scheduler is the concrete Scheduler the builders return.
type scheduler struct {
	name, desc string
	pool       PoolSizer
	conf       Configurator
}

func (s *scheduler) Name() string               { return s.name }
func (s *scheduler) Description() string        { return s.desc }
func (s *scheduler) PoolSizer() PoolSizer       { return s.pool }
func (s *scheduler) Configurator() Configurator { return s.conf }
