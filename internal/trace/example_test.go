package trace_test

import (
	"fmt"

	"aquatope/internal/trace"
)

// ExampleSynthesize generates a bursty diurnal trace and inspects its
// statistics.
func ExampleSynthesize() {
	tr := trace.Synthesize(trace.GenConfig{
		DurationMin:    1440, // one day
		MeanRatePerMin: 5,
		Diurnal:        0.6,
		CV:             2, // bursty inter-arrivals
		Seed:           1,
	})
	counts := tr.Counts()
	fmt.Printf("minutes covered: %d\n", len(counts))
	fmt.Printf("bursty (CV > 1.3): %v\n", tr.InterArrivalCV() > 1.3)

	train, test := tr.Split(1080)
	fmt.Printf("split keeps all arrivals: %v\n",
		len(train.Arrivals)+len(test.Arrivals) == len(tr.Arrivals))
	// Output:
	// minutes covered: 1440
	// bursty (CV > 1.3): true
	// split keeps all arrivals: true
}

// ExampleTrace_Features shows the external feature vector handed to the
// prediction model.
func ExampleTrace_Features() {
	tr := trace.SynthesizePeriodic(trace.PeriodicGenConfig{
		DurationMin: 120, PeriodMin: 30, TriggerType: 2, Seed: 4,
	})
	f := tr.Features(0)
	fmt.Printf("dims: %d (2 calendar + %d trigger one-hot)\n", len(f), trace.NumTriggerTypes)
	fmt.Printf("trigger 2 hot: %v\n", f[4] == 1)
	// Output:
	// dims: 5 (2 calendar + 3 trigger one-hot)
	// trigger 2 hot: true
}
