package pool

import (
	"math"
	"testing"

	"aquatope/internal/faas"
	"aquatope/internal/trace"
)

func testTrace(cv float64, seed int64) *trace.Trace {
	return trace.Synthesize(trace.GenConfig{
		DurationMin:    240,
		MeanRatePerMin: 12,
		Diurnal:        0.6,
		CV:             cv,
		Seed:           seed,
	})
}

func fastModel() *faas.SyntheticModel {
	m := faas.DefaultSyntheticModel()
	m.BaseExecSec = 0.4
	m.ColdInitSec = 2.0
	return m
}

// aquatopeFast returns an Aquatope policy with a small, fast model.
func aquatopeFast(lite bool) *Aquatope {
	cfg := DefaultModelConfig(trace.FeatureDim)
	cfg.EncoderHidden = 12
	cfg.PredHidden = []int{12, 8}
	cfg.EncoderEpochs = 8
	cfg.PredEpochs = 20
	cfg.MCSamples = 10
	cfg.LR = 0.01
	return &Aquatope{ModelConfig: cfg, Window: 32, HeadroomZ: 2, Lite: lite}
}

func runPolicy(t *testing.T, p Policy, tr *trace.Trace) RunResult {
	t.Helper()
	return Run(RunConfig{
		Trace:     tr,
		TrainMin:  150,
		Model:     fastModel(),
		Resources: faas.ResourceConfig{CPU: 1, MemoryMB: 512},
		Policy:    p,
		Seed:      1,
	})
}

func TestFixedKeepAliveBaseline(t *testing.T) {
	tr := testTrace(1.5, 2)
	res := runPolicy(t, &FixedKeepAlive{Duration: 600}, tr)
	if res.Invocations == 0 {
		t.Fatal("no invocations in test window")
	}
	if res.ColdRate < 0 || res.ColdRate > 1 {
		t.Fatalf("cold rate %v", res.ColdRate)
	}
	if res.ProvisionedMemGBs <= 0 {
		t.Fatal("no provisioned memory recorded")
	}
}

// periodicTrace is the cron-like regime where keep-alive policies suffer:
// clumps of invocations separated by gaps longer than the keep-alive.
func periodicTrace(seed int64) *trace.Trace {
	return trace.SynthesizePeriodic(trace.PeriodicGenConfig{
		DurationMin: 1920, PeriodMin: 25, JitterFrac: 0.12, ClumpMean: 2,
		Diurnal: 0.4, Seed: seed,
	})
}

func runPolicySparse(t *testing.T, p Policy, tr *trace.Trace) RunResult {
	t.Helper()
	m := fastModel()
	m.BaseExecSec = 6
	return Run(RunConfig{
		Trace:     tr,
		TrainMin:  1200,
		Model:     m,
		Resources: faas.ResourceConfig{CPU: 1, MemoryMB: 512},
		Policy:    p,
		Seed:      1,
	})
}

func TestAquatopeBeatsKeepAliveOnColdStarts(t *testing.T) {
	tr := periodicTrace(3)
	keep := runPolicySparse(t, &FixedKeepAlive{Duration: 600}, tr)
	aqua := runPolicySparse(t, aquatopeFast(false), tr)
	if aqua.ColdRate >= keep.ColdRate {
		t.Fatalf("aquatope cold %.3f should beat keep-alive %.3f", aqua.ColdRate, keep.ColdRate)
	}
	if keep.ColdRate < 0.3 {
		t.Fatalf("keep-alive cold %.3f unexpectedly low; regime wrong", keep.ColdRate)
	}
}

func TestAquatopeLowColdRate(t *testing.T) {
	tr := testTrace(1, 4)
	aqua := runPolicy(t, aquatopeFast(false), tr)
	if aqua.ColdRate > 0.15 {
		t.Fatalf("aquatope cold rate %.3f too high on tame trace", aqua.ColdRate)
	}
}

func TestAutoscaleReactsButLags(t *testing.T) {
	tr := testTrace(3, 5)
	auto := runPolicy(t, &Autoscale{}, tr)
	if auto.Invocations == 0 {
		t.Fatal("no invocations")
	}
	// Reactive scaling on a bursty trace should leave a visible cold rate.
	if auto.ColdRate == 0 {
		t.Fatal("autoscale should not fully eliminate cold starts on CV=3")
	}
}

func TestHistogramSetsReasonableKeepAlive(t *testing.T) {
	tr := testTrace(1, 6)
	h := &Histogram{}
	train, _ := tr.Split(150)
	h.Fit(FitData{Arrivals: train.Arrivals})
	d := h.Decide(nil, 0)
	if d.Target != -1 {
		t.Fatal("histogram is a keep-alive policy")
	}
	if d.KeepAlive < 60 || d.KeepAlive > 7200 {
		t.Fatalf("keep-alive %v outside bounds", d.KeepAlive)
	}
}

func TestHistogramDefaultWithoutData(t *testing.T) {
	h := &Histogram{}
	h.Fit(FitData{})
	if d := h.Decide(nil, 0); d.KeepAlive != 600 {
		t.Fatalf("default keep-alive = %v, want 600", d.KeepAlive)
	}
}

func TestIceBreakerTracksPeriodicDemand(t *testing.T) {
	// Clean periodic demand: predictions should track the pattern.
	ib := &IceBreaker{}
	demand := make([]float64, 300)
	for i := range demand {
		demand[i] = 10 + 8*math.Sin(2*math.Pi*float64(i)/60)
	}
	ib.Fit(FitData{Demand: demand[:250]})
	var errSum, n float64
	hist := append([]float64(nil), demand[250:260]...)
	for i := 10; i < 40; i++ {
		d := ib.Decide(hist, 250+i)
		actual := demand[250+len(hist)]
		errSum += math.Abs(float64(d.Target) - actual)
		n++
		hist = append(hist, actual)
	}
	if errSum/n > 6 {
		t.Fatalf("icebreaker mean error %v too high", errSum/n)
	}
}

func TestFaaSCacheDecision(t *testing.T) {
	fc := &FaaSCache{}
	d := fc.Decide([]float64{10}, 0)
	if d.KeepAlive != 3600 {
		t.Fatalf("faascache keep-alive = %v", d.KeepAlive)
	}
	if d.Target < 0 {
		t.Fatal("faascache should keep a reactive pool")
	}
}

func TestAutoscaleAsymmetry(t *testing.T) {
	a := &Autoscale{}
	// Step up.
	d1 := a.Decide([]float64{10}, 0)
	if d1.Target < 10 {
		t.Fatalf("scale-up target %d below demand", d1.Target)
	}
	// Step down is slow.
	d2 := a.Decide([]float64{10, 0}, 1)
	if d2.Target == 0 {
		t.Fatal("scale-down should be gradual")
	}
	if d2.Target > d1.Target {
		t.Fatal("target should not grow on falling demand")
	}
}

func TestDemandSeries(t *testing.T) {
	// Three arrivals at t=0, 10, 20 with 30s service: all overlap in min 0.
	d := DemandSeries([]float64{0, 10, 20}, 30, 2)
	if d[0] != 3 {
		t.Fatalf("demand[0] = %v, want 3", d[0])
	}
	if d[1] != 0 {
		t.Fatalf("demand[1] = %v, want 0", d[1])
	}
	// Long service spanning minutes.
	d = DemandSeries([]float64{50}, 120, 3)
	if d[0] != 1 || d[1] != 1 || d[2] != 1 {
		t.Fatalf("long service demand = %v", d)
	}
	if DemandSeries(nil, 0, 1)[0] != 0 {
		t.Fatal("empty arrivals should give zero demand")
	}
}

func TestSmooth(t *testing.T) {
	out := Smooth([]float64{0, 10, 20}, 2)
	if out[0] != 0 || out[1] != 5 || out[2] != 15 {
		t.Fatalf("smooth = %v", out)
	}
	same := Smooth([]float64{1, 2}, 1)
	if same[0] != 1 || same[1] != 2 {
		t.Fatal("window 1 should copy")
	}
}

func TestAquatopeVsLiteUncertainty(t *testing.T) {
	// On a bursty trace the uncertainty headroom should not increase cold
	// starts relative to AquaLite (usually it strictly reduces them).
	tr := testTrace(3, 7)
	full := runPolicy(t, aquatopeFast(false), tr)
	lite := runPolicy(t, aquatopeFast(true), tr)
	if full.ColdRate > lite.ColdRate+0.02 {
		t.Fatalf("uncertainty headroom hurt cold rate: full %.3f lite %.3f", full.ColdRate, lite.ColdRate)
	}
}

func TestPolicyNames(t *testing.T) {
	cases := map[string]Policy{
		"keepalive":  &FixedKeepAlive{},
		"autoscale":  &Autoscale{},
		"histogram":  &Histogram{},
		"faascache":  &FaaSCache{},
		"icebreaker": &IceBreaker{},
		"aquatope":   &Aquatope{},
		"aqualite":   &Aquatope{Lite: true},
	}
	for want, p := range cases {
		if p.Name() != want {
			t.Fatalf("name %q, want %q", p.Name(), want)
		}
	}
}

func TestMemorySeriesRecorded(t *testing.T) {
	tr := testTrace(1, 8)
	res := Run(RunConfig{
		Trace:        tr,
		TrainMin:     150,
		Model:        fastModel(),
		Resources:    faas.ResourceConfig{CPU: 1, MemoryMB: 512},
		Policy:       &FixedKeepAlive{Duration: 300},
		MemorySeries: true,
		Seed:         2,
	})
	if len(res.MemorySeriesGB) < 80 {
		t.Fatalf("memory series too short: %d", len(res.MemorySeriesGB))
	}
	for _, v := range res.MemorySeriesGB {
		if v < 0 {
			t.Fatal("negative memory")
		}
	}
}

func TestManagerHistoryTracksDemand(t *testing.T) {
	tr := testTrace(1, 9)
	res := runPolicy(t, &Autoscale{}, tr)
	if len(res.DemandSeries) < 80 {
		t.Fatalf("demand series too short: %d", len(res.DemandSeries))
	}
	var nonzero int
	for _, v := range res.DemandSeries {
		if v > 0 {
			nonzero++
		}
	}
	if nonzero < len(res.DemandSeries)/4 {
		t.Fatal("demand series mostly empty; sampling broken?")
	}
}
