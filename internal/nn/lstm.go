package nn

import (
	"math"

	"aquatope/internal/stats"
)

// LSTM is a single LSTM layer processing time-major sequences. It supports
// variational dropout in the style of Gal & Ghahramani (2016): one input
// mask and one recurrent mask are sampled per sequence and reused at every
// timestep, which is the dropout scheme the paper applies to its encoder.
//
// Forward/backward state lives in a per-layer cache that is reused across
// sequences: training loops run forward-then-backward per sample, so the
// steady-state allocation count per pass is zero regardless of sequence
// length.
type LSTM struct {
	In, Hidden int
	Wx         *Param // 4H×In
	Wh         *Param // 4H×H
	B          *Param // 4H

	// NoInputGrad skips the dL/dx computation in BackwardSeq (the returned
	// dxs entries are nil). Set it on layers whose input gradient nobody
	// consumes — e.g. a decoder fed constant zeros.
	NoInputGrad bool

	cache *lstmCache
}

type lstmStep struct {
	xMasked []float64 // input after variational mask (aliases the input when unmasked)
	hPrevM  []float64 // previous hidden after recurrent mask (aliases it when unmasked)
	xZero   bool      // the (masked) input is exactly all-zero this step
	i, f, g, o,
	c, h, tanhC []float64
	xBuf, hBuf []float64 // backing buffers for the masked views
}

type lstmCache struct {
	steps  []lstmStep // grow-only; steps[:n] belong to the last sequence
	n      int
	h0, c0 []float64
	mx, mh DropoutMask
	hs     [][]float64 // per-step views of steps[t].h

	z []float64 // 4H pre-activation scratch, shared across steps

	// Backward scratch: dz plus two ping-pong pairs for (dh, dc), and the
	// per-step input-gradient buffers handed back to the caller.
	dz, dhA, dhB, dcA, dcB []float64
	dxs                    [][]float64
}

// NewLSTM returns an LSTM layer with Xavier-initialized weights and a
// forget-gate bias of 1 (standard practice for gradient flow).
func NewLSTM(name string, in, hidden int, rng *stats.RNG) *LSTM {
	l := &LSTM{In: in, Hidden: hidden,
		Wx: NewParam(name+".Wx", 4*hidden*in),
		Wh: NewParam(name+".Wh", 4*hidden*hidden),
		B:  NewParam(name+".b", 4*hidden)}
	l.Wx.InitXavier(in, hidden, rng)
	l.Wh.InitXavier(hidden, hidden, rng)
	for j := hidden; j < 2*hidden; j++ { // forget-gate slice of the bias
		l.B.W[j] = 1
	}
	return l
}

// Params returns the trainable parameters.
func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// grow returns buf resized to n, reusing its backing array when possible.
// Contents are unspecified.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// growZero returns buf resized to n with every element zeroed.
func growZero(buf []float64, n int) []float64 {
	buf = grow(buf, n)
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

func allZero(x []float64) bool {
	for _, v := range x {
		if v != 0 {
			return false
		}
	}
	return true
}

// ForwardSeq runs the layer over a time-major sequence xs with initial
// state (h0, c0); nil initial states are treated as zeros. mx and mh are
// optional variational dropout masks (nil disables) applied to the input
// and the recurrent hidden state at every step. It returns the hidden state
// at each timestep.
//
// The returned slices (and FinalHidden) are views into the layer's reusable
// cache: they stay valid until the next ForwardSeq on this layer.
func (l *LSTM) ForwardSeq(xs [][]float64, h0, c0 []float64, mx, mh DropoutMask) [][]float64 {
	H := l.Hidden
	cache := l.cache
	if cache == nil {
		cache = &lstmCache{}
		l.cache = cache
	}
	cache.mx, cache.mh = mx, mh
	cache.h0 = growZero(cache.h0, H)
	cache.c0 = growZero(cache.c0, H)
	if h0 != nil {
		copy(cache.h0, h0)
	}
	if c0 != nil {
		copy(cache.c0, c0)
	}
	cache.z = grow(cache.z, 4*H)

	T := len(xs)
	for len(cache.steps) < T {
		cache.steps = append(cache.steps, lstmStep{})
	}
	cache.n = T
	if cap(cache.hs) < T {
		cache.hs = make([][]float64, T)
	}
	cache.hs = cache.hs[:T]

	h, c := cache.h0, cache.c0
	z := cache.z
	for t, x := range xs {
		if len(x) != l.In {
			panic("nn: lstm input size mismatch")
		}
		st := &cache.steps[t]
		st.i = grow(st.i, H)
		st.f = grow(st.f, H)
		st.g = grow(st.g, H)
		st.o = grow(st.o, H)
		st.c = grow(st.c, H)
		st.h = grow(st.h, H)
		st.tanhC = grow(st.tanhC, H)
		xm := x
		if mx != nil {
			st.xBuf = grow(st.xBuf, len(x))
			mx.ApplyInto(x, st.xBuf)
			xm = st.xBuf
		}
		hm := h
		if mh != nil {
			st.hBuf = grow(st.hBuf, H)
			mh.ApplyInto(h, st.hBuf)
			hm = st.hBuf
		}
		st.xMasked, st.hPrevM = xm, hm
		// An all-zero input (the decoder's constant feed) contributes only
		// exact signed zeros to the pre-activations; the dot product is
		// skipped without changing a single bit.
		st.xZero = allZero(xm)
		copy(z, l.B.W)
		for r := 0; r < 4*H; r++ {
			s := z[r]
			if !st.xZero {
				// Reslicing the row to len(xm) lets the compiler drop the
				// per-element bounds check inside the dot product.
				row := l.Wx.W[r*l.In : (r+1)*l.In][:len(xm)]
				for i, xi := range xm {
					s += row[i] * xi
				}
			}
			hrow := l.Wh.W[r*H : (r+1)*H][:len(hm)]
			for i, hi := range hm {
				s += hrow[i] * hi
			}
			z[r] = s
		}
		for j := 0; j < H; j++ {
			st.i[j] = sigmoid(z[j])
			st.f[j] = sigmoid(z[H+j])
			st.g[j] = math.Tanh(z[2*H+j])
			st.o[j] = sigmoid(z[3*H+j])
			st.c[j] = st.f[j]*c[j] + st.i[j]*st.g[j]
			st.tanhC[j] = math.Tanh(st.c[j])
			st.h[j] = st.o[j] * st.tanhC[j]
		}
		h, c = st.h, st.c
		cache.hs[t] = st.h
	}
	return cache.hs
}

// BackwardSeq backpropagates through time. dhs[t] is dL/dh_t from the layer
// above (nil entries allowed); dhLast and dcLast are extra gradients flowing
// into the final hidden and cell state (e.g. from a decoder bridge). It
// accumulates parameter gradients, returns dL/dx per timestep, and the
// gradients on the initial state.
//
// The returned slices are views into the layer's reusable cache: they stay
// valid until the next BackwardSeq on this layer.
func (l *LSTM) BackwardSeq(dhs [][]float64, dhLast, dcLast []float64) (dxs [][]float64, dh0, dc0 []float64) {
	cache := l.cache
	if cache == nil {
		panic("nn: BackwardSeq before ForwardSeq")
	}
	T := cache.n
	H := l.Hidden
	cache.dz = grow(cache.dz, 4*H)
	cache.dhA = growZero(cache.dhA, H)
	cache.dcA = growZero(cache.dcA, H)
	cache.dhB = grow(cache.dhB, H)
	cache.dcB = grow(cache.dcB, H)
	dh, dc := cache.dhA, cache.dcA
	dhFree, dcFree := cache.dhB, cache.dcB
	if dhLast != nil {
		copy(dh, dhLast)
	}
	if dcLast != nil {
		copy(dc, dcLast)
	}
	if cap(cache.dxs) < T {
		next := make([][]float64, T)
		copy(next, cache.dxs)
		cache.dxs = next
	}
	cache.dxs = cache.dxs[:T]
	dz := cache.dz
	for t := T - 1; t >= 0; t-- {
		st := &cache.steps[t]
		if dhs != nil && dhs[t] != nil {
			for j := range dh {
				dh[j] += dhs[t][j]
			}
		}
		var cPrev []float64
		if t == 0 {
			cPrev = cache.c0
		} else {
			cPrev = cache.steps[t-1].c
		}
		dcPrev := dcFree
		{
			// Common-length reslices so the gate-gradient loop runs without
			// bounds checks.
			tc, og, fg, ig, gg := st.tanhC[:H], st.o[:H], st.f[:H], st.i[:H], st.g[:H]
			cp, dhv, dcv, dcp := cPrev[:H], dh[:H], dc[:H], dcPrev[:H]
			dzi, dzf, dzg, dzo := dz[:H], dz[H:2*H], dz[2*H:3*H], dz[3*H:4*H]
			for j := 0; j < H; j++ {
				do := dhv[j] * tc[j]
				dcj := dcv[j] + dhv[j]*og[j]*(1-tc[j]*tc[j])
				df := dcj * cp[j]
				di := dcj * gg[j]
				dg := dcj * ig[j]
				dcp[j] = dcj * fg[j]
				dzi[j] = di * ig[j] * (1 - ig[j])
				dzf[j] = df * fg[j] * (1 - fg[j])
				dzg[j] = dg * (1 - gg[j]*gg[j])
				dzo[j] = do * og[j] * (1 - og[j])
			}
		}
		var dx []float64
		if !l.NoInputGrad {
			cache.dxs[t] = growZero(cache.dxs[t], l.In)
			dx = cache.dxs[t]
		} else {
			cache.dxs[t] = nil
		}
		dhPrev := dhFree
		for j := range dhPrev {
			dhPrev[j] = 0
		}
		for r := 0; r < 4*H; r++ {
			gz := dz[r]
			if gz == 0 {
				continue
			}
			l.B.G[r] += gz
			// A zero input contributes exact zeros to the Wx gradient, so
			// that accumulation is skipped bit-identically too.
			if !st.xZero || dx != nil {
				wxRow := l.Wx.W[r*l.In : (r+1)*l.In]
				gxRow := l.Wx.G[r*l.In : (r+1)*l.In]
				switch {
				case st.xZero:
					dxr := dx[:len(wxRow)]
					for i, w := range wxRow {
						dxr[i] += gz * w
					}
				case dx == nil:
					xr := st.xMasked[:len(gxRow)]
					for i, xi := range xr {
						gxRow[i] += gz * xi
					}
				default:
					xr := st.xMasked[:len(gxRow)]
					dxr := dx[:len(gxRow)]
					wxr := wxRow[:len(gxRow)]
					for i, xi := range xr {
						gxRow[i] += gz * xi
						dxr[i] += gz * wxr[i]
					}
				}
			}
			// Reslicing every operand to a common length eliminates the
			// bounds checks in the hottest loop of backprop-through-time.
			whRow := l.Wh.W[r*H : (r+1)*H]
			ghRow := l.Wh.G[r*H : (r+1)*H][:len(whRow)]
			hpm := st.hPrevM[:len(whRow)]
			dhp := dhPrev[:len(whRow)]
			for i, w := range whRow {
				ghRow[i] += gz * hpm[i]
				dhp[i] += gz * w
			}
		}
		if dx != nil && cache.mx != nil {
			for i := range dx {
				dx[i] *= cache.mx[i]
			}
		}
		if cache.mh != nil {
			for i := range dhPrev {
				dhPrev[i] *= cache.mh[i]
			}
		}
		dh, dhFree = dhPrev, dh
		dc, dcFree = dcPrev, dc
	}
	return cache.dxs, dh, dc
}

// LSTMStack is a stack of LSTM layers (the paper's encoder uses two).
type LSTMStack struct {
	Layers []*LSTM
}

// NewLSTMStack builds numLayers LSTM layers each with the given hidden size;
// the first consumes in features, the rest consume hidden features.
func NewLSTMStack(name string, in, hidden, numLayers int, rng *stats.RNG) *LSTMStack {
	s := &LSTMStack{}
	for i := 0; i < numLayers; i++ {
		sz := in
		if i > 0 {
			sz = hidden
		}
		s.Layers = append(s.Layers, NewLSTM(name, sz, hidden, rng))
	}
	return s
}

// Params returns all trainable parameters of the stack.
func (s *LSTMStack) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ForwardSeq runs the whole stack; masks (parallel to layers) may be nil to
// disable dropout. It returns the top layer's hidden sequence.
func (s *LSTMStack) ForwardSeq(xs [][]float64, mxs, mhs []DropoutMask) [][]float64 {
	h := xs
	for i, l := range s.Layers {
		var mx, mh DropoutMask
		if mxs != nil {
			mx = mxs[i]
		}
		if mhs != nil {
			mh = mhs[i]
		}
		h = l.ForwardSeq(h, nil, nil, mx, mh)
	}
	return h
}

// BackwardSeq backpropagates dhs (gradients on the top layer's outputs) and
// dhLast/dcLast on the top layer's final state through the stack.
func (s *LSTMStack) BackwardSeq(dhs [][]float64, dhLast, dcLast []float64) {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dxs, _, _ := s.Layers[i].BackwardSeq(dhs, dhLast, dcLast)
		dhs = dxs
		dhLast, dcLast = nil, nil
	}
}

// FinalHidden returns the last timestep's hidden state of the top layer
// from the most recent ForwardSeq (the latent variable Z in the paper).
func (s *LSTMStack) FinalHidden() []float64 {
	top := s.Layers[len(s.Layers)-1]
	return top.cache.steps[top.cache.n-1].h
}
