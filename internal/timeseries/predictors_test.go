package timeseries

import (
	"math"
	"testing"

	"aquatope/internal/stats"
)

// seasonal builds a clean seasonal series with optional noise and trend.
func seasonal(n int, period float64, noise, trend float64, seed int64) []float64 {
	g := stats.NewRNG(seed)
	out := make([]float64, n)
	for i := range out {
		base := 40 + 25*math.Sin(2*math.Pi*float64(i)/period) + trend*float64(i)
		out[i] = math.Max(0, base+g.Normal(0, noise))
	}
	return out
}

func splitSeries(xs []float64, frac float64) (train, test []float64) {
	cut := int(float64(len(xs)) * frac)
	return xs[:cut], xs[cut:]
}

func TestNaiveForecastShiftsByOne(t *testing.T) {
	n := NewNaive()
	n.Fit([]float64{1, 2, 3})
	got := n.Forecast([]float64{10, 20, 30})
	want := []float64{3, 10, 20}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("forecast = %v, want %v", got, want)
		}
	}
}

func TestNaiveEmptyTrain(t *testing.T) {
	n := NewNaive()
	n.Fit(nil)
	if got := n.Forecast([]float64{5})[0]; got != 0 {
		t.Fatalf("got %v, want 0", got)
	}
}

func TestARIMARecoversARProcess(t *testing.T) {
	// x_t = 0.7 x_{t-1} + e ; AR(1) fit should find phi ~ 0.7.
	g := stats.NewRNG(1)
	n := 800
	xs := make([]float64, n)
	for i := 1; i < n; i++ {
		xs[i] = 0.7*xs[i-1] + g.Normal(0, 1)
	}
	m := NewARIMA(1, 0, 0)
	m.Fit(xs)
	if math.Abs(m.phi[0]-0.7) > 0.08 {
		t.Fatalf("phi = %v, want ~0.7", m.phi[0])
	}
}

func TestARIMABeatsNaiveOnSeasonal(t *testing.T) {
	series := seasonal(600, 48, 2, 0, 2)
	train, test := splitSeries(series, 0.8)
	ar := NewARIMA(6, 1, 2)
	ar.Fit(train)
	nv := NewNaive()
	nv.Fit(train)
	sAR := stats.SMAPE(test, ar.Forecast(test))
	sNV := stats.SMAPE(test, nv.Forecast(test))
	if sAR >= sNV {
		t.Fatalf("ARIMA SMAPE %.2f should beat naive %.2f", sAR, sNV)
	}
}

func TestARIMAShortSeriesSafe(t *testing.T) {
	m := NewARIMA(3, 1, 2)
	m.Fit([]float64{1, 2})
	out := m.Forecast([]float64{3, 4})
	for _, v := range out {
		if math.IsNaN(v) {
			t.Fatal("NaN forecast on short series")
		}
	}
}

func TestARIMANonNegative(t *testing.T) {
	series := seasonal(300, 24, 10, 0, 3)
	train, test := splitSeries(series, 0.7)
	m := NewARIMA(4, 1, 1)
	m.Fit(train)
	for _, v := range m.Forecast(test) {
		if v < 0 {
			t.Fatalf("negative count forecast %v", v)
		}
	}
}

func TestDifference(t *testing.T) {
	d1 := difference([]float64{1, 3, 6, 10}, 1)
	want := []float64{2, 3, 4}
	for i := range want {
		if d1[i] != want[i] {
			t.Fatalf("d1 = %v", d1)
		}
	}
	d2 := difference([]float64{1, 3, 6, 10}, 2)
	if len(d2) != 2 || d2[0] != 1 || d2[1] != 1 {
		t.Fatalf("d2 = %v", d2)
	}
	if difference([]float64{1}, 1) != nil {
		t.Fatal("difference of too-short series should be nil")
	}
}

func TestUndiffInvertsDifference(t *testing.T) {
	hist := []float64{5, 8, 12, 13, 19}
	// If the next diff is 4, the next level is 19+4=23.
	if got := undiff(hist, 1, 4); got != 23 {
		t.Fatalf("undiff d=1 = %v, want 23", got)
	}
	if got := undiff(hist, 0, 7); got != 7 {
		t.Fatalf("undiff d=0 = %v, want 7", got)
	}
}

func TestHoltWintersLearnsSeasonality(t *testing.T) {
	series := seasonal(500, 50, 1, 0.01, 4)
	train, test := splitSeries(series, 0.8)
	hw := NewHoltWinters(50)
	hw.Fit(train)
	nv := NewNaive()
	nv.Fit(train)
	sHW := stats.SMAPE(test, hw.Forecast(test))
	sNV := stats.SMAPE(test, nv.Forecast(test))
	if sHW >= sNV {
		t.Fatalf("HoltWinters SMAPE %.2f should beat naive %.2f", sHW, sNV)
	}
	if sHW > 10 {
		t.Fatalf("HoltWinters SMAPE too high: %.2f", sHW)
	}
}

func TestHoltWintersShortTrainSafe(t *testing.T) {
	hw := NewHoltWinters(24)
	hw.Fit([]float64{5, 6, 7})
	out := hw.Forecast([]float64{8, 9})
	for _, v := range out {
		if math.IsNaN(v) || v < 0 {
			t.Fatalf("bad forecast %v", v)
		}
	}
}

func TestFourierExtrapolatesPeriodicSignal(t *testing.T) {
	series := seasonal(512, 64, 0.5, 0, 5)
	train, test := splitSeries(series, 0.75)
	f := NewFourier(8, 256)
	f.Fit(train)
	nv := NewNaive()
	nv.Fit(train)
	sF := stats.SMAPE(test, f.Forecast(test))
	sNV := stats.SMAPE(test, nv.Forecast(test))
	if sF >= sNV {
		t.Fatalf("Fourier SMAPE %.2f should beat naive %.2f", sF, sNV)
	}
}

func TestFourierEmptyTrain(t *testing.T) {
	f := NewFourier(4, 0)
	f.Fit(nil)
	out := f.Forecast([]float64{1, 2})
	if len(out) != 2 {
		t.Fatal("length mismatch")
	}
}

func TestVanillaLSTMLearnsPattern(t *testing.T) {
	series := seasonal(400, 24, 1, 0, 6)
	train, test := splitSeries(series, 0.8)
	v := NewVanillaLSTM(8, 12, 8, 7)
	v.Fit(train)
	nv := NewNaive()
	nv.Fit(train)
	sV := stats.SMAPE(test, v.Forecast(test))
	sNV := stats.SMAPE(test, nv.Forecast(test))
	if sV >= sNV {
		t.Fatalf("LSTM SMAPE %.2f should beat naive %.2f", sV, sNV)
	}
}

func TestVanillaLSTMUnfittedSafe(t *testing.T) {
	v := NewVanillaLSTM(4, 8, 2, 1)
	out := v.Forecast([]float64{1, 2, 3})
	for _, x := range out {
		if x != 0 {
			t.Fatal("unfitted model should forecast zeros")
		}
	}
}

func TestPredictorNames(t *testing.T) {
	ps := []Predictor{NewNaive(), NewARIMA(1, 0, 0), NewHoltWinters(4), NewFourier(2, 0), NewVanillaLSTM(2, 2, 1, 1)}
	want := []string{"keepalive", "arima", "holtwinters", "fourier", "lstm"}
	for i, p := range ps {
		if p.Name() != want[i] {
			t.Fatalf("name %q, want %q", p.Name(), want[i])
		}
	}
}

func TestOLSSolveKnownSystem(t *testing.T) {
	// y = 2 + 3x
	X := [][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}}
	y := []float64{2, 5, 8, 11}
	beta := olsSolve(X, y)
	if math.Abs(beta[0]-2) > 1e-3 || math.Abs(beta[1]-3) > 1e-3 {
		t.Fatalf("beta = %v, want [2 3]", beta)
	}
	if olsSolve(nil, nil) != nil {
		t.Fatal("empty OLS should return nil")
	}
}
