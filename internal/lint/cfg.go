package lint

import (
	"go/ast"
	"go/token"
)

// This file is the lightweight control-flow layer behind spanpair: a
// per-function block graph precise enough to answer "does every path from
// statement S to a function exit pass through a closing statement?"
// without pulling in golang.org/x/tools/go/cfg.
//
// Blocks hold plain statements in source order; structured control
// statements (if/for/range/switch/select) are decomposed into blocks and
// condition-annotated edges, so a path checker can refine branches whose
// condition mentions the tracked variable (the `if id != 0` guard idiom).
// Functions using goto or labeled break/continue are rare in this
// codebase and make the lightweight graph unsound, so the builder marks
// the graph unusable and the analyzers skip the function (conservative
// silence, never a false positive).

// cfgEdge is one control transfer. When cond is non-nil the edge is taken
// iff cond evaluates to negate == false (i.e. the "then" edge has
// negate == false, the "else"/fallthrough edge negate == true).
type cfgEdge struct {
	to     *cfgBlock
	cond   ast.Expr
	negate bool
}

// cfgBlock is a straight-line run of statements.
type cfgBlock struct {
	stmts []ast.Stmt
	succs []cfgEdge
	// ret is the return statement terminating the block, if any; exit
	// paths through it are reported at its position.
	ret *ast.ReturnStmt
}

// funcCFG is the block graph of one function body. exit is the single
// synthetic exit block: every return and the fall-off-the-end path lead
// to it.
type funcCFG struct {
	entry *cfgBlock
	exit  *cfgBlock
	ok    bool // false when the body uses goto / labeled branches
}

type cfgBuilder struct {
	cfg *funcCFG
	cur *cfgBlock
	// break/continue targets for the innermost enclosing loop or switch.
	breakTargets    []*cfgBlock
	continueTargets []*cfgBlock
}

// buildCFG constructs the block graph for a function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	c := &funcCFG{entry: &cfgBlock{}, exit: &cfgBlock{}, ok: true}
	b := &cfgBuilder{cfg: c, cur: c.entry}
	b.stmtList(body.List)
	// Falling off the end of the body reaches the exit.
	b.cur.succs = append(b.cur.succs, cfgEdge{to: c.exit})
	return c
}

func (b *cfgBuilder) newBlock() *cfgBlock { return &cfgBlock{} }

// jump ends the current block with an unconditional edge and opens a
// fresh (possibly unreachable) one.
func (b *cfgBuilder) jump(to *cfgBlock) {
	b.cur.succs = append(b.cur.succs, cfgEdge{to: to})
	b.cur = b.newBlock()
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(st.List)
	case *ast.IfStmt:
		if st.Init != nil {
			b.cur.stmts = append(b.cur.stmts, st.Init)
		}
		after := b.newBlock()
		thenB := b.newBlock()
		b.cur.succs = append(b.cur.succs, cfgEdge{to: thenB, cond: st.Cond})
		condBlock := b.cur
		b.cur = thenB
		b.stmt(st.Body)
		b.jump(after)
		if st.Else != nil {
			elseB := b.newBlock()
			condBlock.succs = append(condBlock.succs, cfgEdge{to: elseB, cond: st.Cond, negate: true})
			b.cur = elseB
			b.stmt(st.Else)
			b.jump(after)
		} else {
			condBlock.succs = append(condBlock.succs, cfgEdge{to: after, cond: st.Cond, negate: true})
		}
		b.cur = after
	case *ast.ForStmt:
		if st.Init != nil {
			b.cur.stmts = append(b.cur.stmts, st.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.jump(head)
		b.cur = head
		if st.Cond != nil {
			head.succs = append(head.succs,
				cfgEdge{to: body, cond: st.Cond},
				cfgEdge{to: after, cond: st.Cond, negate: true})
		} else {
			// for {}: the only way to after is break, but a body that
			// returns also exits; keep an edge so downstream code after an
			// always-true loop is treated as reachable (conservative).
			head.succs = append(head.succs, cfgEdge{to: body}, cfgEdge{to: after})
		}
		b.withLoop(after, head, func() {
			b.cur = body
			b.stmt(st.Body)
			if st.Post != nil {
				b.cur.stmts = append(b.cur.stmts, st.Post)
			}
			b.jump(head)
		})
		b.cur = after
	case *ast.RangeStmt:
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		// The range expression is evaluated once on entry.
		b.cur.stmts = append(b.cur.stmts, &ast.ExprStmt{X: st.X})
		b.jump(head)
		// The body may run zero times.
		head.succs = append(head.succs, cfgEdge{to: body}, cfgEdge{to: after})
		b.withLoop(after, head, func() {
			b.cur = body
			b.stmt(st.Body)
			b.jump(head)
		})
		b.cur = after
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		b.switchStmt(st)
	case *ast.SelectStmt:
		after := b.newBlock()
		entry := b.cur
		b.pushBreak(after)
		for _, cl := range st.Body.List {
			cc := cl.(*ast.CommClause)
			cb := b.newBlock()
			entry.succs = append(entry.succs, cfgEdge{to: cb})
			b.cur = cb
			if cc.Comm != nil {
				b.cur.stmts = append(b.cur.stmts, cc.Comm)
			}
			b.stmtList(cc.Body)
			b.jump(after)
		}
		if len(st.Body.List) == 0 {
			entry.succs = append(entry.succs, cfgEdge{to: after})
		}
		b.popBreak()
		b.cur = after
	case *ast.ReturnStmt:
		b.cur.stmts = append(b.cur.stmts, st)
		b.cur.ret = st
		b.cur.succs = append(b.cur.succs, cfgEdge{to: b.cfg.exit})
		b.cur = b.newBlock()
	case *ast.BranchStmt:
		if st.Label != nil || st.Tok == token.GOTO {
			b.cfg.ok = false
			return
		}
		switch st.Tok {
		case token.BREAK:
			if n := len(b.breakTargets); n > 0 {
				b.jump(b.breakTargets[n-1])
			} else {
				b.cfg.ok = false
			}
		case token.CONTINUE:
			if n := len(b.continueTargets); n > 0 {
				b.jump(b.continueTargets[n-1])
			} else {
				b.cfg.ok = false
			}
		case token.FALLTHROUGH:
			// Handled structurally in switchStmt via clause chaining.
			b.cur.stmts = append(b.cur.stmts, st)
		}
	case *ast.LabeledStmt:
		// Labels only matter as branch targets; labeled branches already
		// mark the graph unusable, so analyze the inner statement as-is.
		b.cfg.ok = false
		b.stmt(st.Stmt)
	default:
		b.cur.stmts = append(b.cur.stmts, s)
	}
}

// switchStmt decomposes switch and type-switch statements: every clause
// gets its own block fed from the entry; without a default clause the
// entry also flows straight to after.
func (b *cfgBuilder) switchStmt(s ast.Stmt) {
	var init ast.Stmt
	var clauses []ast.Stmt
	switch st := s.(type) {
	case *ast.SwitchStmt:
		init = st.Init
		if st.Tag != nil {
			b.cur.stmts = append(b.cur.stmts, &ast.ExprStmt{X: st.Tag})
		}
		clauses = st.Body.List
	case *ast.TypeSwitchStmt:
		init = st.Init
		b.cur.stmts = append(b.cur.stmts, st.Assign)
		clauses = st.Body.List
	}
	if init != nil {
		// Prepended before the tag/assign above would be more faithful;
		// for reachability it makes no difference.
		b.cur.stmts = append(b.cur.stmts, init)
	}
	after := b.newBlock()
	entry := b.cur
	hasDefault := false
	blocks := make([]*cfgBlock, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
	}
	b.pushBreak(after)
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		entry.succs = append(entry.succs, cfgEdge{to: blocks[i]})
		b.cur = blocks[i]
		b.stmtList(cc.Body)
		// fallthrough chains to the next clause body.
		if n := len(cc.Body); n > 0 {
			if br, ok := cc.Body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && i+1 < len(blocks) {
				b.jump(blocks[i+1])
				continue
			}
		}
		b.jump(after)
	}
	b.popBreak()
	if !hasDefault {
		entry.succs = append(entry.succs, cfgEdge{to: after})
	}
	b.cur = after
}

func (b *cfgBuilder) withLoop(brk, cont *cfgBlock, body func()) {
	b.breakTargets = append(b.breakTargets, brk)
	b.continueTargets = append(b.continueTargets, cont)
	body()
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
}

func (b *cfgBuilder) pushBreak(t *cfgBlock) { b.breakTargets = append(b.breakTargets, t) }
func (b *cfgBuilder) popBreak()             { b.breakTargets = b.breakTargets[:len(b.breakTargets)-1] }

// blockOf locates the block and statement index containing stmt (by
// position containment), or (nil, 0) when not found.
func (c *funcCFG) blockOf(stmt ast.Stmt) (*cfgBlock, int) {
	var find func(b *cfgBlock, seen map[*cfgBlock]bool) (*cfgBlock, int)
	find = func(b *cfgBlock, seen map[*cfgBlock]bool) (*cfgBlock, int) {
		if seen[b] {
			return nil, 0
		}
		seen[b] = true
		for i, s := range b.stmts {
			if s == stmt || (s.Pos() <= stmt.Pos() && stmt.End() <= s.End()) {
				return b, i
			}
		}
		for _, e := range b.succs {
			if fb, fi := find(e.to, seen); fb != nil {
				return fb, fi
			}
		}
		return nil, 0
	}
	return find(c.entry, make(map[*cfgBlock]bool))
}
