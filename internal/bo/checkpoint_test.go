package bo

import (
	"bytes"
	"testing"

	"aquatope/internal/checkpoint"
	"aquatope/internal/stats"
)

func testOpts() Options {
	return Options{Dim: 2, QoS: 2.0, BatchSize: 2, Bootstrap: 2, Seed: 41,
		CandidatePool: 32, FantasySamples: 4, Window: 12}
}

func driveEngine(e *Engine, rng *stats.RNG, rounds int) {
	for i := 0; i < rounds; i++ {
		batch := e.Suggest()
		obs := make([]Observation, 0, len(batch))
		for _, x := range batch {
			obs = append(obs, Observation{
				X:       x,
				Cost:    1 + x[0] + 0.1*rng.Float64(),
				Latency: 1.5 + x[1] + 0.1*rng.Float64(),
			})
		}
		e.Observe(obs)
	}
}

// TestEngineSnapshotRoundTrip proves the BO engine restores to an
// indistinguishable state: identical re-snapshot bytes and an identical
// suggestion trajectory afterwards.
func TestEngineSnapshotRoundTrip(t *testing.T) {
	opts := testOpts()
	ref := New(opts)
	driveEngine(ref, stats.NewRNG(5), 4)

	enc := checkpoint.NewEncoder()
	ref.Snapshot(enc)

	clone := New(opts)
	if err := clone.Restore(checkpoint.NewDecoder(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	enc2 := checkpoint.NewEncoder()
	clone.Snapshot(enc2)
	if !bytes.Equal(enc.Bytes(), enc2.Bytes()) {
		t.Fatal("re-snapshot differs")
	}

	// Continue both with the same observation stream: suggestions and
	// internal state must stay identical.
	rngA, rngB := stats.NewRNG(6), stats.NewRNG(6)
	driveEngine(ref, rngA, 3)
	driveEngine(clone, rngB, 3)
	a, b := checkpoint.NewEncoder(), checkpoint.NewEncoder()
	ref.Snapshot(a)
	clone.Snapshot(b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("trajectories diverged after restore")
	}
}

func TestEngineRestoreRejectsCorrupt(t *testing.T) {
	ref := New(testOpts())
	driveEngine(ref, stats.NewRNG(5), 3)
	enc := checkpoint.NewEncoder()
	ref.Snapshot(enc)
	data := enc.Bytes()

	if err := New(testOpts()).Restore(checkpoint.NewDecoder(data[:len(data)-7])); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	wrong := testOpts()
	wrong.Dim = 3
	if err := New(wrong).Restore(checkpoint.NewDecoder(data)); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}
