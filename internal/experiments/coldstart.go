package experiments

import (
	"fmt"

	"aquatope/internal/faas"
	"aquatope/internal/pool"
	"aquatope/internal/timeseries"
	"aquatope/internal/trace"
)

// coldStartPolicies returns the Fig. 9 policy lineup, freshly constructed.
func (s Scale) coldStartPolicies() []func() pool.Policy {
	return []func() pool.Policy{
		func() pool.Policy { return &pool.FixedKeepAlive{Duration: 600} },
		func() pool.Policy { return &pool.Autoscale{} },
		func() pool.Policy { return &pool.Histogram{} },
		func() pool.Policy { return &pool.FaaSCache{} },
		func() pool.Policy { return &pool.IceBreaker{} },
		func() pool.Policy { return s.aquatopePolicy(false) },
	}
}

// Fig9Result reports cold-start rate (Fig. 9a) and provisioned memory time
// (Fig. 9b, relative to keep-alive = 100) per policy.
type Fig9Result struct {
	Order     []string
	ColdRate  map[string]float64
	MemGBs    map[string]float64
	RelMemPct map[string]float64 // % of the keep-alive baseline
}

// Table renders both panels.
func (r Fig9Result) Table() string {
	rows := make([][]string, 0, len(r.Order))
	for _, name := range r.Order {
		rows = append(rows, []string{name, pct(r.ColdRate[name]),
			f0(r.MemGBs[name]), f0(r.RelMemPct[name]) + "%"})
	}
	return formatTable([]string{"Policy", "ColdStart", "MemGBs", "Mem(%Keep)"}, rows)
}

// Fig9 replays the workload ensemble under each cold-start policy and
// aggregates invocation-weighted cold-start rates and provisioned memory.
func Fig9(s Scale) Fig9Result {
	res := Fig9Result{
		ColdRate:  make(map[string]float64),
		MemGBs:    make(map[string]float64),
		RelMemPct: make(map[string]float64),
	}
	cold := make(map[string][2]float64) // cold, total
	for _, mk := range s.coldStartPolicies() {
		var name string
		for i := 0; i < s.Ensemble; i++ {
			p := mk()
			name = p.Name()
			r := pool.Run(pool.RunConfig{
				Trace:     ensembleTrace(i, s.TraceMin, s.Seed),
				TrainMin:  s.TrainMin,
				Model:     ensembleModel(i, s.Seed),
				Resources: faas.ResourceConfig{CPU: 1, MemoryMB: 512},
				Policy:    p,
				Seed:      s.Seed + int64(i),
			})
			c := cold[name]
			c[0] += float64(r.ColdStarts)
			c[1] += float64(r.Invocations)
			cold[name] = c
			res.MemGBs[name] += r.ProvisionedMemGBs
		}
		if _, seen := contains(res.Order, name); !seen {
			res.Order = append(res.Order, name)
		}
	}
	for name, c := range cold {
		if c[1] > 0 {
			res.ColdRate[name] = c[0] / c[1]
		}
	}
	base := res.MemGBs["keepalive"]
	for name, m := range res.MemGBs {
		if base > 0 {
			res.RelMemPct[name] = m / base * 100
		}
	}
	return res
}

func contains(xs []string, x string) (int, bool) {
	for i, v := range xs {
		if v == x {
			return i, true
		}
	}
	return -1, false
}

// ---------------------------------------------------------------------------

// Fig10Result compares IceBreaker and Aquatope cold-start rates across
// workloads with growing inter-arrival CV.
type Fig10Result struct {
	CVs      []float64
	IceBrk   []float64
	Aquatope []float64
}

// Table renders the Fig. 10 series.
func (r Fig10Result) Table() string {
	rows := make([][]string, len(r.CVs))
	for i := range r.CVs {
		rows[i] = []string{f2(r.CVs[i]), pct(r.IceBrk[i]), pct(r.Aquatope[i])}
	}
	return formatTable([]string{"CV", "IceBreaker", "Aquatope"}, rows)
}

// Fig10 sweeps the trace coefficient of variation and measures the
// cold-start rate of IceBreaker (best prior work) vs Aquatope.
func Fig10(s Scale) Fig10Result {
	res := Fig10Result{}
	for _, cv := range []float64{0.25, 1, 2, 3, 4} {
		tr := trace.Synthesize(trace.GenConfig{
			DurationMin:          s.TraceMin,
			MeanRatePerMin:       1.2,
			Diurnal:              0.6,
			CV:                   cv,
			BurstEpisodesPerHour: 0.8 * cv / 2,
			BurstDurationMin:     10,
			BurstMultiplier:      4 + 2*cv,
			Seed:                 s.Seed + int64(cv*100),
		})
		model := faas.DefaultSyntheticModel()
		model.BaseExecSec = 6
		model.ColdInitSec = 3
		run := func(p pool.Policy) float64 {
			return pool.Run(pool.RunConfig{
				Trace:     tr,
				TrainMin:  s.TrainMin,
				Model:     model,
				Resources: faas.ResourceConfig{CPU: 1, MemoryMB: 512},
				Policy:    p,
				Seed:      s.Seed,
			}).ColdRate
		}
		res.CVs = append(res.CVs, tr.InterArrivalCV())
		res.IceBrk = append(res.IceBrk, run(&pool.IceBreaker{}))
		res.Aquatope = append(res.Aquatope, run(s.aquatopePolicy(false)))
	}
	return res
}

// ---------------------------------------------------------------------------

// Fig11Result is the provisioned-memory-over-time comparison of Aquatope
// vs AquaLite against the actual demand footprint.
type Fig11Result struct {
	MinuteOffset int
	ActualGB     []float64
	AquatopeGB   []float64
	AquaLiteGB   []float64
	// Cold rates over the window (the paper: Aquatope saves 8% memory and
	// 3% more cold starts than AquaLite).
	AquatopeCold, AquaLiteCold float64
}

// Table renders a decimated series plus the summary line.
func (r Fig11Result) Table() string {
	rows := [][]string{}
	for i := 0; i < len(r.ActualGB); i += 10 {
		rows = append(rows, []string{
			fmt.Sprintf("t+%dmin", i), f2(r.ActualGB[i]), f2(r.AquatopeGB[i]), f2(r.AquaLiteGB[i]),
		})
	}
	out := formatTable([]string{"Time", "ActualGB", "AquatopeGB", "AquaLiteGB"}, rows)
	out += fmt.Sprintf("cold: aquatope %s, aqualite %s\n", pct(r.AquatopeCold), pct(r.AquaLiteCold))
	return out
}

// Fig11 runs a fluctuating episodic trace under Aquatope and AquaLite and
// records each pool's memory footprint over time alongside the actual
// demand footprint.
func Fig11(s Scale) Fig11Result {
	tr := trace.Synthesize(trace.GenConfig{
		DurationMin:          s.TraceMin,
		MeanRatePerMin:       0.8,
		Diurnal:              0.7,
		CV:                   2,
		BurstEpisodesPerHour: 1.2,
		BurstDurationMin:     12,
		BurstMultiplier:      8,
		Seed:                 s.Seed + 7,
	})
	model := faas.DefaultSyntheticModel()
	model.BaseExecSec = 6
	model.ColdInitSec = 3
	resources := faas.ResourceConfig{CPU: 1, MemoryMB: 512}
	run := func(p pool.Policy) pool.RunResult {
		return pool.Run(pool.RunConfig{
			Trace: tr, TrainMin: s.TrainMin, Model: model,
			Resources: resources, Policy: p, MemorySeries: true, Seed: s.Seed,
		})
	}
	full := run(s.aquatopePolicy(false))
	lite := run(s.aquatopePolicy(true))

	// Actual footprint: demand series × container memory.
	demand := full.DemandSeries
	n := len(full.MemorySeriesGB)
	if len(lite.MemorySeriesGB) < n {
		n = len(lite.MemorySeriesGB)
	}
	if len(demand) < n {
		n = len(demand)
	}
	res := Fig11Result{MinuteOffset: s.TrainMin,
		AquatopeCold: full.ColdRate, AquaLiteCold: lite.ColdRate}
	for i := 0; i < n; i++ {
		res.ActualGB = append(res.ActualGB, demand[i]*resources.MemoryMB/1024)
		res.AquatopeGB = append(res.AquatopeGB, full.MemorySeriesGB[i])
		res.AquaLiteGB = append(res.AquaLiteGB, lite.MemorySeriesGB[i])
	}
	return res
}

// PredictorPolicyForTable1 adapts a timeseries predictor into a pool
// policy (exported for the CLI's extended comparisons).
func PredictorPolicyForTable1(name string, p timeseries.Predictor) pool.Policy {
	return &pool.PredictorPolicy{Label: name, Predictor: p}
}
