package telemetry

// Central metric-name catalog. Every Registry lookup in the instrumented
// subsystems must use one of these constants (optionally suffixed with a
// "."-separated entity such as an app name or invoker ID) — enforced by
// aqualint's metricname check — so that metric names cannot silently drift
// apart between the emitting side and the consumers (cmd/aquatrace, the
// Prometheus exposition endpoint, experiment reports).
//
// Naming convention (DESIGN.md §6): "<subsystem>.<metric>[_<unit>][.<entity>]".
const (
	// faas platform counters.
	MetricColdStarts          = "faas.cold_starts"
	MetricWarmStarts          = "faas.warm_starts"
	MetricFailedInvocations   = "faas.failed_invocations"
	MetricTimedOutInvocations = "faas.timedout_invocations"
	MetricShedInvocations     = "faas.shed_invocations"
	MetricBreakerOpens        = "faas.breaker_opens"
	MetricBreakerCloses       = "faas.breaker_closes"
	MetricInitFailures        = "faas.init_failures"
	MetricInvokerCrashes      = "faas.invoker_crashes"
	MetricCPUTime             = "faas.cpu_time_core_s"
	MetricMemTime             = "faas.mem_time_gb_s"
	MetricProvisionedMemTime  = "faas.provisioned_mem_time_gb_s"
	MetricContainersCreated   = "faas.containers_created"
	MetricContainersKilled    = "faas.containers_killed"

	// faas platform histograms.
	MetricInvocationLatency = "faas.invocation.latency_s"
	MetricInvocationExec    = "faas.invocation.exec_s"
	MetricInvocationWait    = "faas.invocation.wait_s"

	// Per-invoker utilization time integrals (gauges, flushed once at the
	// end of a run; suffixed ".<invokerID>"). BusyS integrates wall time
	// with at least one running invocation; ActiveS wall time with at least
	// one container provisioned; IdleS is Active − Busy. CPUCoreS and
	// MemGBs integrate the busy core count and the provisioned memory;
	// WarmSpareS integrates the idle (warm, unused) container count.
	MetricInvokerBusyS      = "faas.invoker.busy_s"
	MetricInvokerIdleS      = "faas.invoker.idle_s"
	MetricInvokerActiveS    = "faas.invoker.active_s"
	MetricInvokerCPUCoreS   = "faas.invoker.cpu_core_s"
	MetricInvokerMemGBs     = "faas.invoker.mem_gb_s"
	MetricInvokerWarmSpareS = "faas.invoker.warm_spare_s"
	MetricInvokerCreated    = "faas.invoker.containers_created"
	MetricInvokerKilled     = "faas.invoker.containers_killed"

	// Fleet-level utilization gauges. Bin-packing efficiency is
	// Σ used-memory-time / Σ capacity-time over invokers while they hosted
	// at least one container (Fifer's fragmentation view: how much of the
	// memory we kept powered actually held containers). Fleet CPU util is
	// Σ busy-core-time / Σ capacity-core-time over the whole run.
	MetricBinPackEfficiency = "faas.binpack_efficiency"
	MetricFleetCPUUtil      = "faas.fleet_cpu_util"

	// Simulator engine gauges.
	MetricSimEvents        = "sim.events"
	MetricSimClock         = "sim.clock_s"
	MetricSimPendingEvents = "sim.pending_events"

	// Per-app end-to-end workflow latency histogram (suffixed ".<app>").
	MetricWorkflowLatency = "workflow.latency_s"
)
