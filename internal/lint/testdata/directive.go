package fixture

// Malformed escape hatches are themselves findings: a suppression without
// a reason (or naming no known check) is exactly the silent opt-out the
// tool exists to prevent. The directive test asserts that the four
// malformed directives below are reported and the valid one is not.

//aqualint:allow wallclock a valid directive: known check plus a reason
func directiveOK() {}

//aqualint:allow
func directiveMissingCheck() {}

//aqualint:allow wallclock
func directiveMissingReason() {}

//aqualint:allow nosuchcheck because reasons
func directiveUnknownCheck() {}

//aqualint:disable wallclock forever
func directiveUnknownVerb() {}
