package experiments

import (
	"fmt"
	"sync"
)

// Result is the structured surface every experiment harness returns.
type Result interface {
	// Table renders the human-readable table(s), matching the layout of
	// the paper figure the harness reproduces.
	Table() string
	// Rows returns a flat mechanical view of the result — one header and
	// one row per measurement cell — so regenerated numbers can be diffed
	// programmatically instead of scraped from Table output.
	Rows() (header []string, rows [][]string)
}

// Experiment is one registered evaluation harness. Implementations must be
// deterministic in the Scale's seed: Run called twice with the same Scale
// must produce identical results regardless of Scale.Parallel.
type Experiment interface {
	// ID is the stable identifier used by aquabench -exp.
	ID() string
	// Title is the one-line human description (paper table/figure).
	Title() string
	// Run executes the harness at the given scale.
	Run(Scale) Result
}

// funcExperiment adapts a plain function into an Experiment.
type funcExperiment struct {
	id, title string
	run       func(Scale) Result
}

func (e funcExperiment) ID() string         { return e.id }
func (e funcExperiment) Title() string      { return e.title }
func (e funcExperiment) Run(s Scale) Result { return e.run(s) }

// New wraps a harness function as a registrable Experiment.
func New(id, title string, run func(Scale) Result) Experiment {
	return funcExperiment{id: id, title: title, run: run}
}

var (
	regMu   sync.Mutex
	regular []Experiment
	regByID = make(map[string]Experiment)
)

// Register adds an experiment to the package registry. It panics on an
// empty or duplicate id — registration is an init-time programming contract,
// not a runtime condition.
func Register(e Experiment) {
	regMu.Lock()
	defer regMu.Unlock()
	id := e.ID()
	if id == "" {
		panic("experiments: Register with empty id")
	}
	if _, dup := regByID[id]; dup {
		panic(fmt.Sprintf("experiments: duplicate experiment id %q", id))
	}
	regByID[id] = e
	regular = append(regular, e)
}

// Get returns the experiment registered under id.
func Get(id string) (Experiment, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	e, ok := regByID[id]
	return e, ok
}

// All returns every registered experiment in registration order — for the
// built-ins, the order the paper's §8 presents them in.
func All() []Experiment {
	regMu.Lock()
	defer regMu.Unlock()
	return append([]Experiment(nil), regular...)
}

// IDs returns the registered experiment ids in registration order.
func IDs() []string {
	regMu.Lock()
	defer regMu.Unlock()
	ids := make([]string, len(regular))
	for i, e := range regular {
		ids[i] = e.ID()
	}
	return ids
}

// ResultJSON is the mechanical export of one experiment result: the flat
// header/rows view for diffing plus the full structured result under Data.
type ResultJSON struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Data   Result     `json:"data"`
}

// MarshalResult shapes an experiment result for JSON export.
func MarshalResult(e Experiment, r Result) ResultJSON {
	header, rows := r.Rows()
	return ResultJSON{ID: e.ID(), Title: e.Title(), Header: header, Rows: rows, Data: r}
}

// The built-in lineup, registered in the order the paper's evaluation
// presents it. cmd/aquabench iterates this registry; it no longer keeps its
// own id → runner → title maps that could drift apart.
func init() {
	Register(New("table1", "Table 1: prediction accuracy (SMAPE)",
		func(s Scale) Result { return Table1(s) }))
	Register(New("fig9", "Fig 9: cold starts and provisioned memory per pool policy",
		func(s Scale) Result { return Fig9(s) }))
	Register(New("fig10", "Fig 10: cold starts vs workload CV (IceBreaker vs Aquatope)",
		func(s Scale) Result { return Fig10(s) }))
	Register(New("fig11", "Fig 11: pool memory over time (Aquatope vs AquaLite)",
		func(s Scale) Result { return Fig11(s) }))
	Register(New("fig12", "Fig 12: cost vs search budget per workflow and manager",
		func(s Scale) Result { return Fig12(s) }))
	Register(New("fig13", "Fig 13: final CPU/memory time vs Oracle",
		func(s Scale) Result { return Fig13(s) }))
	Register(New("fig14a", "Fig 14a: cost vs chain length (CLITE vs Aquatope)",
		func(s Scale) Result { return Fig14a(s) }))
	Register(New("fig14b", "Fig 14b: cost vs execution-time variability",
		func(s Scale) Result { return Fig14b(s) }))
	Register(New("fig15", "Fig 15: robustness to irregular cloud noise",
		func(s Scale) Result { return Fig15(s) }))
	Register(New("fig16", "Fig 16: adaptation to workload behaviour changes",
		func(s Scale) Result { return Fig16(s) }))
	Register(New("fig17", "Fig 17: resource manager with vs without the pre-warm pool",
		func(s Scale) Result { return Fig17(s) }))
	Register(New("fig18", "Fig 18: end-to-end comparison of full frameworks",
		func(s Scale) Result { return Fig18(s) }))
	Register(New("ablation-batch", "Ablation: BO batch size q (cost vs rounds)",
		func(s Scale) Result { return AblationBatchSize(s) }))
	Register(New("ablation-headroom", "Ablation: pool uncertainty headroom z (cold vs memory)",
		func(s Scale) Result { return AblationHeadroom(s) }))
	Register(New("ablation-mc", "Ablation: MC-dropout passes T",
		func(s Scale) Result { return AblationMCSamples(s) }))
	Register(New("chaos", "Chaos: fault rate × retry policy resilience sweep",
		func(s Scale) Result { return Chaos(s) }))
	Register(New("overload", "Overload: arrival-rate sweep through saturation (admission, breakers, budgets)",
		func(s Scale) Result { return Overload(s) }))
	Register(New("arena", "Arena: scheduler head-to-head (aquatope vs jolteon/caerus/naive) across steady, chaos and overload workloads",
		func(s Scale) Result { return Arena(s) }))
}
