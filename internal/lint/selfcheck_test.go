package lint

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestSelfCheck asserts the default policy enables every registered
// analyzer — all nine checks — and that each one actually applies to the
// simulator core, so TestRepoIsLintClean below genuinely exercises the
// full registry repo-wide rather than a stale subset.
func TestSelfCheck(t *testing.T) {
	cfg := DefaultConfig()
	for _, az := range Analyzers() {
		rule, ok := cfg.Checks[az.Name]
		if !ok {
			t.Errorf("analyzer %s is not enabled in DefaultConfig", az.Name)
			continue
		}
		// internal/sim is inside every check's scope, including the
		// hot-path-scoped hotalloc.
		if !rule.appliesTo("aquatope/internal/sim") {
			t.Errorf("check %s does not cover aquatope/internal/sim", az.Name)
		}
	}
	if len(cfg.Checks) != len(Analyzers()) {
		t.Errorf("DefaultConfig enables %d checks but the registry has %d", len(cfg.Checks), len(Analyzers()))
	}
}

// TestRepoIsLintClean enforces the acceptance bar for the lint gate: the
// whole repository must pass every analyzer under the default policy with
// zero un-annotated findings. It exercises the real loader (go list +
// export-data type-checking), so it is also the loader's integration
// test.
func TestRepoIsLintClean(t *testing.T) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" {
		t.Skip("not running inside a module")
	}
	root := filepath.Dir(gomod)
	pkgs, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader found no packages")
	}
	var typed int
	for _, p := range pkgs {
		if p.Info != nil {
			typed++
		}
	}
	if typed == 0 {
		t.Fatal("loader type-checked no packages; maporder and droppederr would be inert")
	}
	for _, f := range Run(pkgs, DefaultConfig()) {
		t.Errorf("%s", f)
	}
}
