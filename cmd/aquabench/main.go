// Command aquabench regenerates every table and figure of the paper's
// evaluation (§8). Each experiment prints the same rows/series the paper
// reports; absolute numbers come from the simulated substrate, so compare
// shapes and orderings, not raw values (see EXPERIMENTS.md).
//
// Usage:
//
//	aquabench -exp table1            # one experiment
//	aquabench -exp all               # everything
//	aquabench -exp fig13 -scale full # paper-scale repetitions
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"aquatope/internal/experiments"
	"aquatope/internal/telemetry"
)

var experimentOrder = []string{
	"table1", "fig9", "fig10", "fig11", "fig12", "fig13",
	"fig14a", "fig14b", "fig15", "fig16", "fig17", "fig18",
	"ablation-batch", "ablation-headroom", "ablation-mc", "chaos",
}

func main() {
	exp := flag.String("exp", "all", "experiment id (table1, fig9..fig18, all)")
	scaleName := flag.String("scale", "quick", "experiment scale: quick | full")
	seed := flag.Int64("seed", 1, "global random seed")
	traceOut := flag.String("trace-out", "", "write telemetry spans from end-to-end experiments as JSONL to this file")
	metricsOut := flag.String("metrics-out", "", "write the metric registry snapshot as JSON to this file")
	flag.Parse()

	scale := experiments.Quick
	if *scaleName == "full" {
		scale = experiments.Full
	}
	scale.Seed = *seed

	var collector *telemetry.Collector
	if *traceOut != "" {
		collector = telemetry.NewCollector()
		scale.Tracer = collector
	}
	var registry *telemetry.Registry
	if *metricsOut != "" {
		registry = telemetry.NewRegistry()
		scale.Registry = registry
	}

	runners := map[string]func() string{
		"table1":            func() string { return experiments.Table1(scale).Table() },
		"fig9":              func() string { return experiments.Fig9(scale).Table() },
		"fig10":             func() string { return experiments.Fig10(scale).Table() },
		"fig11":             func() string { return experiments.Fig11(scale).Table() },
		"fig12":             func() string { return experiments.Fig12(scale).Table() },
		"fig13":             func() string { return experiments.Fig13(scale).Table() },
		"fig14a":            func() string { return experiments.Fig14a(scale).Table() },
		"fig14b":            func() string { return experiments.Fig14b(scale).Table() },
		"fig15":             func() string { return experiments.Fig15(scale).Table() },
		"fig16":             func() string { return experiments.Fig16(scale).Table() },
		"fig17":             func() string { return experiments.Fig17(scale).Table() },
		"fig18":             func() string { return experiments.Fig18(scale).Table() },
		"ablation-batch":    func() string { return experiments.AblationBatchSize(scale).Table() },
		"ablation-headroom": func() string { return experiments.AblationHeadroom(scale).Table() },
		"ablation-mc":       func() string { return experiments.AblationMCSamples(scale).Table() },
		"chaos":             func() string { return experiments.Chaos(scale).Table() },
	}

	titles := map[string]string{
		"table1":            "Table 1: prediction accuracy (SMAPE)",
		"fig9":              "Fig 9: cold starts and provisioned memory per pool policy",
		"fig10":             "Fig 10: cold starts vs workload CV (IceBreaker vs Aquatope)",
		"fig11":             "Fig 11: pool memory over time (Aquatope vs AquaLite)",
		"fig12":             "Fig 12: cost vs search budget per workflow and manager",
		"fig13":             "Fig 13: final CPU/memory time vs Oracle",
		"fig14a":            "Fig 14a: cost vs chain length (CLITE vs Aquatope)",
		"fig14b":            "Fig 14b: cost vs execution-time variability",
		"fig15":             "Fig 15: robustness to irregular cloud noise",
		"fig16":             "Fig 16: adaptation to workload behaviour changes",
		"fig17":             "Fig 17: resource manager with vs without the pre-warm pool",
		"fig18":             "Fig 18: end-to-end comparison of full frameworks",
		"ablation-batch":    "Ablation: BO batch size q (cost vs rounds)",
		"ablation-headroom": "Ablation: pool uncertainty headroom z (cold vs memory)",
		"ablation-mc":       "Ablation: MC-dropout passes T",
	}

	var ids []string
	if *exp == "all" {
		ids = experimentOrder
	} else {
		if _, ok := runners[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %v\n", *exp, experimentOrder)
			os.Exit(2)
		}
		ids = []string{*exp}
	}

	for _, id := range ids {
		start := time.Now() //aqualint:allow wallclock benchmark harness reports real elapsed time per experiment, not simulated time
		fmt.Printf("=== %s ===\n", titles[id])
		fmt.Print(runners[id]())
		//aqualint:allow wallclock real elapsed time of the experiment run
		fmt.Printf("(%s, scale=%s, %.1fs)\n\n", id, *scaleName, time.Since(start).Seconds())
	}

	if collector != nil {
		if err := collector.WriteJSONLFile(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "writing trace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d spans to %s\n", collector.Len(), *traceOut)
	}
	if registry != nil {
		if err := registry.WriteJSONFile(*metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, "writing metrics:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote metrics snapshot to %s\n", *metricsOut)
	}
}
