package lint

import (
	"go/ast"
)

// globalrandDraws are the math/rand package-level functions that draw from
// (or reseed) the shared process-wide generator. Any draw from them is
// invisible to the run seed, so two same-seed runs diverge.
var globalrandDraws = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint32": true, "Uint64": true, "Uint32N": true, "Uint64N": true,
	"UintN": true, "Uint": true, "UintN64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
}

var globalrandAnalyzer = &Analyzer{
	Name: "globalrand",
	Doc: "forbid math/rand outside internal/stats so every random draw " +
		"flows from a seeded, explicitly plumbed stats.RNG",
	Run: runGlobalrand,
}

func runGlobalrand(prog *Program, pkg *Package, file *File, rule Rule, report Reporter) {
	for _, path := range []string{"math/rand", "math/rand/v2"} {
		names, dot, spec := importNames(file.AST, path)
		if dot {
			report(spec.Pos(), "dot-import of %s hides global randomness from aqualint; import it qualified", path)
			continue
		}
		if len(names) == 0 {
			continue
		}
		ast.Inspect(file.AST, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok || !names[id.Name] {
				return true
			}
			if globalrandDraws[sel.Sel.Name] {
				report(sel.Pos(), "rand.%s draws from the shared process-wide generator, invisible to the run seed; use a seeded stats.RNG plumbed from the run configuration", sel.Sel.Name)
			} else {
				report(sel.Pos(), "math/rand used outside internal/stats (rand.%s); construct seeded generators through stats.NewRNG/Split so every draw is reproducible", sel.Sel.Name)
			}
			return true
		})
	}
}
