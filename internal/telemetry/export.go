package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// BucketCount is one non-empty histogram bucket in a snapshot: N values
// were observed at most LE (and above the previous bucket's LE).
type BucketCount struct {
	LE float64 `json:"le"`
	N  uint64  `json:"n"`
}

// HistogramSnapshot is the exported state of one histogram. Min/Max are
// omitted when the histogram is empty; Overflow counts observations beyond
// the last bucket edge.
type HistogramSnapshot struct {
	Count    uint64        `json:"count"`
	Sum      float64       `json:"sum"`
	Min      float64       `json:"min,omitempty"`
	Max      float64       `json:"max,omitempty"`
	P50      float64       `json:"p50"`
	P95      float64       `json:"p95"`
	P99      float64       `json:"p99"`
	Buckets  []BucketCount `json:"buckets,omitempty"`
	Overflow uint64        `json:"overflow,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, shaped for JSON export.
// encoding/json emits map keys sorted, so snapshots of the same state are
// byte-identical.
type Snapshot struct {
	Counters   map[string]float64           `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// snapshot copies the histogram state. Quantiles are computed outside the
// lock via the public accessors.
func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum}
	if h.count > 0 {
		s.Min, s.Max = h.min, h.max
	}
	for b, c := range h.counts {
		if c == 0 {
			continue
		}
		if b == len(h.edges) {
			s.Overflow = c
			continue
		}
		s.Buckets = append(s.Buckets, BucketCount{LE: h.edges[b], N: c})
	}
	h.mu.Unlock()
	s.P50 = h.Quantile(0.50)
	s.P95 = h.Quantile(0.95)
	s.P99 = h.Quantile(0.99)
	return s
}

// Snapshot copies the registry's current state. A nil registry snapshots
// empty.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]float64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		s.Histograms[k] = h.snapshot()
	}
	return s
}

// WriteJSON writes an indented JSON snapshot of the registry.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteJSONFile writes the snapshot to path, creating or truncating it.
func (r *Registry) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return fmt.Errorf("telemetry: writing %s: %w", path, err)
	}
	return f.Close()
}
