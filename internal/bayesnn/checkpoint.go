package bayesnn

import (
	"aquatope/internal/checkpoint"
	"aquatope/internal/nn"
)

// allParams returns every trainable parameter in a fixed architecture
// order. Snapshot and Restore iterate this list, so the order is part of
// the snapshot format.
func (m *Model) allParams() []*nn.Param {
	var ps []*nn.Param
	ps = append(ps, m.encoder.Params()...)
	ps = append(ps, m.bridgeH.Params()...)
	ps = append(ps, m.decoder.Params()...)
	ps = append(ps, m.decOut.Params()...)
	ps = append(ps, m.pred.Params()...)
	return ps
}

// Snapshot serializes the model completely: RNG position (MC-dropout masks
// draw from it, so the stream offset is state), every weight tensor, and
// the standardization/uncertainty scalars fitted by Train. The scratch
// buffers are excluded — they are fully overwritten before each use.
func (m *Model) Snapshot(enc *checkpoint.Encoder) {
	enc.String("bayesnn")
	m.rng.Snapshot(enc)
	nn.SnapshotParams(enc, m.allParams())
	enc.F64(m.yMean)
	enc.F64(m.yStd)
	enc.F64s(m.extMean)
	enc.F64s(m.extStd)
	enc.F64(m.histMean)
	enc.F64(m.histStd)
	enc.F64(m.residStd)
	enc.F64(m.dispersion)
	enc.Bool(m.trained)
}

// Restore loads a snapshot produced by Snapshot into a model built from the
// same Config (New with identical dimensions).
func (m *Model) Restore(dec *checkpoint.Decoder) error {
	dec.Expect("bayesnn")
	if err := m.rng.Restore(dec); err != nil {
		return err
	}
	if err := nn.RestoreParams(dec, m.allParams()); err != nil {
		return err
	}
	m.yMean = dec.F64()
	m.yStd = dec.F64()
	m.extMean = dec.F64s()
	m.extStd = dec.F64s()
	m.histMean = dec.F64()
	m.histStd = dec.F64()
	m.residStd = dec.F64()
	m.dispersion = dec.F64()
	m.trained = dec.Bool()
	return dec.Err()
}
