package experiments

import (
	"fmt"
	"math"

	"aquatope/internal/apps"
	"aquatope/internal/bo"
	"aquatope/internal/experiments/runner"
	"aquatope/internal/faas"
	"aquatope/internal/resource"
	"aquatope/internal/stats"
)

// Fig15Result reports robustness to irregular system noise: execution cost
// (% oracle) as the background-interference level grows.
type Fig15Result struct {
	Levels   []int
	CLITE    []float64
	AquaLite []float64
	Aquatope []float64
}

// Table renders the three series.
func (r Fig15Result) Table() string {
	return formatTable(r.Rows())
}

// Rows implements Result.
func (r Fig15Result) Rows() ([]string, [][]string) {
	rows := make([][]string, len(r.Levels))
	for i := range r.Levels {
		rows[i] = []string{fmt.Sprintf("%d", r.Levels[i]),
			f0(r.CLITE[i]) + "%", f0(r.AquaLite[i]) + "%", f0(r.Aquatope[i]) + "%"}
	}
	return []string{"Noise", "CLITE", "AquaLite", "Aquatope"}, rows
}

// fig15Noise builds the interference profile for one intensity level.
// Interference must stay intermittent: the rate is per invocation and a
// workflow sample aggregates ~15 invocations, so even small per-invocation
// rates give a sizable share of corrupted samples.
func fig15Noise(level int) faas.Noise {
	return faas.Noise{
		GaussianStd:  0.1,
		OutlierRate:  0.012 * float64(level),
		OutlierScale: 3 + 1.5*float64(level),
	}
}

// fig15Managers is the Fig. 15 lineup (CLITE, noise-unaware AquaLite,
// noise-aware Aquatope).
func fig15Managers() map[string]func(sp *resource.Space, p *resource.Profiler, q float64, seed int64) resource.Manager {
	fac := managerFactories()
	return map[string]func(sp *resource.Space, p *resource.Profiler, q float64, seed int64) resource.Manager{
		"clite": fac["clite"],
		"aqualite": func(sp *resource.Space, p *resource.Profiler, q float64, seed int64) resource.Manager {
			return resource.NewAquaLite(sp, p, q, seed)
		},
		"aquatope": fac["aquatope"],
	}
}

// Fig15 injects intermittent background jobs (irregular, non-Gaussian
// interference) into the ML pipeline's profiling environment at growing
// intensity, and measures the final cost found by CLITE, AquaLite (noise-
// unaware BO) and Aquatope (noise-aware BO with anomaly pruning). One
// replication per (level, manager, repetition) plus the oracle solve.
func Fig15(s Scale) Fig15Result {
	eng := s.engine("fig15")
	oracles := runner.MustRun(eng, oracleJobs(s, []string{"ml-pipeline"},
		func(int) *apps.App { return apps.NewMLPipeline() }))
	if !oracles[0].ok {
		return Fig15Result{}
	}
	oracleCost := oracles[0].cost

	managers := []string{"clite", "aqualite", "aquatope"}
	var jobs []runner.Job[headToHeadRep]
	for level := 0; level <= 4; level++ {
		level := level
		for _, mgr := range managers {
			mgr := mgr
			for rep := 0; rep < s.Repeats; rep++ {
				rep := rep
				jobs = append(jobs, runner.Job[headToHeadRep]{
					Cell: fmt.Sprintf("noise%d/%s", level, mgr), Rep: rep,
					Run: func(runner.Ctx) (headToHeadRep, error) {
						a := apps.NewMLPipeline()
						seed := s.Seed + int64(rep)*91
						prof := resource.NewProfiler(a, seed)
						prof.Noise = fig15Noise(level)
						m := fig15Managers()[mgr](resource.NewSpace(a), prof, a.QoS, seed)
						resource.Search(m, s.SearchBudget)
						cfg, _, okB := m.Best()
						if !okB {
							return headToHeadRep{}, nil
						}
						evalProf := resource.NewProfiler(a, s.Seed+500)
						c, feasible := evalTrue(evalProf, cfg, a.QoS)
						return headToHeadRep{cost: c, feasible: feasible}, nil
					}})
			}
		}
	}
	out := runner.MustRun(eng, jobs)

	res := Fig15Result{}
	ji := 0
	for level := 0; level <= 4; level++ {
		res.Levels = append(res.Levels, level)
		perManager := make(map[string]float64, len(managers))
		for _, mgr := range managers {
			reps := out[ji : ji+s.Repeats]
			ji += s.Repeats
			var sum float64
			var n int
			for _, r := range reps {
				if r.feasible {
					sum += r.cost
					n++
				}
			}
			if n == 0 {
				perManager[mgr] = math.NaN()
				continue
			}
			perManager[mgr] = sum / float64(n) / oracleCost * 100
		}
		res.CLITE = append(res.CLITE, perManager["clite"])
		res.AquaLite = append(res.AquaLite, perManager["aqualite"])
		res.Aquatope = append(res.Aquatope, perManager["aquatope"])
	}
	return res
}

// ---------------------------------------------------------------------------

// Fig16Result traces Aquatope's adaptation to workload behaviour changes:
// performance (oracle cost / current best cost, %) per profiled sample,
// with the change points marked.
type Fig16Result struct {
	Performance  []float64 // % of oracle-optimal (100 = optimal), per sample index
	ChangePoints []int
	ChangeEvents int // change resets detected by the engine
}

// Table renders a decimated trajectory.
func (r Fig16Result) Table() string {
	out := formatTable(r.Rows())
	out += fmt.Sprintf("change events detected: %d\n", r.ChangeEvents)
	return out
}

// Rows implements Result (the decimated trajectory; the change-event count
// is in Data).
func (r Fig16Result) Rows() ([]string, [][]string) {
	rows := [][]string{}
	for i := 0; i < len(r.Performance); i += 3 {
		mark := ""
		for _, cp := range r.ChangePoints {
			if i >= cp && i < cp+3 {
				mark = "<- input change"
			}
		}
		rows = append(rows, []string{fmt.Sprintf("%d", i), f0(r.Performance[i]) + "%", mark})
	}
	return []string{"Samples", "Perf(%Oracle)", ""}, rows
}

// fig16Oracle solves the oracle at one input scale.
func fig16Oracle(s Scale, inputScale float64) (float64, bool) {
	a := apps.NewVideoProcessing()
	space := resource.NewSpace(a)
	p2 := resource.NewProfiler(a, s.Seed)
	p2.InputScale = inputScale
	or := resource.NewOracle(space, p2, a.QoS, s.Seed)
	or.MaxGrid = 1
	or.Repeats = 3
	_, c, ok := or.Solve()
	return c, ok
}

// fig16Trajectory runs the adaptive search with a mid-run behaviour change.
// It is a single replication: the BO engine carries state across the whole
// trajectory, so the loop is inherently sequential.
func fig16Trajectory(s Scale, oracles map[float64]float64) Fig16Result {
	a := apps.NewVideoProcessing()
	space := resource.NewSpace(a)
	prof := resource.NewProfiler(a, s.Seed)
	prof.Noise = faas.Noise{GaussianStd: 0.1}

	eng := bo.New(bo.Options{Dim: space.Dim(), QoS: a.QoS, Seed: s.Seed,
		Window: 40, ChangeBurst: 6, AnomalyZ: 2.5})
	evalProf := resource.NewProfiler(a, s.Seed+500)

	totalSamples := 3 * s.SearchBudget
	changeAt := totalSamples / 2
	res := Fig16Result{ChangePoints: []int{changeAt}}
	scale := 1.0
	samples := 0
	for samples < totalSamples {
		if samples >= changeAt && scale == 1 {
			scale = 3 // behaviour change: input format/size triples
		}
		prof.InputScale = scale
		batch := eng.Suggest()
		obs := make([]bo.Observation, 0, len(batch))
		for _, x := range batch {
			cfgs, err := space.Decode(x)
			if err != nil {
				panic(err)
			}
			cost, lat := prof.Sample(cfgs)
			obs = append(obs, bo.Observation{X: x, Cost: cost, Latency: lat})
		}
		eng.Observe(obs)
		samples += len(obs)

		perf := 0.0
		if x, _, ok := eng.BestFeasible(); ok {
			cfgs, _ := space.Decode(x)
			evalProf.InputScale = scale
			c, l := evalProf.SampleNoiseless(cfgs, 2)
			if l <= a.QoS && c > 0 {
				perf = oracles[scale] / c * 100
				if perf > 100 {
					perf = 100
				}
			}
		}
		for i := 0; i < len(obs); i++ {
			res.Performance = append(res.Performance, perf)
		}
	}
	res.ChangeEvents = eng.ChangeEvents()
	return res
}

// Fig16 runs the video pipeline's search while the input format/size
// changes mid-run (InputScale jumps); the engine's anomaly burst detection
// should trigger incremental retraining and performance should recover
// within ~20 samples. Replications: the two phase oracles in parallel, then
// the (sequential) adaptive trajectory.
func Fig16(s Scale) Fig16Result {
	eng := s.engine("fig16")
	scales := []float64{1, 3}
	phase := make([]runner.Job[float64], len(scales))
	for i, sc := range scales {
		sc := sc
		phase[i] = runner.Job[float64]{Cell: fmt.Sprintf("oracle/scale%.0f", sc),
			Run: func(runner.Ctx) (float64, error) {
				c, ok := fig16Oracle(s, sc)
				if !ok {
					return 0, nil
				}
				return c, nil
			}}
	}
	solved := runner.MustRun(eng, phase)
	oracles := make(map[float64]float64, len(scales))
	for i, sc := range scales {
		if solved[i] > 0 {
			oracles[sc] = solved[i]
		}
	}

	out := runner.MustRun(eng, []runner.Job[Fig16Result]{
		{Cell: "trajectory",
			Run: func(runner.Ctx) (Fig16Result, error) {
				return fig16Trajectory(s, oracles), nil
			}},
	})
	return out[0]
}

// RecoverySamples returns how many samples after the change point the
// performance needed to get back to the given threshold (%), or -1.
func (r Fig16Result) RecoverySamples(threshold float64) int {
	if len(r.ChangePoints) == 0 {
		return -1
	}
	cp := r.ChangePoints[0]
	for i := cp; i < len(r.Performance); i++ {
		if r.Performance[i] >= threshold {
			return i - cp
		}
	}
	return -1
}

var _ = stats.Mean // reserved for aggregate variants
