// Quickstart: define a three-stage serverless workflow, drive it with a
// bursty synthetic trace, and let Aquatope manage both its pre-warmed
// container pool and its per-function resource configuration.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"aquatope/internal/apps"
	"aquatope/internal/core"
	"aquatope/internal/faas"
	"aquatope/internal/pool"
	"aquatope/internal/trace"
)

func main() {
	// 1. A multi-stage serverless application: three chained functions
	//    with alternating CPU- and memory-bound profiles, and an
	//    end-to-end latency QoS.
	app := apps.NewChain(3)
	fmt.Printf("app %q: %d stages, QoS %.2fs\n", app.Name, len(app.DAG.Stages()), app.QoS)

	// 2. A day and a half of invocations: diurnal seasonality, bursts.
	tr := trace.Synthesize(trace.GenConfig{
		DurationMin:          2160,
		MeanRatePerMin:       0.8,
		Diurnal:              0.6,
		CV:                   2,
		BurstEpisodesPerHour: 1,
		Seed:                 42,
	})
	fmt.Printf("trace: %d invocations, inter-arrival CV %.2f\n",
		len(tr.Arrivals), tr.InterArrivalCV())

	// 3. Aquatope end to end: the resource manager profiles candidate
	//    configurations with noisy-EI Bayesian optimization, then the
	//    hybrid-Bayesian pool pre-warms containers ahead of load. The
	//    first day trains the models; metrics cover the rest.
	res, err := core.Run(core.Config{
		Components: []core.Component{{App: app, Trace: tr}},
		TrainMin:   1440,
		PoolFactory: func(fn string) pool.Policy {
			cfg := pool.DefaultModelConfig(trace.FeatureDim)
			cfg.EncoderEpochs, cfg.PredEpochs = 6, 18
			return &pool.Aquatope{ModelConfig: cfg, Window: 40, HeadroomZ: 2.5}
		},
		ManagerFactory: core.AquatopeManagerFactory(),
		SearchBudget:   24,
		ProfileNoise:   faas.Noise{GaussianStd: 0.1},
		RuntimeNoise:   faas.Noise{GaussianStd: 0.1},
		Seed:           1,
	})
	if err != nil {
		log.Fatal(err)
	}

	ar := res.PerApp[app.Name]
	fmt.Printf("\n-- results over the test day --\n")
	fmt.Printf("workflows:        %d\n", ar.Workflows)
	fmt.Printf("QoS violations:   %.1f%%\n", ar.ViolationRate()*100)
	fmt.Printf("cold starts:      %.1f%%\n", res.ColdStartRate()*100)
	fmt.Printf("mean latency:     %.2fs (QoS %.2fs)\n", ar.MeanLatency, app.QoS)
	fmt.Printf("CPU time:         %.1f core-s\n", ar.CPUTime)
	fmt.Printf("memory time:      %.1f GB-s\n", ar.MemTime)
	fmt.Println("\nchosen per-function configuration:")
	for _, fn := range app.FunctionNames() {
		c := ar.ChosenConfig[fn]
		fmt.Printf("  %-10s cpu=%.2g cores  mem=%.0f MB\n", fn, c.CPU, c.MemoryMB)
	}
}
