package trace

import (
	"math"
	"sort"
	"testing"

	"aquatope/internal/stats"
)

func TestSynthesizeBasics(t *testing.T) {
	tr := Synthesize(GenConfig{DurationMin: 120, MeanRatePerMin: 20, CV: 1, Seed: 1})
	if tr.DurationMin != 120 {
		t.Fatalf("duration = %d", tr.DurationMin)
	}
	if len(tr.Arrivals) == 0 {
		t.Fatal("no arrivals generated")
	}
	if !sort.Float64sAreSorted(tr.Arrivals) {
		t.Fatal("arrivals not sorted")
	}
	for _, a := range tr.Arrivals {
		if a < 0 || a >= 120*60 {
			t.Fatalf("arrival %v out of horizon", a)
		}
	}
	// Mean rate should be near 20/min.
	got := float64(len(tr.Arrivals)) / 120
	if math.Abs(got-20) > 4 {
		t.Fatalf("mean rate = %v, want ~20", got)
	}
}

func TestCVTargets(t *testing.T) {
	for _, cv := range []float64{0.3, 1, 2, 4} {
		tr := Synthesize(GenConfig{DurationMin: 600, MeanRatePerMin: 30, CV: cv, Seed: 7})
		got := tr.InterArrivalCV()
		if math.Abs(got-cv) > cv*0.35+0.15 {
			t.Fatalf("target CV %v, measured %v", cv, got)
		}
	}
}

func TestCVOrdering(t *testing.T) {
	low := Synthesize(GenConfig{DurationMin: 300, MeanRatePerMin: 30, CV: 0.2, Seed: 3})
	high := Synthesize(GenConfig{DurationMin: 300, MeanRatePerMin: 30, CV: 4, Seed: 3})
	if low.InterArrivalCV() >= high.InterArrivalCV() {
		t.Fatalf("CV ordering violated: %v vs %v", low.InterArrivalCV(), high.InterArrivalCV())
	}
}

func TestCountsBinning(t *testing.T) {
	tr := &Trace{Arrivals: []float64{10, 30, 70, 130, 3599}, DurationMin: 60}
	c := tr.Counts()
	if len(c) != 60 {
		t.Fatalf("len = %d", len(c))
	}
	if c[0] != 2 || c[1] != 1 || c[2] != 1 || c[59] != 1 {
		t.Fatalf("counts = %v...", c[:3])
	}
	var total float64
	for _, v := range c {
		total += v
	}
	if total != 5 {
		t.Fatalf("total = %v", total)
	}
}

func TestDiurnalSeasonalityVisible(t *testing.T) {
	tr := Synthesize(GenConfig{DurationMin: 2 * MinutesPerDay, MeanRatePerMin: 30, Diurnal: 0.8, CV: 0.5, Seed: 5})
	c := tr.Counts()
	// Peak-hour mean should clearly exceed trough-hour mean.
	peak := stats.Mean(c[11*60 : 13*60]) // near midday phase peak
	trough := stats.Mean(c[23*60 : 24*60])
	if peak < trough*1.5 {
		t.Fatalf("diurnal pattern weak: peak %v trough %v", peak, trough)
	}
}

func TestSplit(t *testing.T) {
	tr := Synthesize(GenConfig{DurationMin: 100, MeanRatePerMin: 10, CV: 1, Seed: 6})
	train, test := tr.Split(60)
	if train.DurationMin != 60 || test.DurationMin != 40 {
		t.Fatalf("durations = %d/%d", train.DurationMin, test.DurationMin)
	}
	if len(train.Arrivals)+len(test.Arrivals) != len(tr.Arrivals) {
		t.Fatal("arrivals lost in split")
	}
	for _, a := range train.Arrivals {
		if a >= 3600 {
			t.Fatal("train arrival past cut")
		}
	}
	for _, a := range test.Arrivals {
		if a < 0 {
			t.Fatal("test arrival negative after rebase")
		}
	}
}

func TestFeatures(t *testing.T) {
	tr := &Trace{TriggerType: 1, DurationMin: 10}
	f := tr.Features(0)
	if len(f) != FeatureDim {
		t.Fatalf("feature dim = %d, want %d", len(f), FeatureDim)
	}
	if f[2] != 0 || f[3] != 1 || f[4] != 0 {
		t.Fatalf("one-hot wrong: %v", f[2:])
	}
	// Periodicity: same minute a day apart produces identical features.
	g := tr.Features(MinutesPerDay)
	for i := range f {
		if math.Abs(f[i]-g[i]) > 1e-9 {
			t.Fatalf("features not week-periodic at %d", i)
		}
	}
}

func TestFeaturesRespectStartMinute(t *testing.T) {
	a := &Trace{StartMinute: 0}
	b := &Trace{StartMinute: 720}
	fa, fb := a.Features(0), b.Features(0)
	same := true
	for i := range fa {
		if fa[i] != fb[i] {
			same = false
		}
	}
	if same {
		t.Fatal("start offset should shift features")
	}
}

func TestAzureLikeEnsembleHeterogeneity(t *testing.T) {
	traces := AzureLikeEnsemble(40, 300, 9)
	if len(traces) != 40 {
		t.Fatalf("got %d traces", len(traces))
	}
	highCV := 0
	for _, tr := range traces {
		if tr.InterArrivalCV() > 2 {
			highCV++
		}
	}
	// Azure: "more than 40% of invocation traces have CVs greater than 2".
	if highCV < 8 {
		t.Fatalf("only %d/40 traces have CV > 2", highCV)
	}
}

func TestScaleRate(t *testing.T) {
	tr := Synthesize(GenConfig{DurationMin: 100, MeanRatePerMin: 10, CV: 1, Seed: 10})
	double := tr.ScaleRate(2, 1)
	ratio := float64(len(double.Arrivals)) / float64(len(tr.Arrivals))
	if math.Abs(ratio-2) > 0.2 {
		t.Fatalf("scale 2 ratio = %v", ratio)
	}
	half := tr.ScaleRate(0.5, 2)
	ratio = float64(len(half.Arrivals)) / float64(len(tr.Arrivals))
	if math.Abs(ratio-0.5) > 0.15 {
		t.Fatalf("scale 0.5 ratio = %v", ratio)
	}
	if !sort.Float64sAreSorted(double.Arrivals) {
		t.Fatal("scaled arrivals not sorted")
	}
	if len(tr.ScaleRate(0, 3).Arrivals) != 0 {
		t.Fatal("scale 0 should empty the trace")
	}
}

func TestInterArrivalCVDegenerate(t *testing.T) {
	tr := &Trace{Arrivals: []float64{1, 2}}
	if tr.InterArrivalCV() != 0 {
		t.Fatal("CV of too-few arrivals should be 0")
	}
}
