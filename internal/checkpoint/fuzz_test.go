package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzDecode drives arbitrary bytes through the container parser. The
// contract under fuzz: Decode never panics, and anything it accepts
// re-encodes to the exact input (so a decoded File can stand in for the
// file it came from — no silent partial restore). The committed seed corpus
// in testdata/fuzz/FuzzDecode covers a valid file plus truncated,
// bit-flipped and version-skewed variants; `go test -fuzz=FuzzDecode
// ./internal/checkpoint` explores from there.
func FuzzDecode(f *testing.F) {
	valid := sampleFile().Encode()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("AQCP"))
	f.Add([]byte("AQCP\x01\x00\x00\x00"))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	empty := (&File{}).Encode()
	f.Add(empty)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(data)
		if err != nil {
			if got != nil {
				t.Fatal("Decode returned both a file and an error")
			}
			return
		}
		if !bytes.Equal(got.Encode(), data) {
			t.Fatalf("accepted input does not re-encode identically (%d bytes)", len(data))
		}
	})
}

// FuzzDecoder drives arbitrary bytes through every primitive read to prove
// the value codec never panics regardless of read sequence.
func FuzzDecoder(f *testing.F) {
	enc := NewEncoder()
	enc.U64(99)
	enc.String("seed")
	enc.F64s([]float64{1, 2})
	f.Add(enc.Bytes())
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		d.U64()
		d.I64()
		d.Bool()
		d.F64()
		_ = d.String()
		d.Blob()
		d.F64s()
		d.I64s()
		d.Bools()
		d.Expect("x")
		d.Done()
	})
}
