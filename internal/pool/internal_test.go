package pool

import (
	"math"
	"testing"
)

func TestForwardMax(t *testing.T) {
	xs := []float64{1, 5, 2, 0, 4}
	got := forwardMax(xs, 3)
	want := []float64{5, 5, 4, 4, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("forwardMax = %v, want %v", got, want)
		}
	}
	// k=1 is the identity.
	id := forwardMax(xs, 1)
	for i := range xs {
		if id[i] != xs[i] {
			t.Fatal("k=1 should copy")
		}
	}
}

func TestRecencyFeatures(t *testing.T) {
	demand := []float64{0, 3, 0, 0, 0}
	f := recencyFeatures(demand, 5)
	if len(f) != NumRecencyFeatures {
		t.Fatalf("dim = %d", len(f))
	}
	// Last activity 4 minutes ago with size 3.
	if math.Abs(f[0]-math.Log1p(4)) > 1e-12 {
		t.Fatalf("since = %v", f[0])
	}
	if f[1] != 3 {
		t.Fatalf("last size = %v", f[1])
	}
	// Recent mean over the trailing window.
	if f[2] <= 0 {
		t.Fatalf("recent mean = %v", f[2])
	}
	// Nothing seen: capped sentinel.
	g := recencyFeatures([]float64{0, 0, 0}, 3)
	if g[0] != 5.5 || g[1] != 0 {
		t.Fatalf("empty history features = %v", g)
	}
}

func TestAquatopeCapBindsTarget(t *testing.T) {
	// Unfitted policy falls back to last demand; with the rolling cap a
	// fitted policy's target can never exceed the recent peak. We check
	// the cap arithmetic through Decide's fallback path (model absent).
	p := &Aquatope{}
	d := p.Decide([]float64{0, 2, 0, 0}, 100)
	if d.Target != 0 {
		t.Fatalf("fallback target = %d, want last demand 0", d.Target)
	}
	d = p.Decide([]float64{0, 2, 5}, 100)
	if d.Target != 5 {
		t.Fatalf("fallback target = %d, want 5", d.Target)
	}
}
