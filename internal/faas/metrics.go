package faas

// Metrics accumulates the platform statistics the paper's evaluation
// reports: cold/warm start counts, CPU-time and memory-time cost
// components, and provisioned memory-time (how long container memory was
// held, whether used or idle — the Fig. 9b metric).
type Metrics struct {
	Results []InvocationResult

	ColdStarts int
	WarmStarts int

	// CPUTime is Σ cpuLimit × execTime over invocations (core-seconds).
	CPUTime float64
	// MemTime is Σ memLimit × execTime over invocations (GB-seconds).
	MemTime float64
	// ProvisionedMemTime is Σ memLimit × containerLifetime (GB-seconds):
	// memory held by containers whether busy or idle.
	ProvisionedMemTime float64

	ContainersCreated int
	ContainersKilled  int

	// KeepResults controls whether per-invocation results are retained
	// (slices can get large on long traces).
	KeepResults bool
}

// NewMetrics returns an empty accumulator that retains per-invocation
// results.
func NewMetrics() *Metrics { return &Metrics{KeepResults: true} }

func (m *Metrics) record(r InvocationResult) {
	if m.KeepResults {
		m.Results = append(m.Results, r)
	}
	if r.ColdStart {
		m.ColdStarts++
	} else {
		m.WarmStarts++
	}
	m.CPUTime += r.CostCPUTime()
	m.MemTime += r.CostMemTime()
}

func (m *Metrics) containerCreated() { m.ContainersCreated++ }

func (m *Metrics) containerDied(memMB, lifetime float64) {
	m.ContainersKilled++
	if lifetime > 0 {
		m.ProvisionedMemTime += memMB / 1024 * lifetime
	}
}

// Invocations returns the total number of completed invocations.
func (m *Metrics) Invocations() int { return m.ColdStarts + m.WarmStarts }

// ColdStartRate returns the fraction of invocations that were cold starts.
func (m *Metrics) ColdStartRate() float64 {
	total := m.Invocations()
	if total == 0 {
		return 0
	}
	return float64(m.ColdStarts) / float64(total)
}

// Reset clears all counters.
func (m *Metrics) Reset() {
	keep := m.KeepResults
	*m = Metrics{KeepResults: keep}
}
