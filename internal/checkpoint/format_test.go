package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func crcOf(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

func sampleFile() *File {
	h := NewEncoder()
	h.I64(42)
	h.F64(3600)
	h.Int(60)
	f := &File{Header: h.Bytes()}
	a := NewEncoder()
	a.String("gp")
	a.F64s([]float64{1, 2.5, math.Inf(1), math.Copysign(0, -1)})
	f.AddSection("bo.engine.chain", a.Bytes())
	b := NewEncoder()
	b.U64(7)
	b.Bools([]bool{true, false, true})
	f.AddSection("sim.engine", b.Bytes())
	f.SortSections()
	return f
}

func TestCodecRoundTrip(t *testing.T) {
	enc := NewEncoder()
	enc.U64(0)
	enc.U64(1 << 62)
	enc.I64(-12345)
	enc.Int(7)
	enc.Bool(true)
	enc.Bool(false)
	enc.F64(math.NaN())
	enc.F64(math.Copysign(0, -1))
	enc.F64(1.5e308)
	enc.String("hello world")
	enc.String("")
	enc.Blob([]byte{0, 255, 3})
	enc.F64s([]float64{1, 2, 3})
	enc.F64s(nil)
	enc.I64s([]int64{-1, 0, 1 << 40})
	enc.Bools([]bool{true})
	enc.String("marker")

	dec := NewDecoder(enc.Bytes())
	if got := dec.U64(); got != 0 {
		t.Fatalf("u64: %d", got)
	}
	if got := dec.U64(); got != 1<<62 {
		t.Fatalf("u64: %d", got)
	}
	if got := dec.I64(); got != -12345 {
		t.Fatalf("i64: %d", got)
	}
	if got := dec.Int(); got != 7 {
		t.Fatalf("int: %d", got)
	}
	if !dec.Bool() || dec.Bool() {
		t.Fatal("bools")
	}
	if got := dec.F64(); !math.IsNaN(got) {
		t.Fatalf("nan: %v", got)
	}
	if got := dec.F64(); got != 0 || !math.Signbit(got) {
		t.Fatalf("-0: %v", got)
	}
	if got := dec.F64(); got != 1.5e308 {
		t.Fatalf("f64: %v", got)
	}
	if got := dec.String(); got != "hello world" {
		t.Fatalf("string: %q", got)
	}
	if got := dec.String(); got != "" {
		t.Fatalf("string: %q", got)
	}
	if got := dec.Blob(); !bytes.Equal(got, []byte{0, 255, 3}) {
		t.Fatalf("blob: %v", got)
	}
	if got := dec.F64s(); len(got) != 3 || got[2] != 3 {
		t.Fatalf("f64s: %v", got)
	}
	if got := dec.F64s(); got != nil {
		t.Fatalf("empty f64s: %v", got)
	}
	if got := dec.I64s(); len(got) != 3 || got[0] != -1 || got[2] != 1<<40 {
		t.Fatalf("i64s: %v", got)
	}
	if got := dec.Bools(); len(got) != 1 || !got[0] {
		t.Fatalf("bools: %v", got)
	}
	dec.Expect("marker")
	if err := dec.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestDecoderStickyErrors(t *testing.T) {
	// Truncated float: error, then every later read is a zero value.
	dec := NewDecoder([]byte{1, 2, 3})
	if got := dec.F64(); got != 0 {
		t.Fatalf("truncated f64: %v", got)
	}
	if dec.Err() == nil {
		t.Fatal("expected error")
	}
	if got := dec.String(); got != "" {
		t.Fatalf("read after error: %q", got)
	}
	if got := dec.F64s(); got != nil {
		t.Fatalf("read after error: %v", got)
	}

	// Length prefix far beyond remaining input must fail, not allocate.
	enc := NewEncoder()
	enc.U64(1 << 40)
	dec = NewDecoder(enc.Bytes())
	if got := dec.F64s(); got != nil || dec.Err() == nil {
		t.Fatal("oversized length accepted")
	}

	// Invalid bool byte.
	dec = NewDecoder([]byte{7})
	dec.Bool()
	if dec.Err() == nil {
		t.Fatal("bad bool accepted")
	}

	// Marker mismatch.
	enc = NewEncoder()
	enc.String("alpha")
	dec = NewDecoder(enc.Bytes())
	dec.Expect("beta")
	if dec.Err() == nil {
		t.Fatal("marker mismatch accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	f := sampleFile()
	data := f.Encode()
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Header, f.Header) {
		t.Fatal("header mismatch")
	}
	if len(got.Sections) != len(f.Sections) {
		t.Fatalf("section count %d != %d", len(got.Sections), len(f.Sections))
	}
	for i, s := range f.Sections {
		if got.Sections[i].Name != s.Name || !bytes.Equal(got.Sections[i].Data, s.Data) {
			t.Fatalf("section %d mismatch", i)
		}
	}
	if sec, ok := got.Section("sim.engine"); !ok || len(sec) == 0 {
		t.Fatal("lookup failed")
	}
	if _, ok := got.Section("absent"); ok {
		t.Fatal("phantom section")
	}
	// Deterministic encoding: re-encode of the decoded file is identical.
	if !bytes.Equal(got.Encode(), data) {
		t.Fatal("re-encode differs")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	base := sampleFile().Encode()

	t.Run("truncation", func(t *testing.T) {
		for n := 0; n < len(base); n++ {
			if _, err := Decode(base[:n]); err == nil {
				t.Fatalf("accepted truncation to %d bytes", n)
			}
		}
	})
	t.Run("bitflips", func(t *testing.T) {
		for i := 0; i < len(base); i++ {
			for bit := 0; bit < 8; bit++ {
				mut := append([]byte(nil), base...)
				mut[i] ^= 1 << bit
				if _, err := Decode(mut); err == nil {
					t.Fatalf("accepted bit flip at byte %d bit %d", i, bit)
				}
			}
		}
	})
	t.Run("version-skew", func(t *testing.T) {
		mut := append([]byte(nil), base...)
		binary.LittleEndian.PutUint32(mut[4:], Version+1)
		// Re-seal the trailer CRC so only the version differs.
		binary.LittleEndian.PutUint32(mut[len(mut)-4:], crcOf(mut[:len(mut)-4]))
		_, err := Decode(mut)
		if err == nil {
			t.Fatal("accepted version skew")
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("unexpected error type: %v", err)
		}
	})
	t.Run("trailing-garbage", func(t *testing.T) {
		mut := append(append([]byte(nil), base...), 0xAA)
		if _, err := Decode(mut); err == nil {
			t.Fatal("accepted trailing garbage")
		}
	})
	t.Run("duplicate-sections", func(t *testing.T) {
		f := &File{}
		f.AddSection("dup", []byte{1})
		f.AddSection("dup", []byte{2})
		if _, err := Decode(f.Encode()); err == nil {
			t.Fatal("accepted duplicate sections")
		}
	})
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.aqcp")
	f := sampleFile()
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Encode(), f.Encode()) {
		t.Fatal("round trip mismatch")
	}
	// Overwrite succeeds and leaves no temp droppings.
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
	// A corrupted file on disk is rejected by ReadFile.
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("accepted corrupted file")
	}
}
