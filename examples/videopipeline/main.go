// Video pipeline example: the Sprocket-style framework of the paper's
// Fig. 7 — decode, scene-change detection, per-chunk face recognition /
// box drawing / watermarking fan-out, final encode — demonstrating the
// dynamic pre-warmed container pool on a bursty upload pattern and the
// cascading cold starts it prevents.
//
// Run with:
//
//	go run ./examples/videopipeline
package main

import (
	"fmt"

	"aquatope/internal/apps"
	"aquatope/internal/faas"
	"aquatope/internal/pool"
	"aquatope/internal/sim"
	"aquatope/internal/stats"
	"aquatope/internal/trace"
	"aquatope/internal/workflow"
)

// replay runs the video workflow over the trace with the given pool
// policy; metrics cover the post-training window.
func replay(app *apps.App, tr *trace.Trace, factory func(fn string) pool.Policy, trainMin int, seed int64) (coldRate float64, memGBs float64, meanLat float64) {
	eng := sim.NewEngine()
	cl := faas.NewCluster(eng, faas.Config{Seed: seed})
	if err := app.Register(cl); err != nil {
		panic(err)
	}
	ex := workflow.NewExecutor(cl)
	rng := stats.NewRNG(seed)
	trainCut := float64(trainMin) * 60

	var lats []float64
	var cold, inv int
	for _, at := range tr.Arrivals {
		at := at
		eng.Schedule(at, func() {
			input := app.Input(rng)
			widths := app.Widths(rng)
			_ = ex.Execute(app.DAG, input, widths, func(r workflow.Result) {
				if r.SubmitTime < trainCut {
					return
				}
				lats = append(lats, r.Latency())
				cold += r.ColdStarts
				inv += r.Invocations
			})
		})
	}

	mgr := pool.NewManager(cl)
	mgr.ApplyAfter = trainCut
	policies := make(map[string]pool.Policy)
	for _, fn := range app.FunctionNames() {
		p := factory(fn)
		policies[fn] = p
		mgr.Manage(fn, p, 0)
	}
	mgr.Start()
	eng.Schedule(trainCut, func() {
		for fn, p := range policies {
			p.Fit(pool.FitData{
				Demand: mgr.History(fn),
				FeatFn: func(i int) []float64 { return tr.Features(i) },
			})
		}
	})
	var provBase float64
	eng.Schedule(trainCut, func() { provBase = cl.Metrics().ProvisionedMemTime() })
	eng.RunUntil(float64(tr.DurationMin)*60 + 300)
	cl.Flush()

	if inv > 0 {
		coldRate = float64(cold) / float64(inv)
	}
	return coldRate, cl.Metrics().ProvisionedMemTime() - provBase, stats.Mean(lats)
}

func main() {
	app := apps.NewVideoProcessing()
	fmt.Printf("video pipeline: %d stages (chunk fan-out 2-8), QoS %.1fs\n",
		len(app.DAG.Stages()), app.QoS)

	// Upload bursts: videos arrive in episodes (e.g. after events).
	tr := trace.Synthesize(trace.GenConfig{
		DurationMin:          2160,
		MeanRatePerMin:       0.3,
		Diurnal:              0.6,
		CV:                   2,
		BurstEpisodesPerHour: 1,
		BurstDurationMin:     12,
		BurstMultiplier:      8,
		Seed:                 3,
	})
	fmt.Printf("trace: %d uploads over %d min\n\n", len(tr.Arrivals), tr.DurationMin)

	keepCold, keepMem, keepLat := replay(app, tr,
		func(fn string) pool.Policy { return &pool.FixedKeepAlive{Duration: 600} }, 1440, 1) //aqualint:allow seedflow example pins one documented replay seed so both policies see the identical workload
	fmt.Printf("fixed keep-alive:  cold=%5.1f%%  provisioned=%7.0f GB-s  latency=%.2fs\n",
		keepCold*100, keepMem, keepLat)

	aquaCold, aquaMem, aquaLat := replay(app, tr, func(fn string) pool.Policy {
		cfg := pool.DefaultModelConfig(trace.FeatureDim)
		cfg.EncoderEpochs, cfg.PredEpochs = 6, 18
		return &pool.Aquatope{ModelConfig: cfg, Window: 40, HeadroomZ: 2.5}
	}, 1440, 1) //aqualint:allow seedflow example pins one documented replay seed so both policies see the identical workload
	fmt.Printf("aquatope pool:     cold=%5.1f%%  provisioned=%7.0f GB-s  latency=%.2fs\n",
		aquaCold*100, aquaMem, aquaLat)

	fmt.Println("\nwith six dependent stages, one missed container cascades into")
	fmt.Println("multi-stage cold starts (§2.2); the predictive pool keeps the")
	fmt.Println("whole pipeline warm just ahead of each upload burst.")
}
