package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"aquatope/internal/stats"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMulIdentity(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	i := Identity(2)
	p := a.Mul(i)
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			if p.At(r, c) != a.At(r, c) {
				t.Fatalf("A*I != A at (%d,%d)", r, c)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	p := a.Mul(b)
	want := FromRows([][]float64{{58, 64}, {139, 154}})
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			if p.At(r, c) != want.At(r, c) {
				t.Fatalf("got %v at (%d,%d), want %v", p.At(r, c), r, c, want.At(r, c))
			}
		}
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 3))
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	y := a.MulVec([]float64{1, 1})
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("transpose wrong: %+v", at)
	}
}

func TestAddScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	s := a.Add(a.Scale(2))
	if s.At(1, 1) != 12 || s.At(0, 0) != 3 {
		t.Fatalf("Add/Scale wrong: %+v", s)
	}
}

func TestDot(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("dot wrong")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestCholeskyKnown(t *testing.T) {
	a := FromRows([][]float64{
		{4, 12, -16},
		{12, 37, -43},
		{-16, -43, 98},
	})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]float64{{2, 0, 0}, {6, 1, 0}, {-8, 5, 3}})
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !approx(l.At(i, j), want.At(i, j), 1e-9) {
				t.Fatalf("L(%d,%d) = %v, want %v", i, j, l.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestCholeskyRejectsNonSquare(t *testing.T) {
	if _, err := Cholesky(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected error on non-square input")
	}
}

func TestCholeskyRejectsNegativeDefinite(t *testing.T) {
	a := FromRows([][]float64{{-1, 0}, {0, -1}})
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected ErrNotPSD")
	}
}

func TestCholeskyJitterRecoversSemiDefinite(t *testing.T) {
	// Rank-1 PSD matrix (singular): jitter should rescue it.
	a := FromRows([][]float64{{1, 1}, {1, 1}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatalf("jitter failed to rescue PSD matrix: %v", err)
	}
	// Reconstruction should be close to A.
	r := l.Mul(l.T())
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !approx(r.At(i, j), a.At(i, j), 1e-3) {
				t.Fatalf("reconstruction off: %v vs %v", r.At(i, j), a.At(i, j))
			}
		}
	}
}

func TestCholSolve(t *testing.T) {
	a := FromRows([][]float64{
		{4, 12, -16},
		{12, 37, -43},
		{-16, -43, 98},
	})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := CholSolve(l, []float64{1, 2, 3})
	// Verify A x = b.
	b := a.MulVec(x)
	want := []float64{1, 2, 3}
	for i := range b {
		if !approx(b[i], want[i], 1e-8) {
			t.Fatalf("Ax = %v, want %v", b, want)
		}
	}
}

func TestLogDetFromChol(t *testing.T) {
	a := FromRows([][]float64{{4, 0}, {0, 9}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := LogDetFromChol(l); !approx(got, math.Log(36), 1e-12) {
		t.Fatalf("logdet = %v, want log(36)", got)
	}
}

func TestSolveLowerUpper(t *testing.T) {
	l := FromRows([][]float64{{2, 0}, {1, 3}})
	y := SolveLower(l, []float64{4, 10})
	if !approx(y[0], 2, 1e-12) || !approx(y[1], 8.0/3.0, 1e-12) {
		t.Fatalf("SolveLower = %v", y)
	}
	x := SolveUpperT(l, y)
	// Check L Lᵀ x = b.
	a := l.Mul(l.T())
	b := a.MulVec(x)
	if !approx(b[0], 4, 1e-9) || !approx(b[1], 10, 1e-9) {
		t.Fatalf("round-trip b = %v", b)
	}
}

// Property: for random SPD matrices A = M Mᵀ + nI, CholSolve(A, b) solves
// the system.
func TestPropertyCholeskySolvesSPD(t *testing.T) {
	g := stats.NewRNG(11)
	f := func(seed uint8) bool {
		n := 2 + int(seed)%6
		m := NewMatrix(n, n)
		for i := range m.Data {
			m.Data[i] = g.Normal(0, 1)
		}
		a := m.Mul(m.T())
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = g.Normal(0, 1)
		}
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		x := CholSolve(l, b)
		ax := a.MulVec(x)
		for i := range b {
			if !approx(ax[i], b[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
