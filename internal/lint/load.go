package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath   string
	Dir          string
	Export       string
	Standard     bool
	DepOnly      bool
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// Load resolves patterns (e.g. "./...") in dir to parsed, type-checked
// packages ready for analysis. It shells out to the go command once —
// `go list -deps -export -json` — to enumerate packages and obtain
// compiled export data for every dependency, then type-checks the target
// packages from source against that export data. This keeps the tool on
// the standard library alone: no golang.org/x/tools.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := buildPackage(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func buildPackage(fset *token.FileSet, imp types.Importer, t listPackage) (*Package, error) {
	pkg := &Package{PkgPath: t.ImportPath, Fset: fset}
	var compiled []*ast.File
	parse := func(names []string, test bool) error {
		for _, name := range names {
			path := filepath.Join(t.Dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return fmt.Errorf("parsing %s: %v", path, err)
			}
			pkg.Files = append(pkg.Files, &File{Name: path, AST: f, Test: test})
			if !test {
				compiled = append(compiled, f)
			}
		}
		return nil
	}
	if err := parse(t.GoFiles, false); err != nil {
		return nil, err
	}
	if err := parse(t.TestGoFiles, true); err != nil {
		return nil, err
	}
	if err := parse(t.XTestGoFiles, true); err != nil {
		return nil, err
	}
	if len(compiled) > 0 {
		info := newTypesInfo()
		conf := types.Config{Importer: imp}
		if _, err := conf.Check(t.ImportPath, fset, compiled, info); err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
		}
		pkg.Info = info
	}
	return pkg, nil
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}
