package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func TestWritePromText(t *testing.T) {
	r := NewRegistry()
	r.Counter(MetricColdStarts).Add(3)
	r.Gauge("faas.invoker.busy_s.0").Set(1.5)
	h := r.HistogramBuckets("workflow.latency_s.app", 0.1, 2, 4)
	h.Observe(0.05) // first bucket
	h.Observe(0.15) // second
	h.Observe(99)   // overflow

	var buf bytes.Buffer
	if err := r.WritePromText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE faas_cold_starts counter\nfaas_cold_starts 3\n",
		"# TYPE faas_invoker_busy_s_0 gauge\nfaas_invoker_busy_s_0 1.5\n",
		"# TYPE workflow_latency_s_app histogram\n",
		"workflow_latency_s_app_bucket{le=\"0.1\"} 1\n",
		"workflow_latency_s_app_bucket{le=\"0.2\"} 2\n",
		"workflow_latency_s_app_bucket{le=\"+Inf\"} 3\n",
		"workflow_latency_s_app_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q\n%s", want, out)
		}
	}
	// Counters render before gauges before histograms, names sorted.
	if !strings.HasPrefix(out, "# TYPE faas_cold_starts counter") {
		t.Errorf("unexpected prefix:\n%s", out)
	}

	// Determinism: repeated renders are byte-identical.
	var buf2 bytes.Buffer
	if err := r.WritePromText(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("repeated prom renders differ")
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"faas.cold_starts":     "faas_cold_starts",
		"workflow.latency_s.a": "workflow_latency_s_a",
		"0abc":                 "_abc",
		"a:b-c":                "a:b_c",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
