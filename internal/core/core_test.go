package core

import (
	"testing"

	"aquatope/internal/apps"
	"aquatope/internal/pool"
	"aquatope/internal/trace"
)

func smallComponents(seed int64) []Component {
	chain := apps.NewChain(2)
	tr := trace.Synthesize(trace.GenConfig{
		DurationMin:    240,
		MeanRatePerMin: 1.5,
		Diurnal:        0.5,
		CV:             1.5,
		Seed:           seed,
	})
	return []Component{{App: chain, Trace: tr}}
}

// fastPool keeps end-to-end tests quick.
func fastPool() PolicyFactory {
	return func(fn string) pool.Policy {
		cfg := pool.DefaultModelConfig(trace.FeatureDim)
		cfg.EncoderHidden = 10
		cfg.PredHidden = []int{10, 6}
		cfg.EncoderEpochs = 4
		cfg.PredEpochs = 10
		cfg.MCSamples = 6
		cfg.LR = 0.01
		return &pool.Aquatope{ModelConfig: cfg, Window: 20, HeadroomZ: 2}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config should error")
	}
	if _, err := Run(Config{Components: smallComponents(1)}); err == nil {
		t.Fatal("zero TrainMin should error")
	}
}

func TestEndToEndDefaults(t *testing.T) {
	res, err := Run(Config{
		Components: smallComponents(2),
		TrainMin:   120,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workflows() == 0 {
		t.Fatal("no workflows completed in test window")
	}
	if res.CPUTime() <= 0 || res.MemTime() <= 0 {
		t.Fatal("cost not accounted")
	}
	app := res.PerApp["chain2"]
	if app.Invocations < app.Workflows*2 {
		t.Fatalf("chain2 should have >= 2 invocations per workflow: %d/%d", app.Invocations, app.Workflows)
	}
	if app.MeanLatency <= 0 {
		t.Fatal("mean latency missing")
	}
}

func TestEndToEndFullAquatope(t *testing.T) {
	res, err := Run(Config{
		Components:     smallComponents(4),
		TrainMin:       120,
		PoolFactory:    fastPool(),
		ManagerFactory: AquatopeManagerFactory(),
		SearchBudget:   15,
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workflows() == 0 {
		t.Fatal("no workflows")
	}
	app := res.PerApp["chain2"]
	if app.ChosenConfig == nil {
		t.Fatal("resource manager did not install a configuration")
	}
	if rate := res.QoSViolationRate(); rate > 0.5 {
		t.Fatalf("violation rate %.2f too high for full system", rate)
	}
}

func TestFullSystemBeatsKeepAliveOnColdStarts(t *testing.T) {
	// Sparse periodic trace: the keep-alive variant suffers cold starts,
	// the Aquatope pool avoids most of them.
	chain := apps.NewChain(2)
	tr := trace.SynthesizePeriodic(trace.PeriodicGenConfig{
		DurationMin: 960, PeriodMin: 25, JitterFrac: 0.12, ClumpMean: 2,
		Diurnal: 0.4, Seed: 11,
	})
	comps := []Component{{App: chain, Trace: tr}}

	keep, err := Run(Config{Components: comps, TrainMin: 600,
		PoolFactory: KeepAlivePoolFactory(600), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	aqua, err := Run(Config{Components: comps, TrainMin: 600,
		PoolFactory: fastPool(), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if aqua.ColdStartRate() >= keep.ColdStartRate() {
		t.Fatalf("aquatope cold %.3f should beat keep-alive %.3f",
			aqua.ColdStartRate(), keep.ColdStartRate())
	}
}

func TestFactoriesProduceDistinctPolicies(t *testing.T) {
	if AquatopePoolFactory(false)("f").Name() != "aquatope" {
		t.Fatal("aquatope factory wrong")
	}
	if AquatopePoolFactory(true)("f").Name() != "aqualite" {
		t.Fatal("aqualite factory wrong")
	}
	if AutoscalePoolFactory()("f").Name() != "autoscale" {
		t.Fatal("autoscale factory wrong")
	}
	if IceBreakerPoolFactory()("f").Name() != "icebreaker" {
		t.Fatal("icebreaker factory wrong")
	}
	if KeepAlivePoolFactory(60)("f").Name() != "keepalive" {
		t.Fatal("keepalive factory wrong")
	}
}

func TestResultAggregation(t *testing.T) {
	r := Result{PerApp: map[string]AppResult{
		"a": {Workflows: 10, QoSViolations: 1, ColdStarts: 2, Invocations: 20, CPUTime: 5, MemTime: 3},
		"b": {Workflows: 10, QoSViolations: 3, ColdStarts: 8, Invocations: 30, CPUTime: 5, MemTime: 2},
	}}
	if r.Workflows() != 20 {
		t.Fatalf("workflows = %d", r.Workflows())
	}
	if got := r.QoSViolationRate(); got != 0.2 {
		t.Fatalf("violation rate = %v", got)
	}
	if got := r.ColdStartRate(); got != 0.2 {
		t.Fatalf("cold rate = %v", got)
	}
	if r.CPUTime() != 10 || r.MemTime() != 5 {
		t.Fatal("cost aggregation wrong")
	}
	if (AppResult{}).ViolationRate() != 0 {
		t.Fatal("empty app violation rate should be 0")
	}
	if (Result{}).QoSViolationRate() != 0 || (Result{}).ColdStartRate() != 0 {
		t.Fatal("empty result rates should be 0")
	}
}
