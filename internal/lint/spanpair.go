package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

var spanpairAnalyzer = &Analyzer{
	Name: "spanpair",
	Doc: "require every telemetry.StartSpan result to be ended on all " +
		"control-flow paths of its function (or handed off / deferred); a " +
		"leaked span never gets an End time and silently corrupts " +
		"aquatrace's phase attribution",
	NeedsTypes: true,
	Run:        runSpanpair,
}

// spanpairCatalog is the package whose StartSpan/EndSpan calls are
// tracked; overridden by Rule.Sinks in fixtures.
var spanpairCatalog = []string{"aquatope/internal/telemetry"}

func runSpanpair(prog *Program, pkg *Package, file *File, rule Rule, report Reporter) {
	catalog := rule.Sinks
	if len(catalog) == 0 {
		catalog = spanpairCatalog
	}
	// Walk every function (decl or literal) independently: a span's
	// lifecycle obligation is scoped to the function that starts it.
	ast.Inspect(file.AST, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			return true
		}
		if body != nil {
			checkSpanFunc(pkg, body, catalog, report)
		}
		return true
	})
}

// checkSpanFunc checks one function body. Nested function literals are
// analyzed by their own runSpanpair visit; here they only matter as
// capture sites (escape) or deferred closers.
func checkSpanFunc(pkg *Package, body *ast.BlockStmt, catalog []string, report Reporter) {
	info := pkg.Info
	var graph *funcCFG // built lazily, only when a span needs a path check
	for _, st := range spanStarts(info, body, catalog) {
		if st.obj == nil {
			report(st.call.Pos(), "StartSpan result is discarded, so the span can never be ended; assign the SpanID and call EndSpan (or use Point for an instant event)")
			continue
		}
		switch classifySpanUses(info, body, st, catalog) {
		case spanEscapes, spanReassigned:
			continue // lifecycle is non-local; out of scope for a per-function check
		case spanDeferred:
			continue // defer covers every exit, including panic unwinding
		}
		if graph == nil {
			graph = buildCFG(body)
		}
		if !graph.ok {
			continue // goto / labeled branches: bail conservatively
		}
		blk, idx := graph.blockOf(st.stmt)
		if blk == nil {
			continue
		}
		if pos, leaked := findSpanLeak(info, blk, idx, st.obj, catalog); leaked {
			where := "the function's end"
			if pos != token.NoPos {
				where = "the return at line " + itoa(pkg.Fset.Position(pos).Line)
			}
			report(st.call.Pos(), "span %s is not ended on every path: %s is reachable without an EndSpan call; end it on all paths or defer the EndSpan", st.obj.Name(), where)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// spanStart is one StartSpan call site and the variable bound to it (nil
// when the result is discarded in statement position).
type spanStart struct {
	call *ast.CallExpr
	stmt ast.Stmt
	obj  types.Object
}

// spanStarts finds StartSpan calls bound at statement level in body,
// excluding nested function literals (they get their own visit).
func spanStarts(info *types.Info, body *ast.BlockStmt, catalog []string) []spanStart {
	var starts []spanStart
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
			if !ok || !isSpanCall(info, call, "StartSpan", catalog) {
				return true
			}
			if len(st.Lhs) != 1 {
				return true
			}
			id, ok := ast.Unparen(st.Lhs[0]).(*ast.Ident)
			if !ok || id.Name == "_" {
				// Blank assign is a visible, reviewable discard (droppederr
				// convention); indexed/field targets escape by construction.
				return true
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj != nil {
				starts = append(starts, spanStart{call: call, stmt: st, obj: obj})
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok && isSpanCall(info, call, "StartSpan", catalog) {
				starts = append(starts, spanStart{call: call, stmt: st})
			}
		}
		return true
	})
	return starts
}

// isSpanCall reports whether call is <recv>.<method> with the method name
// given and the receiver type declared in a catalog package.
func isSpanCall(info *types.Info, call *ast.CallExpr, method string, catalog []string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	path, _ := calleePackage(info, sel)
	return path != "" && pathInCatalog(path, catalog)
}

type spanDisposition int

const (
	spanLocal spanDisposition = iota // all uses are local: needs the path check
	spanDeferred
	spanEscapes
	spanReassigned
)

func worseDisposition(a, b spanDisposition) spanDisposition {
	if a == spanEscapes || b == spanEscapes {
		return spanEscapes
	}
	if a == spanReassigned || b == spanReassigned {
		return spanReassigned
	}
	if a == spanDeferred || b == spanDeferred {
		return spanDeferred
	}
	return spanLocal
}

// classifySpanUses scans every use of the span variable in the function
// body and decides whether the span's lifecycle stays local. Uses that
// keep it local: EndSpan first argument, arguments to other telemetry
// calls (parent plumbing), and comparisons (the `if id != 0` guard). A
// deferred EndSpan (directly or in a deferred closure) discharges the
// obligation on every exit including panics. Anything else — returned,
// stored into a field/slice/map, passed to a non-telemetry function,
// captured by a non-deferred closure, reassigned — makes the lifecycle
// non-local, and the per-function check bails rather than guess.
func classifySpanUses(info *types.Info, body *ast.BlockStmt, st spanStart, catalog []string) spanDisposition {
	disp := spanLocal

	classify := func(n ast.Node, inDefer bool) spanDisposition {
		switch x := n.(type) {
		case *ast.CallExpr:
			if isSpanCall(info, x, "EndSpan", catalog) && len(x.Args) > 0 && usesObject(info, x.Args[0], st.obj) {
				if inDefer {
					return spanDeferred
				}
				return spanLocal
			}
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if path, _ := calleePackage(info, sel); path != "" && pathInCatalog(path, catalog) {
					return spanLocal // parent plumbing into telemetry
				}
			}
			for _, arg := range x.Args {
				if usesObject(info, arg, st.obj) {
					return spanEscapes
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if usesObject(info, r, st.obj) {
					return spanEscapes
				}
			}
		case *ast.AssignStmt:
			if x == st.stmt {
				return spanLocal
			}
			for i, l := range x.Lhs {
				if id := rootIdent(l); id != nil && info.ObjectOf(id) == st.obj {
					return spanReassigned
				}
				if i < len(x.Rhs) && usesObject(info, x.Rhs[i], st.obj) {
					// A telemetry call on the RHS (child := tr.StartSpan(...,
					// parent, ...)) is parent plumbing, not a hand-off.
					if call, ok := ast.Unparen(x.Rhs[i]).(*ast.CallExpr); ok {
						if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
							if path, _ := calleePackage(info, sel); path != "" && pathInCatalog(path, catalog) {
								continue
							}
						}
					}
					return spanEscapes
				}
			}
			if len(x.Rhs) == 1 && len(x.Lhs) > 1 && usesObject(info, x.Rhs[0], st.obj) {
				return spanEscapes
			}
		case *ast.CompositeLit:
			for _, e := range x.Elts {
				if usesObject(info, e, st.obj) {
					return spanEscapes
				}
			}
		case *ast.SendStmt:
			if usesObject(info, x.Value, st.obj) {
				return spanEscapes
			}
		}
		return spanLocal
	}

	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil || disp == spanEscapes || disp == spanReassigned {
				return false
			}
			switch x := m.(type) {
			case *ast.DeferStmt:
				// The deferred call (and a deferred closure body) runs on
				// every exit; walk it under the defer flag instead of the
				// normal traversal.
				if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
					walk(lit.Body, true)
				} else {
					walk(x.Call, true)
				}
				return false
			case *ast.FuncLit:
				if m != n {
					if inDefer {
						walk(x.Body, true)
					} else if usesObject(info, x, st.obj) {
						// Captured by a closure that is not (provably)
						// deferred: the lifecycle is non-local.
						disp = worseDisposition(disp, spanEscapes)
					}
					return false
				}
			}
			disp = worseDisposition(disp, classify(m, inDefer))
			return disp != spanEscapes && disp != spanReassigned
		})
	}
	walk(body, false)
	return disp
}

// findSpanLeak walks the CFG from the statement after the StartSpan and
// returns the first function exit reachable without an EndSpan(obj) call
// (leaked == true; pos is the leaking return, or NoPos for the fall-off
// end of the body). Edges whose condition proves the span is zero
// (`id == 0` then-edge, `id != 0` else-edge) carry no live span and are
// skipped.
func findSpanLeak(info *types.Info, start *cfgBlock, idx int, obj types.Object, catalog []string) (token.Pos, bool) {
	closes := func(s ast.Stmt) bool {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			if found {
				return false
			}
			if _, ok := n.(*ast.FuncLit); ok {
				// A closure's EndSpan only counts through defer; the
				// disposition pass already handled deferred closures, and a
				// DeferStmt's direct call is inspected below.
				if _, isDefer := s.(*ast.DeferStmt); !isDefer {
					return false
				}
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if isSpanCall(info, call, "EndSpan", catalog) && len(call.Args) > 0 && usesObject(info, call.Args[0], obj) {
					found = true
					return false
				}
			}
			return true
		})
		return found
	}
	visited := map[*cfgBlock]bool{start: true}
	var dfs func(b *cfgBlock, from int) (token.Pos, bool)
	dfs = func(b *cfgBlock, from int) (token.Pos, bool) {
		for i := from; i < len(b.stmts); i++ {
			if closes(b.stmts[i]) {
				return token.NoPos, false
			}
		}
		if b.ret != nil {
			return b.ret.Pos(), true // returning with the span still open
		}
		if len(b.succs) == 0 {
			return token.NoPos, true // fell off the end of the body
		}
		for _, e := range b.succs {
			if spanProvedZero(info, e, obj) || visited[e.to] {
				continue
			}
			visited[e.to] = true
			if pos, leaked := dfs(e.to, 0); leaked {
				return pos, true
			}
		}
		return token.NoPos, false
	}
	return dfs(start, idx)
}

// spanProvedZero reports whether taking edge e implies the span variable
// is the zero SpanID (no live span): the false edge of `obj != 0` or the
// true edge of `obj == 0`.
func spanProvedZero(info *types.Info, e cfgEdge, obj types.Object) bool {
	if e.cond == nil {
		return false
	}
	bin, ok := ast.Unparen(e.cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	var other ast.Expr
	switch {
	case refersTo(info, bin.X, obj):
		other = bin.Y
	case refersTo(info, bin.Y, obj):
		other = bin.X
	default:
		return false
	}
	if !isZeroLiteral(other) {
		return false
	}
	switch bin.Op {
	case token.NEQ:
		return e.negate // else-branch of id != 0
	case token.EQL:
		return !e.negate // then-branch of id == 0
	}
	return false
}

func refersTo(info *types.Info, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && info.ObjectOf(id) == obj
}

func isZeroLiteral(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Value == "0"
}
