// Package qmc implements quasi-Monte-Carlo sampling: Sobol low-discrepancy
// sequences (Joe-Kuo direction numbers, up to 32 dimensions) with optional
// random digital-shift scrambling, plus a helper that maps uniform points to
// standard Gaussian draws. The Bayesian-optimization engine integrates the
// noisy expected improvement acquisition with these samples, following the
// method of Letham et al. (2019) that the paper adopts.
package qmc

import (
	"fmt"
	"math"

	"aquatope/internal/stats"
)

const maxBits = 52 // bits per dimension; gives resolution 2^-52

// joe-Kuo "new-joe-kuo-6" direction-number parameters for dimensions 2..32.
// Dimension 1 is the van der Corput sequence (all m_i = 1).
type dirSpec struct {
	s uint   // degree of primitive polynomial
	a uint64 // polynomial coefficient bits (excluding leading/trailing 1)
	m []uint64
}

var joeKuo = []dirSpec{
	{1, 0, []uint64{1}},
	{2, 1, []uint64{1, 3}},
	{3, 1, []uint64{1, 3, 1}},
	{3, 2, []uint64{1, 1, 1}},
	{4, 1, []uint64{1, 1, 3, 3}},
	{4, 4, []uint64{1, 3, 5, 13}},
	{5, 2, []uint64{1, 1, 5, 5, 17}},
	{5, 4, []uint64{1, 1, 5, 5, 5}},
	{5, 7, []uint64{1, 1, 7, 11, 19}},
	{5, 11, []uint64{1, 1, 5, 1, 1}},
	{5, 13, []uint64{1, 1, 1, 3, 11}},
	{5, 14, []uint64{1, 3, 5, 5, 31}},
	{6, 1, []uint64{1, 3, 3, 9, 7, 49}},
	{6, 13, []uint64{1, 1, 1, 15, 21, 21}},
	{6, 16, []uint64{1, 3, 1, 13, 27, 49}},
	{6, 19, []uint64{1, 1, 1, 15, 7, 5}},
	{6, 22, []uint64{1, 3, 1, 15, 13, 25}},
	{6, 25, []uint64{1, 1, 5, 5, 19, 61}},
	{7, 1, []uint64{1, 3, 7, 11, 23, 15, 103}},
	{7, 4, []uint64{1, 3, 7, 13, 13, 15, 69}},
	{7, 7, []uint64{1, 1, 3, 13, 7, 35, 63}},
	{7, 8, []uint64{1, 3, 5, 9, 1, 25, 53}},
	{7, 14, []uint64{1, 3, 1, 13, 9, 35, 107}},
	{7, 19, []uint64{1, 3, 1, 5, 27, 61, 31}},
	{7, 21, []uint64{1, 1, 5, 11, 19, 41, 61}},
	{7, 28, []uint64{1, 3, 5, 3, 3, 13, 69}},
	{7, 31, []uint64{1, 1, 7, 13, 1, 19, 1}},
	{7, 32, []uint64{1, 3, 7, 5, 13, 19, 59}},
	{7, 37, []uint64{1, 1, 3, 9, 25, 29, 41}},
	{7, 41, []uint64{1, 3, 5, 13, 23, 1, 55}},
	{7, 42, []uint64{1, 3, 7, 3, 13, 59, 17}},
}

// MaxDim is the largest dimensionality a Sobol sequence supports here.
const MaxDim = 32

// Sobol generates points of a Sobol sequence in [0,1)^dim using Gray-code
// ordering. The zero-th point of the raw sequence (the origin) is skipped,
// matching common practice.
type Sobol struct {
	dim   int
	count uint64
	v     [][]uint64 // v[d][bit] direction integers, scaled to maxBits
	x     []uint64   // current Gray-code state per dimension
	shift []uint64   // digital shift per dimension (0 = unscrambled)
}

// NewSobol returns an unscrambled Sobol generator for the given
// dimensionality (1..MaxDim).
func NewSobol(dim int) *Sobol {
	if dim < 1 || dim > MaxDim {
		panic(fmt.Sprintf("qmc: dimension %d out of range [1,%d]", dim, MaxDim))
	}
	s := &Sobol{dim: dim}
	s.v = make([][]uint64, dim)
	s.x = make([]uint64, dim)
	s.shift = make([]uint64, dim)
	// Dimension 1: van der Corput, v[bit] = 1 << (maxBits-1-bit).
	s.v[0] = make([]uint64, maxBits)
	for b := 0; b < maxBits; b++ {
		s.v[0][b] = 1 << (maxBits - 1 - uint(b))
	}
	for d := 1; d < dim; d++ {
		spec := joeKuo[d-1]
		deg := int(spec.s)
		m := make([]uint64, maxBits)
		copy(m, spec.m)
		for i := deg; i < maxBits; i++ {
			mi := m[i-deg] ^ (m[i-deg] << uint(deg))
			for k := 1; k < deg; k++ {
				if (spec.a>>uint(deg-1-k))&1 == 1 {
					mi ^= m[i-k] << uint(k)
				}
			}
			m[i] = mi
		}
		vd := make([]uint64, maxBits)
		for b := 0; b < maxBits; b++ {
			vd[b] = m[b] << (maxBits - 1 - uint(b))
		}
		s.v[d] = vd
	}
	return s
}

// NewScrambledSobol returns a Sobol generator whose output is XORed with a
// per-dimension random digital shift, giving an unbiased randomized QMC
// estimator while preserving low discrepancy.
func NewScrambledSobol(dim int, rng *stats.RNG) *Sobol {
	s := NewSobol(dim)
	for d := range s.shift {
		s.shift[d] = uint64(rng.Int63()) & ((1 << maxBits) - 1)
	}
	return s
}

// Dim returns the dimensionality of generated points.
func (s *Sobol) Dim() int { return s.dim }

// Next returns the next point of the sequence in [0,1)^dim.
func (s *Sobol) Next() []float64 {
	s.count++
	// Gray-code: flip the direction number of the lowest zero bit of count-1.
	c := uint(0)
	for n := s.count - 1; n&1 == 1; n >>= 1 {
		c++
	}
	if c >= maxBits {
		c = maxBits - 1
	}
	out := make([]float64, s.dim)
	for d := 0; d < s.dim; d++ {
		s.x[d] ^= s.v[d][c]
		out[d] = float64(s.x[d]^s.shift[d]) / float64(uint64(1)<<maxBits)
	}
	return out
}

// Sample returns the next n points as an n×dim slice.
func (s *Sobol) Sample(n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// NormalSample returns n quasi-random standard-normal vectors of the
// generator's dimension, produced by applying the inverse normal CDF to each
// coordinate.
func (s *Sobol) NormalSample(n int) [][]float64 {
	pts := s.Sample(n)
	for _, p := range pts {
		for j, u := range p {
			// Guard the open interval; Sobol can emit exactly 0.
			if u <= 0 {
				u = 0.5 / float64(uint64(1)<<32)
			}
			p[j] = stats.NormalQuantile(u)
		}
	}
	return pts
}

// Discrepancy2 computes the L2-star discrepancy of a point set in [0,1)^d
// using Warnock's formula. Used by tests to check the sequence is more
// uniform than pseudo-random points.
func Discrepancy2(pts [][]float64) float64 {
	n := len(pts)
	if n == 0 {
		return 0
	}
	d := len(pts[0])
	term1 := math.Pow(3, -float64(d))
	var term2 float64
	for _, p := range pts {
		prod := 1.0
		for _, x := range p {
			prod *= (1 - x*x) / 2
		}
		term2 += prod
	}
	term2 *= 2.0 / float64(n)
	var term3 float64
	for _, p := range pts {
		for _, q := range pts {
			prod := 1.0
			for k := 0; k < d; k++ {
				prod *= 1 - math.Max(p[k], q[k])
			}
			term3 += prod
		}
	}
	term3 /= float64(n) * float64(n)
	v := term1 - term2 + term3
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}
