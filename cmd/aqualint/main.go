// Command aqualint machine-checks the repository's determinism and
// simulation-safety invariants (DESIGN.md §8). It is a self-contained
// static analyzer over go/ast + go/types with five checks:
//
//	wallclock   no time.Now/Since/Sleep/timers in simulation-driven code
//	globalrand  no math/rand outside internal/stats (seeded RNGs only)
//	maporder    no order-dependent work inside for-range over a map
//	droppederr  no silently discarded error results in non-test code
//	metricname  metric names and span kinds come from the telemetry catalog
//
// Suppress a finding on one line with an explained escape hatch:
//
//	//aqualint:allow <check> <reason>
//
// Usage:
//
//	aqualint [-checks wallclock,maporder] [packages]
//
// Packages default to ./... relative to the current directory. Exit code
// is 0 when clean, 1 when findings are reported, 2 on usage or load
// errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"aquatope/internal/lint"
)

func main() {
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all of "+strings.Join(lint.AnalyzerNames(), ",")+")")
	flag.Parse()

	cfg := lint.DefaultConfig()
	if *checks != "" {
		keep := make(map[string]bool)
		for _, name := range strings.Split(*checks, ",") {
			name = strings.TrimSpace(name)
			if _, ok := cfg.Checks[name]; !ok {
				fmt.Fprintf(os.Stderr, "aqualint: unknown check %q (known: %s)\n", name, strings.Join(lint.AnalyzerNames(), ", "))
				os.Exit(2)
			}
			keep[name] = true
		}
		for name := range cfg.Checks {
			if !keep[name] {
				delete(cfg.Checks, name)
			}
		}
	}

	pkgs, err := lint.Load(".", flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aqualint:", err)
		os.Exit(2)
	}
	findings := lint.Run(pkgs, cfg)
	cwd, _ := os.Getwd()
	for _, f := range findings {
		pos := f.Pos
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				pos.Filename = rel
			}
		}
		fmt.Printf("%s: [%s] %s\n", pos, f.Check, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "aqualint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
