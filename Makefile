GO ?= go

.PHONY: verify build vet fmtcheck test bench

# Tier-1 gate: build everything, vet, check formatting, and run the full
# test suite with the race detector. CI and pre-commit both run this target.
# The race detector is ~10x slower than a plain run and the experiment
# harnesses are end-to-end simulations, so the suite needs more than go
# test's default 10-minute budget on small machines.
verify: build vet fmtcheck
	$(GO) test -race -timeout 30m ./...

fmtcheck:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...
