package faas

import (
	"math"
	"testing"

	"aquatope/internal/sim"
	"aquatope/internal/stats"
)

// testModel is a deterministic PerfModel for exact assertions.
type testModel struct {
	init float64
	exec float64
	cold float64 // cold execution multiplier
}

func (m *testModel) InitTime(cfg ResourceConfig, rng *stats.RNG) float64 { return m.init }
func (m *testModel) ExecTime(cfg ResourceConfig, cold bool, inputSize float64, rng *stats.RNG) float64 {
	t := m.exec / cfg.CPU
	if cold && m.cold > 0 {
		t *= m.cold
	}
	return t
}
func (m *testModel) BaseMemoryMB() float64 { return 64 }

func newTestCluster(t *testing.T) (*sim.Engine, *Cluster) {
	t.Helper()
	eng := sim.NewEngine()
	cl := NewCluster(eng, Config{Invokers: 2, CPUPerInvoker: 8, MemoryPerInvokerMB: 4096, DefaultKeepAlive: 60, Seed: 1})
	return eng, cl
}

func register(t *testing.T, cl *Cluster, name string, model PerfModel, cfg ResourceConfig) {
	t.Helper()
	if err := cl.RegisterFunction(FunctionSpec{Name: name, Model: model}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestColdThenWarmStart(t *testing.T) {
	eng, cl := newTestCluster(t)
	register(t, cl, "f", &testModel{init: 2, exec: 1}, ResourceConfig{CPU: 1, MemoryMB: 128})
	var results []InvocationResult
	collect := func(r InvocationResult) { results = append(results, r) }

	if err := cl.Invoke("f", 1, collect); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(10) // cold run completes at t=3
	// Second invocation while the container is still within keep-alive.
	if err := cl.Invoke("f", 1, collect); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(20)

	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	if !results[0].ColdStart {
		t.Fatal("first invocation should be cold")
	}
	if results[0].Latency() != 3 { // 2 init + 1 exec
		t.Fatalf("cold latency = %v, want 3", results[0].Latency())
	}
	if results[1].ColdStart {
		t.Fatal("second invocation should be warm")
	}
	if results[1].Latency() != 1 {
		t.Fatalf("warm latency = %v, want 1", results[1].Latency())
	}
}

func TestColdExecutionPenalty(t *testing.T) {
	eng, cl := newTestCluster(t)
	register(t, cl, "f", &testModel{init: 1, exec: 1, cold: 2}, ResourceConfig{CPU: 1, MemoryMB: 128})
	var res []InvocationResult
	cl.Invoke("f", 1, func(r InvocationResult) { res = append(res, r) })
	eng.RunUntil(10)
	cl.Invoke("f", 1, func(r InvocationResult) { res = append(res, r) })
	eng.RunUntil(20)
	if res[0].ExecTime != 2 || res[1].ExecTime != 1 {
		t.Fatalf("exec times = %v, %v; want 2, 1", res[0].ExecTime, res[1].ExecTime)
	}
}

func TestPrewarmedContainerGivesWarmStart(t *testing.T) {
	eng, cl := newTestCluster(t)
	register(t, cl, "f", &testModel{init: 2, exec: 1}, ResourceConfig{CPU: 1, MemoryMB: 128})
	if err := cl.SetPrewarmTarget("f", 1); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(5) // container warmed at t=2
	var res *InvocationResult
	cl.Invoke("f", 1, func(r InvocationResult) { res = &r })
	eng.Run()
	if res == nil {
		t.Fatal("no result")
	}
	if res.ColdStart {
		t.Fatal("pre-warmed invocation should be warm")
	}
	if res.Latency() != 1 {
		t.Fatalf("latency = %v, want 1", res.Latency())
	}
}

func TestInvokeDuringWarmingCountsCold(t *testing.T) {
	eng, cl := newTestCluster(t)
	register(t, cl, "f", &testModel{init: 5, exec: 1}, ResourceConfig{CPU: 1, MemoryMB: 128})
	cl.SetPrewarmTarget("f", 1) // starts warming at t=0, ready t=5
	var res *InvocationResult
	eng.Schedule(1, func() {
		cl.Invoke("f", 1, func(r InvocationResult) { res = &r })
	})
	eng.Run()
	if res == nil || !res.ColdStart {
		t.Fatal("invocation that waits on warming container should count cold")
	}
	// Latency: waits 4s (until t=5), then 1s exec = 5 total from t=1.
	if math.Abs(res.Latency()-5) > 1e-9 {
		t.Fatalf("latency = %v, want 5", res.Latency())
	}
}

func TestConcurrencyLimitQueues(t *testing.T) {
	eng, cl := newTestCluster(t)
	register(t, cl, "f", &testModel{init: 0, exec: 1}, ResourceConfig{CPU: 1, MemoryMB: 128, Concurrency: 1})
	var done []float64
	for i := 0; i < 3; i++ {
		cl.Invoke("f", 1, func(r InvocationResult) { done = append(done, r.EndTime) })
	}
	eng.Run()
	if len(done) != 3 {
		t.Fatalf("completed %d, want 3", len(done))
	}
	// Serialized: completions at 1, 2, 3.
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(done[i]-want[i]) > 1e-9 {
			t.Fatalf("completions %v, want %v", done, want)
		}
	}
}

func TestKeepAliveTerminatesIdleContainers(t *testing.T) {
	eng, cl := newTestCluster(t)
	register(t, cl, "f", &testModel{init: 1, exec: 1}, ResourceConfig{CPU: 1, MemoryMB: 128})
	cl.SetKeepAlive("f", 10)
	cl.Invoke("f", 1, nil)
	eng.RunUntil(5)
	idle, _, _ := cl.WarmCount("f")
	if idle != 1 {
		t.Fatalf("idle = %d, want 1", idle)
	}
	eng.RunUntil(20) // keep-alive (10s after completion at t=2) expires at 12
	idle, _, _ = cl.WarmCount("f")
	if idle != 0 {
		t.Fatalf("idle after keep-alive = %d, want 0", idle)
	}
	if cl.Metrics().ContainersKilled() != 1 {
		t.Fatalf("killed = %d, want 1", cl.Metrics().ContainersKilled())
	}
}

func TestKeepAliveResetOnReuse(t *testing.T) {
	eng, cl := newTestCluster(t)
	register(t, cl, "f", &testModel{init: 1, exec: 1}, ResourceConfig{CPU: 1, MemoryMB: 128})
	cl.SetKeepAlive("f", 10)
	cl.Invoke("f", 1, nil)
	// Reuse at t=8 (completes t=9): keep-alive now runs to t=19.
	eng.Schedule(8, func() { cl.Invoke("f", 1, nil) })
	eng.RunUntil(15)
	idle, _, _ := cl.WarmCount("f")
	if idle != 1 {
		t.Fatalf("container should still be alive at t=15, idle=%d", idle)
	}
	eng.RunUntil(25)
	idle, _, _ = cl.WarmCount("f")
	if idle != 0 {
		t.Fatal("container should expire by t=25")
	}
}

func TestPrewarmTargetShrinks(t *testing.T) {
	eng, cl := newTestCluster(t)
	register(t, cl, "f", &testModel{init: 1, exec: 1}, ResourceConfig{CPU: 1, MemoryMB: 128})
	cl.SetPrewarmTarget("f", 4)
	eng.RunUntil(3)
	idle, warming, _ := cl.WarmCount("f")
	if idle+warming != 4 {
		t.Fatalf("alive = %d, want 4", idle+warming)
	}
	cl.SetPrewarmTarget("f", 1)
	idle, warming, _ = cl.WarmCount("f")
	if idle+warming != 1 {
		t.Fatalf("after shrink alive = %d, want 1", idle+warming)
	}
}

func TestMemoryCapacityEviction(t *testing.T) {
	eng := sim.NewEngine()
	// One invoker with room for exactly 2 containers of 512MB.
	cl := NewCluster(eng, Config{Invokers: 1, CPUPerInvoker: 8, MemoryPerInvokerMB: 1024, Seed: 2})
	register(t, cl, "a", &testModel{init: 1, exec: 1}, ResourceConfig{CPU: 1, MemoryMB: 512})
	register(t, cl, "b", &testModel{init: 1, exec: 1}, ResourceConfig{CPU: 1, MemoryMB: 512})
	register(t, cl, "c", &testModel{init: 1, exec: 1}, ResourceConfig{CPU: 1, MemoryMB: 512})
	cl.Invoke("a", 1, nil)
	cl.Invoke("b", 1, nil)
	eng.RunUntil(10) // both idle now
	// Third function must evict an idle container.
	var res *InvocationResult
	cl.Invoke("c", 1, func(r InvocationResult) { res = &r })
	eng.Run()
	if res == nil {
		t.Fatal("invocation of c never completed")
	}
	if cl.AliveMemoryMB() > 1024 {
		t.Fatalf("memory overcommitted: %v", cl.AliveMemoryMB())
	}
}

func TestCapacityExhaustionQueuesUntilFree(t *testing.T) {
	eng := sim.NewEngine()
	cl := NewCluster(eng, Config{Invokers: 1, CPUPerInvoker: 8, MemoryPerInvokerMB: 512, Seed: 3})
	register(t, cl, "a", &testModel{init: 1, exec: 5}, ResourceConfig{CPU: 1, MemoryMB: 512})
	register(t, cl, "b", &testModel{init: 1, exec: 1}, ResourceConfig{CPU: 1, MemoryMB: 512})
	var bDone *InvocationResult
	cl.Invoke("a", 1, nil) // holds all memory until t=6, then idles
	eng.RunUntil(2)
	cl.Invoke("b", 1, func(r InvocationResult) { bDone = &r })
	eng.RunUntil(3)
	if bDone != nil {
		t.Fatal("b should be blocked while a is busy")
	}
	eng.Run()
	if bDone == nil {
		t.Fatal("b never ran after capacity freed")
	}
}

func TestMetricsAccounting(t *testing.T) {
	eng, cl := newTestCluster(t)
	register(t, cl, "f", &testModel{init: 1, exec: 2}, ResourceConfig{CPU: 2, MemoryMB: 1024})
	cl.Invoke("f", 1, nil)
	eng.Run()
	m := cl.Metrics()
	if m.Invocations() != 1 || m.ColdStarts() != 1 {
		t.Fatalf("counts wrong: %+v", m)
	}
	// exec = 2/2 = 1s at CPU 2 → CPU time 2 core-s; mem 1GB × 1s = 1 GB-s.
	if math.Abs(m.CPUTime()-2) > 1e-9 {
		t.Fatalf("CPUTime = %v, want 2", m.CPUTime())
	}
	if math.Abs(m.MemTime()-1) > 1e-9 {
		t.Fatalf("MemTime = %v, want 1", m.MemTime())
	}
	cl.Flush()
	// Provisioned: container born t=0, flushed at end (t=2): 1GB × 2s.
	if m.ProvisionedMemTime() < 2-1e-9 {
		t.Fatalf("ProvisionedMemTime = %v, want >= 2", m.ProvisionedMemTime())
	}
}

func TestColdStartRate(t *testing.T) {
	m := NewMetrics()
	m.record(InvocationResult{ColdStart: true})
	m.record(InvocationResult{ColdStart: false})
	m.record(InvocationResult{ColdStart: false})
	m.record(InvocationResult{ColdStart: false})
	if r := m.ColdStartRate(); math.Abs(r-0.25) > 1e-12 {
		t.Fatalf("rate = %v, want 0.25", r)
	}
	m.Reset()
	if m.Invocations() != 0 || m.ColdStartRate() != 0 {
		t.Fatal("reset failed")
	}
}

func TestSetResourceConfigAffectsNewContainers(t *testing.T) {
	eng, cl := newTestCluster(t)
	register(t, cl, "f", &testModel{init: 0, exec: 4}, ResourceConfig{CPU: 1, MemoryMB: 128})
	var first *InvocationResult
	cl.Invoke("f", 1, func(r InvocationResult) { first = &r })
	eng.Run()
	if first.ExecTime != 4 {
		t.Fatalf("exec = %v, want 4", first.ExecTime)
	}
	// Double the CPU; the old container is killed by keep-alive expiry,
	// forcing a fresh one with the new config.
	cl.SetResourceConfig("f", ResourceConfig{CPU: 4, MemoryMB: 128})
	cl.SetKeepAlive("f", 0.001)
	eng.RunUntil(eng.Now() + 1)
	var second *InvocationResult
	cl.Invoke("f", 1, func(r InvocationResult) { second = &r })
	eng.Run()
	if second.ExecTime != 1 {
		t.Fatalf("exec after upgrade = %v, want 1", second.ExecTime)
	}
	if second.CPU != 4 {
		t.Fatalf("CPU recorded = %v", second.CPU)
	}
}

func TestUnknownFunctionErrors(t *testing.T) {
	_, cl := newTestCluster(t)
	if err := cl.Invoke("nope", 1, nil); err == nil {
		t.Fatal("expected error")
	}
	if err := cl.SetKeepAlive("nope", 1); err == nil {
		t.Fatal("expected error")
	}
	if err := cl.SetPrewarmTarget("nope", 1); err == nil {
		t.Fatal("expected error")
	}
	if err := cl.SetResourceConfig("nope", ResourceConfig{CPU: 1, MemoryMB: 1}); err == nil {
		t.Fatal("expected error")
	}
	if _, ok := cl.ResourceConfigOf("nope"); ok {
		t.Fatal("expected missing config")
	}
}

func TestDuplicateRegistrationErrors(t *testing.T) {
	_, cl := newTestCluster(t)
	register(t, cl, "f", &testModel{}, ResourceConfig{CPU: 1, MemoryMB: 1})
	if err := cl.RegisterFunction(FunctionSpec{Name: "f", Model: &testModel{}}, ResourceConfig{CPU: 1, MemoryMB: 1}); err == nil {
		t.Fatal("expected duplicate error")
	}
}

func TestResourceConfigValidate(t *testing.T) {
	bad := []ResourceConfig{
		{CPU: 0, MemoryMB: 128},
		{CPU: 1, MemoryMB: 0},
		{CPU: 1, MemoryMB: 128, Concurrency: -1},
	}
	for _, cfg := range bad {
		if cfg.Validate() == nil {
			t.Fatalf("config %+v should be invalid", cfg)
		}
	}
	if (ResourceConfig{CPU: 1, MemoryMB: 128}).Validate() != nil {
		t.Fatal("valid config rejected")
	}
}

func TestCPUContentionSlowsExecution(t *testing.T) {
	eng := sim.NewEngine()
	cl := NewCluster(eng, Config{Invokers: 1, CPUPerInvoker: 2, MemoryPerInvokerMB: 8192, Seed: 4})
	register(t, cl, "f", &testModel{init: 0, exec: 1}, ResourceConfig{CPU: 2, MemoryMB: 128})
	var ends []float64
	// Two invocations, each wanting 2 cores on a 2-core box: the second
	// overcommits and stretches.
	cl.Invoke("f", 1, func(r InvocationResult) { ends = append(ends, r.ExecTime) })
	cl.Invoke("f", 1, func(r InvocationResult) { ends = append(ends, r.ExecTime) })
	eng.Run()
	if len(ends) != 2 {
		t.Fatalf("completed %d", len(ends))
	}
	slower := math.Max(ends[0], ends[1])
	if slower <= 0.5 {
		t.Fatalf("contended execution should stretch, got %v", slower)
	}
}

func TestSyntheticModelShape(t *testing.T) {
	m := DefaultSyntheticModel()
	rng := stats.NewRNG(5)
	lo := ResourceConfig{CPU: 0.5, MemoryMB: 512}
	hi := ResourceConfig{CPU: 4, MemoryMB: 512}
	var tLo, tHi float64
	for i := 0; i < 200; i++ {
		tLo += m.ExecTime(lo, false, 1, rng)
		tHi += m.ExecTime(hi, false, 1, rng)
	}
	if tHi >= tLo {
		t.Fatal("more CPU should be faster")
	}
	// Memory knee.
	starved := ResourceConfig{CPU: 1, MemoryMB: 64}
	ample := ResourceConfig{CPU: 1, MemoryMB: 1024}
	var tSt, tAm float64
	for i := 0; i < 200; i++ {
		tSt += m.ExecTime(starved, false, 1, rng)
		tAm += m.ExecTime(ample, false, 1, rng)
	}
	if tSt <= tAm*2 {
		t.Fatal("memory starvation should hurt badly")
	}
	// Cold penalty.
	var tCold, tWarm float64
	for i := 0; i < 200; i++ {
		tCold += m.ExecTime(ample, true, 1, rng)
		tWarm += m.ExecTime(ample, false, 1, rng)
	}
	if tCold <= tWarm {
		t.Fatal("cold execution should be slower")
	}
	if m.BaseMemoryMB() != m.MemKneeMB {
		t.Fatal("BaseMemoryMB should be the knee")
	}
}

func TestFunctionsList(t *testing.T) {
	_, cl := newTestCluster(t)
	register(t, cl, "a", &testModel{}, ResourceConfig{CPU: 1, MemoryMB: 1})
	register(t, cl, "b", &testModel{}, ResourceConfig{CPU: 1, MemoryMB: 1})
	fns := cl.Functions()
	if len(fns) != 2 || fns[0] != "a" || fns[1] != "b" {
		t.Fatalf("Functions = %v", fns)
	}
}
