package gp_test

import (
	"fmt"

	"aquatope/internal/gp"
)

// ExampleGP shows basic GP regression: fit noisy samples of a line and
// query the posterior between them.
func ExampleGP() {
	g := gp.New(gp.NewMatern52(1), 0.01)
	X := [][]float64{{0}, {0.25}, {0.5}, {0.75}, {1}}
	y := []float64{0, 0.5, 1.0, 1.5, 2.0} // y = 2x
	if err := g.Fit(X, y); err != nil {
		panic(err)
	}
	mean, variance := g.Posterior([]float64{0.4})
	fmt.Printf("mean near 0.8: %v\n", mean > 0.6 && mean < 1.0)
	fmt.Printf("small variance inside data: %v\n", variance < 0.1)
	// Output:
	// mean near 0.8: true
	// small variance inside data: true
}

// ExampleGP_leaveOneOut demonstrates the diagnostic model used for
// anomaly detection: hold out one observation and compare it against the
// prediction of the remaining ones.
func ExampleGP_leaveOneOut() {
	g := gp.New(gp.NewMatern52(1), 0.01)
	X := [][]float64{{0}, {0.2}, {0.4}, {0.6}, {0.8}, {1}}
	y := []float64{0, 2, 4, 6, 8, 42} // last point corrupted
	if err := g.Fit(X, y); err != nil {
		panic(err)
	}
	mean, _, err := g.LeaveOneOut(5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("held-out prediction far below 42: %v\n", mean < 20)
	// Output:
	// held-out prediction far below 42: true
}
