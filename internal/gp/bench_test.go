package gp

import (
	"testing"

	"aquatope/internal/stats"
)

// benchWindow is the steady-state sliding-window size the BO engine runs
// at; the benchmarks below pin the incremental-vs-cold cost gap there.
const benchWindow = 64

func benchPoints(n, dim int, seed int64) (X [][]float64, y []float64) {
	rng := stats.NewRNG(seed)
	X = make([][]float64, n)
	y = make([]float64, n)
	for i := range X {
		x := make([]float64, dim)
		for j := range x {
			x[j] = rng.Float64()
		}
		X[i] = x
		y[i] = rng.Float64()*2 - 1
	}
	return X, y
}

func newSteadyState(b testing.TB) (*GP, [][]float64, []float64) {
	X, y := benchPoints(benchWindow+1024, 3, 7)
	g := New(NewMatern52(3), 1e-4)
	g.SetWindow(benchWindow)
	if err := g.Fit(X[:benchWindow], y[:benchWindow]); err != nil {
		b.Fatalf("fit: %v", err)
	}
	return g, X, y
}

// BenchmarkObserveSteadyState measures one evict+append cycle of a full
// sliding window via the incremental rank-1 path.
func BenchmarkObserveSteadyState(b *testing.B) {
	g, X, y := newSteadyState(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := benchWindow + i%1024
		if err := g.Observe(X[p], y[p]); err != nil {
			b.Fatalf("observe: %v", err)
		}
	}
}

// BenchmarkFitWindow measures the pre-redesign steady state: a cold refit
// of the whole window on every new observation.
func BenchmarkFitWindow(b *testing.B) {
	X, y := benchPoints(benchWindow+1024, 3, 7)
	g := New(NewMatern52(3), 1e-4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := 1 + i%1024
		if err := g.Fit(X[p:p+benchWindow], y[p:p+benchWindow]); err != nil {
			b.Fatalf("fit: %v", err)
		}
	}
}

// TestObserveCheaperThanFit pins the redesign's economics: a steady-state
// incremental Observe must allocate well below half of what a cold
// window refit does. Allocation counts are deterministic, so this guards
// the O(n²)-vs-O(n³) gap without a flaky wall-clock assertion (the time
// ratio is tracked by the two benchmarks above).
func TestObserveCheaperThanFit(t *testing.T) {
	g, X, y := newSteadyState(t)
	i := 0
	obs := testing.AllocsPerRun(200, func() {
		p := benchWindow + i%1024
		i++
		if err := g.Observe(X[p], y[p]); err != nil {
			t.Fatalf("observe: %v", err)
		}
	})

	cold := New(NewMatern52(3), 1e-4)
	j := 0
	fit := testing.AllocsPerRun(200, func() {
		p := 1 + j%1024
		j++
		if err := cold.Fit(X[p:p+benchWindow], y[p:p+benchWindow]); err != nil {
			t.Fatalf("fit: %v", err)
		}
	})

	if obs >= fit/2 {
		t.Fatalf("steady-state Observe allocates %.0f objects vs %.0f for a cold window refit; want < half", obs, fit)
	}
}
