package faas

import (
	"testing"
	"testing/quick"

	"aquatope/internal/sim"
	"aquatope/internal/stats"
)

// TestPropertyMemoryNeverOvercommitted drives random invocation/pre-warm
// schedules and checks the cluster never allocates more container memory
// than its invokers hold.
func TestPropertyMemoryNeverOvercommitted(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		eng := sim.NewEngine()
		cl := NewCluster(eng, Config{Invokers: 2, CPUPerInvoker: 8, MemoryPerInvokerMB: 2048, Seed: seed})
		rng := stats.NewRNG(seed)
		names := []string{"a", "b", "c"}
		for _, n := range names {
			m := DefaultSyntheticModel()
			m.BaseExecSec = 0.2 + rng.Float64()
			cl.RegisterFunction(FunctionSpec{Name: n, Model: m},
				ResourceConfig{CPU: 0.5 + rng.Float64(), MemoryMB: 256 + 256*float64(rng.Intn(4))})
		}
		ok := true
		check := func() {
			total := 0.0
			for _, iv := range cl.Invokers() {
				if iv.MemoryInUseMB() > iv.MemoryCapacityMB+1e-9 {
					ok = false
				}
				total += iv.MemoryInUseMB()
			}
			if cl.AliveMemoryMB() != total {
				ok = false
			}
		}
		for i, op := range ops {
			at := float64(i) * 3
			fn := names[int(op)%len(names)]
			switch (op / 16) % 3 {
			case 0:
				eng.Schedule(at, func() { cl.Invoke(fn, 1, nil); check() })
			case 1:
				n := int(op) % 8
				eng.Schedule(at, func() { cl.SetPrewarmTarget(fn, n); check() })
			default:
				ka := float64(op%120) + 1
				eng.Schedule(at, func() { cl.SetKeepAlive(fn, ka); check() })
			}
		}
		eng.RunUntil(float64(len(ops))*3 + 600)
		check()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyInvocationsAlwaysComplete checks no invocation is lost under
// random churn: every Invoke eventually produces a result.
func TestPropertyInvocationsAlwaysComplete(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		eng := sim.NewEngine()
		cl := NewCluster(eng, Config{Invokers: 1, CPUPerInvoker: 4, MemoryPerInvokerMB: 1024, Seed: seed})
		m := DefaultSyntheticModel()
		m.BaseExecSec = 0.3
		cl.RegisterFunction(FunctionSpec{Name: "f", Model: m},
			ResourceConfig{CPU: 1, MemoryMB: 256, Concurrency: 2})
		rng := stats.NewRNG(seed)
		submitted, completed := 0, 0
		n := int(nOps)%40 + 1
		for i := 0; i < n; i++ {
			at := rng.Uniform(0, 120)
			eng.Schedule(at, func() {
				cl.Invoke("f", 1, func(InvocationResult) { completed++ })
				submitted++
			})
		}
		// Random pool churn while invocations run.
		for i := 0; i < 10; i++ {
			at := rng.Uniform(0, 120)
			tgt := rng.Intn(4)
			eng.Schedule(at, func() { cl.SetPrewarmTarget("f", tgt) })
		}
		eng.RunUntil(1e6)
		return submitted == n && completed == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyColdWarmPartition checks cold + warm always equals total
// invocations.
func TestPropertyColdWarmPartition(t *testing.T) {
	f := func(seed int64) bool {
		eng := sim.NewEngine()
		cl := NewCluster(eng, Config{Seed: seed})
		m := DefaultSyntheticModel()
		cl.RegisterFunction(FunctionSpec{Name: "f", Model: m}, ResourceConfig{CPU: 1, MemoryMB: 256})
		rng := stats.NewRNG(seed)
		n := 30
		for i := 0; i < n; i++ {
			at := rng.Uniform(0, 3000)
			eng.Schedule(at, func() { cl.Invoke("f", 1, nil) })
		}
		eng.RunUntil(1e6)
		met := cl.Metrics()
		return met.ColdStarts()+met.WarmStarts() == n && met.Invocations() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyProvisionedMemCoversBusyTime: provisioned memory-time must
// always be at least the busy memory-time (containers live at least as
// long as they execute).
func TestPropertyProvisionedMemCoversBusyTime(t *testing.T) {
	f := func(seed int64) bool {
		eng := sim.NewEngine()
		cl := NewCluster(eng, Config{Seed: seed, DefaultKeepAlive: 30})
		m := DefaultSyntheticModel()
		m.JitterStd = 0
		cl.RegisterFunction(FunctionSpec{Name: "f", Model: m}, ResourceConfig{CPU: 1, MemoryMB: 1024})
		rng := stats.NewRNG(seed)
		for i := 0; i < 20; i++ {
			at := rng.Uniform(0, 600)
			eng.Schedule(at, func() { cl.Invoke("f", 1, nil) })
		}
		eng.RunUntil(1e6)
		cl.Flush()
		met := cl.Metrics()
		return met.ProvisionedMemTime() >= met.MemTime()-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
