package telemetry

import (
	"math"
	"sync"
)

// Metric naming convention (see DESIGN.md §6): dot-separated
// "<subsystem>.<metric>[_<unit>][.<entity>]", e.g. "faas.cold_starts",
// "faas.invocation.latency_s", "workflow.latency_s.mlpipeline".

// Registry holds named counters, gauges and histograms. Handles are created
// on first use and cached by callers; all lookup methods are nil-safe and
// return nil handles on a nil registry, whose update methods are no-ops —
// so disabled telemetry costs one branch per update.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram with the default log-spaced latency
// buckets, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramBuckets(name, DefaultBucketLo, DefaultBucketGrowth, DefaultBucketCount)
}

// HistogramBuckets returns the named histogram, creating it with the given
// bucket layout if needed (an existing histogram keeps its layout).
func (r *Registry) HistogramBuckets(name string, lo, growth float64, n int) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(lo, growth, n)
		r.histograms[name] = h
	}
	return h
}

// ---------------------------------------------------------------------------

// Counter is a monotonically accumulating metric.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Add accumulates d. Nil-safe.
func (c *Counter) Add(d float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.v += d
	c.mu.Unlock()
}

// Inc adds one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the accumulated total (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Reset zeroes the counter. Nil-safe.
func (c *Counter) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.v = 0
	c.mu.Unlock()
}

// Gauge is a last-value metric.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set stores v. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Value returns the last stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Reset zeroes the gauge. Nil-safe.
func (g *Gauge) Reset() {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = 0
	g.mu.Unlock()
}

// ---------------------------------------------------------------------------

// Default histogram layout: 96 log-spaced buckets from 1 ms growing by
// 2^(1/4) (~19%) per bucket, covering up to ~16,777 s — wide enough for any
// latency the simulator produces while keeping percentile error under the
// bucket growth factor.
const (
	DefaultBucketLo    = 1e-3
	DefaultBucketCount = 96
)

// DefaultBucketGrowth is the default per-bucket geometric growth factor.
var DefaultBucketGrowth = math.Pow(2, 0.25)

// Histogram is a fixed-bucket streaming histogram over log-spaced buckets:
// bucket 0 holds values <= edges[0], bucket i values in
// (edges[i-1], edges[i]], and one overflow bucket everything beyond the
// last edge. Percentiles are extracted by linear interpolation inside the
// covering bucket, so relative error is bounded by the growth factor.
type Histogram struct {
	mu       sync.Mutex
	edges    []float64 // inclusive upper bounds of the finite buckets
	logG     float64
	counts   []uint64 // len(edges)+1; last entry is the overflow bucket
	count    uint64
	sum      float64
	min, max float64
}

// NewHistogram returns a histogram with n log-spaced buckets starting at
// upper edge lo and growing geometrically by growth per bucket.
func NewHistogram(lo, growth float64, n int) *Histogram {
	if lo <= 0 || growth <= 1 || n < 1 {
		panic("telemetry: invalid histogram bucket layout")
	}
	edges := make([]float64, n)
	e := lo
	for i := range edges {
		edges[i] = e
		e *= growth
	}
	return &Histogram{
		edges:  edges,
		logG:   math.Log(growth),
		counts: make([]uint64, n+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Observe records one value. NaN values are dropped. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	h.counts[h.bucketIndex(v)]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// bucketIndex maps a value to its bucket. Caller holds the lock.
func (h *Histogram) bucketIndex(v float64) int {
	n := len(h.edges)
	if v <= h.edges[0] {
		return 0
	}
	if v > h.edges[n-1] {
		return n // overflow
	}
	i := int(math.Log(v/h.edges[0]) / h.logG)
	if i < 0 {
		i = 0
	}
	if i > n-1 {
		i = n - 1
	}
	// Fix float fuzz from the log-based index.
	for i < n-1 && h.edges[i] < v {
		i++
	}
	for i > 0 && h.edges[i-1] >= v {
		i--
	}
	return i
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the arithmetic mean (0 when empty or nil).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns the q-th quantile (0 <= q <= 1) by linear interpolation
// inside the covering bucket, clamped to the observed [min, max]. It
// returns 0 when the histogram is empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := q * float64(h.count)
	if target < 1 {
		target = 1
	}
	var cum float64
	for b, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			loE, hiE := h.bucketBounds(b)
			frac := (target - cum) / float64(c)
			v := loE + frac*(hiE-loE)
			return math.Min(math.Max(v, h.min), h.max)
		}
		cum = next
	}
	return h.max
}

// bucketBounds returns bucket b's interpolation interval, tightened by the
// observed min/max so sparse tails do not smear estimates across the whole
// bucket. Caller holds the lock.
func (h *Histogram) bucketBounds(b int) (lo, hi float64) {
	n := len(h.edges)
	switch {
	case b == 0:
		lo, hi = math.Min(h.min, h.edges[0]), h.edges[0]
	case b == n:
		lo, hi = h.edges[n-1], math.Max(h.max, h.edges[n-1])
	default:
		lo, hi = h.edges[b-1], h.edges[b]
	}
	if h.min > lo {
		lo = math.Min(h.min, hi)
	}
	if h.max < hi {
		hi = math.Max(h.max, lo)
	}
	return lo, hi
}

// Reset clears all observations, keeping the bucket layout. Nil-safe.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	h.mu.Lock()
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.count = 0
	h.sum = 0
	h.min = math.Inf(1)
	h.max = math.Inf(-1)
	h.mu.Unlock()
}
