package fixture

import "sort"

// recorder stands in for a telemetry sink; the test configures this
// package as the maporder sink path.
type recorder struct{}

func (recorder) Observe(float64) {}

func (recorder) Value() float64 { return 0 }

func maporderFloatAccumulation(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want maporder
	}
	var prod float64 = 1
	for _, v := range m {
		prod = prod * v // want maporder
	}
	return sum + prod
}

func maporderAppendEscape(m map[string]float64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want maporder
	}
	return keys
}

func maporderSink(m map[string]float64) {
	var rec recorder
	for _, v := range m {
		rec.Observe(v) // want maporder
	}
}

func maporderSortedAppend(m map[string]float64) []string {
	// The canonical fix: collect keys, then sort. Deterministic.
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func maporderNegatives(m map[string]float64) (int, map[string]float64) {
	// Integer accumulation is commutative and associative: order-safe.
	n := 0
	for range m {
		n++
		n += 2
	}
	// Per-key updates touch a distinct cell each iteration.
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v
		out[k] += 1
	}
	// Reads in expression position are not emission.
	var rec recorder
	for k := range m {
		out[k] = rec.Value()
	}
	// A slice declared inside the loop body never sees two iterations.
	for k, v := range m {
		pair := []float64{}
		pair = append(pair, v)
		out[k] = pair[0]
	}
	return n, out
}

func maporderAllowed(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //aqualint:allow maporder fixture demonstrating the escape hatch
	}
	return sum
}
