package workflow

import (
	"testing"
	"testing/quick"

	"aquatope/internal/faas"
	"aquatope/internal/sim"
	"aquatope/internal/stats"
	"aquatope/internal/telemetry"
)

// faultCluster builds a small cluster with a randomized fault schedule:
// probabilistic init failures and exec kills over a window, plus an invoker
// crash/recover pair, all derived from seed.
func faultCluster(seed int64, rng *stats.RNG) (*sim.Engine, *faas.Cluster) {
	eng := sim.NewEngine()
	cl := faas.NewCluster(eng, faas.Config{Invokers: 2, CPUPerInvoker: 64, MemoryPerInvokerMB: 1 << 20, Seed: seed})
	// Fault-rates window of random intensity and placement.
	start := rng.Uniform(0, 5)
	cl.Engine().Schedule(start, func() {
		cl.SetFaultRates(faas.FaultRates{
			InitFailure: rng.Float64() * 0.5,
			ExecKill:    rng.Float64() * 0.5,
		})
	})
	cl.Engine().Schedule(start+rng.Uniform(5, 30), func() {
		cl.SetFaultRates(faas.FaultRates{})
	})
	if rng.Bernoulli(0.5) {
		crashAt := rng.Uniform(0, 10)
		inv := rng.Intn(2)
		cl.Engine().Schedule(crashAt, func() { cl.CrashInvoker(inv) })
		cl.Engine().Schedule(crashAt+rng.Uniform(1, 10), func() { cl.RecoverInvoker(inv) })
	}
	return eng, cl
}

// TestPropertyResilienceTerminatesAndOrders: under any injected fault
// schedule and retry policy, every workflow terminates (done fires exactly
// once, the engine fully drains), retries never violate DAG ordering (no
// recorded stage invocation is submitted before every dependency's settling
// invocation ended), and successful workflows record one result per stage
// instance.
func TestPropertyResilienceTerminatesAndOrders(t *testing.T) {
	f := func(seed int64, sizeRaw, polRaw uint8) bool {
		nStages := int(sizeRaw)%6 + 1
		rng := stats.NewRNG(seed)
		eng, cl := faultCluster(seed, rng)
		m := faas.DefaultSyntheticModel()
		m.BaseExecSec = 0.2 + rng.Float64()
		if err := cl.RegisterFunction(faas.FunctionSpec{Name: "f", Model: m}, faas.ResourceConfig{CPU: 1, MemoryMB: 512}); err != nil {
			return false
		}
		d := randomDAG(nStages, rng)
		ex := NewExecutor(cl)
		ex.Seed = seed
		switch int(polRaw) % 3 {
		case 1:
			p := DefaultRetryPolicy()
			p.Timeout = 5 + rng.Float64()*10
			ex.Policy = &p
		case 2:
			p := DefaultRetryPolicy()
			p.MaxAttempts = 2 + rng.Intn(3)
			p.HedgeDelay = 0.5 + rng.Float64()*2
			ex.Policy = &p
		}
		calls := 0
		var res *Result
		if err := ex.Execute(d, 1, nil, func(r Result) { calls++; res = &r }); err != nil {
			return false
		}
		eng.Run()
		if calls != 1 || res == nil {
			t.Logf("seed %d: done fired %d times", seed, calls)
			return false
		}
		if eng.Pending() != 0 {
			t.Logf("seed %d: %d events stuck after drain", seed, eng.Pending())
			return false
		}
		// A clean workflow records one settling result per stage instance;
		// a failed one may have skipped stages but must count them.
		total := 0
		for _, rs := range res.PerStage {
			total += len(rs)
		}
		if total != res.Invocations {
			t.Logf("seed %d: %d recorded vs %d invocations", seed, total, res.Invocations)
			return false
		}
		if !res.Failed && res.SkippedStages != 0 {
			t.Logf("seed %d: skipped stages without failure", seed)
			return false
		}
		// DAG ordering: every recorded invocation of a stage was submitted
		// no earlier than the end of each dependency's settling invocations.
		for _, st := range d.Stages() {
			mine := res.PerStage[st.Name]
			if len(mine) == 0 {
				continue // skipped stage
			}
			var minSubmit float64
			for i, ir := range mine {
				if i == 0 || ir.SubmitTime < minSubmit {
					minSubmit = ir.SubmitTime
				}
			}
			for _, dep := range st.Deps {
				for _, ir := range res.PerStage[dep] {
					if ir.EndTime > minSubmit+1e-9 {
						t.Logf("seed %d: stage %s submitted at %v before dep %s ended at %v",
							seed, st.Name, minSubmit, dep, ir.EndTime)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestRetryRecoversInitFailure: a deterministic check that the retry layer
// converts a transient fault into a successful workflow and emits an
// invocation.retry point.
func TestRetryRecoversInitFailure(t *testing.T) {
	eng := sim.NewEngine()
	cl := faas.NewCluster(eng, faas.Config{Invokers: 2, CPUPerInvoker: 8, MemoryPerInvokerMB: 4096, Seed: 1})
	col := telemetry.NewCollector()
	cl.SetTracer(col)
	m := faas.DefaultSyntheticModel()
	if err := cl.RegisterFunction(faas.FunctionSpec{Name: "f", Model: m}, faas.ResourceConfig{CPU: 1, MemoryMB: 512}); err != nil {
		t.Fatal(err)
	}
	// Every init fails until t=1 (covering the first attempt), then clears.
	cl.SetFaultRates(faas.FaultRates{InitFailure: 1})
	eng.Schedule(1, func() { cl.SetFaultRates(faas.FaultRates{}) })
	p := DefaultRetryPolicy()
	ex := NewExecutor(cl)
	ex.Policy = &p
	ex.Seed = 7
	var res *Result
	if err := ex.Execute(Chain("c", "f"), 1, nil, func(r Result) { res = &r }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if res == nil {
		t.Fatal("workflow never completed")
	}
	if res.Failed {
		t.Fatalf("workflow failed despite retries: %+v", *res)
	}
	if res.Retries == 0 {
		t.Fatal("no retries recorded")
	}
	retryPoints := 0
	for _, s := range col.Spans() {
		if s.Kind == telemetry.KindRetry {
			retryPoints++
		}
	}
	if retryPoints != res.Retries {
		t.Fatalf("retry points %d != recorded retries %d", retryPoints, res.Retries)
	}
}

// TestFailFastSkipsDownstream: when attempts exhaust, dependent stages are
// skipped and the workflow reports Failed with the skip count.
func TestFailFastSkipsDownstream(t *testing.T) {
	eng := sim.NewEngine()
	cl := faas.NewCluster(eng, faas.Config{Invokers: 2, CPUPerInvoker: 8, MemoryPerInvokerMB: 4096, Seed: 1})
	m := faas.DefaultSyntheticModel()
	if err := cl.RegisterFunction(faas.FunctionSpec{Name: "f", Model: m}, faas.ResourceConfig{CPU: 1, MemoryMB: 512}); err != nil {
		t.Fatal(err)
	}
	cl.SetFaultRates(faas.FaultRates{InitFailure: 1}) // permanent: retries cannot help
	p := RetryPolicy{MaxAttempts: 2, InitialBackoff: 0.1, BackoffFactor: 2}
	ex := NewExecutor(cl)
	ex.Policy = &p
	var res *Result
	if err := ex.Execute(Chain("c", "f", "f", "f"), 1, nil, func(r Result) { res = &r }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if res == nil {
		t.Fatal("workflow never completed")
	}
	if !res.Failed || res.FailedInvocations != 1 {
		t.Fatalf("want one terminal failure, got %+v", *res)
	}
	if res.SkippedStages != 2 {
		t.Fatalf("skipped %d stages, want 2", res.SkippedStages)
	}
	if res.Retries != 1 {
		t.Fatalf("retries = %d, want 1", res.Retries)
	}
	if eng.Pending() != 0 {
		t.Fatalf("%d events stuck", eng.Pending())
	}
}
