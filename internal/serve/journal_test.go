package serve

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stream.jsonl")
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{{T: 0.5, App: "a"}, {T: 1.25, App: "b"}, {T: 1.25, App: "a"}}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	sha := j.PrefixSHA256()
	off := j.Offset()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	got, data, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) || int64(len(data)) != off {
		t.Fatalf("loaded %d records / %d bytes, want %d / %d", len(got), len(data), len(recs), off)
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}

	// Re-seeding via append must continue the same hash stream.
	j2, err := OpenJournalAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Count() != len(recs) || j2.Offset() != off {
		t.Fatalf("append reopen: count %d offset %d, want %d %d", j2.Count(), j2.Offset(), len(recs), off)
	}
	if !bytes.Equal(j2.PrefixSHA256(), sha) {
		t.Fatal("append reopen: hash stream diverged")
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stream.jsonl")
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{T: 1, App: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	durable := j.Offset()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a partial line without newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":2,"app":"tr`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, data, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || int64(len(data)) != durable {
		t.Fatalf("torn tail not truncated: %d records, %d bytes", len(recs), len(data))
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != durable {
		t.Fatalf("file not physically truncated: %d bytes, want %d", fi.Size(), durable)
	}
}

// TestStoppedRunFinalCheckpointRestores covers the SIGINT path: a stop
// mid-stream flushes a mid-interval final checkpoint; restoring from it
// verifies at journal exhaustion and the resumed run converges to the
// uninterrupted reference byte for byte.
func TestStoppedRunFinalCheckpointRestores(t *testing.T) {
	recs := fixtureStream(t, 20, 7)

	refOpts := fixtureOpts(t, t.TempDir(), false)
	ref, err := New(refOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(sourceOf(t, recs)); err != nil {
		t.Fatal(err)
	}
	wantSpans, wantMetrics := dumps(t, refOpts)

	// Stop after a prefix of the stream: drive consume directly with a
	// truncated source — byte-equivalent to a signal landing between two
	// records — then flush the final checkpoint like Run's stop path.
	cut := len(recs) / 3
	dir := t.TempDir()
	stopOpts := fixtureOpts(t, dir, false)
	s, err := New(stopOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.consume(sourceOf(t, recs[:cut])); err != nil {
		t.Fatal(err)
	}
	if err := s.finalStop(); err != nil {
		t.Fatal(err)
	}
	if s.Ingested() != cut {
		t.Fatalf("stopped run ingested %d, want %d", s.Ingested(), cut)
	}

	resumeOpts := fixtureOpts(t, dir, false)
	r, err := Restore(resumeOpts, filepath.Join(dir, "checkpoint-final.aqcp"))
	if err != nil {
		t.Fatalf("restore from final checkpoint: %v", err)
	}
	if r.Ingested() != cut {
		t.Fatalf("restored run replayed %d records, want %d", r.Ingested(), cut)
	}
	src, err := r.ResumeSource(streamReader(t, recs))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(src); err != nil {
		t.Fatal(err)
	}
	gotSpans, gotMetrics := dumps(t, resumeOpts)
	if !bytes.Equal(gotSpans, wantSpans) {
		t.Error("span dump diverged after stop+restore")
	}
	if !bytes.Equal(gotMetrics, wantMetrics) {
		t.Error("metric dump diverged after stop+restore")
	}
}

// TestRequestStopReturnsErrStopped wires the whole stop path through Run.
func TestRequestStopReturnsErrStopped(t *testing.T) {
	dir := t.TempDir()
	opts := fixtureOpts(t, dir, false)
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	s.RequestStop()
	recs := fixtureStream(t, 20, 7)
	if err := s.Run(sourceOf(t, recs)); !errors.Is(err, ErrStopped) {
		t.Fatalf("want ErrStopped, got %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "checkpoint-final.aqcp")); err != nil {
		t.Fatalf("final checkpoint missing after stop: %v", err)
	}
}
