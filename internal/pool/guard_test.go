package pool

import (
	"testing"

	"aquatope/internal/faas"
	"aquatope/internal/sim"
	"aquatope/internal/telemetry"
)

// scriptPolicy returns canned decisions, letting tests drive the guard's
// uncertainty trigger without training a model.
type scriptPolicy struct {
	dec Decision
}

func (p *scriptPolicy) Name() string                   { return "script" }
func (p *scriptPolicy) Fit(FitData)                    {}
func (p *scriptPolicy) Decide([]float64, int) Decision { return p.dec }

func guardCluster(t *testing.T, cfg faas.Config) (*sim.Engine, *faas.Cluster, *telemetry.Collector) {
	t.Helper()
	eng := sim.NewEngine()
	cl := faas.NewCluster(eng, cfg)
	col := telemetry.NewCollector()
	cl.SetTracer(col)
	m := faas.DefaultSyntheticModel()
	m.BaseExecSec = 1
	if err := cl.RegisterFunction(faas.FunctionSpec{Name: "f", Model: m},
		faas.ResourceConfig{CPU: 1, MemoryMB: 512, Concurrency: 1}); err != nil {
		t.Fatal(err)
	}
	return eng, cl, col
}

// modePoints extracts the pool.mode transition points in emission order.
func modePoints(col *telemetry.Collector) []telemetry.Span {
	var out []telemetry.Span
	for _, s := range col.Spans() {
		if s.Kind == telemetry.KindPoolMode {
			out = append(out, s)
		}
	}
	return out
}

// TestGuardTripsOnSheds: heavy admission sheds within one adjustment
// interval trip degraded mode; clean intervals recover it. Both transitions
// emit pool.mode points and degraded decisions use the recent-peak target.
func TestGuardTripsOnSheds(t *testing.T) {
	eng, cl, col := guardCluster(t, faas.Config{
		Invokers: 1, CPUPerInvoker: 1, MemoryPerInvokerMB: 4096, Seed: 1,
		QueueLimit: 1,
	})
	mgr := NewManager(cl)
	mgr.Guard = &Guard{ShedThreshold: 3, RecoverIntervals: 2, PeakWindowMin: 5}
	pol := &scriptPolicy{dec: Decision{Target: 7, KeepAlive: 60}}
	mgr.Manage("f", pol, 0)
	mgr.Start()

	// Overload the single slot during the first interval: one runs, one
	// queues, the rest shed (queue limit 1, reject-new).
	for i := 0; i < 8; i++ {
		at := 5 + float64(i)*0.25
		eng.Schedule(at, func() { _ = cl.Invoke("f", 1, nil) })
	}
	eng.RunUntil(61)
	if !mgr.Degraded() {
		t.Fatalf("guard did not trip: sheds=%d", cl.Metrics().ShedInvocations())
	}
	pts := modePoints(col)
	if len(pts) != 1 || pts[0].Fields["mode"] != 1 || pts[0].Fields["trigger"] != 1 {
		t.Fatalf("want one mode=1 trigger=1 point, got %+v", pts)
	}
	// The degraded decision must fall back to the trailing-peak target, not
	// the policy's 7.
	var last telemetry.Span
	for _, s := range col.Spans() {
		if s.Kind == telemetry.KindPoolDecision {
			last = s
		}
	}
	if last.Fields["degraded"] != 1 {
		t.Fatalf("degraded decision not flagged: %+v", last.Fields)
	}
	if got := int(last.Fields["target"]); got == 7 {
		t.Fatalf("degraded tick still applied the model target %d", got)
	}

	// No further sheds: after RecoverIntervals clean ticks the guard
	// restores model-driven mode with a mode=0 point.
	eng.RunUntil(61 + 3*60)
	if mgr.Degraded() {
		t.Fatal("guard did not recover after clean intervals")
	}
	pts = modePoints(col)
	if len(pts) != 2 || pts[1].Fields["mode"] != 0 {
		t.Fatalf("want a recovery mode=0 point, got %+v", pts)
	}
	// Post-recovery decisions apply the model target again.
	for _, s := range col.Spans() {
		if s.Kind == telemetry.KindPoolDecision {
			last = s
		}
	}
	if int(last.Fields["target"]) != 7 || last.Fields["degraded"] == 1 {
		t.Fatalf("recovered tick should re-apply model target: %+v", last.Fields)
	}
}

// TestGuardTripsOnUncertainty: a decision whose headroom blows past the
// calibration bound trips degraded mode even with zero sheds.
func TestGuardTripsOnUncertainty(t *testing.T) {
	eng, cl, col := guardCluster(t, faas.Config{
		Invokers: 1, CPUPerInvoker: 4, MemoryPerInvokerMB: 4096, Seed: 1,
	})
	mgr := NewManager(cl)
	mgr.Guard = &Guard{UncertaintyFrac: 1.0}
	// Headroom 9 against predicted 2 blows the 1.0×max(1,predicted) bound.
	pol := &scriptPolicy{dec: Decision{Target: 11, Predicted: 2, Headroom: 9}}
	mgr.Manage("f", pol, 0)
	mgr.Start()
	eng.RunUntil(61)
	if !mgr.Degraded() {
		t.Fatal("guard did not trip on uncertainty")
	}
	pts := modePoints(col)
	if len(pts) != 1 || pts[0].Fields["trigger"] != 2 {
		t.Fatalf("want trigger=2 point, got %+v", pts)
	}
}

// TestGuardNilIsInert: without a guard, decisions flow through unchanged
// and no pool.mode points appear (byte-compat with pre-guard builds).
func TestGuardNilIsInert(t *testing.T) {
	eng, cl, col := guardCluster(t, faas.Config{
		Invokers: 1, CPUPerInvoker: 4, MemoryPerInvokerMB: 4096, Seed: 1,
	})
	mgr := NewManager(cl)
	pol := &scriptPolicy{dec: Decision{Target: 3, Predicted: 1, Headroom: 50}}
	mgr.Manage("f", pol, 0)
	mgr.Start()
	eng.RunUntil(61)
	if mgr.Degraded() {
		t.Fatal("nil guard tripped")
	}
	if pts := modePoints(col); len(pts) != 0 {
		t.Fatalf("nil guard emitted mode points: %+v", pts)
	}
	for _, s := range col.Spans() {
		if s.Kind == telemetry.KindPoolDecision {
			if _, ok := s.Fields["degraded"]; ok {
				t.Fatalf("decision carries degraded field without a guard: %+v", s.Fields)
			}
			if int(s.Fields["target"]) != 3 {
				t.Fatalf("decision target altered: %+v", s.Fields)
			}
		}
	}
}
