package experiments

import (
	"aquatope/internal/core"
	"aquatope/internal/faas"
	"aquatope/internal/pool"
)

// e2eComponents builds the end-to-end workload: the five applications,
// each driven by an Azure-like trace of its own archetype.
func e2eComponents(s Scale) []core.Component {
	var comps []core.Component
	for i, a := range evalApps(s.Seed) {
		comps = append(comps, core.Component{
			App:   a,
			Trace: ensembleTrace(i*3, s.TraceMin, s.Seed+77),
		})
	}
	return comps
}

// runtimeNoise is the live-platform interference for end-to-end runs.
var runtimeNoise = faas.Noise{GaussianStd: 0.1, OutlierRate: 0.01, OutlierScale: 3}

// aquatopePoolFactory returns a core.PolicyFactory producing fresh
// scale-adjusted Aquatope pool policies.
func (s Scale) aquatopePoolFactory(lite bool) core.PolicyFactory {
	return func(fn string) pool.Policy { return s.aquatopePolicy(lite) }
}

// ---------------------------------------------------------------------------

// Fig17Result demonstrates the cold-start/resource-management correlation:
// a resource manager without the pre-warmed pool must split the difference
// between cold and warm behaviour and overprovisions.
type Fig17Result struct {
	FullCPU, FullMem     float64
	RMOnlyCPU, RMOnlyMem float64
}

// Table renders the comparison (full system = 100%).
func (r Fig17Result) Table() string {
	rows := [][]string{
		{"Prewarm + Resource Manager", "100%", "100%"},
		{"Resource Manager Only",
			f0(r.RMOnlyCPU/r.FullCPU*100) + "%",
			f0(r.RMOnlyMem/r.FullMem*100) + "%"},
	}
	return formatTable([]string{"System", "CPU time", "Memory time"}, rows)
}

// Fig17 compares the full Aquatope against a variant with only the
// resource manager (provider keep-alive pool; profiling forced to average
// over cold and warm behaviour).
func Fig17(s Scale) Fig17Result {
	comps := e2eComponents(s)
	full, err := core.Run(core.Config{
		Components:     comps,
		TrainMin:       s.TrainMin,
		PoolFactory:    s.aquatopePoolFactory(false),
		ManagerFactory: core.AquatopeManagerFactory(),
		SearchBudget:   s.SearchBudget,
		ProfileNoise:   profileNoise,
		RuntimeNoise:   runtimeNoise,
		Tracer:         s.Tracer,
		Registry:       s.Registry,
		Seed:           s.Seed,
	})
	if err != nil {
		panic(err)
	}
	rmOnly, err := core.Run(core.Config{
		Components:        comps,
		TrainMin:          s.TrainMin,
		PoolFactory:       core.KeepAlivePoolFactory(600),
		ManagerFactory:    core.AquatopeManagerFactory(),
		SearchBudget:      s.SearchBudget,
		ProfileNoise:      profileNoise,
		RuntimeNoise:      runtimeNoise,
		ColdStartFraction: 0.5, // forced to balance cold and warm behaviour
		Seed:              s.Seed,
	})
	if err != nil {
		panic(err)
	}
	return Fig17Result{
		FullCPU: full.CPUTime(), FullMem: full.MemTime(),
		RMOnlyCPU: rmOnly.CPUTime(), RMOnlyMem: rmOnly.MemTime(),
	}
}

// ---------------------------------------------------------------------------

// Fig18Result is the end-to-end comparison of Fig. 18: QoS violations,
// CPU time and memory time for the three full frameworks.
type Fig18Result struct {
	Order     []string
	Violation map[string]float64
	CPUTime   map[string]float64
	MemTime   map[string]float64
	ColdRate  map[string]float64
}

// Table renders with the autoscaling framework normalized to 100%.
func (r Fig18Result) Table() string {
	base := r.Order[0]
	rows := [][]string{}
	for _, name := range r.Order {
		rows = append(rows, []string{
			name,
			pct(r.Violation[name]),
			f0(r.CPUTime[name]/r.CPUTime[base]*100) + "%",
			f0(r.MemTime[name]/r.MemTime[base]*100) + "%",
			pct(r.ColdRate[name]),
		})
	}
	return formatTable([]string{"Framework", "QoSViol", "CPU(%auto)", "Mem(%auto)", "ColdStart"}, rows)
}

// Fig18 runs the three frameworks — Autoscale (pool + RM), the best prior
// combination IceBreaker+CLITE, and the full Aquatope — over all five
// applications and traces.
func Fig18(s Scale) Fig18Result {
	comps := e2eComponents(s)
	res := Fig18Result{
		Order:     []string{"autoscale", "icebreaker+clite", "aquatope"},
		Violation: make(map[string]float64),
		CPUTime:   make(map[string]float64),
		MemTime:   make(map[string]float64),
		ColdRate:  make(map[string]float64),
	}
	for _, name := range res.Order {
		cfg := core.Config{
			Components:   comps,
			TrainMin:     s.TrainMin,
			SearchBudget: s.SearchBudget,
			ProfileNoise: profileNoise,
			RuntimeNoise: runtimeNoise,
			Tracer:       s.Tracer,
			Registry:     s.Registry,
			Seed:         s.Seed,
		}
		switch name {
		case "autoscale":
			cfg.PoolFactory = core.AutoscalePoolFactory()
			cfg.ManagerFactory = core.AutoscaleManagerFactory()
		case "icebreaker+clite":
			cfg.PoolFactory = core.IceBreakerPoolFactory()
			cfg.ManagerFactory = core.CLITEManagerFactory()
		case "aquatope":
			cfg.PoolFactory = s.aquatopePoolFactory(false)
			cfg.ManagerFactory = core.AquatopeManagerFactory()
		}
		r, err := core.Run(cfg)
		if err != nil {
			panic(err)
		}
		res.Violation[name] = r.QoSViolationRate()
		res.CPUTime[name] = r.CPUTime()
		res.MemTime[name] = r.MemTime()
		res.ColdRate[name] = r.ColdStartRate()
	}
	return res
}
